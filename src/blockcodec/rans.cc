#include "blockcodec/rans.h"

#include <algorithm>
#include <cstring>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace threelc::blockcodec::rans {
namespace {

struct EncSymbol {
  // Renormalization threshold freq << 20, kept 64-bit: a probability-1
  // symbol (freq = 4096) has threshold 2^32, i.e. never renormalizes —
  // its encode step is the identity and carries zero information.
  std::uint64_t x_max = 0;
  std::uint32_t rcp_freq = 0;  // fixed-point reciprocal of freq
  std::uint16_t bias = 0;      // cumulative start of the symbol's range
  std::uint16_t cmpl_freq = 0;  // kProbScale - freq
  std::uint8_t rcp_shift = 0;
  bool freq_is_one = false;
};

// Scale raw counts to sum exactly kProbScale, keeping every present
// symbol >= 1. Rounding drift (at most ~256 either way) is settled on
// the most frequent symbol.
void NormalizeFreqs(const std::uint64_t counts[256], std::uint64_t total,
                    std::uint16_t freq[256]) {
  std::uint32_t sum = 0;
  for (int s = 0; s < 256; ++s) {
    if (counts[s] == 0) {
      freq[s] = 0;
      continue;
    }
    std::uint64_t f = counts[s] * kProbScale / total;
    if (f == 0) f = 1;
    freq[s] = static_cast<std::uint16_t>(f);
    sum += static_cast<std::uint32_t>(f);
  }
  while (sum != kProbScale) {
    int best = -1;
    for (int s = 0; s < 256; ++s) {
      if (freq[s] > (best < 0 ? 0 : freq[best])) best = s;
    }
    if (sum < kProbScale) {
      freq[best] = static_cast<std::uint16_t>(freq[best] + (kProbScale - sum));
      sum = kProbScale;
    } else {
      // Cannot underflow to 0: at most 256 present symbols, each >= 1,
      // so the largest is always > the remaining excess per iteration.
      const std::uint32_t cut =
          std::min<std::uint32_t>(freq[best] - 1u, sum - kProbScale);
      freq[best] = static_cast<std::uint16_t>(freq[best] - cut);
      sum -= cut;
    }
  }
}

EncSymbol MakeEncSymbol(std::uint32_t start, std::uint32_t f) {
  EncSymbol sym;
  // ((L >> kProbBits) * 65536) * f with L = 1<<16: the largest pre-encode
  // state that keeps the post-encode state below 2^32.
  sym.x_max = std::uint64_t{f} << 20;
  sym.bias = static_cast<std::uint16_t>(start);
  sym.cmpl_freq = static_cast<std::uint16_t>(kProbScale - f);
  if (f < 2) {
    sym.freq_is_one = true;
  } else {
    // Fixed-point reciprocal giving exact q = floor(x / f) for 32-bit x:
    // q = ((x * rcp_freq) >> 32) >> rcp_shift.
    std::uint32_t shift = 0;
    while (f > (1u << shift)) ++shift;
    sym.rcp_freq = static_cast<std::uint32_t>(
        ((std::uint64_t{1} << (shift + 31)) + f - 1) / f);
    sym.rcp_shift = static_cast<std::uint8_t>(shift - 1);
  }
  return sym;
}

// One encode step: renormalize (at most one 16-bit word — a 32-bit state
// shifted right by 16 is always below the minimum threshold 1<<20), then
// push the symbol onto the state. The renorm is branchless: the word is
// written unconditionally and the cursor advances only when it counts,
// because the spill/no-spill choice is data-dependent and mispredicts.
inline std::uint32_t EncStep(std::uint32_t x, const EncSymbol& sym,
                             std::uint16_t*& sp) {
  const bool renorm = x >= sym.x_max;
  *sp = static_cast<std::uint16_t>(x);
  sp += renorm;
  x = renorm ? x >> 16 : x;
  if (sym.freq_is_one) {
    return (x << kProbBits) + sym.bias;
  }
  const std::uint32_t q = static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(x) * sym.rcp_freq) >> 32) >>
      sym.rcp_shift;
  return x + sym.bias + q * sym.cmpl_freq;
}

}  // namespace

void Encode(util::ByteSpan raw, util::ByteBuffer& out) {
  const std::size_t n = raw.size();
  if (n == 0) return;

  // Four sub-histograms dodge the store-forwarding stall a skewed input
  // hits when consecutive bytes bump the same counter.
  std::uint64_t counts4[4][256] = {};
  std::size_t i4 = 0;
  for (; i4 + 4 <= n; i4 += 4) {
    ++counts4[0][raw[i4]];
    ++counts4[1][raw[i4 + 1]];
    ++counts4[2][raw[i4 + 2]];
    ++counts4[3][raw[i4 + 3]];
  }
  for (; i4 < n; ++i4) ++counts4[0][raw[i4]];
  std::uint64_t counts[256];
  for (int s = 0; s < 256; ++s) {
    counts[s] = counts4[0][s] + counts4[1][s] + counts4[2][s] + counts4[3][s];
  }
  std::uint16_t freq[256];
  NormalizeFreqs(counts, n, freq);

  EncSymbol syms[256];
  std::uint32_t cum = 0;
  for (int s = 0; s < 256; ++s) {
    if (freq[s] != 0) syms[s] = MakeEncSymbol(cum, freq[s]);
    cum += freq[s];
  }

  for (int s = 0; s < 256; ++s) out.AppendU16(freq[s]);

  // ANS is LIFO: encode backward, spill renormalization words into a
  // scratch buffer, then emit them reversed so the decoder reads forward.
  // Symbol i belongs to state i & 1; walking backward two at a time keeps
  // the parity assignment and lets the two state updates overlap. Worst
  // case one spill word per symbol, so the scratch is sized to n + 1 and
  // written through a raw cursor (branchless EncStep writes one past the
  // live end).
  thread_local std::vector<std::uint16_t> spill;
  if (spill.size() < n + 1) spill.resize(n + 1);
  std::uint16_t* const sp_base = spill.data();
  std::uint16_t* sp = sp_base;
  std::uint32_t x0 = kStateLowerBound;
  std::uint32_t x1 = kStateLowerBound;
  std::size_t i = n;
  if (i & 1) {
    --i;
    x0 = EncStep(x0, syms[raw[i]], sp);  // even index when n is odd
  }
  while (i > 0) {
    x1 = EncStep(x1, syms[raw[i - 1]], sp);
    x0 = EncStep(x0, syms[raw[i - 2]], sp);
    i -= 2;
  }
  out.AppendU32(x0);
  out.AppendU32(x1);
  const std::size_t n_words = static_cast<std::size_t>(sp - sp_base);
  const std::size_t word_base = out.size();
  out.Resize(word_base + n_words * 2);
  std::uint8_t* wq = out.data() + word_base;
  for (std::size_t k = n_words; k-- > 0;) {
    std::memcpy(wq, sp_base + k, 2);
    wq += 2;
  }
}

void Decode(util::ByteSpan encoded, std::size_t raw_size,
            util::ByteBuffer& out) {
  if (raw_size == 0) {
    if (!encoded.empty()) {
      throw std::runtime_error("rans: trailing bytes after empty block");
    }
    return;
  }
  util::ByteReader reader(encoded);

  std::uint16_t freq[256];
  std::uint32_t cum[257];
  cum[0] = 0;
  std::uint32_t sum = 0;
  for (int s = 0; s < 256; ++s) {
    freq[s] = reader.ReadU16();
    sum += freq[s];
    cum[s + 1] = sum;
  }
  if (sum != kProbScale) {
    throw std::runtime_error("rans: frequency table does not sum to scale");
  }
  // slot -> symbol for the full 4096-wide scale (sum check above
  // guarantees every slot is covered exactly once).
  std::vector<std::uint8_t> slot_sym(kProbScale);
  for (int s = 0; s < 256; ++s) {
    for (std::uint32_t slot = cum[s]; slot < cum[s + 1]; ++slot) {
      slot_sym[slot] = static_cast<std::uint8_t>(s);
    }
  }

  std::uint32_t x[2];
  x[0] = reader.ReadU32();
  x[1] = reader.ReadU32();
  if (x[0] < kStateLowerBound || x[1] < kStateLowerBound) {
    throw std::runtime_error("rans: initial state below lower bound");
  }
  const std::size_t base = out.size();
  out.Resize(base + raw_size);
  std::uint8_t* dst = out.data() + base;
  for (std::size_t i = 0; i < raw_size; ++i) {
    std::uint32_t st = x[i & 1];
    const std::uint32_t slot = st & (kProbScale - 1);
    const std::uint8_t s = slot_sym[slot];
    dst[i] = s;
    st = freq[s] * (st >> kProbBits) + slot - cum[s];
    // At most one refill: the post-decode state is >= 16, so one 16-bit
    // word always lifts it back above L = 1<<16.
    if (st < kStateLowerBound) {
      st = (st << 16) | reader.ReadU16();  // throws on truncation
    }
    x[i & 1] = st;
  }
  if (x[0] != kStateLowerBound || x[1] != kStateLowerBound) {
    throw std::runtime_error("rans: corrupt stream (final state mismatch)");
  }
  if (!reader.AtEnd()) {
    throw std::runtime_error("rans: trailing bytes after stream");
  }
}

}  // namespace threelc::blockcodec::rans
