// Static order-0 rANS (range asymmetric numeral system) entropy coder.
//
// Two interleaved 32-bit states with 16-bit-word renormalization and a
// 12-bit frequency scale (kProbScale = 4096). The stream layout is:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//        0   512  frequency table: 256 x u16 LE, summing to 4096
//      512     4  final encoder state 0 (u32 LE) = decoder's initial state 0
//      516     4  final encoder state 1 (u32 LE) = decoder's initial state 1
//      520     n  renormalization words (u16 LE), in decode order
//
// Symbol i is coded by state i & 1; the two dependency chains run in
// parallel in the hot loops, which is the main reason this beats a
// single-state byte-renorm coder by >2x in throughput. The encoder walks
// the input backward (ANS is LIFO) starting both states from L = 1<<16
// and spills a 16-bit word whenever a state would overflow; the decoder
// consumes those words forward and must land both states back on exactly
// L after the last symbol — together with the frequency-table sum check
// and the trailing-bytes check this makes corrupt streams loudly fail
// rather than decode to garbage. Empty input encodes to empty output.
//
// Frequencies are normalized to the 4096 scale with every present symbol
// kept >= 1 (a symbol that occurs must stay encodable); rounding drift
// is settled on the most frequent symbol where it distorts the ratio
// least. Division in the encoder hot loop is done via precomputed
// reciprocals (multiply + shift), the standard rANS trick.
#pragma once

#include <cstddef>

#include "util/byte_buffer.h"

namespace threelc::blockcodec::rans {

inline constexpr unsigned kProbBits = 12;
inline constexpr std::uint32_t kProbScale = 1u << kProbBits;
// Lower bound of the normalized state interval [L, 65536*L).
inline constexpr std::uint32_t kStateLowerBound = 1u << 16;
inline constexpr std::size_t kHeaderBytes = 256 * 2 + 4 + 4;

// Append the encoded form of `raw` to `out`.
void Encode(util::ByteSpan raw, util::ByteBuffer& out);

// Append exactly `raw_size` decoded bytes to `out`, consuming all of
// `encoded`. Throws std::runtime_error / std::out_of_range on truncated
// input, a frequency table that does not sum to kProbScale, a final
// state != L, or trailing bytes.
void Decode(util::ByteSpan encoded, std::size_t raw_size,
            util::ByteBuffer& out);

}  // namespace threelc::blockcodec::rans
