// In-house LZ77 byte compressor with greedy hash-chain match finding.
//
// Token format (LZ4-flavored, but ours — decoders reject anything our
// encoder would not emit where that is cheap to check):
//
//   sequence := token | literal-ext* | literals | offset(u16 LE) | match-ext*
//
//   token     1 byte: high nibble = literal count, low nibble = match
//             length - kMinMatch. A nibble of 15 means "extended": the
//             count continues in following bytes, each adding 0..255,
//             terminated by the first byte < 255.
//   literals  copied verbatim.
//   offset    distance back into the already-decoded output, 1..65535;
//             matches may overlap their own output (offset < length
//             repeats a period, byte-for-byte).
//
// The final sequence carries literals only: its match nibble must be 0
// and it has no offset. A block that ends exactly on a match simply has
// no final literal sequence. Empty input encodes to empty output.
//
// Decompress is strict: it throws std::runtime_error on truncation (via
// ByteReader), literal/match overrun past the declared raw size, offsets
// of 0 or beyond the decoded prefix, and trailing bytes.
#pragma once

#include <cstddef>

#include "util/byte_buffer.h"

namespace threelc::blockcodec::lz {

inline constexpr std::size_t kMinMatch = 4;
inline constexpr std::size_t kMaxOffset = 65535;

// Worst-case encoded size for `raw_size` input bytes (all-literal block
// plus extension bytes) — used to sanity-bound intermediate sizes.
constexpr std::size_t MaxCompressedSize(std::size_t raw_size) {
  return raw_size + raw_size / 255 + 16;
}

// Append the compressed form of `raw` to `out`.
void Compress(util::ByteSpan raw, util::ByteBuffer& out);

// Append exactly `raw_size` decompressed bytes to `out`, consuming all
// of `encoded`. Throws std::runtime_error / std::out_of_range on any
// malformed input.
void Decompress(util::ByteSpan encoded, std::size_t raw_size,
                util::ByteBuffer& out);

}  // namespace threelc::blockcodec::lz
