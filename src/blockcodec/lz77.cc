#include "blockcodec/lz77.h"

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace threelc::blockcodec::lz {
namespace {

constexpr int kHashBits = 15;
constexpr std::size_t kHashSize = std::size_t{1} << kHashBits;

inline std::uint32_t Load32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint64_t Load64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint32_t Hash(std::uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Length of the common prefix of raw[a..] and raw[b..], capped at n - b
// (b > a). 8 bytes per probe until the tail.
inline std::size_t MatchLength(const std::uint8_t* raw, std::size_t a,
                               std::size_t b, std::size_t n) {
  std::size_t len = 0;
  const std::size_t max_len = n - b;
  while (len + 8 <= max_len) {
    const std::uint64_t diff = Load64(raw + a + len) ^ Load64(raw + b + len);
    if (diff != 0) {
      return len +
             static_cast<std::size_t>(__builtin_ctzll(diff)) / 8;
    }
    len += 8;
  }
  while (len < max_len && raw[a + len] == raw[b + len]) ++len;
  return len;
}

// 15-or-extended nibble continuation: each byte adds 0..255, first byte
// below 255 terminates.
inline std::uint8_t* PutExtended(std::size_t v, std::uint8_t* q) {
  while (v >= 255) {
    *q++ = 255;
    v -= 255;
  }
  *q++ = static_cast<std::uint8_t>(v);
  return q;
}

std::size_t ReadExtended(std::size_t base, util::ByteReader& reader) {
  std::uint8_t b;
  do {
    b = reader.ReadU8();
    base += b;
  } while (b == 255);
  return base;
}

// Emit one sequence through a raw cursor. The caller sizes the output for
// the literal-only worst case up front, so no bounds checks are needed
// here — this is the per-sequence hot path and buffer-growth checks were
// a measurable fraction of encode time on match-dense streams.
inline std::uint8_t* PutSequence(const std::uint8_t* raw, std::size_t lit_start,
                                 std::size_t lit_len, std::size_t match_len,
                                 std::size_t offset, std::uint8_t* q) {
  const std::size_t lit_nibble = lit_len < 15 ? lit_len : 15;
  const std::size_t match_extra = match_len == 0 ? 0 : match_len - kMinMatch;
  const std::size_t match_nibble = match_extra < 15 ? match_extra : 15;
  *q++ = static_cast<std::uint8_t>((lit_nibble << 4) | match_nibble);
  if (lit_nibble == 15) q = PutExtended(lit_len - 15, q);
  std::memcpy(q, raw + lit_start, lit_len);
  q += lit_len;
  if (match_len == 0) return q;
  const std::uint16_t off16 = static_cast<std::uint16_t>(offset);
  std::memcpy(q, &off16, 2);
  q += 2;
  if (match_nibble == 15) q = PutExtended(match_extra - 15, q);
  return q;
}

}  // namespace

void Compress(util::ByteSpan raw, util::ByteBuffer& out) {
  const std::size_t n = raw.size();
  if (n == 0) return;
  const std::uint8_t* p = raw.data();

  // Size the output for the worst case (all literals: one token byte plus
  // one length-extension byte per 255 literals) and write through a raw
  // cursor; trim to the actual size at the end.
  const std::size_t base = out.size();
  out.Resize(base + n + n / 255 + 16);
  std::uint8_t* q = out.data() + base;

  // Per-thread scratch: a fresh 128 KB table for a 20 KB payload would
  // cost more than the search, so reuse it across calls. Head-only
  // matching (most recent position per hash bucket, no chain walk) is the
  // LZ4 recipe: on the match-dense streams 3LC produces, walking chains
  // for a marginally longer match costs far more time than the extra
  // bytes it saves.
  thread_local std::vector<std::int32_t> head;
  head.assign(kHashSize, -1);

  std::size_t i = 0;
  std::size_t lit_start = 0;
  // Miss streak since the last match; drives LZ4-style skip acceleration
  // so high-entropy regions are crossed in growing strides instead of
  // paying a probe per byte.
  std::size_t misses = 0;
  while (i + kMinMatch <= n) {
    const std::uint32_t v = Load32(p + i);
    const std::uint32_t h = Hash(v);
    const std::int32_t cand = head[h];
    head[h] = static_cast<std::int32_t>(i);
    std::size_t best_len = 0;
    std::size_t best_off = 0;
    if (cand >= 0) {
      const std::size_t c = static_cast<std::size_t>(cand);
      // The hash folds 32 bits into kHashBits, so verify the candidate
      // really starts with the same 4 bytes before scanning.
      if (i - c <= kMaxOffset && Load32(p + c) == v) {
        best_len = MatchLength(p, c, i, n);
        best_off = i - c;
      }
    }
    if (best_len >= kMinMatch) {
      misses = 0;
      q = PutSequence(p, lit_start, i - lit_start, best_len, best_off, q);
      const std::size_t end = i + best_len;
      // Sparse in-match inserts keep future matches findable across the
      // covered span without paying a table write per byte.
      for (std::size_t j = i + 1; j + kMinMatch <= n && j < end; j += 4) {
        head[Hash(Load32(p + j))] = static_cast<std::int32_t>(j);
      }
      i = end;
      lit_start = end;
    } else {
      i += 1 + (misses++ >> 6);
    }
  }
  if (lit_start < n) {
    q = PutSequence(p, lit_start, n - lit_start, /*match_len=*/0,
                    /*offset=*/0, q);
  }
  out.Resize(static_cast<std::size_t>(q - out.data()));
}

void Decompress(util::ByteSpan encoded, std::size_t raw_size,
                util::ByteBuffer& out) {
  if (raw_size == 0) {
    if (!encoded.empty()) {
      throw std::runtime_error("lz: trailing bytes after empty block");
    }
    return;
  }
  const std::size_t base = out.size();
  out.Resize(base + raw_size);
  std::uint8_t* dst = out.data() + base;
  std::size_t pos = 0;

  util::ByteReader reader(encoded);
  while (pos < raw_size) {
    const std::uint8_t token = reader.ReadU8();
    std::size_t lit_len = token >> 4;
    if (lit_len == 15) lit_len = ReadExtended(lit_len, reader);
    if (lit_len > raw_size - pos) {
      throw std::runtime_error("lz: literal run past declared size");
    }
    const util::ByteSpan lits = reader.ReadSpan(lit_len);
    std::memcpy(dst + pos, lits.data(), lit_len);
    pos += lit_len;
    if (pos == raw_size) {
      // Final sequence: literals only.
      if ((token & 0x0F) != 0) {
        throw std::runtime_error("lz: match in final sequence");
      }
      break;
    }
    const std::size_t offset = reader.ReadU16();
    if (offset == 0 || offset > pos) {
      throw std::runtime_error("lz: match offset outside decoded prefix");
    }
    std::size_t match_extra = token & 0x0F;
    if (match_extra == 15) match_extra = ReadExtended(match_extra, reader);
    const std::size_t match_len = match_extra + kMinMatch;
    if (match_len > raw_size - pos) {
      throw std::runtime_error("lz: match run past declared size");
    }
    // Byte-wise so overlapping matches (offset < length) repeat their
    // period, which is exactly what the encoder meant.
    for (std::size_t k = 0; k < match_len; ++k) {
      dst[pos + k] = dst[pos + k - offset];
    }
    pos += match_len;
  }
  if (!reader.AtEnd()) {
    throw std::runtime_error("lz: trailing bytes after final sequence");
  }
}

}  // namespace threelc::blockcodec::lz
