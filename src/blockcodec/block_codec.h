// Pluggable lossless byte-level block codecs: the optional second stage
// behind the 3LC value codecs (compress/) — and the answer to the paper's
// §3.3 question ("is heavier entropy coding worth it?") at system scale.
//
// A BlockCodec maps opaque byte blocks to byte blocks. It knows nothing
// about tensors or quantization: the first stage (compress::Compressor)
// owns value semantics; this layer only squeezes the resulting bytes.
// Implementations are all in-house and dependency-free:
//
//   store    id 0  identity (no transform; byte parity with no second stage)
//   lz       id 1  LZ77 byte compressor, greedy hash-chain matching (lz77.h)
//   rans     id 2  static order-0 rANS entropy coder (rans.h)
//   lz+rans  id 3  lz, then rans over the LZ output — the "full" pipeline
//
// Every Decode is strict: it throws std::runtime_error (or
// std::out_of_range from ByteReader) on truncation, corruption, trailing
// bytes, or when the decoded length disagrees with the caller-declared
// raw size. A malformed block never produces silent garbage.
//
// Block envelope (EncodeBlock/DecodeBlock): the framing used by the RPC
// payload path when a non-store codec was negotiated:
//
//   offset  size  field
//   ------  ----  ---------------------------------------------
//        0     1  codec id actually used for this block
//        1     4  raw (uncompressed) size in bytes (u32 LE)
//        5     n  codec output
//
// The id is per-block because of the skip-if-incompressible escape: when
// the negotiated codec fails to shrink a block, EncodeBlock falls back to
// `store` for that block, so pathological inputs cost 5 bytes instead of
// an expansion.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/byte_buffer.h"

namespace threelc::blockcodec {

// Stable on-wire / on-disk codec ids (handshake payloads, block
// envelopes, checkpoint containers). Never renumber.
constexpr std::uint8_t kStoreId = 0;
constexpr std::uint8_t kLzId = 1;
constexpr std::uint8_t kRansId = 2;
constexpr std::uint8_t kLzRansId = 3;

class BlockCodec {
 public:
  virtual ~BlockCodec() = default;

  virtual const char* name() const = 0;
  virtual std::uint8_t id() const = 0;

  // Append the encoded form of `raw` to `out`. Never throws on valid
  // input; output may be larger than the input (callers wanting the
  // escape hatch use EncodeBlock).
  virtual void Encode(util::ByteSpan raw, util::ByteBuffer& out) const = 0;

  // Append exactly `raw_size` decoded bytes to `out`, consuming all of
  // `encoded`. Throws on truncated input, corrupt streams, trailing
  // bytes, or a decoded length != raw_size.
  virtual void Decode(util::ByteSpan encoded, std::size_t raw_size,
                      util::ByteBuffer& out) const = 0;
};

// Registry. Codecs are static singletons; pointers stay valid for the
// process lifetime. Both lookups return nullptr for unknown names/ids.
const BlockCodec* Find(const std::string& name);
const BlockCodec* FindById(std::uint8_t id);
// All registered codecs in id order (for benches, docs, --help text).
const std::vector<const BlockCodec*>& All();
// "store|lz|rans|lz+rans" — for flag error messages.
std::string KnownNames();

// --- block envelope -------------------------------------------------------

constexpr std::size_t kEnvelopeHeaderBytes = 5;  // u8 id + u32 raw size

// Encode `raw` through `codec` with the skip-if-incompressible escape:
// if the codec output (plus header) would be >= store (plus header), the
// block is stored raw instead. Appends the envelope to `out` and returns
// the codec id actually used (codec.id() or kStoreId).
std::uint8_t EncodeBlock(const BlockCodec& codec, util::ByteSpan raw,
                         util::ByteBuffer& out);

// Decode one envelope, appending the raw bytes to `out`. Rejects unknown
// codec ids, declared raw sizes above `max_raw_bytes` (defense against a
// corrupt header committing us to a huge allocation), and everything the
// underlying Decode rejects.
void DecodeBlock(util::ByteSpan envelope, std::size_t max_raw_bytes,
                 util::ByteBuffer& out);

}  // namespace threelc::blockcodec
