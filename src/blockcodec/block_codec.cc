#include "blockcodec/block_codec.h"

#include <iterator>
#include <stdexcept>

#include "blockcodec/lz77.h"
#include "blockcodec/rans.h"

namespace threelc::blockcodec {
namespace {

class StoreCodec final : public BlockCodec {
 public:
  const char* name() const override { return "store"; }
  std::uint8_t id() const override { return kStoreId; }

  void Encode(util::ByteSpan raw, util::ByteBuffer& out) const override {
    out.Append(raw);
  }

  void Decode(util::ByteSpan encoded, std::size_t raw_size,
              util::ByteBuffer& out) const override {
    if (encoded.size() != raw_size) {
      throw std::runtime_error("store: encoded size != declared raw size");
    }
    out.Append(encoded);
  }
};

class LzCodec final : public BlockCodec {
 public:
  const char* name() const override { return "lz"; }
  std::uint8_t id() const override { return kLzId; }

  void Encode(util::ByteSpan raw, util::ByteBuffer& out) const override {
    lz::Compress(raw, out);
  }

  void Decode(util::ByteSpan encoded, std::size_t raw_size,
              util::ByteBuffer& out) const override {
    lz::Decompress(encoded, raw_size, out);
  }
};

class RansCodec final : public BlockCodec {
 public:
  const char* name() const override { return "rans"; }
  std::uint8_t id() const override { return kRansId; }

  void Encode(util::ByteSpan raw, util::ByteBuffer& out) const override {
    rans::Encode(raw, out);
  }

  void Decode(util::ByteSpan encoded, std::size_t raw_size,
              util::ByteBuffer& out) const override {
    rans::Decode(encoded, raw_size, out);
  }
};

// lz, then rans over the LZ token stream. The intermediate size rides in
// a u32 header so the decoder knows how many LZ bytes to reconstruct;
// it is bounded by the LZ worst case for the declared raw size, which
// keeps a corrupt header from forcing a huge allocation.
class LzRansCodec final : public BlockCodec {
 public:
  const char* name() const override { return "lz+rans"; }
  std::uint8_t id() const override { return kLzRansId; }

  void Encode(util::ByteSpan raw, util::ByteBuffer& out) const override {
    util::ByteBuffer lz_bytes;
    lz::Compress(raw, lz_bytes);
    out.AppendU32(static_cast<std::uint32_t>(lz_bytes.size()));
    rans::Encode(lz_bytes.span(), out);
  }

  void Decode(util::ByteSpan encoded, std::size_t raw_size,
              util::ByteBuffer& out) const override {
    util::ByteReader reader(encoded);
    const std::uint32_t lz_size = reader.ReadU32();
    if (lz_size > lz::MaxCompressedSize(raw_size)) {
      throw std::runtime_error(
          "lz+rans: intermediate size exceeds LZ worst case");
    }
    util::ByteBuffer lz_bytes;
    rans::Decode(reader.ReadSpan(reader.remaining()), lz_size, lz_bytes);
    lz::Decompress(lz_bytes.span(), raw_size, out);
  }
};

const StoreCodec kStore;
const LzCodec kLz;
const RansCodec kRans;
const LzRansCodec kLzRans;
const BlockCodec* const kById[] = {&kStore, &kLz, &kRans, &kLzRans};

}  // namespace

const BlockCodec* Find(const std::string& name) {
  for (const BlockCodec* codec : kById) {
    if (name == codec->name()) return codec;
  }
  return nullptr;
}

const BlockCodec* FindById(std::uint8_t id) {
  if (id >= std::size(kById)) return nullptr;
  return kById[id];
}

const std::vector<const BlockCodec*>& All() {
  static const std::vector<const BlockCodec*> all(std::begin(kById),
                                                  std::end(kById));
  return all;
}

std::string KnownNames() {
  std::string names;
  for (const BlockCodec* codec : kById) {
    if (!names.empty()) names += '|';
    names += codec->name();
  }
  return names;
}

std::uint8_t EncodeBlock(const BlockCodec& codec, util::ByteSpan raw,
                         util::ByteBuffer& out) {
  if (codec.id() == kStoreId) {
    out.AppendU8(kStoreId);
    out.AppendU32(static_cast<std::uint32_t>(raw.size()));
    out.Append(raw);
    return kStoreId;
  }
  util::ByteBuffer encoded;
  codec.Encode(raw, encoded);
  if (encoded.size() >= raw.size()) {
    // Skip-if-incompressible escape: store the block raw.
    out.AppendU8(kStoreId);
    out.AppendU32(static_cast<std::uint32_t>(raw.size()));
    out.Append(raw);
    return kStoreId;
  }
  out.AppendU8(codec.id());
  out.AppendU32(static_cast<std::uint32_t>(raw.size()));
  out.Append(encoded.span());
  return codec.id();
}

void DecodeBlock(util::ByteSpan envelope, std::size_t max_raw_bytes,
                 util::ByteBuffer& out) {
  util::ByteReader reader(envelope);
  const std::uint8_t id = reader.ReadU8();
  const BlockCodec* codec = FindById(id);
  if (codec == nullptr) {
    throw std::runtime_error("block envelope: unknown codec id " +
                             std::to_string(id));
  }
  const std::uint32_t raw_size = reader.ReadU32();
  if (raw_size > max_raw_bytes) {
    throw std::runtime_error("block envelope: declared raw size " +
                             std::to_string(raw_size) + " exceeds limit " +
                             std::to_string(max_raw_bytes));
  }
  codec->Decode(reader.ReadSpan(reader.remaining()), raw_size, out);
}

}  // namespace threelc::blockcodec
