// Compressor: the point-to-point tensor codec interface (paper §3, Fig. 2).
//
// One *compression context* holds the state for compressing/decompressing a
// single tensor in a single direction (gradient push or model-delta pull) —
// typically the error-accumulation buffer plus reusable scratch space.
// Stateless codecs return an empty context.
//
// Contract:
//  - Encode appends a self-delimiting payload to `out` and may update `ctx`
//    (e.g. fold quantization error into the accumulation buffer).
//  - Decode consumes exactly the bytes Encode appended and writes the
//    decompressed state change into `out`, whose shape is already set.
//  - Encode(T) followed by Decode must yield the codec's dequantized view
//    of T; for the lossless stages this is exact round-trip identity.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "tensor/tensor.h"
#include "util/byte_buffer.h"

namespace threelc::compress {

using tensor::Shape;
using tensor::Tensor;
using util::ByteBuffer;
using util::ByteReader;

// Per-tensor, per-direction codec state.
class Context {
 public:
  virtual ~Context() = default;

  // Bytes of auxiliary state the codec keeps per tensor (error accumulation
  // buffers etc.) — reported by memory-overhead benchmarks.
  virtual std::size_t StateBytes() const { return 0; }

  // Exact-resume support: serialize the persistent per-tensor state (the
  // error-accumulation buffer; reusable scratch is excluded) so a restarted
  // worker continues the identical quantization trajectory. LoadState must
  // consume exactly what SaveState wrote into a context of the same shape,
  // throwing std::runtime_error on mismatch. Stateless codecs write and
  // read nothing.
  virtual void SaveState(ByteBuffer& out) const { (void)out; }
  virtual void LoadState(ByteReader& in) { (void)in; }
};

// Per-encode statistics sink for the observability layer. Callers that want
// telemetry pass a (zeroed) EncodeStats to Encode; codecs fill the fields
// they produce and leave the rest at their "absent" defaults. Filling stats
// may cost extra passes over the tensor, so the null-stats path stays the
// hot path.
struct EncodeStats {
  // Filled generically for every codec.
  std::size_t elements = 0;
  std::size_t payload_bytes = 0;
  // Ternary symbol distribution (3-value quantization stages).
  bool has_symbols = false;
  std::size_t zeros = 0;
  std::size_t positives = 0;
  std::size_t negatives = 0;
  // Zero-run stage: bytes entering (quartic) and leaving (wire payload).
  bool has_zero_run = false;
  std::size_t zre_bytes_in = 0;
  std::size_t zre_bytes_out = 0;
  // L2 norm of the error-accumulation buffer *after* this encode — the
  // paper's error-behaviour measurements (Fig. 7 discussion).
  bool has_residual = false;
  double residual_l2 = 0.0;

  // Fraction of zero-run input bytes eliminated on the wire (0 when the
  // stage is absent or saved nothing).
  double ZreHitRate() const {
    if (!has_zero_run || zre_bytes_in == 0) return 0.0;
    return 1.0 - static_cast<double>(zre_bytes_out) /
                     static_cast<double>(zre_bytes_in);
  }
};

class Compressor {
 public:
  virtual ~Compressor() = default;

  // Human-readable name matching the paper's design labels, e.g.
  // "3LC (s=1.75)" or "5% sparsification".
  virtual std::string name() const = 0;

  // Create fresh per-tensor state for a tensor of the given shape.
  virtual std::unique_ptr<Context> MakeContext(const Shape& shape) const = 0;

  // Compress `in`, appending the payload to `out`. `ctx` must have been
  // created by this codec's MakeContext with `in`'s shape.
  void Encode(const Tensor& in, Context& ctx, ByteBuffer& out) const {
    EncodeImpl(in, ctx, out, nullptr);
  }

  // As above, additionally filling `stats` (when non-null) with element
  // count, payload size, and whatever codec-specific fields this codec
  // produces.
  void Encode(const Tensor& in, Context& ctx, ByteBuffer& out,
              EncodeStats* stats) const;

  // Decompress into `out` (shape preset by the caller), consuming exactly
  // one Encode payload from `in`. Throws std::runtime_error on corruption.
  virtual void Decode(ByteReader& in, Tensor& out) const = 0;

  // True if the codec is lossy (decode != encode input in general).
  virtual bool lossy() const { return true; }

 protected:
  // Codec body. `stats` is null on the hot path; implementations only
  // spend extra work (symbol counts, residual norms) when it is non-null.
  virtual void EncodeImpl(const Tensor& in, Context& ctx, ByteBuffer& out,
                          EncodeStats* stats) const = 0;
};

// Convenience: encode then decode through a fresh reader; returns the
// codec's dequantized view of `in`. Used heavily by tests.
Tensor RoundTrip(const Compressor& codec, const Tensor& in, Context& ctx);

// Compression ratio of one payload vs. raw float32 transmission.
double CompressionRatio(std::size_t num_elements, std::size_t payload_bytes);

// Bits per state change of one payload.
double BitsPerValue(std::size_t num_elements, std::size_t payload_bytes);

}  // namespace threelc::compress
