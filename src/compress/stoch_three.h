// "Stoch 3-value + QE": stochastic ternary quantization in the style of
// TernGrad (without gradient clipping), packed with our quartic encoding
// (paper §5.1) — 1.6 bits/value instead of TernGrad's 2-bit packing.
//
// Each value quantizes to sign(v) with probability |v| / M (M = max|T|)
// and to 0 otherwise, making the quantized tensor an unbiased estimator of
// the input. No error-accumulation buffer: the paper reports that stacking
// both stochastic quantization and error accumulation fails to converge.
//
// Wire format: [f32 M][u32 len][quartic bytes].
#pragma once

#include <cstdint>

#include "compress/compressor.h"

namespace threelc::compress {

class StochThreeValueQE final : public Compressor {
 public:
  explicit StochThreeValueQE(std::uint64_t seed = 1);

  std::string name() const override { return "Stoch 3-value + QE"; }
  std::unique_ptr<Context> MakeContext(const Shape& shape) const override;
  void Decode(ByteReader& in, Tensor& out) const override;

 protected:
  void EncodeImpl(const Tensor& in, Context& ctx, ByteBuffer& out,
                  EncodeStats* stats) const override;

 private:
  std::uint64_t seed_;
};

}  // namespace threelc::compress
