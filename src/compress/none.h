// "32-bit float": the no-compression baseline (paper §5.1). Transmits raw
// float32 values; the reference point for every speedup number.
#pragma once

#include "compress/compressor.h"

namespace threelc::compress {

class Float32 final : public Compressor {
 public:
  std::string name() const override { return "32-bit float"; }
  std::unique_ptr<Context> MakeContext(const Shape& shape) const override;
  void Decode(ByteReader& in, Tensor& out) const override;
  bool lossy() const override { return false; }

 protected:
  void EncodeImpl(const Tensor& in, Context& ctx, ByteBuffer& out,
                  EncodeStats* stats) const override;
};

}  // namespace threelc::compress
