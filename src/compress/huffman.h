// Byte-wise canonical Huffman coding — the entropy-coding comparator the
// paper positions zero-run encoding against (§3.3): entropy coders can
// squeeze quartic-encoded bytes harder, but pay bit-level operations and
// table construction per tensor. We implement it so the ablation bench can
// measure both sides of that trade-off on real codec streams.
//
// Wire format:
//   [u32 original_len][u8 max_code_len]
//   [256 x u8 code lengths]            (0 = symbol absent)
//   [u32 bitstream_len_bits][ceil(bits/8) bytes]
// Degenerate single-symbol inputs use a 1-bit code.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/byte_buffer.h"

namespace threelc::compress {

// Appends the Huffman encoding of `in` to `out`. Returns appended bytes.
std::size_t HuffmanEncode(util::ByteSpan in, util::ByteBuffer& out);

// Decodes one HuffmanEncode payload from `reader`, appending the original
// bytes to `out`. Throws std::runtime_error on corruption or if the
// original length exceeds `max_output`.
std::size_t HuffmanDecode(util::ByteReader& reader, util::ByteBuffer& out,
                          std::size_t max_output);

// Shannon entropy (bits/byte) of a byte stream — the lower bound any
// byte-wise entropy coder can approach. Used by benches to report how
// close ZRE and Huffman come.
double ByteEntropyBits(util::ByteSpan in);

}  // namespace threelc::compress
