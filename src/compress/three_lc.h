// The full 3LC codec (paper §3, Fig. 3):
//
//   (1) accumulate input into the per-tensor error-accumulation buffer
//   (2) 3-value quantization with sparsity multiplication -> ternary + M
//   (a/b) local dequantization; buffer keeps the remaining error
//   (3) quartic encoding (5 ternary values per byte)
//   (4) zero-run encoding (runs of byte 121 -> one byte 243..255)
//
// Wire format per tensor:
//   [f32 M][u32 payload_len][payload bytes]
// where payload is the (optionally zero-run-encoded) quartic bytes. The
// element count comes from the receiver's tensor shape, exactly as the
// parameter-server architecture already knows each layer's shape.
//
// Options reproduce the paper's ablations: `sparsity_multiplier` is the
// compression-level knob s ∈ [1, 2); `zero_run` disables stage (4) for the
// "No ZRE" row of Table 2; `error_accumulation` disables stage (1)/(b)
// for the error-accumulation-vs-stochastic comparison.
#pragma once

#include <memory>
#include <vector>

#include "compress/compressor.h"

namespace threelc::compress {

struct ThreeLCOptions {
  float sparsity_multiplier = 1.0f;  // s, in [1, 2)
  bool zero_run = true;              // apply zero-run encoding
  bool error_accumulation = true;    // keep per-tensor residual buffers
};

class ThreeLC final : public Compressor {
 public:
  explicit ThreeLC(ThreeLCOptions options = {});

  std::string name() const override;
  std::unique_ptr<Context> MakeContext(const Shape& shape) const override;
  void Decode(ByteReader& in, Tensor& out) const override;

  const ThreeLCOptions& options() const { return options_; }

 protected:
  // Fills, when stats are requested: ternary symbol distribution, zero-run
  // stage bytes in/out, and the error-accumulation buffer's L2 norm.
  void EncodeImpl(const Tensor& in, Context& ctx, ByteBuffer& out,
                  EncodeStats* stats) const override;

 private:
  ThreeLCOptions options_;
};

}  // namespace threelc::compress
