#include "compress/quartic.h"

#include <stdexcept>

#include "util/logging.h"

namespace threelc::compress {

void QuarticEncode(const std::int8_t* q, std::size_t n,
                   util::ByteBuffer& out) {
  const std::size_t full_groups = n / kQuarticGroup;
  const std::size_t base = out.size();
  out.Resize(base + QuarticEncodedSize(n));
  std::uint8_t* dst = out.data() + base;

  // Main loop: branch-free, vectorizable multiply-accumulate over digits.
  for (std::size_t g = 0; g < full_groups; ++g) {
    const std::int8_t* p = q + g * kQuarticGroup;
    const std::uint8_t d0 = static_cast<std::uint8_t>(p[0] + 1);
    const std::uint8_t d1 = static_cast<std::uint8_t>(p[1] + 1);
    const std::uint8_t d2 = static_cast<std::uint8_t>(p[2] + 1);
    const std::uint8_t d3 = static_cast<std::uint8_t>(p[3] + 1);
    const std::uint8_t d4 = static_cast<std::uint8_t>(p[4] + 1);
    dst[g] = static_cast<std::uint8_t>(d0 * 81 + d1 * 27 + d2 * 9 + d3 * 3 +
                                       d4);
  }

  // Tail group: pad with quantized-zero values (digit 1), matching the
  // paper's Figure 3 where a 16-element zero tensor encodes to
  // 113 121 121 121 — the padded tail group is still the ZRE-compressible
  // zero byte. (The §3.2 step list says "pad with zeros"; the figure shows
  // the padding happens before the +1 offset, which is what we do.)
  const std::size_t tail = n % kQuarticGroup;
  if (tail != 0) {
    std::uint8_t digits[kQuarticGroup] = {1, 1, 1, 1, 1};
    for (std::size_t i = 0; i < tail; ++i) {
      digits[i] = static_cast<std::uint8_t>(q[full_groups * kQuarticGroup + i] + 1);
    }
    dst[full_groups] = static_cast<std::uint8_t>(
        digits[0] * 81 + digits[1] * 27 + digits[2] * 9 + digits[3] * 3 +
        digits[4]);
  }
}

void QuarticDecode(util::ByteSpan in, std::size_t n, std::int8_t* q) {
  if (in.size() != QuarticEncodedSize(n)) {
    throw std::runtime_error("QuarticDecode: payload size mismatch");
  }
  const std::size_t full_groups = n / kQuarticGroup;
  for (std::size_t g = 0; g < full_groups; ++g) {
    const std::uint8_t b = in[g];
    if (b > kQuarticMaxByte) {
      throw std::runtime_error("QuarticDecode: byte value out of range");
    }
    std::int8_t* p = q + g * kQuarticGroup;
    // Base-3 digit extraction (paper decode step 1), then subtract 1.
    p[0] = static_cast<std::int8_t>(b / 81 % 3) - 1;
    p[1] = static_cast<std::int8_t>(b / 27 % 3) - 1;
    p[2] = static_cast<std::int8_t>(b / 9 % 3) - 1;
    p[3] = static_cast<std::int8_t>(b / 3 % 3) - 1;
    p[4] = static_cast<std::int8_t>(b % 3) - 1;
  }
  const std::size_t tail = n % kQuarticGroup;
  if (tail != 0) {
    const std::uint8_t b = in[full_groups];
    if (b > kQuarticMaxByte) {
      throw std::runtime_error("QuarticDecode: byte value out of range");
    }
    const std::uint8_t digits[kQuarticGroup] = {
        static_cast<std::uint8_t>(b / 81 % 3),
        static_cast<std::uint8_t>(b / 27 % 3),
        static_cast<std::uint8_t>(b / 9 % 3),
        static_cast<std::uint8_t>(b / 3 % 3),
        static_cast<std::uint8_t>(b % 3)};
    for (std::size_t i = 0; i < tail; ++i) {
      q[full_groups * kQuarticGroup + i] =
          static_cast<std::int8_t>(digits[i]) - 1;
    }
  }
}

void TwoBitEncode(const std::int8_t* q, std::size_t n, util::ByteBuffer& out) {
  const std::size_t base = out.size();
  out.Resize(base + TwoBitEncodedSize(n));
  std::uint8_t* dst = out.data() + base;
  for (std::size_t i = 0; i < TwoBitEncodedSize(n); ++i) dst[i] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t d = static_cast<std::uint8_t>(q[i] + 1);  // {0,1,2}
    dst[i / 4] |= static_cast<std::uint8_t>(d << ((i % 4) * 2));
  }
}

void TwoBitDecode(util::ByteSpan in, std::size_t n, std::int8_t* q) {
  if (in.size() != TwoBitEncodedSize(n)) {
    throw std::runtime_error("TwoBitDecode: payload size mismatch");
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t d = (in[i / 4] >> ((i % 4) * 2)) & 0x3;
    if (d > 2) throw std::runtime_error("TwoBitDecode: invalid digit");
    q[i] = static_cast<std::int8_t>(d) - 1;
  }
}

}  // namespace threelc::compress
