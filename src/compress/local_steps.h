// "2 local steps": infrequent communication (paper §5.1; federated-
// averaging style). State changes accumulate locally and transmit every
// `period` training steps as raw float32, cutting traffic by ~1/period and
// effectively multiplying the global batch size.
//
// Wire format: [u8 sent][if sent: n x f32]. On skip steps the payload is a
// single marker byte and the receiver applies a zero state change.
#pragma once

#include "compress/compressor.h"

namespace threelc::compress {

class LocalSteps final : public Compressor {
 public:
  explicit LocalSteps(int period = 2);

  std::string name() const override;
  std::unique_ptr<Context> MakeContext(const Shape& shape) const override;
  void Decode(ByteReader& in, Tensor& out) const override;

  int period() const { return period_; }

 protected:
  void EncodeImpl(const Tensor& in, Context& ctx, ByteBuffer& out,
                  EncodeStats* stats) const override;

 private:
  int period_;
};

}  // namespace threelc::compress
