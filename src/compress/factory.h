// Codec factory: builds any of the paper's compared designs (§5.1) from a
// declarative config, so trainers and benchmarks enumerate designs by name.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compress/compressor.h"

namespace threelc::compress {

enum class CodecKind {
  kFloat32,       // 32-bit float (baseline)
  kEightBit,      // 8-bit int
  kStochThreeQE,  // Stoch 3-value + QE (TernGrad-like)
  kMqeOneBit,     // MQE 1-bit int (1-bit SGD)
  kSparsify,      // k% sparsification
  kLocalSteps,    // transmit every k local steps
  kThreeLC,       // full 3LC
};

struct CodecConfig {
  CodecKind kind = CodecKind::kThreeLC;
  // 3LC knobs.
  float sparsity_multiplier = 1.0f;
  bool zero_run = true;
  bool error_accumulation = true;
  // Sparsification knob.
  float sparsify_fraction = 0.25f;
  // Local-steps knob.
  int local_period = 2;
  // Seed for stochastic codecs.
  std::uint64_t seed = 1;

  // Named constructors matching the paper's design labels.
  static CodecConfig Float32();
  static CodecConfig EightBit();
  static CodecConfig StochThreeQE(std::uint64_t seed = 1);
  static CodecConfig MqeOneBit();
  static CodecConfig Sparsification(float fraction);
  static CodecConfig TwoLocalSteps();
  static CodecConfig ThreeLC(float s = 1.0f);
};

// Instantiate the codec described by `config`.
std::unique_ptr<Compressor> MakeCompressor(const CodecConfig& config);

// The paper's Table 1 design list, in row order.
std::vector<CodecConfig> Table1Designs();

}  // namespace threelc::compress
