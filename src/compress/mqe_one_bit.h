// "MQE 1-bit int": 1-bit quantization with minimum-squared-quantization-
// error dequantization values and error feedback, reproducing 1-bit SGD
// (Seide et al., Interspeech 2014; paper §5.1).
//
// Non-negative values map to bit 1, negative values to bit 0. Each bit
// dequantizes to the *mean* of its partition (the value minimizing squared
// quantization error for a fixed partition). Quantization error accumulates
// in a per-tensor buffer exactly as in 3LC.
//
// Wire format: [f32 mean_neg][f32 mean_nonneg][ceil(n/8) bitmap bytes].
#pragma once

#include "compress/compressor.h"

namespace threelc::compress {

class MqeOneBit final : public Compressor {
 public:
  std::string name() const override { return "MQE 1-bit int"; }
  std::unique_ptr<Context> MakeContext(const Shape& shape) const override;
  void Decode(ByteReader& in, Tensor& out) const override;

 protected:
  void EncodeImpl(const Tensor& in, Context& ctx, ByteBuffer& out,
                  EncodeStats* stats) const override;
};

}  // namespace threelc::compress
