// "8-bit int": symmetric 8-bit quantization approximating the TPU's
// internal quantization (paper §5.1). Uses 255 distinct values
// [-127, 127]; -128 is left unused.
//
// Wire format: [f32 M][n x i8]. q = round(v / M * 127); v' = q * M / 127.
#pragma once

#include "compress/compressor.h"

namespace threelc::compress {

class EightBitInt final : public Compressor {
 public:
  std::string name() const override { return "8-bit int"; }
  std::unique_ptr<Context> MakeContext(const Shape& shape) const override;
  void Decode(ByteReader& in, Tensor& out) const override;

 protected:
  void EncodeImpl(const Tensor& in, Context& ctx, ByteBuffer& out,
                  EncodeStats* stats) const override;
};

}  // namespace threelc::compress
