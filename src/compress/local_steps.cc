#include "compress/local_steps.h"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/logging.h"

namespace threelc::compress {

namespace {

class LocalStepsContext final : public Context {
 public:
  explicit LocalStepsContext(const Shape& shape)
      : accum_(static_cast<std::size_t>(shape.num_elements()), 0.0f) {}

  std::size_t StateBytes() const override {
    return accum_.size() * sizeof(float);
  }

  std::vector<float> accum_;
  int step_ = 0;
};

}  // namespace

LocalSteps::LocalSteps(int period) : period_(period) {
  THREELC_CHECK_MSG(period_ >= 1, "period must be >= 1");
}

std::string LocalSteps::name() const {
  std::ostringstream oss;
  oss << period_ << " local steps";
  return oss.str();
}

std::unique_ptr<Context> LocalSteps::MakeContext(const Shape& shape) const {
  return std::make_unique<LocalStepsContext>(shape);
}

void LocalSteps::EncodeImpl(const Tensor& in, Context& ctx, ByteBuffer& out,
                            EncodeStats* stats) const {
  auto& c = static_cast<LocalStepsContext&>(ctx);
  const auto n = static_cast<std::size_t>(in.num_elements());
  THREELC_CHECK_MSG(c.accum_.size() == n, "context/tensor shape mismatch");
  const float* src = in.data();
  float* acc = c.accum_.data();
  for (std::size_t i = 0; i < n; ++i) acc[i] += src[i];
  const bool send = (++c.step_ % period_) == 0;
  out.AppendU8(send ? 1 : 0);
  if (send) {
    out.Append(acc, n * sizeof(float));
    for (std::size_t i = 0; i < n; ++i) acc[i] = 0.0f;
  }
  if (stats != nullptr) {
    // The local accumulator is this scheme's "error" buffer: state changes
    // withheld from the wire until the next send step.
    stats->has_residual = true;
    double sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sq += static_cast<double>(acc[i]) * static_cast<double>(acc[i]);
    }
    stats->residual_l2 = std::sqrt(sq);
  }
}

void LocalSteps::Decode(ByteReader& in, Tensor& out) const {
  const std::uint8_t sent = in.ReadU8();
  if (sent > 1) throw std::runtime_error("LocalSteps decode: bad marker");
  if (sent) {
    in.ReadInto(out.data(), out.byte_size());
  } else {
    out.SetZero();
  }
}

}  // namespace threelc::compress
