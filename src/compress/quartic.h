// Quartic encoding (paper §3.2): a fixed-length base-3 packing that folds
// five ternary values into one byte.
//
// Each ternary value q in {-1, 0, +1} becomes a digit d = q + 1 in
// {0, 1, 2}; five digits pack as d0*81 + d1*27 + d2*9 + d3*3 + d4, giving
// byte values 0..242 (3^5 = 243 <= 256). That is 1.6 bits per value —
// 0.95% above the log2(3) ≈ 1.585 information-theoretic bound and 20%
// smaller than the 2-bit packing TernGrad uses.
//
// The all-zeros group (digits 1,1,1,1,1) encodes as byte 121; byte values
// 243..255 never appear, which is exactly the headroom zero-run encoding
// uses. Inputs whose length is not a multiple of 5 are padded with
// quantized zeros (digit 1, as in the paper's Figure 3, keeping the tail
// byte zero-run compressible); decode drops the padding because the caller
// supplies the element count.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/byte_buffer.h"

namespace threelc::compress {

// Byte value of a group of five quantized zeros.
inline constexpr std::uint8_t kQuarticZeroByte = 121;  // 81+27+9+3+1
// Largest byte value quartic encoding can produce.
inline constexpr std::uint8_t kQuarticMaxByte = 242;   // 2*(81+27+9+3+1)
// Values per packed byte.
inline constexpr std::size_t kQuarticGroup = 5;

// Number of bytes QuarticEncode produces for n ternary values.
constexpr std::size_t QuarticEncodedSize(std::size_t n) {
  return (n + kQuarticGroup - 1) / kQuarticGroup;
}

// Packs n ternary values (each in {-1, 0, +1}) into QuarticEncodedSize(n)
// bytes appended to `out`.
void QuarticEncode(const std::int8_t* q, std::size_t n, util::ByteBuffer& out);

// Unpacks n ternary values from `in` (must hold QuarticEncodedSize(n)
// bytes). Throws std::runtime_error if a byte exceeds kQuarticMaxByte.
void QuarticDecode(util::ByteSpan in, std::size_t n, std::int8_t* q);

// Reference 2-bit packing (TernGrad-style) used only by the ablation bench
// to quantify quartic encoding's 20% size advantage. 4 values per byte,
// 2 bits each (q+1 in {0,1,2}).
void TwoBitEncode(const std::int8_t* q, std::size_t n, util::ByteBuffer& out);
void TwoBitDecode(util::ByteSpan in, std::size_t n, std::int8_t* q);
constexpr std::size_t TwoBitEncodedSize(std::size_t n) { return (n + 3) / 4; }

}  // namespace threelc::compress
