#include "compress/quantize3.h"

#include <cmath>

#include "util/logging.h"

namespace threelc::compress {

namespace {
float MaxAbsScaled(const float* in, std::size_t n, float s) {
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float a = std::fabs(in[i]);
    m = a > m ? a : m;
  }
  return m * s;
}
}  // namespace

float Quantize3(const float* in, std::size_t n, float s, std::int8_t* out) {
  THREELC_CHECK_MSG(s >= kMinSparsityMultiplier && s < kMaxSparsityMultiplier,
                    "sparsity multiplier out of [1, 2): " << s);
  const float M = MaxAbsScaled(in, n, s);
  if (M == 0.0f) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return 0.0f;
  }
  const float half = M * 0.5f;
  for (std::size_t i = 0; i < n; ++i) {
    const float v = in[i];
    // round(v / M) for |v| <= M: +1 iff v >= M/2, -1 iff v <= -M/2, else 0.
    out[i] = static_cast<std::int8_t>((v >= half) - (v <= -half));
  }
  return M;
}

void Dequantize3(const std::int8_t* q, std::size_t n, float M, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = M * static_cast<float>(q[i]);
  }
}

float Quantize3WithResidual(const float* in, std::size_t n, float s,
                            std::int8_t* out, float* residual) {
  THREELC_CHECK_MSG(s >= kMinSparsityMultiplier && s < kMaxSparsityMultiplier,
                    "sparsity multiplier out of [1, 2): " << s);
  const float M = MaxAbsScaled(in, n, s);
  if (M == 0.0f) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = 0;
      residual[i] = in[i];  // exactly zero inputs, but keep the general form
    }
    return 0.0f;
  }
  const float half = M * 0.5f;
  for (std::size_t i = 0; i < n; ++i) {
    const float v = in[i];
    const std::int8_t q = static_cast<std::int8_t>((v >= half) - (v <= -half));
    out[i] = q;
    residual[i] = v - M * static_cast<float>(q);
  }
  return M;
}

}  // namespace threelc::compress
