#include "compress/none.h"

namespace threelc::compress {

std::unique_ptr<Context> Float32::MakeContext(const Shape&) const {
  return std::make_unique<Context>();
}

void Float32::EncodeImpl(const Tensor& in, Context&, ByteBuffer& out,
                         EncodeStats*) const {
  out.Append(in.data(), in.byte_size());
}

void Float32::Decode(ByteReader& in, Tensor& out) const {
  in.ReadInto(out.data(), out.byte_size());
}

}  // namespace threelc::compress
