#include "compress/three_lc.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "compress/quantize3.h"
#include "compress/quartic.h"
#include "compress/zero_run.h"
#include "obs/stage_profiler.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace threelc::compress {

namespace {

class ThreeLCContext final : public Context {
 public:
  explicit ThreeLCContext(const Shape& shape, bool error_accumulation)
      : has_residual_(error_accumulation) {
    const auto n = static_cast<std::size_t>(shape.num_elements());
    if (has_residual_) residual_.assign(n, 0.0f);
    accum_.assign(n, 0.0f);
    ternary_.assign(n, 0);
  }

  std::size_t StateBytes() const override {
    return residual_.size() * sizeof(float);
  }

  void SaveState(ByteBuffer& out) const override {
    out.AppendU8(has_residual_ ? 1 : 0);
    out.AppendU64(residual_.size());
    for (const float r : residual_) out.AppendF32(r);
  }

  void LoadState(ByteReader& in) override {
    const bool has_residual = in.ReadU8() != 0;
    const std::uint64_t n = in.ReadU64();
    if (has_residual != has_residual_ || n != residual_.size()) {
      throw std::runtime_error(
          "3LC context state mismatch: saved " + std::to_string(n) +
          " residuals (ea=" + std::to_string(has_residual) + "), context has " +
          std::to_string(residual_.size()) +
          " (ea=" + std::to_string(has_residual_) + ")");
    }
    for (float& r : residual_) r = in.ReadF32();
  }

  bool has_residual_;
  std::vector<float> residual_;      // error accumulation buffer (persistent)
  std::vector<float> accum_;         // scratch: input + residual
  std::vector<std::int8_t> ternary_; // scratch: quantized values
  ByteBuffer quartic_;               // scratch: stage-(3) output
};

}  // namespace

ThreeLC::ThreeLC(ThreeLCOptions options) : options_(options) {
  THREELC_CHECK_MSG(options_.sparsity_multiplier >= kMinSparsityMultiplier &&
                        options_.sparsity_multiplier < kMaxSparsityMultiplier,
                    "sparsity multiplier must be in [1, 2)");
}

std::string ThreeLC::name() const {
  std::ostringstream oss;
  oss << "3LC (s=" << options_.sparsity_multiplier;
  if (!options_.zero_run) oss << ", no ZRE";
  if (!options_.error_accumulation) oss << ", no EA";
  oss << ")";
  return oss.str();
}

std::unique_ptr<Context> ThreeLC::MakeContext(const Shape& shape) const {
  return std::make_unique<ThreeLCContext>(shape, options_.error_accumulation);
}

void ThreeLC::EncodeImpl(const Tensor& in, Context& ctx, ByteBuffer& out,
                         EncodeStats* stats) const {
  obs::ScopedStage encode_stage(&obs::StageProfiler::Global(), "3lc_encode");
  auto& c = static_cast<ThreeLCContext&>(ctx);
  const auto n = static_cast<std::size_t>(in.num_elements());
  THREELC_CHECK_MSG(c.accum_.size() == n, "context/tensor shape mismatch");

  // Step (1): accumulate the input into the local buffer.
  {
    obs::ScopedStage stage(&obs::StageProfiler::Global(), "accumulate");
    const float* src = in.data();
    float* acc = c.accum_.data();
    if (c.has_residual_) {
      const float* res = c.residual_.data();
      for (std::size_t i = 0; i < n; ++i) acc[i] = src[i] + res[i];
    } else {
      for (std::size_t i = 0; i < n; ++i) acc[i] = src[i];
    }
  }

  // Steps (2), (a), (b): quantize; keep the remaining error locally.
  float M;
  {
    obs::ScopedStage stage(&obs::StageProfiler::Global(), "quantize");
    if (c.has_residual_) {
      M = Quantize3WithResidual(c.accum_.data(), n,
                                options_.sparsity_multiplier,
                                c.ternary_.data(), c.residual_.data());
    } else {
      M = Quantize3(c.accum_.data(), n, options_.sparsity_multiplier,
                    c.ternary_.data());
    }
  }

  // Step (3): quartic encoding.
  {
    obs::ScopedStage stage(&obs::StageProfiler::Global(), "quartic");
    c.quartic_.Clear();
    QuarticEncode(c.ternary_.data(), n, c.quartic_);
  }

  // Step (4): zero-run encoding (optional), then frame the payload.
  out.AppendF32(M);
  if (options_.zero_run) {
    ByteBuffer zre;
    {
      obs::ScopedStage stage(&obs::StageProfiler::Global(), "zre");
      zre.Reserve(c.quartic_.size());
      ZeroRunEncode(c.quartic_.span(), zre);
    }
    obs::ScopedStage stage(&obs::StageProfiler::Global(), "serialize");
    out.AppendU32(static_cast<std::uint32_t>(zre.size()));
    out.Append(zre.span());
    if (stats != nullptr) {
      stats->has_zero_run = true;
      stats->zre_bytes_in = c.quartic_.size();
      stats->zre_bytes_out = zre.size();
    }
  } else {
    obs::ScopedStage stage(&obs::StageProfiler::Global(), "serialize");
    out.AppendU32(static_cast<std::uint32_t>(c.quartic_.size()));
    out.Append(c.quartic_.span());
  }

  if (stats != nullptr) {
    stats->has_symbols = true;
    const std::int8_t* q = c.ternary_.data();
    for (std::size_t i = 0; i < n; ++i) {
      if (q[i] == 0) ++stats->zeros;
      else if (q[i] > 0) ++stats->positives;
      else ++stats->negatives;
    }
    if (c.has_residual_) {
      stats->has_residual = true;
      double sq = 0.0;
      for (const float r : c.residual_) {
        sq += static_cast<double>(r) * static_cast<double>(r);
      }
      stats->residual_l2 = std::sqrt(sq);
    }
  }
}

void ThreeLC::Decode(ByteReader& in, Tensor& out) const {
  obs::ScopedStage decode_stage(&obs::StageProfiler::Global(), "3lc_decode");
  const auto n = static_cast<std::size_t>(out.num_elements());
  const float M = in.ReadF32();
  const std::uint32_t len = in.ReadU32();
  util::ByteSpan payload = in.ReadSpan(len);

  const std::size_t quartic_len = QuarticEncodedSize(n);
  std::vector<std::int8_t> ternary(n);
  if (options_.zero_run) {
    ByteBuffer quartic;
    {
      obs::ScopedStage stage(&obs::StageProfiler::Global(), "zre");
      quartic.Reserve(quartic_len);
      const std::size_t produced =
          ZeroRunDecode(payload, quartic, quartic_len);
      if (produced != quartic_len) {
        throw std::runtime_error("3LC decode: zero-run payload size mismatch");
      }
    }
    obs::ScopedStage stage(&obs::StageProfiler::Global(), "quartic");
    QuarticDecode(quartic.span(), n, ternary.data());
  } else {
    obs::ScopedStage stage(&obs::StageProfiler::Global(), "quartic");
    QuarticDecode(payload, n, ternary.data());
  }
  obs::ScopedStage stage(&obs::StageProfiler::Global(), "dequantize");
  Dequantize3(ternary.data(), n, M, out.data());
}

}  // namespace threelc::compress
