#include "compress/mqe_one_bit.h"

#include <cmath>
#include <vector>

#include "util/logging.h"

namespace threelc::compress {

namespace {

class MqeContext final : public Context {
 public:
  explicit MqeContext(const Shape& shape)
      : residual_(static_cast<std::size_t>(shape.num_elements()), 0.0f),
        accum_(residual_.size(), 0.0f) {}

  std::size_t StateBytes() const override {
    return residual_.size() * sizeof(float);
  }

  std::vector<float> residual_;
  std::vector<float> accum_;  // scratch
};

}  // namespace

std::unique_ptr<Context> MqeOneBit::MakeContext(const Shape& shape) const {
  return std::make_unique<MqeContext>(shape);
}

void MqeOneBit::EncodeImpl(const Tensor& in, Context& ctx, ByteBuffer& out,
                           EncodeStats* stats) const {
  auto& c = static_cast<MqeContext&>(ctx);
  const auto n = static_cast<std::size_t>(in.num_elements());
  THREELC_CHECK_MSG(c.accum_.size() == n, "context/tensor shape mismatch");
  const float* src = in.data();
  float* acc = c.accum_.data();
  float* res = c.residual_.data();

  // Error feedback: quantize input + accumulated error.
  for (std::size_t i = 0; i < n; ++i) acc[i] = src[i] + res[i];

  // Partition means (the MQE dequantization values). This extra pass over
  // the data — absent from 3LC's single max-reduction — is the source of
  // the scheme's higher computation overhead noted in the paper's §5.3.
  double sum_nonneg = 0.0, sum_neg = 0.0;
  std::size_t cnt_nonneg = 0, cnt_neg = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const float v = acc[i];
    if (v >= 0.0f) {
      sum_nonneg += v;
      ++cnt_nonneg;
    } else {
      sum_neg += v;
      ++cnt_neg;
    }
  }
  const float mean_nonneg =
      cnt_nonneg ? static_cast<float>(sum_nonneg / cnt_nonneg) : 0.0f;
  const float mean_neg = cnt_neg ? static_cast<float>(sum_neg / cnt_neg) : 0.0f;

  out.AppendF32(mean_neg);
  out.AppendF32(mean_nonneg);
  const std::size_t bitmap_bytes = (n + 7) / 8;
  const std::size_t base = out.size();
  out.Resize(base + bitmap_bytes);
  std::uint8_t* bits = out.data() + base;
  for (std::size_t i = 0; i < bitmap_bytes; ++i) bits[i] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool nonneg = acc[i] >= 0.0f;
    bits[i / 8] |= static_cast<std::uint8_t>(nonneg) << (i % 8);
    const float deq = nonneg ? mean_nonneg : mean_neg;
    res[i] = acc[i] - deq;
  }
  if (stats != nullptr) {
    stats->has_residual = true;
    double sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sq += static_cast<double>(res[i]) * static_cast<double>(res[i]);
    }
    stats->residual_l2 = std::sqrt(sq);
  }
}

void MqeOneBit::Decode(ByteReader& in, Tensor& out) const {
  const auto n = static_cast<std::size_t>(out.num_elements());
  const float mean_neg = in.ReadF32();
  const float mean_nonneg = in.ReadF32();
  util::ByteSpan bits = in.ReadSpan((n + 7) / 8);
  float* dst = out.data();
  for (std::size_t i = 0; i < n; ++i) {
    const bool nonneg = (bits[i / 8] >> (i % 8)) & 1;
    dst[i] = nonneg ? mean_nonneg : mean_neg;
  }
}

}  // namespace threelc::compress
