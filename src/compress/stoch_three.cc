#include "compress/stoch_three.h"

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "compress/quartic.h"
#include "compress/quantize3.h"
#include "util/logging.h"
#include "util/rng.h"

namespace threelc::compress {

namespace {

std::atomic<std::uint64_t> g_context_counter{0};

class StochContext final : public Context {
 public:
  StochContext(const Shape& shape, std::uint64_t seed)
      : rng_(seed), ternary_(static_cast<std::size_t>(shape.num_elements())) {}

  util::Rng rng_;
  std::vector<std::int8_t> ternary_;  // scratch
  ByteBuffer quartic_;                // scratch
};

}  // namespace

StochThreeValueQE::StochThreeValueQE(std::uint64_t seed) : seed_(seed) {}

std::unique_ptr<Context> StochThreeValueQE::MakeContext(
    const Shape& shape) const {
  // Each tensor context gets an independent stream derived from the codec
  // seed and a global allocation counter, so parallel workers never share
  // RNG state.
  const std::uint64_t ctx_id = g_context_counter.fetch_add(1);
  std::uint64_t mix = seed_ ^ (ctx_id * 0x9e3779b97f4a7c15ULL + 0x243);
  return std::make_unique<StochContext>(shape, util::SplitMix64(mix));
}

void StochThreeValueQE::EncodeImpl(const Tensor& in, Context& ctx,
                                   ByteBuffer& out, EncodeStats* stats) const {
  auto& c = static_cast<StochContext&>(ctx);
  const auto n = static_cast<std::size_t>(in.num_elements());
  THREELC_CHECK_MSG(c.ternary_.size() == n, "context/tensor shape mismatch");
  const float* src = in.data();
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float a = std::fabs(src[i]);
    m = a > m ? a : m;
  }
  std::int8_t* q = c.ternary_.data();
  if (m == 0.0f) {
    for (std::size_t i = 0; i < n; ++i) q[i] = 0;
  } else {
    const float inv_m = 1.0f / m;
    for (std::size_t i = 0; i < n; ++i) {
      const float v = src[i];
      const float p = std::fabs(v) * inv_m;  // selection probability
      const bool fire = c.rng_.UniformFloat() < p;
      q[i] = fire ? (v > 0.0f ? 1 : -1) : 0;
    }
  }
  if (stats != nullptr) {
    stats->has_symbols = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (q[i] == 0) ++stats->zeros;
      else if (q[i] > 0) ++stats->positives;
      else ++stats->negatives;
    }
  }
  c.quartic_.Clear();
  QuarticEncode(q, n, c.quartic_);
  out.AppendF32(m);
  out.AppendU32(static_cast<std::uint32_t>(c.quartic_.size()));
  out.Append(c.quartic_.span());
}

void StochThreeValueQE::Decode(ByteReader& in, Tensor& out) const {
  const auto n = static_cast<std::size_t>(out.num_elements());
  const float m = in.ReadF32();
  const std::uint32_t len = in.ReadU32();
  if (len != QuarticEncodedSize(n)) {
    throw std::runtime_error("StochThreeValueQE decode: size mismatch");
  }
  util::ByteSpan payload = in.ReadSpan(len);
  std::vector<std::int8_t> ternary(n);
  QuarticDecode(payload, n, ternary.data());
  Dequantize3(ternary.data(), n, m, out.data());
}

}  // namespace threelc::compress
