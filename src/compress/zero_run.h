// Zero-run encoding (paper §3.3): run-length encoding specialized for
// quartic-encoded data.
//
// Quartic encoding emits byte 121 for a group of five quantized zeros and
// never emits 243..255. Zero-run encoding replaces k consecutive 121-bytes
// (2 <= k <= 14) with the single byte 243 + (k - 2); longer runs split
// greedily into 14-byte chunks. A lone 121 passes through unchanged, as do
// all other bytes (0..242).
//
// The scheme is byte-level only — no bit operations, no lookup tables —
// which is what keeps 3LC's computation overhead low compared to entropy
// coders. On an all-zero float32 tensor the full 3LC pipeline reaches
// 32 bits / (1.6 bits / 14) = 280x compression (paper §3.3).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/byte_buffer.h"

namespace threelc::compress {

// First byte value used for encoded runs.
inline constexpr std::uint8_t kZreRunBase = 243;   // encodes a run of 2
// Longest run a single byte can encode.
inline constexpr std::size_t kZreMaxRun = 14;      // 243 + (14-2) = 255

// Appends the zero-run encoding of `in` (quartic bytes, all <= 242) to
// `out`. Returns the number of bytes appended.
std::size_t ZeroRunEncode(util::ByteSpan in, util::ByteBuffer& out);

// Appends the decoded quartic bytes to `out`. Throws std::runtime_error if
// the expansion would exceed `max_output` bytes (corruption guard).
// Returns the number of bytes appended.
std::size_t ZeroRunDecode(util::ByteSpan in, util::ByteBuffer& out,
                          std::size_t max_output);

// Upper bound on encoded size (ZRE never expands: every output byte covers
// at least one input byte).
constexpr std::size_t ZeroRunMaxEncodedSize(std::size_t n) { return n; }

}  // namespace threelc::compress
