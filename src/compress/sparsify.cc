#include "compress/sparsify.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace threelc::compress {

namespace {

class SparsifyContext final : public Context {
 public:
  SparsifyContext(const Shape& shape, std::uint64_t seed)
      : residual_(static_cast<std::size_t>(shape.num_elements()), 0.0f),
        accum_(residual_.size(), 0.0f),
        rng_(seed) {}

  std::size_t StateBytes() const override {
    return residual_.size() * sizeof(float);
  }

  std::vector<float> residual_;
  std::vector<float> accum_;  // scratch
  util::Rng rng_;
  std::vector<float> sample_;  // scratch for threshold estimation
};

}  // namespace

Sparsify::Sparsify(SparsifyOptions options) : options_(options) {
  THREELC_CHECK_MSG(options_.fraction > 0.0f && options_.fraction <= 1.0f,
                    "sparsification fraction must be in (0, 1]");
  THREELC_CHECK(options_.threshold_sample > 0);
}

std::string Sparsify::name() const {
  std::ostringstream oss;
  oss << static_cast<int>(std::lround(options_.fraction * 100.0f))
      << "% sparsification";
  return oss.str();
}

std::unique_ptr<Context> Sparsify::MakeContext(const Shape& shape) const {
  return std::make_unique<SparsifyContext>(shape, options_.seed);
}

void Sparsify::EncodeImpl(const Tensor& in, Context& ctx, ByteBuffer& out,
                          EncodeStats* stats) const {
  auto& c = static_cast<SparsifyContext&>(ctx);
  const auto n = static_cast<std::size_t>(in.num_elements());
  THREELC_CHECK_MSG(c.accum_.size() == n, "context/tensor shape mismatch");
  const float* src = in.data();
  float* acc = c.accum_.data();
  float* res = c.residual_.data();
  for (std::size_t i = 0; i < n; ++i) acc[i] = src[i] + res[i];

  // Threshold from a sorted magnitude sample (avoids a full-tensor sort).
  const std::size_t sample_n = std::min(options_.threshold_sample, n);
  c.sample_.clear();
  c.sample_.reserve(sample_n);
  if (sample_n == n) {
    for (std::size_t i = 0; i < n; ++i) c.sample_.push_back(std::fabs(acc[i]));
  } else {
    for (std::size_t i = 0; i < sample_n; ++i) {
      const auto idx = static_cast<std::size_t>(c.rng_.Below(n));
      c.sample_.push_back(std::fabs(acc[idx]));
    }
  }
  // k-th largest sample magnitude approximates the global k% threshold.
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(options_.fraction * static_cast<float>(sample_n))));
  std::nth_element(c.sample_.begin(), c.sample_.begin() + (keep - 1),
                   c.sample_.end(), std::greater<float>());
  const float threshold = c.sample_[keep - 1];

  // Emit: bitmap of selected positions + the selected values in order.
  const std::size_t bitmap_bytes = (n + 7) / 8;
  out.AppendU32(0);  // placeholder for count; patched below
  const std::size_t count_pos = out.size() - 4;
  const std::size_t bitmap_pos = out.size();
  out.Resize(out.size() + bitmap_bytes);
  std::uint32_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const float v = acc[i];
    if (std::fabs(v) >= threshold && threshold > 0.0f) {
      out.data()[bitmap_pos + i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
      ++count;
      res[i] = 0.0f;  // sent: error cleared
    } else {
      res[i] = v;  // unsent: accumulate for a later step
    }
  }
  // Append selected values after the bitmap (second pass keeps the bitmap
  // loop store-free for the common unselected case).
  for (std::size_t i = 0; i < n; ++i) {
    if ((out.data()[bitmap_pos + i / 8] >> (i % 8)) & 1) out.AppendF32(acc[i]);
  }
  std::memcpy(out.data() + count_pos, &count, sizeof(count));
  if (stats != nullptr) {
    stats->has_residual = true;
    double sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sq += static_cast<double>(res[i]) * static_cast<double>(res[i]);
    }
    stats->residual_l2 = std::sqrt(sq);
  }
}

void Sparsify::Decode(ByteReader& in, Tensor& out) const {
  const auto n = static_cast<std::size_t>(out.num_elements());
  const std::uint32_t count = in.ReadU32();
  util::ByteSpan bitmap = in.ReadSpan((n + 7) / 8);
  util::ByteSpan values = in.ReadSpan(count * sizeof(float));
  float* dst = out.data();
  std::size_t vi = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if ((bitmap[i / 8] >> (i % 8)) & 1) {
      if (vi >= count) throw std::runtime_error("Sparsify decode: bitmap/count mismatch");
      float v;
      std::memcpy(&v, values.data() + vi * sizeof(float), sizeof(float));
      dst[i] = v;
      ++vi;
    } else {
      dst[i] = 0.0f;
    }
  }
  if (vi != count) {
    throw std::runtime_error("Sparsify decode: bitmap/count mismatch");
  }
}

}  // namespace threelc::compress
