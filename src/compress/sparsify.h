// "k% sparsification": transmit only the largest-magnitude state changes,
// accumulating unsent changes locally (paper §5.1; reproduces the common
// technique of Gradient Dropping / Gaia / Deep Gradient Compression /
// Bösen without their ML-algorithm modifications).
//
// Following the paper's implementation notes:
//  - absolute magnitude (not relative) selects values;
//  - the threshold comes from sorting a *sample* of the input rather than
//    the full tensor, avoiding an exhaustive sort (Aji & Heafield);
//  - a bitmap marks selected positions: 1 bit per state change of traffic
//    overhead regardless of input size, plus 32 bits per selected value.
//
// Wire format: [u32 count][ceil(n/8) bitmap][count x f32 values].
#pragma once

#include <cstdint>

#include "compress/compressor.h"

namespace threelc::compress {

struct SparsifyOptions {
  // Fraction of values to transmit, e.g. 0.25 or 0.05.
  float fraction = 0.25f;
  // Sample size used to estimate the magnitude threshold.
  std::size_t threshold_sample = 1024;
  // Seed for the sampling RNG.
  std::uint64_t seed = 25;
};

class Sparsify final : public Compressor {
 public:
  explicit Sparsify(SparsifyOptions options);

  std::string name() const override;
  std::unique_ptr<Context> MakeContext(const Shape& shape) const override;
  void Decode(ByteReader& in, Tensor& out) const override;

 protected:
  void EncodeImpl(const Tensor& in, Context& ctx, ByteBuffer& out,
                  EncodeStats* stats) const override;

 private:
  SparsifyOptions options_;
};

}  // namespace threelc::compress
