// 3-value quantization with sparsity multiplication (paper §3.1).
//
//   M          = max(|T_in|) * s            (Eq. 1), 1 <= s < 2
//   T_q        = round(T_in / M)            (Eq. 2), values in {-1, 0, +1}
//   T_out      = M * T_q                    (Eq. 3)
//
// With s = 1 the maximum magnitude is preserved exactly across
// quantize/dequantize. A larger s shrinks |T_in / M| so more values round
// to zero — a sparser ternary tensor that zero-run encoding compresses
// harder — while dequantization *enlarges* the surviving values, preserving
// the tensor's average magnitude better than threshold sparsification.
//
// Error bound (paper §3.1 "Convergence"): round() adds at most 1/2 of an
// output unit, so max|T_in - T_out| <= M/2 < max(|T_in|) for s < 2.
#pragma once

#include <cstddef>
#include <cstdint>

namespace threelc::compress {

// Minimum/maximum legal sparsity multiplier.
inline constexpr float kMinSparsityMultiplier = 1.0f;
// s must stay strictly below 2 or values at max magnitude quantize to 0 and
// the M/2 < max|T_in| convergence bound breaks.
inline constexpr float kMaxSparsityMultiplier = 2.0f;  // exclusive

// Quantizes n floats into ternary {-1, 0, +1} int8 values.
// Returns M = max(|in|) * s. When the input is all zeros, M == 0 and the
// output is all zeros. `out` must hold n int8 values.
//
// Rounding is round-half-away-from-zero, computed branch-free as
// (v >= M/2) - (v <= -M/2), which auto-vectorizes.
float Quantize3(const float* in, std::size_t n, float s, std::int8_t* out);

// Dequantizes ternary values: out[i] = M * q[i].
void Dequantize3(const std::int8_t* q, std::size_t n, float M, float* out);

// Quantizes and simultaneously computes the residual error
// (residual[i] = in[i] - M * out[i]) in one pass — the fused kernel used by
// the 3LC codec's error-accumulation step. Returns M.
float Quantize3WithResidual(const float* in, std::size_t n, float s,
                            std::int8_t* out, float* residual);

}  // namespace threelc::compress
