#include "compress/compressor.h"

namespace threelc::compress {

void Compressor::Encode(const Tensor& in, Context& ctx, ByteBuffer& out,
                        EncodeStats* stats) const {
  if (stats == nullptr) {
    EncodeImpl(in, ctx, out, nullptr);
    return;
  }
  const std::size_t before = out.size();
  EncodeImpl(in, ctx, out, stats);
  stats->elements = static_cast<std::size_t>(in.num_elements());
  stats->payload_bytes = out.size() - before;
}

Tensor RoundTrip(const Compressor& codec, const Tensor& in, Context& ctx) {
  ByteBuffer buf;
  codec.Encode(in, ctx, buf);
  Tensor out(in.shape());
  ByteReader reader(buf);
  codec.Decode(reader, out);
  return out;
}

double CompressionRatio(std::size_t num_elements, std::size_t payload_bytes) {
  if (payload_bytes == 0) return 0.0;
  return static_cast<double>(num_elements * sizeof(float)) /
         static_cast<double>(payload_bytes);
}

double BitsPerValue(std::size_t num_elements, std::size_t payload_bytes) {
  if (num_elements == 0) return 0.0;
  return static_cast<double>(payload_bytes) * 8.0 /
         static_cast<double>(num_elements);
}

}  // namespace threelc::compress
