#include "compress/huffman.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <queue>
#include <stdexcept>
#include <vector>

namespace threelc::compress {

namespace {

constexpr int kSymbols = 256;
constexpr int kMaxCodeLen = 57;  // fits a u64 bit accumulator with slack

// Computes Huffman code lengths from symbol frequencies via the standard
// two-queue/heap construction over an implicit tree.
std::vector<std::uint8_t> CodeLengths(const std::vector<std::uint64_t>& freq) {
  struct Node {
    std::uint64_t weight;
    int index;  // < kSymbols: leaf symbol; >= kSymbols: internal
  };
  auto cmp = [](const Node& a, const Node& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.index > b.index;  // deterministic tie-break
  };
  std::priority_queue<Node, std::vector<Node>, decltype(cmp)> heap(cmp);

  std::vector<int> parent;
  parent.reserve(kSymbols * 2);
  int next_internal = kSymbols;
  std::vector<int> ids;  // map: node id -> parent slot position
  (void)ids;

  // parent[i] indexed by node id (leaves 0..255, internals 256..).
  std::vector<int> parents(kSymbols, -1);
  int present = 0;
  for (int s = 0; s < kSymbols; ++s) {
    if (freq[static_cast<std::size_t>(s)] > 0) {
      heap.push({freq[static_cast<std::size_t>(s)], s});
      ++present;
    }
  }
  if (present == 0) return std::vector<std::uint8_t>(kSymbols, 0);
  if (present == 1) {
    // Degenerate: give the lone symbol a 1-bit code.
    std::vector<std::uint8_t> lengths(kSymbols, 0);
    for (int s = 0; s < kSymbols; ++s) {
      if (freq[static_cast<std::size_t>(s)] > 0) {
        lengths[static_cast<std::size_t>(s)] = 1;
      }
    }
    return lengths;
  }

  while (heap.size() > 1) {
    const Node a = heap.top();
    heap.pop();
    const Node b = heap.top();
    heap.pop();
    const int internal = next_internal++;
    parents.resize(static_cast<std::size_t>(internal + 1), -1);
    parents[static_cast<std::size_t>(a.index)] = internal;
    parents[static_cast<std::size_t>(b.index)] = internal;
    heap.push({a.weight + b.weight, internal});
  }

  std::vector<std::uint8_t> lengths(kSymbols, 0);
  int max_depth = 0;
  for (int s = 0; s < kSymbols; ++s) {
    if (freq[static_cast<std::size_t>(s)] == 0) continue;
    int depth = 0;
    for (int node = s; parents[static_cast<std::size_t>(node)] != -1;
         node = parents[static_cast<std::size_t>(node)]) {
      ++depth;
    }
    lengths[static_cast<std::size_t>(s)] = static_cast<std::uint8_t>(depth);
    max_depth = std::max(max_depth, depth);
  }
  if (max_depth > kMaxCodeLen) {
    // Pathological frequency skew: fall back to a flat fixed-length code
    // (all equal lengths form a valid prefix code).
    for (int s = 0; s < kSymbols; ++s) {
      lengths[static_cast<std::size_t>(s)] =
          freq[static_cast<std::size_t>(s)] > 0 ? 8 : 0;
    }
  }
  return lengths;
}

// Canonical code assignment: symbols sorted by (length, value).
void CanonicalCodes(const std::vector<std::uint8_t>& lengths,
                    std::vector<std::uint64_t>& codes) {
  codes.assign(kSymbols, 0);
  std::vector<int> order;
  for (int s = 0; s < kSymbols; ++s) {
    if (lengths[static_cast<std::size_t>(s)] > 0) order.push_back(s);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto la = lengths[static_cast<std::size_t>(a)];
    const auto lb = lengths[static_cast<std::size_t>(b)];
    if (la != lb) return la < lb;
    return a < b;
  });
  std::uint64_t code = 0;
  std::uint8_t prev_len = 0;
  for (int s : order) {
    const std::uint8_t len = lengths[static_cast<std::size_t>(s)];
    code <<= (len - prev_len);
    codes[static_cast<std::size_t>(s)] = code;
    ++code;
    prev_len = len;
  }
}

}  // namespace

std::size_t HuffmanEncode(util::ByteSpan in, util::ByteBuffer& out) {
  const std::size_t start = out.size();
  out.AppendU32(static_cast<std::uint32_t>(in.size()));
  if (in.empty()) {
    out.AppendU8(0);
    return out.size() - start;
  }

  std::vector<std::uint64_t> freq(kSymbols, 0);
  for (std::uint8_t b : in) ++freq[b];
  const std::vector<std::uint8_t> lengths = CodeLengths(freq);
  std::uint8_t max_len = 0;
  for (auto l : lengths) max_len = std::max(max_len, l);
  out.AppendU8(max_len);
  for (int s = 0; s < kSymbols; ++s) {
    out.AppendU8(lengths[static_cast<std::size_t>(s)]);
  }

  std::vector<std::uint64_t> codes;
  CanonicalCodes(lengths, codes);

  // Bit-pack MSB-first.
  std::uint64_t total_bits = 0;
  for (int s = 0; s < kSymbols; ++s) {
    total_bits += freq[static_cast<std::size_t>(s)] *
                  lengths[static_cast<std::size_t>(s)];
  }
  out.AppendU32(static_cast<std::uint32_t>(total_bits));
  std::uint64_t acc = 0;
  int acc_bits = 0;
  for (std::uint8_t b : in) {
    const std::uint8_t len = lengths[b];
    acc = (acc << len) | codes[b];
    acc_bits += len;
    while (acc_bits >= 8) {
      out.PushByte(static_cast<std::uint8_t>(acc >> (acc_bits - 8)));
      acc_bits -= 8;
    }
  }
  if (acc_bits > 0) {
    out.PushByte(static_cast<std::uint8_t>(acc << (8 - acc_bits)));
  }
  return out.size() - start;
}

std::size_t HuffmanDecode(util::ByteReader& reader, util::ByteBuffer& out,
                          std::size_t max_output) {
  const std::size_t start = out.size();
  const std::uint32_t original_len = reader.ReadU32();
  if (original_len > max_output) {
    throw std::runtime_error("HuffmanDecode: output overflow");
  }
  const std::uint8_t max_len = reader.ReadU8();
  if (original_len == 0) return 0;
  if (max_len == 0 || max_len > kMaxCodeLen) {
    throw std::runtime_error("HuffmanDecode: bad max code length");
  }

  std::vector<std::uint8_t> lengths(kSymbols);
  for (int s = 0; s < kSymbols; ++s) {
    lengths[static_cast<std::size_t>(s)] = reader.ReadU8();
    if (lengths[static_cast<std::size_t>(s)] > max_len) {
      throw std::runtime_error("HuffmanDecode: code length exceeds max");
    }
  }
  std::vector<std::uint64_t> codes;
  CanonicalCodes(lengths, codes);

  // Build canonical decode bounds: for each length, the first code and the
  // index of its first symbol in the sorted order.
  std::vector<int> order;
  for (int s = 0; s < kSymbols; ++s) {
    if (lengths[static_cast<std::size_t>(s)] > 0) order.push_back(s);
  }
  if (order.empty()) throw std::runtime_error("HuffmanDecode: empty table");
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto la = lengths[static_cast<std::size_t>(a)];
    const auto lb = lengths[static_cast<std::size_t>(b)];
    if (la != lb) return la < lb;
    return a < b;
  });
  // first_code[len], first_index[len], count[len]
  std::vector<std::uint64_t> first_code(static_cast<std::size_t>(max_len) + 1, 0);
  std::vector<int> first_index(static_cast<std::size_t>(max_len) + 1, 0);
  std::vector<int> count(static_cast<std::size_t>(max_len) + 1, 0);
  for (int s : order) ++count[lengths[static_cast<std::size_t>(s)]];
  {
    std::uint64_t code = 0;
    int index = 0;
    for (int len = 1; len <= max_len; ++len) {
      code <<= 1;
      first_code[static_cast<std::size_t>(len)] = code;
      first_index[static_cast<std::size_t>(len)] = index;
      code += static_cast<std::uint64_t>(count[static_cast<std::size_t>(len)]);
      index += count[static_cast<std::size_t>(len)];
    }
  }

  const std::uint32_t total_bits = reader.ReadU32();
  util::ByteSpan bits = reader.ReadSpan((total_bits + 7) / 8);

  std::uint64_t acc = 0;
  int acc_bits = 0;
  std::size_t bit_pos = 0;
  std::size_t byte_pos = 0;
  for (std::uint32_t produced = 0; produced < original_len; ++produced) {
    std::uint64_t code = 0;
    int len = 0;
    for (;;) {
      if (acc_bits == 0) {
        if (byte_pos >= bits.size()) {
          throw std::runtime_error("HuffmanDecode: bitstream underflow");
        }
        acc = bits[byte_pos++];
        acc_bits = 8;
      }
      code = (code << 1) | ((acc >> (acc_bits - 1)) & 1);
      --acc_bits;
      ++len;
      ++bit_pos;
      if (bit_pos > total_bits) {
        throw std::runtime_error("HuffmanDecode: bitstream overrun");
      }
      if (len > max_len) {
        throw std::runtime_error("HuffmanDecode: invalid code");
      }
      if (count[static_cast<std::size_t>(len)] > 0 &&
          code < first_code[static_cast<std::size_t>(len)] +
                     static_cast<std::uint64_t>(
                         count[static_cast<std::size_t>(len)]) &&
          code >= first_code[static_cast<std::size_t>(len)]) {
        const int idx = first_index[static_cast<std::size_t>(len)] +
                        static_cast<int>(
                            code - first_code[static_cast<std::size_t>(len)]);
        out.PushByte(static_cast<std::uint8_t>(order[static_cast<std::size_t>(idx)]));
        break;
      }
    }
  }
  return out.size() - start;
}

double ByteEntropyBits(util::ByteSpan in) {
  if (in.empty()) return 0.0;
  std::vector<std::uint64_t> freq(256, 0);
  for (std::uint8_t b : in) ++freq[b];
  double entropy = 0.0;
  const double n = static_cast<double>(in.size());
  for (auto f : freq) {
    if (f == 0) continue;
    const double p = static_cast<double>(f) / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

}  // namespace threelc::compress
