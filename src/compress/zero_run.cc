#include "compress/zero_run.h"

#include <stdexcept>

#include "compress/quartic.h"

namespace threelc::compress {

std::size_t ZeroRunEncode(util::ByteSpan in, util::ByteBuffer& out) {
  const std::size_t start = out.size();
  const std::size_t n = in.size();
  std::size_t i = 0;
  while (i < n) {
    const std::uint8_t b = in[i];
    if (b != kQuarticZeroByte) {
      out.PushByte(b);
      ++i;
      continue;
    }
    // Measure the run of 121s.
    std::size_t run = 1;
    while (i + run < n && in[i + run] == kQuarticZeroByte) ++run;
    i += run;
    // Greedily emit maximal chunks; a leftover single 121 passes through.
    while (run >= 2) {
      const std::size_t chunk = run < kZreMaxRun ? run : kZreMaxRun;
      out.PushByte(static_cast<std::uint8_t>(kZreRunBase + (chunk - 2)));
      run -= chunk;
    }
    if (run == 1) out.PushByte(kQuarticZeroByte);
  }
  return out.size() - start;
}

std::size_t ZeroRunDecode(util::ByteSpan in, util::ByteBuffer& out,
                          std::size_t max_output) {
  const std::size_t start = out.size();
  for (std::size_t i = 0; i < in.size(); ++i) {
    const std::uint8_t b = in[i];
    if (b >= kZreRunBase) {
      const std::size_t run = static_cast<std::size_t>(b - kZreRunBase) + 2;
      if (out.size() - start + run > max_output) {
        throw std::runtime_error("ZeroRunDecode: output overflow");
      }
      for (std::size_t k = 0; k < run; ++k) out.PushByte(kQuarticZeroByte);
    } else {
      if (out.size() - start + 1 > max_output) {
        throw std::runtime_error("ZeroRunDecode: output overflow");
      }
      out.PushByte(b);
    }
  }
  return out.size() - start;
}

}  // namespace threelc::compress
