#include "compress/eight_bit.h"

#include <cmath>

namespace threelc::compress {

std::unique_ptr<Context> EightBitInt::MakeContext(const Shape&) const {
  return std::make_unique<Context>();
}

void EightBitInt::EncodeImpl(const Tensor& in, Context&, ByteBuffer& out,
                             EncodeStats*) const {
  const auto n = static_cast<std::size_t>(in.num_elements());
  const float* src = in.data();
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float a = std::fabs(src[i]);
    m = a > m ? a : m;
  }
  out.AppendF32(m);
  const std::size_t base = out.size();
  out.Resize(base + n);
  std::uint8_t* dst = out.data() + base;
  if (m == 0.0f) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  const float scale = 127.0f / m;
  for (std::size_t i = 0; i < n; ++i) {
    // |src[i]| <= m so the product is within [-127, 127]; +-0.5 rounding
    // stays within int8 range.
    const float v = src[i] * scale;
    const float r = v >= 0.0f ? v + 0.5f : v - 0.5f;  // round half away
    dst[i] = static_cast<std::uint8_t>(static_cast<std::int8_t>(r));
  }
}

void EightBitInt::Decode(ByteReader& in, Tensor& out) const {
  const auto n = static_cast<std::size_t>(out.num_elements());
  const float m = in.ReadF32();
  util::ByteSpan payload = in.ReadSpan(n);
  float* dst = out.data();
  const float scale = m / 127.0f;
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = scale * static_cast<float>(static_cast<std::int8_t>(payload[i]));
  }
}

}  // namespace threelc::compress
