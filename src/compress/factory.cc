#include "compress/factory.h"

#include "compress/eight_bit.h"
#include "compress/local_steps.h"
#include "compress/mqe_one_bit.h"
#include "compress/none.h"
#include "compress/sparsify.h"
#include "compress/stoch_three.h"
#include "compress/three_lc.h"
#include "util/logging.h"

namespace threelc::compress {

CodecConfig CodecConfig::Float32() {
  CodecConfig c;
  c.kind = CodecKind::kFloat32;
  return c;
}

CodecConfig CodecConfig::EightBit() {
  CodecConfig c;
  c.kind = CodecKind::kEightBit;
  return c;
}

CodecConfig CodecConfig::StochThreeQE(std::uint64_t seed) {
  CodecConfig c;
  c.kind = CodecKind::kStochThreeQE;
  c.seed = seed;
  return c;
}

CodecConfig CodecConfig::MqeOneBit() {
  CodecConfig c;
  c.kind = CodecKind::kMqeOneBit;
  return c;
}

CodecConfig CodecConfig::Sparsification(float fraction) {
  CodecConfig c;
  c.kind = CodecKind::kSparsify;
  c.sparsify_fraction = fraction;
  return c;
}

CodecConfig CodecConfig::TwoLocalSteps() {
  CodecConfig c;
  c.kind = CodecKind::kLocalSteps;
  c.local_period = 2;
  return c;
}

CodecConfig CodecConfig::ThreeLC(float s) {
  CodecConfig c;
  c.kind = CodecKind::kThreeLC;
  c.sparsity_multiplier = s;
  return c;
}

std::unique_ptr<Compressor> MakeCompressor(const CodecConfig& config) {
  switch (config.kind) {
    case CodecKind::kFloat32:
      return std::make_unique<class Float32>();
    case CodecKind::kEightBit:
      return std::make_unique<EightBitInt>();
    case CodecKind::kStochThreeQE:
      return std::make_unique<StochThreeValueQE>(config.seed);
    case CodecKind::kMqeOneBit:
      return std::make_unique<class MqeOneBit>();
    case CodecKind::kSparsify: {
      SparsifyOptions opt;
      opt.fraction = config.sparsify_fraction;
      opt.seed = config.seed;
      return std::make_unique<Sparsify>(opt);
    }
    case CodecKind::kLocalSteps:
      return std::make_unique<LocalSteps>(config.local_period);
    case CodecKind::kThreeLC: {
      ThreeLCOptions opt;
      opt.sparsity_multiplier = config.sparsity_multiplier;
      opt.zero_run = config.zero_run;
      opt.error_accumulation = config.error_accumulation;
      return std::make_unique<class ThreeLC>(opt);
    }
  }
  THREELC_CHECK_MSG(false, "unknown codec kind");
  return nullptr;
}

std::vector<CodecConfig> Table1Designs() {
  return {
      CodecConfig::Float32(),
      CodecConfig::EightBit(),
      CodecConfig::StochThreeQE(),
      CodecConfig::MqeOneBit(),
      CodecConfig::Sparsification(0.25f),
      CodecConfig::Sparsification(0.05f),
      CodecConfig::TwoLocalSteps(),
      CodecConfig::ThreeLC(1.00f),
      CodecConfig::ThreeLC(1.50f),
      CodecConfig::ThreeLC(1.75f),
      CodecConfig::ThreeLC(1.90f),
  };
}

}  // namespace threelc::compress
