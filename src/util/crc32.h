// CRC32C (Castagnoli, polynomial 0x1EDC6F41): the payload checksum shared
// by the RPC wire framing (rpc/frame) and the optional checkpoint trailer
// (nn/checkpoint).
//
// Slice-by-4 table lookup: four 256-entry tables processed 4 input bytes
// per iteration — fast enough to checksum every frame on the wire path
// without dedicated hardware instructions, and dependency-free.
//
// Convention (matches leveldb/rocksdb crc32c): values are *finalized*
// CRCs. Crc32cExtend(prev, ...) takes a finalized CRC and returns the
// finalized CRC of the concatenation, so incremental use is simply
//   crc = Crc32cExtend(crc, chunk.data(), chunk.size());
// starting from 0 (== Crc32c of the empty string).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/byte_buffer.h"

namespace threelc::util {

// CRC32C of `data[0, n)` continued from a previous finalized CRC.
std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data,
                           std::size_t n);

// One-shot CRC32C. Crc32c("123456789", 9) == 0xE3069283.
inline std::uint32_t Crc32c(const void* data, std::size_t n) {
  return Crc32cExtend(0, data, n);
}
inline std::uint32_t Crc32c(ByteSpan s) { return Crc32c(s.data(), s.size()); }

}  // namespace threelc::util
