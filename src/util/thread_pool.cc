#include "util/thread_pool.h"

#include <algorithm>

namespace threelc::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();  // rethrows task exceptions
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace threelc::util
