// Growable byte buffer with typed append/read helpers.
//
// Codec outputs, parameter-server messages, and on-wire payloads are all
// ByteBuffers. Reading happens through ByteReader, a non-owning cursor over
// a span of bytes, so decode paths never copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace threelc::util {

using ByteSpan = std::span<const std::uint8_t>;

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::size_t reserve_bytes) { data_.reserve(reserve_bytes); }

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  const std::uint8_t* data() const { return data_.data(); }
  std::uint8_t* data() { return data_.data(); }
  ByteSpan span() const { return ByteSpan(data_.data(), data_.size()); }

  void Clear() { data_.clear(); }
  void Reserve(std::size_t n) { data_.reserve(n); }
  // Grow or shrink to exactly n bytes. Growth zero-fills the new bytes
  // (std::vector semantics) — there is deliberately no uninitialized-growth
  // path, so a Resize followed by a partial overwrite can never leak stale
  // heap bytes onto the wire. Callers that build payloads incrementally
  // should use the Append*/Push APIs instead of Resize + data().
  void Resize(std::size_t n) { data_.resize(n); }

  void PushByte(std::uint8_t b) { data_.push_back(b); }

  void Append(const void* src, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(src);
    data_.insert(data_.end(), p, p + n);
  }
  void Append(ByteSpan s) { Append(s.data(), s.size()); }

  // Little-endian scalar writers (the library targets little-endian hosts;
  // a static_assert in byte_buffer.cc enforces this).
  template <typename T>
  void AppendScalar(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Append(&v, sizeof(T));
  }

  void AppendU8(std::uint8_t v) { PushByte(v); }
  void AppendU16(std::uint16_t v) { AppendScalar(v); }
  void AppendU32(std::uint32_t v) { AppendScalar(v); }
  void AppendU64(std::uint64_t v) { AppendScalar(v); }
  void AppendF32(float v) { AppendScalar(v); }
  void AppendF64(double v) { AppendScalar(v); }

  bool operator==(const ByteBuffer& o) const { return data_ == o.data_; }

 private:
  std::vector<std::uint8_t> data_;
};

// Non-owning read cursor. Throws std::out_of_range on underflow so corrupt
// payloads fail loudly instead of reading garbage.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan s) : span_(s) {}
  explicit ByteReader(const ByteBuffer& b) : span_(b.span()) {}

  std::size_t remaining() const { return span_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == span_.size(); }

  std::uint8_t ReadByte() {
    Require(1);
    return span_[pos_++];
  }

  void ReadInto(void* dst, std::size_t n) {
    Require(n);
    std::memcpy(dst, span_.data() + pos_, n);
    pos_ += n;
  }

  template <typename T>
  T ReadScalar() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    ReadInto(&v, sizeof(T));
    return v;
  }

  std::uint8_t ReadU8() { return ReadByte(); }
  std::uint16_t ReadU16() { return ReadScalar<std::uint16_t>(); }
  std::uint32_t ReadU32() { return ReadScalar<std::uint32_t>(); }
  std::uint64_t ReadU64() { return ReadScalar<std::uint64_t>(); }
  float ReadF32() { return ReadScalar<float>(); }
  double ReadF64() { return ReadScalar<double>(); }

  // View of the next n bytes without copying; advances the cursor.
  ByteSpan ReadSpan(std::size_t n) {
    Require(n);
    ByteSpan out = span_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

 private:
  void Require(std::size_t n) const {
    if (remaining() < n) {
      throw std::out_of_range("ByteReader underflow: need " +
                              std::to_string(n) + " bytes, have " +
                              std::to_string(remaining()));
    }
  }

  ByteSpan span_;
  std::size_t pos_ = 0;
};

}  // namespace threelc::util
