// CSV emission for benchmark harness outputs (one file per table/figure).
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace threelc::util {

class CsvWriter {
 public:
  // Writes to `path`; throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  class Row {
   public:
    explicit Row(CsvWriter* w) : writer_(w) {}
    Row(Row&& o) noexcept : writer_(o.writer_), cells_(std::move(o.cells_)) {
      o.writer_ = nullptr;
    }
    ~Row();

    template <typename T>
    Row& Add(const T& v) {
      std::ostringstream oss;
      oss << v;
      cells_.push_back(Escape(oss.str()));
      return *this;
    }

   private:
    static std::string Escape(const std::string& s);
    CsvWriter* writer_;
    std::vector<std::string> cells_;
  };

  Row NewRow() { return Row(this); }
  const std::string& path() const { return path_; }
  std::size_t rows_written() const { return rows_; }

 private:
  friend class Row;
  void WriteLine(const std::vector<std::string>& cells);

  std::string path_;
  std::ofstream out_;
  std::size_t rows_ = 0;
};

}  // namespace threelc::util
