// Minimal leveled logging and check macros.
//
// THREELC_CHECK is used for invariant violations that indicate programmer
// error (aborts); recoverable decode errors use exceptions instead.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace threelc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global verbosity; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parse "debug" | "info" | "warn" | "error" (case-insensitive; "warning"
// also accepted). Returns false and leaves *out untouched on other input.
bool ParseLogLevel(const std::string& name, LogLevel* out);
const char* LogLevelName(LogLevel level);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// A no-op sink so disabled log statements still typecheck their arguments.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& msg);

}  // namespace threelc::util

#define THREELC_LOG(level)                                               \
  ::threelc::util::LogMessage(::threelc::util::LogLevel::k##level,       \
                              __FILE__, __LINE__)                        \
      .stream()

#define THREELC_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::threelc::util::CheckFailed(#expr, __FILE__, __LINE__, "");       \
    }                                                                    \
  } while (0)

#define THREELC_CHECK_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream oss_;                                           \
      oss_ << msg;                                                       \
      ::threelc::util::CheckFailed(#expr, __FILE__, __LINE__, oss_.str()); \
    }                                                                    \
  } while (0)
