// Crash-safe file replacement: write to a temp sibling, fsync, rename.
//
// rename(2) within one directory is atomic on POSIX filesystems, so a
// reader never observes a half-written file at `path` — it sees either
// the previous complete contents or the new complete contents. The fsync
// before the rename orders the data ahead of the name change, so a power
// loss cannot leave the new name pointing at unwritten blocks. This is
// the write path for every checkpoint in the repo (worker v3 and the
// server-state record): a crash mid-checkpoint must never leave a torn
// file that exists but fails its CRC on the next boot.
//
// Usage:
//   AtomicFileWriter w(path);          // opens "<path>.tmp.<pid>"
//   w.Write(data, n); ...              // any number of writes
//   w.Commit();                        // fsync + rename into place; throws
//                                      // std::runtime_error on any failure
// A writer destroyed without Commit() (exception unwind, early return)
// removes its temp file; the previous checkpoint at `path` is untouched.
#pragma once

#include <cstddef>
#include <string>

namespace threelc::util {

class AtomicFileWriter {
 public:
  // Opens the temp sibling for writing. Throws std::runtime_error when the
  // temp file cannot be created.
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  // Appends `n` bytes. Throws std::runtime_error on I/O failure.
  void Write(const void* data, std::size_t n);

  // fsync(temp) + rename(temp -> path). Throws std::runtime_error on
  // failure (the temp file is removed either way). No further writes are
  // allowed after Commit.
  void Commit();

  const std::string& path() const { return path_; }
  const std::string& temp_path() const { return temp_path_; }

 private:
  void Abort();  // close + unlink the temp file, best effort

  std::string path_;
  std::string temp_path_;
  int fd_ = -1;
  bool committed_ = false;
};

}  // namespace threelc::util
