// Crash-safe file replacement: write to a temp sibling, fsync, rename,
// fsync the parent directory.
//
// rename(2) within one directory is atomic on POSIX filesystems, so a
// reader never observes a half-written file at `path` — it sees either
// the previous complete contents or the new complete contents. The fsync
// before the rename orders the data ahead of the name change, so a power
// loss cannot leave the new name pointing at unwritten blocks; the fsync
// of the parent directory after the rename makes the name change itself
// durable (the rename lives in the directory's data — without this sync
// a power loss can silently revert a "committed" file to its previous
// contents, which for a write-ahead checkpoint would resurrect a state
// the workers have already moved past). After Commit() returns, the new
// contents are on disk under `path` and survive power loss. This is the
// write path for every checkpoint in the repo (worker v3 and the server
// generation files): a crash mid-checkpoint must never leave a torn file
// that exists but fails its CRC on the next boot.
//
// Usage:
//   AtomicFileWriter w(path);          // opens "<path>.tmp.<pid>"
//   w.Write(data, n); ...              // any number of writes
//   w.Commit();                        // fsync + rename + dir fsync;
//                                      // throws std::runtime_error on
//                                      // any failure
// A writer destroyed without Commit() (exception unwind, early return)
// removes its temp file; the previous checkpoint at `path` is untouched.
//
// All syscalls go through an injectable util::Fs (nullptr selects the
// real filesystem), so storage-fault drills can fail exactly one write
// or tear exactly one rename; see util/fs.h.
#pragma once

#include <cstddef>
#include <string>

#include "util/fs.h"

namespace threelc::util {

class AtomicFileWriter {
 public:
  // Opens the temp sibling for writing. Throws std::runtime_error when the
  // temp file cannot be created. `fs` is the syscall seam; nullptr means
  // the real filesystem.
  explicit AtomicFileWriter(std::string path, Fs* fs = nullptr);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  // Appends `n` bytes. Throws std::runtime_error on I/O failure.
  void Write(const void* data, std::size_t n);

  // fsync(temp) + rename(temp -> path) + fsync(parent dir). Throws
  // std::runtime_error on failure (the temp file is removed either way).
  // No further writes are allowed after Commit.
  void Commit();

  const std::string& path() const { return path_; }
  const std::string& temp_path() const { return temp_path_; }

 private:
  void Abort();  // close + unlink the temp file, best effort

  Fs& fs_;
  std::string path_;
  std::string temp_path_;
  int fd_ = -1;
  bool committed_ = false;
};

}  // namespace threelc::util
