#include "util/csv_writer.h"

#include <stdexcept>

namespace threelc::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  WriteLine(header);
  rows_ = 0;  // header does not count as a data row
}

CsvWriter::~CsvWriter() = default;

CsvWriter::Row::~Row() {
  if (writer_ != nullptr) writer_->WriteLine(cells_);
}

std::string CsvWriter::Row::Escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteLine(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
  out_.flush();
  ++rows_;
}

}  // namespace threelc::util
