#include "util/byte_buffer.h"

#include <bit>

namespace threelc::util {

static_assert(std::endian::native == std::endian::little,
              "threelc on-wire format assumes a little-endian host");

}  // namespace threelc::util
