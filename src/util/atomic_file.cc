#include "util/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace threelc::util {

namespace {

std::string ErrnoString(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// The directory whose entry table holds `path` — what must be fsynced
// for a rename into `path` to survive power loss.
std::string ParentDir(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(std::string path, Fs* fs)
    : fs_(ResolveFs(fs)),
      path_(std::move(path)),
      // The pid suffix keeps concurrent writers (e.g. a supervisor and a
      // child both checkpointing into one state dir) from clobbering each
      // other's in-flight temp file; the rename still serializes them.
      temp_path_(path_ + ".tmp." + std::to_string(::getpid())) {
  fd_ = fs_.Open(temp_path_, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("atomic write: cannot create " + temp_path_ +
                             " (" + ErrnoString("open") + ")");
  }
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) Abort();
}

void AtomicFileWriter::Abort() {
  if (fd_ >= 0) {
    fs_.Close(fd_);
    fd_ = -1;
  }
  fs_.Unlink(temp_path_);
}

void AtomicFileWriter::Write(const void* data, std::size_t n) {
  if (fd_ < 0) {
    throw std::runtime_error("atomic write: writer for " + path_ +
                             " is closed");
  }
  const auto* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t written = fs_.Write(fd_, p, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      const std::string err = ErrnoString("write");
      Abort();
      throw std::runtime_error("atomic write: writing " + temp_path_ + " (" +
                               err + ")");
    }
    p += written;
    n -= static_cast<std::size_t>(written);
  }
}

void AtomicFileWriter::Commit() {
  if (fd_ < 0) {
    throw std::runtime_error("atomic write: writer for " + path_ +
                             " is closed");
  }
  if (fs_.Fsync(fd_) != 0) {
    const std::string err = ErrnoString("fsync");
    Abort();
    throw std::runtime_error("atomic write: syncing " + temp_path_ + " (" +
                             err + ")");
  }
  if (fs_.Close(fd_) != 0) {
    fd_ = -1;
    const std::string err = ErrnoString("close");
    fs_.Unlink(temp_path_);
    throw std::runtime_error("atomic write: closing " + temp_path_ + " (" +
                             err + ")");
  }
  fd_ = -1;
  if (fs_.Rename(temp_path_, path_) != 0) {
    const std::string err = ErrnoString("rename");
    fs_.Unlink(temp_path_);
    throw std::runtime_error("atomic write: renaming " + temp_path_ +
                             " -> " + path_ + " (" + err + ")");
  }
  // Make the rename itself durable: the new directory entry lives in the
  // parent's data, and only an fsync of the directory pins it. Without
  // this a power loss after Commit() could resurrect the old file.
  const std::string dir = ParentDir(path_);
  const int dir_fd = fs_.Open(dir, O_RDONLY | O_DIRECTORY, 0);
  if (dir_fd < 0) {
    throw std::runtime_error("atomic write: opening directory " + dir +
                             " (" + ErrnoString("open") + ")");
  }
  if (fs_.Fsync(dir_fd) != 0) {
    const std::string err = ErrnoString("fsync");
    fs_.Close(dir_fd);
    throw std::runtime_error("atomic write: syncing directory " + dir + " (" +
                             err + ")");
  }
  fs_.Close(dir_fd);
  committed_ = true;
}

}  // namespace threelc::util
