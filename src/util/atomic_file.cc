#include "util/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace threelc::util {

namespace {

std::string ErrnoString(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)),
      // The pid suffix keeps concurrent writers (e.g. a supervisor and a
      // child both checkpointing into one state dir) from clobbering each
      // other's in-flight temp file; the rename still serializes them.
      temp_path_(path_ + ".tmp." + std::to_string(::getpid())) {
  fd_ = ::open(temp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("atomic write: cannot create " + temp_path_ +
                             " (" + ErrnoString("open") + ")");
  }
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) Abort();
}

void AtomicFileWriter::Abort() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  ::unlink(temp_path_.c_str());
}

void AtomicFileWriter::Write(const void* data, std::size_t n) {
  if (fd_ < 0) {
    throw std::runtime_error("atomic write: writer for " + path_ +
                             " is closed");
  }
  const auto* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t written = ::write(fd_, p, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      const std::string err = ErrnoString("write");
      Abort();
      throw std::runtime_error("atomic write: writing " + temp_path_ + " (" +
                               err + ")");
    }
    p += written;
    n -= static_cast<std::size_t>(written);
  }
}

void AtomicFileWriter::Commit() {
  if (fd_ < 0) {
    throw std::runtime_error("atomic write: writer for " + path_ +
                             " is closed");
  }
  if (::fsync(fd_) != 0) {
    const std::string err = ErrnoString("fsync");
    Abort();
    throw std::runtime_error("atomic write: syncing " + temp_path_ + " (" +
                             err + ")");
  }
  if (::close(fd_) != 0) {
    fd_ = -1;
    const std::string err = ErrnoString("close");
    ::unlink(temp_path_.c_str());
    throw std::runtime_error("atomic write: closing " + temp_path_ + " (" +
                             err + ")");
  }
  fd_ = -1;
  if (::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    const std::string err = ErrnoString("rename");
    ::unlink(temp_path_.c_str());
    throw std::runtime_error("atomic write: renaming " + temp_path_ +
                             " -> " + path_ + " (" + err + ")");
  }
  committed_ = true;
}

}  // namespace threelc::util
