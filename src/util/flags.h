// Minimal command-line flag parsing for examples and bench binaries.
//
// Supports --key=value and --key value forms plus boolean --key. Unknown
// flags are collected so callers can warn; positional arguments are kept
// in order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace threelc::util {

class Flags {
 public:
  Flags(int argc, char** argv);

  // Typed getters with defaults. Throws std::runtime_error when the flag
  // value is present but not parseable as the requested type.
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  std::int64_t GetInt(const std::string& name,
                      std::int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;
  // Like GetInt but additionally range-checks a present value against
  // [0, 65535]. The default is returned untouched when the flag is absent
  // (so -1 can mean "disabled").
  int GetPort(const std::string& name, int default_value) const;

  bool Has(const std::string& name) const;
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program_name() const { return program_name_; }

 private:
  std::string program_name_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace threelc::util
