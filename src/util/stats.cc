#include "util/stats.h"

#include <cassert>

namespace threelc::util {

void RunningStat::Add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::Merge(const RunningStat& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(o.n_);
  const double n = na + nb;
  m2_ += o.m2_ + delta * delta * na * nb / n;
  mean_ += delta * nb / n;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

void RunningStat::Reset() { *this = RunningStat(); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::Add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::Merge(const Histogram& other) {
  assert(other.lo_ == lo_ && other.hi_ == hi_ &&
         other.counts_.size() == counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::size_t>(
      q * static_cast<double>(total_ - 1));
  std::size_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) {
      const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
      return lo_ + (static_cast<double>(i) + 0.5) * width;
    }
  }
  return hi_;
}

}  // namespace threelc::util
