// Timing for codec-overhead and per-step measurements.
#pragma once

#include <chrono>
#include <ctime>

namespace threelc::util {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Per-thread CPU time. Codec-overhead measurements use this rather than
// wall-clock so that results are immune to preemption when simulated
// workers oversubscribe the host's cores — on the paper's cluster each
// worker has dedicated CPUs, which thread CPU time models faithfully.
class CpuTimer {
 public:
  CpuTimer() : start_(Now()) {}
  void Reset() { start_ = Now(); }
  double ElapsedSeconds() const { return Now() - start_; }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  static double Now() {
    timespec ts;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
  double start_;
};

}  // namespace threelc::util
