// Injectable filesystem seam for the durable-write path.
//
// Every syscall AtomicFileWriter (and through it every checkpoint save)
// makes goes through a Fs*, so tests and chaos drills can interpose a
// deterministic FaultFs that fails exactly the call they aim at: ENOSPC
// on the third write, a failing fsync, a rename that "succeeds" without
// happening (the torn-write crash point: temp left behind, target
// untouched). Production code passes nullptr and gets Fs::Real(), a
// stateless singleton that forwards to the libc calls 1:1 — the seam
// costs one virtual dispatch per syscall on a path that is already
// dominated by the disk.
//
// FaultFs rules use the same compact spec grammar as rpc/fault.h, with
// the frame (type, step) coordinates replaced by (operation, call index):
//
//   ACTION:OP@CALL[#OCCURRENCE]
//
//   ACTION      enospc | eio | short | fsyncfail | torn
//   OP          open | write | fsync | rename | unlink | any
//   CALL        the Nth (0-based) call of that operation, or any
//   OCCURRENCE  fire only on the Nth matching call (0-based, default 0),
//               or * to fire on every match
//
// Examples: "enospc:write@any#*" (every write fails ENOSPC — a full
// disk), "eio:fsync@2" (the third fsync fails EIO), "short:write@0"
// (the first write consumes only part of its buffer — exercises the
// caller's retry loop), "torn:rename@1" (the second rename is swallowed:
// the temp file stays, the target is never replaced, and the injector
// latches a crash request so the host process can die at exactly the
// point a power loss would have torn the checkpoint).
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace threelc::util {

// Thin virtual wrapper over the POSIX file syscalls the atomic-write path
// needs. All methods mirror the libc contract: fds and byte counts on
// success, -1 with errno set on failure.
class Fs {
 public:
  virtual ~Fs() = default;

  virtual int Open(const std::string& path, int flags, mode_t mode) = 0;
  virtual ssize_t Write(int fd, const void* data, std::size_t n) = 0;
  virtual int Fsync(int fd) = 0;
  virtual int Close(int fd) = 0;
  virtual int Rename(const std::string& from, const std::string& to) = 0;
  virtual int Unlink(const std::string& path) = 0;
  // Names (not paths) of the entries in `dir`, excluding "." and "..".
  // Returns false with errno set when the directory cannot be read.
  virtual bool List(const std::string& dir, std::vector<std::string>* names) = 0;

  // A torn-rename fault latches a crash request: the injected process is
  // supposed to die here, as a power loss would have. Check-and-clear so
  // a restarted server (same process in spawn mode's supervisor, same
  // FaultFs instance) does not crash again on its next write. The real
  // filesystem never requests a crash.
  virtual bool TakeCrashRequest() { return false; }

  // The passthrough singleton (forwards to open/write/fsync/...).
  static Fs* Real();
};

// Resolve an optional injected Fs: nullptr means the real filesystem.
inline Fs& ResolveFs(Fs* fs) { return fs ? *fs : *Fs::Real(); }

enum class FsFaultAction : std::uint8_t {
  kNone = 0,
  kEnospc,     // fail the call with ENOSPC (disk full)
  kEio,        // fail the call with EIO (media error)
  kShort,      // write only: consume part of the buffer, return the count
  kFsyncFail,  // fsync only: fail with EIO *after* the data reached the
               // kernel — models a dying disk acking writes it later loses
  kTorn,       // rename only: report success without renaming; the temp
               // file survives, the target is untouched, and a crash
               // request is latched (the torn-write power-loss point)
};

enum class FsOp : std::uint8_t { kOpen = 0, kWrite, kFsync, kRename, kUnlink };
inline constexpr int kFsOpCount = 5;

const char* FsFaultActionName(FsFaultAction action);
const char* FsOpName(FsOp op);

struct FsFaultRule {
  FsFaultAction action = FsFaultAction::kNone;
  bool any_op = true;
  FsOp op = FsOp::kWrite;  // matched when !any_op
  bool any_call = true;
  std::uint64_t call = 0;  // per-op call index, matched when !any_call
  int occurrence = 0;      // fire on the Nth matching call (0-based)
  bool every_match = false;
};

// Deterministic fault-injecting Fs decorator. Decisions are a pure
// function of (seed, rules, call sequence) — replayable like the rpc
// injector, with a schedule log to assert on. One instance per process;
// per-op call counters are not thread-safe by design (the checkpoint
// path is single-threaded).
class FaultFs : public Fs {
 public:
  explicit FaultFs(Fs* base = nullptr, std::uint64_t seed = 0);

  void AddRule(const FsFaultRule& rule);
  std::size_t rule_count() const { return rules_.size(); }

  // Parse the spec grammar from the file comment. Returns false with
  // *error set on malformed input; on success appends to *out.
  static bool ParseSpec(const std::string& spec, std::vector<FsFaultRule>* out,
                        std::string* error);
  bool AddRulesFromSpec(const std::string& spec, std::string* error);

  int Open(const std::string& path, int flags, mode_t mode) override;
  ssize_t Write(int fd, const void* data, std::size_t n) override;
  int Fsync(int fd) override;
  int Close(int fd) override;
  int Rename(const std::string& from, const std::string& to) override;
  int Unlink(const std::string& path) override;
  bool List(const std::string& dir, std::vector<std::string>* names) override;

  bool TakeCrashRequest() override {
    const bool requested = crash_requested_;
    crash_requested_ = false;
    return requested;
  }

  // Faults actually injected (calls that did not pass through cleanly).
  std::size_t faults_injected() const { return faults_; }
  // Calls seen per operation, fault-injected or not (test observability).
  std::uint64_t calls(FsOp op) const {
    return calls_[static_cast<int>(op)];
  }
  // One line per injected fault: "<action> <op> call=<n> path=<p>".
  const std::vector<std::string>& schedule_log() const { return log_; }

 private:
  // The verdict for one call of `op` (also advances that op's counter).
  FsFaultAction Decide(FsOp op, const std::string& what);

  struct RuleState {
    FsFaultRule rule;
    int matches = 0;
    bool fired = false;
  };

  Fs* base_;
  std::vector<RuleState> rules_;
  util::Rng rng_;
  std::uint64_t calls_[kFsOpCount] = {0, 0, 0, 0, 0};
  std::vector<std::string> log_;
  std::size_t faults_ = 0;
  bool crash_requested_ = false;
};

// Remove stale atomic-write temp files ("<name>.tmp.<pid>") in `dir`
// whose owning pid is gone (kill(pid, 0) => ESRCH). Temps belonging to
// live processes — including this one — are left alone, so a concurrent
// writer is never clobbered. Returns the number of files removed.
// Best-effort: unreadable directories or racing unlinks are not errors.
int SweepStaleTemps(Fs& fs, const std::string& dir);

}  // namespace threelc::util
