#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace threelc::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_log_mutex;
}  // namespace

const char* LogLevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(static_cast<char>(std::tolower(
        static_cast<unsigned char>(c))));
  }
  if (lower == "debug") *out = LogLevel::kDebug;
  else if (lower == "info") *out = LogLevel::kInfo;
  else if (lower == "warn" || lower == "warning") *out = LogLevel::kWarn;
  else if (lower == "error") *out = LogLevel::kError;
  else return false;
  return true;
}

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LogLevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < g_level.load()) return;
  // Format the full line (newline included) before touching stderr, then
  // emit it as ONE write under the lock: pool worker threads logging
  // concurrently must never interleave partial lines.
  stream_ << '\n';
  const std::string line = stream_.str();
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

void CheckFailed(const char* expr, const char* file, int line,
                 const std::string& msg) {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << "[CHECK FAILED " << file << ":" << line << "] " << expr;
    if (!msg.empty()) std::cerr << " — " << msg;
    std::cerr << std::endl;
  }
  std::abort();
}

}  // namespace threelc::util
