#include "util/logging.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace threelc::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_log_mutex;

const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::cerr << stream_.str() << "\n";
}

void CheckFailed(const char* expr, const char* file, int line,
                 const std::string& msg) {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << "[CHECK FAILED " << file << ":" << line << "] " << expr;
    if (!msg.empty()) std::cerr << " — " << msg;
    std::cerr << std::endl;
  }
  std::abort();
}

}  // namespace threelc::util
