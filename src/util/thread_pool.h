// Fixed-size thread pool used to run simulated workers in parallel.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace threelc::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return threads_.size(); }

  // Enqueue a task; the returned future reports completion/exceptions.
  std::future<void> Submit(std::function<void()> fn);

  // Run fn(i) for i in [0, n) across the pool and wait for all of them.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace threelc::util
