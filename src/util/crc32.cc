#include "util/crc32.h"

namespace threelc::util {

namespace {

// Reflected CRC32C polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

struct Tables {
  std::uint32_t t[4][256];
};

Tables BuildTables() {
  Tables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    tables.t[0][i] = crc;
  }
  // t[k][b] = CRC of byte b followed by k zero bytes, so four table lookups
  // cover one little-endian 32-bit chunk.
  for (std::uint32_t i = 0; i < 256; ++i) {
    tables.t[1][i] = (tables.t[0][i] >> 8) ^ tables.t[0][tables.t[0][i] & 0xFFu];
    tables.t[2][i] = (tables.t[1][i] >> 8) ^ tables.t[0][tables.t[1][i] & 0xFFu];
    tables.t[3][i] = (tables.t[2][i] >> 8) ^ tables.t[0][tables.t[2][i] & 0xFFu];
  }
  return tables;
}

const Tables& GetTables() {
  static const Tables tables = BuildTables();
  return tables;
}

}  // namespace

std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data,
                           std::size_t n) {
  const Tables& tb = GetTables();
  const auto* p = static_cast<const std::uint8_t*>(data);
  crc = ~crc;
  // Byte-at-a-time until 4-byte alignment (keeps the 32-bit loads aligned).
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 3u) != 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFFu];
    --n;
  }
  while (n >= 4) {
    std::uint32_t word;
    __builtin_memcpy(&word, p, 4);  // little-endian host (see byte_buffer.cc)
    crc ^= word;
    crc = tb.t[3][crc & 0xFFu] ^ tb.t[2][(crc >> 8) & 0xFFu] ^
          tb.t[1][(crc >> 16) & 0xFFu] ^ tb.t[0][(crc >> 24) & 0xFFu];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFFu];
    --n;
  }
  return ~crc;
}

}  // namespace threelc::util
