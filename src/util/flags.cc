#include "util/flags.h"

#include <cstdlib>
#include <stdexcept>

namespace threelc::util {

Flags::Flags(int argc, char** argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

std::int64_t Flags::GetInt(const std::string& name,
                           std::int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    throw std::runtime_error("flag --" + name + " expects an integer, got '" +
                             it->second + "'");
  }
  return v;
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    throw std::runtime_error("flag --" + name + " expects a number, got '" +
                             it->second + "'");
  }
  return v;
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::runtime_error("flag --" + name + " expects a boolean, got '" +
                           v + "'");
}

int Flags::GetPort(const std::string& name, int default_value) const {
  if (!Has(name)) return default_value;
  const std::int64_t v = GetInt(name, default_value);
  if (v < 0 || v > 65535) {
    throw std::runtime_error("flag --" + name +
                             " expects a TCP port in [0, 65535], got '" +
                             std::to_string(v) + "'");
  }
  return static_cast<int>(v);
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) != 0;
}

}  // namespace threelc::util
