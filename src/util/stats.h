// Streaming statistics helpers used by trainers and benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace threelc::util {

// Welford's online mean/variance with min/max tracking.
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);
  void Reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Exponential moving average (for smoothed loss curves).
class Ema {
 public:
  explicit Ema(double alpha) : alpha_(alpha) {}
  void Add(double x) {
    value_ = initialized_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    initialized_ = true;
  }
  double value() const { return value_; }
  bool initialized() const { return initialized_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

// Fixed-bin histogram over [lo, hi); out-of-range values clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void Add(double x);
  // Fold another histogram's counts in; both must share [lo, hi) and the
  // bin count (checked).
  void Merge(const Histogram& other);
  std::size_t bin_count(std::size_t i) const { return counts_[i]; }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double Quantile(double q) const;  // approximate, from bin midpoints

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace threelc::util
