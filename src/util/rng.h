// Deterministic, seedable pseudo-random number generation.
//
// All randomness in the library flows through util::Rng so experiments are
// reproducible bit-for-bit given a seed. The generator is xoshiro256**,
// seeded via splitmix64 (the initialization recommended by its authors).
#pragma once

#include <cstdint>
#include <vector>

#include "util/byte_buffer.h"

namespace threelc::util {

// splitmix64: used for seeding and as a cheap stateless mixer.
std::uint64_t SplitMix64(std::uint64_t& state);

// xoshiro256** 1.0 — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x3 /* "3LC" */);

  // UniformRandomBitGenerator interface (usable with <random> adapters).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return Next(); }

  std::uint64_t Next();

  // Uniform in [0, 1).
  double Uniform();
  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform float in [0, 1).
  float UniformFloat();
  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t Below(std::uint64_t n);
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t Int(std::int64_t lo, std::int64_t hi);
  // Standard normal via Box–Muller (cached second value).
  double Normal();
  double Normal(double mean, double stddev);
  float NormalFloat(float mean, float stddev);
  // Bernoulli with probability p of true.
  bool Bernoulli(double p);

  // Fisher–Yates shuffle of an index vector.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(Below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Derive an independent child generator (for per-worker streams).
  Rng Fork();

  // Serialize / restore the complete generator state (xoshiro words plus
  // the Box–Muller cache), so a checkpointed run resumes on the exact same
  // random stream. LoadState throws std::out_of_range on short input.
  void SaveState(ByteBuffer& out) const;
  void LoadState(ByteReader& in);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace threelc::util
