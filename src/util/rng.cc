#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace threelc::util {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

float Rng::UniformFloat() {
  return static_cast<float>(Next() >> 40) * 0x1.0p-24f;
}

std::uint64_t Rng::Below(std::uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded generation, simplified with a
  // rejection loop on the biased zone.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::Int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(Below(span));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; avoid log(0) by mapping u1 into (0, 1].
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

float Rng::NormalFloat(float mean, float stddev) {
  return static_cast<float>(Normal(mean, stddev));
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

Rng Rng::Fork() {
  Rng child(0);
  for (auto& s : child.s_) s = Next();
  return child;
}

void Rng::SaveState(ByteBuffer& out) const {
  for (const std::uint64_t s : s_) out.AppendU64(s);
  out.AppendU8(has_cached_normal_ ? 1 : 0);
  out.AppendF64(cached_normal_);
}

void Rng::LoadState(ByteReader& in) {
  for (auto& s : s_) s = in.ReadU64();
  has_cached_normal_ = in.ReadU8() != 0;
  cached_normal_ = in.ReadF64();
}

}  // namespace threelc::util
