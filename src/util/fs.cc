#include "util/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace threelc::util {

namespace {

class RealFs : public Fs {
 public:
  int Open(const std::string& path, int flags, mode_t mode) override {
    return ::open(path.c_str(), flags, mode);
  }
  ssize_t Write(int fd, const void* data, std::size_t n) override {
    return ::write(fd, data, n);
  }
  int Fsync(int fd) override { return ::fsync(fd); }
  int Close(int fd) override { return ::close(fd); }
  int Rename(const std::string& from, const std::string& to) override {
    return ::rename(from.c_str(), to.c_str());
  }
  int Unlink(const std::string& path) override {
    return ::unlink(path.c_str());
  }
  bool List(const std::string& dir, std::vector<std::string>* names) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return false;
    errno = 0;
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names->push_back(name);
    }
    ::closedir(d);
    return true;
  }
};

bool AllDigits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool ParseFsActionToken(const std::string& token, FsFaultRule* rule) {
  if (token == "enospc") rule->action = FsFaultAction::kEnospc;
  else if (token == "eio") rule->action = FsFaultAction::kEio;
  else if (token == "short") rule->action = FsFaultAction::kShort;
  else if (token == "fsyncfail") rule->action = FsFaultAction::kFsyncFail;
  else if (token == "torn") rule->action = FsFaultAction::kTorn;
  else return false;
  return true;
}

bool ParseFsOpToken(const std::string& token, FsFaultRule* rule) {
  if (token == "any") {
    rule->any_op = true;
    return true;
  }
  rule->any_op = false;
  if (token == "open") rule->op = FsOp::kOpen;
  else if (token == "write") rule->op = FsOp::kWrite;
  else if (token == "fsync") rule->op = FsOp::kFsync;
  else if (token == "rename") rule->op = FsOp::kRename;
  else if (token == "unlink") rule->op = FsOp::kUnlink;
  else return false;
  return true;
}

// short/fsyncfail/torn only make sense against one operation; catching
// the mismatch at parse time turns a silent no-op drill into a spec error.
bool ActionFitsOp(const FsFaultRule& rule) {
  switch (rule.action) {
    case FsFaultAction::kShort:
      return !rule.any_op && rule.op == FsOp::kWrite;
    case FsFaultAction::kFsyncFail:
      return !rule.any_op && rule.op == FsOp::kFsync;
    case FsFaultAction::kTorn:
      return !rule.any_op && rule.op == FsOp::kRename;
    default:
      return true;
  }
}

}  // namespace

Fs* Fs::Real() {
  static RealFs real;
  return &real;
}

const char* FsFaultActionName(FsFaultAction action) {
  switch (action) {
    case FsFaultAction::kNone: return "none";
    case FsFaultAction::kEnospc: return "enospc";
    case FsFaultAction::kEio: return "eio";
    case FsFaultAction::kShort: return "short";
    case FsFaultAction::kFsyncFail: return "fsyncfail";
    case FsFaultAction::kTorn: return "torn";
  }
  return "unknown";
}

const char* FsOpName(FsOp op) {
  switch (op) {
    case FsOp::kOpen: return "open";
    case FsOp::kWrite: return "write";
    case FsOp::kFsync: return "fsync";
    case FsOp::kRename: return "rename";
    case FsOp::kUnlink: return "unlink";
  }
  return "unknown";
}

FaultFs::FaultFs(Fs* base, std::uint64_t seed)
    : base_(base != nullptr ? base : Fs::Real()), rng_(seed) {}

void FaultFs::AddRule(const FsFaultRule& rule) {
  RuleState state;
  state.rule = rule;
  rules_.push_back(state);
}

bool FaultFs::ParseSpec(const std::string& spec, std::vector<FsFaultRule>* out,
                        std::string* error) {
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ';')) {
    if (item.empty()) continue;
    FsFaultRule rule;

    const std::size_t colon = item.find(':');
    const std::size_t at = item.find('@');
    if (colon == std::string::npos || at == std::string::npos || at < colon) {
      if (error != nullptr) *error = "expected ACTION:OP@CALL in '" + item + "'";
      return false;
    }
    if (!ParseFsActionToken(item.substr(0, colon), &rule)) {
      if (error != nullptr) *error = "bad action in '" + item + "'";
      return false;
    }
    if (!ParseFsOpToken(item.substr(colon + 1, at - colon - 1), &rule)) {
      if (error != nullptr) *error = "bad fs op in '" + item + "'";
      return false;
    }
    if (!ActionFitsOp(rule)) {
      if (error != nullptr) {
        *error = std::string("action '") + FsFaultActionName(rule.action) +
                 "' requires its own op (short:write, fsyncfail:fsync, "
                 "torn:rename) in '" + item + "'";
      }
      return false;
    }

    std::string call_token = item.substr(at + 1);
    const std::size_t hash = call_token.find('#');
    if (hash != std::string::npos) {
      const std::string occ = call_token.substr(hash + 1);
      call_token = call_token.substr(0, hash);
      if (occ == "*") {
        rule.every_match = true;
      } else if (AllDigits(occ)) {
        rule.occurrence = std::atoi(occ.c_str());
      } else {
        if (error != nullptr) *error = "bad occurrence in '" + item + "'";
        return false;
      }
    }
    if (call_token == "any") {
      rule.any_call = true;
    } else if (AllDigits(call_token)) {
      rule.any_call = false;
      rule.call = static_cast<std::uint64_t>(std::atoll(call_token.c_str()));
    } else {
      if (error != nullptr) *error = "bad call index in '" + item + "'";
      return false;
    }
    out->push_back(rule);
  }
  return true;
}

bool FaultFs::AddRulesFromSpec(const std::string& spec, std::string* error) {
  std::vector<FsFaultRule> rules;
  if (!ParseSpec(spec, &rules, error)) return false;
  for (const FsFaultRule& rule : rules) AddRule(rule);
  return true;
}

FsFaultAction FaultFs::Decide(FsOp op, const std::string& what) {
  const std::uint64_t call = calls_[static_cast<int>(op)]++;
  for (RuleState& state : rules_) {
    const FsFaultRule& rule = state.rule;
    if (!rule.any_op && rule.op != op) continue;
    if (!rule.any_call && rule.call != call) continue;
    const int match_index = state.matches++;
    if (!rule.every_match && (state.fired || match_index != rule.occurrence)) {
      continue;
    }
    state.fired = true;

    std::ostringstream line;
    line << FsFaultActionName(rule.action) << ' ' << FsOpName(op)
         << " call=" << call << " path=" << what;
    log_.push_back(line.str());
    ++faults_;
    return rule.action;
  }
  return FsFaultAction::kNone;
}

int FaultFs::Open(const std::string& path, int flags, mode_t mode) {
  switch (Decide(FsOp::kOpen, path)) {
    case FsFaultAction::kEnospc: errno = ENOSPC; return -1;
    case FsFaultAction::kEio: errno = EIO; return -1;
    default: return base_->Open(path, flags, mode);
  }
}

ssize_t FaultFs::Write(int fd, const void* data, std::size_t n) {
  switch (Decide(FsOp::kWrite, "fd" + std::to_string(fd))) {
    case FsFaultAction::kEnospc: errno = ENOSPC; return -1;
    case FsFaultAction::kEio: errno = EIO; return -1;
    case FsFaultAction::kShort: {
      // Consume a seeded partial prefix (at least one byte, never the
      // whole buffer when more than one was asked for): the caller's
      // write loop must come back for the rest.
      if (n <= 1) return base_->Write(fd, data, n);
      const std::size_t partial =
          1 + static_cast<std::size_t>(rng_.Below(n - 1));
      return base_->Write(fd, data, partial);
    }
    default: return base_->Write(fd, data, n);
  }
}

int FaultFs::Fsync(int fd) {
  switch (Decide(FsOp::kFsync, "fd" + std::to_string(fd))) {
    case FsFaultAction::kEnospc: errno = ENOSPC; return -1;
    case FsFaultAction::kEio:
    case FsFaultAction::kFsyncFail: errno = EIO; return -1;
    default: return base_->Fsync(fd);
  }
}

int FaultFs::Close(int fd) { return base_->Close(fd); }

int FaultFs::Rename(const std::string& from, const std::string& to) {
  switch (Decide(FsOp::kRename, from + " -> " + to)) {
    case FsFaultAction::kEnospc: errno = ENOSPC; return -1;
    case FsFaultAction::kEio: errno = EIO; return -1;
    case FsFaultAction::kTorn:
      // The caller sees success, but the target was never replaced and
      // the temp survives — the on-disk state a power loss between the
      // data fsync and the directory update would leave. Latch a crash
      // request so the host dies here and recovery runs against it.
      crash_requested_ = true;
      return 0;
    default: return base_->Rename(from, to);
  }
}

int FaultFs::Unlink(const std::string& path) {
  switch (Decide(FsOp::kUnlink, path)) {
    case FsFaultAction::kEnospc: errno = ENOSPC; return -1;
    case FsFaultAction::kEio: errno = EIO; return -1;
    default: return base_->Unlink(path);
  }
}

bool FaultFs::List(const std::string& dir, std::vector<std::string>* names) {
  return base_->List(dir, names);
}

int SweepStaleTemps(Fs& fs, const std::string& dir) {
  std::vector<std::string> names;
  if (!fs.List(dir, &names)) return 0;
  int removed = 0;
  for (const std::string& name : names) {
    const std::size_t tag = name.rfind(".tmp.");
    if (tag == std::string::npos) continue;
    const std::string pid_digits = name.substr(tag + 5);
    if (!AllDigits(pid_digits)) continue;
    const pid_t pid = static_cast<pid_t>(std::atoll(pid_digits.c_str()));
    if (pid <= 0) continue;
    // kill(pid, 0) probes existence without signalling. Only ESRCH — no
    // such process — proves the writer is gone; EPERM means it exists
    // under another uid, and success means it is alive, so both keep
    // the temp file (a live writer's rename must find it).
    if (::kill(pid, 0) == 0 || errno != ESRCH) continue;
    if (fs.Unlink(dir + "/" + name) == 0) ++removed;
  }
  return removed;
}

}  // namespace threelc::util
