#include "obs/telemetry.h"

#include <sstream>
#include <stdexcept>

#include "obs/cluster_view.h"
#include "obs/flight_recorder.h"
#include "obs/http_server.h"
#include "obs/json.h"
#include "obs/prometheus.h"
#include "obs/stage_profiler.h"
#include "util/flags.h"
#include "util/logging.h"

namespace threelc::obs {

Telemetry::Telemetry(TelemetryOptions options)
    : options_(std::move(options)), start_(std::chrono::steady_clock::now()) {
  if (!options_.metrics_path.empty()) {
    metrics_out_.open(options_.metrics_path, std::ios::trunc);
    if (!metrics_out_) {
      throw std::runtime_error("Telemetry: cannot open metrics path " +
                               options_.metrics_path);
    }
    metrics_.set_enabled(true);
  }
  if (!options_.trace_path.empty()) {
    // Fail fast before training rather than after: probe writability now.
    std::ofstream probe(options_.trace_path, std::ios::trunc);
    if (!probe) {
      throw std::runtime_error("Telemetry: cannot open trace path " +
                               options_.trace_path);
    }
    tracer_.set_enabled(true);
  }
  // The stage profiler accumulates process-wide (codec, transport, and
  // step-phase scopes have no per-call registry to thread through), so any
  // telemetry that records metrics turns it on. It stays on for the
  // process: the enabled cost is thread-local accumulation only, and
  // another live Telemetry may still be exporting it.
  if (metrics_.enabled() || options_.monitoring_enabled()) {
    StageProfiler::Global().set_enabled(true);
  }
  if (options_.monitoring_enabled()) {
    // The watchdog and the Prometheus endpoint read the registry, so
    // monitoring implies enabled metrics even without a --metrics-out file.
    metrics_.set_enabled(true);
    const std::string flight_path =
        options_.flight_path.empty() ? "flight.jsonl" : options_.flight_path;
    flight_ = std::make_unique<FlightRecorder>(flight_path,
                                               options_.flight_capacity);
    FlightRecorder::InstallSignalHandlers(flight_.get());
    health_ = std::make_unique<HealthMonitor>(options_.health, &metrics_);
    health_->SetEventCallback([this](const HealthEvent& event) {
      flight_->RecordEvent(event);
      // An error-severity event is the black-box trigger: the run may be
      // about to diverge or die, so leave the recording behind now.
      if (event.severity == HealthSeverity::kError) flight_->Dump();
    });
  }
  // Constructed after flight_ so straggler flips land in the recorder
  // when monitoring is on; the view itself is always present so the RPC
  // server can feed it unconditionally.
  cluster_view_ = std::make_unique<ClusterView>(flight_.get());
  if (options_.metrics_port >= 0) {
    http_ = std::make_unique<HttpServer>();
    http_->Handle("/metricsz", [this] {
      std::ostringstream out;
      WritePrometheus(metrics_, out);
      // Stage-profile snapshot: merged on the scraping thread, so the
      // step critical path never pays for the export.
      StageProfiler::Global().WritePrometheus(out);
      // Cluster families are empty (and omitted) until the first worker
      // telemetry record arrives.
      cluster_view_->WritePrometheus(out);
      return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                          out.str()};
    });
    http_->Handle("/clusterz", [this] {
      return HttpResponse{200, "application/json", cluster_view_->ToJson()};
    });
    http_->Handle("/healthz", [this] {
      const RuntimeState state = health_->runtime_state();
      if (health_->healthy() && state != RuntimeState::kFailed) {
        if (state == RuntimeState::kDegraded) {
          // Alive but running on a reduced worker set: 200 so liveness
          // probes pass, with a body scrapers can alert on.
          std::string body = "degraded\n";
          for (const HealthEvent& event : health_->events()) {
            if (event.detector == "runtime_state") {
              body += event.message + "\n";
            }
          }
          return HttpResponse{200, "text/plain; charset=utf-8", body};
        }
        return HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
      }
      std::string body =
          state == RuntimeState::kFailed ? "failed\n" : "unhealthy\n";
      for (const HealthEvent& event : health_->events()) {
        body += std::string(HealthSeverityName(event.severity)) + " [" +
                event.detector + "] step " + std::to_string(event.step) +
                ": " + event.message + "\n";
      }
      return HttpResponse{503, "text/plain; charset=utf-8", body};
    });
    http_->Handle("/statusz", [this] {
      return HttpResponse{200, "application/json",
                          health_->StatusJson(UptimeSeconds())};
    });
    http_->Handle("/flightz", [this] {
      return HttpResponse{200, "application/json",
                          "{\"entries\":" + flight_->ToJsonArray() + "}"};
    });
    if (!http_->Start(options_.metrics_port)) {
      throw std::runtime_error(
          "Telemetry: cannot bind monitoring port " +
          std::to_string(options_.metrics_port));
    }
  }
}

Telemetry::~Telemetry() {
  // A failed flush during stack unwinding (disk full, dead NFS mount) must
  // not std::terminate a run that is already throwing.
  try {
    Flush();
  } catch (const std::exception& e) {
    THREELC_LOG(Warn) << "telemetry: flush failed in destructor: "
                      << e.what();
  } catch (...) {
    THREELC_LOG(Warn) << "telemetry: flush failed in destructor";
  }
  if (http_) http_->Stop();
  if (flight_) FlightRecorder::InstallSignalHandlers(nullptr);
}

double Telemetry::UptimeSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

std::string Telemetry::StepToJson(const StepTelemetry& s) {
  std::string out;
  out.reserve(256 + s.tensors.size() * 160);
  out += "{\"type\":\"step\",\"step\":";
  AppendJsonNumber(out, static_cast<std::int64_t>(s.step));
  out += ",\"loss\":";
  AppendJsonNumber(out, s.loss);
  out += ",\"lr\":";
  AppendJsonNumber(out, s.lr);
  out += ",\"push_bytes\":";
  AppendJsonNumber(out, static_cast<std::uint64_t>(s.push_bytes));
  out += ",\"pull_bytes\":";
  AppendJsonNumber(out, static_cast<std::uint64_t>(s.pull_bytes));
  out += ",\"push_values\":";
  AppendJsonNumber(out, static_cast<std::uint64_t>(s.push_values));
  out += ",\"pull_values\":";
  AppendJsonNumber(out, static_cast<std::uint64_t>(s.pull_values));
  out += ",\"push_bits_per_value\":";
  AppendJsonNumber(out, s.push_bits_per_value);
  out += ",\"pull_bits_per_value\":";
  AppendJsonNumber(out, s.pull_bits_per_value);
  out += ",\"codec_seconds\":";
  AppendJsonNumber(out, s.codec_seconds);
  out += ",\"step_wall_ms\":";
  AppendJsonNumber(out, s.step_wall_ms);
  out += ",\"contributors\":";
  AppendJsonNumber(out, static_cast<std::int64_t>(s.contributors));
  out += ",\"phases_ms\":{";
  for (std::size_t i = 0; i < s.phases_ms.size(); ++i) {
    if (i) out += ",";
    AppendJsonEscaped(out, s.phases_ms[i].name);
    out += ":";
    AppendJsonNumber(out, s.phases_ms[i].ms);
  }
  out += "}";
  if (!s.tensors.empty()) {
    out += ",\"tensors\":[";
    for (std::size_t i = 0; i < s.tensors.size(); ++i) {
      const TensorStepTelemetry& t = s.tensors[i];
      if (i) out += ",";
      out += "{\"name\":";
      AppendJsonEscaped(out, t.name);
      out += ",\"elements\":";
      AppendJsonNumber(out, static_cast<std::uint64_t>(t.elements));
      out += ",\"push_bytes\":";
      AppendJsonNumber(out, static_cast<std::uint64_t>(t.push_bytes));
      out += ",\"pull_bytes\":";
      AppendJsonNumber(out, static_cast<std::uint64_t>(t.pull_bytes));
      if (t.zero_frac >= 0.0) {
        out += ",\"zero_frac\":";
        AppendJsonNumber(out, t.zero_frac);
        out += ",\"plus_frac\":";
        AppendJsonNumber(out, t.plus_frac);
        out += ",\"minus_frac\":";
        AppendJsonNumber(out, t.minus_frac);
      }
      if (t.zre_hit_rate >= 0.0) {
        out += ",\"zre_hit_rate\":";
        AppendJsonNumber(out, t.zre_hit_rate);
      }
      if (t.push_residual_l2 >= 0.0) {
        out += ",\"push_residual_l2\":";
        AppendJsonNumber(out, t.push_residual_l2);
      }
      if (t.pull_residual_l2 >= 0.0) {
        out += ",\"pull_residual_l2\":";
        AppendJsonNumber(out, t.pull_residual_l2);
      }
      out += "}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

void Telemetry::LogStep(const StepTelemetry& step) {
  // Recorder first, watchdog second: when a detector fires and dumps, the
  // triggering step is already the newest entry in the ring.
  if (flight_) flight_->RecordStep(step);
  if (health_) health_->ObserveStep(step);
  if (!metrics_.enabled()) return;
  const std::string line = StepToJson(step);
  std::lock_guard<std::mutex> lock(mu_);
  if (!metrics_out_.is_open()) return;
  metrics_out_ << line << "\n";
}

void Telemetry::Flush() {
  if (flight_) flight_->Dump();  // on-demand black-box snapshot
  std::lock_guard<std::mutex> lock(mu_);
  if (flushed_) return;
  flushed_ = true;
  if (metrics_out_.is_open()) {
    // Fold the profiler totals in once, so the summary line carries the
    // profile/<stage> counters alongside the regular metrics.
    StageProfiler::Global().ExportTo(metrics_);
    metrics_out_ << "{\"type\":\"summary\",\"metrics\":"
                 << metrics_.ToJsonObject() << "}\n";
    metrics_out_.close();
    THREELC_LOG(Info) << "telemetry: wrote step metrics to "
                      << options_.metrics_path;
  }
  if (tracer_.enabled()) {
    std::ofstream trace_out(options_.trace_path, std::ios::trunc);
    if (trace_out) {
      tracer_.WriteChromeTrace(trace_out);
      THREELC_LOG(Info) << "telemetry: wrote " << tracer_.event_count()
                        << " trace events to " << options_.trace_path;
    } else {
      THREELC_LOG(Warn) << "telemetry: cannot write trace to "
                        << options_.trace_path;
    }
  }
}

TelemetryOptions TelemetryOptionsFromFlags(const util::Flags& flags) {
  TelemetryOptions options;
  options.trace_path = flags.GetString("trace-out", "");
  options.metrics_path = flags.GetString("metrics-out", "");
  options.per_tensor = flags.GetBool("per-tensor", true);
  options.metrics_port = flags.GetPort("metrics-port", -1);
  options.flight_path = flags.GetString("flight-out", "");
  return options;
}

bool ApplyLogLevelFlag(const util::Flags& flags) {
  const std::string name = flags.GetString("log-level", "");
  if (name.empty()) return true;
  util::LogLevel level;
  if (!util::ParseLogLevel(name, &level)) {
    THREELC_LOG(Warn) << "unknown --log-level '" << name
                      << "' (want debug|info|warn|error)";
    return false;
  }
  util::SetLogLevel(level);
  return true;
}

}  // namespace threelc::obs
