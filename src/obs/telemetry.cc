#include "obs/telemetry.h"

#include <stdexcept>

#include "obs/json.h"
#include "util/flags.h"
#include "util/logging.h"

namespace threelc::obs {

Telemetry::Telemetry(TelemetryOptions options) : options_(std::move(options)) {
  if (!options_.metrics_path.empty()) {
    metrics_out_.open(options_.metrics_path, std::ios::trunc);
    if (!metrics_out_) {
      throw std::runtime_error("Telemetry: cannot open metrics path " +
                               options_.metrics_path);
    }
    metrics_.set_enabled(true);
  }
  if (!options_.trace_path.empty()) {
    // Fail fast before training rather than after: probe writability now.
    std::ofstream probe(options_.trace_path, std::ios::trunc);
    if (!probe) {
      throw std::runtime_error("Telemetry: cannot open trace path " +
                               options_.trace_path);
    }
    tracer_.set_enabled(true);
  }
}

Telemetry::~Telemetry() { Flush(); }

std::string Telemetry::StepToJson(const StepTelemetry& s) {
  std::string out;
  out.reserve(256 + s.tensors.size() * 160);
  out += "{\"type\":\"step\",\"step\":";
  AppendJsonNumber(out, static_cast<std::int64_t>(s.step));
  out += ",\"loss\":";
  AppendJsonNumber(out, s.loss);
  out += ",\"lr\":";
  AppendJsonNumber(out, s.lr);
  out += ",\"push_bytes\":";
  AppendJsonNumber(out, static_cast<std::uint64_t>(s.push_bytes));
  out += ",\"pull_bytes\":";
  AppendJsonNumber(out, static_cast<std::uint64_t>(s.pull_bytes));
  out += ",\"push_values\":";
  AppendJsonNumber(out, static_cast<std::uint64_t>(s.push_values));
  out += ",\"pull_values\":";
  AppendJsonNumber(out, static_cast<std::uint64_t>(s.pull_values));
  out += ",\"push_bits_per_value\":";
  AppendJsonNumber(out, s.push_bits_per_value);
  out += ",\"pull_bits_per_value\":";
  AppendJsonNumber(out, s.pull_bits_per_value);
  out += ",\"codec_seconds\":";
  AppendJsonNumber(out, s.codec_seconds);
  out += ",\"contributors\":";
  AppendJsonNumber(out, static_cast<std::int64_t>(s.contributors));
  out += ",\"phases_ms\":{";
  for (std::size_t i = 0; i < s.phases_ms.size(); ++i) {
    if (i) out += ",";
    AppendJsonEscaped(out, s.phases_ms[i].name);
    out += ":";
    AppendJsonNumber(out, s.phases_ms[i].ms);
  }
  out += "}";
  if (!s.tensors.empty()) {
    out += ",\"tensors\":[";
    for (std::size_t i = 0; i < s.tensors.size(); ++i) {
      const TensorStepTelemetry& t = s.tensors[i];
      if (i) out += ",";
      out += "{\"name\":";
      AppendJsonEscaped(out, t.name);
      out += ",\"elements\":";
      AppendJsonNumber(out, static_cast<std::uint64_t>(t.elements));
      out += ",\"push_bytes\":";
      AppendJsonNumber(out, static_cast<std::uint64_t>(t.push_bytes));
      out += ",\"pull_bytes\":";
      AppendJsonNumber(out, static_cast<std::uint64_t>(t.pull_bytes));
      if (t.zero_frac >= 0.0) {
        out += ",\"zero_frac\":";
        AppendJsonNumber(out, t.zero_frac);
        out += ",\"plus_frac\":";
        AppendJsonNumber(out, t.plus_frac);
        out += ",\"minus_frac\":";
        AppendJsonNumber(out, t.minus_frac);
      }
      if (t.zre_hit_rate >= 0.0) {
        out += ",\"zre_hit_rate\":";
        AppendJsonNumber(out, t.zre_hit_rate);
      }
      if (t.push_residual_l2 >= 0.0) {
        out += ",\"push_residual_l2\":";
        AppendJsonNumber(out, t.push_residual_l2);
      }
      if (t.pull_residual_l2 >= 0.0) {
        out += ",\"pull_residual_l2\":";
        AppendJsonNumber(out, t.pull_residual_l2);
      }
      out += "}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

void Telemetry::LogStep(const StepTelemetry& step) {
  if (!metrics_.enabled()) return;
  const std::string line = StepToJson(step);
  std::lock_guard<std::mutex> lock(mu_);
  if (!metrics_out_.is_open()) return;
  metrics_out_ << line << "\n";
}

void Telemetry::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (flushed_) return;
  flushed_ = true;
  if (metrics_out_.is_open()) {
    metrics_out_ << "{\"type\":\"summary\",\"metrics\":"
                 << metrics_.ToJsonObject() << "}\n";
    metrics_out_.close();
    THREELC_LOG(Info) << "telemetry: wrote step metrics to "
                      << options_.metrics_path;
  }
  if (tracer_.enabled()) {
    std::ofstream trace_out(options_.trace_path, std::ios::trunc);
    if (trace_out) {
      tracer_.WriteChromeTrace(trace_out);
      THREELC_LOG(Info) << "telemetry: wrote " << tracer_.event_count()
                        << " trace events to " << options_.trace_path;
    } else {
      THREELC_LOG(Warn) << "telemetry: cannot write trace to "
                        << options_.trace_path;
    }
  }
}

TelemetryOptions TelemetryOptionsFromFlags(const util::Flags& flags) {
  TelemetryOptions options;
  options.trace_path = flags.GetString("trace-out", "");
  options.metrics_path = flags.GetString("metrics-out", "");
  options.per_tensor = flags.GetBool("per-tensor", true);
  return options;
}

bool ApplyLogLevelFlag(const util::Flags& flags) {
  const std::string name = flags.GetString("log-level", "");
  if (name.empty()) return true;
  util::LogLevel level;
  if (!util::ParseLogLevel(name, &level)) {
    THREELC_LOG(Warn) << "unknown --log-level '" << name
                      << "' (want debug|info|warn|error)";
    return false;
  }
  util::SetLogLevel(level);
  return true;
}

}  // namespace threelc::obs
