// Prometheus text exposition (version 0.0.4) for MetricsRegistry.
//
// The registry's `/`-style metric names ("traffic/push_bytes") are not
// legal Prometheus names, so every exported series goes through
// SanitizeMetricName first: illegal characters become '_', a leading
// digit gets a '_' prefix, and the result is prefixed with "threelc_".
// Sanitization is idempotent (sanitize(sanitize(x)) == sanitize(x)), which
// the round-trip unit test in obs_test relies on.
//
// Mapping:
//   counter   -> <name>_total (sum) and <name>_events_total (event count)
//   gauge     -> <name>
//   histogram -> summary-style series: <name>{quantile="0.5"|"0.9"|"0.99"},
//                <name>_sum, <name>_count
// Every series is preceded by # HELP and # TYPE lines.
#pragma once

#include <iosfwd>
#include <string>

namespace threelc::obs {

class MetricsRegistry;

// Rewrite `name` into a legal Prometheus metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*). Empty input becomes "_".
std::string SanitizeMetricName(const std::string& name);

// True iff `name` already satisfies the Prometheus metric-name grammar.
bool IsValidMetricName(const std::string& name);

// Escape a label value per the exposition format: backslash, double quote,
// and newline are escaped.
std::string EscapeLabelValue(const std::string& value);

// Write the full registry in Prometheus text exposition format. `prefix`
// is prepended to every (sanitized) metric name.
void WritePrometheus(const MetricsRegistry& registry, std::ostream& out,
                     const std::string& prefix = "threelc_");

}  // namespace threelc::obs
