#include "obs/cluster_view.h"

#include <algorithm>
#include <ostream>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/stage_profiler.h"

namespace threelc::obs {

namespace {

const char* const kPhaseNames[ClusterView::kPhases] = {
    "forward_backward", "encode", "push", "pull_wait", "decode"};

// Phase values of one record in the kPhaseNames order.
void PhaseValues(const WorkerStepRecord& r,
                 std::uint64_t (&out)[ClusterView::kPhases]) {
  out[0] = r.forward_backward_ns;
  out[1] = r.encode_ns;
  out[2] = r.push_ns;
  out[3] = r.pull_wait_ns;
  out[4] = r.decode_ns;
}

StragglerCause AttributeCause(const WorkerStepRecord& r) {
  const std::uint64_t compute = r.forward_backward_ns;
  const std::uint64_t encode = r.encode_ns + r.decode_ns;
  const std::uint64_t network = r.push_ns + r.pull_wait_ns;
  if (network >= compute && network >= encode) return StragglerCause::kNetwork;
  if (compute >= encode) return StragglerCause::kCompute;
  return StragglerCause::kEncode;
}

}  // namespace

const char* StragglerCauseName(StragglerCause cause) {
  switch (cause) {
    case StragglerCause::kCompute: return "compute";
    case StragglerCause::kEncode: return "encode";
    case StragglerCause::kNetwork: return "network";
  }
  return "unknown";
}

void ClusterView::PhaseHist::Add(std::uint64_t ns) {
  ++hist[StageLog2Bucket(ns)];
  ++count;
  total_ns += ns;
}

void ClusterView::PhaseHist::MergeInto(PhaseHist& into) const {
  for (int b = 0; b < kHistogramBuckets; ++b) into.hist[b] += hist[b];
  into.count += count;
  into.total_ns += total_ns;
}

ClusterView::ClusterView(FlightRecorder* flight) : flight_(flight) {}

void ClusterView::Ingest(int worker_id, const WorkerStepRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  WorkerState& w = workers_[worker_id];
  if (static_cast<std::int64_t>(record.step) <= w.last_step) return;
  w.last_step = static_cast<std::int64_t>(record.step);
  ++w.records;
  w.bytes_out += record.bytes_out;
  w.bytes_in += record.bytes_in;
  w.stage1_bytes_out += record.stage1_bytes_out;
  w.stage1_bytes_in += record.stage1_bytes_in;
  w.ea_l2 = record.ea_l2;
  w.rejoins = record.rejoins;
  std::uint64_t values[kPhases];
  PhaseValues(record, values);
  for (int p = 0; p < kPhases; ++p) w.phases[p].Add(values[p]);

  auto it = pending_barriers_.find(record.step);
  if (it != pending_barriers_.end() && it->second.last_worker == worker_id) {
    const StragglerCause cause = AttributeCause(record);
    ++w.straggler_steps;
    ++w.cause_counts[static_cast<int>(cause)];
    w.barrier_wait_ms_sum += it->second.wait_ms;
    pending_barriers_.erase(it);
  }
}

void ClusterView::RecordBarrier(std::uint64_t step, int last_worker,
                                double wait_ms, int contributors) {
  FlightRecorder* dump = nullptr;
  HealthEvent event;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++barriers_observed_;
    pending_barriers_[step] = {last_worker, wait_ms, contributors};
    while (pending_barriers_.size() > kMaxPendingBarriers) {
      pending_barriers_.erase(pending_barriers_.begin());
    }
    if (last_worker != current_straggler_) {
      if (current_straggler_ >= 0) ++straggler_flips_;
      current_straggler_ = last_worker;
      if (flight_ != nullptr) {
        event.severity = HealthSeverity::kWarn;
        event.detector = "cluster_straggler";
        event.step = static_cast<std::int64_t>(step);
        event.message = "straggler is now worker " +
                        std::to_string(last_worker) + " (barrier wait " +
                        std::to_string(wait_ms) + " ms)";
        dump = flight_;
      }
    }
  }
  // Record outside the lock; FlightRecorder has its own synchronization.
  if (dump != nullptr) dump->RecordEvent(event);
}

void ClusterView::RemoveWorker(int worker_id) {
  std::lock_guard<std::mutex> lock(mu_);
  workers_.erase(worker_id);
  last_seen_.erase(worker_id);
  // lease_expiries_by_worker_ is deliberately kept: post-eviction reports
  // need the expiry count to attribute the eviction to a hang.
  if (current_straggler_ == worker_id) current_straggler_ = -1;
  for (auto it = pending_barriers_.begin(); it != pending_barriers_.end();) {
    it = it->second.last_worker == worker_id ? pending_barriers_.erase(it)
                                             : ++it;
  }
}

void ClusterView::RecordLiveness(int worker_id) {
  std::lock_guard<std::mutex> lock(mu_);
  last_seen_[worker_id] = std::chrono::steady_clock::now();
}

void ClusterView::RecordLeaseExpiry(int worker_id) {
  std::lock_guard<std::mutex> lock(mu_);
  ++lease_expiries_by_worker_[worker_id];
}

std::uint64_t ClusterView::lease_expiries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [id, n] : lease_expiries_by_worker_) total += n;
  return total;
}

void ClusterView::SetRawBytesPerStep(std::uint64_t push_raw,
                                     std::uint64_t pull_raw) {
  std::lock_guard<std::mutex> lock(mu_);
  raw_push_bytes_per_step_ = push_raw;
  raw_pull_bytes_per_step_ = pull_raw;
}

void ClusterView::SetStorageHealth(const StorageHealth& health) {
  std::lock_guard<std::mutex> lock(mu_);
  have_storage_ = true;
  storage_ = health;
}

std::size_t ClusterView::worker_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

std::uint64_t ClusterView::straggler_flips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return straggler_flips_;
}

int ClusterView::current_straggler() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_straggler_;
}

void ClusterView::AppendWorkerJson(std::string& out, int id,
                                   const WorkerState& w) const {
  out += "\"";
  out += std::to_string(id);
  out += "\":{\"last_step\":";
  AppendJsonNumber(out, static_cast<std::int64_t>(w.last_step));
  out += ",\"records\":";
  AppendJsonNumber(out, w.records);
  out += ",\"bytes_out\":";
  AppendJsonNumber(out, w.bytes_out);
  out += ",\"bytes_in\":";
  AppendJsonNumber(out, w.bytes_in);
  out += ",\"stage1_bytes_out\":";
  AppendJsonNumber(out, w.stage1_bytes_out);
  out += ",\"stage1_bytes_in\":";
  AppendJsonNumber(out, w.stage1_bytes_in);
  out += ",\"ea_l2\":";
  AppendJsonNumber(out, w.ea_l2);
  out += ",\"rejoins\":";
  AppendJsonNumber(out, static_cast<std::uint64_t>(w.rejoins));
  out += ",\"phases\":{";
  for (int p = 0; p < kPhases; ++p) {
    if (p > 0) out += ",";
    const PhaseHist& h = w.phases[p];
    out += "\"";
    out += kPhaseNames[p];
    out += "\":{\"p50_ns\":";
    AppendJsonNumber(out, StageQuantileNs(h.hist, kHistogramBuckets, h.count,
                                          0.50));
    out += ",\"p95_ns\":";
    AppendJsonNumber(out, StageQuantileNs(h.hist, kHistogramBuckets, h.count,
                                          0.95));
    out += ",\"p99_ns\":";
    AppendJsonNumber(out, StageQuantileNs(h.hist, kHistogramBuckets, h.count,
                                          0.99));
    out += ",\"mean_ns\":";
    AppendJsonNumber(out, h.count > 0 ? static_cast<double>(h.total_ns) /
                                            static_cast<double>(h.count)
                                      : 0.0);
    out += ",\"total_ns\":";
    AppendJsonNumber(out, h.total_ns);
    out += "}";
  }
  out += "},\"straggler_steps\":";
  AppendJsonNumber(out, w.straggler_steps);
  out += ",\"straggler_causes\":{";
  for (int c = 0; c < 3; ++c) {
    if (c > 0) out += ",";
    out += "\"";
    out += StragglerCauseName(static_cast<StragglerCause>(c));
    out += "\":";
    AppendJsonNumber(out, w.cause_counts[c]);
  }
  out += "},\"barrier_wait_ms_sum\":";
  AppendJsonNumber(out, w.barrier_wait_ms_sum);
  out += ",\"last_heartbeat_age_ms\":";
  const auto seen = last_seen_.find(id);
  if (seen == last_seen_.end()) {
    // Liveness tracking off (lease_ms == 0) or no frame stamped yet.
    AppendJsonNumber(out, static_cast<std::int64_t>(-1));
  } else {
    AppendJsonNumber(out, std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - seen->second)
                              .count());
  }
  out += "}";
}

std::string ClusterView::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(2048);
  out += "{\"workers\":{";
  bool first = true;
  std::uint64_t fleet_records = 0, fleet_out = 0, fleet_in = 0;
  std::uint64_t fleet_stage1_out = 0, fleet_stage1_in = 0;
  PhaseHist fleet[kPhases];
  for (const auto& [id, w] : workers_) {
    if (!first) out += ",";
    first = false;
    AppendWorkerJson(out, id, w);
    fleet_records += w.records;
    fleet_out += w.bytes_out;
    fleet_in += w.bytes_in;
    fleet_stage1_out += w.stage1_bytes_out;
    fleet_stage1_in += w.stage1_bytes_in;
    for (int p = 0; p < kPhases; ++p) w.phases[p].MergeInto(fleet[p]);
  }
  out += "},\"fleet\":{\"workers\":";
  AppendJsonNumber(out, static_cast<std::uint64_t>(workers_.size()));
  out += ",\"records\":";
  AppendJsonNumber(out, fleet_records);
  out += ",\"bytes_out\":";
  AppendJsonNumber(out, fleet_out);
  out += ",\"bytes_in\":";
  AppendJsonNumber(out, fleet_in);
  out += ",\"stage1_bytes_out\":";
  AppendJsonNumber(out, fleet_stage1_out);
  out += ",\"stage1_bytes_in\":";
  AppendJsonNumber(out, fleet_stage1_in);
  out += ",\"raw_push_bytes_per_step\":";
  AppendJsonNumber(out, raw_push_bytes_per_step_);
  out += ",\"raw_pull_bytes_per_step\":";
  AppendJsonNumber(out, raw_pull_bytes_per_step_);
  // Ratio = uncompressed bytes the observed records represent / bytes
  // actually moved, per direction. > 1 means compression won. The plain
  // ratio is end-to-end (wire bytes, after any second-stage block codec);
  // the _stage1 variant stops after the tensor codec, so the difference
  // between them is exactly what the block codec bought.
  const auto ratio = [fleet_records](std::uint64_t raw, std::uint64_t got) {
    return got > 0 ? static_cast<double>(raw) *
                         static_cast<double>(fleet_records) /
                         static_cast<double>(got)
                   : 0.0;
  };
  const double push_ratio = ratio(raw_push_bytes_per_step_, fleet_out);
  const double pull_ratio = ratio(raw_pull_bytes_per_step_, fleet_in);
  out += ",\"compression_ratio_push\":";
  AppendJsonNumber(out, push_ratio);
  out += ",\"compression_ratio_pull\":";
  AppendJsonNumber(out, pull_ratio);
  out += ",\"compression_ratio_push_stage1\":";
  AppendJsonNumber(out, ratio(raw_push_bytes_per_step_, fleet_stage1_out));
  out += ",\"compression_ratio_pull_stage1\":";
  AppendJsonNumber(out, ratio(raw_pull_bytes_per_step_, fleet_stage1_in));
  out += ",\"phases\":{";
  for (int p = 0; p < kPhases; ++p) {
    if (p > 0) out += ",";
    out += "\"";
    out += kPhaseNames[p];
    out += "\":{\"p50_ns\":";
    AppendJsonNumber(out, StageQuantileNs(fleet[p].hist, kHistogramBuckets,
                                          fleet[p].count, 0.50));
    out += ",\"p95_ns\":";
    AppendJsonNumber(out, StageQuantileNs(fleet[p].hist, kHistogramBuckets,
                                          fleet[p].count, 0.95));
    out += ",\"p99_ns\":";
    AppendJsonNumber(out, StageQuantileNs(fleet[p].hist, kHistogramBuckets,
                                          fleet[p].count, 0.99));
    out += ",\"total_ns\":";
    AppendJsonNumber(out, fleet[p].total_ns);
    out += "}";
  }
  out += "}},\"straggler\":{\"current\":";
  AppendJsonNumber(out, static_cast<std::int64_t>(current_straggler_));
  out += ",\"flips\":";
  AppendJsonNumber(out, straggler_flips_);
  out += ",\"barriers_observed\":";
  AppendJsonNumber(out, barriers_observed_);
  // Lease expiries are keyed by worker id and survive eviction, so this
  // section can name a worker the "workers" map no longer contains.
  out += "},\"liveness\":{\"lease_expiries\":{";
  bool first_lease = true;
  for (const auto& [id, n] : lease_expiries_by_worker_) {
    if (!first_lease) out += ",";
    first_lease = false;
    out += "\"";
    out += std::to_string(id);
    out += "\":";
    AppendJsonNumber(out, n);
  }
  out += "}}";
  if (have_storage_) {
    out += ",\"storage\":{\"checkpoints\":";
    AppendJsonNumber(out, storage_.checkpoints);
    out += ",\"write_failures\":";
    AppendJsonNumber(out, storage_.write_failures);
    out += ",\"fallbacks\":";
    AppendJsonNumber(out, storage_.fallbacks);
    out += ",\"generations\":";
    AppendJsonNumber(out, storage_.generations);
    out += ",\"last_write_ms\":";
    AppendJsonNumber(out, storage_.last_write_ms);
    out += ",\"degraded\":";
    out += storage_.degraded ? "true" : "false";
    out += "}";
  }
  out += "}";
  return out;
}

void ClusterView::WritePrometheus(std::ostream& out,
                                  const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Lease-expiry counters must keep exporting after the last tracked
  // worker was evicted — that is exactly when a scrape wants them.
  if (workers_.empty() && lease_expiries_by_worker_.empty()) return;
  std::string text;
  char buf[64];
  const std::string base = prefix + "cluster_";
  auto fmt = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return std::string(buf);
  };

  text += "# HELP " + base + "workers Workers currently tracked\n";
  text += "# TYPE " + base + "workers gauge\n";
  text += base + "workers " + std::to_string(workers_.size()) + "\n";

  text += "# HELP " + base +
          "straggler_flips_total Times the slowest worker changed\n";
  text += "# TYPE " + base + "straggler_flips_total counter\n";
  text += base + "straggler_flips_total " + std::to_string(straggler_flips_) +
          "\n";

  text += "# HELP " + base +
          "worker_records_total Telemetry records ingested per worker\n";
  text += "# TYPE " + base + "worker_records_total counter\n";
  for (const auto& [id, w] : workers_) {
    text += base + "worker_records_total{worker=\"" + std::to_string(id) +
            "\"} " + std::to_string(w.records) + "\n";
  }

  text += "# HELP " + base +
          "worker_bytes_total Encoded payload bytes per worker\n";
  text += "# TYPE " + base + "worker_bytes_total counter\n";
  for (const auto& [id, w] : workers_) {
    text += base + "worker_bytes_total{worker=\"" + std::to_string(id) +
            "\",direction=\"out\"} " + std::to_string(w.bytes_out) + "\n";
    text += base + "worker_bytes_total{worker=\"" + std::to_string(id) +
            "\",direction=\"in\"} " + std::to_string(w.bytes_in) + "\n";
  }

  text += "# HELP " + base +
          "worker_stage1_bytes_total First-stage (pre-block-codec) payload "
          "bytes per worker\n";
  text += "# TYPE " + base + "worker_stage1_bytes_total counter\n";
  for (const auto& [id, w] : workers_) {
    text += base + "worker_stage1_bytes_total{worker=\"" +
            std::to_string(id) + "\",direction=\"out\"} " +
            std::to_string(w.stage1_bytes_out) + "\n";
    text += base + "worker_stage1_bytes_total{worker=\"" +
            std::to_string(id) + "\",direction=\"in\"} " +
            std::to_string(w.stage1_bytes_in) + "\n";
  }

  text += "# HELP " + base +
          "worker_rejoins Reconnects reported by each worker\n";
  text += "# TYPE " + base + "worker_rejoins gauge\n";
  for (const auto& [id, w] : workers_) {
    text += base + "worker_rejoins{worker=\"" + std::to_string(id) + "\"} " +
            std::to_string(w.rejoins) + "\n";
  }

  text += "# HELP " + base +
          "worker_ea_l2 Latest error-accumulation buffer L2 per worker\n";
  text += "# TYPE " + base + "worker_ea_l2 gauge\n";
  for (const auto& [id, w] : workers_) {
    text += base + "worker_ea_l2{worker=\"" + std::to_string(id) + "\"} " +
            fmt(w.ea_l2) + "\n";
  }

  text += "# HELP " + base +
          "straggler_steps_total Steps where the worker was last to the "
          "barrier\n";
  text += "# TYPE " + base + "straggler_steps_total counter\n";
  for (const auto& [id, w] : workers_) {
    text += base + "straggler_steps_total{worker=\"" + std::to_string(id) +
            "\"} " + std::to_string(w.straggler_steps) + "\n";
  }

  text += "# HELP " + base +
          "straggler_cause_total Straggler steps attributed per cause\n";
  text += "# TYPE " + base + "straggler_cause_total counter\n";
  for (const auto& [id, w] : workers_) {
    for (int c = 0; c < 3; ++c) {
      if (w.cause_counts[c] == 0) continue;
      text += base + "straggler_cause_total{worker=\"" + std::to_string(id) +
              "\",cause=\"" +
              StragglerCauseName(static_cast<StragglerCause>(c)) + "\"} " +
              std::to_string(w.cause_counts[c]) + "\n";
    }
  }

  text += "# HELP " + base +
          "phase_ns Per-worker step-phase duration distribution (ns)\n";
  text += "# TYPE " + base + "phase_ns summary\n";
  for (const auto& [id, w] : workers_) {
    for (int p = 0; p < kPhases; ++p) {
      const PhaseHist& h = w.phases[p];
      const std::string labels = "{worker=\"" + std::to_string(id) +
                                 "\",phase=\"" + kPhaseNames[p] + "\"";
      const struct {
        const char* q;
        double v;
      } quantiles[] = {
          {"0.5", StageQuantileNs(h.hist, kHistogramBuckets, h.count, 0.50)},
          {"0.95", StageQuantileNs(h.hist, kHistogramBuckets, h.count, 0.95)},
          {"0.99", StageQuantileNs(h.hist, kHistogramBuckets, h.count, 0.99)}};
      for (const auto& q : quantiles) {
        text += base + "phase_ns" + labels + ",quantile=\"" + q.q + "\"} " +
                fmt(q.v) + "\n";
      }
      text += base + "phase_ns_sum" + labels + "} " +
              std::to_string(h.total_ns) + "\n";
      text += base + "phase_ns_count" + labels + "} " +
              std::to_string(h.count) + "\n";
    }
  }

  if (!last_seen_.empty()) {
    const auto now = std::chrono::steady_clock::now();
    text += "# HELP " + base +
            "worker_heartbeat_age_ms Milliseconds since the last frame "
            "from each worker\n";
    text += "# TYPE " + base + "worker_heartbeat_age_ms gauge\n";
    for (const auto& [id, when] : last_seen_) {
      text += base + "worker_heartbeat_age_ms{worker=\"" +
              std::to_string(id) + "\"} " +
              fmt(std::chrono::duration<double, std::milli>(now - when)
                      .count()) +
              "\n";
    }
  }

  if (!lease_expiries_by_worker_.empty()) {
    text += "# HELP " + base +
            "worker_lease_expiries_total Lease expiries (hang/partition "
            "detections) per worker; survives eviction\n";
    text += "# TYPE " + base + "worker_lease_expiries_total counter\n";
    for (const auto& [id, n] : lease_expiries_by_worker_) {
      text += base + "worker_lease_expiries_total{worker=\"" +
              std::to_string(id) + "\"} " + std::to_string(n) + "\n";
    }
  }
  out << text;
}

}  // namespace threelc::obs
