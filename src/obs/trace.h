// Scoped span tracer with Chrome trace-event export.
//
// Spans are recorded on logical *tracks* — the simulated machines of the
// parameter-server architecture (track 0 = server, 1+w = worker w) — rather
// than host threads, because the thread pool multiplexes many simulated
// workers onto few host threads and a per-host-thread view would scramble
// the picture the paper's timeline reasons about.
//
// WriteChromeTrace emits the JSON trace-event format ("X" complete events
// plus thread_name metadata) loadable in about:tracing and Perfetto.
//
// Cost model: a ScopedSpan against a null or disabled tracer is two branch
// instructions; an enabled span is two steady_clock reads and one short
// mutex-guarded vector push_back (per phase per step, never per tensor).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace threelc::obs {

struct TraceEvent {
  std::string name;
  int track = 0;
  double ts_us = 0.0;   // since tracer construction
  double dur_us = 0.0;
  // Logical training step the span belongs to, or -1 when unknown. Stamped
  // into the Chrome JSON as args.step so tools/merge_traces.py can align
  // server and worker traces from different processes on one timeline.
  std::int64_t step = -1;
};

class Tracer {
 public:
  Tracer() : origin_(std::chrono::steady_clock::now()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool enabled) { enabled_.store(enabled); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Microseconds since tracer construction.
  double NowUs() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  // Label a track ("server", "worker 0"); shown as the thread name.
  void SetTrackName(int track, std::string name);

  // Record one completed span. Thread-safe; no-op when disabled. `step`
  // tags the span with a logical training step (-1 = untagged).
  void RecordSpan(std::string name, int track, double ts_us, double dur_us,
                  std::int64_t step = -1);

  // Instantaneous counter sample attached to the trace ("i" would lose the
  // value, so these export as counter events "C").
  void RecordCounter(std::string name, int track, double ts_us, double value);

  std::size_t event_count() const;
  std::vector<TraceEvent> snapshot() const;

  // Full trace-event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  void WriteChromeTrace(std::ostream& out) const;

 private:
  struct CounterEvent {
    std::string name;
    int track;
    double ts_us;
    double value;
  };

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::vector<CounterEvent> counters_;
  std::map<int, std::string> track_names_;
};

// RAII span: measures construction-to-destruction against `tracer`'s clock.
// A null tracer (telemetry off) makes every member a no-op.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name, int track,
             std::int64_t step = -1)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        name_(name),
        track_(track),
        step_(step),
        start_us_(tracer_ != nullptr ? tracer_->NowUs() : 0.0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->RecordSpan(name_, track_, start_us_,
                          tracer_->NowUs() - start_us_, step_);
    }
  }

 private:
  Tracer* tracer_;
  const char* name_;
  int track_;
  std::int64_t step_;
  double start_us_;
};

}  // namespace threelc::obs
