// Hierarchical stage profiler for hot paths (codec stages, transport
// frame handling, server step phases).
//
// Design rules, mirroring MetricsRegistry:
//  - Compiled in everywhere, disabled by default. A ScopedStage against a
//    disabled profiler costs one relaxed atomic load and a predictable
//    branch (bench_kernels measures this as BM_StageScopeDisabled).
//  - An enabled ScopedStage accumulates into thread-local, single-writer
//    slots: two steady_clock reads plus a handful of relaxed stores, no
//    locks and no allocation on the steady-state path. The only locking
//    happens the first time a thread sees a new (parent, name) pair.
//  - Stages are hierarchical: a ScopedStage opened while another is live
//    on the same thread becomes its child, and the stage's identity is the
//    full path ("server_step/decode_aggregate/3lc_decode/zre"). The same
//    leaf name under different parents is a different stage, which is how
//    one codec instrumentation serves both the push and pull directions.
//  - Snapshot() merges every thread's accumulators outside the hot path
//    (the scraping thread pays the cost, not the step loop). Counts and
//    totals may be torn by in-flight recordings — profiling tolerance, not
//    ledger accuracy.
//  - Each stage keeps exact count/total/min/max plus a log2(ns) histogram
//    for quantiles: 64 buckets cover 1 ns to ~18 s with <=50% relative
//    error, enough to tell a 2 us quartic pack from a 2 ms fan-out stall.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace threelc::obs {

class MetricsRegistry;

// Shared log2(ns) bucket math. StageProfiler records into these buckets
// and ClusterView merges worker-shipped durations into the same layout,
// so cluster-level quantiles are computed with bit-identical math.
//
// Bucket b covers [2^b, 2^(b+1)) ns; 0 and 1 ns both land in bucket 0.
inline int StageLog2Bucket(std::uint64_t ns) {
  if (ns <= 1) return 0;
  return 63 - __builtin_clzll(ns);
}

// Geometric midpoint of bucket b — the representative duration reported
// for quantiles (exact to within the bucket's +-50% width).
inline double StageBucketMidNs(int b) {
  return static_cast<double>(std::uint64_t{1} << b) * 1.4142135623730951;
}

// Quantile over a 64-bucket log2 histogram via cumulative walk. `hist`
// must have at least `buckets` entries; returns the midpoint of the
// bucket where the cumulative count first reaches q * total.
inline double StageQuantileNs(const std::uint64_t* hist, int buckets,
                              std::uint64_t total, double q) {
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (int b = 0; b < buckets; ++b) {
    cum += hist[b];
    if (static_cast<double>(cum) >= target && cum > 0) {
      return StageBucketMidNs(b);
    }
  }
  return StageBucketMidNs(buckets - 1);
}

// One stage, merged across threads, as of a Snapshot() call.
struct StageSample {
  std::string path;  // "parent/child/leaf"
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  double p50_ns = 0.0;  // from the log2 histogram (geometric bucket mid)
  double p90_ns = 0.0;
  double p99_ns = 0.0;
};

class StageProfiler {
 public:
  // Log2 duration buckets: bucket b holds durations in [2^b, 2^(b+1)) ns.
  static constexpr int kHistogramBuckets = 64;
  // Distinct hierarchical stage paths per profiler. Fixed so per-thread
  // accumulator arrays never reallocate under a concurrent Snapshot().
  static constexpr int kMaxStages = 256;

  StageProfiler();
  ~StageProfiler();
  StageProfiler(const StageProfiler&) = delete;
  StageProfiler& operator=(const StageProfiler&) = delete;

  // Process-wide profiler; what Telemetry enables and /metricsz serves.
  static StageProfiler& Global();

  void set_enabled(bool enabled) { enabled_.store(enabled); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Merge every thread's accumulators into per-path samples, sorted by
  // path. Stages with zero recordings are omitted.
  std::vector<StageSample> Snapshot() const;

  // Record the current totals into `registry` as one counter per stage:
  //   profile/<path>  (value = total seconds, events = count)
  // Totals are cumulative, so call this once per registry (e.g. at
  // Telemetry::Flush) — repeated exports double-count.
  void ExportTo(MetricsRegistry& registry) const;

  // Prometheus text exposition of the current snapshot:
  //   <prefix>stage_<path>_seconds_total / _count_total  (counters)
  //   <prefix>stage_<path>_ns{quantile=...} + _sum/_count (summary)
  void WritePrometheus(std::ostream& out,
                       const std::string& prefix = "threelc_") const;

  // Zero every accumulator, keeping registered stages and thread slots.
  // Test/bench helper; not safe against concurrent recording threads.
  void Reset();

  std::size_t stage_count() const;

 private:
  friend class ScopedStage;

  // Single-writer accumulator: only the owning thread stores, any thread
  // may load (Snapshot). Everything relaxed — the values are statistics.
  struct StageAccum {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total_ns{0};
    std::atomic<std::uint64_t> min_ns{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max_ns{0};
    std::atomic<std::uint32_t> hist[kHistogramBuckets] = {};
  };

  struct ThreadState {
    ThreadState() : accums(new StageAccum[kMaxStages]) {}
    std::unique_ptr<StageAccum[]> accums;
    // Owner-thread-only state below.
    int current = -1;  // innermost live stage id (-1 = top level)
    struct ChildEdge {
      int parent;
      const char* name;  // pointer identity: stage names are literals
      int id;
    };
    std::vector<ChildEdge> children;  // tiny; linear scan beats hashing
    void Record(int id, std::uint64_t ns);
  };

  ThreadState* GetThreadState();
  int ResolveChild(ThreadState& ts, int parent, const char* name);

  std::atomic<bool> enabled_{false};
  const std::uint64_t instance_id_;  // unique forever; keys the TLS cache
  mutable std::mutex mu_;  // guards paths_/ids_/threads_ structure
  std::vector<std::string> paths_;  // index = stage id
  std::vector<std::unique_ptr<ThreadState>> threads_;
};

// RAII stage timer. Null or disabled profiler makes every member a no-op.
class ScopedStage {
 public:
  // `name` must be a string literal (or otherwise outlive the profiler):
  // the per-thread child cache keys on pointer identity.
  ScopedStage(StageProfiler* profiler, const char* name) {
    if (profiler == nullptr || !profiler->enabled()) return;
    ts_ = profiler->GetThreadState();
    parent_ = ts_->current;
    id_ = profiler->ResolveChild(*ts_, parent_, name);
    ts_->current = id_;
    start_ = std::chrono::steady_clock::now();
  }

  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

  ~ScopedStage() {
    if (ts_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    ts_->Record(id_, ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
    ts_->current = parent_;
  }

 private:
  StageProfiler::ThreadState* ts_ = nullptr;
  int parent_ = -1;
  int id_ = -1;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace threelc::obs
