// Embedded HTTP/1.1 exposition server — POSIX sockets only, no third-party
// dependencies. Serves the live-monitoring endpoints (/metricsz, /healthz,
// /statusz, /flightz) registered by Telemetry.
//
// Threading model: one accept thread multiplexing the listen socket and a
// shutdown pipe through poll(2), plus a small fixed pool of worker threads
// draining a bounded connection queue. When the queue is full the accept
// thread answers 503 inline and closes — the server never queues unbounded
// work and never touches the training threads.
//
// Protocol scope (deliberately small): GET/HEAD only, request line + headers
// up to 8 KiB, responses close the connection. Handlers run on worker
// threads and must be thread-safe. Partial reads are handled (requests may
// arrive byte by byte); oversized requests get 431, malformed ones 400,
// unknown paths 404.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace threelc::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse()>;

class HttpServer {
 public:
  HttpServer();
  ~HttpServer();  // stops and joins

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Register a handler for an exact path. Call before Start.
  void Handle(std::string path, HttpHandler handler);

  // Bind + listen on `port` (0 picks an ephemeral port, see port()) and
  // start the accept/worker threads. Returns false when the socket cannot
  // be bound.
  bool Start(int port);

  // Stop accepting, drain workers, join threads. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  int port() const { return port_; }

  // --- Parsing helpers, exposed for unit tests ----------------------------

  // Parse "GET /path HTTP/1.1"; tolerates a query string (stripped from
  // *path). Returns false on anything that is not three space-separated
  // tokens with an HTTP/ version.
  static bool ParseRequestLine(const std::string& line, std::string* method,
                               std::string* path);

  // Build the full response bytes for one request head (request line +
  // headers, no body). Routing + error mapping live here so tests can
  // exercise them without sockets.
  std::string ResponseFor(const std::string& request_head) const;

  static const char* StatusText(int status);
  static std::string FormatResponse(const HttpResponse& response,
                                    bool include_body);

  static constexpr std::size_t kMaxRequestBytes = 8192;
  static constexpr std::size_t kMaxQueuedConnections = 32;
  static constexpr int kWorkerThreads = 2;

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);

  std::map<std::string, HttpHandler> handlers_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = -1;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  // accepted fds awaiting a worker
};

}  // namespace threelc::obs
