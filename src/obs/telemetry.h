// Telemetry: the bundle a training run threads through the stack — one
// metrics registry, one span tracer, and one JSONL step logger, configured
// from the shared --trace-out / --metrics-out / --log-level flags.
//
// Step-log JSONL schema (one object per line):
//   {"type":"step","step":N,"loss":..,"lr":..,
//    "push_bytes":..,"pull_bytes":..,"push_values":..,"pull_values":..,
//    "push_bits_per_value":..,"pull_bits_per_value":..,
//    "codec_seconds":..,"contributors":..,
//    "phases_ms":{"forward_backward":..,"encode_push":..,...},
//    "tensors":[{"name":"dense0/W","elements":..,"push_bytes":..,
//                "pull_bytes":..,"zero_frac":..,"plus_frac":..,
//                "minus_frac":..,"zre_hit_rate":..,
//                "push_residual_l2":..,"pull_residual_l2":..}, ...]}
// and, at Flush, one summary line:
//   {"type":"summary","metrics":{<MetricsRegistry::ToJsonObject()>}}
// Optional per-tensor fields are omitted when the codec does not produce
// them (e.g. no ternary stage, no error-accumulation buffer).
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace threelc::util {
class Flags;
}

namespace threelc::obs {

struct TelemetryOptions {
  std::string trace_path;    // empty = span tracing off
  std::string metrics_path;  // empty = metrics/step-log off
  bool per_tensor = true;    // per-tensor codec stats in the step log
};

// Per-tensor codec behaviour for one training step (aggregated over
// workers for the push direction). Fractions < 0 mean "not produced by
// this codec" and are omitted from the JSONL.
struct TensorStepTelemetry {
  std::string name;
  std::size_t elements = 0;
  std::size_t push_bytes = 0;  // summed over workers
  std::size_t pull_bytes = 0;  // the shared payload, once
  double zero_frac = -1.0;     // ternary symbol distribution (push)
  double plus_frac = -1.0;
  double minus_frac = -1.0;
  double zre_hit_rate = -1.0;  // fraction of quartic bytes removed by ZRE
  double push_residual_l2 = -1.0;  // mean over workers' EA buffers
  double pull_residual_l2 = -1.0;  // server's pull EA buffer
};

// One structured record per training step.
struct StepTelemetry {
  std::int64_t step = 0;
  double loss = 0.0;
  double lr = 0.0;
  std::size_t push_bytes = 0;
  std::size_t pull_bytes = 0;
  std::size_t push_values = 0;
  std::size_t pull_values = 0;
  double push_bits_per_value = 0.0;
  double pull_bits_per_value = 0.0;
  double codec_seconds = 0.0;  // critical-path codec CPU time
  int contributors = 0;
  struct Phase {
    const char* name;
    double ms;
  };
  std::vector<Phase> phases_ms;  // critical-path phase wall times
  std::vector<TensorStepTelemetry> tensors;
};

class Telemetry {
 public:
  // Opens the metrics JSONL immediately (fail-fast on bad paths); the trace
  // file is written at Flush. Throws std::runtime_error if a path cannot
  // be opened.
  explicit Telemetry(TelemetryOptions options);
  ~Telemetry();  // flushes

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  Tracer& tracer() { return tracer_; }

  bool metrics_enabled() const { return metrics_.enabled(); }
  bool trace_enabled() const { return tracer_.enabled(); }
  bool per_tensor_enabled() const {
    return options_.per_tensor && metrics_.enabled();
  }

  // Append one step record to the metrics JSONL. Thread-safe.
  void LogStep(const StepTelemetry& step);

  // Serialize one step record (exposed for tests).
  static std::string StepToJson(const StepTelemetry& step);

  // Write the Chrome trace and the metrics summary line, then close the
  // outputs. Idempotent; also runs from the destructor.
  void Flush();

 private:
  TelemetryOptions options_;
  MetricsRegistry metrics_;
  Tracer tracer_;
  std::mutex mu_;
  std::ofstream metrics_out_;
  bool flushed_ = false;
};

// --- Flag wiring shared by examples/ and bench/ ---------------------------

// Build TelemetryOptions from --trace-out, --metrics-out, --per-tensor.
TelemetryOptions TelemetryOptionsFromFlags(const util::Flags& flags);

// Apply --log-level (debug|info|warn|error) to util::SetLogLevel. Returns
// false (and warns) on an unrecognized level name.
bool ApplyLogLevelFlag(const util::Flags& flags);

}  // namespace threelc::obs
