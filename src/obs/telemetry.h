// Telemetry: the bundle a training run threads through the stack — one
// metrics registry, one span tracer, and one JSONL step logger, configured
// from the shared --trace-out / --metrics-out / --log-level flags.
//
// Step-log JSONL schema (one object per line):
//   {"type":"step","step":N,"loss":..,"lr":..,
//    "push_bytes":..,"pull_bytes":..,"push_values":..,"pull_values":..,
//    "push_bits_per_value":..,"pull_bits_per_value":..,
//    "codec_seconds":..,"contributors":..,
//    "phases_ms":{"forward_backward":..,"encode_push":..,...},
//    "tensors":[{"name":"dense0/W","elements":..,"push_bytes":..,
//                "pull_bytes":..,"zero_frac":..,"plus_frac":..,
//                "minus_frac":..,"zre_hit_rate":..,
//                "push_residual_l2":..,"pull_residual_l2":..}, ...]}
// and, at Flush, one summary line:
//   {"type":"summary","metrics":{<MetricsRegistry::ToJsonObject()>}}
// Optional per-tensor fields are omitted when the codec does not produce
// them (e.g. no ternary stage, no error-accumulation buffer).
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace threelc::util {
class Flags;
}

namespace threelc::obs {

class ClusterView;
class FlightRecorder;
class HttpServer;

struct TelemetryOptions {
  std::string trace_path;    // empty = span tracing off
  std::string metrics_path;  // empty = metrics/step-log off
  bool per_tensor = true;    // per-tensor codec stats in the step log
  // Live monitoring: metrics_port >= 0 starts the embedded HTTP server
  // (/metricsz, /healthz, /statusz, /flightz; 0 picks an ephemeral port)
  // and enables the health watchdog + flight recorder. Setting flight_path
  // alone enables watchdog + recorder without the HTTP server. With
  // neither, no socket is ever opened and no monitoring state exists.
  int metrics_port = -1;
  std::string flight_path;   // empty + monitoring on = "flight.jsonl"
  std::size_t flight_capacity = 256;  // ring slots (~last N steps)
  HealthMonitorOptions health;

  // True when any live-monitoring piece (watchdog, recorder, HTTP) is on.
  bool monitoring_enabled() const {
    return metrics_port >= 0 || !flight_path.empty();
  }
};

// Per-tensor codec behaviour for one training step (aggregated over
// workers for the push direction). Fractions < 0 mean "not produced by
// this codec" and are omitted from the JSONL.
struct TensorStepTelemetry {
  std::string name;
  std::size_t elements = 0;
  std::size_t push_bytes = 0;  // summed over workers
  std::size_t pull_bytes = 0;  // the shared payload, once
  double zero_frac = -1.0;     // ternary symbol distribution (push)
  double plus_frac = -1.0;
  double minus_frac = -1.0;
  double zre_hit_rate = -1.0;  // fraction of quartic bytes removed by ZRE
  double push_residual_l2 = -1.0;  // mean over workers' EA buffers
  double pull_residual_l2 = -1.0;  // server's pull EA buffer
};

// One structured record per training step.
struct StepTelemetry {
  std::int64_t step = 0;
  double loss = 0.0;
  double lr = 0.0;
  std::size_t push_bytes = 0;
  std::size_t pull_bytes = 0;
  std::size_t push_values = 0;
  std::size_t pull_values = 0;
  double push_bits_per_value = 0.0;
  double pull_bits_per_value = 0.0;
  double codec_seconds = 0.0;  // critical-path codec CPU time
  double step_wall_ms = 0.0;   // critical-path wall time of the whole step
  int contributors = 0;
  struct Phase {
    const char* name;
    double ms;
  };
  std::vector<Phase> phases_ms;  // critical-path phase wall times
  std::vector<TensorStepTelemetry> tensors;
};

class Telemetry {
 public:
  // Opens the metrics JSONL immediately (fail-fast on bad paths) and, when
  // options.monitoring_enabled(), brings up the health watchdog, the
  // flight recorder (with SIGSEGV/SIGABRT dump handlers), and — when
  // metrics_port >= 0 — the embedded HTTP server. The trace file is
  // written at Flush. Throws std::runtime_error if a path cannot be
  // opened or the monitoring port cannot be bound.
  explicit Telemetry(TelemetryOptions options);
  ~Telemetry();  // flushes (exceptions swallowed), stops the HTTP server

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  Tracer& tracer() { return tracer_; }

  bool metrics_enabled() const { return metrics_.enabled(); }
  bool trace_enabled() const { return tracer_.enabled(); }
  bool per_tensor_enabled() const {
    return options_.per_tensor && metrics_.enabled();
  }

  // Live-monitoring pieces; null when options_.monitoring_enabled() is
  // false (health/flight) or metrics_port < 0 (http).
  HealthMonitor* health() { return health_.get(); }
  FlightRecorder* flight_recorder() { return flight_.get(); }
  HttpServer* http_server() { return http_.get(); }

  // Cluster-wide telemetry aggregation, fed by the RPC server from
  // TELEMETRY frames and barrier observations. Always constructed (the
  // in-process trainer simply never feeds it); served at /clusterz and
  // as threelc_cluster_* families on /metricsz.
  ClusterView* cluster_view() { return cluster_view_.get(); }

  // Seconds since this Telemetry was constructed (served by /statusz).
  double UptimeSeconds() const;

  // Append one step record to the metrics JSONL and feed the flight
  // recorder + health watchdog. Thread-safe.
  void LogStep(const StepTelemetry& step);

  // Serialize one step record (exposed for tests).
  static std::string StepToJson(const StepTelemetry& step);

  // Write the Chrome trace, the metrics summary line, and an on-demand
  // flight-recorder dump, then close the outputs. Idempotent; also runs
  // from the destructor. The HTTP server keeps serving until destruction.
  void Flush();

 private:
  TelemetryOptions options_;
  MetricsRegistry metrics_;
  Tracer tracer_;
  std::chrono::steady_clock::time_point start_;
  std::unique_ptr<HealthMonitor> health_;
  std::unique_ptr<FlightRecorder> flight_;
  std::unique_ptr<ClusterView> cluster_view_;
  std::unique_ptr<HttpServer> http_;
  std::mutex mu_;
  std::ofstream metrics_out_;
  bool flushed_ = false;
};

// --- Flag wiring shared by examples/ and bench/ ---------------------------

// Build TelemetryOptions from --trace-out, --metrics-out, --per-tensor,
// --metrics-port, and --flight-out.
TelemetryOptions TelemetryOptionsFromFlags(const util::Flags& flags);

// Apply --log-level (debug|info|warn|error) to util::SetLogLevel. Returns
// false (and warns) on an unrecognized level name.
bool ApplyLogLevelFlag(const util::Flags& flags);

}  // namespace threelc::obs
