#include "obs/prometheus.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "obs/metrics.h"

namespace threelc::obs {

namespace {

bool IsNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

// Prometheus sample values allow NaN and signed infinity as literals.
void AppendSampleValue(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "NaN";
  } else if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out += buf;
  }
}

void AppendHeader(std::string& out, const std::string& name,
                  const char* type, const std::string& help) {
  out += "# HELP " + name + " " + help + "\n";
  out += "# TYPE " + name + " ";
  out += type;
  out += "\n";
}

void AppendSample(std::string& out, const std::string& name, double v) {
  out += name + " ";
  AppendSampleValue(out, v);
  out += "\n";
}

void AppendQuantileSample(std::string& out, const std::string& name,
                          const char* quantile, double v) {
  out += name + "{quantile=\"";
  out += quantile;
  out += "\"} ";
  AppendSampleValue(out, v);
  out += "\n";
}

}  // namespace

bool IsValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    if (!IsNameChar(name[i], i == 0)) return false;
  }
  return true;
}

std::string SanitizeMetricName(const std::string& name) {
  if (name.empty()) return "_";
  std::string out;
  out.reserve(name.size() + 1);
  for (std::size_t i = 0; i < name.size(); ++i) {
    out.push_back(IsNameChar(name[i], /*first=*/false) ? name[i] : '_');
  }
  if (!IsNameChar(out[0], /*first=*/true)) out.insert(out.begin(), '_');
  return out;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void WritePrometheus(const MetricsRegistry& registry, std::ostream& out,
                     const std::string& prefix) {
  const MetricSnapshot snap = registry.Snapshot();
  std::string text;
  text.reserve(256 + 160 * (snap.counters.size() + snap.gauges.size() +
                            2 * snap.histograms.size()));
  for (const auto& c : snap.counters) {
    const std::string base = prefix + SanitizeMetricName(c.name);
    AppendHeader(text, base + "_total",
                 "counter", "Accumulated sum of registry counter " + c.name);
    AppendSample(text, base + "_total", c.value);
    AppendHeader(text, base + "_events_total", "counter",
                 "Number of Add() calls on registry counter " + c.name);
    AppendSample(text, base + "_events_total",
                 static_cast<double>(c.events));
  }
  for (const auto& g : snap.gauges) {
    const std::string base = prefix + SanitizeMetricName(g.name);
    AppendHeader(text, base, "gauge", "Registry gauge " + g.name);
    AppendSample(text, base, g.value);
  }
  for (const auto& h : snap.histograms) {
    const std::string base = prefix + SanitizeMetricName(h.name);
    AppendHeader(text, base, "summary", "Registry histogram " + h.name);
    AppendQuantileSample(text, base, "0.5", h.p50);
    AppendQuantileSample(text, base, "0.9", h.p90);
    AppendQuantileSample(text, base, "0.99", h.p99);
    AppendSample(text, base + "_sum", h.sum);
    AppendSample(text, base + "_count", static_cast<double>(h.count));
  }
  out << text;
}

}  // namespace threelc::obs
