// Cluster-wide telemetry aggregation for the distributed runtime.
//
// Workers ship one compact record per completed step over the wire (the
// TELEMETRY frame, rpc/frame.h); the server feeds those records plus its
// own barrier observations into one ClusterView. The view answers the
// questions a single process's /metricsz cannot: which worker is slow,
// why a step's barrier was long, and how compute / encode / network time
// is distributed across the fleet.
//
// Aggregation reuses StageProfiler's 64-bucket log2(ns) histogram layout
// (StageLog2Bucket / StageQuantileNs), so a per-worker histogram merged
// at the server is bit-identical to the histogram the worker would have
// built locally — merge exactness is unit-tested, not assumed.
//
// Straggler attribution: the server calls RecordBarrier after each step
// barrier with the last-arriving worker and the fleet's arrival spread.
// The worker's telemetry record for that step arrives after the barrier
// (it is sent once the step's pulls were applied); when it lands, the
// barrier wait is attributed to the record's dominant phase group —
// compute (forward_backward), encode (encode + decode), or network
// (push + pull_wait). Straggler flips (a different worker becoming the
// slowest) are recorded to the flight recorder so a post-hoc dump shows
// when cluster behavior changed.
//
// Thread-safety: all methods lock one mutex. Ingest runs on the server's
// event loop once per worker per step with a ~70-byte record — far off
// any hot path; the HTTP scrape thread pays for JSON/Prometheus assembly.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>

namespace threelc::obs {

class FlightRecorder;

// Phase groups a barrier wait can be attributed to.
enum class StragglerCause : std::uint8_t { kCompute = 0, kEncode, kNetwork };
const char* StragglerCauseName(StragglerCause cause);

// One worker's per-step telemetry record, as decoded from a TELEMETRY
// frame. Mirrors rpc::TelemetryPayload; duplicated here so obs/ stays
// independent of the wire layer (rpc/ depends on obs/, not vice versa).
struct WorkerStepRecord {
  std::uint64_t step = 0;
  std::uint64_t forward_backward_ns = 0;
  std::uint64_t encode_ns = 0;
  std::uint64_t push_ns = 0;
  std::uint64_t pull_wait_ns = 0;
  std::uint64_t decode_ns = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t bytes_in = 0;
  // First-stage (pre-block-codec) payload bytes; equal to bytes_out/in
  // when no second-stage block codec is negotiated.
  std::uint64_t stage1_bytes_out = 0;
  std::uint64_t stage1_bytes_in = 0;
  double ea_l2 = 0.0;
  std::uint32_t rejoins = 0;
};

class ClusterView {
 public:
  static constexpr int kPhases = 5;  // fb, encode, push, pull_wait, decode
  static constexpr int kHistogramBuckets = 64;
  // Barrier observations waiting for the straggler's telemetry record.
  // Bounded: a worker that never ships telemetry (old protocol, crashed
  // mid-step) must not grow this map forever.
  static constexpr std::size_t kMaxPendingBarriers = 64;

  // `flight` may be null; straggler flips are then only counted, not
  // recorded. The recorder must outlive the view.
  explicit ClusterView(FlightRecorder* flight = nullptr);

  // Feed one worker record. Duplicate or out-of-order records (step <=
  // the worker's last ingested step) are dropped — rejoin replay can
  // legitimately resend a step's record.
  void Ingest(int worker_id, const WorkerStepRecord& record);

  // Feed one barrier observation: `last_worker` was the last contributor
  // to complete step `step`, arriving `wait_ms` after the first.
  void RecordBarrier(std::uint64_t step, int last_worker, double wait_ms,
                     int contributors);

  // Drop a worker's state entirely (eviction). Its traffic and straggler
  // counts leave the per-worker families; fleet totals keep history, and
  // so do lease-expiry counts (the eviction's cause must stay visible
  // after the eviction removed the worker).
  void RemoveWorker(int worker_id);

  // Liveness (protocol v6 leases). RecordLiveness stamps "a frame from
  // this worker arrived now"; /clusterz reports the age of each worker's
  // stamp as last_heartbeat_age_ms. RecordLeaseExpiry counts a server-side
  // lease expiry against the worker — the signal that lets a run report
  // say "worker N (hung)" rather than just "worker N was slowest".
  void RecordLiveness(int worker_id);
  void RecordLeaseExpiry(int worker_id);
  std::uint64_t lease_expiries() const;

  // Uncompressed bytes a worker would move per step in each direction
  // (model size x 4 bytes); enables per-direction compression ratios.
  void SetRawBytesPerStep(std::uint64_t push_raw, std::uint64_t pull_raw);

  // Server checkpoint storage health, refreshed after every write attempt
  // and resume (see rpc::RpcServer). Surfaces on /clusterz as a
  // "storage" section; run_report.py renders it alongside the
  // checkpoint-stage latency from the step log.
  struct StorageHealth {
    std::uint64_t checkpoints = 0;      // successful generation writes
    std::uint64_t write_failures = 0;   // failed write attempts
    std::uint64_t fallbacks = 0;        // bad generations skipped on resume
    std::uint64_t generations = 0;      // generations currently on disk
    double last_write_ms = 0.0;         // latency of the last good write
    bool degraded = false;              // writes currently failing
  };
  void SetStorageHealth(const StorageHealth& health);

  // The /clusterz payload: per-worker phase quantiles, traffic, straggler
  // attribution, fleet-wide merged view.
  std::string ToJson() const;

  // threelc_cluster_* families appended to the /metricsz exposition.
  // HELP/TYPE once per family; one labeled sample per worker (and per
  // phase/cause where applicable).
  void WritePrometheus(std::ostream& out,
                       const std::string& prefix = "threelc_") const;

  std::size_t worker_count() const;
  std::uint64_t straggler_flips() const;
  int current_straggler() const;

 private:
  struct PhaseHist {
    std::uint64_t hist[kHistogramBuckets] = {};
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    void Add(std::uint64_t ns);
    void MergeInto(PhaseHist& into) const;
  };

  struct WorkerState {
    std::int64_t last_step = -1;
    std::uint64_t records = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t stage1_bytes_out = 0;
    std::uint64_t stage1_bytes_in = 0;
    double ea_l2 = 0.0;       // latest
    std::uint32_t rejoins = 0;  // latest
    PhaseHist phases[kPhases];
    std::uint64_t straggler_steps = 0;
    std::uint64_t cause_counts[3] = {};  // indexed by StragglerCause
    double barrier_wait_ms_sum = 0.0;
  };

  struct PendingBarrier {
    int last_worker = -1;
    double wait_ms = 0.0;
    int contributors = 0;
  };

  void AppendWorkerJson(std::string& out, int id,
                        const WorkerState& w) const;

  FlightRecorder* const flight_;
  mutable std::mutex mu_;
  std::map<int, WorkerState> workers_;
  // Liveness stamps leave with the worker (RemoveWorker); lease-expiry
  // counts outlive it.
  std::map<int, std::chrono::steady_clock::time_point> last_seen_;
  std::map<int, std::uint64_t> lease_expiries_by_worker_;
  std::map<std::uint64_t, PendingBarrier> pending_barriers_;
  std::uint64_t barriers_observed_ = 0;
  int current_straggler_ = -1;
  std::uint64_t straggler_flips_ = 0;
  std::uint64_t raw_push_bytes_per_step_ = 0;
  std::uint64_t raw_pull_bytes_per_step_ = 0;
  // Present in /clusterz only once the server reported it (old snapshots
  // and worker-side views carry no "storage" section).
  bool have_storage_ = false;
  StorageHealth storage_;
};

}  // namespace threelc::obs
