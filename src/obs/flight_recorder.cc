#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <ostream>

#include "obs/health.h"
#include "obs/telemetry.h"
#include "util/logging.h"

namespace threelc::obs {

namespace {

std::atomic<FlightRecorder*> g_signal_recorder{nullptr};

void FlightRecorderSignalHandler(int sig) {
  // Async-signal-safe path only: no allocation, no locks, no stdio. Every
  // ring entry was serialized at record time; this just writes bytes.
  FlightRecorder* recorder =
      g_signal_recorder.load(std::memory_order_acquire);
  if (recorder != nullptr) {
    const int fd = ::open(recorder->dump_path().c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      recorder->DumpToFd(fd);
      ::close(fd);
    }
  }
  // SA_RESETHAND restored the default disposition, so the re-raise kills
  // the process with the original signal (core dump, WIFSIGNALED, etc.).
  ::raise(sig);
}

void WriteAll(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) return;  // best effort; nowhere to report from a handler
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

}  // namespace

FlightRecorder::FlightRecorder(std::string dump_path, std::size_t capacity)
    : dump_path_(std::move(dump_path)),
      capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity_]) {}

FlightRecorder::~FlightRecorder() {
  FlightRecorder* self = this;
  g_signal_recorder.compare_exchange_strong(self, nullptr);
}

void FlightRecorder::InstallSignalHandlers(FlightRecorder* recorder) {
  g_signal_recorder.store(recorder, std::memory_order_release);
  if (recorder == nullptr) return;
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &FlightRecorderSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESETHAND;
  ::sigaction(SIGSEGV, &action, nullptr);
  ::sigaction(SIGABRT, &action, nullptr);
}

void FlightRecorder::Append(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t index = next_.load(std::memory_order_relaxed);
  Slot& slot = slots_[index % capacity_];
  const std::size_t len = std::min(line.size(), kSlotBytes);
  // Empty the slot first so a signal arriving mid-copy sees no entry
  // rather than a torn one, then publish the length last.
  slot.len.store(0, std::memory_order_release);
  std::memcpy(slot.data, line.data(), len);
  slot.len.store(static_cast<std::uint32_t>(len), std::memory_order_release);
  next_.store(index + 1, std::memory_order_release);
}

void FlightRecorder::RecordStep(const StepTelemetry& step) {
  std::string line = Telemetry::StepToJson(step);
  if (line.size() > kSlotBytes) {
    // Per-tensor detail is what blows the slot budget; the compact form
    // (loss, traffic, phases) is bounded and always fits.
    StepTelemetry compact = step;
    compact.tensors.clear();
    line = Telemetry::StepToJson(compact);
  }
  Append(line);
}

void FlightRecorder::RecordEvent(const HealthEvent& event) {
  if (event.message.size() > 1024) {
    HealthEvent clipped = event;
    clipped.message.resize(1024);
    Append(clipped.ToJson());
    return;
  }
  Append(event.ToJson());
}

std::size_t FlightRecorder::size() const {
  return std::min(next_.load(std::memory_order_acquire), capacity_);
}

void FlightRecorder::DumpToFd(int fd) const {
  const std::size_t total = next_.load(std::memory_order_acquire);
  const std::size_t start = total > capacity_ ? total - capacity_ : 0;
  for (std::size_t i = start; i < total; ++i) {
    const Slot& slot = slots_[i % capacity_];
    const std::uint32_t len = slot.len.load(std::memory_order_acquire);
    if (len == 0 || len > kSlotBytes) continue;
    WriteAll(fd, slot.data, len);
    WriteAll(fd, "\n", 1);
  }
}

void FlightRecorder::DumpTo(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t total = next_.load(std::memory_order_acquire);
  const std::size_t start = total > capacity_ ? total - capacity_ : 0;
  for (std::size_t i = start; i < total; ++i) {
    const Slot& slot = slots_[i % capacity_];
    const std::uint32_t len = slot.len.load(std::memory_order_acquire);
    if (len == 0 || len > kSlotBytes) continue;
    out.write(slot.data, static_cast<std::streamsize>(len));
    out.put('\n');
  }
}

bool FlightRecorder::Dump() const {
  std::ofstream out(dump_path_, std::ios::trunc);
  if (!out) {
    THREELC_LOG(Warn) << "flight recorder: cannot open dump path "
                      << dump_path_;
    return false;
  }
  DumpTo(out);
  THREELC_LOG(Info) << "flight recorder: dumped " << size()
                    << " records to " << dump_path_;
  return out.good();
}

std::string FlightRecorder::ToJsonArray() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t total = next_.load(std::memory_order_acquire);
  const std::size_t start = total > capacity_ ? total - capacity_ : 0;
  std::string out = "[";
  bool first = true;
  for (std::size_t i = start; i < total; ++i) {
    const Slot& slot = slots_[i % capacity_];
    const std::uint32_t len = slot.len.load(std::memory_order_acquire);
    if (len == 0 || len > kSlotBytes) continue;
    if (!first) out += ",";
    first = false;
    out.append(slot.data, len);
  }
  out += "]";
  return out;
}

}  // namespace threelc::obs
