#include "obs/trace.h"

#include <ostream>

#include "obs/json.h"

namespace threelc::obs {

void Tracer::SetTrackName(int track, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  track_names_[track] = std::move(name);
}

void Tracer::RecordSpan(std::string name, int track, double ts_us,
                        double dur_us, std::int64_t step) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back({std::move(name), track, ts_us, dur_us, step});
}

void Tracer::RecordCounter(std::string name, int track, double ts_us,
                           double value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  counters_.push_back({std::move(name), track, ts_us, value});
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void Tracer::WriteChromeTrace(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string buf;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };
  sep();
  out << R"({"name":"process_name","ph":"M","pid":0,"tid":0,)"
      << R"("args":{"name":"threelc"}})";
  for (const auto& [track, name] : track_names_) {
    buf.clear();
    buf += R"({"name":"thread_name","ph":"M","pid":0,"tid":)";
    AppendJsonNumber(buf, static_cast<std::int64_t>(track));
    buf += ",\"args\":{\"name\":";
    AppendJsonEscaped(buf, name);
    buf += "}}";
    sep();
    out << buf;
  }
  for (const auto& e : events_) {
    buf.clear();
    buf += "{\"name\":";
    AppendJsonEscaped(buf, e.name);
    buf += R"(,"cat":"train","ph":"X","pid":0,"tid":)";
    AppendJsonNumber(buf, static_cast<std::int64_t>(e.track));
    buf += ",\"ts\":";
    AppendJsonNumber(buf, e.ts_us);
    buf += ",\"dur\":";
    AppendJsonNumber(buf, e.dur_us);
    if (e.step >= 0) {
      buf += ",\"args\":{\"step\":";
      AppendJsonNumber(buf, e.step);
      buf += "}";
    }
    buf += "}";
    sep();
    out << buf;
  }
  for (const auto& c : counters_) {
    buf.clear();
    buf += "{\"name\":";
    AppendJsonEscaped(buf, c.name);
    buf += R"(,"cat":"train","ph":"C","pid":0,"tid":)";
    AppendJsonNumber(buf, static_cast<std::int64_t>(c.track));
    buf += ",\"ts\":";
    AppendJsonNumber(buf, c.ts_us);
    buf += ",\"args\":{\"value\":";
    AppendJsonNumber(buf, c.value);
    buf += "}}";
    sep();
    out << buf;
  }
  out << "\n]}\n";
}

}  // namespace threelc::obs
