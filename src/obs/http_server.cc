#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/logging.h"

namespace threelc::obs {

namespace {

void SendAll(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

const char* HttpServer::StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string HttpServer::FormatResponse(const HttpResponse& response,
                                       bool include_body) {
  std::string out;
  out.reserve(128 + (include_body ? response.body.size() : 0));
  out += "HTTP/1.1 " + std::to_string(response.status) + " ";
  out += StatusText(response.status);
  out += "\r\nContent-Type: " + response.content_type;
  out += "\r\nContent-Length: " + std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  if (include_body) out += response.body;
  return out;
}

bool HttpServer::ParseRequestLine(const std::string& line,
                                  std::string* method, std::string* path) {
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) return false;
  if (line.find(' ', sp2 + 1) != std::string::npos) return false;
  const std::string version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/", 0) != 0) return false;
  *method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return false;
  const std::size_t query = target.find('?');
  if (query != std::string::npos) target.resize(query);
  *path = std::move(target);
  return true;
}

std::string HttpServer::ResponseFor(const std::string& request_head) const {
  const std::size_t eol = request_head.find("\r\n");
  const std::string line =
      eol == std::string::npos ? request_head : request_head.substr(0, eol);
  std::string method, path;
  if (!ParseRequestLine(line, &method, &path)) {
    return FormatResponse({400, "text/plain; charset=utf-8", "bad request\n"},
                          true);
  }
  if (method != "GET" && method != "HEAD") {
    return FormatResponse(
        {405, "text/plain; charset=utf-8", "only GET is supported\n"}, true);
  }
  const auto it = handlers_.find(path);
  if (it == handlers_.end()) {
    return FormatResponse(
        {404, "text/plain; charset=utf-8", "unknown path " + path + "\n"},
        true);
  }
  return FormatResponse(it->second(), /*include_body=*/method == "GET");
}

HttpServer::HttpServer() = default;

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(std::string path, HttpHandler handler) {
  THREELC_CHECK_MSG(!running(), "register handlers before Start()");
  handlers_[std::move(path)] = std::move(handler);
}

bool HttpServer::Start(int port) {
  THREELC_CHECK_MSG(!running(), "HttpServer already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  if (::pipe(wake_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(kWorkerThreads);
  for (int i = 0; i < kWorkerThreads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  THREELC_LOG(Info) << "monitoring: http server listening on port " << port_;
  return true;
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Wake the accept thread's poll and the workers' condition wait.
  const char byte = 'x';
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (const int fd : pending_) ::close(fd);
    pending_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void HttpServer::AcceptLoop() {
  while (running()) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (!running()) return;
    if (!(fds[0].revents & POLLIN)) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Slow or dead clients must not pin a worker forever.
    timeval timeout{5, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    bool queued = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (pending_.size() < kMaxQueuedConnections) {
        pending_.push_back(fd);
        queued = true;
      }
    }
    if (queued) {
      queue_cv_.notify_one();
    } else {
      SendAll(fd, FormatResponse(
                      {503, "text/plain; charset=utf-8", "overloaded\n"},
                      true));
      ::close(fd);
    }
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return !pending_.empty() || !running(); });
      if (pending_.empty()) return;  // stopping
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  // Read until the end of the header block, a size cap, or a timeout.
  // Requests may trickle in across many reads (curl over loopback usually
  // one, a test deliberately byte-by-byte).
  std::string request;
  bool complete = false;
  while (request.size() < kMaxRequestBytes) {
    char buf[1024];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // peer closed or timed out
    request.append(buf, static_cast<std::size_t>(n));
    if (request.find("\r\n\r\n") != std::string::npos ||
        request.find("\n\n") != std::string::npos) {
      complete = true;
      break;
    }
  }
  if (!complete) {
    const int status =
        request.size() >= kMaxRequestBytes ? 431 : 400;
    SendAll(fd, FormatResponse({status, "text/plain; charset=utf-8",
                                std::string(StatusText(status)) + "\n"},
                               true));
  } else {
    SendAll(fd, ResponseFor(request));
  }
  ::close(fd);
}

}  // namespace threelc::obs
