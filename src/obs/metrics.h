// Metrics registry: named counters, gauges, and histograms cheap enough
// for per-tensor hot paths.
//
// Design rules:
//  - Compiled in everywhere, disabled by default. A disabled metric costs
//    one relaxed atomic load and a predictable branch — no allocation, no
//    locking (bench_kernels measures this as BM_MetricsCounterDisabled).
//  - Handles returned by counter()/gauge()/histogram() are stable for the
//    registry's lifetime; call sites look them up once and keep the pointer.
//  - Counters and gauges are lock-free so worker threads on the pool can
//    record concurrently; histograms take a mutex (per-phase cadence, not
//    per-value hot paths).
//  - Registries merge by metric name (Merge), so per-thread registries can
//    be folded into one before export.
//  - Exporters: JSONL (one metric object per line) and CSV.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.h"

namespace threelc::obs {

namespace internal {
// C++20 has std::atomic<double>::fetch_add but not every deployed libstdc++
// inlines it well; a relaxed CAS loop is portable and equally fast here.
inline void AtomicAdd(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
}
}  // namespace internal

class MetricsRegistry;

// Monotonically increasing sum (bytes, events, seconds).
class Counter {
 public:
  void Add(double v = 1.0) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    internal::AtomicAdd(sum_, v);
    events_.fetch_add(1, std::memory_order_relaxed);
  }
  double value() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t events() const {
    return events_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> events_{0};
};

// Last-written value (loss, learning rate, queue depth).
class Gauge {
 public:
  void Set(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
    set_.store(true, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  bool set() const { return set_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
  std::atomic<bool> set_{false};
};

// Distribution: RunningStat moments plus fixed bins for quantiles.
class HistogramStat {
 public:
  void Add(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    std::lock_guard<std::mutex> lock(mu_);
    stat_.Add(v);
    bins_.Add(v);
  }
  util::RunningStat stat() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stat_;
  }
  double Quantile(double q) const {
    std::lock_guard<std::mutex> lock(mu_);
    return bins_.Quantile(q);
  }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t num_bins() const { return num_bins_; }

 private:
  friend class MetricsRegistry;
  HistogramStat(const std::atomic<bool>* enabled, double lo, double hi,
                std::size_t bins)
      : enabled_(enabled), lo_(lo), hi_(hi), num_bins_(bins),
        bins_(lo, hi, bins) {}
  void MergeFrom(const HistogramStat& other);

  const std::atomic<bool>* enabled_;
  double lo_, hi_;
  std::size_t num_bins_;
  mutable std::mutex mu_;
  util::RunningStat stat_;
  util::Histogram bins_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-wide registry for call sites without an obvious owner.
  static MetricsRegistry& Global();

  void set_enabled(bool enabled) { enabled_.store(enabled); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Find-or-create by name. Pointers remain valid for the registry's
  // lifetime; re-registering a histogram with different bounds keeps the
  // original bounds.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  HistogramStat* histogram(const std::string& name, double lo, double hi,
                           std::size_t bins);

  // Fold `other`'s metrics into this registry, matching by name and
  // creating missing metrics. Counters add, gauges take other's value if
  // it was ever set, histograms merge moments and bin counts.
  void Merge(const MetricsRegistry& other);

  // One JSON object per line:
  //   {"metric":"traffic/push_bytes","type":"counter","value":..,"events":..}
  void WriteJsonl(std::ostream& out) const;
  // metric,type,value,events,mean,stddev,min,max,p50,p99
  void WriteCsv(std::ostream& out) const;
  // All metrics as one JSON object (embedded in the step log's summary).
  std::string ToJsonObject() const;

  std::size_t metric_count() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards the maps; metric values self-synchronize
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramStat>> histograms_;
};

}  // namespace threelc::obs
