// Metrics registry: named counters, gauges, and histograms cheap enough
// for per-tensor hot paths.
//
// Design rules:
//  - Compiled in everywhere, disabled by default. A disabled metric costs
//    one relaxed atomic load and a predictable branch — no allocation, no
//    locking (bench_kernels measures this as BM_MetricsCounterDisabled).
//  - Handles returned by counter()/gauge()/histogram() are stable for the
//    registry's lifetime; call sites look them up once and keep the pointer.
//  - Counters and gauges are lock-free so worker threads on the pool can
//    record concurrently; histograms take a mutex (per-phase cadence, not
//    per-value hot paths).
//  - Registries merge by metric name (Merge), so per-thread registries can
//    be folded into one before export.
//  - Exporters: JSONL (one metric object per line) and CSV.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.h"

namespace threelc::obs {

class MetricsRegistry;

// Monotonically increasing sum (bytes, events, seconds).
//
// `sum_` and `events_` always move together, and exporters must never see
// one without the other (a value/events pair torn mid-Add misreports the
// per-event average). A seqlock guards the pair: writers serialize on the
// odd/even sequence word, readers retry while a write is in flight. The
// disabled fast path is unchanged — one relaxed load and a branch.
class Counter {
 public:
  struct Snapshot {
    double value = 0.0;
    std::uint64_t events = 0;
  };

  void Add(double v = 1.0) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    AddSample(v, 1);
  }

  // Consistent (value, events) pair: both sides of the same set of
  // completed Add() calls.
  Snapshot Read() const {
    for (;;) {
      const std::uint64_t before = seq_.load(std::memory_order_acquire);
      if (before & 1u) continue;  // writer in flight
      Snapshot snap{sum_.load(std::memory_order_relaxed),
                    events_.load(std::memory_order_relaxed)};
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == before) return snap;
    }
  }

  double value() const { return Read().value; }
  std::uint64_t events() const { return Read().events; }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void AddSample(double v, std::uint64_t n) {
    std::uint64_t s = seq_.load(std::memory_order_relaxed);
    for (;;) {
      while (s & 1u) s = seq_.load(std::memory_order_relaxed);
      if (seq_.compare_exchange_weak(s, s + 1, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
        break;
      }
    }
    // Exclusive writer between the odd and even sequence stores; the pair
    // stays atomic<> only so concurrent readers are race-free.
    sum_.store(sum_.load(std::memory_order_relaxed) + v,
               std::memory_order_relaxed);
    events_.store(events_.load(std::memory_order_relaxed) + n,
                  std::memory_order_relaxed);
    seq_.store(s + 2, std::memory_order_release);
  }

  const std::atomic<bool>* enabled_;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> events_{0};
};

// Last-written value (loss, learning rate, queue depth).
class Gauge {
 public:
  void Set(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
    set_.store(true, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  bool set() const { return set_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
  std::atomic<bool> set_{false};
};

// Distribution: RunningStat moments plus fixed bins for quantiles.
class HistogramStat {
 public:
  void Add(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    std::lock_guard<std::mutex> lock(mu_);
    stat_.Add(v);
    bins_.Add(v);
  }
  util::RunningStat stat() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stat_;
  }
  double Quantile(double q) const {
    std::lock_guard<std::mutex> lock(mu_);
    return bins_.Quantile(q);
  }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t num_bins() const { return num_bins_; }

 private:
  friend class MetricsRegistry;
  HistogramStat(const std::atomic<bool>* enabled, double lo, double hi,
                std::size_t bins)
      : enabled_(enabled), lo_(lo), hi_(hi), num_bins_(bins),
        bins_(lo, hi, bins) {}
  void MergeFrom(const HistogramStat& other);

  const std::atomic<bool>* enabled_;
  double lo_, hi_;
  std::size_t num_bins_;
  mutable std::mutex mu_;
  util::RunningStat stat_;
  util::Histogram bins_;
};

// Point-in-time copy of every registered metric, safe to format outside
// the registry lock. Counters come through Counter::Read(), so the
// (value, events) pairs are internally consistent.
struct MetricSnapshot {
  struct CounterSample {
    std::string name;
    double value = 0.0;
    std::uint64_t events = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
    bool set = false;
  };
  struct HistogramSample {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-wide registry for call sites without an obvious owner.
  static MetricsRegistry& Global();

  void set_enabled(bool enabled) { enabled_.store(enabled); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Find-or-create by name. Pointers remain valid for the registry's
  // lifetime; re-registering a histogram with different bounds keeps the
  // original bounds.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  HistogramStat* histogram(const std::string& name, double lo, double hi,
                           std::size_t bins);

  // Record a pre-aggregated batch on counter `name` in one consistent
  // write: value += v, events += n. Used by exporters that fold an
  // external accumulator (e.g. StageProfiler) into the registry without
  // replaying every sample. Respects the enabled flag like Add().
  void AddCounterBatch(const std::string& name, double v, std::uint64_t n);

  // Fold `other`'s metrics into this registry, matching by name and
  // creating missing metrics. Counters add, gauges take other's value if
  // it was ever set, histograms merge moments and bin counts.
  void Merge(const MetricsRegistry& other);

  // Copy every metric out for export (Prometheus exposition, /statusz).
  MetricSnapshot Snapshot() const;

  // One JSON object per line:
  //   {"metric":"traffic/push_bytes","type":"counter","value":..,"events":..}
  void WriteJsonl(std::ostream& out) const;
  // metric,type,value,events,mean,stddev,min,max,p50,p99
  void WriteCsv(std::ostream& out) const;
  // All metrics as one JSON object (embedded in the step log's summary).
  std::string ToJsonObject() const;

  std::size_t metric_count() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards the maps; metric values self-synchronize
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramStat>> histograms_;
};

}  // namespace threelc::obs
