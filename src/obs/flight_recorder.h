// Anomaly flight recorder: a fixed-size ring of the most recent training
// step records and health events, pre-serialized to JSON at record time so
// a crashed run can still dump its last ~256 steps.
//
// Dump triggers:
//   - any error-severity HealthEvent (Telemetry wires the monitor callback
//     to RecordEvent + Dump),
//   - SIGSEGV / SIGABRT via InstallSignalHandlers — the handler walks the
//     ring with only async-signal-safe calls (open/write/close) because
//     every entry was serialized when it was recorded, not at dump time,
//   - on demand (Dump, called from Telemetry::Flush).
//
// Ring entries are fixed-size slots with an atomic length word. A recorder
// thread writes slot bytes first and publishes the length last (release),
// so the signal handler — which may interrupt a write on the same thread —
// sees either a complete entry or an empty slot, never a torn line. Step
// records that do not fit a slot are re-serialized without the per-tensor
// array, which always fits; lines in a dump are therefore always valid
// JSON.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>

namespace threelc::obs {

struct HealthEvent;
struct StepTelemetry;

class FlightRecorder {
 public:
  static constexpr std::size_t kSlotBytes = 2048;
  static constexpr std::size_t kDefaultCapacity = 256;

  // `dump_path` is where Dump() and the signal handler write the ring as
  // JSONL. The file is only created when a dump actually happens.
  explicit FlightRecorder(std::string dump_path,
                          std::size_t capacity = kDefaultCapacity);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Serialize and append one record. Thread-safe.
  void RecordStep(const StepTelemetry& step);
  void RecordEvent(const HealthEvent& event);

  // Write the ring, oldest first, one JSON object per line. Returns false
  // when the dump path cannot be opened.
  bool Dump() const;
  void DumpTo(std::ostream& out) const;

  // The ring as a JSON array (the /flightz payload).
  std::string ToJsonArray() const;

  // Route SIGSEGV and SIGABRT through `recorder` (pass nullptr to detach).
  // The handler dumps to dump_path and then re-raises with the default
  // disposition, so the process still dies with the original signal.
  static void InstallSignalHandlers(FlightRecorder* recorder);

  // Async-signal-safe ring dump using only write(2). Public so the signal
  // handler (and tests) can call it on an already-open descriptor.
  void DumpToFd(int fd) const;

  const std::string& dump_path() const { return dump_path_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;  // occupied slots

 private:
  struct Slot {
    std::atomic<std::uint32_t> len{0};
    char data[kSlotBytes];
  };

  void Append(const std::string& line);

  const std::string dump_path_;
  const std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  mutable std::mutex mu_;          // serializes writers; readers use len
  std::atomic<std::size_t> next_{0};   // total records ever appended
};

}  // namespace threelc::obs
