#include "obs/health.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "util/logging.h"

namespace threelc::obs {

const char* HealthSeverityName(HealthSeverity severity) {
  return severity == HealthSeverity::kError ? "error" : "warn";
}

const char* RuntimeStateName(RuntimeState state) {
  switch (state) {
    case RuntimeState::kHealthy: return "healthy";
    case RuntimeState::kDegraded: return "degraded";
    case RuntimeState::kFailed: return "failed";
  }
  return "unknown";
}

std::string HealthEvent::ToJson() const {
  std::string out;
  out.reserve(128 + message.size());
  out += "{\"type\":\"health_event\",\"severity\":\"";
  out += HealthSeverityName(severity);
  out += "\",\"detector\":";
  AppendJsonEscaped(out, detector);
  out += ",\"step\":";
  AppendJsonNumber(out, static_cast<std::int64_t>(step));
  out += ",\"seconds\":";
  AppendJsonNumber(out, seconds);
  out += ",\"message\":";
  AppendJsonEscaped(out, message);
  out += "}";
  return out;
}

HealthMonitor::HealthMonitor(HealthMonitorOptions options,
                             MetricsRegistry* metrics)
    : options_(options), metrics_(metrics) {}

void HealthMonitor::SetEventCallback(
    std::function<void(const HealthEvent&)> callback) {
  callback_ = std::move(callback);
}

void HealthMonitor::SetClockForTest(std::function<double()> clock) {
  clock_ = std::move(clock);
}

double HealthMonitor::Now() const {
  if (clock_) return clock_();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double HealthMonitor::Median(std::deque<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  return values.size() % 2 ? values[mid]
                           : 0.5 * (values[mid - 1] + values[mid]);
}

void HealthMonitor::Fire(std::vector<HealthEvent>& fired,
                         HealthSeverity severity, const char* detector,
                         std::int64_t step, std::string message) {
  HealthEvent event;
  event.severity = severity;
  event.detector = detector;
  event.step = step;
  event.seconds = Now();
  event.message = std::move(message);
  if (severity == HealthSeverity::kError) has_error_ = true;
  events_.push_back(event);
  while (events_.size() > options_.max_events) events_.pop_front();
  fired.push_back(std::move(event));
}

void HealthMonitor::Dispatch(const std::vector<HealthEvent>& fired) {
  for (const HealthEvent& event : fired) {
    if (event.severity == HealthSeverity::kError) {
      THREELC_LOG(Error) << "health: [" << event.detector << "] step "
                         << event.step << ": " << event.message;
    } else {
      THREELC_LOG(Warn) << "health: [" << event.detector << "] step "
                        << event.step << ": " << event.message;
    }
    if (metrics_ != nullptr) {
      metrics_->counter("health/" + event.detector)->Add(1.0);
    }
    if (callback_) callback_(event);
  }
  if (metrics_ != nullptr && !fired.empty()) {
    bool ok;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ok = !has_error_ && !stalled_;
    }
    metrics_->gauge("health/healthy")->Set(ok ? 1.0 : 0.0);
  }
}

void HealthMonitor::CheckResiduals(const StepTelemetry& step,
                                   std::vector<HealthEvent>& fired) {
  for (const TensorStepTelemetry& t : step.tensors) {
    for (const bool push : {true, false}) {
      const double l2 = push ? t.push_residual_l2 : t.pull_residual_l2;
      if (l2 < 0.0) continue;  // codec has no error-accumulation buffer
      const char* direction = push ? "push" : "pull";
      if (!std::isfinite(l2)) {
        Fire(fired, HealthSeverity::kError, "nonfinite_residual", step.step,
             "non-finite " + std::string(direction) + " residual L2 on " +
                 t.name);
        continue;
      }
      ResidualTrack& track =
          (push ? push_residuals_ : pull_residuals_)[t.name];
      if (track.baseline_samples.size() < options_.residual_baseline_steps) {
        track.baseline_samples.push_back(l2);
        if (track.baseline_samples.size() ==
            options_.residual_baseline_steps) {
          std::vector<double> sorted = track.baseline_samples;
          std::sort(sorted.begin(), sorted.end());
          track.baseline = sorted[sorted.size() / 2];
        }
        continue;
      }
      if (track.baseline <= 0.0) continue;
      const double ratio = l2 / track.baseline;
      if (!track.latched && ratio > options_.residual_growth_factor) {
        track.latched = true;
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s residual L2 of %s grew %.1fx over its baseline "
                      "%.3g (now %.3g)",
                      direction, t.name.c_str(), ratio, track.baseline, l2);
        Fire(fired, HealthSeverity::kWarn, "residual_growth", step.step, buf);
      } else if (track.latched &&
                 ratio < 0.5 * options_.residual_growth_factor) {
        track.latched = false;  // re-arm once clearly back below threshold
      }
    }
  }
}

void HealthMonitor::ObserveStep(const StepTelemetry& step) {
  std::vector<HealthEvent> fired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const double now = Now();
    ++steps_seen_;
    stalled_ = false;  // a step arrived; the run is moving again

    // --- nonfinite_loss
    if (!std::isfinite(step.loss)) {
      Fire(fired, HealthSeverity::kError, "nonfinite_loss", step.step,
           "training loss is non-finite (NaN/Inf)");
    } else {
      // --- loss_explosion, against the trailing median of finite losses.
      if (steps_seen_ > options_.warmup_steps && !recent_losses_.empty()) {
        const double median = Median(recent_losses_);
        if (median > 0.0 &&
            step.loss > options_.loss_explosion_factor * median) {
          char buf[128];
          std::snprintf(buf, sizeof(buf),
                        "loss %.4g exceeds %.0fx the trailing median %.4g",
                        step.loss, options_.loss_explosion_factor, median);
          Fire(fired, HealthSeverity::kError, "loss_explosion", step.step,
               buf);
        }
      }
      recent_losses_.push_back(step.loss);
      while (recent_losses_.size() > options_.trailing_window) {
        recent_losses_.pop_front();
      }

      // --- loss_plateau
      if (!best_loss_set_ ||
          step.loss <
              best_loss_ - options_.plateau_min_delta * std::fabs(best_loss_)) {
        best_loss_ = step.loss;
        best_loss_set_ = true;
        best_loss_step_ = step.step;
        plateau_latched_ = false;
      } else if (options_.plateau_window > 0 && !plateau_latched_ &&
                 step.step - best_loss_step_ >= options_.plateau_window) {
        plateau_latched_ = true;
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "loss has not improved on %.4g for %lld steps",
                      best_loss_,
                      static_cast<long long>(step.step - best_loss_step_));
        Fire(fired, HealthSeverity::kWarn, "loss_plateau", step.step, buf);
      }
    }

    CheckResiduals(step, fired);

    // --- step-rate bookkeeping for the stall detector.
    if (last_step_seconds_ >= 0.0) {
      recent_intervals_.push_back(now - last_step_seconds_);
      while (recent_intervals_.size() > options_.trailing_window) {
        recent_intervals_.pop_front();
      }
    }
    last_step_seconds_ = now;

    last_step_ = step.step;
    last_loss_ = step.loss;
    last_lr_ = step.lr;
    last_push_bpv_ = step.push_bits_per_value;
    last_pull_bpv_ = step.pull_bits_per_value;
    last_contributors_ = step.contributors;
    last_residuals_.clear();
    for (const TensorStepTelemetry& t : step.tensors) {
      if (t.push_residual_l2 >= 0.0 || t.pull_residual_l2 >= 0.0) {
        last_residuals_.emplace_back(
            t.name, std::make_pair(t.push_residual_l2, t.pull_residual_l2));
      }
    }
  }
  Dispatch(fired);
}

bool HealthMonitor::CheckStall() {
  std::vector<HealthEvent> fired;
  bool stalled;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (last_step_seconds_ < 0.0 || recent_intervals_.empty()) {
      return false;  // not enough signal yet
    }
    const double median = Median(recent_intervals_);
    const double limit =
        std::max(options_.stall_factor * median, options_.min_stall_seconds);
    const double silent = Now() - last_step_seconds_;
    if (silent > limit) {
      if (!stalled_) {
        stalled_ = true;
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "no step for %.1fs (median inter-step %.3fs, limit "
                      "%.1fs)",
                      silent, median, limit);
        Fire(fired, HealthSeverity::kWarn, "step_stall", last_step_, buf);
      }
    } else {
      stalled_ = false;
    }
    stalled = stalled_;
  }
  Dispatch(fired);
  return stalled;
}

bool HealthMonitor::healthy() {
  CheckStall();
  std::lock_guard<std::mutex> lock(mu_);
  return !has_error_ && !stalled_;
}

std::vector<HealthEvent> HealthMonitor::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {events_.begin(), events_.end()};
}

std::size_t HealthMonitor::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void HealthMonitor::SetRuntimeState(RuntimeState state,
                                    const std::string& reason) {
  std::vector<HealthEvent> fired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state == runtime_state_) return;
    runtime_state_ = state;
    Fire(fired,
         state == RuntimeState::kFailed ? HealthSeverity::kError
                                        : HealthSeverity::kWarn,
         "runtime_state", last_step_,
         std::string("runtime state -> ") + RuntimeStateName(state) +
             (reason.empty() ? "" : ": " + reason));
  }
  if (metrics_ != nullptr) {
    metrics_->gauge("health/runtime_state")
        ->Set(static_cast<double>(static_cast<int>(state)));
  }
  Dispatch(fired);
}

RuntimeState HealthMonitor::runtime_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runtime_state_;
}

std::string HealthMonitor::StatusJson(double uptime_seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(256 + last_residuals_.size() * 96);
  out += "{\"step\":";
  AppendJsonNumber(out, static_cast<std::int64_t>(last_step_));
  out += ",\"loss\":";
  AppendJsonNumber(out, last_loss_);
  out += ",\"lr\":";
  AppendJsonNumber(out, last_lr_);
  out += ",\"push_bits_per_value\":";
  AppendJsonNumber(out, last_push_bpv_);
  out += ",\"pull_bits_per_value\":";
  AppendJsonNumber(out, last_pull_bpv_);
  out += ",\"contributors\":";
  AppendJsonNumber(out, static_cast<std::int64_t>(last_contributors_));
  out += ",\"uptime_seconds\":";
  AppendJsonNumber(out, uptime_seconds);
  out += ",\"healthy\":";
  out += (!has_error_ && !stalled_) ? "true" : "false";
  out += ",\"state\":\"";
  out += RuntimeStateName(runtime_state_);
  out += "\",\"events\":";
  AppendJsonNumber(out, static_cast<std::uint64_t>(events_.size()));
  out += ",\"tensors\":[";
  bool first = true;
  for (const auto& [name, l2] : last_residuals_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    AppendJsonEscaped(out, name);
    if (l2.first >= 0.0 || !std::isfinite(l2.first)) {
      out += ",\"push_residual_l2\":";
      AppendJsonNumber(out, l2.first);
    }
    if (l2.second >= 0.0 || !std::isfinite(l2.second)) {
      out += ",\"pull_residual_l2\":";
      AppendJsonNumber(out, l2.second);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace threelc::obs
