// Training health watchdog.
//
// HealthMonitor consumes the per-step StepTelemetry stream (fed from
// DistributedTrainer::EmitStepTelemetry via Telemetry::LogStep) and runs
// four detectors over it, each motivated by a known failure mode of lossy
// 3-value quantization with error feedback:
//
//   nonfinite_loss    training loss went NaN/Inf                  (error)
//   nonfinite_residual  a residual L2 went NaN/Inf                (error)
//   loss_explosion    loss blew past factor x trailing median     (error)
//   residual_growth   an error-accumulation buffer's L2 grew past
//                     factor x its early-training baseline — the
//                     compounding-quantization-error signature     (warn)
//   loss_plateau      no loss improvement for a whole window      (warn)
//   step_stall        no step within factor x trailing median
//                     inter-step time (checked on demand, e.g. on
//                     every /healthz scrape)                       (warn)
//
// Each firing produces a structured HealthEvent, logs at warn/error,
// increments "health/<detector>" in the attached registry, and reaches the
// event callback (Telemetry wires that to the flight recorder). healthy()
// is false while stalled or after any error-severity event — that is what
// /healthz serves as 200 vs 503.
//
// Thread safety: ObserveStep is called by the training thread; CheckStall,
// healthy, events, and StatusJson by HTTP handler threads. One mutex
// covers all state; the event callback is invoked outside the lock.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace threelc::obs {

class MetricsRegistry;
struct StepTelemetry;

enum class HealthSeverity { kWarn, kError };

const char* HealthSeverityName(HealthSeverity severity);

// Distributed-membership state reported by the runtime. kDegraded means the
// run continues on a reduced worker set after an eviction — operationally
// alive but no longer the configured fleet; kFailed is a fatal runtime
// fault. /healthz serves healthy as 200 "ok", degraded as 200 "degraded"
// (scrapers can still distinguish by body), failed as 503.
enum class RuntimeState { kHealthy, kDegraded, kFailed };

const char* RuntimeStateName(RuntimeState state);

struct HealthEvent {
  HealthSeverity severity = HealthSeverity::kWarn;
  std::string detector;
  std::int64_t step = 0;
  double seconds = 0.0;  // monitor-clock time of the firing
  std::string message;

  std::string ToJson() const;  // {"type":"health_event",...}
};

struct HealthMonitorOptions {
  // Error when loss exceeds this factor times the trailing median loss
  // (after `warmup_steps`), or goes non-finite at any point.
  double loss_explosion_factor = 100.0;
  std::int64_t warmup_steps = 8;
  // Trailing window for the median loss and median inter-step interval.
  std::size_t trailing_window = 64;
  // Warn when a tensor's error-accumulation-buffer L2 exceeds this factor
  // times its baseline (median of its first `residual_baseline_steps`
  // observations). Latched per tensor until it falls back under half the
  // threshold, so a run that hovers at the edge does not spam.
  double residual_growth_factor = 50.0;
  std::size_t residual_baseline_steps = 8;
  // Stalled when no step arrived within max(stall_factor x median
  // inter-step interval, min_stall_seconds).
  double stall_factor = 10.0;
  double min_stall_seconds = 2.0;
  // Warn when the best-seen loss has not improved by plateau_min_delta
  // (relative) for plateau_window steps. 0 disables the detector.
  std::int64_t plateau_window = 0;
  double plateau_min_delta = 1e-3;
  // Ring of recent events kept for /healthz and /statusz.
  std::size_t max_events = 64;
};

class HealthMonitor {
 public:
  // `metrics` may be null; when set, firings increment
  // "health/<detector>" counters and the "health/healthy" gauge.
  explicit HealthMonitor(HealthMonitorOptions options,
                         MetricsRegistry* metrics = nullptr);

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  // Invoked for every event, outside the monitor lock, on the thread that
  // detected it. Set before the run starts.
  void SetEventCallback(std::function<void(const HealthEvent&)> callback);

  // Seconds-valued monotonic clock override for tests.
  void SetClockForTest(std::function<double()> clock);

  // Feed one step record; runs every per-step detector.
  void ObserveStep(const StepTelemetry& step);

  // Re-evaluate the stall detector now. Returns true while stalled.
  // Called from /healthz so a wedged run is detected by its scraper even
  // though ObserveStep never fires again.
  bool CheckStall();

  // False while stalled or after any error-severity event.
  bool healthy();

  // Record a membership-state transition (no-op when unchanged). Fires a
  // "runtime_state" health event — warn for degraded/recovered, error for
  // failed (which also flips healthy() false) — and sets the
  // "health/runtime_state" gauge (0 healthy, 1 degraded, 2 failed).
  void SetRuntimeState(RuntimeState state, const std::string& reason);
  RuntimeState runtime_state() const;

  std::vector<HealthEvent> events() const;
  std::size_t event_count() const;

  // Live status for /statusz: current step, loss, bits/value per
  // direction, per-tensor residual L2, uptime, health.
  std::string StatusJson(double uptime_seconds) const;

 private:
  struct ResidualTrack {
    std::vector<double> baseline_samples;
    double baseline = 0.0;
    bool latched = false;
  };

  void Fire(std::vector<HealthEvent>& fired, HealthSeverity severity,
            const char* detector, std::int64_t step, std::string message);
  void Dispatch(const std::vector<HealthEvent>& fired);
  double Now() const;
  static double Median(std::deque<double> values);
  void CheckResiduals(const StepTelemetry& step,
                      std::vector<HealthEvent>& fired);

  const HealthMonitorOptions options_;
  MetricsRegistry* const metrics_;
  std::function<void(const HealthEvent&)> callback_;
  std::function<double()> clock_;

  mutable std::mutex mu_;
  std::deque<double> recent_losses_;     // finite losses, trailing window
  std::deque<double> recent_intervals_;  // inter-step seconds
  double last_step_seconds_ = -1.0;
  std::int64_t steps_seen_ = 0;
  double best_loss_ = 0.0;
  bool best_loss_set_ = false;
  std::int64_t best_loss_step_ = 0;
  bool plateau_latched_ = false;
  std::map<std::string, ResidualTrack> push_residuals_;
  std::map<std::string, ResidualTrack> pull_residuals_;
  std::deque<HealthEvent> events_;
  bool has_error_ = false;
  bool stalled_ = false;
  RuntimeState runtime_state_ = RuntimeState::kHealthy;
  // Last observed step, kept for StatusJson.
  std::int64_t last_step_ = -1;
  double last_loss_ = 0.0;
  double last_lr_ = 0.0;
  double last_push_bpv_ = 0.0;
  double last_pull_bpv_ = 0.0;
  int last_contributors_ = 0;
  std::vector<std::pair<std::string, std::pair<double, double>>>
      last_residuals_;  // name -> (push L2, pull L2); -1 = absent
};

}  // namespace threelc::obs
