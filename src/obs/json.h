// Minimal JSON formatting helpers for the observability exporters.
//
// Only what the metrics/trace/step-log writers need: string escaping and
// finite-number formatting (NaN/Inf serialize as null, which keeps every
// emitted line strictly-valid JSON).
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace threelc::obs {

inline void AppendJsonEscaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

inline std::string JsonString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  AppendJsonEscaped(out, s);
  return out;
}

inline void AppendJsonNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

inline void AppendJsonNumber(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

inline void AppendJsonNumber(std::string& out, std::int64_t v) {
  out += std::to_string(v);
}

}  // namespace threelc::obs
