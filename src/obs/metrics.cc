#include "obs/metrics.h"

#include <ostream>

#include "obs/json.h"

namespace threelc::obs {

void HistogramStat::MergeFrom(const HistogramStat& other) {
  // Copy the other side out under its lock, then fold in under ours — never
  // hold both locks at once (two threads cross-merging must not deadlock).
  util::RunningStat other_stat;
  util::Histogram other_bins(other.lo_, other.hi_, other.num_bins_);
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    other_stat = other.stat_;
    other_bins = other.bins_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  stat_.Merge(other_stat);
  if (other.lo_ == lo_ && other.hi_ == hi_ && other.num_bins_ == num_bins_) {
    bins_.Merge(other_bins);
  }
  // Bounds mismatch keeps our bins; the merged moments above still count
  // the other side's mass.
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(
                                     &enabled_))).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(&enabled_)))
             .first;
  }
  return it->second.get();
}

HistogramStat* MetricsRegistry::histogram(const std::string& name, double lo,
                                          double hi, std::size_t bins) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<HistogramStat>(
                                new HistogramStat(&enabled_, lo, hi, bins)))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::AddCounterBatch(const std::string& name, double v,
                                      std::uint64_t n) {
  if (!enabled()) return;
  counter(name)->AddSample(v, n);
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  // Snapshot other's metric pointers, then fold them in. Values read through
  // the handles are atomics (or internally locked), so concurrent writers on
  // `other` stay safe; counts may lag in-flight updates, which is fine for
  // an export-time merge.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const HistogramStat*>> hists;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    for (const auto& [name, c] : other.counters_) {
      counters.emplace_back(name, c.get());
    }
    for (const auto& [name, g] : other.gauges_) {
      gauges.emplace_back(name, g.get());
    }
    for (const auto& [name, h] : other.histograms_) {
      hists.emplace_back(name, h.get());
    }
  }
  // Write through the private fields so a Merge lands even when this
  // registry is disabled (export-time merges must not drop data).
  for (const auto& [name, c] : counters) {
    // Read() gives a consistent (value, events) pair even while workers
    // keep adding on the other side; AddSample folds it in atomically with
    // respect to concurrent exporters of this registry.
    const Counter::Snapshot snap = c->Read();
    counter(name)->AddSample(snap.value, snap.events);
  }
  for (const auto& [name, g] : gauges) {
    if (g->set()) {
      Gauge* mine = gauge(name);
      mine->value_.store(g->value(), std::memory_order_relaxed);
      mine->set_.store(true, std::memory_order_relaxed);
    }
  }
  for (const auto& [name, h] : hists) {
    histogram(name, h->lo(), h->hi(), h->num_bins())->MergeFrom(*h);
  }
}

namespace {

void AppendHistogramFields(std::string& line, const HistogramStat& h) {
  const util::RunningStat s = h.stat();
  line += ",\"count\":";
  AppendJsonNumber(line, static_cast<std::uint64_t>(s.count()));
  line += ",\"mean\":";
  AppendJsonNumber(line, s.mean());
  line += ",\"stddev\":";
  AppendJsonNumber(line, s.stddev());
  line += ",\"min\":";
  AppendJsonNumber(line, s.min());
  line += ",\"max\":";
  AppendJsonNumber(line, s.max());
  line += ",\"p50\":";
  AppendJsonNumber(line, h.Quantile(0.5));
  line += ",\"p99\":";
  AppendJsonNumber(line, h.Quantile(0.99));
}

}  // namespace

MetricSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    const Counter::Snapshot s = c->Read();
    snap.counters.push_back({name, s.value, s.events});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value(), g->set()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    const util::RunningStat s = h->stat();
    snap.histograms.push_back({name, s.count(), s.sum(), s.mean(), s.stddev(),
                               s.min(), s.max(), h->Quantile(0.5),
                               h->Quantile(0.9), h->Quantile(0.99)});
  }
  return snap;
}

void MetricsRegistry::WriteJsonl(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string line;
  for (const auto& [name, c] : counters_) {
    const Counter::Snapshot snap = c->Read();
    line.clear();
    line += "{\"metric\":";
    AppendJsonEscaped(line, name);
    line += ",\"type\":\"counter\",\"value\":";
    AppendJsonNumber(line, snap.value);
    line += ",\"events\":";
    AppendJsonNumber(line, snap.events);
    line += "}\n";
    out << line;
  }
  for (const auto& [name, g] : gauges_) {
    line.clear();
    line += "{\"metric\":";
    AppendJsonEscaped(line, name);
    line += ",\"type\":\"gauge\",\"value\":";
    AppendJsonNumber(line, g->value());
    line += "}\n";
    out << line;
  }
  for (const auto& [name, h] : histograms_) {
    line.clear();
    line += "{\"metric\":";
    AppendJsonEscaped(line, name);
    line += ",\"type\":\"histogram\"";
    AppendHistogramFields(line, *h);
    line += "}\n";
    out << line;
  }
}

void MetricsRegistry::WriteCsv(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "metric,type,value,events,mean,stddev,min,max,p50,p99\n";
  for (const auto& [name, c] : counters_) {
    const Counter::Snapshot snap = c->Read();
    out << name << ",counter," << snap.value << "," << snap.events
        << ",,,,,,\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << name << ",gauge," << g->value() << ",,,,,,,\n";
  }
  for (const auto& [name, h] : histograms_) {
    const util::RunningStat s = h->stat();
    out << name << ",histogram," << s.sum() << "," << s.count() << ","
        << s.mean() << "," << s.stddev() << "," << s.min() << "," << s.max()
        << "," << h->Quantile(0.5) << "," << h->Quantile(0.99) << "\n";
  }
}

std::string MetricsRegistry::ToJsonObject() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",";
    first = false;
  };
  for (const auto& [name, c] : counters_) {
    const Counter::Snapshot snap = c->Read();
    sep();
    AppendJsonEscaped(out, name);
    out += ":{\"type\":\"counter\",\"value\":";
    AppendJsonNumber(out, snap.value);
    out += ",\"events\":";
    AppendJsonNumber(out, snap.events);
    out += "}";
  }
  for (const auto& [name, g] : gauges_) {
    sep();
    AppendJsonEscaped(out, name);
    out += ":{\"type\":\"gauge\",\"value\":";
    AppendJsonNumber(out, g->value());
    out += "}";
  }
  for (const auto& [name, h] : histograms_) {
    sep();
    AppendJsonEscaped(out, name);
    out += ":{\"type\":\"histogram\"";
    AppendHistogramFields(out, *h);
    out += "}";
  }
  out += "}";
  return out;
}

std::size_t MetricsRegistry::metric_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace threelc::obs
