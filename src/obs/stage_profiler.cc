#include "obs/stage_profiler.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "util/logging.h"

namespace threelc::obs {

namespace {

std::atomic<std::uint64_t> g_next_instance_id{1};

}  // namespace

void StageProfiler::ThreadState::Record(int id, std::uint64_t ns) {
  StageAccum& a = accums[id];
  // Single writer: plain load+store (relaxed) is race-free against the
  // concurrent relaxed loads Snapshot performs.
  a.count.store(a.count.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  a.total_ns.store(a.total_ns.load(std::memory_order_relaxed) + ns,
                   std::memory_order_relaxed);
  if (ns < a.min_ns.load(std::memory_order_relaxed)) {
    a.min_ns.store(ns, std::memory_order_relaxed);
  }
  if (ns > a.max_ns.load(std::memory_order_relaxed)) {
    a.max_ns.store(ns, std::memory_order_relaxed);
  }
  std::atomic<std::uint32_t>& bucket = a.hist[StageLog2Bucket(ns)];
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
}

StageProfiler::StageProfiler()
    : instance_id_(g_next_instance_id.fetch_add(1)) {}

StageProfiler::~StageProfiler() = default;

StageProfiler& StageProfiler::Global() {
  static StageProfiler* profiler = new StageProfiler();
  return *profiler;
}

StageProfiler::ThreadState* StageProfiler::GetThreadState() {
  // Cache keyed by instance id, not pointer: ids are never reused, so a
  // stale entry for a destroyed profiler can never match a new one.
  struct CacheEntry {
    std::uint64_t instance;
    ThreadState* state;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache) {
    if (e.instance == instance_id_) return e.state;
  }
  auto owned = std::make_unique<ThreadState>();
  ThreadState* state = owned.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads_.push_back(std::move(owned));
  }
  cache.push_back({instance_id_, state});
  return state;
}

int StageProfiler::ResolveChild(ThreadState& ts, int parent,
                                const char* name) {
  for (const ThreadState::ChildEdge& e : ts.children) {
    if (e.parent == parent && e.name == name) return e.id;
  }
  std::string path;
  int id = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path = parent < 0 ? std::string(name)
                      : paths_[static_cast<std::size_t>(parent)] + "/" + name;
    for (std::size_t i = 0; i < paths_.size(); ++i) {
      if (paths_[i] == path) {
        id = static_cast<int>(i);
        break;
      }
    }
    if (id < 0) {
      THREELC_CHECK_MSG(paths_.size() < kMaxStages,
                        "StageProfiler: too many distinct stage paths");
      id = static_cast<int>(paths_.size());
      paths_.push_back(std::move(path));
    }
  }
  ts.children.push_back({parent, name, id});
  return id;
}

std::vector<StageSample> StageProfiler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StageSample> samples;
  samples.reserve(paths_.size());
  std::uint64_t hist[kHistogramBuckets];
  for (std::size_t id = 0; id < paths_.size(); ++id) {
    StageSample s;
    s.path = paths_[id];
    s.min_ns = ~std::uint64_t{0};
    std::fill(hist, hist + kHistogramBuckets, 0);
    for (const auto& thread : threads_) {
      const StageAccum& a = thread->accums[id];
      const std::uint64_t count = a.count.load(std::memory_order_relaxed);
      if (count == 0) continue;
      s.count += count;
      s.total_ns += a.total_ns.load(std::memory_order_relaxed);
      s.min_ns = std::min(s.min_ns, a.min_ns.load(std::memory_order_relaxed));
      s.max_ns = std::max(s.max_ns, a.max_ns.load(std::memory_order_relaxed));
      for (int b = 0; b < kHistogramBuckets; ++b) {
        hist[b] += a.hist[b].load(std::memory_order_relaxed);
      }
    }
    if (s.count == 0) continue;
    s.p50_ns = StageQuantileNs(hist, kHistogramBuckets, s.count, 0.50);
    s.p90_ns = StageQuantileNs(hist, kHistogramBuckets, s.count, 0.90);
    s.p99_ns = StageQuantileNs(hist, kHistogramBuckets, s.count, 0.99);
    samples.push_back(std::move(s));
  }
  std::sort(samples.begin(), samples.end(),
            [](const StageSample& a, const StageSample& b) {
              return a.path < b.path;
            });
  return samples;
}

void StageProfiler::ExportTo(MetricsRegistry& registry) const {
  for (const StageSample& s : Snapshot()) {
    registry.AddCounterBatch("profile/" + s.path,
                             static_cast<double>(s.total_ns) * 1e-9, s.count);
  }
}

void StageProfiler::WritePrometheus(std::ostream& out,
                                    const std::string& prefix) const {
  std::string text;
  for (const StageSample& s : Snapshot()) {
    const std::string base = prefix + "stage_" + SanitizeMetricName(s.path);
    text += "# HELP " + base + "_seconds_total Total time in stage " +
            s.path + "\n";
    text += "# TYPE " + base + "_seconds_total counter\n";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g",
                  static_cast<double>(s.total_ns) * 1e-9);
    text += base + "_seconds_total " + buf + "\n";
    text += "# HELP " + base + "_count_total Entries into stage " + s.path +
            "\n";
    text += "# TYPE " + base + "_count_total counter\n";
    text += base + "_count_total " + std::to_string(s.count) + "\n";
    text += "# HELP " + base + "_ns Stage duration distribution (ns)\n";
    text += "# TYPE " + base + "_ns summary\n";
    const struct {
      const char* q;
      double v;
    } quantiles[] = {{"0.5", s.p50_ns}, {"0.9", s.p90_ns}, {"0.99", s.p99_ns}};
    for (const auto& q : quantiles) {
      std::snprintf(buf, sizeof(buf), "%.9g", q.v);
      text += base + "_ns{quantile=\"" + q.q + "\"} " + buf + "\n";
    }
    text += base + "_ns_sum " + std::to_string(s.total_ns) + "\n";
    text += base + "_ns_count " + std::to_string(s.count) + "\n";
  }
  out << text;
}

void StageProfiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& thread : threads_) {
    for (int id = 0; id < kMaxStages; ++id) {
      StageAccum& a = thread->accums[id];
      a.count.store(0, std::memory_order_relaxed);
      a.total_ns.store(0, std::memory_order_relaxed);
      a.min_ns.store(~std::uint64_t{0}, std::memory_order_relaxed);
      a.max_ns.store(0, std::memory_order_relaxed);
      for (int b = 0; b < kHistogramBuckets; ++b) {
        a.hist[b].store(0, std::memory_order_relaxed);
      }
    }
  }
}

std::size_t StageProfiler::stage_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return paths_.size();
}

}  // namespace threelc::obs
