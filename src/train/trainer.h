// DistributedTrainer: synchronous data-parallel training of one model over
// N simulated workers and a parameter server, with any state-change codec.
//
// One training step reproduces the paper's §2 sub-steps:
//   forward pass -> backward pass -> gradient push (compressed)
//   -> gradient aggregation + model update (server, momentum SGD)
//   -> model pull (shared compressed deltas) applied to local models.
//
// Workers run on a thread pool; aggregation order is fixed by worker id so
// results are bit-deterministic regardless of scheduling. Traffic and codec
// CPU time are measured per step; wall-clock training time under a given
// network is derived afterwards by train::TimeModel (the same extrapolation
// arithmetic the paper uses in §5.2).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "compress/factory.h"
#include "data/dataset.h"
#include "net/traffic_meter.h"
#include "obs/telemetry.h"
#include "nn/adam.h"
#include "nn/lr_schedule.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "ps/plan.h"
#include "ps/server.h"
#include "ps/worker.h"
#include "util/rng.h"

namespace threelc::train {

struct TrainerConfig {
  int num_workers = 10;
  std::int64_t batch_size = 32;  // per worker
  std::int64_t total_steps = 1000;
  // Cosine decay lr_max -> lr_min over total_steps (paper §5.2).
  float lr_max = 0.1f;
  float lr_min = 0.001f;
  // Server-side optimizer. The paper uses momentum SGD; Adam is available
  // for workloads where it converges better.
  enum class OptimizerKind { kMomentumSgd, kAdam };
  OptimizerKind optimizer_kind = OptimizerKind::kMomentumSgd;
  nn::MomentumOptions optimizer;  // momentum 0.9, weight decay 1e-4
  nn::AdamOptions adam;           // used when optimizer_kind == kAdam
  compress::CodecConfig codec;
  // Tensors smaller than this bypass compression (small-layer path).
  std::int64_t min_compress_elems = 256;
  // Evaluate test accuracy every this many steps (0 = only at the end).
  std::int64_t eval_every = 100;
  std::int64_t eval_batch_size = 256;
  float augment_noise = 0.05f;
  std::uint64_t seed = 7;
  // Run worker compute in parallel on a thread pool.
  bool parallel_workers = true;

  // --- Straggler mitigation (paper §2.1, SyncReplicasOptimizer) ---
  // Number of backup workers: each step the server aggregates only the
  // (num_workers - backup_workers) fastest pushes and discards the rest,
  // advancing the barrier without waiting for stragglers. 0 = plain BSP.
  int backup_workers = 0;
  // Simulated per-worker compute-time variation. Each worker's step time is
  // base * (1 + |N(0, straggler_jitter)|), and with probability
  // straggler_prob a worker is a straggler: base * straggler_slowdown.
  // These multipliers feed StepRecord::compute_multiplier so the time model
  // reflects who the barrier actually waited for.
  double straggler_jitter = 0.0;
  double straggler_prob = 0.0;
  double straggler_slowdown = 5.0;

  // Optional telemetry sink (not owned; must outlive Run). When set, Run
  // emits spans per phase per step (track 0 = server, 1+w = worker w), one
  // structured JSONL step record, and registry metrics; the step records
  // also feed the sink's live-monitoring pieces (health watchdog + flight
  // recorder + HTTP endpoints) when those are configured. Null = zero-cost.
  obs::Telemetry* telemetry = nullptr;
};

struct StepRecord {
  std::int64_t step = 0;
  double loss = 0.0;  // mean worker training loss
  float lr = 0.0f;
  // Traffic summed across workers, split between tensors that went through
  // the codec and small tensors that bypassed it as raw float32.
  std::size_t push_bytes = 0;
  std::size_t pull_bytes = 0;
  std::size_t push_values = 0;
  std::size_t pull_values = 0;
  std::size_t push_bytes_codec = 0;
  std::size_t pull_bytes_codec = 0;
  std::size_t push_values_codec = 0;
  std::size_t pull_values_codec = 0;
  // Codec CPU seconds, already reduced to the critical path of one step:
  // max-over-workers for parallel stages, sum for the serial server stage.
  double codec_seconds = 0.0;
  // Multiplier on the base compute time that this step's barrier actually
  // waited for (k-th fastest worker under straggler simulation; 1.0 when
  // straggler simulation is off).
  double compute_multiplier = 1.0;
  // Workers whose pushes the server aggregated this step.
  int contributors = 0;
};

struct EvalRecord {
  std::int64_t step = 0;
  double test_accuracy = 0.0;
};

struct TrainResult {
  std::vector<StepRecord> steps;
  std::vector<EvalRecord> evals;
  double final_test_accuracy = 0.0;
  double final_train_loss = 0.0;
  std::int64_t model_parameters = 0;
  int num_workers = 0;
  std::string codec_name;

  std::size_t TotalBytes() const;
  std::size_t TotalValues() const;
  double AverageBitsPerValue() const;
  double AverageCompressionRatio() const;
  double TotalCodecSeconds() const;

  // Same aggregates restricted to codec-processed traffic — the quantities
  // Table 2 and Fig. 9 report (the paper excludes bypassed small layers
  // from its compression accounting).
  std::size_t CodecBytes() const;
  std::size_t CodecValues() const;
  double CodecBitsPerValue() const;
  double CodecCompressionRatio() const;
};

class DistributedTrainer {
 public:
  // `model_factory(seed)` must build architecturally identical models.
  using ModelFactory = std::function<nn::Model()>;

  DistributedTrainer(TrainerConfig config, ModelFactory model_factory,
                     const data::Dataset& train_data,
                     const data::Dataset& test_data);

  // Runs config.total_steps steps and returns the full metric record.
  TrainResult Run();

  // Access to the global model after Run (for examples/tests).
  nn::Model& global_model() { return global_model_; }
  const ps::TensorPlan& plan() const { return plan_; }

 private:
  double EvaluateGlobalModel();

  // Assemble and log one obs::StepTelemetry record from this step's
  // measurements; via Telemetry::LogStep it also feeds the health
  // watchdog and flight recorder. Only called when config_.telemetry is
  // set.
  void EmitStepTelemetry(
      const StepRecord& rec, const std::vector<double>& worker_fb_ms,
      const std::vector<double>& worker_encode_ms,
      const std::vector<double>& worker_decode_ms, double decode_aggregate_ms,
      double optimize_ms, double encode_pull_ms,
      const std::vector<std::vector<compress::EncodeStats>>& push_stats,
      const std::vector<compress::EncodeStats>& pull_stats);

  TrainerConfig config_;
  nn::Model global_model_;
  std::vector<nn::Model> worker_models_;
  ps::TensorPlan plan_;
  std::shared_ptr<const compress::Compressor> codec_;
  std::unique_ptr<ps::ParameterServer> server_;
  std::vector<std::unique_ptr<ps::Worker>> workers_;
  std::vector<data::Sampler> samplers_;
  std::vector<data::Batch> eval_batches_;
};

}  // namespace threelc::train
