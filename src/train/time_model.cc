#include "train/time_model.h"

#include <algorithm>

#include "util/logging.h"

namespace threelc::train {

double TimeModelConfig::PaperElementScale(std::int64_t our_model_parameters) {
  constexpr double kResNet110Params = 1.73e6;
  THREELC_CHECK(our_model_parameters > 0);
  return kResNet110Params / static_cast<double>(our_model_parameters);
}

double EstimateTrainingSeconds(const TrainResult& result,
                               const TimeModelConfig& config) {
  const net::NetworkModel network(config.link, config.overlap_fraction);
  THREELC_CHECK_MSG(result.num_workers >= 1, "result missing worker count");
  // One machine's share of the cluster-wide traffic is the bottleneck.
  const double machine_share =
      static_cast<double>(config.workers_per_machine) /
      static_cast<double>(result.num_workers);
  double total = 0.0;
  for (const auto& s : result.steps) {
    const auto push = static_cast<std::size_t>(
        static_cast<double>(s.push_bytes) * config.element_scale *
        machine_share);
    const auto pull = static_cast<std::size_t>(
        static_cast<double>(s.pull_bytes) * config.element_scale *
        machine_share);
    total += network.StepSeconds(
        config.compute_seconds_per_step * s.compute_multiplier,
        s.codec_seconds * config.element_scale, push, pull);
  }
  return total;
}

double EstimatePerStepSeconds(const TrainResult& result,
                              const TimeModelConfig& config) {
  if (result.steps.empty()) return 0.0;
  return EstimateTrainingSeconds(result, config) /
         static_cast<double>(result.steps.size());
}

}  // namespace threelc::train
