#include "train/trainer.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace threelc::train {

std::size_t TrainResult::TotalBytes() const {
  std::size_t total = 0;
  for (const auto& s : steps) total += s.push_bytes + s.pull_bytes;
  return total;
}

std::size_t TrainResult::TotalValues() const {
  std::size_t total = 0;
  for (const auto& s : steps) total += s.push_values + s.pull_values;
  return total;
}

double TrainResult::AverageBitsPerValue() const {
  const std::size_t values = TotalValues();
  if (values == 0) return 0.0;
  return static_cast<double>(TotalBytes()) * 8.0 / static_cast<double>(values);
}

double TrainResult::AverageCompressionRatio() const {
  const std::size_t bytes = TotalBytes();
  if (bytes == 0) return 0.0;
  return static_cast<double>(TotalValues() * sizeof(float)) /
         static_cast<double>(bytes);
}

double TrainResult::TotalCodecSeconds() const {
  double total = 0.0;
  for (const auto& s : steps) total += s.codec_seconds;
  return total;
}

std::size_t TrainResult::CodecBytes() const {
  std::size_t total = 0;
  for (const auto& s : steps) total += s.push_bytes_codec + s.pull_bytes_codec;
  return total;
}

std::size_t TrainResult::CodecValues() const {
  std::size_t total = 0;
  for (const auto& s : steps) {
    total += s.push_values_codec + s.pull_values_codec;
  }
  return total;
}

double TrainResult::CodecBitsPerValue() const {
  const std::size_t values = CodecValues();
  if (values == 0) return 0.0;
  return static_cast<double>(CodecBytes()) * 8.0 /
         static_cast<double>(values);
}

double TrainResult::CodecCompressionRatio() const {
  const std::size_t bytes = CodecBytes();
  if (bytes == 0) return 0.0;
  return static_cast<double>(CodecValues() * sizeof(float)) /
         static_cast<double>(bytes);
}

DistributedTrainer::DistributedTrainer(TrainerConfig config,
                                       ModelFactory model_factory,
                                       const data::Dataset& train_data,
                                       const data::Dataset& test_data)
    : config_(std::move(config)), global_model_(model_factory()) {
  THREELC_CHECK(config_.num_workers >= 1);
  THREELC_CHECK(config_.total_steps >= 1);

  plan_ = ps::TensorPlan::FromParams(global_model_.Params(),
                                     config_.min_compress_elems);
  codec_ = std::shared_ptr<const compress::Compressor>(
      compress::MakeCompressor(config_.codec));
  std::unique_ptr<nn::Optimizer> optimizer;
  if (config_.optimizer_kind == TrainerConfig::OptimizerKind::kAdam) {
    optimizer = std::make_unique<nn::Adam>(config_.adam);
  } else {
    optimizer = std::make_unique<nn::MomentumSgd>(config_.optimizer);
  }
  server_ = std::make_unique<ps::ParameterServer>(global_model_, plan_, codec_,
                                                  std::move(optimizer));

  util::Rng seeder(config_.seed);
  worker_models_.reserve(static_cast<std::size_t>(config_.num_workers));
  for (int w = 0; w < config_.num_workers; ++w) {
    worker_models_.push_back(model_factory());
    // Workers start from the identical global model (BSP).
    worker_models_.back().CopyParamsFrom(global_model_);
  }
  for (int w = 0; w < config_.num_workers; ++w) {
    workers_.push_back(std::make_unique<ps::Worker>(
        w, worker_models_[static_cast<std::size_t>(w)], plan_, codec_));
    samplers_.emplace_back(train_data, seeder.Fork(), config_.augment_noise);
  }
  eval_batches_ = data::EvalBatches(test_data, config_.eval_batch_size);
}

double DistributedTrainer::EvaluateGlobalModel() {
  // The designated batch-norm worker (worker 0) owns running statistics;
  // copy them onto the global snapshot before evaluating (paper §5.2).
  global_model_.CopyBuffersFrom(worker_models_[0]);
  std::size_t correct = 0, total = 0;
  for (const auto& batch : eval_batches_) {
    tensor::Tensor logits = global_model_.Forward(batch.inputs, false);
    const double acc = nn::Accuracy(logits, batch.labels);
    const std::size_t n = batch.labels.size();
    correct += static_cast<std::size_t>(acc * static_cast<double>(n) + 0.5);
    total += n;
  }
  return total ? static_cast<double>(correct) / static_cast<double>(total)
               : 0.0;
}

void DistributedTrainer::EmitStepTelemetry(
    const StepRecord& rec, const std::vector<double>& worker_fb_ms,
    const std::vector<double>& worker_encode_ms,
    const std::vector<double>& worker_decode_ms, double decode_aggregate_ms,
    double optimize_ms, double encode_pull_ms,
    const std::vector<std::vector<compress::EncodeStats>>& push_stats,
    const std::vector<compress::EncodeStats>& pull_stats) {
  obs::Telemetry* tel = config_.telemetry;

  obs::StepTelemetry st;
  st.step = rec.step;
  st.loss = rec.loss;
  st.lr = rec.lr;
  st.push_bytes = rec.push_bytes;
  st.pull_bytes = rec.pull_bytes;
  st.push_values = rec.push_values;
  st.pull_values = rec.pull_values;
  const auto rates = net::PerDirectionBitsPerValue(
      {rec.push_bytes, rec.pull_bytes, rec.push_values, rec.pull_values});
  st.push_bits_per_value = rates.push;
  st.pull_bits_per_value = rates.pull;
  st.codec_seconds = rec.codec_seconds;
  st.contributors = rec.contributors;

  // Critical-path phase times: parallel worker phases reduce by max (the
  // barrier waits for the slowest), server phases are serial.
  auto max_of = [](const std::vector<double>& v) {
    return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
  };
  st.phases_ms = {{"forward_backward", max_of(worker_fb_ms)},
                  {"encode_push", max_of(worker_encode_ms)},
                  {"decode_aggregate", decode_aggregate_ms},
                  {"optimize", optimize_ms},
                  {"encode_pull", encode_pull_ms},
                  {"decode_pull", max_of(worker_decode_ms)}};
  for (const auto& phase : st.phases_ms) st.step_wall_ms += phase.ms;

  if (!push_stats.empty()) {
    st.tensors.reserve(plan_.size());
    for (std::size_t t = 0; t < plan_.size(); ++t) {
      const auto& entry = plan_.entry(t);
      obs::TensorStepTelemetry tt;
      tt.name = entry.name;
      tt.elements = static_cast<std::size_t>(entry.shape.num_elements());
      std::size_t zeros = 0, positives = 0, negatives = 0;
      std::size_t zre_in = 0, zre_out = 0;
      double residual_sum = 0.0;
      std::size_t residual_n = 0;
      for (const auto& worker_row : push_stats) {
        const compress::EncodeStats& s = worker_row[t];
        tt.push_bytes += s.payload_bytes;
        if (s.has_symbols) {
          zeros += s.zeros;
          positives += s.positives;
          negatives += s.negatives;
        }
        if (s.has_zero_run) {
          zre_in += s.zre_bytes_in;
          zre_out += s.zre_bytes_out;
        }
        if (s.has_residual) {
          residual_sum += s.residual_l2;
          ++residual_n;
        }
      }
      const std::size_t symbols = zeros + positives + negatives;
      if (symbols > 0) {
        const auto total = static_cast<double>(symbols);
        tt.zero_frac = static_cast<double>(zeros) / total;
        tt.plus_frac = static_cast<double>(positives) / total;
        tt.minus_frac = static_cast<double>(negatives) / total;
      }
      const compress::EncodeStats* pull =
          t < pull_stats.size() ? &pull_stats[t] : nullptr;
      if (pull != nullptr && pull->has_zero_run) {
        zre_in += pull->zre_bytes_in;
        zre_out += pull->zre_bytes_out;
      }
      if (zre_in > 0) {
        tt.zre_hit_rate =
            1.0 - static_cast<double>(zre_out) / static_cast<double>(zre_in);
      }
      if (residual_n > 0) {
        tt.push_residual_l2 = residual_sum / static_cast<double>(residual_n);
      }
      if (pull != nullptr) {
        tt.pull_bytes = pull->payload_bytes > 0
                            ? pull->payload_bytes
                            : server_->PullPayload(t).size();
        if (pull->has_residual) tt.pull_residual_l2 = pull->residual_l2;
      }
      st.tensors.push_back(std::move(tt));
    }
  }

  tel->LogStep(st);
  if (tel->trace_enabled()) {
    obs::Tracer& tracer = tel->tracer();
    const double now = tracer.NowUs();
    tracer.RecordCounter("loss", 0, now, rec.loss);
    tracer.RecordCounter("push_bytes", 0, now,
                         static_cast<double>(rec.push_bytes));
  }
}

TrainResult DistributedTrainer::Run() {
  const auto num_workers = static_cast<std::size_t>(config_.num_workers);
  const std::size_t num_tensors = plan_.size();
  nn::CosineDecay schedule(config_.lr_max, config_.lr_min, config_.total_steps);

  // --- Telemetry wiring (all null/disabled when config_.telemetry is
  // unset; every hot-path guard is a branch on a cached bool). Tracks:
  // 0 = server, 1+w = worker w.
  obs::Telemetry* tel = config_.telemetry;
  obs::Tracer* tracer =
      tel != nullptr && tel->trace_enabled() ? &tel->tracer() : nullptr;
  const bool metrics_on = tel != nullptr && tel->metrics_enabled();
  const bool per_tensor = tel != nullptr && tel->per_tensor_enabled();
  if (tracer != nullptr) {
    tracer->SetTrackName(0, "server");
    for (std::size_t w = 0; w < num_workers; ++w) {
      tracer->SetTrackName(1 + static_cast<int>(w),
                           "worker " + std::to_string(w));
    }
  }
  obs::Counter* m_push_bytes = nullptr;
  obs::Counter* m_pull_bytes = nullptr;
  obs::Counter* m_codec_cpu = nullptr;
  obs::Gauge* m_loss = nullptr;
  obs::Gauge* m_lr = nullptr;
  obs::HistogramStat* m_push_bpv = nullptr;
  obs::HistogramStat* m_pull_bpv = nullptr;
  obs::HistogramStat* m_step_ms = nullptr;
  if (tel != nullptr) {
    auto& reg = tel->metrics();
    m_push_bytes = reg.counter("traffic/push_bytes");
    m_pull_bytes = reg.counter("traffic/pull_bytes");
    m_codec_cpu = reg.counter("codec/cpu_seconds");
    m_loss = reg.gauge("train/loss");
    m_lr = reg.gauge("train/lr");
    m_push_bpv = reg.histogram("traffic/push_bits_per_value", 0.0, 34.0, 68);
    m_pull_bpv = reg.histogram("traffic/pull_bits_per_value", 0.0, 34.0, 68);
    m_step_ms = reg.histogram("train/step_ms", 0.0, 1000.0, 200);
  }

  std::unique_ptr<util::ThreadPool> pool;
  if (config_.parallel_workers) {
    pool = std::make_unique<util::ThreadPool>(
        std::min<std::size_t>(num_workers,
                              std::thread::hardware_concurrency()));
  }

  TrainResult result;
  result.codec_name = codec_->name();
  result.model_parameters = global_model_.NumParameters();
  result.num_workers = config_.num_workers;
  result.steps.reserve(static_cast<std::size_t>(config_.total_steps));

  // Straggler simulation (paper §2.1): per-step simulated compute-time
  // multipliers decide which workers the backup-worker barrier waits for.
  THREELC_CHECK_MSG(config_.backup_workers >= 0 &&
                        config_.backup_workers < config_.num_workers,
                    "backup_workers must be in [0, num_workers)");
  const std::size_t quorum =
      num_workers - static_cast<std::size_t>(config_.backup_workers);
  util::Rng straggler_rng(config_.seed ^ 0xBACCu);
  std::vector<double> compute_mult(num_workers, 1.0);
  std::vector<std::size_t> worker_order(num_workers);

  // Per-worker push payloads (one buffer holding all tensors in order) and
  // per-worker measured codec seconds for this step.
  std::vector<util::ByteBuffer> push_payloads(num_workers);
  std::vector<std::vector<std::size_t>> push_sizes(
      num_workers, std::vector<std::size_t>(num_tensors, 0));
  std::vector<double> worker_encode_s(num_workers, 0.0);
  std::vector<double> worker_decode_s(num_workers, 0.0);
  std::vector<double> worker_loss(num_workers, 0.0);

  // Telemetry scratch: per-worker wall-clock phase times and per-worker,
  // per-tensor encode stats (each worker writes only its own row, so the
  // parallel stages stay race-free).
  std::vector<double> worker_fb_ms(num_workers, 0.0);
  std::vector<double> worker_encode_ms(num_workers, 0.0);
  std::vector<double> worker_decode_ms(num_workers, 0.0);
  std::vector<std::vector<compress::EncodeStats>> push_stats;
  std::vector<compress::EncodeStats> pull_stats;
  if (per_tensor) {
    push_stats.assign(num_workers,
                      std::vector<compress::EncodeStats>(num_tensors));
  }

  for (std::int64_t step = 0; step < config_.total_steps; ++step) {
    StepRecord rec;
    rec.step = step;
    rec.lr = schedule.At(step);
    server_->BeginStep();

    // Draw this step's simulated compute times and pick the quorum: the
    // (num_workers - backup_workers) fastest workers contribute gradients.
    for (std::size_t w = 0; w < num_workers; ++w) {
      double m = 1.0;
      if (config_.straggler_jitter > 0.0) {
        m += std::fabs(straggler_rng.Normal(0.0, config_.straggler_jitter));
      }
      if (config_.straggler_prob > 0.0 &&
          straggler_rng.Bernoulli(config_.straggler_prob)) {
        m *= config_.straggler_slowdown;
      }
      compute_mult[w] = m;
      worker_order[w] = w;
    }
    std::sort(worker_order.begin(), worker_order.end(),
              [&](std::size_t a, std::size_t b) {
                return compute_mult[a] != compute_mult[b]
                           ? compute_mult[a] < compute_mult[b]
                           : a < b;
              });
    std::vector<bool> contributes(num_workers, false);
    for (std::size_t i = 0; i < quorum; ++i) {
      contributes[worker_order[i]] = true;
    }
    // The barrier waits for the slowest *contributing* worker.
    rec.compute_multiplier = compute_mult[worker_order[quorum - 1]];
    rec.contributors = static_cast<int>(quorum);

    // --- Forward/backward + gradient push encode, per worker (parallel).
    auto compute_and_encode = [&](std::size_t w) {
      const int track = 1 + static_cast<int>(w);
      data::Batch batch = [&] {
        obs::ScopedSpan span(tracer, "sample_batch", track);
        return samplers_[w].Next(config_.batch_size);
      }();
      {
        obs::ScopedSpan span(tracer, "forward_backward", track);
        util::WallTimer wall;
        nn::LossResult loss =
            worker_models_[w].TrainStep(batch.inputs, batch.labels);
        worker_loss[w] = loss.loss;
        worker_fb_ms[w] = wall.ElapsedMillis();
      }
      push_payloads[w].Clear();
      obs::ScopedSpan span(tracer, "encode_push", track);
      util::WallTimer wall;
      util::CpuTimer timer;
      for (std::size_t t = 0; t < num_tensors; ++t) {
        compress::EncodeStats* stats =
            per_tensor ? &(push_stats[w][t] = compress::EncodeStats{})
                       : nullptr;
        push_sizes[w][t] = workers_[w]->EncodePush(t, push_payloads[w], stats);
      }
      worker_encode_s[w] = timer.ElapsedSeconds();
      worker_encode_ms[w] = wall.ElapsedMillis();
    };
    if (pool) {
      pool->ParallelFor(num_workers, compute_and_encode);
    } else {
      for (std::size_t w = 0; w < num_workers; ++w) compute_and_encode(w);
    }

    // --- Server: decode + aggregate pushes in fixed worker order.
    double server_decode_s = 0.0;
    double decode_aggregate_ms = 0.0;
    {
      obs::ScopedSpan span(tracer, "decode_aggregate", 0);
      util::WallTimer wall;
      for (std::size_t w = 0; w < num_workers; ++w) {
        util::ByteReader reader(push_payloads[w]);
        util::CpuTimer timer;
        for (std::size_t t = 0; t < num_tensors; ++t) {
          server_->ReceivePush(t, reader, contributes[w]);
          const auto values =
              static_cast<std::size_t>(plan_.entry(t).shape.num_elements());
          rec.push_bytes += push_sizes[w][t];
          rec.push_values += values;
          if (plan_.entry(t).compressed) {
            rec.push_bytes_codec += push_sizes[w][t];
            rec.push_values_codec += values;
          }
        }
        server_decode_s += timer.ElapsedSeconds();
        THREELC_CHECK_MSG(reader.AtEnd(), "push payload not fully consumed");
      }
      decode_aggregate_ms = wall.ElapsedMillis();
    }

    // --- Model update + shared pull compression (encoded once).
    double optimize_ms = 0.0;
    {
      obs::ScopedSpan span(tracer, "optimize", 0);
      util::WallTimer wall;
      server_->Update(rec.lr, static_cast<int>(quorum));
      optimize_ms = wall.ElapsedMillis();
    }
    util::CpuTimer pull_encode_timer;
    double encode_pull_ms = 0.0;
    {
      obs::ScopedSpan span(tracer, "encode_pull", 0);
      util::WallTimer wall;
      server_->PreparePulls(per_tensor ? &pull_stats : nullptr);
      encode_pull_ms = wall.ElapsedMillis();
    }
    const double pull_encode_s = pull_encode_timer.ElapsedSeconds();

    // --- Workers decode and apply the shared pull payloads (parallel).
    auto apply_pulls = [&](std::size_t w) {
      obs::ScopedSpan span(tracer, "decode_pull", 1 + static_cast<int>(w));
      util::WallTimer wall;
      util::CpuTimer timer;
      for (std::size_t t = 0; t < num_tensors; ++t) {
        util::ByteReader reader(server_->PullPayload(t));
        workers_[w]->ApplyPull(t, reader);
        THREELC_CHECK_MSG(reader.AtEnd(), "pull payload not fully consumed");
      }
      worker_decode_s[w] = timer.ElapsedSeconds();
      worker_decode_ms[w] = wall.ElapsedMillis();
    };
    if (pool) {
      pool->ParallelFor(num_workers, apply_pulls);
    } else {
      for (std::size_t w = 0; w < num_workers; ++w) apply_pulls(w);
    }
    for (std::size_t t = 0; t < num_tensors; ++t) {
      // Each worker pulls its own copy of the shared payload over the wire.
      const std::size_t bytes = server_->PullPayload(t).size() * num_workers;
      const auto values =
          static_cast<std::size_t>(plan_.entry(t).shape.num_elements()) *
          num_workers;
      rec.pull_bytes += bytes;
      rec.pull_values += values;
      if (plan_.entry(t).compressed) {
        rec.pull_bytes_codec += bytes;
        rec.pull_values_codec += values;
      }
    }

    // Critical-path codec time of this step: workers run concurrently on
    // separate machines (max), the server is one machine (sum + once).
    rec.codec_seconds =
        *std::max_element(worker_encode_s.begin(), worker_encode_s.end()) +
        server_decode_s + pull_encode_s +
        *std::max_element(worker_decode_s.begin(), worker_decode_s.end());

    double loss_sum = 0.0;
    for (double l : worker_loss) loss_sum += l;
    rec.loss = loss_sum / static_cast<double>(num_workers);
    result.steps.push_back(rec);

    if (tel != nullptr) {
      EmitStepTelemetry(rec, worker_fb_ms, worker_encode_ms, worker_decode_ms,
                        decode_aggregate_ms, optimize_ms, encode_pull_ms,
                        push_stats, pull_stats);
      if (metrics_on) {
        m_push_bytes->Add(static_cast<double>(rec.push_bytes));
        m_pull_bytes->Add(static_cast<double>(rec.pull_bytes));
        m_codec_cpu->Add(rec.codec_seconds);
        m_loss->Set(rec.loss);
        m_lr->Set(rec.lr);
        const auto rates = net::PerDirectionBitsPerValue(
            {rec.push_bytes, rec.pull_bytes, rec.push_values,
             rec.pull_values});
        m_push_bpv->Add(rates.push);
        m_pull_bpv->Add(rates.pull);
        const double step_ms =
            *std::max_element(worker_fb_ms.begin(), worker_fb_ms.end()) +
            *std::max_element(worker_encode_ms.begin(),
                              worker_encode_ms.end()) +
            decode_aggregate_ms + optimize_ms + encode_pull_ms +
            *std::max_element(worker_decode_ms.begin(),
                              worker_decode_ms.end());
        m_step_ms->Add(step_ms);
      }
    }

    if (config_.eval_every > 0 && (step + 1) % config_.eval_every == 0) {
      obs::ScopedSpan span(tracer, "evaluate", 0);
      result.evals.push_back({step + 1, EvaluateGlobalModel()});
    }
  }

  {
    obs::ScopedSpan span(tracer, "evaluate", 0);
    result.final_test_accuracy = EvaluateGlobalModel();
  }
  if (result.evals.empty() ||
      result.evals.back().step != config_.total_steps) {
    result.evals.push_back({config_.total_steps, result.final_test_accuracy});
  }
  result.final_train_loss = result.steps.back().loss;
  if (tel != nullptr) tel->Flush();
  return result;
}

}  // namespace threelc::train
