// TimeModel: turns a TrainResult's measured per-step traffic and codec CPU
// time into wall-clock training time under a given network — the same
// extrapolation arithmetic the paper applies to predict 10/100 Mbps
// training times from per-step measurements (§5.2).
//
// Because our substrate trains a smaller model than ResNet-110, the model
// optionally scales per-step bytes and codec seconds by `element_scale` =
// (paper model parameters / our model parameters). Both quantities are
// linear in tensor elements (verified by bench_kernels), so this recovers
// the paper's operating regime while every per-value quantity stays
// measured, not assumed.
#pragma once

#include <cstdint>

#include "net/bandwidth.h"
#include "train/trainer.h"

namespace threelc::train {

struct TimeModelConfig {
  net::LinkConfig link = net::LinkConfig::OneGbps();
  // Local compute per step (forward+backward on the accelerator). The
  // default approximates a ResNet-110 step on the paper's GTX 980s.
  double compute_seconds_per_step = 0.35;
  // Scale factor applied to bytes and codec seconds (see header comment).
  double element_scale = 1.0;
  // Fraction of transfer hidden behind compute by fine-grained barriers.
  double overlap_fraction = 0.0;
  // Workers sharing one shaped NIC (the paper's machines host 2 workers);
  // the per-step bottleneck is one machine's share of the traffic.
  int workers_per_machine = 2;

  // Paper-scale helper: ResNet-110 has ~1.73M parameters.
  static double PaperElementScale(std::int64_t our_model_parameters);
};

// Total simulated training seconds for the whole run.
double EstimateTrainingSeconds(const TrainResult& result,
                               const TimeModelConfig& config);

// Mean simulated seconds per training step.
double EstimatePerStepSeconds(const TrainResult& result,
                              const TimeModelConfig& config);

}  // namespace threelc::train
