// Shared experiment harness for the paper's evaluation (§5): the standard
// workload, the compared designs, and the bandwidth grid, so every bench
// binary reproduces its table/figure from the same configuration.
#pragma once

#include <string>
#include <vector>

#include "data/synthetic.h"
#include "net/bandwidth.h"
#include "train/model_zoo.h"
#include "train/time_model.h"
#include "train/trainer.h"

namespace threelc::train {

struct ExperimentConfig {
  data::SyntheticConfig data;
  MlpSpec model;
  TrainerConfig trainer;          // codec overridden per design
  std::int64_t standard_steps = 1200;  // our stand-in for 25,600 steps
  std::uint64_t model_seed = 1234;
};

// The paper-shaped default: 10 workers x batch 32, momentum 0.9, weight
// decay 1e-4, cosine decay, synthetic CIFAR-like data, MLP with one
// batch-norm (small-layer bypass exercised).
ExperimentConfig DefaultExperiment();

// A reduced configuration for fast smoke runs (tests, quick benches).
ExperimentConfig SmallExperiment();

// Run one design for `steps` steps on the given data.
TrainResult RunDesign(const ExperimentConfig& config,
                      const compress::CodecConfig& codec,
                      std::int64_t steps, const data::SyntheticData& data);

// The paper's three emulated links, in Table 1 column order.
std::vector<net::LinkConfig> PaperLinks();

// Time-model configuration for a link, using paper-scale element
// extrapolation for the given model size.
TimeModelConfig PaperTimeModel(const net::LinkConfig& link,
                               std::int64_t model_parameters);

// Speedup of `design` over `baseline` under `time_config` (total simulated
// training seconds ratio; both runs must use the same step count).
double Speedup(const TrainResult& baseline, const TrainResult& design,
               const TimeModelConfig& time_config);

}  // namespace threelc::train
