// Model builders for experiments, examples, and tests.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/model.h"
#include "util/rng.h"

namespace threelc::train {

struct MlpSpec {
  std::int64_t input_dim = 192;
  std::vector<std::int64_t> hidden = {128, 64};
  std::int64_t num_classes = 10;
  bool batch_norm = true;  // after the first hidden layer (small-layer path)
};

// Dense -> [BatchNorm] -> ReLU stacks ending in a linear classifier.
// All models built from the same spec and seed are architecturally and
// numerically identical — required for cloning the global model onto
// workers.
nn::Model BuildMlp(const MlpSpec& spec, std::uint64_t seed);

struct CnnSpec {
  std::int64_t channels = 3;
  std::int64_t height = 8;
  std::int64_t width = 8;
  std::int64_t conv_filters = 8;
  std::int64_t kernel = 3;
  std::int64_t dense_hidden = 32;
  std::int64_t num_classes = 10;
};

// Conv -> ReLU -> Flatten -> Dense -> ReLU -> Dense classifier. Used by the
// CNN example and integration tests (4-D state-change tensors).
nn::Model BuildCnn(const CnnSpec& spec, std::uint64_t seed);

}  // namespace threelc::train
