#include "train/model_zoo.h"

#include <string>

#include "nn/activation.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"

namespace threelc::train {

nn::Model BuildMlp(const MlpSpec& spec, std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Model model;
  std::int64_t in_dim = spec.input_dim;
  for (std::size_t i = 0; i < spec.hidden.size(); ++i) {
    const std::string tag = "fc" + std::to_string(i + 1);
    model.Emplace<nn::Dense>(tag, in_dim, spec.hidden[i], rng);
    if (spec.batch_norm && i == 0) {
      model.Emplace<nn::BatchNorm1d>(tag + "_bn", spec.hidden[i]);
    }
    model.Emplace<nn::Relu>(tag + "_relu");
    in_dim = spec.hidden[i];
  }
  model.Emplace<nn::Dense>("classifier", in_dim, spec.num_classes, rng);
  return model;
}

nn::Model BuildCnn(const CnnSpec& spec, std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Model model;
  auto& conv = model.Emplace<nn::Conv2d>("conv1", spec.channels,
                                         spec.conv_filters, spec.kernel,
                                         /*stride=*/1, /*padding=*/1, rng);
  model.Emplace<nn::Relu>("conv1_relu");
  model.Emplace<nn::Flatten>("flatten");
  const std::int64_t flat = spec.conv_filters * conv.OutSize(spec.height) *
                            conv.OutSize(spec.width);
  model.Emplace<nn::Dense>("fc1", flat, spec.dense_hidden, rng);
  model.Emplace<nn::Relu>("fc1_relu");
  model.Emplace<nn::Dense>("classifier", spec.dense_hidden, spec.num_classes,
                           rng);
  return model;
}

}  // namespace threelc::train
