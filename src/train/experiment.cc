#include "train/experiment.h"

#include "util/logging.h"

namespace threelc::train {

ExperimentConfig DefaultExperiment() {
  ExperimentConfig config;

  // Dataset sized so test accuracy *rises* with the step budget across the
  // paper's 25–100% budgets (no overfitting inversion): ample examples, a
  // noiseless teacher, and moderately hard cluster structure.
  config.data.num_train = 32768;
  config.data.num_test = 4096;
  config.data.input_dim = 192;  // 8x8x3 synthetic "images"
  config.data.num_classes = 10;
  config.data.label_noise = 0.0f;
  config.data.cluster_scale = 0.6f;
  config.data.seed = 42;

  config.model.input_dim = config.data.input_dim;
  config.model.hidden = {128, 64};
  config.model.num_classes = config.data.num_classes;
  config.model.batch_norm = true;

  config.trainer.num_workers = 10;
  config.trainer.batch_size = 32;
  config.trainer.lr_max = 0.1f;
  config.trainer.lr_min = 0.001f;
  config.trainer.optimizer.momentum = 0.9f;
  config.trainer.optimizer.weight_decay = 1e-4f;
  config.trainer.min_compress_elems = 256;  // batch-norm tensors bypass
  config.trainer.eval_every = 100;
  config.trainer.augment_noise = 0.05f;
  config.trainer.seed = 7;

  config.standard_steps = 1200;
  return config;
}

ExperimentConfig SmallExperiment() {
  ExperimentConfig config = DefaultExperiment();
  config.data.num_train = 2048;
  config.data.num_test = 512;
  config.trainer.num_workers = 4;
  config.trainer.eval_every = 50;
  config.standard_steps = 200;
  return config;
}

TrainResult RunDesign(const ExperimentConfig& config,
                      const compress::CodecConfig& codec, std::int64_t steps,
                      const data::SyntheticData& data) {
  TrainerConfig tc = config.trainer;
  tc.codec = codec;
  tc.total_steps = steps;
  const MlpSpec spec = config.model;
  const std::uint64_t model_seed = config.model_seed;
  DistributedTrainer trainer(
      tc, [spec, model_seed] { return BuildMlp(spec, model_seed); },
      data.train, data.test);
  return trainer.Run();
}

std::vector<net::LinkConfig> PaperLinks() {
  return {net::LinkConfig::TenMbps(), net::LinkConfig::HundredMbps(),
          net::LinkConfig::OneGbps()};
}

TimeModelConfig PaperTimeModel(const net::LinkConfig& link,
                               std::int64_t model_parameters) {
  TimeModelConfig tm;
  tm.link = link;
  tm.compute_seconds_per_step = 0.35;
  tm.element_scale = TimeModelConfig::PaperElementScale(model_parameters);
  return tm;
}

double Speedup(const TrainResult& baseline, const TrainResult& design,
               const TimeModelConfig& time_config) {
  const double design_time = EstimateTrainingSeconds(design, time_config);
  THREELC_CHECK(design_time > 0.0);
  return EstimateTrainingSeconds(baseline, time_config) / design_time;
}

}  // namespace threelc::train
