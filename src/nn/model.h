// Sequential model container.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "nn/loss.h"

namespace threelc::nn {

class Model {
 public:
  Model() = default;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  // Append a layer; returns a reference for inline chaining.
  Layer& Add(std::unique_ptr<Layer> layer);

  template <typename L, typename... Args>
  L& Emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    Add(std::move(layer));
    return ref;
  }

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  // Forward through all layers.
  Tensor Forward(const Tensor& input, bool training);
  // Backward through all layers (after a Forward on the same batch).
  // Fills every parameter gradient; returns dL/d(input).
  Tensor Backward(const Tensor& grad_output);

  // All parameters, in deterministic layer order.
  std::vector<ParamRef> Params();
  // Total number of scalar parameters.
  std::int64_t NumParameters();
  void ZeroGrads();

  // All non-trainable buffers (batch-norm running statistics).
  std::vector<Tensor*> Buffers();

  // Copy parameter *values* (not gradients) from another model with an
  // identical architecture. Used to clone the global model onto workers.
  void CopyParamsFrom(Model& other);

  // Copy non-trainable buffers from another model (e.g. the designated
  // batch-norm worker's running statistics onto the global eval model).
  void CopyBuffersFrom(Model& other);

  // Convenience: forward + loss on a labeled batch (training mode), filling
  // gradients via backward.
  LossResult TrainStep(const Tensor& input,
                       const std::vector<std::int32_t>& labels);

  // Forward in eval mode and compute top-1 accuracy.
  double Evaluate(const Tensor& input, const std::vector<std::int32_t>& labels);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace threelc::nn
