#include "nn/conv2d.h"

#include "util/logging.h"

namespace threelc::nn {

Conv2d::Conv2d(std::string name, std::int64_t in_channels,
               std::int64_t out_channels, std::int64_t kernel,
               std::int64_t stride, std::int64_t padding, util::Rng& rng)
    : name_(std::move(name)),
      in_c_(in_channels),
      out_c_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      w_(Shape{out_channels, in_channels, kernel, kernel}),
      b_(Shape{out_channels}),
      gw_(Shape{out_channels, in_channels, kernel, kernel}),
      gb_(Shape{out_channels}) {
  THREELC_CHECK(stride >= 1 && kernel >= 1 && padding >= 0);
  HeInit(w_, in_channels * kernel * kernel, rng);
}

Tensor Conv2d::Forward(const Tensor& input, bool /*training*/) {
  THREELC_CHECK_MSG(
      input.shape().rank() == 4 && input.shape().dim(1) == in_c_,
      "Conv2d " << name_ << ": bad input shape " << input.shape().ToString());
  input_cache_ = input;
  const std::int64_t batch = input.shape().dim(0);
  const std::int64_t h = input.shape().dim(2);
  const std::int64_t w = input.shape().dim(3);
  const std::int64_t oh = OutSize(h);
  const std::int64_t ow = OutSize(w);
  THREELC_CHECK_MSG(oh >= 1 && ow >= 1, "Conv2d " << name_ << ": output empty");

  Tensor out(Shape{batch, out_c_, oh, ow});
  const float* x = input.data();
  const float* ker = w_.data();
  const float* bias = b_.data();
  float* y = out.data();

  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t oc = 0; oc < out_c_; ++oc) {
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j) {
          float acc = bias[oc];
          for (std::int64_t ic = 0; ic < in_c_; ++ic) {
            for (std::int64_t ki = 0; ki < kernel_; ++ki) {
              const std::int64_t yi = i * stride_ + ki - padding_;
              if (yi < 0 || yi >= h) continue;
              for (std::int64_t kj = 0; kj < kernel_; ++kj) {
                const std::int64_t xj = j * stride_ + kj - padding_;
                if (xj < 0 || xj >= w) continue;
                acc += x[((n * in_c_ + ic) * h + yi) * w + xj] *
                       ker[((oc * in_c_ + ic) * kernel_ + ki) * kernel_ + kj];
              }
            }
          }
          y[((n * out_c_ + oc) * oh + i) * ow + j] = acc;
        }
      }
    }
  }
  return out;
}

Tensor Conv2d::Backward(const Tensor& grad_output) {
  const Tensor& input = input_cache_;
  const std::int64_t batch = input.shape().dim(0);
  const std::int64_t h = input.shape().dim(2);
  const std::int64_t w = input.shape().dim(3);
  const std::int64_t oh = OutSize(h);
  const std::int64_t ow = OutSize(w);
  THREELC_CHECK(grad_output.shape().rank() == 4 &&
                grad_output.shape().dim(0) == batch &&
                grad_output.shape().dim(1) == out_c_ &&
                grad_output.shape().dim(2) == oh &&
                grad_output.shape().dim(3) == ow);

  gw_.SetZero();
  gb_.SetZero();
  Tensor grad_input(input.shape());
  const float* x = input.data();
  const float* gy = grad_output.data();
  const float* ker = w_.data();
  float* gx = grad_input.data();
  float* gw = gw_.data();
  float* gb = gb_.data();

  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t oc = 0; oc < out_c_; ++oc) {
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j) {
          const float g = gy[((n * out_c_ + oc) * oh + i) * ow + j];
          gb[oc] += g;
          for (std::int64_t ic = 0; ic < in_c_; ++ic) {
            for (std::int64_t ki = 0; ki < kernel_; ++ki) {
              const std::int64_t yi = i * stride_ + ki - padding_;
              if (yi < 0 || yi >= h) continue;
              for (std::int64_t kj = 0; kj < kernel_; ++kj) {
                const std::int64_t xj = j * stride_ + kj - padding_;
                if (xj < 0 || xj >= w) continue;
                const std::size_t xi_idx = ((n * in_c_ + ic) * h + yi) * w + xj;
                const std::size_t k_idx =
                    ((oc * in_c_ + ic) * kernel_ + ki) * kernel_ + kj;
                gw[k_idx] += g * x[xi_idx];
                gx[xi_idx] += g * ker[k_idx];
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::vector<ParamRef> Conv2d::Params() {
  return {
      ParamRef{name_ + "/W", &w_, &gw_, /*compress=*/true,
               /*weight_decay=*/true},
      ParamRef{name_ + "/b", &b_, &gb_, /*compress=*/true,
               /*weight_decay=*/false},
  };
}

}  // namespace threelc::nn
