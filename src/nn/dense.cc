#include "nn/dense.h"

#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace threelc::nn {

Dense::Dense(std::string name, std::int64_t in_features,
             std::int64_t out_features, util::Rng& rng)
    : name_(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      w_(Shape{in_features, out_features}),
      b_(Shape{out_features}),
      gw_(Shape{in_features, out_features}),
      gb_(Shape{out_features}) {
  HeInit(w_, in_features, rng);
}

Tensor Dense::Forward(const Tensor& input, bool /*training*/) {
  THREELC_CHECK_MSG(input.shape().rank() == 2 &&
                        input.shape().dim(1) == in_features_,
                    "Dense " << name_ << ": bad input shape "
                             << input.shape().ToString());
  input_cache_ = input;
  const std::int64_t batch = input.shape().dim(0);
  Tensor out(Shape{batch, out_features_});
  tensor::Matmul(input, w_, out);
  // Broadcast-add bias across the batch.
  float* o = out.data();
  const float* bias = b_.data();
  for (std::int64_t i = 0; i < batch; ++i) {
    float* row = o + i * out_features_;
    for (std::int64_t j = 0; j < out_features_; ++j) row[j] += bias[j];
  }
  return out;
}

Tensor Dense::Backward(const Tensor& grad_output) {
  const std::int64_t batch = input_cache_.shape().dim(0);
  THREELC_CHECK_MSG(grad_output.shape().rank() == 2 &&
                        grad_output.shape().dim(0) == batch &&
                        grad_output.shape().dim(1) == out_features_,
                    "Dense " << name_ << ": bad grad shape");
  // dW = X^T * dY
  tensor::MatmulTransA(input_cache_, grad_output, gw_);
  // db = column sums of dY
  gb_.SetZero();
  const float* g = grad_output.data();
  float* gb = gb_.data();
  for (std::int64_t i = 0; i < batch; ++i) {
    const float* row = g + i * out_features_;
    for (std::int64_t j = 0; j < out_features_; ++j) gb[j] += row[j];
  }
  // dX = dY * W^T
  Tensor grad_input(Shape{batch, in_features_});
  tensor::MatmulTransB(grad_output, w_, grad_input);
  return grad_input;
}

std::vector<ParamRef> Dense::Params() {
  return {
      ParamRef{name_ + "/W", &w_, &gw_, /*compress=*/true,
               /*weight_decay=*/true},
      ParamRef{name_ + "/b", &b_, &gb_, /*compress=*/true,
               /*weight_decay=*/false},
  };
}

}  // namespace threelc::nn
