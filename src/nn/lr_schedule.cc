#include "nn/lr_schedule.h"

#include <cmath>
#include <numbers>

#include "util/logging.h"

namespace threelc::nn {

CosineDecay::CosineDecay(float lr_max, float lr_min, std::int64_t total_steps)
    : lr_max_(lr_max), lr_min_(lr_min), total_steps_(total_steps) {
  THREELC_CHECK(total_steps >= 1);
}

float CosineDecay::At(std::int64_t step) const {
  if (step >= total_steps_) return lr_min_;
  if (step < 0) step = 0;
  const double t = static_cast<double>(step) / static_cast<double>(total_steps_);
  const double cos_term = 0.5 * (1.0 + std::cos(std::numbers::pi * t));
  return static_cast<float>(lr_min_ + (lr_max_ - lr_min_) * cos_term);
}

StepwiseDecay::StepwiseDecay(float lr_max, std::int64_t total_steps)
    : lr_max_(lr_max), total_steps_(total_steps) {
  THREELC_CHECK(total_steps >= 1);
}

float StepwiseDecay::At(std::int64_t step) const {
  const double t = static_cast<double>(step) / static_cast<double>(total_steps_);
  if (t < 0.5) return lr_max_;
  if (t < 0.75) return lr_max_ * 0.1f;
  return lr_max_ * 0.01f;
}

}  // namespace threelc::nn
