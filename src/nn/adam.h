// Adam optimizer (Kingma & Ba) — an alternative server-side optimizer for
// workloads where momentum SGD underperforms; exercises the trainer with
// optimizer state beyond a single velocity buffer.
#pragma once

#include <string>
#include <unordered_map>

#include "nn/layer.h"
#include "nn/optimizer.h"

namespace threelc::nn {

struct AdamOptions {
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;  // decoupled (AdamW-style)
};

class Adam final : public Optimizer {
 public:
  explicit Adam(AdamOptions options = {});

  // w -= lr * ( m_hat / (sqrt(v_hat) + eps) + wd * w ).
  void ApplyGradients(std::vector<ParamRef>& params, float lr) override;

  std::int64_t step_count() const { return t_; }

 private:
  struct Moments {
    Tensor m;
    Tensor v;
  };
  AdamOptions options_;
  std::unordered_map<std::string, Moments> moments_;
  std::int64_t t_ = 0;
};

}  // namespace threelc::nn
