// Stateless activation layers.
#pragma once

#include "nn/layer.h"

namespace threelc::nn {

class Relu final : public Layer {
 public:
  explicit Relu(std::string name = "relu") : name_(std::move(name)) {}

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  std::string name_;
  Tensor input_cache_;
};

// Flattens [batch, d1, d2, ...] into [batch, d1*d2*...]; used between conv
// and dense stages.
class Flatten final : public Layer {
 public:
  explicit Flatten(std::string name = "flatten") : name_(std::move(name)) {}

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  std::string name_;
  Shape input_shape_;
};

}  // namespace threelc::nn
