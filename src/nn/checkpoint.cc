#include "nn/checkpoint.h"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "util/crc32.h"

namespace threelc::nn {

namespace {

constexpr char kMagic[4] = {'3', 'L', 'C', 'K'};
constexpr std::uint32_t kVersionPlain = 1;     // no trailer
constexpr std::uint32_t kVersionChecksum = 2;  // CRC32C trailer

struct NamedTensor {
  std::string name;
  Tensor* tensor;
};

std::vector<NamedTensor> CollectTensors(Model& model) {
  std::vector<NamedTensor> tensors;
  for (auto& p : model.Params()) tensors.push_back({p.name, p.value});
  auto buffers = model.Buffers();
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    tensors.push_back({"__buffer_" + std::to_string(i), buffers[i]});
  }
  return tensors;
}

// Stream wrappers that fold every byte written/read after the version
// field into a running CRC32C, so the trailer covers the whole body
// without buffering the checkpoint in memory.
struct CrcWriter {
  std::ofstream& out;
  std::uint32_t crc = 0;

  void Write(const void* data, std::size_t n) {
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(n));
    crc = util::Crc32cExtend(crc, data, n);
  }
  template <typename T>
  void WriteScalar(T v) {
    Write(&v, sizeof(T));
  }
};

struct CrcReader {
  std::ifstream& in;
  std::uint32_t crc = 0;

  void Read(void* data, std::size_t n) {
    in.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (!in) throw std::runtime_error("checkpoint: unexpected end of file");
    crc = util::Crc32cExtend(crc, data, n);
  }
  template <typename T>
  T ReadScalar() {
    T v;
    Read(&v, sizeof(T));
    return v;
  }
};

template <typename T>
T ReadScalarRaw(std::ifstream& in) {
  T v;
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("checkpoint: unexpected end of file");
  return v;
}

}  // namespace

void SaveCheckpoint(Model& model, const std::string& path, bool checksum) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("checkpoint: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  const std::uint32_t version = checksum ? kVersionChecksum : kVersionPlain;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));

  CrcWriter body{out};
  auto tensors = CollectTensors(model);
  body.WriteScalar<std::uint32_t>(static_cast<std::uint32_t>(tensors.size()));
  for (auto& [name, tensor] : tensors) {
    body.WriteScalar<std::uint32_t>(static_cast<std::uint32_t>(name.size()));
    body.Write(name.data(), name.size());
    const auto& dims = tensor->shape().dims();
    body.WriteScalar<std::uint32_t>(static_cast<std::uint32_t>(dims.size()));
    for (auto d : dims) body.WriteScalar<std::int64_t>(d);
    body.Write(tensor->data(), tensor->byte_size());
  }
  if (checksum) {
    out.write(reinterpret_cast<const char*>(&body.crc), sizeof(body.crc));
  }
  if (!out) throw std::runtime_error("checkpoint: write failed for " + path);
}

void LoadCheckpoint(Model& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("checkpoint: bad magic in " + path);
  }
  const auto version = ReadScalarRaw<std::uint32_t>(in);
  if (version != kVersionPlain && version != kVersionChecksum) {
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(version));
  }

  CrcReader body{in};
  auto tensors = CollectTensors(model);
  const auto count = body.ReadScalar<std::uint32_t>();
  if (count != tensors.size()) {
    throw std::runtime_error("checkpoint: tensor count mismatch");
  }
  for (auto& [name, tensor] : tensors) {
    const auto name_len = body.ReadScalar<std::uint32_t>();
    std::string stored_name(name_len, '\0');
    body.Read(stored_name.data(), name_len);
    if (stored_name != name) {
      throw std::runtime_error("checkpoint: tensor name mismatch: expected " +
                               name + ", found " + stored_name);
    }
    const auto rank = body.ReadScalar<std::uint32_t>();
    std::vector<std::int64_t> dims(rank);
    for (auto& d : dims) d = body.ReadScalar<std::int64_t>();
    if (tensor::Shape(dims) != tensor->shape()) {
      throw std::runtime_error("checkpoint: shape mismatch for " + name);
    }
    body.Read(tensor->data(), tensor->byte_size());
  }
  if (version >= kVersionChecksum) {
    const auto stored = ReadScalarRaw<std::uint32_t>(in);
    if (stored != body.crc) {
      throw std::runtime_error("checkpoint: CRC32C mismatch in " + path +
                               " (file corrupt)");
    }
  }
}

}  // namespace threelc::nn
