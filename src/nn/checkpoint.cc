#include "nn/checkpoint.h"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace threelc::nn {

namespace {

constexpr char kMagic[4] = {'3', 'L', 'C', 'K'};
constexpr std::uint32_t kVersion = 1;

struct NamedTensor {
  std::string name;
  Tensor* tensor;
};

std::vector<NamedTensor> CollectTensors(Model& model) {
  std::vector<NamedTensor> tensors;
  for (auto& p : model.Params()) tensors.push_back({p.name, p.value});
  auto buffers = model.Buffers();
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    tensors.push_back({"__buffer_" + std::to_string(i), buffers[i]});
  }
  return tensors;
}

template <typename T>
void WriteScalar(std::ofstream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T ReadScalar(std::ifstream& in) {
  T v;
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("checkpoint: unexpected end of file");
  return v;
}

}  // namespace

void SaveCheckpoint(Model& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("checkpoint: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  WriteScalar<std::uint32_t>(out, kVersion);
  auto tensors = CollectTensors(model);
  WriteScalar<std::uint32_t>(out, static_cast<std::uint32_t>(tensors.size()));
  for (auto& [name, tensor] : tensors) {
    WriteScalar<std::uint32_t>(out, static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    const auto& dims = tensor->shape().dims();
    WriteScalar<std::uint32_t>(out, static_cast<std::uint32_t>(dims.size()));
    for (auto d : dims) WriteScalar<std::int64_t>(out, d);
    out.write(reinterpret_cast<const char*>(tensor->data()),
              static_cast<std::streamsize>(tensor->byte_size()));
  }
  if (!out) throw std::runtime_error("checkpoint: write failed for " + path);
}

void LoadCheckpoint(Model& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("checkpoint: bad magic in " + path);
  }
  const auto version = ReadScalar<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(version));
  }
  auto tensors = CollectTensors(model);
  const auto count = ReadScalar<std::uint32_t>(in);
  if (count != tensors.size()) {
    throw std::runtime_error("checkpoint: tensor count mismatch");
  }
  for (auto& [name, tensor] : tensors) {
    const auto name_len = ReadScalar<std::uint32_t>(in);
    std::string stored_name(name_len, '\0');
    in.read(stored_name.data(), name_len);
    if (!in || stored_name != name) {
      throw std::runtime_error("checkpoint: tensor name mismatch: expected " +
                               name + ", found " + stored_name);
    }
    const auto rank = ReadScalar<std::uint32_t>(in);
    std::vector<std::int64_t> dims(rank);
    for (auto& d : dims) d = ReadScalar<std::int64_t>(in);
    if (tensor::Shape(dims) != tensor->shape()) {
      throw std::runtime_error("checkpoint: shape mismatch for " + name);
    }
    in.read(reinterpret_cast<char*>(tensor->data()),
            static_cast<std::streamsize>(tensor->byte_size()));
    if (!in) throw std::runtime_error("checkpoint: truncated data for " + name);
  }
}

}  // namespace threelc::nn
