#include "nn/checkpoint.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <iterator>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "blockcodec/block_codec.h"
#include "util/atomic_file.h"
#include "util/byte_buffer.h"
#include "util/crc32.h"

namespace threelc::nn {

namespace {

constexpr char kMagic[4] = {'3', 'L', 'C', 'K'};
constexpr std::uint32_t kVersionPlain = 1;       // no trailer
constexpr std::uint32_t kVersionChecksum = 2;    // CRC32C trailer
constexpr std::uint32_t kVersionTrainState = 3;  // + training-state section

// Server checkpoints: distinct magic, own version counter. The body is
// CRC-protected like a v2+ model checkpoint.
constexpr char kServerMagic[4] = {'3', 'L', 'C', 'S'};
constexpr std::uint32_t kServerVersion = 1;

// Compressed container ("3LCZ"): an outer wrapper holding a complete
// model or server checkpoint blob run through a blockcodec. Layout:
//   magic "3LCZ" | u32 container_version | u8 codec_id | u64 raw_size
//   | u32 raw_crc32c | u32 comp_size | comp bytes (nothing after)
// Loaders accept either form: a file starting with "3LCZ" is unwrapped
// (strictly: comp_size must consume the rest of the file, the decoded
// length must equal raw_size, and the decoded bytes must match
// raw_crc32c) before the inner magic is even looked at; any other file
// is parsed as a bare checkpoint, so pre-container files keep loading.
constexpr char kContainerMagic[4] = {'3', 'L', 'C', 'Z'};
constexpr std::uint32_t kContainerVersion = 1;
constexpr std::size_t kContainerHeaderBytes = 4 + 4 + 1 + 8 + 4 + 4;
// Defense against a corrupt raw_size committing us to a huge allocation;
// far above any checkpoint this repo writes.
constexpr std::uint64_t kMaxContainerRawBytes = 1ull << 32;

struct NamedTensor {
  std::string name;
  Tensor* tensor;
};

std::vector<NamedTensor> CollectTensors(Model& model) {
  std::vector<NamedTensor> tensors;
  for (auto& p : model.Params()) tensors.push_back({p.name, p.value});
  auto buffers = model.Buffers();
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    tensors.push_back({"__buffer_" + std::to_string(i), buffers[i]});
  }
  return tensors;
}

// Stream wrappers that fold every byte written/read after the version
// field into a running CRC32C, so the trailer covers the whole body.
// Writes accumulate the complete blob in memory (checkpoints here are
// small — a model plus bounded state) so the container path can compress
// it as one block; the blob then goes to disk through an
// AtomicFileWriter (temp + fsync + rename), so an exception or crash at
// any point leaves the previous checkpoint intact.
struct CrcWriter {
  util::ByteBuffer& out;
  std::uint32_t crc = 0;

  void Write(const void* data, std::size_t n) {
    if (n == 0) return;
    out.Append(data, n);
    crc = util::Crc32cExtend(crc, data, n);
  }
  template <typename T>
  void WriteScalar(T v) {
    Write(&v, sizeof(T));
  }
};

struct CrcReader {
  std::istream& in;
  std::uint32_t crc = 0;

  void Read(void* data, std::size_t n) {
    if (n == 0) return;
    in.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (!in) throw std::runtime_error("checkpoint: unexpected end of file");
    crc = util::Crc32cExtend(crc, data, n);
  }
  template <typename T>
  T ReadScalar() {
    T v;
    Read(&v, sizeof(T));
    return v;
  }
};

template <typename T>
T ReadScalarRaw(std::istream& in) {
  T v;
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("checkpoint: unexpected end of file");
  return v;
}

// Atomically write a finished checkpoint blob, optionally wrapped in the
// compressed container. `store` (or a block the codec cannot shrink —
// the skip-if-incompressible escape) writes the bare blob, byte-for-byte
// what pre-container versions wrote.
void WriteBlob(const std::string& path, const util::ByteBuffer& blob,
               const std::string& block_codec, const char* what,
               util::Fs* fs) {
  const blockcodec::BlockCodec* codec = blockcodec::Find(block_codec);
  if (codec == nullptr) {
    throw std::runtime_error(std::string(what) + ": unknown block codec '" +
                             block_codec + "' (known: " +
                             blockcodec::KnownNames() + ")");
  }
  util::AtomicFileWriter out(path, fs);
  bool wrapped = false;
  if (codec->id() != blockcodec::kStoreId) {
    util::ByteBuffer encoded;
    codec->Encode(blob.span(), encoded);
    if (encoded.size() + kContainerHeaderBytes < blob.size()) {
      util::ByteBuffer header;
      header.Append(kContainerMagic, sizeof(kContainerMagic));
      header.AppendU32(kContainerVersion);
      header.AppendU8(codec->id());
      header.AppendU64(static_cast<std::uint64_t>(blob.size()));
      header.AppendU32(util::Crc32c(blob.data(), blob.size()));
      header.AppendU32(static_cast<std::uint32_t>(encoded.size()));
      out.Write(header.data(), header.size());
      out.Write(encoded.data(), encoded.size());
      wrapped = true;
    }
  }
  if (!wrapped) out.Write(blob.data(), blob.size());
  out.Commit();
}

// Read the whole file, unwrapping (and strictly validating) the "3LCZ"
// container when present. Returns the bare checkpoint bytes.
std::vector<std::uint8_t> ReadCheckpointBytes(const std::string& path,
                                              const char* what) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(std::string(what) + ": cannot open " + path);
  }
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  if (bytes.size() < sizeof(kContainerMagic) ||
      std::memcmp(bytes.data(), kContainerMagic,
                  sizeof(kContainerMagic)) != 0) {
    return bytes;  // bare (pre-container) checkpoint
  }
  try {
    util::ByteReader reader(util::ByteSpan(bytes.data(), bytes.size()));
    reader.ReadSpan(sizeof(kContainerMagic));
    const std::uint32_t version = reader.ReadU32();
    if (version != kContainerVersion) {
      throw std::runtime_error("unsupported container version " +
                               std::to_string(version));
    }
    const std::uint8_t codec_id = reader.ReadU8();
    const blockcodec::BlockCodec* codec = blockcodec::FindById(codec_id);
    if (codec == nullptr) {
      throw std::runtime_error("unknown block codec id " +
                               std::to_string(static_cast<int>(codec_id)));
    }
    const std::uint64_t raw_size = reader.ReadU64();
    if (raw_size > kMaxContainerRawBytes) {
      throw std::runtime_error("declared raw size " +
                               std::to_string(raw_size) + " is implausible");
    }
    const std::uint32_t raw_crc = reader.ReadU32();
    const std::uint32_t comp_size = reader.ReadU32();
    util::ByteSpan comp = reader.ReadSpan(comp_size);
    if (!reader.AtEnd()) {
      throw std::runtime_error("trailing bytes after compressed payload");
    }
    util::ByteBuffer decoded;
    codec->Decode(comp, static_cast<std::size_t>(raw_size), decoded);
    // Cross-check both invariants independently: the decoded length must
    // equal the declared raw size AND the decoded bytes must match the
    // stored CRC. Either failing means the container lies about its
    // contents — reject rather than hand corrupt bytes to the parser.
    if (decoded.size() != raw_size) {
      throw std::runtime_error("decoded length " +
                               std::to_string(decoded.size()) +
                               " != declared raw size " +
                               std::to_string(raw_size));
    }
    if (util::Crc32c(decoded.data(), decoded.size()) != raw_crc) {
      throw std::runtime_error("decoded bytes fail the container CRC32C");
    }
    return std::vector<std::uint8_t>(decoded.data(),
                                     decoded.data() + decoded.size());
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string(what) +
                             ": bad compressed container in " + path + ": " +
                             e.what());
  }
}

// In-memory istream over the (possibly unwrapped) checkpoint bytes, so
// one parser serves bare files and container contents alike.
std::istringstream MemoryStream(const std::vector<std::uint8_t>& bytes) {
  return std::istringstream(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()),
      std::ios::binary);
}

void WriteTensorSection(CrcWriter& body, Model& model) {
  auto tensors = CollectTensors(model);
  body.WriteScalar<std::uint32_t>(static_cast<std::uint32_t>(tensors.size()));
  for (auto& [name, tensor] : tensors) {
    body.WriteScalar<std::uint32_t>(static_cast<std::uint32_t>(name.size()));
    body.Write(name.data(), name.size());
    const auto& dims = tensor->shape().dims();
    body.WriteScalar<std::uint32_t>(static_cast<std::uint32_t>(dims.size()));
    for (auto d : dims) body.WriteScalar<std::int64_t>(d);
    body.Write(tensor->data(), tensor->byte_size());
  }
}

void ReadTensorSection(CrcReader& body, Model& model) {
  auto tensors = CollectTensors(model);
  const auto count = body.ReadScalar<std::uint32_t>();
  if (count != tensors.size()) {
    throw std::runtime_error("checkpoint: tensor count mismatch");
  }
  for (auto& [name, tensor] : tensors) {
    const auto name_len = body.ReadScalar<std::uint32_t>();
    std::string stored_name(name_len, '\0');
    body.Read(stored_name.data(), name_len);
    if (stored_name != name) {
      throw std::runtime_error("checkpoint: tensor name mismatch: expected " +
                               name + ", found " + stored_name);
    }
    const auto rank = body.ReadScalar<std::uint32_t>();
    std::vector<std::int64_t> dims(rank);
    for (auto& d : dims) d = body.ReadScalar<std::int64_t>();
    if (tensor::Shape(dims) != tensor->shape()) {
      throw std::runtime_error("checkpoint: shape mismatch for " + name);
    }
    body.Read(tensor->data(), tensor->byte_size());
  }
}

void WriteStateSection(CrcWriter& body, const TrainState& state) {
  body.WriteScalar<std::uint64_t>(state.next_step);
  body.WriteScalar<std::uint32_t>(
      static_cast<std::uint32_t>(state.codec_state.size()));
  body.Write(state.codec_state.data(), state.codec_state.size());
  body.WriteScalar<std::uint32_t>(
      static_cast<std::uint32_t>(state.sampler_state.size()));
  body.Write(state.sampler_state.data(), state.sampler_state.size());
}

void ReadStateSection(CrcReader& body, TrainState* state) {
  state->next_step = body.ReadScalar<std::uint64_t>();
  state->codec_state.resize(body.ReadScalar<std::uint32_t>());
  body.Read(state->codec_state.data(), state->codec_state.size());
  state->sampler_state.resize(body.ReadScalar<std::uint32_t>());
  body.Read(state->sampler_state.data(), state->sampler_state.size());
}

void CheckVersion(std::uint32_t version, const std::string& path) {
  if (version < kVersionPlain || version > kVersionTrainState) {
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(version) + " in " + path);
  }
}

// Shared load path: restores tensors, fills *state from a v3 section when
// requested (require_state), otherwise validates and discards it, and
// verifies the CRC trailer for version >= 2.
void LoadImpl(Model& model, TrainState* state, bool require_state,
              const std::string& path) {
  const std::vector<std::uint8_t> bytes =
      ReadCheckpointBytes(path, "checkpoint");
  std::istringstream in = MemoryStream(bytes);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("checkpoint: bad magic in " + path);
  }
  const auto version = ReadScalarRaw<std::uint32_t>(in);
  CheckVersion(version, path);
  if (require_state && version < kVersionTrainState) {
    throw std::runtime_error(
        "checkpoint: " + path + " (version " + std::to_string(version) +
        ") has no training-state section; cannot resume exactly");
  }

  CrcReader body{in};
  ReadTensorSection(body, model);
  if (version >= kVersionTrainState) {
    TrainState discard;
    ReadStateSection(body, state != nullptr ? state : &discard);
  }
  if (version >= kVersionChecksum) {
    const auto stored = ReadScalarRaw<std::uint32_t>(in);
    if (stored != body.crc) {
      throw std::runtime_error("checkpoint: CRC32C mismatch in " + path +
                               " (file corrupt)");
    }
  }
}

void WriteServerStateSection(CrcWriter& body, const ServerState& state) {
  if (state.evicted.size() != state.greeted.size()) {
    throw std::runtime_error(
        "server checkpoint: evicted/greeted table size mismatch");
  }
  body.WriteScalar<std::uint64_t>(state.epoch);
  body.WriteScalar<std::uint64_t>(state.next_step);
  body.WriteScalar<std::uint32_t>(
      static_cast<std::uint32_t>(state.ps_state.size()));
  body.Write(state.ps_state.data(), state.ps_state.size());
  body.WriteScalar<std::uint32_t>(
      static_cast<std::uint32_t>(state.evicted.size()));
  body.Write(state.evicted.data(), state.evicted.size());
  body.Write(state.greeted.data(), state.greeted.size());
  body.WriteScalar<std::uint32_t>(
      static_cast<std::uint32_t>(state.replay.size()));
  for (const auto& entry : state.replay) {
    body.WriteScalar<std::uint64_t>(entry.step);
    body.WriteScalar<std::uint32_t>(
        static_cast<std::uint32_t>(entry.frames.size()));
    for (const auto& frame : entry.frames) {
      body.WriteScalar<std::uint32_t>(static_cast<std::uint32_t>(frame.size()));
      body.Write(frame.data(), frame.size());
    }
  }
}

void ReadServerStateSection(CrcReader& body, ServerState* state) {
  state->epoch = body.ReadScalar<std::uint64_t>();
  state->next_step = body.ReadScalar<std::uint64_t>();
  state->ps_state.resize(body.ReadScalar<std::uint32_t>());
  body.Read(state->ps_state.data(), state->ps_state.size());
  const auto workers = body.ReadScalar<std::uint32_t>();
  state->evicted.resize(workers);
  body.Read(state->evicted.data(), state->evicted.size());
  state->greeted.resize(workers);
  body.Read(state->greeted.data(), state->greeted.size());
  state->replay.resize(body.ReadScalar<std::uint32_t>());
  for (auto& entry : state->replay) {
    entry.step = body.ReadScalar<std::uint64_t>();
    entry.frames.resize(body.ReadScalar<std::uint32_t>());
    for (auto& frame : entry.frames) {
      frame.resize(body.ReadScalar<std::uint32_t>());
      body.Read(frame.data(), frame.size());
    }
  }
}

}  // namespace

void SaveCheckpoint(Model& model, const std::string& path, bool checksum,
                    const std::string& block_codec, util::Fs* fs) {
  util::ByteBuffer blob;
  blob.Append(kMagic, sizeof(kMagic));
  const std::uint32_t version = checksum ? kVersionChecksum : kVersionPlain;
  blob.Append(&version, sizeof(version));

  CrcWriter body{blob};
  WriteTensorSection(body, model);
  if (checksum) blob.Append(&body.crc, sizeof(body.crc));
  WriteBlob(path, blob, block_codec, "checkpoint", fs);
}

void SaveCheckpointWithState(Model& model, const TrainState& state,
                             const std::string& path,
                             const std::string& block_codec, util::Fs* fs) {
  util::ByteBuffer blob;
  blob.Append(kMagic, sizeof(kMagic));
  const std::uint32_t version = kVersionTrainState;
  blob.Append(&version, sizeof(version));

  CrcWriter body{blob};
  WriteTensorSection(body, model);
  WriteStateSection(body, state);
  blob.Append(&body.crc, sizeof(body.crc));
  WriteBlob(path, blob, block_codec, "checkpoint", fs);
}

void LoadCheckpoint(Model& model, const std::string& path) {
  LoadImpl(model, nullptr, /*require_state=*/false, path);
}

void LoadCheckpointState(Model& model, TrainState* state,
                         const std::string& path) {
  LoadImpl(model, state, /*require_state=*/true, path);
}

void SaveServerCheckpoint(Model& model, const ServerState& state,
                          const std::string& path,
                          const std::string& block_codec, util::Fs* fs) {
  util::ByteBuffer blob;
  blob.Append(kServerMagic, sizeof(kServerMagic));
  const std::uint32_t version = kServerVersion;
  blob.Append(&version, sizeof(version));

  CrcWriter body{blob};
  WriteTensorSection(body, model);
  WriteServerStateSection(body, state);
  blob.Append(&body.crc, sizeof(body.crc));
  WriteBlob(path, blob, block_codec, "server checkpoint", fs);
}

void LoadServerCheckpoint(Model& model, ServerState* state,
                          const std::string& path) {
  const std::vector<std::uint8_t> bytes =
      ReadCheckpointBytes(path, "server checkpoint");
  std::istringstream in = MemoryStream(bytes);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kServerMagic, sizeof(kServerMagic)) != 0) {
    throw std::runtime_error("server checkpoint: bad magic in " + path);
  }
  const auto version = ReadScalarRaw<std::uint32_t>(in);
  if (version != kServerVersion) {
    throw std::runtime_error("server checkpoint: unsupported version " +
                             std::to_string(version) + " in " + path);
  }
  CrcReader body{in};
  ReadTensorSection(body, model);
  ReadServerStateSection(body, state);
  const auto stored = ReadScalarRaw<std::uint32_t>(in);
  if (stored != body.crc) {
    throw std::runtime_error("server checkpoint: CRC32C mismatch in " + path +
                             " (file corrupt)");
  }
}

}  // namespace threelc::nn
