#include "nn/checkpoint.h"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "util/atomic_file.h"
#include "util/crc32.h"

namespace threelc::nn {

namespace {

constexpr char kMagic[4] = {'3', 'L', 'C', 'K'};
constexpr std::uint32_t kVersionPlain = 1;       // no trailer
constexpr std::uint32_t kVersionChecksum = 2;    // CRC32C trailer
constexpr std::uint32_t kVersionTrainState = 3;  // + training-state section

// Server checkpoints: distinct magic, own version counter. The body is
// CRC-protected like a v2+ model checkpoint.
constexpr char kServerMagic[4] = {'3', 'L', 'C', 'S'};
constexpr std::uint32_t kServerVersion = 1;

struct NamedTensor {
  std::string name;
  Tensor* tensor;
};

std::vector<NamedTensor> CollectTensors(Model& model) {
  std::vector<NamedTensor> tensors;
  for (auto& p : model.Params()) tensors.push_back({p.name, p.value});
  auto buffers = model.Buffers();
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    tensors.push_back({"__buffer_" + std::to_string(i), buffers[i]});
  }
  return tensors;
}

// Stream wrappers that fold every byte written/read after the version
// field into a running CRC32C, so the trailer covers the whole body
// without buffering the checkpoint in memory. Writes go through an
// AtomicFileWriter (temp + fsync + rename), so an exception or crash at
// any point leaves the previous checkpoint intact.
struct CrcWriter {
  util::AtomicFileWriter& out;
  std::uint32_t crc = 0;

  void Write(const void* data, std::size_t n) {
    if (n == 0) return;
    out.Write(data, n);
    crc = util::Crc32cExtend(crc, data, n);
  }
  template <typename T>
  void WriteScalar(T v) {
    Write(&v, sizeof(T));
  }
};

struct CrcReader {
  std::ifstream& in;
  std::uint32_t crc = 0;

  void Read(void* data, std::size_t n) {
    if (n == 0) return;
    in.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (!in) throw std::runtime_error("checkpoint: unexpected end of file");
    crc = util::Crc32cExtend(crc, data, n);
  }
  template <typename T>
  T ReadScalar() {
    T v;
    Read(&v, sizeof(T));
    return v;
  }
};

template <typename T>
T ReadScalarRaw(std::ifstream& in) {
  T v;
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("checkpoint: unexpected end of file");
  return v;
}

void WriteTensorSection(CrcWriter& body, Model& model) {
  auto tensors = CollectTensors(model);
  body.WriteScalar<std::uint32_t>(static_cast<std::uint32_t>(tensors.size()));
  for (auto& [name, tensor] : tensors) {
    body.WriteScalar<std::uint32_t>(static_cast<std::uint32_t>(name.size()));
    body.Write(name.data(), name.size());
    const auto& dims = tensor->shape().dims();
    body.WriteScalar<std::uint32_t>(static_cast<std::uint32_t>(dims.size()));
    for (auto d : dims) body.WriteScalar<std::int64_t>(d);
    body.Write(tensor->data(), tensor->byte_size());
  }
}

void ReadTensorSection(CrcReader& body, Model& model) {
  auto tensors = CollectTensors(model);
  const auto count = body.ReadScalar<std::uint32_t>();
  if (count != tensors.size()) {
    throw std::runtime_error("checkpoint: tensor count mismatch");
  }
  for (auto& [name, tensor] : tensors) {
    const auto name_len = body.ReadScalar<std::uint32_t>();
    std::string stored_name(name_len, '\0');
    body.Read(stored_name.data(), name_len);
    if (stored_name != name) {
      throw std::runtime_error("checkpoint: tensor name mismatch: expected " +
                               name + ", found " + stored_name);
    }
    const auto rank = body.ReadScalar<std::uint32_t>();
    std::vector<std::int64_t> dims(rank);
    for (auto& d : dims) d = body.ReadScalar<std::int64_t>();
    if (tensor::Shape(dims) != tensor->shape()) {
      throw std::runtime_error("checkpoint: shape mismatch for " + name);
    }
    body.Read(tensor->data(), tensor->byte_size());
  }
}

void WriteStateSection(CrcWriter& body, const TrainState& state) {
  body.WriteScalar<std::uint64_t>(state.next_step);
  body.WriteScalar<std::uint32_t>(
      static_cast<std::uint32_t>(state.codec_state.size()));
  body.Write(state.codec_state.data(), state.codec_state.size());
  body.WriteScalar<std::uint32_t>(
      static_cast<std::uint32_t>(state.sampler_state.size()));
  body.Write(state.sampler_state.data(), state.sampler_state.size());
}

void ReadStateSection(CrcReader& body, TrainState* state) {
  state->next_step = body.ReadScalar<std::uint64_t>();
  state->codec_state.resize(body.ReadScalar<std::uint32_t>());
  body.Read(state->codec_state.data(), state->codec_state.size());
  state->sampler_state.resize(body.ReadScalar<std::uint32_t>());
  body.Read(state->sampler_state.data(), state->sampler_state.size());
}

void CheckVersion(std::uint32_t version, const std::string& path) {
  if (version < kVersionPlain || version > kVersionTrainState) {
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(version) + " in " + path);
  }
}

// Shared load path: restores tensors, fills *state from a v3 section when
// requested (require_state), otherwise validates and discards it, and
// verifies the CRC trailer for version >= 2.
void LoadImpl(Model& model, TrainState* state, bool require_state,
              const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("checkpoint: bad magic in " + path);
  }
  const auto version = ReadScalarRaw<std::uint32_t>(in);
  CheckVersion(version, path);
  if (require_state && version < kVersionTrainState) {
    throw std::runtime_error(
        "checkpoint: " + path + " (version " + std::to_string(version) +
        ") has no training-state section; cannot resume exactly");
  }

  CrcReader body{in};
  ReadTensorSection(body, model);
  if (version >= kVersionTrainState) {
    TrainState discard;
    ReadStateSection(body, state != nullptr ? state : &discard);
  }
  if (version >= kVersionChecksum) {
    const auto stored = ReadScalarRaw<std::uint32_t>(in);
    if (stored != body.crc) {
      throw std::runtime_error("checkpoint: CRC32C mismatch in " + path +
                               " (file corrupt)");
    }
  }
}

void WriteServerStateSection(CrcWriter& body, const ServerState& state) {
  if (state.evicted.size() != state.greeted.size()) {
    throw std::runtime_error(
        "server checkpoint: evicted/greeted table size mismatch");
  }
  body.WriteScalar<std::uint64_t>(state.epoch);
  body.WriteScalar<std::uint64_t>(state.next_step);
  body.WriteScalar<std::uint32_t>(
      static_cast<std::uint32_t>(state.ps_state.size()));
  body.Write(state.ps_state.data(), state.ps_state.size());
  body.WriteScalar<std::uint32_t>(
      static_cast<std::uint32_t>(state.evicted.size()));
  body.Write(state.evicted.data(), state.evicted.size());
  body.Write(state.greeted.data(), state.greeted.size());
  body.WriteScalar<std::uint32_t>(
      static_cast<std::uint32_t>(state.replay.size()));
  for (const auto& entry : state.replay) {
    body.WriteScalar<std::uint64_t>(entry.step);
    body.WriteScalar<std::uint32_t>(
        static_cast<std::uint32_t>(entry.frames.size()));
    for (const auto& frame : entry.frames) {
      body.WriteScalar<std::uint32_t>(static_cast<std::uint32_t>(frame.size()));
      body.Write(frame.data(), frame.size());
    }
  }
}

void ReadServerStateSection(CrcReader& body, ServerState* state) {
  state->epoch = body.ReadScalar<std::uint64_t>();
  state->next_step = body.ReadScalar<std::uint64_t>();
  state->ps_state.resize(body.ReadScalar<std::uint32_t>());
  body.Read(state->ps_state.data(), state->ps_state.size());
  const auto workers = body.ReadScalar<std::uint32_t>();
  state->evicted.resize(workers);
  body.Read(state->evicted.data(), state->evicted.size());
  state->greeted.resize(workers);
  body.Read(state->greeted.data(), state->greeted.size());
  state->replay.resize(body.ReadScalar<std::uint32_t>());
  for (auto& entry : state->replay) {
    entry.step = body.ReadScalar<std::uint64_t>();
    entry.frames.resize(body.ReadScalar<std::uint32_t>());
    for (auto& frame : entry.frames) {
      frame.resize(body.ReadScalar<std::uint32_t>());
      body.Read(frame.data(), frame.size());
    }
  }
}

}  // namespace

void SaveCheckpoint(Model& model, const std::string& path, bool checksum) {
  util::AtomicFileWriter out(path);
  out.Write(kMagic, sizeof(kMagic));
  const std::uint32_t version = checksum ? kVersionChecksum : kVersionPlain;
  out.Write(&version, sizeof(version));

  CrcWriter body{out};
  WriteTensorSection(body, model);
  if (checksum) out.Write(&body.crc, sizeof(body.crc));
  out.Commit();
}

void SaveCheckpointWithState(Model& model, const TrainState& state,
                             const std::string& path) {
  util::AtomicFileWriter out(path);
  out.Write(kMagic, sizeof(kMagic));
  const std::uint32_t version = kVersionTrainState;
  out.Write(&version, sizeof(version));

  CrcWriter body{out};
  WriteTensorSection(body, model);
  WriteStateSection(body, state);
  out.Write(&body.crc, sizeof(body.crc));
  out.Commit();
}

void LoadCheckpoint(Model& model, const std::string& path) {
  LoadImpl(model, nullptr, /*require_state=*/false, path);
}

void LoadCheckpointState(Model& model, TrainState* state,
                         const std::string& path) {
  LoadImpl(model, state, /*require_state=*/true, path);
}

void SaveServerCheckpoint(Model& model, const ServerState& state,
                          const std::string& path) {
  util::AtomicFileWriter out(path);
  out.Write(kServerMagic, sizeof(kServerMagic));
  const std::uint32_t version = kServerVersion;
  out.Write(&version, sizeof(version));

  CrcWriter body{out};
  WriteTensorSection(body, model);
  WriteServerStateSection(body, state);
  out.Write(&body.crc, sizeof(body.crc));
  out.Commit();
}

void LoadServerCheckpoint(Model& model, ServerState* state,
                          const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("server checkpoint: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kServerMagic, sizeof(kServerMagic)) != 0) {
    throw std::runtime_error("server checkpoint: bad magic in " + path);
  }
  const auto version = ReadScalarRaw<std::uint32_t>(in);
  if (version != kServerVersion) {
    throw std::runtime_error("server checkpoint: unsupported version " +
                             std::to_string(version) + " in " + path);
  }
  CrcReader body{in};
  ReadTensorSection(body, model);
  ReadServerStateSection(body, state);
  const auto stored = ReadScalarRaw<std::uint32_t>(in);
  if (stored != body.crc) {
    throw std::runtime_error("server checkpoint: CRC32C mismatch in " + path +
                             " (file corrupt)");
  }
}

}  // namespace threelc::nn
