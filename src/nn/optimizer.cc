#include "nn/optimizer.h"

#include <algorithm>
#include <stdexcept>

#include "util/logging.h"

namespace threelc::nn {

MomentumSgd::MomentumSgd(MomentumOptions options) : options_(options) {}

void MomentumSgd::ApplyGradients(std::vector<ParamRef>& params, float lr) {
  for (auto& p : params) {
    auto [it, inserted] = velocity_.try_emplace(p.name, p.value->shape());
    Tensor& v = it->second;
    THREELC_CHECK_MSG(v.SameShape(*p.value), "velocity shape drift for "
                                                 << p.name);
    float* vel = v.data();
    float* w = p.value->data();
    const float* g = p.grad->data();
    const std::size_t n = v.size();
    const float wd = p.weight_decay ? options_.weight_decay : 0.0f;
    const float mu = options_.momentum;
    for (std::size_t i = 0; i < n; ++i) {
      vel[i] = mu * vel[i] + (g[i] + wd * w[i]);
      w[i] -= lr * vel[i];
    }
  }
}

const Tensor* MomentumSgd::velocity(const std::string& name) const {
  auto it = velocity_.find(name);
  return it == velocity_.end() ? nullptr : &it->second;
}

void MomentumSgd::SaveState(util::ByteBuffer& out) const {
  std::vector<const std::string*> names;
  names.reserve(velocity_.size());
  for (const auto& [name, tensor] : velocity_) names.push_back(&name);
  std::sort(names.begin(), names.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  out.AppendU32(static_cast<std::uint32_t>(names.size()));
  for (const std::string* name : names) {
    const Tensor& v = velocity_.at(*name);
    out.AppendU32(static_cast<std::uint32_t>(name->size()));
    out.Append(name->data(), name->size());
    const auto& dims = v.shape().dims();
    out.AppendU32(static_cast<std::uint32_t>(dims.size()));
    for (std::int64_t d : dims) out.AppendU64(static_cast<std::uint64_t>(d));
    out.Append(v.data(), v.byte_size());
  }
}

void MomentumSgd::LoadState(util::ByteReader& in) {
  const std::uint32_t count = in.ReadU32();
  std::unordered_map<std::string, Tensor> restored;
  restored.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = in.ReadU32();
    util::ByteSpan name_bytes = in.ReadSpan(name_len);
    std::string name(reinterpret_cast<const char*>(name_bytes.data()),
                     name_bytes.size());
    const std::uint32_t rank = in.ReadU32();
    std::vector<std::int64_t> dims(rank);
    for (auto& d : dims) d = static_cast<std::int64_t>(in.ReadU64());
    Tensor v{tensor::Shape(dims)};
    in.ReadInto(v.data(), v.byte_size());
    if (!restored.emplace(std::move(name), std::move(v)).second) {
      throw std::runtime_error("optimizer: duplicate velocity entry");
    }
  }
  velocity_ = std::move(restored);
}

}  // namespace threelc::nn
