#include "nn/optimizer.h"

#include "util/logging.h"

namespace threelc::nn {

MomentumSgd::MomentumSgd(MomentumOptions options) : options_(options) {}

void MomentumSgd::ApplyGradients(std::vector<ParamRef>& params, float lr) {
  for (auto& p : params) {
    auto [it, inserted] = velocity_.try_emplace(p.name, p.value->shape());
    Tensor& v = it->second;
    THREELC_CHECK_MSG(v.SameShape(*p.value), "velocity shape drift for "
                                                 << p.name);
    float* vel = v.data();
    float* w = p.value->data();
    const float* g = p.grad->data();
    const std::size_t n = v.size();
    const float wd = p.weight_decay ? options_.weight_decay : 0.0f;
    const float mu = options_.momentum;
    for (std::size_t i = 0; i < n; ++i) {
      vel[i] = mu * vel[i] + (g[i] + wd * w[i]);
      w[i] -= lr * vel[i];
    }
  }
}

const Tensor* MomentumSgd::velocity(const std::string& name) const {
  auto it = velocity_.find(name);
  return it == velocity_.end() ? nullptr : &it->second;
}

}  // namespace threelc::nn
