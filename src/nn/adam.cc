#include "nn/adam.h"

#include <cmath>

#include "util/logging.h"

namespace threelc::nn {

Adam::Adam(AdamOptions options) : options_(options) {}

void Adam::ApplyGradients(std::vector<ParamRef>& params, float lr) {
  ++t_;
  const float bias1 =
      1.0f - std::pow(options_.beta1, static_cast<float>(t_));
  const float bias2 =
      1.0f - std::pow(options_.beta2, static_cast<float>(t_));
  for (auto& p : params) {
    auto [it, inserted] = moments_.try_emplace(
        p.name, Moments{Tensor(p.value->shape()), Tensor(p.value->shape())});
    Moments& mom = it->second;
    THREELC_CHECK_MSG(mom.m.SameShape(*p.value),
                      "Adam state shape drift for " << p.name);
    float* m = mom.m.data();
    float* v = mom.v.data();
    float* w = p.value->data();
    const float* g = p.grad->data();
    const std::size_t n = mom.m.size();
    const float b1 = options_.beta1;
    const float b2 = options_.beta2;
    const float wd = p.weight_decay ? options_.weight_decay : 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
      m[i] = b1 * m[i] + (1.0f - b1) * g[i];
      v[i] = b2 * v[i] + (1.0f - b2) * g[i] * g[i];
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      w[i] -= lr * (m_hat / (std::sqrt(v_hat) + options_.eps) + wd * w[i]);
    }
  }
}

}  // namespace threelc::nn
