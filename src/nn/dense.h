// Fully-connected layer: out = in * W + b.
//
// W has shape [in_features, out_features] — the 2-D tensors that dominate
// state-change traffic in the paper's workloads.
#pragma once

#include "nn/layer.h"

namespace threelc::nn {

class Dense final : public Layer {
 public:
  Dense(std::string name, std::int64_t in_features, std::int64_t out_features,
        util::Rng& rng);

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<ParamRef> Params() override;

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }

 private:
  std::string name_;
  std::int64_t in_features_;
  std::int64_t out_features_;
  Tensor w_, b_;
  Tensor gw_, gb_;
  Tensor input_cache_;  // saved for the backward pass
};

}  // namespace threelc::nn
