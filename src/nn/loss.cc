#include "nn/loss.h"

#include <cmath>

#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace threelc::nn {

LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<std::int32_t>& labels) {
  THREELC_CHECK(logits.shape().rank() == 2);
  const std::int64_t batch = logits.shape().dim(0);
  const std::int64_t classes = logits.shape().dim(1);
  THREELC_CHECK_MSG(static_cast<std::int64_t>(labels.size()) == batch,
                    "label count mismatch");

  LossResult result;
  result.grad_logits = Tensor(logits.shape());
  const float* z = logits.data();
  float* g = result.grad_logits.data();
  const float inv_b = 1.0f / static_cast<float>(batch);
  double total = 0.0;

  for (std::int64_t i = 0; i < batch; ++i) {
    const float* row = z + i * classes;
    float* grow = g + i * classes;
    const std::int32_t label = labels[static_cast<std::size_t>(i)];
    THREELC_CHECK_MSG(label >= 0 && label < classes, "label out of range");

    // Numerically stable log-sum-exp.
    float maxv = row[0];
    for (std::int64_t c = 1; c < classes; ++c) maxv = row[c] > maxv ? row[c] : maxv;
    double sum = 0.0;
    for (std::int64_t c = 0; c < classes; ++c) {
      sum += std::exp(static_cast<double>(row[c] - maxv));
    }
    const double log_sum = std::log(sum) + maxv;
    total += log_sum - row[label];

    std::size_t argmax = 0;
    for (std::int64_t c = 0; c < classes; ++c) {
      const double p = std::exp(static_cast<double>(row[c]) - log_sum);
      grow[c] = static_cast<float>(p) * inv_b;
      if (row[c] > row[argmax]) argmax = static_cast<std::size_t>(c);
    }
    grow[label] -= inv_b;
    if (static_cast<std::int32_t>(argmax) == label) ++result.correct;
  }
  result.loss = total / static_cast<double>(batch);
  return result;
}

double Accuracy(const Tensor& logits, const std::vector<std::int32_t>& labels) {
  THREELC_CHECK(logits.shape().rank() == 2);
  const std::int64_t batch = logits.shape().dim(0);
  const std::int64_t classes = logits.shape().dim(1);
  THREELC_CHECK(static_cast<std::int64_t>(labels.size()) == batch);
  std::size_t correct = 0;
  const float* z = logits.data();
  for (std::int64_t i = 0; i < batch; ++i) {
    const std::size_t pred =
        tensor::ArgMax(z + i * classes, static_cast<std::size_t>(classes));
    if (static_cast<std::int32_t>(pred) == labels[static_cast<std::size_t>(i)]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(batch);
}

}  // namespace threelc::nn
