#include "nn/checkpoint_manager.h"

#include <sys/stat.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace threelc::nn {

namespace {

std::string DirOf(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::string BaseOf(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool AllDigits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

CheckpointManager::CheckpointManager(Options options)
    : options_(std::move(options)), fs_(util::ResolveFs(options_.fs)) {
  if (options_.retain < 1) options_.retain = 1;
}

std::string CheckpointManager::GenerationPath(std::uint64_t gen) const {
  return options_.path + ".g" + std::to_string(gen);
}

int CheckpointManager::ScanAndSweep() {
  const std::string dir = DirOf(options_.path);
  const int swept = util::SweepStaleTemps(fs_, dir);

  generations_.clear();
  const std::string prefix = BaseOf(options_.path) + ".g";
  std::vector<std::string> names;
  if (fs_.List(dir, &names)) {
    for (const std::string& name : names) {
      if (name.rfind(prefix, 0) != 0) continue;
      const std::string digits = name.substr(prefix.size());
      if (!AllDigits(digits)) continue;  // e.g. a ".g3.tmp.<pid>" sibling
      generations_.push_back(
          static_cast<std::uint64_t>(std::strtoull(digits.c_str(), nullptr, 10)));
    }
  }
  std::sort(generations_.begin(), generations_.end());
  // Never reuse a generation number: a resumed server keeps counting
  // above everything it found, so an old incarnation's file is never
  // silently overwritten by a new one's first save.
  next_gen_ = generations_.empty() ? 0 : generations_.back() + 1;
  scanned_ = true;
  return swept;
}

void CheckpointManager::Save(Model& model, const ServerState& state) {
  if (!scanned_) ScanAndSweep();
  const std::uint64_t gen = next_gen_;
  // Throws on failure; gen is only consumed on success, so a retry
  // reuses the same "<path>.g<N>.tmp.<pid>" sibling (O_TRUNC) and no
  // temp files accumulate across retries.
  SaveServerCheckpoint(model, state, GenerationPath(gen),
                       options_.block_codec, options_.fs);
  next_gen_ = gen + 1;
  generations_.push_back(gen);
  while (generation_count() > options_.retain) {
    const std::uint64_t oldest = generations_.front();
    if (fs_.Unlink(GenerationPath(oldest)) != 0 && errno != ENOENT) {
      // Pruning is best-effort: a failed unlink leaves the file for the
      // next save (or the next incarnation's scan) to retry.
      break;
    }
    generations_.erase(generations_.begin());
  }
}

bool CheckpointManager::Load(Model& model, ServerState* state,
                             std::string* error) {
  if (!scanned_) ScanAndSweep();
  fallbacks_ = 0;
  fallback_log_.clear();
  loaded_path_.clear();

  std::vector<std::string> candidates;
  for (auto it = generations_.rbegin(); it != generations_.rend(); ++it) {
    candidates.push_back(GenerationPath(*it));
  }
  // Checkpoints written before generations existed live at the bare
  // path; try it last so an upgraded server still resumes from them.
  if (FileExists(options_.path)) candidates.push_back(options_.path);

  for (const std::string& candidate : candidates) {
    ServerState scratch;
    try {
      LoadServerCheckpoint(model, &scratch, candidate);
    } catch (const std::exception& e) {
      ++fallbacks_;
      fallback_log_.push_back("checkpoint " + candidate +
                              " unusable: " + e.what());
      continue;
    }
    *state = std::move(scratch);
    loaded_path_ = candidate;
    return true;
  }

  if (error != nullptr) {
    std::string detail;
    for (const std::string& line : fallback_log_) {
      detail += "; " + line;
    }
    *error = candidates.empty()
                 ? "no usable checkpoint at " + options_.path +
                       " (no generations found)"
                 : "no usable checkpoint at " + options_.path + " (" +
                       std::to_string(candidates.size()) + " candidate(s)" +
                       detail + ")";
  }
  return false;
}

}  // namespace threelc::nn
