// Learning-rate schedules.
//
// The paper sweeps the learning rate from 0.1 to 0.001 with cosine decay
// without restarts (Loshchilov & Hutter), scaled by worker count per the
// large-batch training guideline (§5.2). Crucially, the schedule always
// spans the *configured* total steps, so 25%/50%/75% step-budget runs sweep
// the entire range in fewer steps (paper §5.2 "Measurement Methodology").
#pragma once

#include <cstdint>

namespace threelc::nn {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  // Learning rate at training step `step` in [0, total_steps).
  virtual float At(std::int64_t step) const = 0;
};

// lr(t) = lr_min + (lr_max - lr_min) * 0.5 * (1 + cos(pi * t / T)).
class CosineDecay final : public LrSchedule {
 public:
  CosineDecay(float lr_max, float lr_min, std::int64_t total_steps);
  float At(std::int64_t step) const override;

 private:
  float lr_max_, lr_min_;
  std::int64_t total_steps_;
};

// The original ResNet stepwise decay (kept for comparison runs): lr_max
// until 50% of steps, /10 until 75%, /100 afterwards.
class StepwiseDecay final : public LrSchedule {
 public:
  StepwiseDecay(float lr_max, std::int64_t total_steps);
  float At(std::int64_t step) const override;

 private:
  float lr_max_;
  std::int64_t total_steps_;
};

// Constant rate (for unit tests and toy examples).
class ConstantLr final : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float At(std::int64_t) const override { return lr_; }

 private:
  float lr_;
};

}  // namespace threelc::nn
