#include "nn/model.h"

#include "util/logging.h"

namespace threelc::nn {

Layer& Model::Add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *layers_.back();
}

Tensor Model::Forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->Forward(x, training);
  return x;
}

Tensor Model::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<ParamRef> Model::Params() {
  std::vector<ParamRef> params;
  for (auto& layer : layers_) {
    for (auto& p : layer->Params()) params.push_back(p);
  }
  return params;
}

std::int64_t Model::NumParameters() {
  std::int64_t n = 0;
  for (auto& p : Params()) n += p.value->num_elements();
  return n;
}

void Model::ZeroGrads() {
  for (auto& layer : layers_) layer->ZeroGrads();
}

std::vector<Tensor*> Model::Buffers() {
  std::vector<Tensor*> buffers;
  for (auto& layer : layers_) {
    for (auto* b : layer->Buffers()) buffers.push_back(b);
  }
  return buffers;
}

void Model::CopyParamsFrom(Model& other) {
  auto mine = Params();
  auto theirs = other.Params();
  THREELC_CHECK_MSG(mine.size() == theirs.size(),
                    "architecture mismatch in CopyParamsFrom");
  for (std::size_t i = 0; i < mine.size(); ++i) {
    THREELC_CHECK_MSG(mine[i].value->SameShape(*theirs[i].value),
                      "shape mismatch for " << mine[i].name);
    *mine[i].value = *theirs[i].value;
  }
}

void Model::CopyBuffersFrom(Model& other) {
  auto mine = Buffers();
  auto theirs = other.Buffers();
  THREELC_CHECK_MSG(mine.size() == theirs.size(),
                    "architecture mismatch in CopyBuffersFrom");
  for (std::size_t i = 0; i < mine.size(); ++i) {
    THREELC_CHECK(mine[i]->SameShape(*theirs[i]));
    *mine[i] = *theirs[i];
  }
}

LossResult Model::TrainStep(const Tensor& input,
                            const std::vector<std::int32_t>& labels) {
  ZeroGrads();
  Tensor logits = Forward(input, /*training=*/true);
  LossResult result = SoftmaxCrossEntropy(logits, labels);
  Backward(result.grad_logits);
  return result;
}

double Model::Evaluate(const Tensor& input,
                       const std::vector<std::int32_t>& labels) {
  Tensor logits = Forward(input, /*training=*/false);
  return Accuracy(logits, labels);
}

}  // namespace threelc::nn
