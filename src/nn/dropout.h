// Inverted dropout: zeroes activations with probability p in training and
// scales survivors by 1/(1-p); identity in evaluation.
#pragma once

#include "nn/layer.h"

namespace threelc::nn {

class Dropout final : public Layer {
 public:
  Dropout(std::string name, float p, std::uint64_t seed);

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

  float rate() const { return p_; }

 private:
  std::string name_;
  float p_;
  util::Rng rng_;
  Tensor mask_;  // scaled keep mask from the last training forward
  bool last_training_ = false;
};

}  // namespace threelc::nn
