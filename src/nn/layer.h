// Layer interface for the NN training substrate.
//
// Layers own their parameter and gradient tensors and expose them through
// ParamRef so the parameter-server substrate can push gradients and apply
// model deltas per tensor — the same per-layer granularity the paper's
// TensorFlow prototype uses. `compress` marks whether a tensor goes through
// the codec; small layers (batch normalization) set it false, reproducing
// the paper's small-layer bypass (§5.1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace threelc::nn {

using tensor::Shape;
using tensor::Tensor;

struct ParamRef {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  // Whether state changes for this tensor go through traffic compression.
  bool compress = true;
  // Whether weight decay applies (weights yes; biases/BN parameters no).
  bool weight_decay = true;
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::string name() const = 0;

  // Forward pass on a batch; `training` toggles batch-norm statistics.
  // Implementations may cache activations needed by Backward.
  virtual Tensor Forward(const Tensor& input, bool training) = 0;

  // Backward pass: consumes dL/d(output), fills parameter gradients, and
  // returns dL/d(input). Must follow a Forward call on the same batch.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  // Parameter tensors (empty for stateless layers).
  virtual std::vector<ParamRef> Params() { return {}; }

  // Non-trainable state (e.g. batch-norm running statistics). In the
  // distributed setup one designated worker owns these and the trainer
  // copies them onto the global model before evaluation (paper §5.2).
  virtual std::vector<Tensor*> Buffers() { return {}; }

  // Zero all parameter gradients.
  void ZeroGrads();
};

// He-normal initialization for weight tensors feeding ReLU units:
// stddev = sqrt(2 / fan_in).
void HeInit(Tensor& w, std::int64_t fan_in, util::Rng& rng);

// Glorot-uniform initialization: U[-a, a], a = sqrt(6 / (fan_in+fan_out)).
void GlorotInit(Tensor& w, std::int64_t fan_in, std::int64_t fan_out,
                util::Rng& rng);

}  // namespace threelc::nn
