// Model checkpointing: save/restore parameters and buffers to a binary
// file. The evaluation methodology reads snapshots of the global model on
// a dedicated node (paper §5.2); checkpoints are how such snapshots move
// between processes, and how long WAN training runs resume after failures.
//
// File format (little-endian):
//   magic "3LCK" | u32 version | u32 tensor_count
//   per tensor: u32 name_len | name bytes | u32 rank | i64 dims...
//               | f32 data...
//   version >= 3: training-state section after the tensors —
//                 u64 next_step | u32 codec_state_len | codec state bytes
//                 | u32 sampler_state_len | sampler state bytes
//   version >= 2: u32 CRC32C trailer over every byte after the version
//                 field (tensor_count through the end of the body)
// Buffers (batch-norm running statistics) are stored after parameters
// under the synthetic names "__buffer_<i>".
//
// Version 1 files (no checksum trailer) are still readable; version 2 is
// written by default so bit rot in a checkpoint fails loudly at load time
// instead of silently corrupting a resumed run. Version 3 additionally
// carries the worker's mid-run training state — the codec's per-tensor
// error-accumulation buffers, the data-pipeline cursor, and the step
// counter — so a crashed worker restarts with a bitwise-identical
// trajectory instead of silently discarding accumulated quantization
// error. LoadCheckpoint accepts a v3 file (skipping the state section);
// LoadCheckpointState demands one.
//
// Server checkpoints use a distinct magic "3LCS" (same framing: version,
// CRC-protected body) and carry the parameter server's recurrence: model
// tensors, the incarnation epoch, the next collect step, the
// ParameterServer state blob (optimizer + prev_value + pull EA contexts),
// the membership/greeted tables, and the verbatim pull-replay ring. See
// ServerState below.
//
// Compressed container (optional): when a save is handed a block codec
// other than "store" (blockcodec/block_codec.h), the complete "3LCK" /
// "3LCS" byte stream above becomes the payload of an outer container:
//   magic "3LCZ" | u32 container_version (1) | u8 codec_id
//   | u64 raw_size | u32 raw_crc32c | u32 comp_size | comp bytes
// Loaders sniff the magic: "3LCZ" files are decoded first (rejecting
// unknown codec ids, truncation, trailing bytes, and any disagreement
// between raw_size/raw_crc32c and the decoded bytes — size and CRC are
// cross-checked independently), then parsed as a bare checkpoint; files
// without the container magic parse as before, so every pre-container
// checkpoint stays loadable. A save whose compressed payload would not
// be smaller than the bare stream skips the container entirely.
//
// All save paths write atomically (util::AtomicFileWriter: temp sibling +
// fsync + rename + parent-dir fsync), so a crash mid-write leaves either
// the previous complete checkpoint or the new one — never a torn file.
// Every save takes an optional util::Fs* syscall seam (nullptr = the real
// filesystem) so storage-fault drills can fail exactly one call; see
// util/fs.h. Loads read through plain streams — a corrupt file is the
// interesting failure there, and CheckpointManager (checkpoint_manager.h)
// layers generation fallback on top of these primitives.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model.h"
#include "util/fs.h"

namespace threelc::nn {

// Everything beyond the model tensors a worker needs to resume mid-run
// exactly. The blobs are opaque here: codec_state is written/read by
// ps::Worker::{Save,Load}CodecState and sampler_state by
// data::Sampler::{Save,Load}State.
struct TrainState {
  std::uint64_t next_step = 0;  // first step the worker has NOT completed
  std::vector<std::uint8_t> codec_state;
  std::vector<std::uint8_t> sampler_state;
};

// Writes all parameters and buffers of `model`. When `checksum` is true
// (the default) the file carries a CRC32C trailer (format version 2);
// false writes the legacy version-1 layout. `block_codec` names the
// lossless block codec wrapping the file in the "3LCZ" container above
// ("store", the default, writes the bare stream). Throws
// std::runtime_error on I/O failure or an unknown codec name.
void SaveCheckpoint(Model& model, const std::string& path,
                    bool checksum = true,
                    const std::string& block_codec = "store",
                    util::Fs* fs = nullptr);

// Restores a checkpoint written by SaveCheckpoint into an architecturally
// identical model, verifying the CRC32C trailer when present. Throws
// std::runtime_error on I/O failure, format corruption, checksum mismatch,
// or architecture mismatch (name/shape disagreement). Accepts v3 files,
// validating but discarding the training-state section.
void LoadCheckpoint(Model& model, const std::string& path);

// Writes a version-3 checkpoint: model tensors plus `state`, always with
// the CRC32C trailer; `block_codec` as in SaveCheckpoint. Throws
// std::runtime_error on I/O failure or an unknown codec name.
void SaveCheckpointWithState(Model& model, const TrainState& state,
                             const std::string& path,
                             const std::string& block_codec = "store",
                             util::Fs* fs = nullptr);

// Restores a version-3 checkpoint into `model` and `*state`. Throws
// std::runtime_error if the file lacks a training-state section (version
// < 3) or on any LoadCheckpoint failure mode.
void LoadCheckpointState(Model& model, TrainState* state,
                         const std::string& path);

// Everything a parameter server needs to resume a run bitwise-exactly,
// beyond the model tensors. The blobs are opaque here: ps_state is
// written/read by ps::ParameterServer::{Save,Load}State; replay frames
// are retained wire bytes (rpc frames) stored and replayed verbatim.
struct ServerState {
  // Incarnation counter: the epoch this checkpoint was written under.
  // A server resuming from the checkpoint runs as epoch + 1.
  std::uint64_t epoch = 1;
  // The step the server will collect next (all steps below it are fully
  // applied to the model and ps_state).
  std::uint64_t next_step = 0;
  std::vector<std::uint8_t> ps_state;
  // Per-worker membership tables, indexed by worker id. evicted[w] != 0
  // marks a permanently removed worker; greeted[w] != 0 marks one that
  // completed a HELLO/REJOIN at some point (and must REJOIN, not HELLO,
  // against the resumed server). Both must have the same length.
  std::vector<std::uint8_t> evicted;
  std::vector<std::uint8_t> greeted;
  // Retained pull fan-out frames of recent steps, oldest first: each entry
  // is one completed step's per-tensor encoded frame bytes.
  struct ReplayStep {
    std::uint64_t step = 0;
    std::vector<std::vector<std::uint8_t>> frames;
  };
  std::vector<ReplayStep> replay;
};

// Writes a server checkpoint ("3LCS", version 1, CRC32C trailer) —
// atomically, like every save here; `block_codec` as in SaveCheckpoint.
// Throws std::runtime_error on I/O failure or an unknown codec name.
void SaveServerCheckpoint(Model& model, const ServerState& state,
                          const std::string& path,
                          const std::string& block_codec = "store",
                          util::Fs* fs = nullptr);

// Restores a server checkpoint into `model` and `*state`. Throws
// std::runtime_error on I/O failure, bad magic/version, truncation, CRC
// mismatch, or architecture mismatch.
void LoadServerCheckpoint(Model& model, ServerState* state,
                          const std::string& path);

}  // namespace threelc::nn
