// Model checkpointing: save/restore parameters and buffers to a binary
// file. The evaluation methodology reads snapshots of the global model on
// a dedicated node (paper §5.2); checkpoints are how such snapshots move
// between processes, and how long WAN training runs resume after failures.
//
// File format (little-endian):
//   magic "3LCK" | u32 version | u32 tensor_count
//   per tensor: u32 name_len | name bytes | u32 rank | i64 dims...
//               | f32 data...
// Buffers (batch-norm running statistics) are stored after parameters
// under the synthetic names "__buffer_<i>".
#pragma once

#include <string>

#include "nn/model.h"

namespace threelc::nn {

// Writes all parameters and buffers of `model`. Throws std::runtime_error
// on I/O failure.
void SaveCheckpoint(Model& model, const std::string& path);

// Restores a checkpoint written by SaveCheckpoint into an architecturally
// identical model. Throws std::runtime_error on I/O failure, format
// corruption, or architecture mismatch (name/shape disagreement).
void LoadCheckpoint(Model& model, const std::string& path);

}  // namespace threelc::nn
