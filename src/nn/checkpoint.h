// Model checkpointing: save/restore parameters and buffers to a binary
// file. The evaluation methodology reads snapshots of the global model on
// a dedicated node (paper §5.2); checkpoints are how such snapshots move
// between processes, and how long WAN training runs resume after failures.
//
// File format (little-endian):
//   magic "3LCK" | u32 version | u32 tensor_count
//   per tensor: u32 name_len | name bytes | u32 rank | i64 dims...
//               | f32 data...
//   version >= 2: u32 CRC32C trailer over every byte after the version
//                 field (tensor_count through the last tensor's data)
// Buffers (batch-norm running statistics) are stored after parameters
// under the synthetic names "__buffer_<i>".
//
// Version 1 files (no checksum trailer) are still readable; version 2 is
// written by default so bit rot in a checkpoint fails loudly at load time
// instead of silently corrupting a resumed run.
#pragma once

#include <string>

#include "nn/model.h"

namespace threelc::nn {

// Writes all parameters and buffers of `model`. When `checksum` is true
// (the default) the file carries a CRC32C trailer (format version 2);
// false writes the legacy version-1 layout. Throws std::runtime_error on
// I/O failure.
void SaveCheckpoint(Model& model, const std::string& path,
                    bool checksum = true);

// Restores a checkpoint written by SaveCheckpoint into an architecturally
// identical model, verifying the CRC32C trailer when present. Throws
// std::runtime_error on I/O failure, format corruption, checksum mismatch,
// or architecture mismatch (name/shape disagreement).
void LoadCheckpoint(Model& model, const std::string& path);

}  // namespace threelc::nn
