// Model checkpointing: save/restore parameters and buffers to a binary
// file. The evaluation methodology reads snapshots of the global model on
// a dedicated node (paper §5.2); checkpoints are how such snapshots move
// between processes, and how long WAN training runs resume after failures.
//
// File format (little-endian):
//   magic "3LCK" | u32 version | u32 tensor_count
//   per tensor: u32 name_len | name bytes | u32 rank | i64 dims...
//               | f32 data...
//   version >= 3: training-state section after the tensors —
//                 u64 next_step | u32 codec_state_len | codec state bytes
//                 | u32 sampler_state_len | sampler state bytes
//   version >= 2: u32 CRC32C trailer over every byte after the version
//                 field (tensor_count through the end of the body)
// Buffers (batch-norm running statistics) are stored after parameters
// under the synthetic names "__buffer_<i>".
//
// Version 1 files (no checksum trailer) are still readable; version 2 is
// written by default so bit rot in a checkpoint fails loudly at load time
// instead of silently corrupting a resumed run. Version 3 additionally
// carries the worker's mid-run training state — the codec's per-tensor
// error-accumulation buffers, the data-pipeline cursor, and the step
// counter — so a crashed worker restarts with a bitwise-identical
// trajectory instead of silently discarding accumulated quantization
// error. LoadCheckpoint accepts a v3 file (skipping the state section);
// LoadCheckpointState demands one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model.h"

namespace threelc::nn {

// Everything beyond the model tensors a worker needs to resume mid-run
// exactly. The blobs are opaque here: codec_state is written/read by
// ps::Worker::{Save,Load}CodecState and sampler_state by
// data::Sampler::{Save,Load}State.
struct TrainState {
  std::uint64_t next_step = 0;  // first step the worker has NOT completed
  std::vector<std::uint8_t> codec_state;
  std::vector<std::uint8_t> sampler_state;
};

// Writes all parameters and buffers of `model`. When `checksum` is true
// (the default) the file carries a CRC32C trailer (format version 2);
// false writes the legacy version-1 layout. Throws std::runtime_error on
// I/O failure.
void SaveCheckpoint(Model& model, const std::string& path,
                    bool checksum = true);

// Restores a checkpoint written by SaveCheckpoint into an architecturally
// identical model, verifying the CRC32C trailer when present. Throws
// std::runtime_error on I/O failure, format corruption, checksum mismatch,
// or architecture mismatch (name/shape disagreement). Accepts v3 files,
// validating but discarding the training-state section.
void LoadCheckpoint(Model& model, const std::string& path);

// Writes a version-3 checkpoint: model tensors plus `state`, always with
// the CRC32C trailer. Throws std::runtime_error on I/O failure.
void SaveCheckpointWithState(Model& model, const TrainState& state,
                             const std::string& path);

// Restores a version-3 checkpoint into `model` and `*state`. Throws
// std::runtime_error if the file lacks a training-state section (version
// < 3) or on any LoadCheckpoint failure mode.
void LoadCheckpointState(Model& model, TrainState* state,
                         const std::string& path);

}  // namespace threelc::nn
