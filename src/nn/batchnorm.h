// 1-D batch normalization over [batch, features].
//
// In the paper's setup batch-norm parameters are the "small layers" whose
// state changes bypass compression (§5.1) — ParamRef::compress is false
// here. Running statistics are updated in training mode and used in eval
// mode; like the paper's distributed configuration, only the designated
// batch-norm owner worker publishes statistic updates.
#pragma once

#include "nn/layer.h"

namespace threelc::nn {

class BatchNorm1d final : public Layer {
 public:
  BatchNorm1d(std::string name, std::int64_t features, float momentum = 0.9f,
              float eps = 1e-5f);

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<ParamRef> Params() override;
  std::vector<Tensor*> Buffers() override {
    return {&running_mean_, &running_var_};
  }

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  std::string name_;
  std::int64_t features_;
  float momentum_;
  float eps_;
  Tensor gamma_, beta_;
  Tensor ggamma_, gbeta_;
  Tensor running_mean_, running_var_;
  // Cached for backward.
  Tensor xhat_;
  Tensor inv_std_;
};

}  // namespace threelc::nn
