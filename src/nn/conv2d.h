// 2-D convolution over NCHW tensors.
//
// The 4-D kernel tensors here are the conv state-change tensors the paper
// compresses in ResNet workloads. The implementation is a direct loop nest
// (correctness-first); the distributed-training benchmarks use dense models
// for speed, while conv layers are exercised by tests and the CNN example.
#pragma once

#include "nn/layer.h"

namespace threelc::nn {

class Conv2d final : public Layer {
 public:
  // Square kernels; `padding` is symmetric zero padding.
  Conv2d(std::string name, std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t padding,
         util::Rng& rng);

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<ParamRef> Params() override;

  // Output spatial size for a given input size.
  std::int64_t OutSize(std::int64_t in_size) const {
    return (in_size + 2 * padding_ - kernel_) / stride_ + 1;
  }

 private:
  std::string name_;
  std::int64_t in_c_, out_c_, kernel_, stride_, padding_;
  Tensor w_;   // [out_c, in_c, k, k]
  Tensor b_;   // [out_c]
  Tensor gw_, gb_;
  Tensor input_cache_;
};

}  // namespace threelc::nn
