#include "nn/activation.h"

#include <vector>

#include "util/logging.h"

namespace threelc::nn {

Tensor Relu::Forward(const Tensor& input, bool /*training*/) {
  input_cache_ = input;
  Tensor out(input.shape());
  const float* src = input.data();
  float* dst = out.data();
  const std::size_t n = input.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
  return out;
}

Tensor Relu::Backward(const Tensor& grad_output) {
  THREELC_CHECK(grad_output.SameShape(input_cache_));
  Tensor grad(grad_output.shape());
  const float* g = grad_output.data();
  const float* x = input_cache_.data();
  float* dst = grad.data();
  const std::size_t n = grad.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] = x[i] > 0.0f ? g[i] : 0.0f;
  return grad;
}

Tensor Flatten::Forward(const Tensor& input, bool /*training*/) {
  input_shape_ = input.shape();
  THREELC_CHECK_MSG(input_shape_.rank() >= 2, "Flatten needs a batch dim");
  const std::int64_t batch = input_shape_.dim(0);
  return input.Reshaped(
      Shape{batch, input.num_elements() / batch});
}

Tensor Flatten::Backward(const Tensor& grad_output) {
  return grad_output.Reshaped(input_shape_);
}

}  // namespace threelc::nn
