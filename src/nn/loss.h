// Softmax cross-entropy loss with integer labels.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace threelc::nn {

using tensor::Shape;
using tensor::Tensor;

struct LossResult {
  double loss = 0.0;        // mean cross-entropy over the batch
  Tensor grad_logits;       // dL/dlogits, already divided by batch size
  std::size_t correct = 0;  // top-1 correct predictions in the batch
};

// logits: [batch, classes]; labels.size() == batch, each in [0, classes).
LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<std::int32_t>& labels);

// Top-1 accuracy without gradient computation (for evaluation).
double Accuracy(const Tensor& logits, const std::vector<std::int32_t>& labels);

}  // namespace threelc::nn
