#include "nn/dropout.h"

#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace threelc::nn {

Dropout::Dropout(std::string name, float p, std::uint64_t seed)
    : name_(std::move(name)), p_(p), rng_(seed) {
  THREELC_CHECK_MSG(p >= 0.0f && p < 1.0f, "dropout rate must be in [0, 1)");
}

Tensor Dropout::Forward(const Tensor& input, bool training) {
  last_training_ = training;
  if (!training || p_ == 0.0f) return input;
  mask_ = Tensor(input.shape());
  Tensor out(input.shape());
  const float scale = 1.0f / (1.0f - p_);
  const float* src = input.data();
  float* m = mask_.data();
  float* dst = out.data();
  const std::size_t n = input.size();
  for (std::size_t i = 0; i < n; ++i) {
    m[i] = rng_.Bernoulli(p_) ? 0.0f : scale;
    dst[i] = src[i] * m[i];
  }
  return out;
}

Tensor Dropout::Backward(const Tensor& grad_output) {
  if (!last_training_ || p_ == 0.0f) return grad_output;
  THREELC_CHECK(grad_output.SameShape(mask_));
  Tensor grad = grad_output;
  tensor::Mul(grad, mask_);
  return grad;
}

}  // namespace threelc::nn
