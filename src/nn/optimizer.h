// Momentum SGD with decoupled weight decay — the paper's local optimizer
// (TensorFlow MomentumOptimizer, momentum 0.9, weight decay 1e-4; §5.2).
//
// In the parameter-server architecture the *server* runs the optimizer on
// aggregated gradients; the resulting parameter changes are the model
// deltas pulled by workers. ApplyGradients therefore returns nothing but
// mutates the parameter tensors in place; callers snapshot values before /
// after to obtain deltas.
#pragma once

#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/layer.h"
#include "util/byte_buffer.h"

namespace threelc::nn {

// Abstract optimizer: updates parameters in place from their gradients.
// The parameter server owns one instance and runs it on aggregated
// gradients each step.
//
// SaveState/LoadState serialize whatever cross-step state the optimizer
// carries (momentum velocities, Adam moments, ...) so a crashed parameter
// server resumes with a bitwise-identical trajectory — optimizer state is
// part of the recurrence, exactly like the codec's error-accumulation
// buffers. The base implementations are for stateless optimizers (an
// empty section that round-trips).
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual void ApplyGradients(std::vector<ParamRef>& params, float lr) = 0;
  virtual void SaveState(util::ByteBuffer& out) const {
    out.AppendU32(0);  // zero state entries
  }
  virtual void LoadState(util::ByteReader& in) {
    if (in.ReadU32() != 0) {
      throw std::runtime_error(
          "optimizer: stored state for a stateful optimizer loaded into a "
          "stateless one");
    }
  }
};

struct MomentumOptions {
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
};

class MomentumSgd final : public Optimizer {
 public:
  explicit MomentumSgd(MomentumOptions options = {});

  // Update each parameter in place: v = mu*v + (g + wd*w); w -= lr*v.
  // Weight decay applies only to ParamRefs with weight_decay = true.
  void ApplyGradients(std::vector<ParamRef>& params, float lr) override;

  // Velocity buffer for one parameter (created lazily; keyed by name).
  const Tensor* velocity(const std::string& name) const;

  // Velocities, serialized sorted by parameter name (the map's iteration
  // order is not deterministic; the file format must be).
  void SaveState(util::ByteBuffer& out) const override;
  // Replaces all velocities. Throws std::runtime_error on malformed input.
  void LoadState(util::ByteReader& in) override;

 private:
  MomentumOptions options_;
  std::unordered_map<std::string, Tensor> velocity_;
};

}  // namespace threelc::nn
