// Generation-numbered server checkpoints with last-good fallback.
//
// One logical checkpoint path ("<dir>/dt_server.sckpt") fans out into
// generation files "<path>.g<N>" (N monotonically increasing, never
// reused within or across incarnations). Save() writes the next
// generation atomically and prunes the oldest beyond the retention
// bound; Load() verifies the newest generation (container/CRC checks in
// checkpoint.cc) and falls back to the previous good one when it is
// torn, truncated, or corrupt — ending at a clean "no usable checkpoint"
// error only when every generation (and a legacy bare-path file, for
// checkpoints written before generations existed) is bad.
//
// Why fallback is bitwise-safe: the server checkpoint is write-ahead —
// RpcServer::RunStep persists the post-step-s state (as generation g_s)
// BEFORE fanning out step s's pulls. A torn/corrupt g_s therefore means
// the crash hit before that fan-out, so no worker ever saw step s's
// result, and g_{s-1} — the previous retained generation — covers
// everything any worker observed. Resuming from it replays step s
// exactly (same contributions, same EA state), keeping the run bitwise
// identical. A fallback past more than one generation can only happen
// when disks corrupt data at rest; then workers may be ahead, and the
// server's existing worker-claims-future-step fatal check (REJOIN
// validation) catches it instead of silently diverging.
//
// The manager also owns directory hygiene: ScanAndSweep() removes stale
// "*.tmp.<pid>" siblings whose writer died mid-checkpoint (leaving live
// writers' temps alone — see util::SweepStaleTemps).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/checkpoint.h"
#include "util/fs.h"

namespace threelc::nn {

class CheckpointManager {
 public:
  struct Options {
    // Base checkpoint path; generations live at "<path>.g<N>" beside it.
    std::string path;
    // Generations kept on disk (minimum 1; 2 gives last-good fallback).
    int retain = 2;
    // Block codec for new generations (see checkpoint.h container docs).
    std::string block_codec = "store";
    // Syscall seam for the write path; nullptr = real filesystem.
    util::Fs* fs = nullptr;
  };

  explicit CheckpointManager(Options options);

  // Discover existing generations and sweep dead writers' temp files in
  // the checkpoint directory. Called lazily by Save/Load; call it
  // explicitly to get the sweep count. Idempotent.
  int ScanAndSweep();

  // Write the next generation atomically, then prune beyond retention.
  // Throws std::runtime_error on write failure; the generation number is
  // not consumed, so a retry overwrites the same temp sibling and lands
  // at the same "<path>.g<N>".
  void Save(Model& model, const ServerState& state);

  // Restore the newest usable generation into model/*state, falling back
  // generation by generation (then to a legacy bare-path file). Returns
  // false with *error set when nothing is usable; the number of skipped
  // generations is in fallbacks() and their reasons in fallback_log().
  bool Load(Model& model, ServerState* state, std::string* error);

  const std::string& path() const { return options_.path; }
  std::string GenerationPath(std::uint64_t gen) const;
  // Generations currently tracked on disk (after the last scan/save).
  int generation_count() const { return static_cast<int>(generations_.size()); }
  // Generation number the next Save() will write.
  std::uint64_t next_generation() const { return next_gen_; }
  // Bad generations skipped by the last Load (0 = newest was good).
  int fallbacks() const { return fallbacks_; }
  // The file the last successful Load read.
  const std::string& loaded_path() const { return loaded_path_; }
  // One line per skipped generation: "generation <N> unusable: <why>".
  const std::vector<std::string>& fallback_log() const { return fallback_log_; }

 private:
  Options options_;
  util::Fs& fs_;
  bool scanned_ = false;
  std::vector<std::uint64_t> generations_;  // sorted ascending
  std::uint64_t next_gen_ = 0;
  int fallbacks_ = 0;
  std::string loaded_path_;
  std::vector<std::string> fallback_log_;
};

}  // namespace threelc::nn
