#include "nn/layer.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace threelc::nn {

void Layer::ZeroGrads() {
  for (auto& p : Params()) {
    if (p.grad != nullptr) p.grad->SetZero();
  }
}

void HeInit(Tensor& w, std::int64_t fan_in, util::Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  tensor::FillNormal(w, rng, 0.0f, stddev);
}

void GlorotInit(Tensor& w, std::int64_t fan_in, std::int64_t fan_out,
                util::Rng& rng) {
  const float a =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  tensor::FillUniform(w, rng, -a, a);
}

}  // namespace threelc::nn
