#include "nn/batchnorm.h"

#include <cmath>

#include "util/logging.h"

namespace threelc::nn {

BatchNorm1d::BatchNorm1d(std::string name, std::int64_t features,
                         float momentum, float eps)
    : name_(std::move(name)),
      features_(features),
      momentum_(momentum),
      eps_(eps),
      gamma_(Tensor::Full(Shape{features}, 1.0f)),
      beta_(Shape{features}),
      ggamma_(Shape{features}),
      gbeta_(Shape{features}),
      running_mean_(Shape{features}),
      running_var_(Tensor::Full(Shape{features}, 1.0f)) {}

Tensor BatchNorm1d::Forward(const Tensor& input, bool training) {
  THREELC_CHECK_MSG(
      input.shape().rank() == 2 && input.shape().dim(1) == features_,
      "BatchNorm " << name_ << ": bad input shape");
  const std::int64_t batch = input.shape().dim(0);
  const float* x = input.data();

  Tensor mean(Shape{features_}), var(Shape{features_});
  if (training) {
    float* m = mean.data();
    float* v = var.data();
    for (std::int64_t i = 0; i < batch; ++i) {
      const float* row = x + i * features_;
      for (std::int64_t j = 0; j < features_; ++j) m[j] += row[j];
    }
    const float inv_b = 1.0f / static_cast<float>(batch);
    for (std::int64_t j = 0; j < features_; ++j) m[j] *= inv_b;
    for (std::int64_t i = 0; i < batch; ++i) {
      const float* row = x + i * features_;
      for (std::int64_t j = 0; j < features_; ++j) {
        const float d = row[j] - m[j];
        v[j] += d * d;
      }
    }
    for (std::int64_t j = 0; j < features_; ++j) v[j] *= inv_b;
    // Update running statistics.
    float* rm = running_mean_.data();
    float* rv = running_var_.data();
    for (std::int64_t j = 0; j < features_; ++j) {
      rm[j] = momentum_ * rm[j] + (1.0f - momentum_) * m[j];
      rv[j] = momentum_ * rv[j] + (1.0f - momentum_) * v[j];
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  inv_std_ = Tensor(Shape{features_});
  float* is = inv_std_.data();
  const float* v = var.data();
  for (std::int64_t j = 0; j < features_; ++j) {
    is[j] = 1.0f / std::sqrt(v[j] + eps_);
  }

  xhat_ = Tensor(Shape{batch, features_});
  Tensor out(Shape{batch, features_});
  float* xh = xhat_.data();
  float* o = out.data();
  const float* m = mean.data();
  const float* g = gamma_.data();
  const float* b = beta_.data();
  for (std::int64_t i = 0; i < batch; ++i) {
    const float* row = x + i * features_;
    float* xrow = xh + i * features_;
    float* orow = o + i * features_;
    for (std::int64_t j = 0; j < features_; ++j) {
      xrow[j] = (row[j] - m[j]) * is[j];
      orow[j] = g[j] * xrow[j] + b[j];
    }
  }
  return out;
}

Tensor BatchNorm1d::Backward(const Tensor& grad_output) {
  const std::int64_t batch = grad_output.shape().dim(0);
  THREELC_CHECK(grad_output.SameShape(xhat_));
  const float* gy = grad_output.data();
  const float* xh = xhat_.data();
  const float* is = inv_std_.data();
  const float* g = gamma_.data();

  // dgamma, dbeta, and the per-feature sums used by dx.
  ggamma_.SetZero();
  gbeta_.SetZero();
  float* dgamma = ggamma_.data();
  float* dbeta = gbeta_.data();
  for (std::int64_t i = 0; i < batch; ++i) {
    const float* grow = gy + i * features_;
    const float* xrow = xh + i * features_;
    for (std::int64_t j = 0; j < features_; ++j) {
      dgamma[j] += grow[j] * xrow[j];
      dbeta[j] += grow[j];
    }
  }

  Tensor grad(Shape{batch, features_});
  float* dx = grad.data();
  const float inv_b = 1.0f / static_cast<float>(batch);
  for (std::int64_t i = 0; i < batch; ++i) {
    const float* grow = gy + i * features_;
    const float* xrow = xh + i * features_;
    float* drow = dx + i * features_;
    for (std::int64_t j = 0; j < features_; ++j) {
      // dx = gamma * inv_std / B * (B*dy - sum(dy) - xhat*sum(dy*xhat))
      drow[j] = g[j] * is[j] * inv_b *
                (static_cast<float>(batch) * grow[j] - dbeta[j] -
                 xrow[j] * dgamma[j]);
    }
  }
  return grad;
}

std::vector<ParamRef> BatchNorm1d::Params() {
  // Small layer: bypasses traffic compression (paper §5.1), no weight decay.
  return {
      ParamRef{name_ + "/gamma", &gamma_, &ggamma_, /*compress=*/false,
               /*weight_decay=*/false},
      ParamRef{name_ + "/beta", &beta_, &gbeta_, /*compress=*/false,
               /*weight_decay=*/false},
  };
}

}  // namespace threelc::nn
