// Labeled dataset container and mini-batch sampling.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace threelc::data {

using tensor::Shape;
using tensor::Tensor;

struct Batch {
  Tensor inputs;                     // [batch, ...features]
  std::vector<std::int32_t> labels;  // size == batch
};

// Owns example tensors stored row-major: example i occupies the i-th slice
// of `inputs` along axis 0.
struct Dataset {
  Tensor inputs;                     // [n, ...features]
  std::vector<std::int32_t> labels;  // size == n

  std::int64_t size() const { return inputs.shape().dim(0); }
  std::int64_t example_elements() const {
    return inputs.num_elements() / std::max<std::int64_t>(1, size());
  }
};

// Draws uniformly random mini-batches, optionally adding zero-mean Gaussian
// jitter to inputs — the stand-in for the paper's crop/flip augmentation
// (both inject per-step input variation that keeps gradients from
// collapsing to identical batches).
class Sampler {
 public:
  Sampler(const Dataset& dataset, util::Rng rng, float augment_noise = 0.0f);

  Batch Next(std::int64_t batch_size);

  // The sampler's only mutable state is its RNG; saving/restoring it is the
  // data-pipeline cursor for exact-resume checkpoints (the dataset and
  // augmentation level are reconstructed from the run configuration).
  void SaveState(util::ByteBuffer& out) const { rng_.SaveState(out); }
  void LoadState(util::ByteReader& in) { rng_.LoadState(in); }

 private:
  const Dataset* dataset_;
  util::Rng rng_;
  float augment_noise_;
};

// Deterministic full-dataset evaluation batches of at most `batch_size`.
std::vector<Batch> EvalBatches(const Dataset& dataset, std::int64_t batch_size);

}  // namespace threelc::data
