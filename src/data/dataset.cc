#include "data/dataset.h"

#include <algorithm>

#include "util/logging.h"

namespace threelc::data {

Sampler::Sampler(const Dataset& dataset, util::Rng rng, float augment_noise)
    : dataset_(&dataset), rng_(std::move(rng)), augment_noise_(augment_noise) {
  THREELC_CHECK_MSG(dataset.size() > 0, "empty dataset");
}

Batch Sampler::Next(std::int64_t batch_size) {
  const std::int64_t n = dataset_->size();
  const std::int64_t per_example = dataset_->example_elements();
  std::vector<std::int64_t> dims = dataset_->inputs.shape().dims();
  dims[0] = batch_size;

  Batch batch;
  batch.inputs = Tensor(Shape(dims));
  batch.labels.resize(static_cast<std::size_t>(batch_size));
  const float* src = dataset_->inputs.data();
  float* dst = batch.inputs.data();
  for (std::int64_t i = 0; i < batch_size; ++i) {
    const auto idx = static_cast<std::int64_t>(
        rng_.Below(static_cast<std::uint64_t>(n)));
    std::copy_n(src + idx * per_example, per_example, dst + i * per_example);
    batch.labels[static_cast<std::size_t>(i)] =
        dataset_->labels[static_cast<std::size_t>(idx)];
  }
  if (augment_noise_ > 0.0f) {
    const std::size_t total = batch.inputs.size();
    for (std::size_t i = 0; i < total; ++i) {
      dst[i] += rng_.NormalFloat(0.0f, augment_noise_);
    }
  }
  return batch;
}

std::vector<Batch> EvalBatches(const Dataset& dataset,
                               std::int64_t batch_size) {
  THREELC_CHECK(batch_size > 0);
  const std::int64_t n = dataset.size();
  const std::int64_t per_example = dataset.example_elements();
  std::vector<Batch> batches;
  for (std::int64_t start = 0; start < n; start += batch_size) {
    const std::int64_t len = std::min(batch_size, n - start);
    std::vector<std::int64_t> dims = dataset.inputs.shape().dims();
    dims[0] = len;
    Batch b;
    b.inputs = Tensor(Shape(dims));
    std::copy_n(dataset.inputs.data() + start * per_example,
                len * per_example, b.inputs.data());
    b.labels.assign(dataset.labels.begin() + start,
                    dataset.labels.begin() + start + len);
    batches.push_back(std::move(b));
  }
  return batches;
}

}  // namespace threelc::data
