// Synthetic classification datasets.
//
// Substitute for CIFAR-10 (see DESIGN.md): a fixed random *teacher network*
// labels Gaussian-cluster inputs, producing a 10-class task that (a) is
// learnable but not trivial, (b) yields the zero-centred, decaying
// state-change distributions that traffic compression behaviour depends
// on, and (c) needs no external data files.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace threelc::data {

struct SyntheticConfig {
  std::int64_t num_train = 8192;
  std::int64_t num_test = 2048;
  std::int64_t input_dim = 192;  // e.g. 8x8x3 "images", flattened
  std::int32_t num_classes = 10;
  std::int64_t teacher_hidden = 48;
  // Per-class mean offset magnitude (cluster structure strength).
  float cluster_scale = 0.8f;
  // Fraction of labels replaced with uniform noise (task difficulty knob).
  float label_noise = 0.02f;
  std::uint64_t seed = 42;
};

struct SyntheticData {
  Dataset train;
  Dataset test;
};

// Generates train/test splits from the same teacher and cluster structure.
SyntheticData MakeTeacherDataset(const SyntheticConfig& config);

// Reshapes a flat-input dataset into [n, channels, height, width] images
// for convolutional models. channels*height*width must equal input_dim.
Dataset AsImages(const Dataset& flat, std::int64_t channels,
                 std::int64_t height, std::int64_t width);

// Tiny 2-D two-spiral dataset used by the quickstart example.
SyntheticData MakeTwoSpirals(std::int64_t num_train, std::int64_t num_test,
                             std::uint64_t seed);

}  // namespace threelc::data
