#include "data/synthetic.h"

#include <cmath>
#include <numbers>
#include <vector>

#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace threelc::data {

namespace {

// A fixed two-layer MLP teacher: logits = relu(x * W1) * W2.
struct Teacher {
  Tensor w1;  // [input_dim, hidden]
  Tensor w2;  // [hidden, classes]

  std::int32_t Label(const float* x, std::int64_t input_dim) const {
    const std::int64_t hidden = w1.shape().dim(1);
    const std::int64_t classes = w2.shape().dim(1);
    std::vector<float> h(static_cast<std::size_t>(hidden), 0.0f);
    const float* pw1 = w1.data();
    for (std::int64_t i = 0; i < input_dim; ++i) {
      const float xi = x[i];
      const float* row = pw1 + i * hidden;
      for (std::int64_t j = 0; j < hidden; ++j) h[j] += xi * row[j];
    }
    for (auto& v : h) v = v > 0.0f ? v : 0.0f;
    const float* pw2 = w2.data();
    std::vector<float> logits(static_cast<std::size_t>(classes), 0.0f);
    for (std::int64_t j = 0; j < hidden; ++j) {
      const float hj = h[static_cast<std::size_t>(j)];
      const float* row = pw2 + j * classes;
      for (std::int64_t c = 0; c < classes; ++c) logits[c] += hj * row[c];
    }
    std::size_t best = 0;
    for (std::size_t c = 1; c < logits.size(); ++c) {
      if (logits[c] > logits[best]) best = c;
    }
    return static_cast<std::int32_t>(best);
  }
};

Dataset Generate(const SyntheticConfig& cfg, const Teacher& teacher,
                 const Tensor& class_means, std::int64_t n, util::Rng& rng) {
  Dataset ds;
  ds.inputs = Tensor(Shape{n, cfg.input_dim});
  ds.labels.resize(static_cast<std::size_t>(n));
  float* x = ds.inputs.data();
  const float* means = class_means.data();
  for (std::int64_t i = 0; i < n; ++i) {
    // Draw a latent cluster, offset the Gaussian sample by its mean, then
    // label with the teacher — cluster structure and decision boundary are
    // correlated but not identical, like natural image classes.
    const auto cluster = static_cast<std::int64_t>(
        rng.Below(static_cast<std::uint64_t>(cfg.num_classes)));
    float* row = x + i * cfg.input_dim;
    const float* mu = means + cluster * cfg.input_dim;
    for (std::int64_t j = 0; j < cfg.input_dim; ++j) {
      row[j] = mu[j] + rng.NormalFloat(0.0f, 1.0f);
    }
    std::int32_t label = teacher.Label(row, cfg.input_dim);
    if (cfg.label_noise > 0.0f && rng.Bernoulli(cfg.label_noise)) {
      label = static_cast<std::int32_t>(
          rng.Below(static_cast<std::uint64_t>(cfg.num_classes)));
    }
    ds.labels[static_cast<std::size_t>(i)] = label;
  }
  return ds;
}

}  // namespace

SyntheticData MakeTeacherDataset(const SyntheticConfig& cfg) {
  THREELC_CHECK(cfg.num_train > 0 && cfg.num_test > 0 && cfg.input_dim > 0);
  THREELC_CHECK(cfg.num_classes >= 2 && cfg.teacher_hidden > 0);
  util::Rng rng(cfg.seed);

  Teacher teacher;
  teacher.w1 = Tensor(Shape{cfg.input_dim, cfg.teacher_hidden});
  teacher.w2 = Tensor(Shape{cfg.teacher_hidden, cfg.num_classes});
  const float s1 = std::sqrt(2.0f / static_cast<float>(cfg.input_dim));
  const float s2 = std::sqrt(2.0f / static_cast<float>(cfg.teacher_hidden));
  tensor::FillNormal(teacher.w1, rng, 0.0f, s1);
  tensor::FillNormal(teacher.w2, rng, 0.0f, s2);

  Tensor class_means(Shape{cfg.num_classes, cfg.input_dim});
  tensor::FillNormal(class_means, rng, 0.0f, cfg.cluster_scale);

  SyntheticData data;
  data.train = Generate(cfg, teacher, class_means, cfg.num_train, rng);
  data.test = Generate(cfg, teacher, class_means, cfg.num_test, rng);
  return data;
}

Dataset AsImages(const Dataset& flat, std::int64_t channels,
                 std::int64_t height, std::int64_t width) {
  const std::int64_t n = flat.size();
  THREELC_CHECK_MSG(channels * height * width == flat.example_elements(),
                    "image dims do not match input_dim");
  Dataset out;
  out.inputs = flat.inputs.Reshaped(Shape{n, channels, height, width});
  out.labels = flat.labels;
  return out;
}

SyntheticData MakeTwoSpirals(std::int64_t num_train, std::int64_t num_test,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  auto gen = [&](std::int64_t n) {
    Dataset ds;
    ds.inputs = Tensor(Shape{n, 2});
    ds.labels.resize(static_cast<std::size_t>(n));
    float* x = ds.inputs.data();
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int32_t cls = static_cast<std::int32_t>(rng.Below(2));
      const double t = 0.3 + 1.2 * rng.Uniform();  // radius sweep, ~1.2 turns
      const double angle = t * 2.0 * std::numbers::pi +
                           (cls == 0 ? 0.0 : std::numbers::pi);
      x[i * 2 + 0] = static_cast<float>(t * std::cos(angle)) +
                     rng.NormalFloat(0.0f, 0.05f);
      x[i * 2 + 1] = static_cast<float>(t * std::sin(angle)) +
                     rng.NormalFloat(0.0f, 0.05f);
      ds.labels[static_cast<std::size_t>(i)] = cls;
    }
    return ds;
  };
  SyntheticData data;
  data.train = gen(num_train);
  data.test = gen(num_test);
  return data;
}

}  // namespace threelc::data
