#include "net/event_sim.h"

#include <algorithm>

#include "util/logging.h"

namespace threelc::net {

namespace {

double TotalCompute(const std::vector<LayerCost>& layers) {
  double total = 0.0;
  // Forward + backward passes; we model them as symmetric in cost.
  for (const auto& l : layers) total += 2.0 * l.compute_seconds;
  return total;
}

double TotalTransfer(const std::vector<LayerCost>& layers,
                     double bandwidth_bps) {
  double bytes = 0.0;
  for (const auto& l : layers) {
    bytes += static_cast<double>(l.push_bytes + l.pull_bytes);
  }
  return bytes * 8.0 / bandwidth_bps;
}

StepTimeline Summarize(const std::vector<LayerCost>& layers,
                       double bandwidth_bps, double makespan) {
  StepTimeline t;
  t.makespan_seconds = makespan;
  t.compute_seconds = TotalCompute(layers);
  t.transfer_seconds = TotalTransfer(layers, bandwidth_bps);
  if (t.transfer_seconds > 0.0) {
    const double exposed = makespan - t.compute_seconds;
    t.overlap_fraction =
        std::clamp(1.0 - exposed / t.transfer_seconds, 0.0, 1.0);
  } else {
    t.overlap_fraction = 0.0;
  }
  return t;
}

}  // namespace

StepTimeline SimulateFineGrainedStep(const std::vector<LayerCost>& layers,
                                     double bandwidth_bps) {
  THREELC_CHECK(bandwidth_bps > 0.0);
  const std::size_t n = layers.size();
  if (n == 0) return Summarize(layers, bandwidth_bps, 0.0);

  // Simulate several consecutive steps; report the steady-state duration.
  constexpr int kSteps = 6;
  double uplink_free = 0.0;    // worker NIC, egress (pushes)
  double downlink_free = 0.0;  // worker NIC, ingress (pulls)
  std::vector<double> pull_done(n, 0.0);  // from the *previous* step
  double clock = 0.0;          // device compute timeline
  double prev_step_start = 0.0;
  double last_step_duration = 0.0;

  for (int step = 0; step < kSteps; ++step) {
    const double step_start = clock;
    // Backward pass: last layer first; push layer i as soon as its
    // backward slice completes.
    for (std::size_t r = 0; r < n; ++r) {
      const std::size_t i = n - 1 - r;
      clock += layers[i].compute_seconds;
      const double push_start = std::max(uplink_free, clock);
      const double push_end =
          push_start +
          static_cast<double>(layers[i].push_bytes) * 8.0 / bandwidth_bps;
      uplink_free = push_end;
      // The server aggregates and publishes layer i's delta; the pull
      // streams back on the downlink.
      const double pull_start = std::max(downlink_free, push_end);
      pull_done[i] =
          pull_start +
          static_cast<double>(layers[i].pull_bytes) * 8.0 / bandwidth_bps;
      downlink_free = pull_done[i];
    }
    // Forward pass of the next step: layer i needs its pull and the
    // previous layer's forward slice.
    for (std::size_t i = 0; i < n; ++i) {
      clock = std::max(clock, pull_done[i]);
      clock += layers[i].compute_seconds;
    }
    last_step_duration = clock - step_start;
    prev_step_start = step_start;
  }
  (void)prev_step_start;
  return Summarize(layers, bandwidth_bps, last_step_duration);
}

StepTimeline SimulateCoarseStep(const std::vector<LayerCost>& layers,
                                double bandwidth_bps) {
  THREELC_CHECK(bandwidth_bps > 0.0);
  // Global barrier: the whole backward pass, then every push, then the
  // update, then every pull, then the whole forward pass — nothing
  // overlaps.
  const double makespan =
      TotalCompute(layers) + TotalTransfer(layers, bandwidth_bps);
  return Summarize(layers, bandwidth_bps, makespan);
}

}  // namespace threelc::net
