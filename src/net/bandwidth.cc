#include "net/bandwidth.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace threelc::net {

std::string LinkConfig::ToString() const {
  std::ostringstream oss;
  if (bandwidth_bps >= 1e9) {
    oss << bandwidth_bps / 1e9 << " Gbps";
  } else {
    oss << bandwidth_bps / 1e6 << " Mbps";
  }
  return oss.str();
}

NetworkModel::NetworkModel(LinkConfig link, double overlap_fraction)
    : link_(link), overlap_fraction_(overlap_fraction) {
  THREELC_CHECK(link.bandwidth_bps > 0);
  THREELC_CHECK(overlap_fraction >= 0.0 && overlap_fraction <= 1.0);
}

double NetworkModel::TransferSeconds(std::size_t bytes) const {
  return static_cast<double>(bytes) * 8.0 / link_.bandwidth_bps;
}

double NetworkModel::StepSeconds(double compute_seconds, double codec_seconds,
                                 std::size_t push_bytes_bottleneck,
                                 std::size_t pull_bytes_bottleneck) const {
  const double transfer = link_.overhead_seconds +
                          TransferSeconds(push_bytes_bottleneck) +
                          TransferSeconds(pull_bytes_bottleneck);
  const double hidden =
      overlap_fraction_ * std::min(transfer, compute_seconds);
  return compute_seconds + codec_seconds + transfer - hidden;
}

}  // namespace threelc::net
