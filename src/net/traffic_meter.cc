#include "net/traffic_meter.h"

#include "util/logging.h"

namespace threelc::net {

DirectionBitsPerValue PerDirectionBitsPerValue(const StepTraffic& step) {
  DirectionBitsPerValue out;
  if (step.push_values > 0) {
    out.push = static_cast<double>(step.push_bytes) * 8.0 /
               static_cast<double>(step.push_values);
  }
  if (step.pull_values > 0) {
    out.pull = static_cast<double>(step.pull_bytes) * 8.0 /
               static_cast<double>(step.pull_values);
  }
  return out;
}

void TrafficMeter::BeginStep() { steps_.emplace_back(); }

void TrafficMeter::RecordPush(std::size_t bytes, std::size_t values) {
  THREELC_CHECK_MSG(!steps_.empty(), "RecordPush before BeginStep");
  steps_.back().push_bytes += bytes;
  steps_.back().push_values += values;
}

void TrafficMeter::RecordPull(std::size_t bytes, std::size_t values) {
  THREELC_CHECK_MSG(!steps_.empty(), "RecordPull before BeginStep");
  steps_.back().pull_bytes += bytes;
  steps_.back().pull_values += values;
}

const StepTraffic& TrafficMeter::current() const {
  THREELC_CHECK_MSG(!steps_.empty(), "no current step");
  return steps_.back();
}

std::size_t TrafficMeter::TotalPushBytes() const {
  std::size_t total = 0;
  for (const auto& s : steps_) total += s.push_bytes;
  return total;
}

std::size_t TrafficMeter::TotalPullBytes() const {
  std::size_t total = 0;
  for (const auto& s : steps_) total += s.pull_bytes;
  return total;
}

std::size_t TrafficMeter::TotalValues() const {
  std::size_t total = 0;
  for (const auto& s : steps_) total += s.push_values + s.pull_values;
  return total;
}

double TrafficMeter::AverageBitsPerValue() const {
  const std::size_t values = TotalValues();
  if (values == 0) return 0.0;
  return static_cast<double>(TotalBytes()) * 8.0 /
         static_cast<double>(values);
}

DirectionBitsPerValue TrafficMeter::AveragePerDirectionBitsPerValue() const {
  StepTraffic totals;
  for (const auto& s : steps_) {
    totals.push_bytes += s.push_bytes;
    totals.pull_bytes += s.pull_bytes;
    totals.push_values += s.push_values;
    totals.pull_values += s.pull_values;
  }
  return PerDirectionBitsPerValue(totals);
}

double TrafficMeter::AverageCompressionRatio() const {
  const std::size_t bytes = TotalBytes();
  if (bytes == 0) return 0.0;
  return static_cast<double>(TotalValues() * sizeof(float)) /
         static_cast<double>(bytes);
}

}  // namespace threelc::net
