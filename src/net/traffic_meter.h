// Traffic accounting: bytes on the wire per step, split by direction.
//
// Fig. 9 plots compressed bits per state change for pushes vs. pulls at
// every training step; Table 2 averages the same series — both read from
// this meter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace threelc::net {

struct StepTraffic {
  std::size_t push_bytes = 0;     // total across workers
  std::size_t pull_bytes = 0;     // total across workers
  std::size_t push_values = 0;    // state-change values pushed
  std::size_t pull_values = 0;    // state-change values pulled
};

// Compressed bits per state-change value, split by direction — the y-axis
// of Fig. 9. A direction with no recorded values reports 0.
struct DirectionBitsPerValue {
  double push = 0.0;
  double pull = 0.0;
};

// Per-direction bits/value for one step's traffic.
DirectionBitsPerValue PerDirectionBitsPerValue(const StepTraffic& step);

class TrafficMeter {
 public:
  // Begin accounting for a new step.
  void BeginStep();
  void RecordPush(std::size_t bytes, std::size_t values);
  void RecordPull(std::size_t bytes, std::size_t values);

  const std::vector<StepTraffic>& steps() const { return steps_; }
  const StepTraffic& current() const;

  std::size_t TotalPushBytes() const;
  std::size_t TotalPullBytes() const;
  std::size_t TotalBytes() const { return TotalPushBytes() + TotalPullBytes(); }
  std::size_t TotalValues() const;

  // Average bits per state change over all recorded traffic.
  double AverageBitsPerValue() const;
  // As above, split by direction (aggregated over all recorded steps).
  DirectionBitsPerValue AveragePerDirectionBitsPerValue() const;
  // Average ratio vs. 32-bit float transmission.
  double AverageCompressionRatio() const;

 private:
  std::vector<StepTraffic> steps_;
};

}  // namespace threelc::net
