// Network cost model.
//
// The paper emulates constrained links (10 Mbps / 100 Mbps / 1 Gbps) with
// Linux Traffic Control on the worker and server nodes, then *extrapolates*
// slow-network training times from per-step measurements (§5.2). We model
// the same arithmetic explicitly. In the paper's cluster each physical
// machine hosts two workers behind one shaped NIC and transfers proceed in
// parallel across machines, so the per-step bottleneck is one machine's
// share of push + pull bytes:
//
//   transfer(step) = overhead + bottleneck_bytes * 8 / bw
//   step_time      = compute + codec_overhead + (1 - overlap) * transfer
//
// `overhead` is the per-step synchronization/protocol cost of driving
// hundreds of fine-grained tensor RPCs through a shaped link; the preset
// values below were calibrated so the *baseline* (32-bit float) per-step
// times match the paper's Table 1 — every other design's speedup is then a
// prediction, not a fit. `overlap` models per-layer barriers hiding
// communication behind computation (§2.1); the amount hidden is bounded by
// min(transfer, compute).
#pragma once

#include <cstddef>
#include <string>

namespace threelc::net {

struct LinkConfig {
  double bandwidth_bps = 1e9;
  // Fixed per-step synchronization/protocol overhead (see header comment).
  double overhead_seconds = 0.003;

  static LinkConfig TenMbps() { return {10e6, 0.65}; }
  static LinkConfig HundredMbps() { return {100e6, 0.03}; }
  static LinkConfig OneGbps() { return {1e9, 0.003}; }

  std::string ToString() const;
};

class NetworkModel {
 public:
  explicit NetworkModel(LinkConfig link, double overlap_fraction = 0.0);

  const LinkConfig& link() const { return link_; }

  // Seconds to move `bytes` through the bottleneck link (no latency term).
  double TransferSeconds(std::size_t bytes) const;

  // Wall-clock seconds for one synchronous training step. The byte counts
  // are the bytes that traverse the bottleneck link (one machine's share;
  // see header comment), not cluster-wide totals.
  double StepSeconds(double compute_seconds, double codec_seconds,
                     std::size_t push_bytes_bottleneck,
                     std::size_t pull_bytes_bottleneck) const;

 private:
  LinkConfig link_;
  double overlap_fraction_;
};

}  // namespace threelc::net
