// Discrete-event simulation of one synchronous training step with
// fine-grained, per-tensor barriers (paper §2.1).
//
// Modern frameworks split the global barrier into per-layer barriers so
// communication overlaps computation: a layer's gradient push starts the
// moment its backward pass finishes (while earlier layers still compute),
// and the next step's forward pass pulls each layer's delta just before
// evaluating that layer. This simulator computes the step makespan under
// that pipelining and under a coarse barrier (all compute, then all
// transfer), quantifying how much latency fine-grained barriers hide —
// the effect that makes ResNets a *harder* target for compression to show
// gains on (§5.2) and the justification for the analytic time model's
// overlap knob.
//
// Model: one worker machine NIC at `bandwidth_bps`, serving transfers
// FIFO. Backward pass produces tensors in reverse layer order at the given
// per-layer compute times; a tensor's push is enqueued when its backward
// slice completes. The pull of layer L must finish before the next step's
// forward slice of L can start. The simulated quantity is the steady-state
// per-step makespan.
#pragma once

#include <cstdint>
#include <vector>

namespace threelc::net {

struct LayerCost {
  // Bytes this layer's state change occupies on the wire, per direction.
  std::size_t push_bytes = 0;
  std::size_t pull_bytes = 0;
  // Seconds of backward (and, symmetrically, forward) compute.
  double compute_seconds = 0.0;
};

struct StepTimeline {
  double makespan_seconds = 0.0;   // one steady-state step
  double compute_seconds = 0.0;    // total compute in the step
  double transfer_seconds = 0.0;   // total wire time of all transfers
  // Fraction of transfer time hidden behind computation:
  // 1 - (makespan - compute) / transfer (clamped to [0, 1]).
  double overlap_fraction = 0.0;
};

// Fine-grained per-layer barriers: pushes stream out during the backward
// pass (last layer first), pulls stream in before each forward slice.
StepTimeline SimulateFineGrainedStep(const std::vector<LayerCost>& layers,
                                     double bandwidth_bps);

// Coarse global barrier: all compute, then all pushes, then all pulls.
StepTimeline SimulateCoarseStep(const std::vector<LayerCost>& layers,
                                double bandwidth_bps);

}  // namespace threelc::net
