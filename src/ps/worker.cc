#include "ps/worker.h"

#include <stdexcept>
#include <string>

#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace threelc::ps {

Worker::Worker(int id, nn::Model& local_model, const TensorPlan& plan,
               std::shared_ptr<const Compressor> codec)
    : id_(id),
      model_(&local_model),
      plan_(&plan),
      codec_(std::move(codec)),
      params_(local_model.Params()) {
  THREELC_CHECK_MSG(params_.size() == plan.size(),
                    "plan/model tensor count mismatch");
  push_ctx_.resize(plan.size());
  pull_scratch_.reserve(plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const auto& e = plan.entry(i);
    THREELC_CHECK_MSG(e.shape == params_[i].value->shape(),
                      "plan/model shape mismatch for " << e.name);
    if (e.compressed) push_ctx_[i] = codec_->MakeContext(e.shape);
    pull_scratch_.emplace_back(e.shape);
  }
}

std::size_t Worker::EncodePush(std::size_t idx, ByteBuffer& out,
                               compress::EncodeStats* stats) {
  THREELC_CHECK(idx < params_.size());
  const std::size_t before = out.size();
  const tensor::Tensor& grad = *params_[idx].grad;
  if (plan_->entry(idx).compressed) {
    codec_->Encode(grad, *push_ctx_[idx], out, stats);
  } else {
    out.Append(grad.data(), grad.byte_size());
    if (stats != nullptr) {
      stats->elements = static_cast<std::size_t>(grad.num_elements());
      stats->payload_bytes = grad.byte_size();
    }
  }
  return out.size() - before;
}

void Worker::ApplyPull(std::size_t idx, ByteReader& in) {
  THREELC_CHECK(idx < params_.size());
  tensor::Tensor& delta = pull_scratch_[idx];
  if (plan_->entry(idx).compressed) {
    codec_->Decode(in, delta);
  } else {
    in.ReadInto(delta.data(), delta.byte_size());
  }
  tensor::Add(*params_[idx].value, delta);
}

void Worker::SaveCodecState(ByteBuffer& out) const {
  out.AppendU32(static_cast<std::uint32_t>(push_ctx_.size()));
  for (const auto& ctx : push_ctx_) {
    out.AppendU8(ctx ? 1 : 0);
    if (ctx) ctx->SaveState(out);
  }
}

void Worker::LoadCodecState(ByteReader& in) {
  const std::uint32_t count = in.ReadU32();
  if (count != push_ctx_.size()) {
    throw std::runtime_error("codec state mismatch: blob has " +
                             std::to_string(count) + " contexts, plan has " +
                             std::to_string(push_ctx_.size()));
  }
  for (auto& ctx : push_ctx_) {
    const bool present = in.ReadU8() != 0;
    if (present != (ctx != nullptr)) {
      throw std::runtime_error(
          "codec state mismatch: compressed-entry set differs from the plan");
    }
    if (ctx) ctx->LoadState(in);
  }
}

std::size_t Worker::CodecStateBytes() const {
  std::size_t total = 0;
  for (const auto& ctx : push_ctx_) {
    if (ctx) total += ctx->StateBytes();
  }
  return total;
}

}  // namespace threelc::ps
