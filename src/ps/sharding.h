// Server sharding: assign tensors to parameter-server shards.
//
// The paper's Figure 1 shows the global model partitioned across multiple
// servers; each shard owns a subset of tensors and serves their pushes and
// pulls. Balanced assignment keeps any one server NIC from becoming the
// bottleneck. We use greedy longest-processing-time (LPT) bin packing on
// element counts, which is within 4/3 of optimal makespan.
#pragma once

#include <cstdint>
#include <vector>

#include "ps/plan.h"

namespace threelc::ps {

struct ShardAssignment {
  // shard_of[tensor_index] = shard id in [0, num_shards).
  std::vector<int> shard_of;
  // Total elements assigned to each shard.
  std::vector<std::int64_t> shard_elements;

  int num_shards() const { return static_cast<int>(shard_elements.size()); }

  // Elements on the most-loaded shard (the per-step server bottleneck).
  std::int64_t MaxShardElements() const;
  // Load imbalance: max shard / ideal (total / shards); 1.0 is perfect.
  double Imbalance() const;
};

// Greedy LPT partition of the plan's tensors across `num_shards` shards.
ShardAssignment ShardPlan(const TensorPlan& plan, int num_shards);

}  // namespace threelc::ps
