// Worker-side state-change transmission: compress local gradients for the
// push, decode shared model-delta pulls, and apply them to the local model
// (paper Fig. 2).
//
// Each worker keeps one push codec context per compressed tensor (the
// gradient-direction error-accumulation buffers live here) and applies
// decoded pull deltas additively to its local parameters. Because every
// worker decodes the same shared payload, local models stay identical
// across workers (BSP).
#pragma once

#include <memory>
#include <vector>

#include "compress/compressor.h"
#include "nn/model.h"
#include "ps/plan.h"

namespace threelc::ps {

using compress::Compressor;
using util::ByteBuffer;
using util::ByteReader;

class Worker {
 public:
  // `local_model` must outlive the worker; `codec` compresses gradient
  // pushes for the plan's compressed entries.
  Worker(int id, nn::Model& local_model, const TensorPlan& plan,
         std::shared_ptr<const Compressor> codec);

  int id() const { return id_; }
  nn::Model& model() { return *model_; }

  // Encode this worker's gradient for tensor `idx` (from the local model's
  // grad tensor) into `out`. Returns the payload byte count. When `stats`
  // is non-null and the entry is compressed, the codec fills it with
  // per-encode instrumentation (symbol counts, zero-run bytes, residual L2).
  std::size_t EncodePush(std::size_t idx, ByteBuffer& out,
                         compress::EncodeStats* stats = nullptr);

  // Decode a pull payload for tensor `idx` and add the model delta to the
  // local parameter value.
  void ApplyPull(std::size_t idx, ByteReader& in);

  // Total codec state (error-accumulation buffers) held by this worker.
  std::size_t CodecStateBytes() const;

  // Serialize / restore every push context's persistent codec state (the
  // gradient-direction error-accumulation buffers), the blob checkpoint v3
  // carries so a restarted worker resumes the exact quantization
  // trajectory. LoadCodecState throws std::runtime_error when the blob was
  // written under a different plan.
  void SaveCodecState(ByteBuffer& out) const;
  void LoadCodecState(ByteReader& in);

 private:
  int id_;
  nn::Model* model_;
  const TensorPlan* plan_;
  std::shared_ptr<const Compressor> codec_;
  std::vector<nn::ParamRef> params_;
  std::vector<std::unique_ptr<compress::Context>> push_ctx_;
  tensor::Tensor scratch_;  // pull decode target (resized per tensor)
  std::vector<tensor::Tensor> pull_scratch_;
};

}  // namespace threelc::ps
