#include "ps/sharding.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace threelc::ps {

std::int64_t ShardAssignment::MaxShardElements() const {
  std::int64_t max_elems = 0;
  for (auto e : shard_elements) max_elems = std::max(max_elems, e);
  return max_elems;
}

double ShardAssignment::Imbalance() const {
  const std::int64_t total =
      std::accumulate(shard_elements.begin(), shard_elements.end(),
                      std::int64_t{0});
  if (total == 0 || shard_elements.empty()) return 1.0;
  const double ideal =
      static_cast<double>(total) / static_cast<double>(shard_elements.size());
  return static_cast<double>(MaxShardElements()) / ideal;
}

ShardAssignment ShardPlan(const TensorPlan& plan, int num_shards) {
  THREELC_CHECK_MSG(num_shards >= 1, "need at least one shard");
  ShardAssignment assignment;
  assignment.shard_of.assign(plan.size(), 0);
  assignment.shard_elements.assign(static_cast<std::size_t>(num_shards), 0);

  // LPT: place tensors largest-first onto the least-loaded shard.
  std::vector<std::size_t> order(plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto ea = plan.entry(a).shape.num_elements();
    const auto eb = plan.entry(b).shape.num_elements();
    if (ea != eb) return ea > eb;
    return a < b;
  });
  for (std::size_t idx : order) {
    const auto lightest = static_cast<std::size_t>(std::distance(
        assignment.shard_elements.begin(),
        std::min_element(assignment.shard_elements.begin(),
                         assignment.shard_elements.end())));
    assignment.shard_of[idx] = static_cast<int>(lightest);
    assignment.shard_elements[lightest] +=
        plan.entry(idx).shape.num_elements();
  }
  return assignment;
}

}  // namespace threelc::ps
