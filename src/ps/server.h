// Parameter server: owns the global model, aggregates gradient pushes,
// runs the (momentum) optimizer, and prepares *shared* compressed
// model-delta pulls (paper Fig. 2).
//
// Shared pull compression (§3, Fig. 2b): because every worker must apply
// the identical model delta, the server encodes each delta tensor once per
// step and all workers read the same payload. Compression CPU is paid
// once; wire traffic is still paid per worker.
//
// Lossy pulls and convergence: the server tracks the workers' common view
// implicitly through the pull codec's error-accumulation context — each
// step it feeds the *exact* global delta into the codec, and whatever the
// codec did not transmit stays in the codec's residual buffer to be sent
// at a later step.
#pragma once

#include <memory>
#include <vector>

#include "compress/compressor.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "ps/plan.h"

namespace threelc::ps {

using compress::Compressor;
using util::ByteBuffer;
using util::ByteReader;
using util::ByteSpan;

class ParameterServer {
 public:
  // `global_model` must outlive the server; `codec` compresses model-delta
  // pulls for the plan's compressed entries; `optimizer` runs on the
  // aggregated gradients (momentum SGD in the paper's configuration).
  ParameterServer(nn::Model& global_model, const TensorPlan& plan,
                  std::shared_ptr<const Compressor> codec,
                  std::unique_ptr<nn::Optimizer> optimizer);

  // Convenience: momentum-SGD server (the paper's setup).
  ParameterServer(nn::Model& global_model, const TensorPlan& plan,
                  std::shared_ptr<const Compressor> codec,
                  nn::MomentumOptions optimizer_options);

  const TensorPlan& plan() const { return *plan_; }
  nn::Model& global_model() { return *model_; }

  // Start a synchronous step: clears gradient accumulators and the
  // per-step decode/aggregate timing split.
  void BeginStep();

  // Decode one worker's gradient push for tensor `idx`. When `aggregate`
  // is false the payload is consumed but discarded — how the server treats
  // pushes arriving after the backup-worker quorum is met (§2.1).
  void ReceivePush(std::size_t idx, ByteReader& payload, bool aggregate = true);

  // Wall time this step spent inside ReceivePush, split into the codec
  // decode and the gradient accumulation — the decode/aggregate halves of
  // the RunStep breakdown. Reset by BeginStep.
  struct StepTimings {
    double decode_ms = 0.0;
    double aggregate_ms = 0.0;
  };
  const StepTimings& step_timings() const { return step_timings_; }

  // After all pushes: average gradients over `num_contributions` and run
  // the optimizer on the global model.
  void Update(float lr, int num_contributions);

  // Encode this step's shared pull payloads from the post-update model
  // deltas. When `stats` is non-null it is resized to the plan size and
  // each compressed entry's encode instrumentation is recorded in place.
  void PreparePulls(std::vector<compress::EncodeStats>* stats = nullptr);

  // Convenience: Update followed by PreparePulls.
  void UpdateAndPreparePulls(float lr, int num_contributions);

  // The shared compressed pull payload for tensor `idx` (valid until the
  // next UpdateAndPreparePulls).
  ByteSpan PullPayload(std::size_t idx) const;

  // Aggregated (averaged) gradient for tensor idx — exposed for tests.
  const tensor::Tensor& AggregatedGrad(std::size_t idx) const;

  // Serialize/restore everything beyond the model tensors the server
  // carries across steps: the optimizer's state (momentum velocities), the
  // per-slot prev_value snapshots PreparePulls diffs against, and the pull
  // codec's error-accumulation contexts. Together with the model this is
  // the full server-side recurrence, so a server restarted from a
  // checkpoint holding this blob continues a bitwise-identical trajectory.
  // Meaningful only between steps (after PreparePulls, before the next
  // BeginStep); agg_grad and scratch are transient and not saved.
  void SaveState(ByteBuffer& out) const;
  // Throws std::runtime_error when the blob disagrees with the plan.
  void LoadState(ByteReader& in);

 private:
  nn::Model* model_;
  const TensorPlan* plan_;
  std::shared_ptr<const Compressor> codec_;
  std::unique_ptr<nn::Optimizer> optimizer_;
  std::vector<nn::ParamRef> params_;

  struct Slot {
    tensor::Tensor agg_grad;    // sum of decoded pushes this step
    tensor::Tensor scratch;     // decode target
    tensor::Tensor prev_value;  // snapshot for delta computation
    tensor::Tensor delta;       // scratch: value - prev_value
    std::unique_ptr<compress::Context> pull_ctx;  // compressed entries only
    ByteBuffer pull_payload;
  };
  std::vector<Slot> slots_;
  StepTimings step_timings_;
};

}  // namespace threelc::ps
