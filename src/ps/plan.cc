#include "ps/plan.h"

namespace threelc::ps {

TensorPlan TensorPlan::FromParams(const std::vector<nn::ParamRef>& params,
                                  std::int64_t min_compress_elems) {
  TensorPlan plan;
  plan.entries_.reserve(params.size());
  for (const auto& p : params) {
    PlanEntry e;
    e.name = p.name;
    e.shape = p.value->shape();
    e.compressed =
        p.compress && p.value->num_elements() >= min_compress_elems;
    plan.entries_.push_back(std::move(e));
  }
  return plan;
}

std::int64_t TensorPlan::TotalElements() const {
  std::int64_t n = 0;
  for (const auto& e : entries_) n += e.shape.num_elements();
  return n;
}

std::int64_t TensorPlan::CompressedElements() const {
  std::int64_t n = 0;
  for (const auto& e : entries_) {
    if (e.compressed) n += e.shape.num_elements();
  }
  return n;
}

}  // namespace threelc::ps
