#include "ps/server.h"

#include <stdexcept>
#include <string>

#include "tensor/tensor_ops.h"
#include "util/logging.h"
#include "util/timer.h"

namespace threelc::ps {

ParameterServer::ParameterServer(nn::Model& global_model,
                                 const TensorPlan& plan,
                                 std::shared_ptr<const Compressor> codec,
                                 nn::MomentumOptions optimizer_options)
    : ParameterServer(global_model, plan, std::move(codec),
                      std::make_unique<nn::MomentumSgd>(optimizer_options)) {}

ParameterServer::ParameterServer(nn::Model& global_model,
                                 const TensorPlan& plan,
                                 std::shared_ptr<const Compressor> codec,
                                 std::unique_ptr<nn::Optimizer> optimizer)
    : model_(&global_model),
      plan_(&plan),
      codec_(std::move(codec)),
      optimizer_(std::move(optimizer)),
      params_(global_model.Params()) {
  THREELC_CHECK_MSG(optimizer_ != nullptr, "server needs an optimizer");
  THREELC_CHECK_MSG(params_.size() == plan.size(),
                    "plan/model tensor count mismatch");
  slots_.reserve(plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const auto& e = plan.entry(i);
    THREELC_CHECK_MSG(e.shape == params_[i].value->shape(),
                      "plan/model shape mismatch for " << e.name);
    Slot slot;
    slot.agg_grad = tensor::Tensor(e.shape);
    slot.scratch = tensor::Tensor(e.shape);
    slot.prev_value = *params_[i].value;
    slot.delta = tensor::Tensor(e.shape);
    if (e.compressed) slot.pull_ctx = codec_->MakeContext(e.shape);
    slots_.push_back(std::move(slot));
  }
}

void ParameterServer::BeginStep() {
  for (auto& slot : slots_) slot.agg_grad.SetZero();
  step_timings_ = StepTimings{};
}

void ParameterServer::ReceivePush(std::size_t idx, ByteReader& payload,
                                  bool aggregate) {
  THREELC_CHECK(idx < slots_.size());
  Slot& slot = slots_[idx];
  util::WallTimer timer;
  if (plan_->entry(idx).compressed) {
    codec_->Decode(payload, slot.scratch);
  } else {
    payload.ReadInto(slot.scratch.data(), slot.scratch.byte_size());
  }
  step_timings_.decode_ms += timer.ElapsedMillis();
  if (aggregate) {
    timer.Reset();
    tensor::Add(slot.agg_grad, slot.scratch);
    step_timings_.aggregate_ms += timer.ElapsedMillis();
  }
}

void ParameterServer::Update(float lr, int num_contributions) {
  THREELC_CHECK(num_contributions >= 1);
  const float inv = 1.0f / static_cast<float>(num_contributions);
  // Install averaged gradients into the model's grad tensors, then step the
  // optimizer on the global parameters.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    tensor::Scale(slot.agg_grad, inv);
    *params_[i].grad = slot.agg_grad;
  }
  optimizer_->ApplyGradients(params_, lr);
}

void ParameterServer::PreparePulls(std::vector<compress::EncodeStats>* stats) {
  if (stats != nullptr) {
    stats->assign(slots_.size(), compress::EncodeStats{});
  }
  // Compute per-tensor model deltas and encode shared pull payloads.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    const tensor::Tensor& value = *params_[i].value;
    slot.delta = tensor::Difference(value, slot.prev_value);
    slot.pull_payload.Clear();
    if (plan_->entry(i).compressed) {
      codec_->Encode(slot.delta, *slot.pull_ctx, slot.pull_payload,
                     stats != nullptr ? &(*stats)[i] : nullptr);
    } else {
      slot.pull_payload.Append(slot.delta.data(), slot.delta.byte_size());
    }
    slot.prev_value = value;
  }
}

void ParameterServer::UpdateAndPreparePulls(float lr, int num_contributions) {
  Update(lr, num_contributions);
  PreparePulls();
}

ByteSpan ParameterServer::PullPayload(std::size_t idx) const {
  THREELC_CHECK(idx < slots_.size());
  return slots_[idx].pull_payload.span();
}

const tensor::Tensor& ParameterServer::AggregatedGrad(std::size_t idx) const {
  THREELC_CHECK(idx < slots_.size());
  return slots_[idx].agg_grad;
}

void ParameterServer::SaveState(ByteBuffer& out) const {
  optimizer_->SaveState(out);
  out.AppendU32(static_cast<std::uint32_t>(slots_.size()));
  for (const Slot& slot : slots_) {
    out.Append(slot.prev_value.data(), slot.prev_value.byte_size());
    out.AppendU8(slot.pull_ctx ? 1 : 0);
    if (slot.pull_ctx) slot.pull_ctx->SaveState(out);
  }
}

void ParameterServer::LoadState(ByteReader& in) {
  optimizer_->LoadState(in);
  const std::uint32_t count = in.ReadU32();
  if (count != slots_.size()) {
    throw std::runtime_error("server state mismatch: blob has " +
                             std::to_string(count) + " slots, plan has " +
                             std::to_string(slots_.size()));
  }
  for (Slot& slot : slots_) {
    in.ReadInto(slot.prev_value.data(), slot.prev_value.byte_size());
    const bool present = in.ReadU8() != 0;
    if (present != (slot.pull_ctx != nullptr)) {
      throw std::runtime_error(
          "server state mismatch: compressed-entry set differs from the plan");
    }
    if (slot.pull_ctx) slot.pull_ctx->LoadState(in);
  }
}

}  // namespace threelc::ps
