// TensorPlan: the shared agreement between servers and workers about which
// state-change tensors exist and which of them go through compression.
//
// Mirrors the paper's tensor-allocation helper (§4): tensors below the
// small-layer threshold, or flagged compress=false (batch-norm parameters),
// bypass the codec and travel as raw float32 — avoiding codec overhead that
// would outweigh compacting already-small tensors (§5.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace threelc::ps {

struct PlanEntry {
  std::string name;
  tensor::Shape shape;
  bool compressed = true;
};

class TensorPlan {
 public:
  TensorPlan() = default;

  // Build from a model's parameters. A tensor is compressed iff its
  // ParamRef says compress=true AND it has at least `min_compress_elems`
  // elements.
  static TensorPlan FromParams(const std::vector<nn::ParamRef>& params,
                               std::int64_t min_compress_elems);

  std::size_t size() const { return entries_.size(); }
  const PlanEntry& entry(std::size_t i) const { return entries_[i]; }
  const std::vector<PlanEntry>& entries() const { return entries_; }

  // Total state-change values per direction per step (all tensors).
  std::int64_t TotalElements() const;
  // Values travelling through the codec (compressed entries only).
  std::int64_t CompressedElements() const;

 private:
  std::vector<PlanEntry> entries_;
};

}  // namespace threelc::ps
