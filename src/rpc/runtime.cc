#include "rpc/runtime.h"

#include <algorithm>
#include <exception>
#include <sstream>

#include "nn/lr_schedule.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"
#include "util/logging.h"
#include "util/timer.h"

namespace threelc::rpc {

namespace {

// Poll granularity while waiting on a phase predicate; bounds how stale the
// deadline check can get, not how fast frames are handled (poll returns
// early on socket activity).
constexpr int kPollSliceMs = 50;

// Every fault funnels through here: error log, rpc/transport_errors
// counter, and a flight-recorder event + dump so a post-mortem of a failed
// distributed run has the last ~256 steps alongside the fault.
void ReportFault(obs::Telemetry* telemetry, const std::string& who,
                 const std::string& message) {
  THREELC_LOG(Error) << who << ": " << message;
  if (telemetry == nullptr) return;
  telemetry->metrics().counter("rpc/transport_errors")->Add(1.0);
  if (obs::FlightRecorder* flight = telemetry->flight_recorder()) {
    obs::HealthEvent event;
    event.severity = obs::HealthSeverity::kError;
    event.detector = "rpc_transport";
    event.message = who + ": " + message;
    flight->RecordEvent(event);
    flight->Dump();
  }
}

void WriteString(util::ByteBuffer& out, const std::string& s) {
  out.AppendU32(static_cast<std::uint32_t>(s.size()));
  out.Append(s.data(), s.size());
}

std::string ReadString(util::ByteReader& in) {
  const std::uint32_t n = in.ReadU32();
  util::ByteSpan bytes = in.ReadSpan(n);
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

std::string PayloadString(const Frame& frame) {
  return std::string(reinterpret_cast<const char*>(frame.payload.data()),
                     frame.payload.size());
}

std::string DescribeWait(Connection::IoResult result, const Connection& conn) {
  if (result == Connection::IoResult::kClosed) return "peer closed connection";
  return conn.last_error().empty() ? "I/O error" : conn.last_error();
}

}  // namespace

std::uint64_t PlanHash(const ps::TensorPlan& plan,
                       const std::string& codec_name) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  auto mix = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  auto mix_u64 = [&mix](std::uint64_t v) { mix(&v, sizeof(v)); };
  mix(codec_name.data(), codec_name.size());
  mix_u64(plan.size());
  for (const auto& entry : plan.entries()) {
    mix(entry.name.data(), entry.name.size());
    mix_u64(entry.shape.rank());
    for (std::int64_t d : entry.shape.dims()) {
      mix_u64(static_cast<std::uint64_t>(d));
    }
    mix_u64(entry.compressed ? 1 : 0);
  }
  return h;
}

// --- RpcServer -------------------------------------------------------------

RpcServer::RpcServer(RpcServerConfig config, ps::ParameterServer& ps,
                     std::string codec_name)
    : config_(std::move(config)),
      ps_(&ps),
      codec_name_(std::move(codec_name)),
      plan_hash_(PlanHash(ps.plan(), codec_name_)),
      metrics_(config_.telemetry != nullptr
                   ? TransportMetrics::RegisterIn(config_.telemetry->metrics())
                   : TransportMetrics{}),
      tcp_(&metrics_) {
  THREELC_CHECK_MSG(config_.num_workers >= 1,
                    "num_workers must be positive: " << config_.num_workers);
  const auto n = static_cast<std::size_t>(config_.num_workers);
  const std::size_t num_tensors = ps_->plan().size();
  push_payloads_.assign(n, std::vector<util::ByteBuffer>(num_tensors));
  push_seen_.assign(n, std::vector<bool>(num_tensors, false));
  step_losses_.assign(n, 0.0);
  stats_seen_.assign(n, false);
  worker_conns_.assign(n, nullptr);

  tcp_.on_accept = [this](Connection& conn) { peers_.emplace(&conn, Peer{}); };
  tcp_.on_frame = [this](Connection& conn, Frame&& frame) {
    OnFrame(conn, std::move(frame));
  };
  tcp_.on_disconnect = [this](Connection& conn, const std::string& reason) {
    OnDisconnect(conn, reason);
  };
}

bool RpcServer::Listen(std::string* error) {
  return tcp_.Listen(config_.host, config_.port, error);
}

void RpcServer::AdoptListener(int listen_fd, int port) {
  tcp_.AdoptListener(listen_fd, port);
}

void RpcServer::Fail(const std::string& message) {
  if (failed_) return;
  failed_ = true;
  error_ = message;
  ReportFault(config_.telemetry, "rpc server", message);
  BroadcastError(message);
}

void RpcServer::BroadcastError(const std::string& message) {
  util::ByteSpan payload(
      reinterpret_cast<const std::uint8_t*>(message.data()), message.size());
  for (auto& [conn, peer] : peers_) {
    if (!conn->open()) continue;
    if (conn->SendFrame(MsgType::kError, 0, 0, payload)) {
      conn->FlushOutput(/*timeout_ms=*/200);  // best effort
    }
  }
}

bool RpcServer::PollUntil(const std::function<bool()>& done, int timeout_ms,
                          const char* phase) {
  util::WallTimer timer;
  while (!failed_) {
    if (done()) return true;
    const double elapsed_ms = timer.ElapsedMillis();
    if (elapsed_ms >= timeout_ms) {
      if (metrics_.timeouts != nullptr) metrics_.timeouts->Add(1.0);
      Fail(std::string("timeout in ") + phase + " after " +
           std::to_string(timeout_ms) + " ms");
      return false;
    }
    const int slice = std::max(
        1, std::min(kPollSliceMs,
                    timeout_ms - static_cast<int>(elapsed_ms)));
    if (!tcp_.Poll(slice)) {
      Fail("listener closed unexpectedly");
      return false;
    }
  }
  return false;
}

void RpcServer::HandleHello(Connection& conn, const Frame& frame) {
  Peer& peer = peers_[&conn];
  if (peer.worker_id >= 0) {
    Fail("duplicate HELLO from worker " + std::to_string(peer.worker_id));
    return;
  }
  util::ByteReader reader(frame.payload);
  const std::uint32_t worker_id = reader.ReadU32();
  const std::uint64_t plan_hash = reader.ReadU64();
  const std::string codec = ReadString(reader);
  if (worker_id >= static_cast<std::uint32_t>(config_.num_workers)) {
    Fail("HELLO with out-of-range worker id " + std::to_string(worker_id) +
         " (num_workers " + std::to_string(config_.num_workers) + ")");
    return;
  }
  if (worker_conns_[worker_id] != nullptr) {
    Fail("second connection claiming worker id " + std::to_string(worker_id));
    return;
  }
  if (plan_hash != plan_hash_ || codec != codec_name_) {
    std::ostringstream oss;
    oss << "handshake mismatch from worker " << worker_id << ": plan hash "
        << std::hex << plan_hash << " vs " << plan_hash_ << std::dec
        << ", codec '" << codec << "' vs '" << codec_name_ << "'";
    Fail(oss.str());
    return;
  }
  peer.worker_id = static_cast<int>(worker_id);
  worker_conns_[worker_id] = &conn;
  ++handshakes_;

  util::ByteBuffer ack;
  ack.AppendU32(static_cast<std::uint32_t>(config_.num_workers));
  ack.AppendU64(static_cast<std::uint64_t>(config_.total_steps));
  ack.AppendU64(plan_hash_);
  if (!conn.SendFrame(MsgType::kHelloAck, 0, 0, ack.span())) {
    Fail("sending HELLO_ACK to worker " + std::to_string(worker_id) + ": " +
         conn.last_error());
  }
}

void RpcServer::OnFrame(Connection& conn, Frame&& frame) {
  if (failed_) return;
  const FrameHeader& h = frame.header;
  try {
    if (h.type == MsgType::kHello) {
      HandleHello(conn, frame);
      return;
    }
    if (h.type == MsgType::kError) {
      Fail("peer reported error: " + PayloadString(frame));
      return;
    }
    Peer& peer = peers_[&conn];
    if (peer.worker_id < 0) {
      Fail(std::string(MsgTypeName(h.type)) + " before HELLO");
      return;
    }
    const auto w = static_cast<std::size_t>(peer.worker_id);
    switch (h.type) {
      case MsgType::kPush: {
        if (static_cast<std::int64_t>(h.step) != current_step_ ||
            h.tensor >= push_payloads_[w].size()) {
          std::ostringstream oss;
          oss << "unexpected PUSH from worker " << w << ": step " << h.step
              << " tensor " << h.tensor << " while collecting step "
              << current_step_;
          Fail(oss.str());
          return;
        }
        if (push_seen_[w][h.tensor]) {
          Fail("duplicate PUSH from worker " + std::to_string(w) +
               " tensor " + std::to_string(h.tensor));
          return;
        }
        push_payloads_[w][h.tensor] = std::move(frame.payload);
        push_seen_[w][h.tensor] = true;
        --frames_pending_;
        return;
      }
      case MsgType::kStepStats: {
        if (static_cast<std::int64_t>(h.step) != current_step_ ||
            stats_seen_[w]) {
          Fail("unexpected STEP_STATS from worker " + std::to_string(w) +
               " for step " + std::to_string(h.step));
          return;
        }
        util::ByteReader reader(frame.payload);
        step_losses_[w] = reader.ReadF32();
        stats_seen_[w] = true;
        --frames_pending_;
        return;
      }
      case MsgType::kBye: {
        if (current_step_ != config_.total_steps || peer.said_bye) {
          Fail("unexpected BYE from worker " + std::to_string(w) +
               " at step " + std::to_string(current_step_));
          return;
        }
        peer.said_bye = true;
        if (peer.worker_id == 0) buffer_blob_ = std::move(frame.payload);
        ++byes_;
        return;
      }
      default:
        Fail(std::string("unexpected frame type ") + MsgTypeName(h.type));
        return;
    }
  } catch (const std::exception& e) {
    Fail(std::string("malformed ") + MsgTypeName(h.type) +
         " payload: " + e.what());
  }
}

void RpcServer::OnDisconnect(Connection& conn, const std::string& reason) {
  auto it = peers_.find(&conn);
  if (it == peers_.end()) return;
  const Peer peer = it->second;
  peers_.erase(it);
  if (peer.worker_id >= 0 &&
      worker_conns_[static_cast<std::size_t>(peer.worker_id)] == &conn) {
    worker_conns_[static_cast<std::size_t>(peer.worker_id)] = nullptr;
  }
  if (peer.said_bye) return;  // expected teardown after BYE_ACK
  std::ostringstream oss;
  if (peer.worker_id >= 0) {
    oss << "worker " << peer.worker_id;
  } else {
    oss << "unidentified peer";
  }
  oss << " disconnected mid-run";
  if (!reason.empty()) oss << " (" << reason << ")";
  Fail(oss.str());
}

void RpcServer::BeginCollect(std::int64_t step) {
  current_step_ = step;
  if (step >= config_.total_steps) return;  // only BYE is valid now
  const auto n = static_cast<std::size_t>(config_.num_workers);
  const std::size_t num_tensors = ps_->plan().size();
  for (std::size_t w = 0; w < n; ++w) {
    std::fill(push_seen_[w].begin(), push_seen_[w].end(), false);
    stats_seen_[w] = false;
  }
  frames_pending_ = n * (num_tensors + 1);  // T pushes + 1 stats per worker
}

bool RpcServer::RunStep(std::int64_t step, float lr) {
  obs::Tracer* tracer =
      config_.telemetry != nullptr ? &config_.telemetry->tracer() : nullptr;
  const std::size_t num_tensors = ps_->plan().size();
  const auto n = static_cast<std::size_t>(config_.num_workers);

  util::WallTimer barrier_timer;
  {
    obs::ScopedSpan span(tracer, "rpc/step_barrier", 0);
    if (!PollUntil([this] { return frames_pending_ == 0; },
                   config_.step_timeout_ms, "step barrier")) {
      return false;
    }
  }
  const double barrier_ms = barrier_timer.ElapsedMillis();

  // Decode + aggregate in worker-id order — the same float-addition order
  // as DistributedTrainer::Run, which is what makes the distributed model
  // bitwise identical to the in-process one.
  util::WallTimer decode_timer;
  util::CpuTimer decode_cpu;
  std::size_t push_bytes = 0;
  ps_->BeginStep();
  try {
    for (std::size_t w = 0; w < n; ++w) {
      for (std::size_t t = 0; t < num_tensors; ++t) {
        push_bytes += push_payloads_[w][t].size();
        util::ByteReader reader(push_payloads_[w][t]);
        ps_->ReceivePush(t, reader, /*aggregate=*/true);
        if (!reader.AtEnd()) {
          Fail("trailing bytes in PUSH payload from worker " +
               std::to_string(w) + " tensor " + std::to_string(t));
          return false;
        }
      }
    }
  } catch (const std::exception& e) {
    Fail(std::string("decoding pushes for step ") + std::to_string(step) +
         ": " + e.what());
    return false;
  }
  const double decode_ms = decode_timer.ElapsedMillis();
  const double decode_cpu_s = decode_cpu.ElapsedSeconds();

  util::WallTimer optimize_timer;
  ps_->Update(lr, config_.num_workers);
  const double optimize_ms = optimize_timer.ElapsedMillis();

  // Encode each pull payload once; every worker is queued the same frame
  // bytes (the paper's shared pull compression, §3).
  util::WallTimer encode_timer;
  util::CpuTimer encode_cpu;
  ps_->PreparePulls();
  std::size_t pull_payload_bytes = 0;
  util::ByteBuffer frame_bytes;
  for (std::size_t t = 0; t < num_tensors; ++t) {
    util::ByteSpan payload = ps_->PullPayload(t);
    pull_payload_bytes += payload.size();
    frame_bytes.Clear();
    EncodeFrame(MsgType::kPull, static_cast<std::uint64_t>(step),
                static_cast<std::uint32_t>(t), payload, frame_bytes);
    for (std::size_t w = 0; w < n; ++w) {
      Connection* conn = worker_conns_[w];
      if (conn == nullptr || !conn->SendEncoded(frame_bytes.span(), 1)) {
        Fail("queueing PULL to worker " + std::to_string(w) + ": " +
             (conn != nullptr ? conn->last_error() : "connection gone"));
        return false;
      }
    }
  }
  const double encode_ms = encode_timer.ElapsedMillis();
  const double codec_seconds = decode_cpu_s + encode_cpu.ElapsedSeconds();

  // Accept the next step's pushes before blocking on anything else — a
  // fast worker pushes step+1 as soon as its pulls drain.
  BeginCollect(step + 1);

  double loss_sum = 0.0;
  for (double loss : step_losses_) loss_sum += loss;
  const double mean_loss = loss_sum / static_cast<double>(n);

  if (obs::Telemetry* tel = config_.telemetry) {
    tel->metrics().counter("rpc/push_payload_bytes")
        ->Add(static_cast<double>(push_bytes));
    tel->metrics().counter("rpc/pull_payload_bytes")
        ->Add(static_cast<double>(pull_payload_bytes * n));
    obs::StepTelemetry st;
    st.step = step;
    st.loss = mean_loss;
    st.lr = lr;
    st.push_bytes = push_bytes;
    st.pull_bytes = pull_payload_bytes * n;
    st.push_values =
        static_cast<std::size_t>(ps_->plan().TotalElements()) * n;
    st.pull_values = st.push_values;
    if (st.push_values > 0) {
      st.push_bits_per_value =
          8.0 * static_cast<double>(st.push_bytes) /
          static_cast<double>(st.push_values);
      st.pull_bits_per_value =
          8.0 * static_cast<double>(st.pull_bytes) /
          static_cast<double>(st.pull_values);
    }
    st.codec_seconds = codec_seconds;
    st.contributors = config_.num_workers;
    st.phases_ms = {{"step_barrier", barrier_ms},
                    {"decode_aggregate", decode_ms},
                    {"optimize", optimize_ms},
                    {"encode_pull", encode_ms}};
    for (const auto& phase : st.phases_ms) st.step_wall_ms += phase.ms;
    tel->LogStep(st);
  }
  return true;
}

bool RpcServer::ApplyWorkerBuffers() {
  // Mirror of DistributedTrainer::EvaluateGlobalModel, which copies
  // batch-norm running stats from worker 0 into the global model (buffers
  // are updated by forward passes, which only workers run). Worker 0 ships
  // them in its BYE payload.
  std::vector<tensor::Tensor*> buffers = ps_->global_model().Buffers();
  if (buffers.empty() && buffer_blob_.empty()) return true;
  try {
    util::ByteReader reader(buffer_blob_);
    const std::uint32_t count = reader.ReadU32();
    if (count != buffers.size()) {
      Fail("BYE buffer count " + std::to_string(count) + " != model's " +
           std::to_string(buffers.size()));
      return false;
    }
    for (tensor::Tensor* buffer : buffers) {
      const std::uint64_t elems = reader.ReadU64();
      if (elems != static_cast<std::uint64_t>(buffer->num_elements())) {
        Fail("BYE buffer element count mismatch: " + std::to_string(elems) +
             " != " + std::to_string(buffer->num_elements()));
        return false;
      }
      reader.ReadInto(buffer->data(), elems * sizeof(float));
    }
    if (!reader.AtEnd()) {
      Fail("trailing bytes in BYE buffer payload");
      return false;
    }
  } catch (const std::exception& e) {
    Fail(std::string("malformed BYE buffer payload: ") + e.what());
    return false;
  }
  return true;
}

bool RpcServer::Run() {
  if (!tcp_.listening()) {
    error_ = "server is not listening (call Listen or AdoptListener first)";
    return false;
  }
  obs::Tracer* tracer =
      config_.telemetry != nullptr ? &config_.telemetry->tracer() : nullptr;
  if (tracer != nullptr) tracer->SetTrackName(0, "server");

  // Step-0 pushes may arrive while slower workers are still shaking hands.
  BeginCollect(0);
  {
    obs::ScopedSpan span(tracer, "rpc/handshake", 0);
    if (!PollUntil(
            [this] {
              return handshakes_ ==
                     static_cast<std::size_t>(config_.num_workers);
            },
            config_.handshake_timeout_ms, "handshake")) {
      tcp_.Close();
      return false;
    }
  }
  THREELC_LOG(Info) << "rpc server: " << config_.num_workers
                    << " workers handshaken (plan hash " << std::hex
                    << plan_hash_ << std::dec << ", codec '" << codec_name_
                    << "'), running " << config_.total_steps << " steps";

  nn::CosineDecay schedule(config_.lr_max, config_.lr_min,
                           config_.total_steps);
  for (std::int64_t step = 0; step < config_.total_steps; ++step) {
    if (!RunStep(step, schedule.At(step))) {
      tcp_.Close();
      return false;
    }
    ++steps_completed_;
  }

  // Shutdown: drain remaining pulls, collect every BYE, fold in worker 0's
  // buffers, acknowledge, flush, close.
  if (!PollUntil(
          [this] {
            return byes_ == static_cast<std::size_t>(config_.num_workers);
          },
          config_.shutdown_timeout_ms, "shutdown")) {
    tcp_.Close();
    return false;
  }
  if (!ApplyWorkerBuffers()) {
    tcp_.Close();
    return false;
  }
  for (Connection* conn : worker_conns_) {
    if (conn == nullptr ||
        !conn->SendFrame(MsgType::kByeAck, 0, 0, util::ByteSpan())) {
      Fail("sending BYE_ACK: " +
           (conn != nullptr ? conn->last_error() : "connection gone"));
      tcp_.Close();
      return false;
    }
  }
  if (!PollUntil(
          [this] {
            for (Connection* conn : worker_conns_) {
              if (conn != nullptr && conn->open() && conn->wants_write()) {
                return false;
              }
            }
            return true;
          },
          config_.shutdown_timeout_ms, "final flush")) {
    tcp_.Close();
    return false;
  }
  tcp_.Close();
  THREELC_LOG(Info) << "rpc server: clean shutdown after "
                    << steps_completed_ << " steps";
  return true;
}

// --- RpcWorker -------------------------------------------------------------

RpcWorker::RpcWorker(RpcWorkerConfig config, ps::Worker& worker,
                     const ps::TensorPlan& plan, std::string codec_name,
                     data::Sampler sampler)
    : config_(std::move(config)),
      worker_(&worker),
      plan_(&plan),
      codec_name_(std::move(codec_name)),
      sampler_(std::move(sampler)),
      metrics_(config_.telemetry != nullptr
                   ? TransportMetrics::RegisterIn(config_.telemetry->metrics())
                   : TransportMetrics{}) {}

bool RpcWorker::Fail(const std::string& message) {
  if (!failed_) {
    failed_ = true;
    error_ = message;
    ReportFault(config_.telemetry,
                "rpc worker " + std::to_string(config_.worker_id), message);
  }
  return false;
}

bool RpcWorker::Handshake(Connection& conn) {
  util::ByteBuffer hello;
  hello.AppendU32(static_cast<std::uint32_t>(config_.worker_id));
  hello.AppendU64(PlanHash(*plan_, codec_name_));
  WriteString(hello, codec_name_);
  if (!conn.SendFrame(MsgType::kHello, 0, 0, hello.span())) {
    return Fail("sending HELLO: " + conn.last_error());
  }
  if (conn.FlushOutput(config_.io_timeout_ms) != Connection::IoResult::kOk) {
    return Fail("flushing HELLO: " + DescribeWait(Connection::IoResult::kError,
                                                  conn));
  }
  Frame ack;
  const Connection::IoResult r =
      conn.WaitFrame(&ack, config_.handshake_timeout_ms);
  if (r != Connection::IoResult::kOk) {
    return Fail("waiting for HELLO_ACK: " + DescribeWait(r, conn));
  }
  if (ack.header.type == MsgType::kError) {
    return Fail("server rejected handshake: " + PayloadString(ack));
  }
  if (ack.header.type != MsgType::kHelloAck) {
    return Fail(std::string("expected HELLO_ACK, got ") +
                MsgTypeName(ack.header.type));
  }
  try {
    util::ByteReader reader(ack.payload);
    num_workers_ = static_cast<int>(reader.ReadU32());
    total_steps_ = static_cast<std::int64_t>(reader.ReadU64());
    const std::uint64_t hash = reader.ReadU64();
    if (hash != PlanHash(*plan_, codec_name_)) {
      return Fail("HELLO_ACK plan hash mismatch");
    }
  } catch (const std::exception& e) {
    return Fail(std::string("malformed HELLO_ACK: ") + e.what());
  }
  return true;
}

bool RpcWorker::RunStep(Connection& conn, std::int64_t step) {
  obs::Tracer* tracer =
      config_.telemetry != nullptr ? &config_.telemetry->tracer() : nullptr;
  const int track = 1 + config_.worker_id;
  const std::size_t num_tensors = plan_->size();

  double loss_value = 0.0;
  {
    obs::ScopedSpan span(tracer, "forward_backward", track);
    data::Batch batch = sampler_.Next(config_.batch_size);
    loss_value = worker_->model().TrainStep(batch.inputs, batch.labels).loss;
  }
  {
    obs::ScopedSpan span(tracer, "rpc/push", track);
    util::ByteBuffer payload;
    for (std::size_t t = 0; t < num_tensors; ++t) {
      payload.Clear();
      worker_->EncodePush(t, payload);
      if (!conn.SendFrame(MsgType::kPush, static_cast<std::uint64_t>(step),
                          static_cast<std::uint32_t>(t), payload.span())) {
        return Fail("queueing PUSH tensor " + std::to_string(t) + ": " +
                    conn.last_error());
      }
    }
    util::ByteBuffer stats;
    stats.AppendF32(static_cast<float>(loss_value));
    if (!conn.SendFrame(MsgType::kStepStats, static_cast<std::uint64_t>(step),
                        0, stats.span())) {
      return Fail("queueing STEP_STATS: " + conn.last_error());
    }
    if (conn.FlushOutput(config_.io_timeout_ms) !=
        Connection::IoResult::kOk) {
      return Fail("flushing step " + std::to_string(step) +
                  " pushes: " + conn.last_error());
    }
  }
  {
    obs::ScopedSpan span(tracer, "rpc/pull_wait", track);
    for (std::size_t t = 0; t < num_tensors; ++t) {
      Frame frame;
      const Connection::IoResult r =
          conn.WaitFrame(&frame, config_.pull_timeout_ms);
      if (r != Connection::IoResult::kOk) {
        return Fail("waiting for PULL tensor " + std::to_string(t) + ": " +
                    DescribeWait(r, conn));
      }
      if (frame.header.type == MsgType::kError) {
        return Fail("server error: " + PayloadString(frame));
      }
      if (frame.header.type != MsgType::kPull ||
          frame.header.step != static_cast<std::uint64_t>(step) ||
          frame.header.tensor != static_cast<std::uint32_t>(t)) {
        std::ostringstream oss;
        oss << "protocol violation: expected PULL step " << step << " tensor "
            << t << ", got " << MsgTypeName(frame.header.type) << " step "
            << frame.header.step << " tensor " << frame.header.tensor;
        return Fail(oss.str());
      }
      try {
        util::ByteReader reader(frame.payload);
        worker_->ApplyPull(t, reader);
        if (!reader.AtEnd()) {
          return Fail("trailing bytes in PULL payload for tensor " +
                      std::to_string(t));
        }
      } catch (const std::exception& e) {
        return Fail(std::string("applying PULL tensor ") + std::to_string(t) +
                    ": " + e.what());
      }
    }
  }
  return true;
}

bool RpcWorker::SayBye(Connection& conn) {
  util::ByteBuffer payload;
  if (config_.worker_id == 0) {
    // Worker 0 ships its batch-norm running stats so the server's global
    // model matches DistributedTrainer::EvaluateGlobalModel's
    // CopyBuffersFrom(worker 0).
    std::vector<tensor::Tensor*> buffers = worker_->model().Buffers();
    payload.AppendU32(static_cast<std::uint32_t>(buffers.size()));
    for (const tensor::Tensor* buffer : buffers) {
      payload.AppendU64(static_cast<std::uint64_t>(buffer->num_elements()));
      payload.Append(buffer->data(),
                     static_cast<std::size_t>(buffer->num_elements()) *
                         sizeof(float));
    }
  }
  if (!conn.SendFrame(MsgType::kBye, 0, 0, payload.span())) {
    return Fail("queueing BYE: " + conn.last_error());
  }
  if (conn.FlushOutput(config_.io_timeout_ms) != Connection::IoResult::kOk) {
    return Fail("flushing BYE: " + conn.last_error());
  }
  Frame ack;
  const Connection::IoResult r = conn.WaitFrame(&ack, config_.io_timeout_ms);
  if (r == Connection::IoResult::kClosed) return true;  // server won the race
  if (r != Connection::IoResult::kOk) {
    return Fail("waiting for BYE_ACK: " + DescribeWait(r, conn));
  }
  if (ack.header.type == MsgType::kError) {
    return Fail("server error at shutdown: " + PayloadString(ack));
  }
  if (ack.header.type != MsgType::kByeAck) {
    return Fail(std::string("expected BYE_ACK, got ") +
                MsgTypeName(ack.header.type));
  }
  return true;
}

bool RpcWorker::Run() {
  std::string connect_error;
  const int fd = ConnectWithRetry(config_.host, config_.port, config_.retry,
                                  &metrics_, &connect_error);
  if (fd < 0) return Fail(connect_error);
  Connection conn(fd, &metrics_);

  obs::Tracer* tracer =
      config_.telemetry != nullptr ? &config_.telemetry->tracer() : nullptr;
  const int track = 1 + config_.worker_id;
  if (tracer != nullptr) {
    tracer->SetTrackName(track,
                         "worker " + std::to_string(config_.worker_id));
  }
  {
    obs::ScopedSpan span(tracer, "rpc/handshake", track);
    if (!Handshake(conn)) return false;
  }
  THREELC_LOG(Info) << "rpc worker " << config_.worker_id << ": handshaken ("
                    << num_workers_ << " workers, " << total_steps_
                    << " steps)";
  for (std::int64_t step = 0; step < total_steps_; ++step) {
    if (!RunStep(conn, step)) return false;
    ++steps_run_;
  }
  if (!SayBye(conn)) return false;
  conn.Close();
  THREELC_LOG(Info) << "rpc worker " << config_.worker_id
                    << ": clean shutdown after " << steps_run_ << " steps";
  return true;
}

}  // namespace threelc::rpc
