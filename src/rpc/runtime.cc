#include "rpc/runtime.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <sstream>
#include <thread>

#include "blockcodec/block_codec.h"
#include "nn/checkpoint.h"
#include "nn/checkpoint_manager.h"
#include "nn/lr_schedule.h"
#include "rpc/fault.h"
#include "obs/cluster_view.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/stage_profiler.h"
#include "obs/telemetry.h"
#include "util/logging.h"
#include "util/timer.h"

namespace threelc::rpc {

namespace {

// Poll granularity while waiting on a phase predicate; bounds how stale the
// deadline check can get, not how fast frames are handled (poll returns
// early on socket activity).
constexpr int kPollSliceMs = 50;

// Every fault funnels through here: error log, rpc/transport_errors
// counter, and a flight-recorder event + dump so a post-mortem of a failed
// distributed run has the last ~256 steps alongside the fault.
void ReportFault(obs::Telemetry* telemetry, const std::string& who,
                 const std::string& message) {
  THREELC_LOG(Error) << who << ": " << message;
  if (telemetry == nullptr) return;
  telemetry->metrics().counter("rpc/transport_errors")->Add(1.0);
  if (obs::FlightRecorder* flight = telemetry->flight_recorder()) {
    obs::HealthEvent event;
    event.severity = obs::HealthSeverity::kError;
    event.detector = "rpc_transport";
    event.message = who + ": " + message;
    flight->RecordEvent(event);
    flight->Dump();
  }
}

void AddCounter(obs::Telemetry* telemetry, const char* name, double value) {
  if (telemetry != nullptr) telemetry->metrics().counter(name)->Add(value);
}

std::string PayloadString(const Frame& frame) {
  return std::string(reinterpret_cast<const char*>(frame.payload.data()),
                     frame.payload.size());
}

std::string DescribeWait(Connection::IoResult result, const Connection& conn) {
  if (result == Connection::IoResult::kClosed) return "peer closed connection";
  return conn.last_error().empty() ? "I/O error" : conn.last_error();
}

}  // namespace

std::uint64_t PlanHash(const ps::TensorPlan& plan,
                       const std::string& codec_name) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  auto mix = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  auto mix_u64 = [&mix](std::uint64_t v) { mix(&v, sizeof(v)); };
  mix(codec_name.data(), codec_name.size());
  mix_u64(plan.size());
  for (const auto& entry : plan.entries()) {
    mix(entry.name.data(), entry.name.size());
    mix_u64(entry.shape.rank());
    for (std::int64_t d : entry.shape.dims()) {
      mix_u64(static_cast<std::uint64_t>(d));
    }
    mix_u64(entry.compressed ? 1 : 0);
  }
  return h;
}

// --- RpcServer -------------------------------------------------------------

RpcServer::RpcServer(RpcServerConfig config, ps::ParameterServer& ps,
                     std::string codec_name)
    : config_(std::move(config)),
      ps_(&ps),
      codec_name_(std::move(codec_name)),
      plan_hash_(PlanHash(ps.plan(), codec_name_)),
      block_codec_(blockcodec::Find(config_.block_codec)),
      metrics_(config_.telemetry != nullptr
                   ? TransportMetrics::RegisterIn(config_.telemetry->metrics())
                   : TransportMetrics{}),
      tcp_(&metrics_) {
  THREELC_CHECK_MSG(config_.num_workers >= 1,
                    "num_workers must be positive: " << config_.num_workers);
  THREELC_CHECK_MSG(block_codec_ != nullptr,
                    "unknown block codec '" << config_.block_codec
                                            << "' (known: "
                                            << blockcodec::KnownNames()
                                            << ")");
  const auto n = static_cast<std::size_t>(config_.num_workers);
  const std::size_t num_tensors = ps_->plan().size();
  push_payloads_.assign(n, std::vector<util::ByteBuffer>(num_tensors));
  push_wire_bytes_.assign(n, 0);
  push_seen_.assign(n, std::vector<bool>(num_tensors, false));
  step_losses_.assign(n, 0.0);
  stats_seen_.assign(n, false);
  worker_conns_.assign(n, nullptr);
  member_state_.assign(n, Member::kActive);
  dead_since_.assign(n, std::chrono::steady_clock::time_point{});
  last_rx_.assign(n, std::chrono::steady_clock::time_point{});
  greeted_.assign(n, false);
  bye_blobs_.assign(n, util::ByteBuffer{});
  barrier_arrival_ms_.assign(n, -1.0);

  if (config_.telemetry != nullptr) {
    if (obs::ClusterView* view = config_.telemetry->cluster_view()) {
      // Uncompressed f32 traffic per worker per step, both directions —
      // the denominator for /clusterz's per-direction compression ratios.
      const auto raw = static_cast<std::uint64_t>(
                           ps_->plan().TotalElements()) * sizeof(float);
      view->SetRawBytesPerStep(raw, raw);
    }
  }

  tcp_.on_accept = [this](Connection& conn) {
    peers_.emplace(&conn, Peer{});
    if (config_.fault != nullptr) conn.set_fault_injector(config_.fault);
  };
  tcp_.on_frame = [this](Connection& conn, Frame&& frame) {
    OnFrame(conn, std::move(frame));
  };
  tcp_.on_disconnect = [this](Connection& conn, const std::string& reason) {
    OnDisconnect(conn, reason);
  };
}

RpcServer::~RpcServer() = default;

bool RpcServer::Listen(std::string* error) {
  return tcp_.Listen(config_.host, config_.port, error);
}

void RpcServer::AdoptListener(int listen_fd, int port) {
  tcp_.AdoptListener(listen_fd, port);
}

void RpcServer::RequestStop(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_reason_ = reason;
  }
  stop_requested_.store(true, std::memory_order_release);
}

void RpcServer::Fail(const std::string& message) {
  if (failed_) return;
  failed_ = true;
  error_ = message;
  ReportFault(config_.telemetry, "rpc server", message);
  if (config_.telemetry != nullptr && config_.telemetry->health() != nullptr) {
    config_.telemetry->health()->SetRuntimeState(obs::RuntimeState::kFailed,
                                                 message);
  }
  BroadcastError(message);
}

void RpcServer::BroadcastError(const std::string& message) {
  util::ByteSpan payload(
      reinterpret_cast<const std::uint8_t*>(message.data()), message.size());
  for (auto& [conn, peer] : peers_) {
    if (!conn->open()) continue;
    if (conn->SendFrame(MsgType::kError, 0, 0, payload)) {
      conn->FlushOutput(/*timeout_ms=*/200);  // best effort
    }
  }
}

std::size_t RpcServer::ActiveWorkers() const {
  std::size_t n = 0;
  for (Member m : member_state_) {
    if (m == Member::kActive) ++n;
  }
  return n;
}

std::size_t RpcServer::WaitingWorkers() const {
  std::size_t n = 0;
  for (Member m : member_state_) {
    if (m == Member::kWaiting) ++n;
  }
  return n;
}

bool RpcServer::BarrierDone() const {
  return frames_pending_ == 0 && WaitingWorkers() == 0;
}

void RpcServer::RecordMembershipEvent(const std::string& message, bool error) {
  if (error) {
    THREELC_LOG(Error) << "rpc server: " << message;
  } else {
    THREELC_LOG(Warn) << "rpc server: " << message;
  }
  if (config_.telemetry == nullptr) return;
  if (obs::FlightRecorder* flight = config_.telemetry->flight_recorder()) {
    obs::HealthEvent event;
    event.severity =
        error ? obs::HealthSeverity::kError : obs::HealthSeverity::kWarn;
    event.detector = "rpc_membership";
    event.step = current_step_;
    event.message = message;
    flight->RecordEvent(event);
    if (error) flight->Dump();
  }
}

void RpcServer::RecomputePending() {
  if (current_step_ < 0 || current_step_ >= config_.total_steps) {
    frames_pending_ = 0;
    return;
  }
  const std::size_t num_tensors = ps_->plan().size();
  std::size_t pending = 0;
  for (std::size_t w = 0; w < member_state_.size(); ++w) {
    if (member_state_[w] != Member::kActive) continue;
    for (std::size_t t = 0; t < num_tensors; ++t) {
      if (!push_seen_[w][t]) ++pending;
    }
    if (!stats_seen_[w]) ++pending;
  }
  frames_pending_ = pending;
}

void RpcServer::MarkWorkerDead(std::size_t w, const std::string& reason) {
  if (member_state_[w] != Member::kActive) return;
  member_state_[w] = Member::kWaiting;
  dead_since_[w] = std::chrono::steady_clock::now();
  // Detach the connection now. When the server itself closed it (send
  // failure), TcpServer::Reap frees the object silently — without the
  // on_disconnect callback that would otherwise clear this slot — so a
  // stale pointer here would dangle by the time the worker rejoins.
  if (Connection* old = worker_conns_[w]; old != nullptr) {
    peers_.erase(old);
    old->Close();
    worker_conns_[w] = nullptr;
  }
  // Discard the dead worker's partial contribution to the step being
  // collected; a rejoiner resends the whole step from its pending buffers.
  if (current_step_ >= 0 && current_step_ < config_.total_steps) {
    std::fill(push_seen_[w].begin(), push_seen_[w].end(), false);
    stats_seen_[w] = false;
    push_wire_bytes_[w] = 0;
    barrier_arrival_ms_[w] = -1.0;  // the rejoiner re-arrives from scratch
  }
  RecomputePending();
  RecordMembershipEvent("worker " + std::to_string(w) + " lost (" + reason +
                            "); holding barrier " +
                            std::to_string(config_.grace_ms) +
                            " ms for rejoin",
                        /*error=*/false);
}

void RpcServer::EvictExpired() {
  if (config_.grace_ms <= 0 || failed_) return;
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t w = 0; w < member_state_.size(); ++w) {
    if (member_state_[w] != Member::kWaiting) continue;
    const double waited_ms =
        std::chrono::duration<double, std::milli>(now - dead_since_[w])
            .count();
    if (waited_ms >= config_.grace_ms) {
      Evict(w, "grace window (" + std::to_string(config_.grace_ms) +
                   " ms) expired");
      if (failed_) return;
    }
  }
}

int RpcServer::EffectiveHeartbeatMs() const {
  if (config_.heartbeat_ms > 0) return config_.heartbeat_ms;
  return std::max(50, config_.lease_ms / 4);
}

void RpcServer::StampLiveness(std::size_t w) {
  if (config_.lease_ms <= 0) return;
  last_rx_[w] = std::chrono::steady_clock::now();
  if (config_.telemetry != nullptr) {
    if (obs::ClusterView* view = config_.telemetry->cluster_view()) {
      view->RecordLiveness(static_cast<int>(w));
    }
  }
}

void RpcServer::CheckLeases() {
  if (config_.lease_ms <= 0 || failed_) return;
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t w = 0; w < member_state_.size(); ++w) {
    // The lease clock starts at the handshake stamp; a worker that never
    // connected is the handshake timeout's problem, not the lease's.
    if (member_state_[w] != Member::kActive) continue;
    if (last_rx_[w] == std::chrono::steady_clock::time_point{}) continue;
    const double silent_ms =
        std::chrono::duration<double, std::milli>(now - last_rx_[w]).count();
    if (silent_ms < config_.lease_ms) continue;
    ++lease_expiries_;
    AddCounter(config_.telemetry, "rpc/lease_expiries", 1.0);
    if (config_.telemetry != nullptr) {
      if (obs::ClusterView* view = config_.telemetry->cluster_view()) {
        view->RecordLeaseExpiry(static_cast<int>(w));
      }
    }
    const std::string why = "lease expired (no frame for " +
                            std::to_string(static_cast<int>(silent_ms)) +
                            " ms, lease " + std::to_string(config_.lease_ms) +
                            " ms; hung or partitioned)";
    if (config_.grace_ms > 0) {
      // MarkWorkerDead force-closes the half-open socket, so a SIGCONT'd
      // worker's REJOIN takes the displacement path instead of colliding
      // with its stale connection.
      MarkWorkerDead(w, why);
    } else {
      Fail("worker " + std::to_string(w) + " " + why);
      return;
    }
  }
}

void RpcServer::SendHeartbeats() {
  if (config_.lease_ms <= 0 && config_.heartbeat_ms <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  if (last_heartbeat_tx_ != std::chrono::steady_clock::time_point{} &&
      std::chrono::duration<double, std::milli>(now - last_heartbeat_tx_)
              .count() < EffectiveHeartbeatMs()) {
    return;
  }
  last_heartbeat_tx_ = now;
  HeartbeatPayload beat;
  beat.role = 1;
  beat.seq = heartbeat_seq_++;
  beat.progress =
      static_cast<std::uint64_t>(std::max<std::int64_t>(steps_completed_, 0));
  util::ByteBuffer payload;
  EncodeHeartbeat(beat, payload);
  for (std::size_t w = 0; w < worker_conns_.size(); ++w) {
    if (member_state_[w] != Member::kActive) continue;
    Connection* conn = worker_conns_[w];
    if (conn == nullptr || !conn->open()) continue;
    if (conn->SendFrame(MsgType::kHeartbeat, 0, 0, payload.span())) {
      AddCounter(config_.telemetry, "rpc/heartbeats_sent", 1.0);
      continue;
    }
    const std::string why = "queueing HEARTBEAT: " + conn->last_error();
    if (config_.grace_ms > 0) {
      MarkWorkerDead(w, why);
    } else {
      Fail("worker " + std::to_string(w) + ": " + why);
      return;
    }
  }
}

void RpcServer::Evict(std::size_t w, const std::string& reason) {
  member_state_[w] = Member::kEvicted;
  ++evictions_;
  AddCounter(config_.telemetry, "rpc/evictions", 1.0);
  if (config_.telemetry != nullptr) {
    if (obs::ClusterView* view = config_.telemetry->cluster_view()) {
      view->RemoveWorker(static_cast<int>(w));
    }
  }
  // Tell the survivors which peer is gone (workers log it; supervisors can
  // react, e.g. by not restarting the process).
  util::ByteBuffer payload;
  payload.AppendU32(static_cast<std::uint32_t>(w));
  const auto step =
      static_cast<std::uint64_t>(std::max<std::int64_t>(current_step_, 0));
  for (std::size_t v = 0; v < worker_conns_.size(); ++v) {
    if (member_state_[v] != Member::kActive) continue;
    Connection* conn = worker_conns_[v];
    if (conn != nullptr && conn->open()) {
      conn->SendFrame(MsgType::kEvict, step, 0, payload.span());
    }
  }
  RecomputePending();
  RecordMembershipEvent("worker " + std::to_string(w) + " evicted: " +
                            reason + "; rescaling aggregation to " +
                            std::to_string(ActiveWorkers()) + " of " +
                            std::to_string(config_.num_workers) + " workers",
                        /*error=*/false);
  if (config_.telemetry != nullptr && config_.telemetry->health() != nullptr) {
    config_.telemetry->health()->SetRuntimeState(
        obs::RuntimeState::kDegraded,
        "worker " + std::to_string(w) + " evicted; " +
            std::to_string(ActiveWorkers()) + " of " +
            std::to_string(config_.num_workers) + " workers remain");
  }
  if (ActiveWorkers() == 0) Fail("all workers evicted");
}

bool RpcServer::PollUntil(const std::function<bool()>& done, int timeout_ms,
                          const char* phase) {
  util::WallTimer timer;
  while (!failed_) {
    if (config_.stop_flag != nullptr &&
        config_.stop_flag->load(std::memory_order_acquire)) {
      GracefulStop("stop signal");
      return false;
    }
    if (stop_requested_.load(std::memory_order_acquire)) {
      std::string reason;
      {
        std::lock_guard<std::mutex> lock(stop_mutex_);
        reason = stop_reason_;
      }
      Fail("stop requested: " + reason);
      return false;
    }
    EvictExpired();
    if (failed_) return false;
    CheckLeases();
    if (failed_) return false;
    SendHeartbeats();
    if (failed_) return false;
    if (done()) return true;
    const double elapsed_ms = timer.ElapsedMillis();
    if (elapsed_ms >= timeout_ms) {
      if (metrics_.timeouts != nullptr) metrics_.timeouts->Add(1.0);
      Fail(std::string("timeout in ") + phase + " after " +
           std::to_string(timeout_ms) + " ms");
      return false;
    }
    const int slice = std::max(
        1, std::min(kPollSliceMs,
                    timeout_ms - static_cast<int>(elapsed_ms)));
    if (!tcp_.Poll(slice)) {
      Fail("listener closed unexpectedly");
      return false;
    }
  }
  return false;
}

void RpcServer::HandleHello(Connection& conn, const Frame& frame) {
  Peer& peer = peers_[&conn];
  if (peer.worker_id >= 0) {
    Fail("duplicate HELLO from worker " + std::to_string(peer.worker_id));
    return;
  }
  const HandshakePayload hello = DecodeHandshake(frame.payload.span(),
                                                 /*rejoin=*/false);
  const std::uint32_t worker_id = hello.worker_id;
  if (worker_id >= static_cast<std::uint32_t>(config_.num_workers)) {
    Fail("HELLO with out-of-range worker id " + std::to_string(worker_id) +
         " (num_workers " + std::to_string(config_.num_workers) + ")");
    return;
  }
  if (hello.epoch != 0) {
    Fail("HELLO from worker " + std::to_string(worker_id) +
         " carries server epoch " + std::to_string(hello.epoch) +
         " (a fresh worker must send 0; one that saw an incarnation must "
         "REJOIN)");
    return;
  }
  if (worker_conns_[worker_id] != nullptr) {
    Fail("second connection claiming worker id " + std::to_string(worker_id));
    return;
  }
  if (greeted_[worker_id]) {
    Fail("HELLO from already-greeted worker " + std::to_string(worker_id) +
         " (a restarted worker must REJOIN)");
    return;
  }
  if (hello.plan_hash != plan_hash_ || hello.codec != codec_name_) {
    std::ostringstream oss;
    oss << "handshake mismatch from worker " << worker_id << ": plan hash "
        << std::hex << hello.plan_hash << " vs " << plan_hash_ << std::dec
        << ", codec '" << hello.codec << "' vs '" << codec_name_ << "'";
    Fail(oss.str());
    return;
  }
  if (hello.block_codec != block_codec_->id()) {
    Fail("handshake block-codec mismatch from worker " +
         std::to_string(worker_id) + ": worker sent id " +
         std::to_string(static_cast<int>(hello.block_codec)) +
         ", server runs '" + std::string(block_codec_->name()) + "' (id " +
         std::to_string(static_cast<int>(block_codec_->id())) + ")");
    return;
  }
  peer.worker_id = static_cast<int>(worker_id);
  worker_conns_[worker_id] = &conn;
  member_state_[worker_id] = Member::kActive;
  greeted_[worker_id] = true;
  StampLiveness(worker_id);
  ++handshakes_;

  HandshakeAckPayload ack_payload;
  ack_payload.num_workers = static_cast<std::uint32_t>(config_.num_workers);
  ack_payload.total_steps = static_cast<std::uint64_t>(config_.total_steps);
  ack_payload.plan_hash = plan_hash_;
  ack_payload.block_codec = block_codec_->id();
  ack_payload.epoch = epoch_;
  util::ByteBuffer ack;
  EncodeHandshakeAck(ack_payload, /*rejoin=*/false, ack);
  if (!conn.SendFrame(MsgType::kHelloAck, 0, 0, ack.span())) {
    Fail("sending HELLO_ACK to worker " + std::to_string(worker_id) + ": " +
         conn.last_error());
  }
}

void RpcServer::HandleRejoin(Connection& conn, const Frame& frame) {
  Peer& peer = peers_[&conn];
  if (peer.worker_id >= 0) {
    Fail("REJOIN on an already-identified connection (worker " +
         std::to_string(peer.worker_id) + ")");
    return;
  }
  const HandshakePayload rejoin = DecodeHandshake(frame.payload.span(),
                                                  /*rejoin=*/true);
  const std::uint32_t worker_id = rejoin.worker_id;
  const auto next_step = static_cast<std::int64_t>(rejoin.next_step);
  if (worker_id >= static_cast<std::uint32_t>(config_.num_workers)) {
    Fail("REJOIN with out-of-range worker id " + std::to_string(worker_id));
    return;
  }
  if (rejoin.plan_hash != plan_hash_ || rejoin.codec != codec_name_) {
    std::ostringstream oss;
    oss << "REJOIN handshake mismatch from worker " << worker_id
        << ": plan hash " << std::hex << rejoin.plan_hash << " vs "
        << plan_hash_ << std::dec << ", codec '" << rejoin.codec << "' vs '"
        << codec_name_ << "'";
    Fail(oss.str());
    return;
  }
  if (rejoin.block_codec != block_codec_->id()) {
    Fail("REJOIN block-codec mismatch from worker " +
         std::to_string(worker_id) + ": worker sent id " +
         std::to_string(static_cast<int>(rejoin.block_codec)) +
         ", server runs '" + std::string(block_codec_->name()) + "' (id " +
         std::to_string(static_cast<int>(block_codec_->id())) + ")");
    return;
  }
  // A worker can only ever have seen an epoch this incarnation knows about
  // (epoch_ never regresses: it is persisted before any handshake). A
  // larger epoch means this server restored a checkpoint older than the
  // incarnation the worker last spoke to — a broken deployment, not a
  // recoverable race.
  if (rejoin.epoch > epoch_) {
    Fail("REJOIN from worker " + std::to_string(worker_id) +
         " carries epoch " + std::to_string(rejoin.epoch) +
         " ahead of this server's " + std::to_string(epoch_) +
         " (stale server checkpoint restored?)");
    return;
  }
  const auto w = static_cast<std::size_t>(worker_id);

  // Reject (ERROR + close) without failing the run: the rejoiner is wrong
  // or too late, but the surviving workers are fine.
  auto reject = [&](const std::string& why) {
    THREELC_LOG(Warn) << "rpc server: rejecting REJOIN from worker "
                      << worker_id << ": " << why;
    util::ByteSpan payload(
        reinterpret_cast<const std::uint8_t*>(why.data()), why.size());
    if (conn.SendFrame(MsgType::kError, 0, 0, payload)) {
      conn.FlushOutput(/*timeout_ms=*/200);
    }
    peers_.erase(&conn);
    conn.Close();  // reaped silently by TcpServer
  };

  if (member_state_[w] == Member::kEvicted) {
    reject("worker " + std::to_string(worker_id) +
           " was evicted; the run continues without it");
    return;
  }
  if (next_step > current_step_) {
    Fail("REJOIN from worker " + std::to_string(worker_id) +
         " claims future step " + std::to_string(next_step) +
         " (server is at " + std::to_string(current_step_) + ")");
    return;
  }
  if (next_step < current_step_) {
    const std::int64_t oldest =
        replay_.empty() ? current_step_ : replay_.front().first;
    if (next_step < oldest) {
      reject("replay window exceeded: worker needs step " +
             std::to_string(next_step) + " but the oldest retained step is " +
             std::to_string(oldest) + " (replay_steps " +
             std::to_string(config_.replay_steps) + ")");
      return;
    }
  }

  // Displace a half-open previous connection for this id, if any.
  if (Connection* old = worker_conns_[w];
      old != nullptr && old != &conn) {
    peers_.erase(old);
    old->Close();
    worker_conns_[w] = nullptr;
  }

  peer.worker_id = static_cast<int>(worker_id);
  worker_conns_[w] = &conn;
  member_state_[w] = Member::kActive;
  StampLiveness(w);
  if (!greeted_[w]) {
    greeted_[w] = true;
    ++handshakes_;
  }
  ++rejoins_;
  AddCounter(config_.telemetry, "rpc/rejoins", 1.0);

  HandshakeAckPayload ack_payload;
  ack_payload.num_workers = static_cast<std::uint32_t>(config_.num_workers);
  ack_payload.total_steps = static_cast<std::uint64_t>(config_.total_steps);
  ack_payload.plan_hash = plan_hash_;
  ack_payload.block_codec = block_codec_->id();
  ack_payload.epoch = epoch_;
  ack_payload.collect_step = static_cast<std::uint64_t>(current_step_);
  util::ByteBuffer ack;
  EncodeHandshakeAck(ack_payload, /*rejoin=*/true, ack);
  if (!conn.SendFrame(MsgType::kRejoinAck, 0, 0, ack.span())) {
    Fail("sending REJOIN_ACK to worker " + std::to_string(worker_id) + ": " +
         conn.last_error());
    return;
  }

  // Replay the shared pull bytes for every completed step the worker
  // missed, verbatim — the worker recomputes its own pushes (bitwise
  // identical, since its state is deterministic) and only needs the
  // server's side of each barrier.
  std::size_t frames = 0;
  for (const auto& [step, tensors] : replay_) {
    if (step < next_step || step >= current_step_) continue;
    for (const util::ByteBuffer& bytes : tensors) {
      if (!conn.SendEncoded(bytes.span(), 1)) {
        Fail("replaying step " + std::to_string(step) + " to worker " +
             std::to_string(worker_id) + ": " + conn.last_error());
        return;
      }
      ++frames;
    }
  }
  replayed_frames_ += frames;
  if (frames > 0) {
    AddCounter(config_.telemetry, "rpc/replayed_frames",
               static_cast<double>(frames));
  }

  // Expect a fresh contribution to the step being collected.
  if (current_step_ >= 0 && current_step_ < config_.total_steps) {
    std::fill(push_seen_[w].begin(), push_seen_[w].end(), false);
    stats_seen_[w] = false;
    push_wire_bytes_[w] = 0;
    barrier_arrival_ms_[w] = -1.0;
  }
  RecomputePending();
  RecordMembershipEvent(
      "worker " + std::to_string(worker_id) + " rejoined at step " +
          std::to_string(current_step_) + " (resumed from step " +
          std::to_string(next_step) + ", replayed " + std::to_string(frames) +
          " pull frames)",
      /*error=*/false);
  MaybeReassembled();
}

void RpcServer::MaybeReassembled() {
  if (!resumed_ || WaitingWorkers() != 0) return;
  for (Member m : member_state_) {
    if (m == Member::kEvicted) return;  // permanently degraded
  }
  RecordMembershipEvent("all workers rejoined after server restart (epoch " +
                            std::to_string(epoch_) + "); run re-assembled",
                        /*error=*/false);
  // A storage degradation (checkpoint writes failing) outlives the
  // re-assembly: only a successful write clears it.
  if (config_.telemetry != nullptr && config_.telemetry->health() != nullptr &&
      !ckpt_degraded_) {
    config_.telemetry->health()->SetRuntimeState(
        obs::RuntimeState::kHealthy,
        "all workers rejoined after server restart");
  }
}

void RpcServer::OnFrame(Connection& conn, Frame&& frame) {
  if (failed_) return;
  const FrameHeader& h = frame.header;
  try {
    if (h.type == MsgType::kHello) {
      HandleHello(conn, frame);
      return;
    }
    if (h.type == MsgType::kRejoin) {
      HandleRejoin(conn, frame);
      return;
    }
    if (h.type == MsgType::kError) {
      Fail("peer reported error: " + PayloadString(frame));
      return;
    }
    if (h.type == MsgType::kHeartbeat) {
      // Liveness beacon. Decode to validate (a malformed beacon is a
      // protocol fault like any payload); tolerated from a connection
      // still mid-handshake, since workers beacon while blocked on any
      // server reply.
      DecodeHeartbeat(frame.payload.span());
      AddCounter(config_.telemetry, "rpc/heartbeats_received", 1.0);
      const Peer& beaconer = peers_[&conn];
      if (beaconer.worker_id >= 0) {
        StampLiveness(static_cast<std::size_t>(beaconer.worker_id));
      }
      return;
    }
    Peer& peer = peers_[&conn];
    if (peer.worker_id < 0) {
      Fail(std::string(MsgTypeName(h.type)) + " before HELLO");
      return;
    }
    const auto w = static_cast<std::size_t>(peer.worker_id);
    StampLiveness(w);
    switch (h.type) {
      case MsgType::kPush: {
        if (static_cast<std::int64_t>(h.step) != current_step_ ||
            h.tensor >= push_payloads_[w].size()) {
          std::ostringstream oss;
          oss << "unexpected PUSH from worker " << w << ": step " << h.step
              << " tensor " << h.tensor << " while collecting step "
              << current_step_;
          Fail(oss.str());
          return;
        }
        if (push_seen_[w][h.tensor]) {
          Fail("duplicate PUSH from worker " + std::to_string(w) +
               " tensor " + std::to_string(h.tensor));
          return;
        }
        util::ByteBuffer payload = std::move(frame.payload);
        push_wire_bytes_[w] += payload.size();
        if (block_codec_->id() != blockcodec::kStoreId) {
          // Unwrap the negotiated block envelope on arrival, so the step
          // loop's decode_aggregate phase sees exactly the stage-1 bytes
          // it saw in protocol v4. A malformed envelope lands in the
          // enclosing catch and Fails the run cleanly.
          obs::ScopedStage stage(&obs::StageProfiler::Global(),
                                 "block_decode");
          util::ByteBuffer decoded;
          blockcodec::DecodeBlock(payload.span(), kMaxPayloadBytes, decoded);
          if (config_.telemetry != nullptr) {
            auto& m = config_.telemetry->metrics();
            m.counter("block/decode_bytes_in")
                ->Add(static_cast<double>(payload.size()));
            m.counter("block/decode_bytes_out")
                ->Add(static_cast<double>(decoded.size()));
          }
          payload = std::move(decoded);
        }
        push_payloads_[w][h.tensor] = std::move(payload);
        push_seen_[w][h.tensor] = true;
        --frames_pending_;
        StampBarrierArrival(w);
        return;
      }
      case MsgType::kStepStats: {
        if (static_cast<std::int64_t>(h.step) != current_step_ ||
            stats_seen_[w]) {
          Fail("unexpected STEP_STATS from worker " + std::to_string(w) +
               " for step " + std::to_string(h.step));
          return;
        }
        util::ByteReader reader(frame.payload);
        step_losses_[w] = reader.ReadF32();
        stats_seen_[w] = true;
        --frames_pending_;
        StampBarrierArrival(w);
        return;
      }
      case MsgType::kTelemetry: {
        // Non-barrier: a worker's per-step record for an already-released
        // step (it is sent after the step's pulls were applied, while the
        // server collects the next one). Decode always — a malformed
        // record is a protocol fault — but feed only an attached view.
        // Duplicates from rejoin replay are deduped inside ClusterView.
        const TelemetryPayload p = DecodeTelemetry(frame.payload.span());
        if (config_.telemetry != nullptr) {
          if (obs::ClusterView* view = config_.telemetry->cluster_view()) {
            obs::WorkerStepRecord rec;
            rec.step = h.step;
            rec.forward_backward_ns = p.forward_backward_ns;
            rec.encode_ns = p.encode_ns;
            rec.push_ns = p.push_ns;
            rec.pull_wait_ns = p.pull_wait_ns;
            rec.decode_ns = p.decode_ns;
            rec.bytes_out = p.bytes_out;
            rec.bytes_in = p.bytes_in;
            rec.stage1_bytes_out = p.stage1_bytes_out;
            rec.stage1_bytes_in = p.stage1_bytes_in;
            rec.ea_l2 = p.ea_l2;
            rec.rejoins = p.rejoins;
            view->Ingest(static_cast<int>(w), rec);
          }
        }
        return;
      }
      case MsgType::kBye: {
        if (current_step_ != config_.total_steps || peer.said_bye) {
          Fail("unexpected BYE from worker " + std::to_string(w) +
               " at step " + std::to_string(current_step_));
          return;
        }
        peer.said_bye = true;
        bye_blobs_[w] = std::move(frame.payload);
        ++byes_;
        return;
      }
      default:
        Fail(std::string("unexpected frame type ") + MsgTypeName(h.type));
        return;
    }
  } catch (const std::exception& e) {
    Fail(std::string("malformed ") + MsgTypeName(h.type) +
         " payload: " + e.what());
  }
}

void RpcServer::OnDisconnect(Connection& conn, const std::string& reason) {
  auto it = peers_.find(&conn);
  if (it == peers_.end()) return;
  const Peer peer = it->second;
  peers_.erase(it);
  bool registered = false;
  if (peer.worker_id >= 0) {
    const auto w = static_cast<std::size_t>(peer.worker_id);
    if (worker_conns_[w] == &conn) {
      worker_conns_[w] = nullptr;
      registered = true;
    }
  }
  if (peer.said_bye) return;  // expected teardown after BYE_ACK
  std::ostringstream oss;
  if (peer.worker_id >= 0) {
    oss << "worker " << peer.worker_id;
  } else {
    oss << "unidentified peer";
  }
  oss << " disconnected mid-run";
  if (!reason.empty()) oss << " (" << reason << ")";
  if (config_.grace_ms > 0) {
    if (registered && !failed_ &&
        member_state_[static_cast<std::size_t>(peer.worker_id)] ==
            Member::kActive) {
      MarkWorkerDead(static_cast<std::size_t>(peer.worker_id), oss.str());
    } else {
      THREELC_LOG(Warn) << "rpc server: " << oss.str();
    }
    return;
  }
  Fail(oss.str());
}

void RpcServer::BeginCollect(std::int64_t step) {
  current_step_ = step;
  if (step >= config_.total_steps) {  // only BYE is valid now
    frames_pending_ = 0;
    return;
  }
  for (std::size_t w = 0; w < push_seen_.size(); ++w) {
    std::fill(push_seen_[w].begin(), push_seen_[w].end(), false);
    stats_seen_[w] = false;
    push_wire_bytes_[w] = 0;
  }
  std::fill(barrier_arrival_ms_.begin(), barrier_arrival_ms_.end(), -1.0);
  collect_timer_.Reset();
  RecomputePending();
}

void RpcServer::StampBarrierArrival(std::size_t w) {
  if (barrier_arrival_ms_[w] >= 0.0) return;
  if (!stats_seen_[w]) return;
  for (std::size_t t = 0; t < push_seen_[w].size(); ++t) {
    if (!push_seen_[w][t]) return;
  }
  barrier_arrival_ms_[w] = collect_timer_.ElapsedMillis();
}

bool RpcServer::RunStep(std::int64_t step, float lr) {
  obs::Tracer* tracer =
      config_.telemetry != nullptr ? &config_.telemetry->tracer() : nullptr;
  obs::StageProfiler* prof = &obs::StageProfiler::Global();
  const std::size_t num_tensors = ps_->plan().size();

  // Whole-step span, stamped with the step id so merge_traces.py can line
  // this up against each worker's push/pull spans from other processes.
  obs::ScopedSpan step_span(tracer, "rpc/step", 0, step);
  obs::ScopedStage step_stage(prof, "server_step");

  // The barrier budget covers the grace window: a dead worker may consume
  // all of grace_ms rejoining (or being evicted) before the barrier can
  // possibly complete.
  const int barrier_timeout_ms =
      config_.step_timeout_ms + std::max(config_.grace_ms, 0);
  util::WallTimer barrier_timer;
  {
    obs::ScopedSpan span(tracer, "rpc/step_barrier", 0, step);
    obs::ScopedStage stage(prof, "barrier");
    if (!PollUntil([this] { return BarrierDone(); }, barrier_timeout_ms,
                   "step barrier")) {
      return false;
    }
  }
  const double barrier_ms = barrier_timer.ElapsedMillis();

  // The worker set this step's aggregate is computed over, frozen at
  // barrier completion. Membership can only shrink from here (a fan-out
  // write failure marks the target dead), never grow mid-step.
  std::vector<std::size_t> contributors;
  contributors.reserve(member_state_.size());
  for (std::size_t w = 0; w < member_state_.size(); ++w) {
    if (member_state_[w] == Member::kActive) contributors.push_back(w);
  }
  if (contributors.empty()) {
    Fail("no active workers at step " + std::to_string(step));
    return false;
  }
  const auto num_contributors = contributors.size();

  // Straggler attribution: who was last to the barrier and by how much,
  // read before BeginCollect(step + 1) wipes the arrival stamps. The
  // cause lands when the straggler's TELEMETRY record for this step
  // arrives (after its pulls drain).
  if (config_.telemetry != nullptr) {
    if (obs::ClusterView* view = config_.telemetry->cluster_view()) {
      double first = -1.0, last = -1.0;
      int last_worker = -1;
      for (std::size_t w : contributors) {
        const double arrival = barrier_arrival_ms_[w];
        if (arrival < 0.0) continue;  // rejoined mid-step; stamp lost
        if (first < 0.0 || arrival < first) first = arrival;
        if (arrival > last) {
          last = arrival;
          last_worker = static_cast<int>(w);
        }
      }
      if (last_worker >= 0) {
        view->RecordBarrier(static_cast<std::uint64_t>(step), last_worker,
                            last - first,
                            static_cast<int>(num_contributors));
      }
    }
  }

  // Decode + aggregate in worker-id order — the same float-addition order
  // as DistributedTrainer::Run, which is what makes the distributed model
  // bitwise identical to the in-process one.
  util::WallTimer decode_timer;
  util::CpuTimer decode_cpu;
  // Stage-1 bytes (what the tensor codec produced; the envelope was
  // already stripped at frame arrival) vs wire bytes (what actually
  // crossed the socket). Equal when the block codec is store.
  std::size_t push_bytes = 0;
  std::size_t push_wire_bytes = 0;
  for (std::size_t w : contributors) {
    push_wire_bytes += static_cast<std::size_t>(push_wire_bytes_[w]);
  }
  ps_->BeginStep();
  {
    obs::ScopedSpan span(tracer, "rpc/decode_aggregate", 0, step);
    obs::ScopedStage stage(prof, "decode_aggregate");
    try {
      for (std::size_t w : contributors) {
        for (std::size_t t = 0; t < num_tensors; ++t) {
          push_bytes += push_payloads_[w][t].size();
          util::ByteReader reader(push_payloads_[w][t]);
          ps_->ReceivePush(t, reader, /*aggregate=*/true);
          if (!reader.AtEnd()) {
            Fail("trailing bytes in PUSH payload from worker " +
                 std::to_string(w) + " tensor " + std::to_string(t));
            return false;
          }
        }
      }
    } catch (const std::exception& e) {
      Fail(std::string("decoding pushes for step ") + std::to_string(step) +
           ": " + e.what());
      return false;
    }
  }
  const double decode_ms = decode_timer.ElapsedMillis();
  const double decode_cpu_s = decode_cpu.ElapsedSeconds();
  // ReceivePush timed its codec decodes and gradient adds separately; the
  // remainder of the loop (readers, bookkeeping) stays out of both halves.
  const ps::ParameterServer::StepTimings split = ps_->step_timings();

  util::WallTimer optimize_timer;
  {
    obs::ScopedSpan span(tracer, "rpc/optimize", 0, step);
    obs::ScopedStage stage(prof, "optimize");
    ps_->Update(lr, static_cast<int>(num_contributors));
  }
  const double optimize_ms = optimize_timer.ElapsedMillis();

  // Encode each pull payload once; every worker is queued the same frame
  // bytes (the paper's shared pull compression, §3). The encoded frames
  // are also retained in the replay ring so a rejoiner can be caught up.
  util::WallTimer encode_timer;
  util::CpuTimer encode_cpu;
  std::size_t pull_stage1_bytes = 0;
  std::size_t pull_payload_bytes = 0;
  std::size_t incompressible_frames = 0;
  const auto max_replay =
      static_cast<std::size_t>(std::max(config_.replay_steps, 0));
  {
    obs::ScopedSpan span(tracer, "rpc/encode", 0, step);
    obs::ScopedStage stage(prof, "encode");
    ps_->PreparePulls();
    std::vector<util::ByteBuffer> step_frames(num_tensors);
    for (std::size_t t = 0; t < num_tensors; ++t) {
      util::ByteSpan payload = ps_->PullPayload(t);
      pull_stage1_bytes += payload.size();
      util::ByteBuffer enveloped;
      if (block_codec_->id() != blockcodec::kStoreId) {
        // Second-stage compression of the shared pull bytes — paid once
        // per step no matter how many workers receive the frame (and no
        // extra cost on rejoin replay, which resends these bytes verbatim).
        obs::ScopedStage block_stage(prof, "block_encode");
        const std::uint8_t used =
            blockcodec::EncodeBlock(*block_codec_, payload, enveloped);
        if (used == blockcodec::kStoreId) ++incompressible_frames;
        payload = enveloped.span();
      }
      pull_payload_bytes += payload.size();
      EncodeFrame(MsgType::kPull, static_cast<std::uint64_t>(step),
                  static_cast<std::uint32_t>(t), payload, step_frames[t]);
    }
    // Retain the encoded frames BEFORE any byte leaves (one extra entry
    // even with replay_steps == 0, dropped after fan-out): the write-ahead
    // checkpoint below must carry exactly what the fan-out is about to
    // send, so a server restored from it replays byte-identical pulls.
    replay_.emplace_back(step, std::move(step_frames));
    while (replay_.size() > std::max<std::size_t>(max_replay, 1)) {
      replay_.pop_front();
    }
  }
  const double encode_ms = encode_timer.ElapsedMillis();
  const double codec_seconds = decode_cpu_s + encode_cpu.ElapsedSeconds();

  // Write-ahead server checkpoint: this step's state is final (aggregate
  // applied, pulls encoded, ring updated) and nothing has been sent, so a
  // crash from here on restores to a point no worker can be ahead of.
  util::WallTimer checkpoint_timer;
  {
    obs::ScopedSpan span(tracer, "rpc/checkpoint", 0, step);
    obs::ScopedStage stage(prof, "checkpoint");
    if (!WriteCheckpoint(step + 1, /*force=*/false)) return false;
  }
  const double checkpoint_ms = checkpoint_timer.ElapsedMillis();

  // Chaos drill: die between the checkpoint write and the fan-out — the
  // window where a generation fallback on resume is provably bitwise-safe
  // (no worker has seen this step's result yet).
  if (step == config_.exit_at_checkpoint) {
    SimulatedCrash("simulated server crash at step " + std::to_string(step) +
                   "'s checkpoint (before fan-out)");
    return false;
  }

  util::WallTimer fanout_timer;
  {
    obs::ScopedSpan span(tracer, "rpc/fan_out", 0, step);
    obs::ScopedStage stage(prof, "fan_out");
    const std::vector<util::ByteBuffer>& fanout = replay_.back().second;
    for (std::size_t t = 0; t < num_tensors; ++t) {
      for (std::size_t w : contributors) {
        if (member_state_[w] != Member::kActive) continue;  // died mid-fan-out
        Connection* conn = worker_conns_[w];
        if (conn != nullptr && conn->SendEncoded(fanout[t].span(), 1)) {
          continue;
        }
        if (config_.fault != nullptr && config_.fault->kill_requested()) {
          SimulatedCrash("injected server kill fanning out step " +
                         std::to_string(step) + " pulls");
          return false;
        }
        const std::string why =
            "queueing PULL to worker " + std::to_string(w) + ": " +
            (conn != nullptr ? conn->last_error() : "connection gone");
        if (config_.grace_ms > 0) {
          MarkWorkerDead(w, why);
          continue;
        }
        Fail(why);
        return false;
      }
    }
    if (max_replay == 0) replay_.clear();
  }
  const double fanout_ms = fanout_timer.ElapsedMillis();

  // Accept the next step's pushes before blocking on anything else — a
  // fast worker pushes step+1 as soon as its pulls drain.
  BeginCollect(step + 1);

  double loss_sum = 0.0;
  for (std::size_t w : contributors) loss_sum += step_losses_[w];
  const double mean_loss = loss_sum / static_cast<double>(num_contributors);

  if (obs::Telemetry* tel = config_.telemetry) {
    // rpc/*_payload_bytes count what crossed the wire (post block codec);
    // rpc/*_stage1_bytes what the tensor codec produced. Equal for store.
    tel->metrics().counter("rpc/push_payload_bytes")
        ->Add(static_cast<double>(push_wire_bytes));
    tel->metrics().counter("rpc/pull_payload_bytes")
        ->Add(static_cast<double>(pull_payload_bytes * num_contributors));
    tel->metrics().counter("rpc/push_stage1_bytes")
        ->Add(static_cast<double>(push_bytes));
    tel->metrics().counter("rpc/pull_stage1_bytes")
        ->Add(static_cast<double>(pull_stage1_bytes * num_contributors));
    if (block_codec_->id() != blockcodec::kStoreId) {
      tel->metrics().counter("block/encode_bytes_in")
          ->Add(static_cast<double>(pull_stage1_bytes));
      tel->metrics().counter("block/encode_bytes_out")
          ->Add(static_cast<double>(pull_payload_bytes));
      if (incompressible_frames > 0) {
        tel->metrics().counter("block/incompressible_frames")
            ->Add(static_cast<double>(incompressible_frames));
      }
    }
    obs::StepTelemetry st;
    st.step = step;
    st.loss = mean_loss;
    st.lr = lr;
    st.push_bytes = push_wire_bytes;
    st.pull_bytes = pull_payload_bytes * num_contributors;
    st.push_values = static_cast<std::size_t>(ps_->plan().TotalElements()) *
                     num_contributors;
    st.pull_values = st.push_values;
    if (st.push_values > 0) {
      st.push_bits_per_value =
          8.0 * static_cast<double>(st.push_bytes) /
          static_cast<double>(st.push_values);
      st.pull_bits_per_value =
          8.0 * static_cast<double>(st.pull_bytes) /
          static_cast<double>(st.pull_values);
    }
    st.codec_seconds = codec_seconds;
    st.contributors = static_cast<int>(num_contributors);
    // decode/aggregate come from the server's own ReceivePush split; the
    // small difference against decode_ms (frame readers, bookkeeping) is
    // charged to decode so the phases still sum to the step wall time.
    const double aggregate_ms = split.aggregate_ms;
    const double decode_only_ms = std::max(decode_ms - aggregate_ms, 0.0);
    st.phases_ms = {{"step_barrier", barrier_ms}, {"decode", decode_only_ms},
                    {"aggregate", aggregate_ms},  {"optimize", optimize_ms},
                    {"encode", encode_ms},        {"checkpoint", checkpoint_ms},
                    {"fan_out", fanout_ms}};
    for (const auto& phase : st.phases_ms) st.step_wall_ms += phase.ms;
    // Per-phase histograms: the /metricsz view of the step breakdown
    // (bounds match the trainer's train/step_ms idiom).
    for (const auto& phase : st.phases_ms) {
      tel->metrics()
          .histogram(std::string("step/") + phase.name + "_ms", 0.0, 1000.0,
                     200)
          ->Add(phase.ms);
    }
    tel->metrics().histogram("step/total_ms", 0.0, 1000.0, 200)
        ->Add(st.step_wall_ms);
    tel->LogStep(st);
  }
  return true;
}

bool RpcServer::ApplyWorkerBuffers() {
  // Mirror of DistributedTrainer::EvaluateGlobalModel, which copies
  // batch-norm running stats from worker 0 into the global model (buffers
  // are updated by forward passes, which only workers run). Every worker
  // ships its buffers in its BYE payload; the lowest surviving worker id
  // is used — worker 0 whenever it survives, matching the in-process
  // trainer bit for bit.
  std::vector<tensor::Tensor*> buffers = ps_->global_model().Buffers();
  const util::ByteBuffer* blob = nullptr;
  std::size_t source = 0;
  for (std::size_t w = 0; w < bye_blobs_.size(); ++w) {
    if (member_state_[w] == Member::kActive && !bye_blobs_[w].empty()) {
      blob = &bye_blobs_[w];
      source = w;
      break;
    }
  }
  if (blob == nullptr) {
    if (buffers.empty()) return true;
    Fail("no surviving worker shipped buffer state in its BYE");
    return false;
  }
  try {
    util::ByteReader reader(*blob);
    const std::uint32_t count = reader.ReadU32();
    if (count != buffers.size()) {
      Fail("BYE buffer count " + std::to_string(count) + " != model's " +
           std::to_string(buffers.size()));
      return false;
    }
    for (tensor::Tensor* buffer : buffers) {
      const std::uint64_t elems = reader.ReadU64();
      if (elems != static_cast<std::uint64_t>(buffer->num_elements())) {
        Fail("BYE buffer element count mismatch: " + std::to_string(elems) +
             " != " + std::to_string(buffer->num_elements()));
        return false;
      }
      reader.ReadInto(buffer->data(), elems * sizeof(float));
    }
    if (!reader.AtEnd()) {
      Fail("trailing bytes in BYE buffer payload");
      return false;
    }
  } catch (const std::exception& e) {
    Fail(std::string("malformed BYE buffer payload: ") + e.what());
    return false;
  }
  if (source != 0) {
    THREELC_LOG(Warn) << "rpc server: applied batch-norm buffers from worker "
                      << source << " (worker 0 did not survive)";
  }
  return true;
}

nn::CheckpointManager& RpcServer::Checkpointer() {
  if (ckpt_ == nullptr) {
    nn::CheckpointManager::Options options;
    options.path = config_.checkpoint_path;
    options.retain = config_.checkpoint_retain;
    options.block_codec = config_.block_codec;
    options.fs = config_.fs;
    ckpt_ = std::make_unique<nn::CheckpointManager>(std::move(options));
    const int swept = ckpt_->ScanAndSweep();
    if (swept > 0) {
      THREELC_LOG(Warn) << "rpc server: swept " << swept
                        << " stale checkpoint temp file(s) beside "
                        << config_.checkpoint_path;
    }
  }
  return *ckpt_;
}

void RpcServer::PublishStorageHealth() {
  if (config_.telemetry == nullptr) return;
  if (ckpt_ != nullptr) {
    config_.telemetry->metrics().gauge("ckpt/generations")
        ->Set(static_cast<double>(ckpt_->generation_count()));
  }
  if (obs::ClusterView* view = config_.telemetry->cluster_view()) {
    obs::ClusterView::StorageHealth health;
    health.checkpoints = ckpt_writes_;
    health.write_failures = ckpt_write_failures_;
    health.fallbacks = ckpt_fallbacks_;
    health.generations = ckpt_ != nullptr
                             ? static_cast<std::uint64_t>(
                                   ckpt_->generation_count())
                             : 0;
    health.last_write_ms = last_ckpt_write_ms_;
    health.degraded = ckpt_degraded_;
    view->SetStorageHealth(health);
  }
}

void RpcServer::NoteCheckpointFailure(const std::string& why) {
  ++ckpt_write_failures_;
  AddCounter(config_.telemetry, "ckpt/write_failures", 1.0);
  THREELC_LOG(Warn) << "rpc server: checkpoint write failed: " << why;
  if (config_.telemetry != nullptr) {
    if (obs::FlightRecorder* flight = config_.telemetry->flight_recorder()) {
      obs::HealthEvent event;
      event.severity = obs::HealthSeverity::kWarn;
      event.detector = "ckpt_storage";
      event.step = static_cast<std::uint64_t>(
          std::max<std::int64_t>(current_step_, 0));
      event.message = "checkpoint write failed: " + why;
      flight->RecordEvent(event);
    }
  }
  PublishStorageHealth();
}

void RpcServer::NoteCheckpointSuccess(double write_ms) {
  ++ckpt_writes_;
  last_ckpt_write_ms_ = write_ms;
  if (ckpt_degraded_) {
    ckpt_degraded_ = false;
    RecordMembershipEvent("checkpoint writes recovered (generation " +
                              std::to_string(ckpt_->next_generation() - 1) +
                              " durable)",
                          /*error=*/false);
    bool otherwise_degraded = WaitingWorkers() != 0;
    for (Member m : member_state_) {
      if (m == Member::kEvicted) otherwise_degraded = true;
    }
    if (!otherwise_degraded && config_.telemetry != nullptr &&
        config_.telemetry->health() != nullptr) {
      config_.telemetry->health()->SetRuntimeState(
          obs::RuntimeState::kHealthy, "checkpoint writes recovered");
    }
  }
  PublishStorageHealth();
}

bool RpcServer::WriteCheckpoint(std::int64_t next_step, bool force) {
  if (config_.checkpoint_path.empty()) return true;
  const auto every =
      static_cast<std::int64_t>(std::max(config_.checkpoint_every, 1));
  if (!force && next_step % every != 0) return true;

  nn::ServerState state;
  state.epoch = epoch_;
  state.next_step = static_cast<std::uint64_t>(std::max<std::int64_t>(
      next_step, 0));
  util::ByteBuffer ps_blob;
  ps_->SaveState(ps_blob);
  state.ps_state.assign(ps_blob.data(), ps_blob.data() + ps_blob.size());
  state.evicted.resize(member_state_.size());
  state.greeted.resize(greeted_.size());
  for (std::size_t w = 0; w < member_state_.size(); ++w) {
    state.evicted[w] = member_state_[w] == Member::kEvicted ? 1 : 0;
    state.greeted[w] = greeted_[w] ? 1 : 0;
  }
  state.replay.reserve(replay_.size());
  for (const auto& [step, tensors] : replay_) {
    nn::ServerState::ReplayStep rs;
    rs.step = static_cast<std::uint64_t>(step);
    rs.frames.reserve(tensors.size());
    for (const util::ByteBuffer& bytes : tensors) {
      rs.frames.emplace_back(bytes.data(), bytes.data() + bytes.size());
    }
    state.replay.push_back(std::move(rs));
  }
  // Degraded-but-alive storage posture: a failed write is retried with a
  // linear backoff, and exhaustion degrades the run (recovery is at risk
  // — a crash now replays from the last intact generation) instead of
  // aborting it. The write-ahead invariant holds either way: nothing has
  // been fanned out yet, so the last intact generation still covers
  // everything any worker has seen.
  nn::CheckpointManager& ckpt = Checkpointer();
  const int attempts = 1 + std::max(config_.checkpoint_write_retries, 0);
  bool written = false;
  std::string last_error;
  util::WallTimer write_timer;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0 && config_.checkpoint_retry_backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          config_.checkpoint_retry_backoff_ms * attempt));
    }
    try {
      ckpt.Save(ps_->global_model(), state);
      written = true;
      break;
    } catch (const std::exception& e) {
      last_error = e.what();
      NoteCheckpointFailure("generation " +
                            std::to_string(ckpt.next_generation()) +
                            " attempt " + std::to_string(attempt + 1) + "/" +
                            std::to_string(attempts) + ": " + e.what());
    }
  }
  if (written) {
    AddCounter(config_.telemetry, "rpc/server_checkpoints", 1.0);
    NoteCheckpointSuccess(write_timer.ElapsedMillis());
  } else if (!ckpt_degraded_) {
    ckpt_degraded_ = true;
    RecordMembershipEvent(
        "checkpoint write failing; recovery at risk (training continues on " +
            std::string(ckpt.generation_count() > 0
                            ? "the last intact generation"
                            : "no durable checkpoint") +
            "): " + last_error,
        /*error=*/true);
    if (config_.telemetry != nullptr &&
        config_.telemetry->health() != nullptr) {
      config_.telemetry->health()->SetRuntimeState(
          obs::RuntimeState::kDegraded,
          "checkpoint write failing; recovery at risk: " + last_error);
    }
    PublishStorageHealth();
  } else {
    PublishStorageHealth();
  }
  // A torn-rename fault latches a crash request: die here, at the exact
  // point a power loss would have torn the write — before any fan-out, so
  // generation fallback on resume is bitwise-safe.
  if (config_.fs != nullptr && config_.fs->TakeCrashRequest()) {
    SimulatedCrash("injected torn checkpoint write for step " +
                   std::to_string(next_step));
    return false;
  }
  return true;
}

bool RpcServer::ResumeFromCheckpoint(const std::string& path,
                                     std::string* error) {
  // Generation-aware load: newest usable generation under `path`, with
  // last-good fallback past torn/corrupt ones (nn::CheckpointManager).
  nn::CheckpointManager* manager;
  std::unique_ptr<nn::CheckpointManager> scratch;
  if (!config_.checkpoint_path.empty() && path == config_.checkpoint_path) {
    manager = &Checkpointer();
  } else {
    nn::CheckpointManager::Options options;
    options.path = path;
    options.retain = config_.checkpoint_retain;
    options.block_codec = config_.block_codec;
    options.fs = config_.fs;
    scratch = std::make_unique<nn::CheckpointManager>(std::move(options));
    manager = scratch.get();
  }

  nn::ServerState state;
  std::string load_error;
  if (!manager->Load(ps_->global_model(), &state, &load_error)) {
    if (error != nullptr) {
      *error = "loading server checkpoint '" + path + "': " + load_error;
    }
    return false;
  }
  for (const std::string& line : manager->fallback_log()) {
    THREELC_LOG(Warn) << "rpc server: " << line;
  }
  if (manager->fallbacks() > 0) {
    ckpt_fallbacks_ += static_cast<std::size_t>(manager->fallbacks());
    AddCounter(config_.telemetry, "ckpt/fallbacks",
               static_cast<double>(manager->fallbacks()));
    THREELC_LOG(Warn) << "rpc server: newest checkpoint generation unusable; "
                      << "fell back " << manager->fallbacks()
                      << " generation(s) to '" << manager->loaded_path()
                      << "'";
  }
  try {
    util::ByteReader reader(
        util::ByteSpan(state.ps_state.data(), state.ps_state.size()));
    ps_->LoadState(reader);
    if (!reader.AtEnd()) {
      throw std::runtime_error("trailing bytes in parameter-server state");
    }
  } catch (const std::exception& e) {
    if (error != nullptr) {
      *error = "loading server checkpoint '" + manager->loaded_path() +
               "': " + e.what();
    }
    return false;
  }
  if (state.evicted.size() != member_state_.size() ||
      state.greeted.size() != greeted_.size()) {
    if (error != nullptr) {
      *error = "server checkpoint '" + path + "' was written for " +
               std::to_string(state.evicted.size()) + " workers, not " +
               std::to_string(member_state_.size());
    }
    return false;
  }
  epoch_ = state.epoch + 1;
  resume_step_ = static_cast<std::int64_t>(state.next_step);
  for (std::size_t w = 0; w < member_state_.size(); ++w) {
    member_state_[w] = state.evicted[w] != 0 ? Member::kEvicted
                                             : Member::kActive;
    greeted_[w] = state.greeted[w] != 0;
  }
  replay_.clear();
  for (const nn::ServerState::ReplayStep& rs : state.replay) {
    std::vector<util::ByteBuffer> tensors;
    tensors.reserve(rs.frames.size());
    for (const std::vector<std::uint8_t>& bytes : rs.frames) {
      util::ByteBuffer frame;
      frame.Append(bytes.data(), bytes.size());
      tensors.push_back(std::move(frame));
    }
    replay_.emplace_back(static_cast<std::int64_t>(rs.step),
                         std::move(tensors));
  }
  resumed_ = true;
  PublishStorageHealth();
  THREELC_LOG(Info) << "rpc server: resumed from checkpoint '"
                    << manager->loaded_path() << "' at step " << resume_step_
                    << " as epoch " << epoch_;
  return true;
}

void RpcServer::SimulatedCrash(const std::string& why) {
  simulated_exit_ = true;
  failed_ = true;
  error_ = why;
  THREELC_LOG(Info) << "rpc server: " << why
                    << (config_.checkpoint_path.empty()
                            ? ""
                            : " (checkpoint at " + config_.checkpoint_path +
                                  ")");
  // Abrupt: no ERROR broadcast, no flush — every socket just vanishes, the
  // way a real crash looks to the workers.
  tcp_.Close();
}

void RpcServer::GracefulStop(const std::string& reason) {
  // Durability first. A write failure degrades rather than fails (the
  // last intact generation still covers every step a worker saw); false
  // here means an injected crash latch fired, which wins over the stop.
  if (!WriteCheckpoint(std::max<std::int64_t>(current_step_, 0),
                       /*force=*/true)) {
    return;
  }
  interrupted_ = true;
  failed_ = true;  // stops the poll loops without Fail()'s kFailed health
  error_ = "interrupted: " + reason;
  THREELC_LOG(Info) << "rpc server: " << error_
                    << (config_.checkpoint_path.empty()
                            ? ""
                            : "; checkpoint at " + config_.checkpoint_path);
  BroadcastError("server interrupted: " + reason);  // workers exit, not hang
}

bool RpcServer::Run() {
  if (!tcp_.listening()) {
    error_ = "server is not listening (call Listen or AdoptListener first)";
    return false;
  }
  obs::Tracer* tracer =
      config_.telemetry != nullptr ? &config_.telemetry->tracer() : nullptr;
  if (tracer != nullptr) tracer->SetTrackName(0, "server");

  if (obs::Telemetry* tel = config_.telemetry) {
    tel->metrics().gauge("rpc/server_epoch")
        ->Set(static_cast<double>(epoch_));
    if (epoch_ > 1) {
      // Restart count is epoch - 1 by construction; exported as a counter
      // so the CI chaos job can assert rpc_server_restarts_total >= 1 on
      // the resumed incarnation.
      tel->metrics().counter("rpc/server_restarts")
          ->Add(static_cast<double>(epoch_ - 1));
    }
  }
  // Persist this incarnation's epoch durably before any handshake can
  // observe it — a crash from here on resumes as epoch_ + 1, so no epoch a
  // worker has seen is ever reused.
  if (!WriteCheckpoint(resume_step_, /*force=*/true)) {
    tcp_.Close();
    return false;
  }

  if (resumed_) {
    // Every worker the previous incarnation greeted (and did not evict) is
    // out there retrying against this port; treat each as freshly
    // disconnected so the grace window — not the handshake count — governs
    // its return, and hold the step barrier until it REJOINs.
    const auto now = std::chrono::steady_clock::now();
    std::size_t returning = 0;
    handshakes_ = 0;
    for (std::size_t w = 0; w < member_state_.size(); ++w) {
      if (greeted_[w]) ++handshakes_;
      if (!greeted_[w] || member_state_[w] == Member::kEvicted) continue;
      member_state_[w] = Member::kWaiting;
      dead_since_[w] = now;
      ++returning;
    }
    steps_completed_ = resume_step_;
    RecordMembershipEvent(
        "server resumed from checkpoint at step " +
            std::to_string(resume_step_) + " (epoch " +
            std::to_string(epoch_) + "); awaiting " +
            std::to_string(returning) + " worker rejoin(s)",
        /*error=*/false);
    if (config_.telemetry != nullptr &&
        config_.telemetry->health() != nullptr) {
      config_.telemetry->health()->SetRuntimeState(
          obs::RuntimeState::kDegraded,
          "server resumed (epoch " + std::to_string(epoch_) +
              "); awaiting " + std::to_string(returning) +
              " worker rejoin(s)");
    }
  }

  // Pushes for the first collect step may arrive while slower workers are
  // still shaking hands (or, after a resume, still rejoining).
  BeginCollect(resume_step_);
  {
    obs::ScopedSpan span(tracer, "rpc/handshake", 0);
    if (!PollUntil(
            [this] {
              return handshakes_ ==
                     static_cast<std::size_t>(config_.num_workers);
            },
            config_.handshake_timeout_ms, "handshake")) {
      tcp_.Close();
      return false;
    }
  }
  THREELC_LOG(Info) << "rpc server: " << config_.num_workers
                    << " workers handshaken (plan hash " << std::hex
                    << plan_hash_ << std::dec << ", codec '" << codec_name_
                    << "', epoch " << epoch_ << "), running steps "
                    << resume_step_ << ".." << config_.total_steps;

  nn::CosineDecay schedule(config_.lr_max, config_.lr_min,
                           config_.total_steps);
  for (std::int64_t step = resume_step_; step < config_.total_steps;
       ++step) {
    if (!RunStep(step, schedule.At(step))) {
      tcp_.Close();
      return false;
    }
    ++steps_completed_;
    if (config_.fault != nullptr && config_.fault->kill_requested()) {
      SimulatedCrash("injected server kill after step " +
                     std::to_string(step));
      return false;
    }
    if (step == config_.exit_after_step) {
      SimulatedCrash("simulated server crash after step " +
                     std::to_string(step));
      return false;
    }
  }

  // Shutdown: drain remaining pulls, collect a BYE from every surviving
  // worker (a worker inside its grace window holds shutdown open until it
  // rejoins and says BYE, or is evicted), fold in buffers, acknowledge,
  // flush, close.
  const int shutdown_timeout_ms =
      config_.shutdown_timeout_ms + std::max(config_.grace_ms, 0);
  if (!PollUntil(
          [this] {
            return WaitingWorkers() == 0 && byes_ >= ActiveWorkers();
          },
          shutdown_timeout_ms, "shutdown")) {
    tcp_.Close();
    return false;
  }
  if (ActiveWorkers() == 0) {
    Fail("no active workers left at shutdown");
    tcp_.Close();
    return false;
  }
  if (!ApplyWorkerBuffers()) {
    tcp_.Close();
    return false;
  }
  // Graceful-shutdown checkpoint: the final model (including folded-in
  // batch-norm buffers) is durable before any BYE is acknowledged.
  if (!WriteCheckpoint(config_.total_steps, /*force=*/true)) {
    tcp_.Close();
    return false;
  }
  for (std::size_t w = 0; w < worker_conns_.size(); ++w) {
    if (member_state_[w] != Member::kActive) continue;
    Connection* conn = worker_conns_[w];
    if (conn == nullptr ||
        !conn->SendFrame(MsgType::kByeAck, 0, 0, util::ByteSpan())) {
      Fail("sending BYE_ACK: " +
           (conn != nullptr ? conn->last_error() : "connection gone"));
      tcp_.Close();
      return false;
    }
  }
  if (!PollUntil(
          [this] {
            for (Connection* conn : worker_conns_) {
              if (conn != nullptr && conn->open() && conn->wants_write()) {
                return false;
              }
            }
            return true;
          },
          config_.shutdown_timeout_ms, "final flush")) {
    tcp_.Close();
    return false;
  }
  tcp_.Close();
  THREELC_LOG(Info) << "rpc server: clean shutdown after "
                    << steps_completed_ << " steps"
                    << (evictions_ > 0
                            ? " (degraded: " + std::to_string(evictions_) +
                                  " worker(s) evicted)"
                            : "");
  return true;
}

// --- RpcWorker -------------------------------------------------------------

RpcWorker::RpcWorker(RpcWorkerConfig config, ps::Worker& worker,
                     const ps::TensorPlan& plan, std::string codec_name,
                     data::Sampler sampler)
    : config_(std::move(config)),
      worker_(&worker),
      plan_(&plan),
      codec_name_(std::move(codec_name)),
      block_codec_(blockcodec::Find(config_.block_codec)),
      sampler_(std::move(sampler)),
      metrics_(config_.telemetry != nullptr
                   ? TransportMetrics::RegisterIn(config_.telemetry->metrics())
                   : TransportMetrics{}),
      next_apply_(config_.start_step),
      computed_through_(config_.start_step - 1) {
  THREELC_CHECK_MSG(block_codec_ != nullptr,
                    "unknown block codec '" << config_.block_codec
                                            << "' (known: "
                                            << blockcodec::KnownNames()
                                            << ")");
}

bool RpcWorker::Fail(const std::string& message) {
  if (!failed_) {
    failed_ = true;
    error_ = message;
    ReportFault(config_.telemetry,
                "rpc worker " + std::to_string(config_.worker_id), message);
  }
  return false;
}

Connection::IoResult RpcWorker::WaitDataFrame(Connection& conn, Frame* frame,
                                              int timeout_ms) {
  // With leases off (lease_ms == 0) each data frame is one blocking
  // WaitFrame. With leases on the wait is sliced: a HEARTBEAT beacon goes
  // out on the cadence (keeping the server's lease on this worker fresh
  // while it blocks), any received frame resets the silence clock, and
  // lease_ms of total server silence closes the connection early — the
  // bound that keeps a hung or one-way-partitioned server from costing
  // the full timeout_ms.
  const bool lease_on = config_.lease_ms > 0;
  const int cadence = config_.heartbeat_ms > 0
                          ? config_.heartbeat_ms
                          : std::max(50, config_.lease_ms / 4);
  util::WallTimer total_timer;
  util::WallTimer silence_timer;
  double next_beat_ms = 0.0;  // beacon immediately on entering the wait
  for (;;) {
    const int remaining =
        timeout_ms - static_cast<int>(total_timer.ElapsedMillis());
    if (remaining <= 0) {
      if (metrics_.timeouts != nullptr) metrics_.timeouts->Add(1.0);
      return Connection::IoResult::kError;
    }
    int slice = remaining;
    if (lease_on) {
      const double silent_ms = silence_timer.ElapsedMillis();
      if (silent_ms >= config_.lease_ms) {
        THREELC_LOG(Warn) << "rpc worker " << config_.worker_id
                          << ": server lease expired (no frame for "
                          << static_cast<int>(silent_ms) << " ms, lease "
                          << config_.lease_ms
                          << " ms); treating the connection as dead";
        AddCounter(config_.telemetry, "rpc/lease_expiries", 1.0);
        conn.Close();
        return Connection::IoResult::kClosed;
      }
      if (total_timer.ElapsedMillis() >= next_beat_ms) {
        HeartbeatPayload beat;
        beat.role = 0;
        beat.seq = heartbeat_seq_++;
        beat.progress = static_cast<std::uint64_t>(
            std::max<std::int64_t>(computed_through_, 0));
        util::ByteBuffer payload;
        EncodeHeartbeat(beat, payload);
        // Best-effort: a failed queue (backpressure, closed) surfaces via
        // the lease or the next real send, not via the beacon.
        if (conn.SendFrame(MsgType::kHeartbeat, 0, 0, payload.span())) {
          AddCounter(config_.telemetry, "rpc/heartbeats_sent", 1.0);
        }
        next_beat_ms = total_timer.ElapsedMillis() + cadence;
      }
      slice = std::min({slice, cadence,
                        config_.lease_ms -
                            static_cast<int>(silence_timer.ElapsedMillis())});
      slice = std::max(slice, 1);
    }
    const Connection::IoResult r = conn.WaitFrame(frame, slice);
    if (r == Connection::IoResult::kOk) {
      silence_timer.Reset();
      if (frame->header.type == MsgType::kHeartbeat) {
        // Server liveness beacon; the silence reset above is its payload.
        AddCounter(config_.telemetry, "rpc/heartbeats_received", 1.0);
        continue;
      }
      if (frame->header.type == MsgType::kEvict) {
        // Membership news about another worker; informational here.
        std::uint32_t evicted = 0xFFFFFFFFu;
        try {
          util::ByteReader reader(frame->payload);
          evicted = reader.ReadU32();
        } catch (...) {
        }
        THREELC_LOG(Warn) << "rpc worker " << config_.worker_id
                          << ": server evicted worker " << evicted;
        continue;
      }
      return r;
    }
    if (r == Connection::IoResult::kClosed) return r;
    // kError: a slice that merely timed out (transport.cc's WaitFrame
    // message, verbatim) is the lease/beacon clock ticking, not a fault.
    if (lease_on && conn.last_error() == "timed out waiting for a frame") {
      continue;
    }
    return r;
  }
}

bool RpcWorker::Handshake(Connection& conn) {
  HandshakePayload payload;
  payload.worker_id = static_cast<std::uint32_t>(config_.worker_id);
  payload.plan_hash = PlanHash(*plan_, codec_name_);
  payload.codec = codec_name_;
  payload.block_codec = block_codec_->id();
  payload.epoch = 0;  // fresh worker: no incarnation seen yet
  util::ByteBuffer hello;
  EncodeHandshake(payload, /*rejoin=*/false, hello);
  if (!conn.SendFrame(MsgType::kHello, 0, 0, hello.span())) {
    return Fail("sending HELLO: " + conn.last_error());
  }
  if (conn.FlushOutput(config_.io_timeout_ms) != Connection::IoResult::kOk) {
    return Fail("flushing HELLO: " + DescribeWait(Connection::IoResult::kError,
                                                  conn));
  }
  Frame ack;
  const Connection::IoResult r =
      WaitDataFrame(conn, &ack, config_.handshake_timeout_ms);
  if (r != Connection::IoResult::kOk) {
    return Fail("waiting for HELLO_ACK: " + DescribeWait(r, conn));
  }
  if (ack.header.type == MsgType::kError) {
    return Fail("server rejected handshake: " + PayloadString(ack));
  }
  if (ack.header.type != MsgType::kHelloAck) {
    return Fail(std::string("expected HELLO_ACK, got ") +
                MsgTypeName(ack.header.type));
  }
  try {
    const HandshakeAckPayload ackp =
        DecodeHandshakeAck(ack.payload.span(), /*rejoin=*/false);
    num_workers_ = static_cast<int>(ackp.num_workers);
    total_steps_ = static_cast<std::int64_t>(ackp.total_steps);
    if (ackp.plan_hash != PlanHash(*plan_, codec_name_)) {
      return Fail("HELLO_ACK plan hash mismatch");
    }
    if (ackp.block_codec != block_codec_->id()) {
      return Fail("HELLO_ACK block-codec mismatch: server negotiated id " +
                  std::to_string(static_cast<int>(ackp.block_codec)) +
                  ", worker runs '" + std::string(block_codec_->name()) +
                  "' (id " + std::to_string(static_cast<int>(
                                 block_codec_->id())) + ")");
    }
    if (ackp.epoch == 0) {
      return Fail("HELLO_ACK carries epoch 0 (every server incarnation is "
                  "numbered from 1)");
    }
    server_epoch_ = ackp.epoch;
  } catch (const std::exception& e) {
    return Fail(std::string("malformed HELLO_ACK: ") + e.what());
  }
  return true;
}

bool RpcWorker::RejoinHandshake(Connection& conn,
                                std::int64_t* collect_step) {
  HandshakePayload payload;
  payload.worker_id = static_cast<std::uint32_t>(config_.worker_id);
  payload.plan_hash = PlanHash(*plan_, codec_name_);
  payload.codec = codec_name_;
  payload.block_codec = block_codec_->id();
  // 0 when this process restarted from a checkpoint and never completed a
  // handshake; the server accepts any epoch <= its own.
  payload.epoch = server_epoch_;
  payload.next_step = static_cast<std::uint64_t>(next_apply_);
  util::ByteBuffer rejoin;
  EncodeHandshake(payload, /*rejoin=*/true, rejoin);
  if (!conn.SendFrame(MsgType::kRejoin, 0, 0, rejoin.span())) {
    return Fail("sending REJOIN: " + conn.last_error());
  }
  if (conn.FlushOutput(config_.io_timeout_ms) != Connection::IoResult::kOk) {
    return Fail("flushing REJOIN: " + conn.last_error());
  }
  Frame ack;
  const Connection::IoResult r =
      WaitDataFrame(conn, &ack, config_.handshake_timeout_ms);
  if (r != Connection::IoResult::kOk) {
    return Fail("waiting for REJOIN_ACK: " + DescribeWait(r, conn));
  }
  if (ack.header.type == MsgType::kError) {
    return Fail("server rejected rejoin: " + PayloadString(ack));
  }
  if (ack.header.type != MsgType::kRejoinAck) {
    return Fail(std::string("expected REJOIN_ACK, got ") +
                MsgTypeName(ack.header.type));
  }
  try {
    const HandshakeAckPayload ackp =
        DecodeHandshakeAck(ack.payload.span(), /*rejoin=*/true);
    num_workers_ = static_cast<int>(ackp.num_workers);
    total_steps_ = static_cast<std::int64_t>(ackp.total_steps);
    if (ackp.plan_hash != PlanHash(*plan_, codec_name_)) {
      return Fail("REJOIN_ACK plan hash mismatch");
    }
    if (ackp.block_codec != block_codec_->id()) {
      return Fail("REJOIN_ACK block-codec mismatch: server negotiated id " +
                  std::to_string(static_cast<int>(ackp.block_codec)) +
                  ", worker runs '" + std::string(block_codec_->name()) +
                  "' (id " + std::to_string(static_cast<int>(
                                 block_codec_->id())) + ")");
    }
    if (ackp.epoch == 0) {
      return Fail("REJOIN_ACK carries epoch 0 (every server incarnation is "
                  "numbered from 1)");
    }
    if (server_epoch_ != 0 && ackp.epoch < server_epoch_) {
      // A server can only ever move forward: epoch_ is persisted before any
      // handshake. Regression means we connected to a stale deployment.
      return Fail("stale server: epoch regressed from " +
                  std::to_string(server_epoch_) + " to " +
                  std::to_string(ackp.epoch));
    }
    if (server_epoch_ != 0 && ackp.epoch > server_epoch_) {
      THREELC_LOG(Warn) << "rpc worker " << config_.worker_id
                        << ": server restarted from its checkpoint (epoch "
                        << server_epoch_ << " -> " << ackp.epoch
                        << "); re-synced via rejoin";
    }
    server_epoch_ = ackp.epoch;
    *collect_step = static_cast<std::int64_t>(ackp.collect_step);
  } catch (const std::exception& e) {
    return Fail(std::string("malformed REJOIN_ACK: ") + e.what());
  }
  if (*collect_step < next_apply_) {
    return Fail("REJOIN_ACK collect step " + std::to_string(*collect_step) +
                " behind worker resume step " + std::to_string(next_apply_));
  }
  THREELC_LOG(Info) << "rpc worker " << config_.worker_id
                    << ": rejoined at server step " << *collect_step
                    << " (resuming from step " << next_apply_ << ")";
  return true;
}

void RpcWorker::ComputeStep(std::int64_t step) {
  obs::Tracer* tracer =
      config_.telemetry != nullptr ? &config_.telemetry->tracer() : nullptr;
  const int track = 1 + config_.worker_id;
  obs::ScopedSpan span(tracer, "forward_backward", track, step);
  // Plain wall timers, not profiler scopes: spawned workers run with no
  // Telemetry at all, and these numbers ship to the server in the step's
  // TELEMETRY frame either way.
  pending_telemetry_ = TelemetryPayload{};
  util::WallTimer fb_timer;
  data::Batch batch = sampler_.Next(config_.batch_size);
  pending_loss_ = static_cast<float>(
      worker_->model().TrainStep(batch.inputs, batch.labels).loss);
  pending_telemetry_.forward_backward_ns =
      static_cast<std::uint64_t>(fb_timer.ElapsedSeconds() * 1e9);
  const std::size_t num_tensors = plan_->size();
  pending_push_.resize(num_tensors);
  util::WallTimer encode_timer;
  double ea_sq = 0.0;
  for (std::size_t t = 0; t < num_tensors; ++t) {
    pending_push_[t].Clear();
    compress::EncodeStats stats;
    worker_->EncodePush(t, pending_push_[t], &stats);
    if (stats.has_residual) ea_sq += stats.residual_l2 * stats.residual_l2;
    pending_telemetry_.stage1_bytes_out += pending_push_[t].size();
  }
  if (block_codec_->id() != blockcodec::kStoreId) {
    // Wrap each push in the negotiated block envelope. pending_push_
    // keeps the wrapped bytes, so a resend after a reconnect ships the
    // identical wire payload without re-running either codec stage.
    obs::ScopedStage stage(&obs::StageProfiler::Global(), "block_encode");
    for (std::size_t t = 0; t < num_tensors; ++t) {
      util::ByteBuffer wrapped;
      blockcodec::EncodeBlock(*block_codec_, pending_push_[t].span(),
                              wrapped);
      pending_push_[t] = std::move(wrapped);
    }
  }
  for (std::size_t t = 0; t < num_tensors; ++t) {
    pending_telemetry_.bytes_out += pending_push_[t].size();
  }
  pending_telemetry_.encode_ns =
      static_cast<std::uint64_t>(encode_timer.ElapsedSeconds() * 1e9);
  pending_telemetry_.ea_l2 = std::sqrt(ea_sq);
  computed_through_ = step;
}

bool RpcWorker::UnwrapPull(std::size_t t, util::ByteBuffer& payload) {
  if (block_codec_->id() == blockcodec::kStoreId) return true;
  try {
    obs::ScopedStage stage(&obs::StageProfiler::Global(), "block_decode");
    util::ByteBuffer decoded;
    blockcodec::DecodeBlock(payload.span(), kMaxPayloadBytes, decoded);
    payload = std::move(decoded);
  } catch (const std::exception& e) {
    return Fail("decoding block envelope of PULL tensor " +
                std::to_string(t) + ": " + e.what());
  }
  return true;
}

RpcWorker::StepStatus RpcWorker::ReplayTo(std::int64_t collect_step) {
  const std::size_t num_tensors = plan_->size();
  for (std::int64_t r = next_apply_; r < collect_step; ++r) {
    // Advance the local state machine exactly as the original pass did:
    // sample the batch, run forward/backward, and encode the pushes (which
    // moves the EA buffers) — then discard the sends, since the server
    // already aggregated bitwise-identical bytes.
    if (computed_through_ < r) ComputeStep(r);
    std::vector<util::ByteBuffer> pulls(num_tensors);
    for (std::size_t t = 0; t < num_tensors; ++t) {
      Frame frame;
      const Connection::IoResult io =
          WaitDataFrame(*conn_, &frame, config_.pull_timeout_ms);
      if (io != Connection::IoResult::kOk) {
        THREELC_LOG(Warn) << "rpc worker " << config_.worker_id
                          << ": connection lost during replay of step " << r
                          << ": " << DescribeWait(io, *conn_);
        return StepStatus::kRetry;
      }
      if (frame.header.type == MsgType::kError) {
        Fail("server error during replay: " + PayloadString(frame));
        return StepStatus::kFailed;
      }
      if (frame.header.type != MsgType::kPull ||
          frame.header.step != static_cast<std::uint64_t>(r) ||
          frame.header.tensor != static_cast<std::uint32_t>(t)) {
        std::ostringstream oss;
        oss << "protocol violation during replay: expected PULL step " << r
            << " tensor " << t << ", got " << MsgTypeName(frame.header.type)
            << " step " << frame.header.step << " tensor "
            << frame.header.tensor;
        Fail(oss.str());
        return StepStatus::kFailed;
      }
      pulls[t] = std::move(frame.payload);
    }
    for (std::size_t t = 0; t < num_tensors; ++t) {
      if (!UnwrapPull(t, pulls[t])) return StepStatus::kFailed;
      try {
        util::ByteReader reader(pulls[t]);
        worker_->ApplyPull(t, reader);
        if (!reader.AtEnd()) {
          Fail("trailing bytes in replayed PULL for tensor " +
               std::to_string(t));
          return StepStatus::kFailed;
        }
      } catch (const std::exception& e) {
        Fail(std::string("applying replayed PULL tensor ") +
             std::to_string(t) + ": " + e.what());
        return StepStatus::kFailed;
      }
    }
    ++next_apply_;
    ++steps_run_;
  }
  return StepStatus::kOk;
}

bool RpcWorker::Connect(bool rejoin_mode) {
  RetryOptions retry = config_.retry;
  if (retry.jitter_seed == 0) {
    // Give each worker a distinct deterministic backoff schedule so a
    // fleet reconnecting after a server blip does not stampede in lockstep.
    retry.jitter_seed =
        0x334C4333ull ^ (static_cast<std::uint64_t>(config_.worker_id) + 1);
  }
  std::string connect_error;
  const int fd = ConnectWithRetry(config_.host, config_.port, retry,
                                  &metrics_, &connect_error);
  if (fd < 0) {
    if (rejoin_mode) {
      // Soft failure: one exhausted connect budget (attempts + deadline)
      // consumes one reconnect attempt, so Reconnect()'s max_reconnects —
      // the same policy that governs mid-run drops — bounds the total
      // spend. A restarting server (epoch bump) is typically back within
      // one or two budgets.
      THREELC_LOG(Warn) << "rpc worker " << config_.worker_id
                        << ": reconnect attempt failed: " << connect_error;
      return false;
    }
    return Fail(connect_error);
  }
  conn_ = std::make_unique<Connection>(fd, &metrics_);
  if (config_.fault != nullptr) conn_->set_fault_injector(config_.fault);

  obs::Tracer* tracer =
      config_.telemetry != nullptr ? &config_.telemetry->tracer() : nullptr;
  const int track = 1 + config_.worker_id;
  obs::ScopedSpan span(tracer, rejoin_mode ? "rpc/rejoin" : "rpc/handshake",
                       track);
  if (!rejoin_mode) return Handshake(*conn_);
  std::int64_t collect_step = 0;
  if (!RejoinHandshake(*conn_, &collect_step)) return false;
  // kRetry leaves failed_ unset: the caller may spend another reconnect
  // attempt on a fresh REJOIN.
  return ReplayTo(collect_step) == StepStatus::kOk;
}

bool RpcWorker::Reconnect() {
  if (conn_ != nullptr) conn_->Close();
  while (!failed_) {
    if (reconnects_ >=
        static_cast<std::size_t>(std::max(config_.max_reconnects, 0))) {
      return Fail("connection to server lost and reconnect budget (" +
                  std::to_string(config_.max_reconnects) + ") exhausted");
    }
    ++reconnects_;
    AddCounter(config_.telemetry, "rpc/reconnects", 1.0);
    THREELC_LOG(Warn) << "rpc worker " << config_.worker_id
                      << ": reconnecting (attempt " << reconnects_ << " of "
                      << config_.max_reconnects << ")";
    if (Connect(/*rejoin_mode=*/true)) return true;
    // A hard failure during rejoin set failed_ and ends the loop; a soft
    // one (the new connection died mid-replay) consumes another attempt.
  }
  return false;
}

RpcWorker::StepStatus RpcWorker::RunStep(std::int64_t step) {
  obs::Tracer* tracer =
      config_.telemetry != nullptr ? &config_.telemetry->tracer() : nullptr;
  const int track = 1 + config_.worker_id;
  const std::size_t num_tensors = plan_->size();

  // Forward/backward + encode runs at most once per step, no matter how
  // many times the sends are retried across reconnects — re-encoding would
  // advance the error-accumulation buffers twice and silently fork the
  // trajectory. Retries resend the identical stored bytes.
  if (computed_through_ < step) ComputeStep(step);

  util::WallTimer push_timer;
  {
    obs::ScopedSpan span(tracer, "rpc/push", track, step);
    for (std::size_t t = 0; t < num_tensors; ++t) {
      if (!conn_->SendFrame(MsgType::kPush, static_cast<std::uint64_t>(step),
                            static_cast<std::uint32_t>(t),
                            pending_push_[t].span())) {
        THREELC_LOG(Warn) << "rpc worker " << config_.worker_id
                          << ": queueing PUSH tensor " << t << " failed: "
                          << conn_->last_error();
        return StepStatus::kRetry;
      }
    }
    util::ByteBuffer stats;
    stats.AppendF32(pending_loss_);
    if (!conn_->SendFrame(MsgType::kStepStats,
                          static_cast<std::uint64_t>(step), 0, stats.span())) {
      THREELC_LOG(Warn) << "rpc worker " << config_.worker_id
                        << ": queueing STEP_STATS failed: "
                        << conn_->last_error();
      return StepStatus::kRetry;
    }
    if (conn_->FlushOutput(config_.io_timeout_ms) !=
        Connection::IoResult::kOk) {
      THREELC_LOG(Warn) << "rpc worker " << config_.worker_id
                        << ": flushing step " << step << " pushes failed: "
                        << conn_->last_error();
      return StepStatus::kRetry;
    }
  }
  pending_telemetry_.push_ns =
      static_cast<std::uint64_t>(push_timer.ElapsedSeconds() * 1e9);
  {
    obs::ScopedSpan span(tracer, "rpc/pull_wait", track, step);
    util::WallTimer pull_wait_timer;
    // Collect all of the step's pulls before applying any (deferred
    // apply): a connection lost mid-collect leaves the model untouched and
    // the step cleanly resumable after a rejoin.
    std::vector<util::ByteBuffer> pulls(num_tensors);
    for (std::size_t t = 0; t < num_tensors; ++t) {
      Frame frame;
      const Connection::IoResult r =
          WaitDataFrame(*conn_, &frame, config_.pull_timeout_ms);
      if (r != Connection::IoResult::kOk) {
        THREELC_LOG(Warn) << "rpc worker " << config_.worker_id
                          << ": waiting for PULL tensor " << t << " failed: "
                          << DescribeWait(r, *conn_);
        return StepStatus::kRetry;
      }
      if (frame.header.type == MsgType::kError) {
        Fail("server error: " + PayloadString(frame));
        return StepStatus::kFailed;
      }
      if (frame.header.type != MsgType::kPull ||
          frame.header.step != static_cast<std::uint64_t>(step) ||
          frame.header.tensor != static_cast<std::uint32_t>(t)) {
        std::ostringstream oss;
        oss << "protocol violation: expected PULL step " << step
            << " tensor " << t << ", got " << MsgTypeName(frame.header.type)
            << " step " << frame.header.step << " tensor "
            << frame.header.tensor;
        Fail(oss.str());
        return StepStatus::kFailed;
      }
      pulls[t] = std::move(frame.payload);
    }
    pending_telemetry_.pull_wait_ns =
        static_cast<std::uint64_t>(pull_wait_timer.ElapsedSeconds() * 1e9);
    util::WallTimer decode_timer;
    for (std::size_t t = 0; t < num_tensors; ++t) {
      pending_telemetry_.bytes_in += pulls[t].size();
      if (!UnwrapPull(t, pulls[t])) return StepStatus::kFailed;
      pending_telemetry_.stage1_bytes_in += pulls[t].size();
      try {
        util::ByteReader reader(pulls[t]);
        worker_->ApplyPull(t, reader);
        if (!reader.AtEnd()) {
          Fail("trailing bytes in PULL payload for tensor " +
               std::to_string(t));
          return StepStatus::kFailed;
        }
      } catch (const std::exception& e) {
        Fail(std::string("applying PULL tensor ") + std::to_string(t) +
             ": " + e.what());
        return StepStatus::kFailed;
      }
    }
    pending_telemetry_.decode_ns =
        static_cast<std::uint64_t>(decode_timer.ElapsedSeconds() * 1e9);
  }
  ++next_apply_;
  // Ship the completed step's telemetry record. Best-effort by design:
  // it is queued here and rides out with the next step's pushes (or the
  // BYE flush); a send failure is surfaced by the next real send, not by
  // the record, and a resent step resends it (the server dedups by step).
  pending_telemetry_.rejoins = static_cast<std::uint32_t>(reconnects_);
  util::ByteBuffer record;
  EncodeTelemetry(pending_telemetry_, record);
  conn_->SendFrame(MsgType::kTelemetry, static_cast<std::uint64_t>(step), 0,
                   record.span());
  return StepStatus::kOk;
}

void RpcWorker::WriteResumeCheckpoint(const std::string& path) {
  // Checkpoint timing invariant: after completing step k, the model has
  // k's pulls applied, the EA buffers have advanced through k's encode,
  // the sampler has consumed k's batch, and next_step is k + 1 — exactly
  // the state a fault-free worker would carry into step k + 1.
  nn::TrainState state;
  state.next_step = static_cast<std::uint64_t>(next_apply_);
  util::ByteBuffer codec_blob;
  worker_->SaveCodecState(codec_blob);
  state.codec_state.assign(codec_blob.data(),
                           codec_blob.data() + codec_blob.size());
  util::ByteBuffer sampler_blob;
  sampler_.SaveState(sampler_blob);
  state.sampler_state.assign(sampler_blob.data(),
                             sampler_blob.data() + sampler_blob.size());
  nn::SaveCheckpointWithState(worker_->model(), state, path,
                              config_.block_codec);
}

void RpcWorker::SimulateCrash(std::int64_t step) {
  if (!config_.exit_checkpoint_path.empty()) {
    WriteResumeCheckpoint(config_.exit_checkpoint_path);
  }
  conn_->Close();  // abrupt: no BYE — the server sees a mid-run disconnect
  simulated_exit_ = true;
  failed_ = true;
  error_ = "simulated crash after step " + std::to_string(step);
  THREELC_LOG(Info) << "rpc worker " << config_.worker_id << ": " << error_
                    << (config_.exit_checkpoint_path.empty()
                            ? ""
                            : " (checkpoint at " +
                                  config_.exit_checkpoint_path + ")");
}

void RpcWorker::GracefulStop() {
  std::string note;
  if (!config_.stop_checkpoint_path.empty()) {
    try {
      WriteResumeCheckpoint(config_.stop_checkpoint_path);
      note = "; checkpoint at " + config_.stop_checkpoint_path;
    } catch (const std::exception& e) {
      THREELC_LOG(Error) << "rpc worker " << config_.worker_id
                         << ": writing stop checkpoint: " << e.what();
      note = "; stop checkpoint FAILED";
    }
  }
  if (conn_ != nullptr) conn_->Close();
  interrupted_ = true;
  failed_ = true;  // stops Run without poisoning health via Fail()
  error_ = "interrupted: stop signal";
  THREELC_LOG(Info) << "rpc worker " << config_.worker_id << ": " << error_
                    << note;
}

bool RpcWorker::SayBye(Connection& conn) {
  // Every worker ships its batch-norm running stats; the server applies
  // the lowest surviving id's — worker 0's whenever it is alive, matching
  // DistributedTrainer::EvaluateGlobalModel's CopyBuffersFrom(worker 0).
  util::ByteBuffer payload;
  std::vector<tensor::Tensor*> buffers = worker_->model().Buffers();
  payload.AppendU32(static_cast<std::uint32_t>(buffers.size()));
  for (const tensor::Tensor* buffer : buffers) {
    payload.AppendU64(static_cast<std::uint64_t>(buffer->num_elements()));
    payload.Append(buffer->data(),
                   static_cast<std::size_t>(buffer->num_elements()) *
                       sizeof(float));
  }
  if (!conn.SendFrame(MsgType::kBye, 0, 0, payload.span())) {
    return Fail("queueing BYE: " + conn.last_error());
  }
  if (conn.FlushOutput(config_.io_timeout_ms) != Connection::IoResult::kOk) {
    return Fail("flushing BYE: " + conn.last_error());
  }
  Frame ack;
  const Connection::IoResult r =
      WaitDataFrame(conn, &ack, config_.io_timeout_ms);
  if (r == Connection::IoResult::kClosed) return true;  // server won the race
  if (r != Connection::IoResult::kOk) {
    return Fail("waiting for BYE_ACK: " + DescribeWait(r, conn));
  }
  if (ack.header.type == MsgType::kError) {
    return Fail("server error at shutdown: " + PayloadString(ack));
  }
  if (ack.header.type != MsgType::kByeAck) {
    return Fail(std::string("expected BYE_ACK, got ") +
                MsgTypeName(ack.header.type));
  }
  return true;
}

bool RpcWorker::Run() {
  obs::Tracer* tracer =
      config_.telemetry != nullptr ? &config_.telemetry->tracer() : nullptr;
  const int track = 1 + config_.worker_id;
  if (tracer != nullptr) {
    tracer->SetTrackName(track,
                         "worker " + std::to_string(config_.worker_id));
  }
  if (!Connect(config_.rejoin)) {
    if (failed_) return false;
    // The rejoin replay died on a soft fault; spend reconnect budget.
    if (!Reconnect()) return false;
  }
  THREELC_LOG(Info) << "rpc worker " << config_.worker_id << ": handshaken ("
                    << num_workers_ << " workers, " << total_steps_
                    << " steps)";
  while (next_apply_ < total_steps_) {
    if (config_.stop_flag != nullptr &&
        config_.stop_flag->load(std::memory_order_acquire)) {
      GracefulStop();
      return false;
    }
    const std::int64_t step = next_apply_;
    const StepStatus status = RunStep(step);
    if (status == StepStatus::kFailed) return false;
    if (status == StepStatus::kRetry) {
      if (!Reconnect()) return false;
      continue;
    }
    ++steps_run_;
    if (step == config_.exit_after_step) {
      SimulateCrash(step);
      return false;
    }
  }
  if (!SayBye(*conn_)) return false;
  conn_->Close();
  THREELC_LOG(Info) << "rpc worker " << config_.worker_id
                    << ": clean shutdown after " << steps_run_ << " steps"
                    << (reconnects_ > 0
                            ? " (" + std::to_string(reconnects_) +
                                  " reconnect(s))"
                            : "");
  return true;
}

}  // namespace threelc::rpc
