// Wire framing for the real TCP transport (rpc/transport, rpc/runtime).
//
// Every message on the wire is one length-prefixed binary frame:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//        0     4  magic 0x52434C33 ("3LCR" as little-endian bytes)
//        4     1  protocol version (kProtocolVersion)
//        5     1  message type (MsgType)
//        6     2  flags (reserved, must be 0)
//        8     8  step (u64; 0 for non-step messages)
//       16     4  tensor index (u32; 0 when not tensor-addressed)
//       20     4  payload length in bytes (u32, <= kMaxPayloadBytes)
//       24     4  CRC32C over header bytes [0, 24) ++ payload
//       28     n  payload (opaque: codec output, handshake fields, ...)
//
// All integers are little-endian, matching ByteBuffer's scalar writers
// (byte_buffer.cc static_asserts a little-endian host). The CRC field is
// last in the header so the checksum simply covers everything before it —
// no zeroed-field dance — and a flipped bit anywhere in header or payload
// is caught before a frame is surfaced.
//
// FrameParser is incremental: feed it whatever recv(2) returned — half a
// header, three frames and a tail, one byte at a time — and it emits
// complete frames in order. Any malformed input (bad magic/version/type,
// oversized length, CRC mismatch) poisons the parser with a ParseError;
// the connection must then be dropped, since resynchronizing an arbitrary
// byte stream is not attempted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/byte_buffer.h"

namespace threelc::rpc {

constexpr std::uint32_t kFrameMagic = 0x52434C33u;  // "3LCR"
// Version 2 added the fault-tolerance frames (REJOIN, REJOIN_ACK, EVICT)
// and BYE buffers from every worker. Version 3 added the server
// incarnation epoch to every handshake payload (HELLO/REJOIN and their
// acks), so a worker reconnecting after a server crash detects the
// restarted incarnation — and a stale server detects a worker from the
// future. Version 4 added the TELEMETRY frame, a per-step worker metric
// record the server's obs::ClusterView aggregates. Version 5 added the
// negotiated block-codec id (blockcodec/) to every handshake payload —
// PUSH/PULL payloads ride in a block envelope when a non-store codec was
// agreed — and first-stage byte counters to TELEMETRY. Version 6 added
// the HEARTBEAT liveness frame: both roles emit it on an idle-aware
// cadence so a hung-but-connected peer (SIGSTOP, one-way partition,
// half-open socket) is detected by lease expiry instead of the global
// step timeout. Older peers are
// rejected at the parser (kBadVersion) before any payload is interpreted.
constexpr std::uint8_t kProtocolVersion = 6;
constexpr std::size_t kFrameHeaderBytes = 28;
// Largest payload the parser will accept. Generously above any encoded
// tensor in this repo; primarily a defense against a corrupted length
// field committing us to a multi-gigabyte allocation.
constexpr std::size_t kMaxPayloadBytes = 64u << 20;

enum class MsgType : std::uint8_t {
  kHello = 1,      // worker -> server: id, plan hash, codec id, epoch
  kHelloAck = 2,   // server -> worker: N, total steps, plan hash, epoch
  kPush = 3,       // worker -> server: one tensor's encoded gradient
  kStepStats = 4,  // worker -> server: per-step scalars (training loss)
  kPull = 5,       // server -> worker: one tensor's shared encoded delta
  kBye = 6,        // worker -> server: done (BN buffers attached)
  kByeAck = 7,     // server -> worker: acknowledged, connection closing
  kError = 8,      // either way: fatal error, message string payload
  kRejoin = 9,     // worker -> server: id, plan hash, codec, next step, epoch
  kRejoinAck = 10,  // server -> worker: N, steps, plan hash, collect, epoch
  kEvict = 11,     // server -> workers: a peer left the membership
  kTelemetry = 12,  // worker -> server: per-step telemetry record
  kHeartbeat = 13,  // either way: liveness beacon refreshing the lease
};

bool IsValidMsgType(std::uint8_t raw);
const char* MsgTypeName(MsgType type);

struct FrameHeader {
  MsgType type = MsgType::kError;
  std::uint16_t flags = 0;
  std::uint64_t step = 0;
  std::uint32_t tensor = 0;
  std::uint32_t payload_len = 0;  // filled by EncodeFrame
};

struct Frame {
  FrameHeader header;
  util::ByteBuffer payload;
};

// Append one complete frame (header incl. CRC, then payload) to `out`.
// Sets header.payload_len from `payload`; payload.size() must be at most
// kMaxPayloadBytes.
void EncodeFrame(const FrameHeader& header, util::ByteSpan payload,
                 util::ByteBuffer& out);
// Convenience for the common fields.
void EncodeFrame(MsgType type, std::uint64_t step, std::uint32_t tensor,
                 util::ByteSpan payload, util::ByteBuffer& out);

// Handshake payload codecs (protocol v3). Kept beside the frame format so
// the payload layout is defined — and fuzzable — in one place; the
// runtime's semantic checks (plan hash, epoch ordering) build on these.
//
// HELLO / REJOIN payload. epoch is the server incarnation the worker last
// handshook with; 0 means "never connected" (a fresh HELLO). next_step is
// REJOIN-only (the first step the worker has not applied) and ignored —
// encoded as absent — for HELLO.
struct HandshakePayload {
  std::uint32_t worker_id = 0;
  std::uint64_t plan_hash = 0;
  std::string codec;
  // Second-stage block codec id (blockcodec::k*Id); both sides must agree
  // or the server Fails the handshake. 0 (store) == v4 byte behavior.
  std::uint8_t block_codec = 0;
  std::uint64_t epoch = 0;
  std::uint64_t next_step = 0;  // REJOIN only
};

// HELLO_ACK / REJOIN_ACK payload. epoch is the server's current
// incarnation; collect_step is REJOIN_ACK-only (the step the server is
// collecting, i.e. where the rejoiner must catch up to).
struct HandshakeAckPayload {
  std::uint32_t num_workers = 0;
  std::uint64_t total_steps = 0;
  std::uint64_t plan_hash = 0;
  std::uint8_t block_codec = 0;  // the server's negotiated block codec id
  std::uint64_t epoch = 0;
  std::uint64_t collect_step = 0;  // REJOIN_ACK only
};

// `rejoin` selects whether the REJOIN-only field rides along. Decoders
// throw std::runtime_error (via ByteReader) on truncated or malformed
// bytes and reject trailing garbage.
void EncodeHandshake(const HandshakePayload& payload, bool rejoin,
                     util::ByteBuffer& out);
HandshakePayload DecodeHandshake(util::ByteSpan bytes, bool rejoin);
void EncodeHandshakeAck(const HandshakeAckPayload& payload, bool rejoin,
                        util::ByteBuffer& out);
HandshakeAckPayload DecodeHandshakeAck(util::ByteSpan bytes, bool rejoin);

// TELEMETRY payload (protocol v4). One compact record per completed step,
// sent worker -> server after the step's pulls were applied; the step id
// rides in the frame header. The record is wrapped in a u32 length
// envelope so future versions can append fields without a version bump:
// decoders read the fields they know and skip the rest of the envelope,
// but reject bytes after the envelope (framing bug, not a new field).
struct TelemetryPayload {
  std::uint64_t forward_backward_ns = 0;  // sampler + TrainStep
  std::uint64_t encode_ns = 0;            // EncodePush over all tensors
  std::uint64_t push_ns = 0;              // send + flush of PUSH/STEP_STATS
  std::uint64_t pull_wait_ns = 0;         // blocking wait for all pulls
  std::uint64_t decode_ns = 0;            // ApplyPull over all tensors
  std::uint64_t bytes_out = 0;            // wire push payload bytes
  std::uint64_t bytes_in = 0;             // wire pull payload bytes
  double ea_l2 = 0.0;                     // error-accumulation buffer L2
  std::uint32_t rejoins = 0;              // reconnects so far this process
  // First-stage (pre-block-codec) payload bytes; equal to bytes_out/in
  // when the negotiated block codec is store. Added in protocol v5 so the
  // server can report stage-1 and end-to-end compression separately.
  std::uint64_t stage1_bytes_out = 0;
  std::uint64_t stage1_bytes_in = 0;
};

void EncodeTelemetry(const TelemetryPayload& payload, util::ByteBuffer& out);
TelemetryPayload DecodeTelemetry(util::ByteSpan bytes);

// HEARTBEAT payload (protocol v6). A tiny liveness beacon both roles send
// on an idle-aware cadence; receiving any frame — heartbeat or not —
// refreshes the sender's lease, so a hung-but-connected peer is detected
// by lease expiry instead of the global step timeout. Wrapped in the same
// u32 length envelope as TELEMETRY: decoders read the fields they know
// and skip the rest of the envelope (a newer writer's future fields), but
// reject truncation and bytes after the envelope.
struct HeartbeatPayload {
  std::uint8_t role = 0;       // 0 = worker, 1 = server
  std::uint64_t seq = 0;       // per-sender monotonic heartbeat counter
  std::uint64_t progress = 0;  // sender's step progress (diagnostics only)
};

void EncodeHeartbeat(const HeartbeatPayload& payload, util::ByteBuffer& out);
HeartbeatPayload DecodeHeartbeat(util::ByteSpan bytes);

enum class ParseError : std::uint8_t {
  kNone = 0,
  kBadMagic,
  kBadVersion,
  kBadType,
  kOversized,  // payload_len > kMaxPayloadBytes
  kBadCrc,
};

const char* ParseErrorName(ParseError error);

class FrameParser {
 public:
  // Consume `bytes`, appending every completed frame to `*out`. Returns
  // true while the stream is well-formed (possibly with a partial frame
  // buffered); returns false on the first malformed byte and records
  // error(). A poisoned parser ignores further input.
  bool Feed(util::ByteSpan bytes, std::vector<Frame>* out);

  ParseError error() const { return error_; }
  bool poisoned() const { return error_ != ParseError::kNone; }
  // Bytes held waiting for the rest of a frame.
  std::size_t buffered_bytes() const { return buf_.size() - consumed_; }

 private:
  bool Fail(ParseError error);
  void Compact();

  ParseError error_ = ParseError::kNone;
  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;  // parsed prefix of buf_ awaiting Compact
};

}  // namespace threelc::rpc
