// Wire framing for the real TCP transport (rpc/transport, rpc/runtime).
//
// Every message on the wire is one length-prefixed binary frame:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//        0     4  magic 0x52434C33 ("3LCR" as little-endian bytes)
//        4     1  protocol version (kProtocolVersion)
//        5     1  message type (MsgType)
//        6     2  flags (reserved, must be 0)
//        8     8  step (u64; 0 for non-step messages)
//       16     4  tensor index (u32; 0 when not tensor-addressed)
//       20     4  payload length in bytes (u32, <= kMaxPayloadBytes)
//       24     4  CRC32C over header bytes [0, 24) ++ payload
//       28     n  payload (opaque: codec output, handshake fields, ...)
//
// All integers are little-endian, matching ByteBuffer's scalar writers
// (byte_buffer.cc static_asserts a little-endian host). The CRC field is
// last in the header so the checksum simply covers everything before it —
// no zeroed-field dance — and a flipped bit anywhere in header or payload
// is caught before a frame is surfaced.
//
// FrameParser is incremental: feed it whatever recv(2) returned — half a
// header, three frames and a tail, one byte at a time — and it emits
// complete frames in order. Any malformed input (bad magic/version/type,
// oversized length, CRC mismatch) poisons the parser with a ParseError;
// the connection must then be dropped, since resynchronizing an arbitrary
// byte stream is not attempted.
#pragma once

#include <cstdint>
#include <vector>

#include "util/byte_buffer.h"

namespace threelc::rpc {

constexpr std::uint32_t kFrameMagic = 0x52434C33u;  // "3LCR"
// Version 2 added the fault-tolerance frames (REJOIN, REJOIN_ACK, EVICT)
// and BYE buffers from every worker. Version-1 peers are rejected at the
// parser (kBadVersion) before any payload is interpreted.
constexpr std::uint8_t kProtocolVersion = 2;
constexpr std::size_t kFrameHeaderBytes = 28;
// Largest payload the parser will accept. Generously above any encoded
// tensor in this repo; primarily a defense against a corrupted length
// field committing us to a multi-gigabyte allocation.
constexpr std::size_t kMaxPayloadBytes = 64u << 20;

enum class MsgType : std::uint8_t {
  kHello = 1,      // worker -> server: id, plan hash, codec id
  kHelloAck = 2,   // server -> worker: num workers, total steps, plan hash
  kPush = 3,       // worker -> server: one tensor's encoded gradient
  kStepStats = 4,  // worker -> server: per-step scalars (training loss)
  kPull = 5,       // server -> worker: one tensor's shared encoded delta
  kBye = 6,        // worker -> server: done (BN buffers attached)
  kByeAck = 7,     // server -> worker: acknowledged, connection closing
  kError = 8,      // either way: fatal error, message string payload
  kRejoin = 9,     // worker -> server: id, plan hash, codec, next step
  kRejoinAck = 10,  // server -> worker: N, steps, plan hash, collect step
  kEvict = 11,     // server -> workers: a peer left the membership
};

bool IsValidMsgType(std::uint8_t raw);
const char* MsgTypeName(MsgType type);

struct FrameHeader {
  MsgType type = MsgType::kError;
  std::uint16_t flags = 0;
  std::uint64_t step = 0;
  std::uint32_t tensor = 0;
  std::uint32_t payload_len = 0;  // filled by EncodeFrame
};

struct Frame {
  FrameHeader header;
  util::ByteBuffer payload;
};

// Append one complete frame (header incl. CRC, then payload) to `out`.
// Sets header.payload_len from `payload`; payload.size() must be at most
// kMaxPayloadBytes.
void EncodeFrame(const FrameHeader& header, util::ByteSpan payload,
                 util::ByteBuffer& out);
// Convenience for the common fields.
void EncodeFrame(MsgType type, std::uint64_t step, std::uint32_t tensor,
                 util::ByteSpan payload, util::ByteBuffer& out);

enum class ParseError : std::uint8_t {
  kNone = 0,
  kBadMagic,
  kBadVersion,
  kBadType,
  kOversized,  // payload_len > kMaxPayloadBytes
  kBadCrc,
};

const char* ParseErrorName(ParseError error);

class FrameParser {
 public:
  // Consume `bytes`, appending every completed frame to `*out`. Returns
  // true while the stream is well-formed (possibly with a partial frame
  // buffered); returns false on the first malformed byte and records
  // error(). A poisoned parser ignores further input.
  bool Feed(util::ByteSpan bytes, std::vector<Frame>* out);

  ParseError error() const { return error_; }
  bool poisoned() const { return error_ != ParseError::kNone; }
  // Bytes held waiting for the rest of a frame.
  std::size_t buffered_bytes() const { return buf_.size() - consumed_; }

 private:
  bool Fail(ParseError error);
  void Compact();

  ParseError error_ = ParseError::kNone;
  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;  // parsed prefix of buf_ awaiting Compact
};

}  // namespace threelc::rpc
