// Deterministic fault injection for the TCP runtime's chaos testing.
//
// A FaultInjector sits on a Connection's outbound path and decides, per
// frame, whether to tamper with it: drop it, delay the enqueue, flip a
// payload byte (the receiver's CRC check then kills the connection),
// truncate the frame and close, or close the connection outright. Every
// decision is a pure function of (seed, rule set, frame sequence) — no
// wall clock, no global randomness — so a chaos run is replayable: the
// same seed produces the identical fault schedule, byte for byte, which
// the schedule log (one line per injected fault) makes checkable.
//
// Rules are matched in order; the first rule that matches a frame's
// (type, step) and whose occurrence/probability gate passes fires. Rule
// sets are built programmatically (AddRule) or parsed from a compact spec
// string (one rule per ';'):
//
//   ACTION:TYPE@STEP[#OCCURRENCE]
//
//   ACTION      drop | corrupt | trunc | close | killserver | stall
//               | delay<ms>  (e.g. delay250)
//   TYPE        hello | push | stats | pull | bye | rejoin | heartbeat | any
//   STEP        a step number, or any
//   OCCURRENCE  fire only on the Nth matching frame (0-based, default 0),
//               or * to fire on every match
//
// plus the partition form, whose direction token rides in the TYPE slot
// (a partition severs the whole connection's direction, not one frame
// type):
//
//   partition:rx|tx|both@STEP[#OCCURRENCE]
//
// Examples: "corrupt:push@2" (flip a byte in the first PUSH of step 2),
// "close:pull@5" (kill the connection while fanning out step 5's pulls),
// "delay200:push@any#*" (delay every push by 200 ms),
// "killserver:pull@5" (crash the server mid-fan-out of step 5's pulls),
// "stall:push@3" (freeze the endpoint at step 3's first push: it stops
// reading AND writing without closing, like a SIGSTOP'd process — its
// write queue grows until backpressure), "partition:tx@3" (one-way
// outage: everything this endpoint sends from step 3's first frame on is
// silently lost in the network while it still receives).
//
// One injector instance belongs to one endpoint (one worker process or the
// server); sharing an instance across concurrently-sending endpoints would
// make the occurrence counters race-order dependent and break replay.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rpc/frame.h"
#include "util/rng.h"

namespace threelc::rpc {

enum class FaultAction : std::uint8_t {
  kNone = 0,
  kDrop,      // swallow the frame; the sender believes it was sent
  kDelay,     // sleep delay_ms before queueing (simulates a slow link)
  kCorrupt,   // flip one frame byte; receiver fails CRC and disconnects
  kTruncate,  // send only a frame prefix, then close
  kClose,     // close the connection instead of sending
  // Kill the whole sending endpoint, not just one connection: the frame is
  // not sent, the connection closes, and the injector latches
  // kill_requested() for the endpoint's event loop to act on. On the
  // server this simulates a parameter-server crash at an exact,
  // deterministic point in the fan-out (RpcServer checks the latch and
  // dies abruptly — no ERROR broadcast, sockets dropped mid-step — so
  // recovery is exercised from its checkpoint). Spec token: "killserver".
  kKillServer,
  // Freeze the connection without closing it: from the triggering frame
  // on, the endpoint neither reads nor flushes — the socket stays open,
  // the peer sees silence, and this endpoint's bounded write queue grows
  // until backpressure rejects. Models a SIGSTOP'd/wedged process or a
  // half-open socket. The triggering frame is queued but never flushed.
  kStall,
  // One- or two-way network partition: rx stops delivering inbound bytes
  // to this endpoint, tx silently discards its outbound bytes (the app's
  // sends "succeed" — the packets are lost in the network), both does
  // both. Unlike kStall the tx side keeps draining, so the write queue
  // never backpressures. The triggering frame is lost for tx/both.
  kPartition,
};

// Direction of a kPartition rule (which half of the connection is cut,
// from the injected endpoint's point of view).
enum class PartitionDirection : std::uint8_t { kRx = 0, kTx, kBoth };

const char* FaultActionName(FaultAction action);
const char* PartitionDirectionName(PartitionDirection direction);

struct FaultRule {
  FaultAction action = FaultAction::kNone;
  bool any_type = true;
  MsgType type = MsgType::kError;  // matched when !any_type
  bool any_step = true;
  std::uint64_t step = 0;  // matched when !any_step
  // Fire on the Nth (0-based) matching frame only; every_match fires on
  // all of them (e.g. a persistent delay).
  int occurrence = 0;
  bool every_match = false;
  int delay_ms = 0;  // kDelay only
  PartitionDirection direction = PartitionDirection::kBoth;  // kPartition only
};

// The injector's verdict for one outbound frame.
struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  int delay_ms = 0;
  // For kCorrupt: which byte of the frame to flip (already reduced modulo
  // the frame size). For kTruncate: how many prefix bytes survive.
  std::size_t byte_offset = 0;
  PartitionDirection direction = PartitionDirection::kBoth;  // kPartition
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0);

  void AddRule(const FaultRule& rule);
  std::size_t rule_count() const { return rules_.size(); }

  // Parse a spec string (see file comment) into rules. Returns false with
  // *error set on malformed input; on success appends to *out.
  static bool ParseSpec(const std::string& spec, std::vector<FaultRule>* out,
                        std::string* error);
  // ParseSpec + AddRule for every parsed rule.
  bool AddRulesFromSpec(const std::string& spec, std::string* error);

  // Decide the fate of one outbound frame (frame_bytes = full wire size
  // including header). Deterministic for a fixed (seed, rules, sequence of
  // OnSend calls).
  FaultDecision OnSend(MsgType type, std::uint64_t step,
                       std::size_t frame_bytes);

  // Faults actually injected (decisions other than kNone).
  std::size_t faults_injected() const { return faults_; }

  // Latched by the first kKillServer decision; the owning endpoint's event
  // loop reads it (after any send) to die at the injected point.
  bool kill_requested() const { return kill_requested_; }

  // One line per injected fault: "<action> <TYPE> step=<s> byte=<o>".
  // Two runs with the same seed and traffic produce identical logs — the
  // replayability contract the chaos tests assert.
  const std::vector<std::string>& schedule_log() const { return log_; }

 private:
  struct RuleState {
    FaultRule rule;
    int matches = 0;  // frames that matched (type, step)
    bool fired = false;
  };

  std::vector<RuleState> rules_;
  util::Rng rng_;
  std::vector<std::string> log_;
  std::size_t faults_ = 0;
  bool kill_requested_ = false;
};

}  // namespace threelc::rpc
