// POSIX TCP transport for the distributed runtime — sockets, poll(2), and
// nothing else. No third-party dependencies, mirroring obs/http_server.
//
// Pieces:
//  - ListenOn / ConnectWithRetry: socket setup. Connects retry with
//    exponential backoff (a worker may start before its server binds).
//  - Connection: one non-blocking TCP_NODELAY socket carrying rpc frames.
//    Outgoing frames go through a bounded write queue; incoming bytes go
//    through an incremental FrameParser into an inbox. The same object
//    serves two driving styles: the server's poll loop calls
//    HandleReadable/HandleWritable from TcpServer::Poll, while a worker
//    uses the blocking helpers (FlushOutput with a deadline, WaitFrame).
//  - TcpServer: listener plus N connections multiplexed through one
//    poll(2) call, surfacing accepts/frames/disconnects via callbacks.
//
// Every byte that crosses a socket is counted in TransportMetrics (wired
// into MetricsRegistry as rpc/* counters, visible on /metricsz), which is
// how measured wire traffic is compared against the analytic TrafficMeter
// accounting (tools/plot_results.py wire).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rpc/frame.h"

namespace threelc::obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace threelc::obs

namespace threelc::rpc {

class FaultInjector;

// Nullable counter handles; a default-constructed TransportMetrics makes
// every recording a no-op. RegisterIn binds the rpc/* names whose
// Prometheus forms (rpc_wire_bytes_total, ...) the CI smoke job scrapes.
struct TransportMetrics {
  obs::Counter* wire_bytes = nullptr;     // rpc/wire_bytes (tx + rx)
  obs::Counter* wire_tx_bytes = nullptr;  // rpc/wire_tx_bytes
  obs::Counter* wire_rx_bytes = nullptr;  // rpc/wire_rx_bytes
  obs::Counter* frames_tx = nullptr;      // rpc/frames_tx
  obs::Counter* frames_rx = nullptr;      // rpc/frames_rx
  obs::Counter* frame_errors = nullptr;   // rpc/frame_errors
  obs::Counter* connect_retries = nullptr;  // rpc/connect_retries
  obs::Counter* timeouts = nullptr;         // rpc/timeouts
  obs::Counter* disconnects = nullptr;      // rpc/disconnects
  obs::Counter* faults_injected = nullptr;  // rpc/faults_injected
  // Write-queue depth after the most recent queue/flush on any connection
  // sharing this struct (a backpressure "high-water" signal for /metricsz),
  // plus the count of sends rejected because the queue bound was hit.
  obs::Gauge* write_queue_bytes = nullptr;       // rpc/write_queue_bytes
  obs::Counter* backpressure_rejects = nullptr;  // rpc/backpressure_rejects

  static TransportMetrics RegisterIn(obs::MetricsRegistry& registry);

  void CountTx(std::size_t bytes) const;
  void CountRx(std::size_t bytes) const;
};

// Bind + listen on host:port (port 0 picks an ephemeral port, reported via
// *bound_port). Returns the listening fd, or -1 with *error filled.
int ListenOn(const std::string& host, int port, std::string* error,
             int* bound_port);

struct RetryOptions {
  int max_attempts = 20;
  int initial_backoff_ms = 50;
  int max_backoff_ms = 2000;
  double multiplier = 2.0;
  // Overall wall-clock budget across all attempts (0 = attempts-only).
  // ConnectWithRetry stops — mid-backoff if needed — once the deadline
  // passes, so the initial connect and every mid-run reconnect share one
  // bounded policy: a worker whose server never comes back fails promptly
  // instead of riding out the full exponential schedule.
  int deadline_ms = 0;
  // Deterministic jitter: with a nonzero jitter_seed, each backoff is
  // scaled by a factor in [1 - jitter, 1 + jitter] derived purely from
  // (jitter_seed, attempt index) — no wall clock — so a fleet of workers
  // given distinct seeds desynchronizes after a server blip while each
  // worker's schedule stays reproducible. jitter_seed == 0 keeps the
  // plain exponential schedule.
  double jitter = 0.5;
  std::uint64_t jitter_seed = 0;
};

// The backoff (ms) slept after `attempt` consecutive failures (attempt
// >= 1), exponential in `attempt` with deterministic seeded jitter per
// RetryOptions. Pure function, exposed for unit-testing the schedule.
int BackoffDelayMs(const RetryOptions& retry, int attempt);

// Blocking connect with exponential backoff between attempts. Each retry
// increments metrics->connect_retries. Returns a connected fd, or -1 with
// *error describing the last failure.
int ConnectWithRetry(const std::string& host, int port,
                     const RetryOptions& retry,
                     const TransportMetrics* metrics, std::string* error);

bool SetNonBlocking(int fd);
bool SetNoDelay(int fd);

class Connection {
 public:
  enum class IoResult {
    kOk,      // made progress (possibly none needed)
    kClosed,  // peer closed the connection
    kError,   // socket error, parse error, queue overflow, or timeout
  };

  // 64 MiB of queued-but-unsent frames before SendFrame reports
  // backpressure failure — far above a step's worth of pulls, so hitting
  // it means the peer stopped reading.
  static constexpr std::size_t kDefaultMaxQueuedBytes = 64u << 20;

  // Takes ownership of `fd`; switches it to non-blocking + TCP_NODELAY.
  explicit Connection(int fd, const TransportMetrics* metrics = nullptr,
                      std::size_t max_queued_bytes = kDefaultMaxQueuedBytes);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }
  bool open() const { return fd_ >= 0; }
  void Close();

  // Queue one frame (encoded here) or pre-encoded frame bytes (the shared
  // pull payload is encoded once and fanned out to every worker as the
  // same bytes). Attempts an opportunistic non-blocking flush. Returns
  // false — with last_error() set — when the write queue bound would be
  // exceeded or the connection is closed.
  bool SendFrame(MsgType type, std::uint64_t step, std::uint32_t tensor,
                 util::ByteSpan payload);
  bool SendEncoded(util::ByteSpan frame_bytes, std::size_t frame_count);

  // A stalled connection holds its queue without flushing, so it never
  // "wants" a POLLOUT it would ignore; the queued bytes still count
  // against the backpressure bound.
  bool wants_write() const {
    return !tx_stalled_ && outbuf_.size() > out_head_;
  }
  std::size_t queued_bytes() const { return outbuf_.size() - out_head_; }

  // Injected liveness faults (FaultAction::kStall / kPartition) latch
  // these: rx_blocked stops delivering inbound bytes (poll drivers must
  // skip POLLIN), tx_stalled queues without flushing (a frozen process),
  // tx_dropped discards flushed bytes (a one-way network partition).
  bool rx_blocked() const { return rx_blocked_; }
  bool tx_stalled() const { return tx_stalled_; }
  bool tx_dropped() const { return tx_dropped_; }

  // Non-blocking drains, for poll-loop drivers. HandleReadable consumes
  // everything currently readable into the inbox; HandleWritable flushes
  // as much of the write queue as the socket accepts.
  IoResult HandleReadable();
  IoResult HandleWritable();

  // Oldest fully parsed frame, if any.
  bool PopFrame(Frame* out);
  std::size_t inbox_size() const { return inbox_.size(); }

  // Blocking helpers for the single-connection (worker) side.
  // FlushOutput writes the whole queue; WaitFrame returns the next frame,
  // reading as needed. Both fail (kError, timeouts counter) after
  // `timeout_ms` without completion.
  IoResult FlushOutput(int timeout_ms);
  IoResult WaitFrame(Frame* out, int timeout_ms);

  ParseError parse_error() const { return parser_.error(); }
  const std::string& last_error() const { return last_error_; }

  // Route every outbound frame through `injector` (not owned; may be
  // nullptr to disable). Single-frame sends only — pre-batched multi-frame
  // buffers bypass injection.
  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }

 private:
  IoResult FlushSome();  // one non-blocking write pass
  bool QueueAndFlush(const std::uint8_t* data, std::size_t size,
                     std::size_t frame_count);

  int fd_;
  const TransportMetrics* metrics_;
  std::size_t max_queued_bytes_;
  FaultInjector* fault_ = nullptr;
  FrameParser parser_;
  std::deque<Frame> inbox_;
  std::vector<std::uint8_t> outbuf_;
  std::size_t out_head_ = 0;
  std::string last_error_;
  bool rx_blocked_ = false;
  bool tx_stalled_ = false;
  bool tx_dropped_ = false;
};

// Listener + connections behind one poll(2). Callbacks fire from Poll on
// the calling thread; on_frame may send on the connection or Close() it.
class TcpServer {
 public:
  explicit TcpServer(const TransportMetrics* metrics = nullptr);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  bool Listen(const std::string& host, int port, std::string* error);
  // Use a listener socket created elsewhere (e.g. bound before fork so
  // children know the ephemeral port).
  void AdoptListener(int listen_fd, int port);
  int port() const { return port_; }
  bool listening() const { return listen_fd_ >= 0; }

  std::function<void(Connection&)> on_accept;
  std::function<void(Connection&, Frame&&)> on_frame;
  // Peer-initiated close or I/O / parse error; the connection is removed
  // after the callback returns.
  std::function<void(Connection&, const std::string& reason)> on_disconnect;

  // One multiplexing iteration: wait up to timeout_ms for socket events,
  // then accept / read / write / reap. Returns false when the listener is
  // gone (Close()d or failed).
  bool Poll(int timeout_ms);

  std::size_t connection_count() const { return conns_.size(); }
  // Close the listener and every connection.
  void Close();

 private:
  void Reap();  // drop closed connections

  const TransportMetrics* metrics_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::vector<std::unique_ptr<Connection>> conns_;
};

}  // namespace threelc::rpc
