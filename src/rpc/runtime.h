// Multi-process distributed runtime: the BSP step protocol of the paper's
// parameter-server architecture (Fig. 2) carried over real TCP sockets.
//
// Roles:
//  - RpcServer wraps an untouched ps::ParameterServer. It accepts N
//    workers, validates their handshake (worker id, tensor-plan hash,
//    codec id), then per step: collects every worker's per-tensor PUSH
//    frames, decodes + aggregates them in fixed worker order (bitwise
//    identical to the in-process DistributedTrainer), runs the optimizer,
//    encodes the shared pull deltas once, and fans the same frame bytes
//    out to every worker.
//  - RpcWorker wraps an untouched ps::Worker plus its local model and
//    sampler. Per step: forward/backward on a sampled batch, encode +
//    PUSH each tensor, send a STEP_STATS frame (training loss), then
//    block until the step's PULL frames arrive and apply them.
//
// Message flow (every box is one rpc::Frame):
//
//   worker                          server
//     | -- HELLO {id, plan#, codec} -> |   . handshake: validates plan
//     | <- HELLO_ACK {N, steps, plan#} |   ' hash + codec id, assigns id
//     |                                |
//     | -- PUSH t=0..T-1 {payload} --> |   .
//     | -- STEP_STATS {loss} --------> |   | repeated total_steps
//     |         (barrier: N workers)   |   | times; PULL is the
//     | <- PULL t=0..T-1 {payload} --- |   ' barrier release
//     |                                |
//     | -- BYE {BN buffers if id 0} -> |   . shutdown: worker 0 ships
//     | <- BYE_ACK ------------------- |   ' batch-norm running stats
//
// Lossy-codec state (error-accumulation buffers) lives exactly where it
// does in the simulated path: push contexts inside each worker process's
// ps::Worker, pull contexts inside the server's ps::ParameterServer.
//
// Fault model: any disconnect, malformed frame, protocol violation, or
// deadline miss fails the run *cleanly* — logged, counted in rpc/*
// metrics, reported as a flight-recorder event through Telemetry, ERROR
// frames sent to surviving peers, every socket closed. No hangs: every
// blocking wait carries a timeout.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "ps/plan.h"
#include "ps/server.h"
#include "ps/worker.h"
#include "rpc/transport.h"

namespace threelc::obs {
class Telemetry;
}

namespace threelc::rpc {

// Order-independent hash of the tensor plan + codec identity. Workers and
// server must agree on it before any payload is interpreted, so a worker
// built with a different model or codec fails at handshake, not with a
// garbage decode mid-run. (FNV-1a 64 over codec name and every entry's
// name, shape, and compressed flag.)
std::uint64_t PlanHash(const ps::TensorPlan& plan,
                       const std::string& codec_name);

struct RpcServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; port() reports the bound port
  int num_workers = 1;
  std::int64_t total_steps = 1;
  // Cosine-decay learning rate, matching TrainerConfig.
  float lr_max = 0.1f;
  float lr_min = 0.001f;
  int handshake_timeout_ms = 30000;
  // Max wall time for one step barrier (all pushes of a step).
  int step_timeout_ms = 60000;
  int shutdown_timeout_ms = 30000;
  // Optional; adds rpc metrics, per-step JSONL records, handshake /
  // step-barrier spans (track 0), and flight-recorder error events.
  obs::Telemetry* telemetry = nullptr;
};

class RpcServer {
 public:
  // `ps` must outlive the server. `codec_name` is the handshake codec id
  // (Compressor::name()).
  RpcServer(RpcServerConfig config, ps::ParameterServer& ps,
            std::string codec_name);

  // Bind the configured host:port. Alternatively adopt a listener created
  // before fork (so children learn an ephemeral port from the parent).
  bool Listen(std::string* error);
  void AdoptListener(int listen_fd, int port);
  int port() const { return tcp_.port(); }

  // Handshake + total_steps BSP rounds + shutdown. Returns true on a
  // clean run; false after any fault, with error() describing it.
  bool Run();

  const std::string& error() const { return error_; }
  std::int64_t steps_completed() const { return steps_completed_; }
  const TransportMetrics& metrics() const { return metrics_; }

 private:
  struct Peer {
    int worker_id = -1;  // -1 until HELLO validates
    bool said_bye = false;
  };

  void OnFrame(Connection& conn, Frame&& frame);
  void OnDisconnect(Connection& conn, const std::string& reason);
  void HandleHello(Connection& conn, const Frame& frame);
  // Poll until `done` returns true. False on fault or deadline.
  bool PollUntil(const std::function<bool()>& done, int timeout_ms,
                 const char* phase);
  void Fail(const std::string& message);
  void BroadcastError(const std::string& message);
  // Reset per-step collection state so OnFrame accepts `step`'s pushes
  // (workers may push step s+1 the moment their step-s pulls land, so this
  // runs before the server blocks waiting for them).
  void BeginCollect(std::int64_t step);
  bool RunStep(std::int64_t step, float lr);
  bool ApplyWorkerBuffers();

  RpcServerConfig config_;
  ps::ParameterServer* ps_;
  std::string codec_name_;
  std::uint64_t plan_hash_;
  TransportMetrics metrics_;
  TcpServer tcp_;
  std::map<Connection*, Peer> peers_;
  std::vector<Connection*> worker_conns_;  // by worker id once handshaken

  // Current-step collection state.
  std::int64_t current_step_ = -1;
  std::vector<std::vector<util::ByteBuffer>> push_payloads_;  // [w][t]
  std::vector<std::vector<bool>> push_seen_;                  // [w][t]
  std::vector<double> step_losses_;                           // [w]
  std::vector<bool> stats_seen_;                              // [w]
  std::size_t frames_pending_ = 0;  // barrier countdown

  std::size_t handshakes_ = 0;
  std::size_t byes_ = 0;
  util::ByteBuffer buffer_blob_;  // worker 0's BYE payload (BN buffers)
  bool failed_ = false;
  std::string error_;
  std::int64_t steps_completed_ = 0;
};

struct RpcWorkerConfig {
  std::string host = "127.0.0.1";
  int port = 0;
  int worker_id = 0;
  std::int64_t batch_size = 32;
  RetryOptions retry;
  int handshake_timeout_ms = 30000;
  // Max wall time waiting for one step's pulls (covers the other workers'
  // compute plus the server's aggregate/optimize/encode).
  int pull_timeout_ms = 120000;
  int io_timeout_ms = 30000;
  obs::Telemetry* telemetry = nullptr;  // optional rpc metrics + spans
};

class RpcWorker {
 public:
  // `worker` (and the model it wraps) and `plan` must outlive this.
  // The sampler must be seeded exactly as DistributedTrainer seeds worker
  // `worker_id`'s sampler for bitwise-identical runs.
  RpcWorker(RpcWorkerConfig config, ps::Worker& worker,
            const ps::TensorPlan& plan, std::string codec_name,
            data::Sampler sampler);

  // Connect (with retry/backoff), handshake, run every step, shut down.
  // Returns false on any fault, with error() describing it.
  bool Run();

  const std::string& error() const { return error_; }
  std::int64_t steps_run() const { return steps_run_; }
  // Populated from HELLO_ACK.
  int num_workers() const { return num_workers_; }
  std::int64_t total_steps() const { return total_steps_; }
  const TransportMetrics& metrics() const { return metrics_; }

 private:
  bool Handshake(Connection& conn);
  bool RunStep(Connection& conn, std::int64_t step);
  bool SayBye(Connection& conn);
  bool Fail(const std::string& message);

  RpcWorkerConfig config_;
  ps::Worker* worker_;
  const ps::TensorPlan* plan_;
  std::string codec_name_;
  data::Sampler sampler_;
  TransportMetrics metrics_;
  int num_workers_ = 0;
  std::int64_t total_steps_ = 0;
  std::int64_t steps_run_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace threelc::rpc
