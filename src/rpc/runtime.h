// Multi-process distributed runtime: the BSP step protocol of the paper's
// parameter-server architecture (Fig. 2) carried over real TCP sockets.
//
// Roles:
//  - RpcServer wraps an untouched ps::ParameterServer. It accepts N
//    workers, validates their handshake (worker id, tensor-plan hash,
//    codec id), then per step: collects every worker's per-tensor PUSH
//    frames, decodes + aggregates them in fixed worker order (bitwise
//    identical to the in-process DistributedTrainer), runs the optimizer,
//    encodes the shared pull deltas once, and fans the same frame bytes
//    out to every worker.
//  - RpcWorker wraps an untouched ps::Worker plus its local model and
//    sampler. Per step: forward/backward on a sampled batch, encode +
//    PUSH each tensor, send a STEP_STATS frame (training loss), then
//    block until the step's PULL frames arrive and apply them.
//
// Message flow (every box is one rpc::Frame):
//
//   worker                          server
//     | -- HELLO {id, plan#, codec} -> |   . handshake: validates plan
//     | <- HELLO_ACK {N, steps, plan#} |   ' hash + codec id, assigns id
//     |                                |
//     | -- PUSH t=0..T-1 {payload} --> |   .
//     | -- STEP_STATS {loss} --------> |   | repeated total_steps
//     |         (barrier: N workers)   |   | times; PULL is the
//     | <- PULL t=0..T-1 {payload} --- |   ' barrier release
//     |                                |
//     | -- BYE {BN buffers if id 0} -> |   . shutdown: worker 0 ships
//     | <- BYE_ACK ------------------- |   ' batch-norm running stats
//
// Lossy-codec state (error-accumulation buffers) lives exactly where it
// does in the simulated path: push contexts inside each worker process's
// ps::Worker, pull contexts inside the server's ps::ParameterServer.
//
// Fault model (strict, the default with grace_ms == 0): any disconnect,
// malformed frame, protocol violation, or deadline miss fails the run
// *cleanly* — logged, counted in rpc/* metrics, reported as a
// flight-recorder event through Telemetry, ERROR frames sent to surviving
// peers, every socket closed. No hangs: every blocking wait carries a
// timeout.
//
// Fault tolerance (grace_ms > 0): a worker disconnect no longer fails the
// run. The server discards the dead worker's partial contributions to the
// step being collected, keeps the step barrier open for the grace window,
// and accepts a REJOIN handshake (worker id + plan hash + codec + the
// first step the worker has not completed). Pull fan-out frames for the
// last `replay_steps` steps are retained verbatim, so a rejoiner is
// replayed exactly the shared bytes it missed; because every worker's
// training state is deterministic (checkpoint v3 carries the codec's
// error-accumulation buffers, the sampler cursor, and the step counter),
// the recomputed pushes are bitwise identical to the originals and the
// final model matches a fault-free run bit for bit. If the grace window
// expires the worker is evicted (EVICT broadcast to survivors), the
// aggregation rescales to the surviving worker set, and health flips to
// `degraded`. Every recovery action is counted: rpc/rejoins,
// rpc/evictions, rpc/replayed_frames on the server; rpc/reconnects on the
// worker; rpc/faults_injected wherever a FaultInjector is attached.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "ps/plan.h"
#include "ps/server.h"
#include "ps/worker.h"
#include "rpc/transport.h"
#include "util/fs.h"
#include "util/timer.h"

namespace threelc::obs {
class Telemetry;
}

namespace threelc::nn {
class CheckpointManager;
}

namespace threelc::blockcodec {
class BlockCodec;
}

namespace threelc::rpc {

// Order-independent hash of the tensor plan + codec identity. Workers and
// server must agree on it before any payload is interpreted, so a worker
// built with a different model or codec fails at handshake, not with a
// garbage decode mid-run. (FNV-1a 64 over codec name and every entry's
// name, shape, and compressed flag.)
std::uint64_t PlanHash(const ps::TensorPlan& plan,
                       const std::string& codec_name);

struct RpcServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; port() reports the bound port
  int num_workers = 1;
  std::int64_t total_steps = 1;
  // Cosine-decay learning rate, matching TrainerConfig.
  float lr_max = 0.1f;
  float lr_min = 0.001f;
  int handshake_timeout_ms = 30000;
  // Max wall time for one step barrier (all pushes of a step).
  int step_timeout_ms = 60000;
  int shutdown_timeout_ms = 30000;
  // Fault tolerance. grace_ms > 0: after a worker disconnect, hold its
  // barrier slot open that long for a REJOIN before evicting it; 0 keeps
  // the strict fail-fast model. replay_steps bounds the per-step pull
  // replay buffer a rejoiner can be caught up from.
  int grace_ms = 0;
  int replay_steps = 8;
  // Liveness (protocol v6). lease_ms > 0: any frame from an identified
  // worker refreshes its lease; a worker silent past lease_ms is treated
  // as dead even though its socket is still open — how a SIGSTOP'd,
  // one-way-partitioned, or half-open worker is detected within
  // grace_ms + lease_ms instead of step_timeout_ms. Expiry routes through
  // the grace/evict machinery (grace_ms > 0) or fails the run (strict
  // mode). The server also broadcasts HEARTBEAT beacons every
  // heartbeat_ms (0 derives max(50, lease_ms / 4)) so workers can run
  // their own lease against it. Set lease_ms comfortably above the
  // longest worker compute+encode gap: a worker only beacons while
  // blocked on the server, not mid-compute. lease_ms == 0 disables both.
  int lease_ms = 0;
  int heartbeat_ms = 0;
  // Server crash recovery. A non-empty checkpoint_path enables the
  // write-ahead server checkpoint (nn::SaveServerCheckpoint: model +
  // aggregation/optimizer/EA state + replay ring + membership + epoch),
  // written atomically every checkpoint_every steps — after the step's
  // state is final but BEFORE its pulls are fanned out, so no worker can
  // ever have advanced past what a restarted server restored — plus once
  // at Run() start (persisting the incarnation epoch) and at clean
  // shutdown. With checkpoint_every > 1, a crash between cadence points
  // restores an older step and rejoining workers that got further are
  // rejected (documented clean failure, never silent divergence).
  std::string checkpoint_path;
  int checkpoint_every = 1;
  // Generations of the server checkpoint kept on disk
  // ("<checkpoint_path>.g<N>", see nn/checkpoint_manager.h). 2 gives
  // last-good fallback when the newest generation is torn or corrupt.
  int checkpoint_retain = 2;
  // Storage-fault posture: a failed checkpoint write is retried this many
  // times (after the first attempt) with a linear backoff between tries,
  // then training continues DEGRADED on the last intact generation —
  // /healthz flips to degraded with a "recovery at risk" reason and
  // ckpt/write_failures counts every failed attempt — instead of
  // aborting the run. A later successful write restores healthy.
  int checkpoint_write_retries = 2;
  int checkpoint_retry_backoff_ms = 10;
  // Syscall seam for checkpoint writes (util/fs.h); nullptr = the real
  // filesystem. Chaos drills install a FaultFs here. Not owned.
  util::Fs* fs = nullptr;
  // Chaos testing: after completing this step (its checkpoint already on
  // disk), drop every socket abruptly — no ERROR broadcast, no flush —
  // and return from Run with simulated_exit() true. -1 disables.
  std::int64_t exit_after_step = -1;
  // Chaos testing: crash BETWEEN step K's checkpoint write and its pull
  // fan-out — the exact window where the write-ahead invariant makes a
  // generation fallback bitwise-safe (no worker has seen step K's
  // result). -1 disables. Distinct from exit_after_step, which crashes
  // after the fan-out completed.
  std::int64_t exit_at_checkpoint = -1;
  // Graceful stop (e.g. set by a SIGTERM handler): polled by the event
  // loop; when it flips true the server writes a forced checkpoint,
  // notifies workers, closes cleanly, and returns with interrupted()
  // true. Not owned; may be nullptr.
  const std::atomic<bool>* stop_flag = nullptr;
  // Injected into every accepted connection (chaos testing); not owned.
  FaultInjector* fault = nullptr;
  // Optional; adds rpc metrics, per-step JSONL records, handshake /
  // step-barrier spans (track 0), and flight-recorder error events.
  obs::Telemetry* telemetry = nullptr;
  // Second-stage lossless block codec (blockcodec::KnownNames()) applied
  // to every PUSH/PULL payload after the tensor codec. Both sides must
  // configure the same codec; the negotiated id rides in every handshake
  // (protocol v5) and a mismatch fails the handshake. "store" keeps the
  // payload bytes identical to protocol v4 (no envelope).
  std::string block_codec = "store";
};

class RpcServer {
 public:
  // `ps` must outlive the server. `codec_name` is the handshake codec id
  // (Compressor::name()).
  RpcServer(RpcServerConfig config, ps::ParameterServer& ps,
            std::string codec_name);
  ~RpcServer();  // out of line: ckpt_ is incomplete here

  // Bind the configured host:port. Alternatively adopt a listener created
  // before fork (so children learn an ephemeral port from the parent).
  bool Listen(std::string* error);
  void AdoptListener(int listen_fd, int port);
  int port() const { return tcp_.port(); }

  // Restore a previous incarnation's checkpoint: model tensors, the
  // parameter server's recurrence (optimizer + prev_value + pull EA
  // contexts), the step counter, the membership/greeted tables, and the
  // verbatim pull-replay ring. This incarnation runs as the stored epoch
  // + 1; previously-greeted workers enter the grace window at Run() start
  // and must REJOIN (their stored pushes + the restored ring make the
  // continuation bitwise-identical to a fault-free run). Call before Run,
  // with grace_ms > 0. Returns false with *error on a missing, torn
  // (CRC-failing), or plan-mismatched checkpoint.
  bool ResumeFromCheckpoint(const std::string& path, std::string* error);

  // Handshake + total_steps BSP rounds + shutdown. Returns true on a
  // clean run; false after any fault, with error() describing it.
  bool Run();

  const std::string& error() const { return error_; }
  std::int64_t steps_completed() const { return steps_completed_; }
  const TransportMetrics& metrics() const { return metrics_; }
  std::size_t evictions() const { return evictions_; }
  std::size_t rejoins() const { return rejoins_; }
  std::size_t lease_expiries() const { return lease_expiries_; }
  std::size_t replayed_frames() const { return replayed_frames_; }
  // Server incarnation: 1 for a fresh run, stored epoch + 1 after
  // ResumeFromCheckpoint. Carried in every handshake (protocol v3).
  std::uint64_t epoch() const { return epoch_; }
  bool resumed() const { return resumed_; }
  // Storage health: failed checkpoint write attempts this incarnation,
  // and bad generations skipped by ResumeFromCheckpoint's last-good
  // fallback (0 = the newest generation was usable).
  std::size_t checkpoint_write_failures() const { return ckpt_write_failures_; }
  std::size_t checkpoint_fallbacks() const { return ckpt_fallbacks_; }
  // True when Run returned false because exit_after_step (or an injected
  // killserver fault) fired — an intentional simulated crash, not a fault.
  bool simulated_exit() const { return simulated_exit_; }
  // True when Run returned false because config_.stop_flag flipped — a
  // graceful, checkpointed stop, not a fault.
  bool interrupted() const { return interrupted_; }

  // Thread-safe: ask the (single-threaded) poll loop to fail the run at
  // its next iteration. Used by process supervisors (e.g. the example's
  // child reaper) when an external fault makes completion impossible.
  void RequestStop(const std::string& reason);

 private:
  struct Peer {
    int worker_id = -1;  // -1 until HELLO/REJOIN validates
    bool said_bye = false;
  };

  // Per-worker membership. kWaiting = disconnected, inside the grace
  // window, barrier held open; kEvicted = permanently out, aggregation
  // rescaled to the survivors.
  enum class Member { kActive, kWaiting, kEvicted };

  void OnFrame(Connection& conn, Frame&& frame);
  void OnDisconnect(Connection& conn, const std::string& reason);
  void HandleHello(Connection& conn, const Frame& frame);
  void HandleRejoin(Connection& conn, const Frame& frame);
  // Poll until `done` returns true. False on fault or deadline. Also
  // drives grace-window expiry (evictions) between poll slices.
  bool PollUntil(const std::function<bool()>& done, int timeout_ms,
                 const char* phase);
  void Fail(const std::string& message);
  void BroadcastError(const std::string& message);
  // Reset per-step collection state so OnFrame accepts `step`'s pushes
  // (workers may push step s+1 the moment their step-s pulls land, so this
  // runs before the server blocks waiting for them).
  void BeginCollect(std::int64_t step);
  bool RunStep(std::int64_t step, float lr);
  bool ApplyWorkerBuffers();

  // Liveness plumbing (lease_ms > 0). StampLiveness records a frame —
  // any type — from worker w; CheckLeases sweeps for workers silent past
  // the lease and routes them through MarkWorkerDead (grace mode) or
  // Fail (strict); SendHeartbeats broadcasts the server's beacon on the
  // effective cadence. All driven from PollUntil's slice loop.
  void StampLiveness(std::size_t w);
  void CheckLeases();
  void SendHeartbeats();
  int EffectiveHeartbeatMs() const;

  // Fault-tolerance plumbing.
  void MarkWorkerDead(std::size_t w, const std::string& reason);
  void EvictExpired();               // grace-window sweep
  void Evict(std::size_t w, const std::string& reason);
  void RecomputePending();           // barrier countdown from scratch
  std::size_t ActiveWorkers() const;
  std::size_t WaitingWorkers() const;
  bool BarrierDone() const;
  void RecordMembershipEvent(const std::string& message, bool error);
  // Stamp worker w's barrier arrival (collect-clock ms) once its last
  // frame of the current step landed; feeds straggler attribution.
  void StampBarrierArrival(std::size_t w);

  // Server-recovery plumbing. WriteCheckpoint persists the current state
  // under `next_step` when the cadence (or `force`) says so, writing the
  // next checkpoint generation through the CheckpointManager. An I/O
  // error is retried (checkpoint_write_retries, linear backoff), then
  // training continues DEGRADED on the last intact generation — recovery
  // is at risk but the run is not aborted — so the return value is only
  // false when a crash latch fired, never on write failure.
  // SimulatedCrash drops every socket with no goodbye. GracefulStop is
  // the stop_flag path: forced checkpoint, ERROR notice to workers,
  // interrupted() true.
  bool WriteCheckpoint(std::int64_t next_step, bool force);
  // Lazily build ckpt_ for config_.checkpoint_path (first call scans the
  // checkpoint directory and sweeps dead writers' temp files).
  nn::CheckpointManager& Checkpointer();
  // Degrade/restore the checkpoint-health latch (ckpt_degraded_) and its
  // /healthz + cluster-view reflection.
  void NoteCheckpointFailure(const std::string& why);
  void NoteCheckpointSuccess(double write_ms);
  // Refresh the ckpt/generations gauge and the /clusterz storage section.
  void PublishStorageHealth();
  void SimulatedCrash(const std::string& why);
  void GracefulStop(const std::string& reason);
  // After a successful rejoin: clear the degraded re-assembly state once
  // every surviving worker is back.
  void MaybeReassembled();

  RpcServerConfig config_;
  ps::ParameterServer* ps_;
  std::string codec_name_;
  std::uint64_t plan_hash_;
  // Resolved from config_.block_codec at construction; never null.
  const blockcodec::BlockCodec* block_codec_;
  TransportMetrics metrics_;
  TcpServer tcp_;
  std::map<Connection*, Peer> peers_;
  std::vector<Connection*> worker_conns_;  // by worker id once handshaken

  // Current-step collection state. push_payloads_ holds first-stage
  // (block-envelope-decoded) bytes; push_wire_bytes_ the as-received wire
  // sizes, so RunStep can report stage-1 and end-to-end traffic apart.
  std::int64_t current_step_ = -1;
  std::vector<std::vector<util::ByteBuffer>> push_payloads_;  // [w][t]
  std::vector<std::uint64_t> push_wire_bytes_;                // [w]
  std::vector<std::vector<bool>> push_seen_;                  // [w][t]
  std::vector<double> step_losses_;                           // [w]
  std::vector<bool> stats_seen_;                              // [w]
  std::size_t frames_pending_ = 0;  // barrier countdown
  // Straggler attribution: per-worker arrival instant (ms on the
  // collect clock, -1 = not yet complete) of the current step's last
  // contribution frame. Reset by BeginCollect.
  std::vector<double> barrier_arrival_ms_;
  util::WallTimer collect_timer_;

  // Membership + rejoin state.
  std::vector<Member> member_state_;
  // Disconnect instants, meaningful only while kWaiting.
  std::vector<std::chrono::steady_clock::time_point> dead_since_;
  std::vector<bool> greeted_;  // ever completed HELLO or REJOIN
  // Retained pull fan-out frames: replay_[i] holds the per-tensor encoded
  // frame bytes of a completed step, bounded to config_.replay_steps.
  std::deque<std::pair<std::int64_t, std::vector<util::ByteBuffer>>> replay_;
  std::size_t rejoins_ = 0;
  std::size_t evictions_ = 0;
  std::size_t replayed_frames_ = 0;

  // Liveness state (lease_ms > 0): the last-frame instant per worker
  // (meaningful while kActive) and the server's own beacon clock.
  std::vector<std::chrono::steady_clock::time_point> last_rx_;
  std::chrono::steady_clock::time_point last_heartbeat_tx_;
  std::uint64_t heartbeat_seq_ = 0;
  std::size_t lease_expiries_ = 0;

  std::size_t handshakes_ = 0;
  std::size_t byes_ = 0;
  std::vector<util::ByteBuffer> bye_blobs_;  // per-worker BYE payloads
  bool failed_ = false;
  std::string error_;
  std::int64_t steps_completed_ = 0;

  // Server-recovery state.
  std::uint64_t epoch_ = 1;
  bool resumed_ = false;
  std::int64_t resume_step_ = 0;  // first step this incarnation collects
  bool simulated_exit_ = false;
  bool interrupted_ = false;

  // Storage-health state. ckpt_ owns the generation files under
  // config_.checkpoint_path; ckpt_degraded_ latches "writes are failing,
  // recovery at risk" so /healthz degradation from storage is not
  // cleared by unrelated recoveries (e.g. a rejoin completing).
  std::unique_ptr<nn::CheckpointManager> ckpt_;
  bool ckpt_degraded_ = false;
  std::size_t ckpt_writes_ = 0;
  std::size_t ckpt_write_failures_ = 0;
  std::size_t ckpt_fallbacks_ = 0;
  double last_ckpt_write_ms_ = 0.0;

  std::atomic<bool> stop_requested_{false};
  std::mutex stop_mutex_;
  std::string stop_reason_;
};

struct RpcWorkerConfig {
  std::string host = "127.0.0.1";
  int port = 0;
  int worker_id = 0;
  std::int64_t batch_size = 32;
  RetryOptions retry;
  int handshake_timeout_ms = 30000;
  // Max wall time waiting for one step's pulls (covers the other workers'
  // compute plus the server's aggregate/optimize/encode).
  int pull_timeout_ms = 120000;
  int io_timeout_ms = 30000;
  // Fault tolerance / recovery.
  //
  // start_step is the first step this worker has NOT yet applied; with
  // rejoin=true the initial handshake is REJOIN instead of HELLO, which is
  // how a process restarted from a checkpoint v3 (model + EA buffers +
  // sampler cursor + step counter) re-enters a live run.
  std::int64_t start_step = 0;
  bool rejoin = false;
  // How many times a lost connection may be re-established mid-run before
  // the worker gives up (0 keeps the strict fail-fast model).
  int max_reconnects = 0;
  // Liveness (protocol v6). lease_ms > 0: while blocked on the server
  // (pull wait, handshake, replay) the worker sends HEARTBEAT beacons
  // every heartbeat_ms (0 derives max(50, lease_ms / 4)) and requires
  // some frame — heartbeat or data — from the server within lease_ms.
  // Expiry closes the connection and surfaces as a soft failure feeding
  // the max_reconnects budget, so a hung or rx-partitioned server costs
  // lease_ms + backoff instead of the full pull_timeout_ms. 0 disables.
  int lease_ms = 0;
  int heartbeat_ms = 0;
  // Chaos testing: after completing this step, write a checkpoint v3 to
  // exit_checkpoint_path (if set), close the socket abruptly (no BYE), and
  // return from Run with simulated_exit() true. -1 disables.
  std::int64_t exit_after_step = -1;
  std::string exit_checkpoint_path;
  // Graceful stop (e.g. set by a SIGTERM handler): polled between steps;
  // when it flips true the worker writes a checkpoint v3 to
  // stop_checkpoint_path (if set), closes, and returns from Run with
  // interrupted() true — restartable exactly where it left off. Not
  // owned; may be nullptr.
  const std::atomic<bool>* stop_flag = nullptr;
  std::string stop_checkpoint_path;
  // Injected into every connection this worker makes; not owned.
  FaultInjector* fault = nullptr;
  obs::Telemetry* telemetry = nullptr;  // optional rpc metrics + spans
  // Second-stage block codec; must match the server's (see
  // RpcServerConfig::block_codec).
  std::string block_codec = "store";
};

class RpcWorker {
 public:
  // `worker` (and the model it wraps) and `plan` must outlive this.
  // The sampler must be seeded exactly as DistributedTrainer seeds worker
  // `worker_id`'s sampler for bitwise-identical runs.
  RpcWorker(RpcWorkerConfig config, ps::Worker& worker,
            const ps::TensorPlan& plan, std::string codec_name,
            data::Sampler sampler);

  // Connect (with retry/backoff), handshake, run every step, shut down.
  // Returns false on any fault, with error() describing it.
  bool Run();

  const std::string& error() const { return error_; }
  std::int64_t steps_run() const { return steps_run_; }
  // Populated from HELLO_ACK / REJOIN_ACK.
  int num_workers() const { return num_workers_; }
  std::int64_t total_steps() const { return total_steps_; }
  const TransportMetrics& metrics() const { return metrics_; }
  std::size_t reconnects() const { return reconnects_; }
  // True when Run returned false because exit_after_step fired — an
  // intentional simulated crash, not a fault.
  bool simulated_exit() const { return simulated_exit_; }
  // True when Run returned false because config_.stop_flag flipped — a
  // graceful, checkpointed stop, not a fault.
  bool interrupted() const { return interrupted_; }
  // The server incarnation from the last HELLO_ACK / REJOIN_ACK (0 before
  // any handshake). An epoch bump mid-run means the server restarted from
  // its checkpoint and this worker re-handshook against it.
  std::uint64_t server_epoch() const { return server_epoch_; }

 private:
  // kRetry = the connection died without a protocol violation; the step can
  // be resumed on a fresh connection via REJOIN.
  enum class StepStatus { kOk, kRetry, kFailed };

  // Establish (or re-establish) conn_ and handshake. rejoin_mode sends
  // REJOIN + replays missed pulls instead of HELLO. Returns false with
  // failed_ unset on a soft failure (connection died again mid-replay).
  bool Connect(bool rejoin_mode);
  bool Reconnect();
  bool Handshake(Connection& conn);
  bool RejoinHandshake(Connection& conn, std::int64_t* collect_step);
  // Catch up to the server's collect step by recomputing each missed step
  // locally and applying the replayed pull bytes.
  StepStatus ReplayTo(std::int64_t collect_step);
  // Forward/backward + encode every push into pending_push_, advancing the
  // codec's EA buffers and the sampler exactly once per step.
  void ComputeStep(std::int64_t step);
  // WaitFrame that skips EVICT broadcasts (membership news about other
  // workers) and HEARTBEAT beacons (they refresh the lease and are
  // dropped). With config_.lease_ms > 0 the wait is sliced: beacons go
  // out on the cadence and lease_ms of total server silence ends the
  // wait early (connection closed, kClosed returned).
  Connection::IoResult WaitDataFrame(Connection& conn, Frame* frame,
                                     int timeout_ms);
  // Unwrap the negotiated block envelope in place (no-op for store).
  // Returns false after Fail() on a malformed envelope.
  bool UnwrapPull(std::size_t t, util::ByteBuffer& payload);
  StepStatus RunStep(std::int64_t step);
  void SimulateCrash(std::int64_t step);
  // Write a checkpoint v3 (model + EA buffers + sampler cursor +
  // next_apply_) to `path` — the shared tail of SimulateCrash and the
  // graceful stop_flag exit.
  void WriteResumeCheckpoint(const std::string& path);
  void GracefulStop();
  bool SayBye(Connection& conn);
  bool Fail(const std::string& message);

  RpcWorkerConfig config_;
  ps::Worker* worker_;
  const ps::TensorPlan* plan_;
  std::string codec_name_;
  // Resolved from config_.block_codec at construction; never null.
  const blockcodec::BlockCodec* block_codec_;
  data::Sampler sampler_;
  TransportMetrics metrics_;
  std::unique_ptr<Connection> conn_;
  int num_workers_ = 0;
  std::int64_t total_steps_ = 0;
  std::int64_t steps_run_ = 0;

  // Step state machine. next_apply_ = first step whose pulls have not been
  // applied; computed_through_ = last step forward/backward + encode ran.
  // pending_push_ holds computed_through_'s encoded push payloads so a
  // resend after reconnect ships bitwise-identical bytes (re-encoding
  // would advance the EA buffers twice).
  std::int64_t next_apply_ = 0;
  std::int64_t computed_through_ = -1;
  std::vector<util::ByteBuffer> pending_push_;
  float pending_loss_ = 0.0f;
  // Per-step telemetry record under assembly: ComputeStep fills the
  // compute/encode half, RunStep the transport half, then ships it as one
  // best-effort TELEMETRY frame after the step's pulls are applied.
  TelemetryPayload pending_telemetry_;

  std::size_t reconnects_ = 0;
  std::uint64_t heartbeat_seq_ = 0;
  bool simulated_exit_ = false;
  bool interrupted_ = false;
  std::uint64_t server_epoch_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace threelc::rpc
