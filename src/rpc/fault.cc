#include "rpc/fault.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace threelc::rpc {

namespace {

bool ParseTypeToken(const std::string& token, FaultRule* rule) {
  if (token == "any") {
    rule->any_type = true;
    return true;
  }
  rule->any_type = false;
  if (token == "hello") rule->type = MsgType::kHello;
  else if (token == "hello_ack") rule->type = MsgType::kHelloAck;
  else if (token == "push") rule->type = MsgType::kPush;
  else if (token == "stats") rule->type = MsgType::kStepStats;
  else if (token == "pull") rule->type = MsgType::kPull;
  else if (token == "bye") rule->type = MsgType::kBye;
  else if (token == "rejoin") rule->type = MsgType::kRejoin;
  else if (token == "evict") rule->type = MsgType::kEvict;
  else if (token == "heartbeat") rule->type = MsgType::kHeartbeat;
  else return false;
  return true;
}

// kPartition rules carry a direction where other rules carry a frame
// type: a partition cuts the connection's whole direction, so the rule
// matches any frame and the TYPE slot is reused for rx|tx|both.
bool ParseDirectionToken(const std::string& token, FaultRule* rule) {
  rule->any_type = true;
  if (token == "rx") rule->direction = PartitionDirection::kRx;
  else if (token == "tx") rule->direction = PartitionDirection::kTx;
  else if (token == "both") rule->direction = PartitionDirection::kBoth;
  else return false;
  return true;
}

bool ParseActionToken(const std::string& token, FaultRule* rule) {
  if (token == "drop") {
    rule->action = FaultAction::kDrop;
  } else if (token == "corrupt") {
    rule->action = FaultAction::kCorrupt;
  } else if (token == "trunc") {
    rule->action = FaultAction::kTruncate;
  } else if (token == "close") {
    rule->action = FaultAction::kClose;
  } else if (token == "killserver") {
    rule->action = FaultAction::kKillServer;
  } else if (token == "stall") {
    rule->action = FaultAction::kStall;
  } else if (token == "partition") {
    rule->action = FaultAction::kPartition;
  } else if (token.rfind("delay", 0) == 0 && token.size() > 5) {
    const std::string digits = token.substr(5);
    for (char c : digits) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    }
    rule->action = FaultAction::kDelay;
    rule->delay_ms = std::atoi(digits.c_str());
  } else {
    return false;
  }
  return true;
}

bool AllDigits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

const char* FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kNone: return "none";
    case FaultAction::kDrop: return "drop";
    case FaultAction::kDelay: return "delay";
    case FaultAction::kCorrupt: return "corrupt";
    case FaultAction::kTruncate: return "trunc";
    case FaultAction::kClose: return "close";
    case FaultAction::kKillServer: return "killserver";
    case FaultAction::kStall: return "stall";
    case FaultAction::kPartition: return "partition";
  }
  return "unknown";
}

const char* PartitionDirectionName(PartitionDirection direction) {
  switch (direction) {
    case PartitionDirection::kRx: return "rx";
    case PartitionDirection::kTx: return "tx";
    case PartitionDirection::kBoth: return "both";
  }
  return "unknown";
}

FaultInjector::FaultInjector(std::uint64_t seed) : rng_(seed) {}

void FaultInjector::AddRule(const FaultRule& rule) {
  RuleState state;
  state.rule = rule;
  rules_.push_back(state);
}

bool FaultInjector::ParseSpec(const std::string& spec,
                              std::vector<FaultRule>* out, std::string* error) {
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ';')) {
    if (item.empty()) continue;
    FaultRule rule;

    const std::size_t colon = item.find(':');
    const std::size_t at = item.find('@');
    if (colon == std::string::npos || at == std::string::npos || at < colon) {
      if (error != nullptr) *error = "expected ACTION:TYPE@STEP in '" + item + "'";
      return false;
    }
    if (!ParseActionToken(item.substr(0, colon), &rule)) {
      if (error != nullptr) *error = "bad action in '" + item + "'";
      return false;
    }
    const std::string type_token = item.substr(colon + 1, at - colon - 1);
    if (rule.action == FaultAction::kPartition) {
      if (!ParseDirectionToken(type_token, &rule)) {
        if (error != nullptr) {
          *error = "bad partition direction (want rx|tx|both) in '" + item +
                   "'";
        }
        return false;
      }
    } else if (!ParseTypeToken(type_token, &rule)) {
      if (error != nullptr) *error = "bad frame type in '" + item + "'";
      return false;
    }

    std::string step_token = item.substr(at + 1);
    const std::size_t hash = step_token.find('#');
    if (hash != std::string::npos) {
      const std::string occ = step_token.substr(hash + 1);
      step_token = step_token.substr(0, hash);
      if (occ == "*") {
        rule.every_match = true;
      } else if (AllDigits(occ)) {
        rule.occurrence = std::atoi(occ.c_str());
      } else {
        if (error != nullptr) *error = "bad occurrence in '" + item + "'";
        return false;
      }
    }
    if (step_token == "any") {
      rule.any_step = true;
    } else if (AllDigits(step_token)) {
      rule.any_step = false;
      rule.step = static_cast<std::uint64_t>(std::atoll(step_token.c_str()));
    } else {
      if (error != nullptr) *error = "bad step in '" + item + "'";
      return false;
    }
    out->push_back(rule);
  }
  return true;
}

bool FaultInjector::AddRulesFromSpec(const std::string& spec,
                                     std::string* error) {
  std::vector<FaultRule> rules;
  if (!ParseSpec(spec, &rules, error)) return false;
  for (const FaultRule& rule : rules) AddRule(rule);
  return true;
}

FaultDecision FaultInjector::OnSend(MsgType type, std::uint64_t step,
                                    std::size_t frame_bytes) {
  FaultDecision decision;
  for (RuleState& state : rules_) {
    const FaultRule& rule = state.rule;
    if (!rule.any_type && rule.type != type) continue;
    if (!rule.any_step && rule.step != step) continue;
    const int match_index = state.matches++;
    if (!rule.every_match && (state.fired || match_index != rule.occurrence)) {
      continue;
    }
    state.fired = true;

    decision.action = rule.action;
    decision.delay_ms = rule.delay_ms;
    decision.direction = rule.direction;
    if (rule.action == FaultAction::kKillServer) kill_requested_ = true;
    if (rule.action == FaultAction::kCorrupt && frame_bytes > 0) {
      decision.byte_offset =
          static_cast<std::size_t>(rng_.Below(frame_bytes));
    } else if (rule.action == FaultAction::kTruncate && frame_bytes > 1) {
      // Keep at least one byte and never the whole frame.
      decision.byte_offset =
          1 + static_cast<std::size_t>(rng_.Below(frame_bytes - 1));
    }

    std::ostringstream line;
    line << FaultActionName(rule.action) << ' ' << MsgTypeName(type)
         << " step=" << step << " byte=" << decision.byte_offset;
    if (rule.action == FaultAction::kDelay) {
      line << " ms=" << decision.delay_ms;
    }
    if (rule.action == FaultAction::kPartition) {
      line << " dir=" << PartitionDirectionName(rule.direction);
    }
    log_.push_back(line.str());
    ++faults_;
    break;
  }
  return decision;
}

}  // namespace threelc::rpc
