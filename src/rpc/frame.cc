#include "rpc/frame.h"

#include <cstring>

#include "util/crc32.h"
#include "util/logging.h"

namespace threelc::rpc {

bool IsValidMsgType(std::uint8_t raw) {
  // Exhaustive over MsgType so a new frame type cannot be forgotten here:
  // the switch stops compiling (-Wswitch) until the new enumerator is
  // listed, unlike the old range check which silently admitted gaps.
  switch (static_cast<MsgType>(raw)) {
    case MsgType::kHello:
    case MsgType::kHelloAck:
    case MsgType::kPush:
    case MsgType::kStepStats:
    case MsgType::kPull:
    case MsgType::kBye:
    case MsgType::kByeAck:
    case MsgType::kError:
    case MsgType::kRejoin:
    case MsgType::kRejoinAck:
    case MsgType::kEvict:
    case MsgType::kTelemetry:
    case MsgType::kHeartbeat:
      return true;
  }
  return false;
}

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "HELLO";
    case MsgType::kHelloAck: return "HELLO_ACK";
    case MsgType::kPush: return "PUSH";
    case MsgType::kStepStats: return "STEP_STATS";
    case MsgType::kPull: return "PULL";
    case MsgType::kBye: return "BYE";
    case MsgType::kByeAck: return "BYE_ACK";
    case MsgType::kError: return "ERROR";
    case MsgType::kRejoin: return "REJOIN";
    case MsgType::kRejoinAck: return "REJOIN_ACK";
    case MsgType::kEvict: return "EVICT";
    case MsgType::kTelemetry: return "TELEMETRY";
    case MsgType::kHeartbeat: return "HEARTBEAT";
  }
  return "UNKNOWN";
}

const char* ParseErrorName(ParseError error) {
  switch (error) {
    case ParseError::kNone: return "none";
    case ParseError::kBadMagic: return "bad_magic";
    case ParseError::kBadVersion: return "bad_version";
    case ParseError::kBadType: return "bad_type";
    case ParseError::kOversized: return "oversized";
    case ParseError::kBadCrc: return "bad_crc";
  }
  return "unknown";
}

void EncodeHandshake(const HandshakePayload& payload, bool rejoin,
                     util::ByteBuffer& out) {
  out.AppendU32(payload.worker_id);
  out.AppendU64(payload.plan_hash);
  out.AppendU32(static_cast<std::uint32_t>(payload.codec.size()));
  out.Append(payload.codec.data(), payload.codec.size());
  out.AppendU8(payload.block_codec);
  if (rejoin) out.AppendU64(payload.next_step);
  out.AppendU64(payload.epoch);
}

HandshakePayload DecodeHandshake(util::ByteSpan bytes, bool rejoin) {
  util::ByteReader in(bytes);
  HandshakePayload payload;
  payload.worker_id = in.ReadU32();
  payload.plan_hash = in.ReadU64();
  const std::uint32_t codec_len = in.ReadU32();
  util::ByteSpan codec = in.ReadSpan(codec_len);
  payload.codec.assign(reinterpret_cast<const char*>(codec.data()),
                       codec.size());
  payload.block_codec = in.ReadU8();
  if (rejoin) payload.next_step = in.ReadU64();
  payload.epoch = in.ReadU64();
  if (!in.AtEnd()) {
    throw std::runtime_error("trailing bytes in handshake payload");
  }
  return payload;
}

void EncodeHandshakeAck(const HandshakeAckPayload& payload, bool rejoin,
                        util::ByteBuffer& out) {
  out.AppendU32(payload.num_workers);
  out.AppendU64(payload.total_steps);
  out.AppendU64(payload.plan_hash);
  out.AppendU8(payload.block_codec);
  if (rejoin) out.AppendU64(payload.collect_step);
  out.AppendU64(payload.epoch);
}

HandshakeAckPayload DecodeHandshakeAck(util::ByteSpan bytes, bool rejoin) {
  util::ByteReader in(bytes);
  HandshakeAckPayload payload;
  payload.num_workers = in.ReadU32();
  payload.total_steps = in.ReadU64();
  payload.plan_hash = in.ReadU64();
  payload.block_codec = in.ReadU8();
  if (rejoin) payload.collect_step = in.ReadU64();
  payload.epoch = in.ReadU64();
  if (!in.AtEnd()) {
    throw std::runtime_error("trailing bytes in handshake ack payload");
  }
  return payload;
}

void EncodeTelemetry(const TelemetryPayload& payload, util::ByteBuffer& out) {
  // u32 envelope length, then the known fields. 7 u64 + 1 f64 + 1 u32,
  // plus the 2 u64 stage-1 byte counters appended in protocol v5.
  constexpr std::uint32_t kRecordBytes = 7 * 8 + 8 + 4 + 2 * 8;
  out.AppendU32(kRecordBytes);
  out.AppendU64(payload.forward_backward_ns);
  out.AppendU64(payload.encode_ns);
  out.AppendU64(payload.push_ns);
  out.AppendU64(payload.pull_wait_ns);
  out.AppendU64(payload.decode_ns);
  out.AppendU64(payload.bytes_out);
  out.AppendU64(payload.bytes_in);
  out.AppendF64(payload.ea_l2);
  out.AppendU32(payload.rejoins);
  out.AppendU64(payload.stage1_bytes_out);
  out.AppendU64(payload.stage1_bytes_in);
}

TelemetryPayload DecodeTelemetry(util::ByteSpan bytes) {
  util::ByteReader outer(bytes);
  const std::uint32_t record_len = outer.ReadU32();
  util::ByteSpan record = outer.ReadSpan(record_len);
  if (!outer.AtEnd()) {
    throw std::runtime_error("trailing bytes after telemetry envelope");
  }
  util::ByteReader in(record);
  TelemetryPayload payload;
  payload.forward_backward_ns = in.ReadU64();
  payload.encode_ns = in.ReadU64();
  payload.push_ns = in.ReadU64();
  payload.pull_wait_ns = in.ReadU64();
  payload.decode_ns = in.ReadU64();
  payload.bytes_out = in.ReadU64();
  payload.bytes_in = in.ReadU64();
  payload.ea_l2 = in.ReadF64();
  payload.rejoins = in.ReadU32();
  payload.stage1_bytes_out = in.ReadU64();
  payload.stage1_bytes_in = in.ReadU64();
  // Bytes left inside the envelope are fields from a newer writer: skip.
  return payload;
}

void EncodeHeartbeat(const HeartbeatPayload& payload, util::ByteBuffer& out) {
  // u32 envelope length, then the known fields: u8 role + 2 u64.
  constexpr std::uint32_t kRecordBytes = 1 + 2 * 8;
  out.AppendU32(kRecordBytes);
  out.AppendU8(payload.role);
  out.AppendU64(payload.seq);
  out.AppendU64(payload.progress);
}

HeartbeatPayload DecodeHeartbeat(util::ByteSpan bytes) {
  util::ByteReader outer(bytes);
  const std::uint32_t record_len = outer.ReadU32();
  util::ByteSpan record = outer.ReadSpan(record_len);
  if (!outer.AtEnd()) {
    throw std::runtime_error("trailing bytes after heartbeat envelope");
  }
  util::ByteReader in(record);
  HeartbeatPayload payload;
  payload.role = in.ReadU8();
  payload.seq = in.ReadU64();
  payload.progress = in.ReadU64();
  // Bytes left inside the envelope are fields from a newer writer: skip.
  return payload;
}

void EncodeFrame(const FrameHeader& header, util::ByteSpan payload,
                 util::ByteBuffer& out) {
  THREELC_CHECK_MSG(payload.size() <= kMaxPayloadBytes,
                    "frame payload too large: " << payload.size());
  const std::size_t start = out.size();
  out.AppendU32(kFrameMagic);
  out.AppendU8(kProtocolVersion);
  out.AppendU8(static_cast<std::uint8_t>(header.type));
  out.AppendU16(header.flags);
  out.AppendU64(header.step);
  out.AppendU32(header.tensor);
  out.AppendU32(static_cast<std::uint32_t>(payload.size()));
  // CRC covers the 24 header bytes just written plus the payload.
  std::uint32_t crc = util::Crc32c(out.data() + start, kFrameHeaderBytes - 4);
  crc = util::Crc32cExtend(crc, payload.data(), payload.size());
  out.AppendU32(crc);
  out.Append(payload);
}

void EncodeFrame(MsgType type, std::uint64_t step, std::uint32_t tensor,
                 util::ByteSpan payload, util::ByteBuffer& out) {
  FrameHeader header;
  header.type = type;
  header.step = step;
  header.tensor = tensor;
  EncodeFrame(header, payload, out);
}

bool FrameParser::Fail(ParseError error) {
  error_ = error;
  buf_.clear();
  consumed_ = 0;
  return false;
}

void FrameParser::Compact() {
  if (consumed_ == 0) return;
  buf_.erase(buf_.begin(),
             buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
  consumed_ = 0;
}

bool FrameParser::Feed(util::ByteSpan bytes, std::vector<Frame>* out) {
  if (poisoned()) return false;
  buf_.insert(buf_.end(), bytes.data(), bytes.data() + bytes.size());

  while (buf_.size() - consumed_ >= kFrameHeaderBytes) {
    const std::uint8_t* head = buf_.data() + consumed_;
    auto read_u32 = [&](std::size_t off) {
      std::uint32_t v;
      std::memcpy(&v, head + off, sizeof(v));
      return v;
    };
    if (read_u32(0) != kFrameMagic) return Fail(ParseError::kBadMagic);
    if (head[4] != kProtocolVersion) return Fail(ParseError::kBadVersion);
    if (!IsValidMsgType(head[5])) return Fail(ParseError::kBadType);
    const std::uint32_t payload_len = read_u32(20);
    if (payload_len > kMaxPayloadBytes) return Fail(ParseError::kOversized);
    if (buf_.size() - consumed_ < kFrameHeaderBytes + payload_len) {
      break;  // wait for the rest of the payload
    }
    const std::uint8_t* payload = head + kFrameHeaderBytes;
    std::uint32_t crc = util::Crc32c(head, kFrameHeaderBytes - 4);
    crc = util::Crc32cExtend(crc, payload, payload_len);
    if (crc != read_u32(kFrameHeaderBytes - 4)) {
      return Fail(ParseError::kBadCrc);
    }

    Frame frame;
    std::memcpy(&frame.header.flags, head + 6, sizeof(std::uint16_t));
    std::memcpy(&frame.header.step, head + 8, sizeof(std::uint64_t));
    frame.header.type = static_cast<MsgType>(head[5]);
    frame.header.tensor = read_u32(16);
    frame.header.payload_len = payload_len;
    frame.payload.Append(payload, payload_len);
    out->push_back(std::move(frame));
    consumed_ += kFrameHeaderBytes + payload_len;
  }
  Compact();
  return true;
}

}  // namespace threelc::rpc
