#include "rpc/transport.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "obs/metrics.h"
#include "obs/stage_profiler.h"
#include "rpc/fault.h"
#include "util/logging.h"
#include "util/rng.h"

namespace threelc::rpc {

namespace {

std::string ErrnoString(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool FillAddr(const std::string& host, int port, sockaddr_in* addr,
              std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<std::uint16_t>(port));
  const char* name = host.empty() ? "0.0.0.0" : host.c_str();
  if (inet_pton(AF_INET, name, &addr->sin_addr) != 1) {
    if (error != nullptr) *error = "bad IPv4 address: " + host;
    return false;
  }
  return true;
}

class Deadline {
 public:
  explicit Deadline(int timeout_ms)
      : end_(std::chrono::steady_clock::now() +
             std::chrono::milliseconds(timeout_ms)) {}

  // Remaining milliseconds, clamped to [0, ...]; 0 means expired.
  int RemainingMs() const {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        end_ - std::chrono::steady_clock::now());
    return left.count() > 0 ? static_cast<int>(left.count()) : 0;
  }

 private:
  std::chrono::steady_clock::time_point end_;
};

}  // namespace

TransportMetrics TransportMetrics::RegisterIn(obs::MetricsRegistry& registry) {
  TransportMetrics m;
  m.wire_bytes = registry.counter("rpc/wire_bytes");
  m.wire_tx_bytes = registry.counter("rpc/wire_tx_bytes");
  m.wire_rx_bytes = registry.counter("rpc/wire_rx_bytes");
  m.frames_tx = registry.counter("rpc/frames_tx");
  m.frames_rx = registry.counter("rpc/frames_rx");
  m.frame_errors = registry.counter("rpc/frame_errors");
  m.connect_retries = registry.counter("rpc/connect_retries");
  m.timeouts = registry.counter("rpc/timeouts");
  m.disconnects = registry.counter("rpc/disconnects");
  m.faults_injected = registry.counter("rpc/faults_injected");
  m.write_queue_bytes = registry.gauge("rpc/write_queue_bytes");
  m.backpressure_rejects = registry.counter("rpc/backpressure_rejects");
  return m;
}

void TransportMetrics::CountTx(std::size_t bytes) const {
  if (wire_tx_bytes != nullptr) {
    wire_tx_bytes->Add(static_cast<double>(bytes));
  }
  if (wire_bytes != nullptr) wire_bytes->Add(static_cast<double>(bytes));
}

void TransportMetrics::CountRx(std::size_t bytes) const {
  if (wire_rx_bytes != nullptr) {
    wire_rx_bytes->Add(static_cast<double>(bytes));
  }
  if (wire_bytes != nullptr) wire_bytes->Add(static_cast<double>(bytes));
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool SetNoDelay(int fd) {
  int one = 1;
  return setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0;
}

int ListenOn(const std::string& host, int port, std::string* error,
             int* bound_port) {
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr, error)) return -1;
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = ErrnoString("socket");
    return -1;
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) *error = ErrnoString("bind");
    close(fd);
    return -1;
  }
  if (listen(fd, 64) != 0) {
    if (error != nullptr) *error = ErrnoString("listen");
    close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      *bound_port = ntohs(bound.sin_port);
    } else {
      *bound_port = port;
    }
  }
  return fd;
}

int BackoffDelayMs(const RetryOptions& retry, int attempt) {
  double base = retry.initial_backoff_ms;
  for (int i = 1; i < attempt; ++i) {
    base = std::min(base * retry.multiplier,
                    static_cast<double>(retry.max_backoff_ms));
  }
  base = std::min(base, static_cast<double>(retry.max_backoff_ms));
  if (retry.jitter_seed == 0 || retry.jitter <= 0.0) {
    return static_cast<int>(base);
  }
  // Mix (seed, attempt) statelessly so the schedule is a pure function of
  // the options — reconnect attempt k always sleeps the same amount.
  std::uint64_t state =
      retry.jitter_seed ^
      (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(attempt + 1));
  const std::uint64_t bits = util::SplitMix64(state);
  const double unit = static_cast<double>(bits >> 11) * 0x1.0p-53;  // [0, 1)
  const double factor = 1.0 + retry.jitter * (2.0 * unit - 1.0);
  const double jittered =
      std::min(std::max(base * factor, 1.0),
               static_cast<double>(retry.max_backoff_ms));
  return static_cast<int>(jittered);
}

int ConnectWithRetry(const std::string& host, int port,
                     const RetryOptions& retry,
                     const TransportMetrics* metrics, std::string* error) {
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr, error)) return -1;
  std::string last_error = "no attempts made";
  const auto start = std::chrono::steady_clock::now();
  auto elapsed_ms = [&start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  bool deadline_hit = false;
  int attempts_made = 0;
  for (int attempt = 0; attempt < retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      if (metrics != nullptr && metrics->connect_retries != nullptr) {
        metrics->connect_retries->Add(1.0);
      }
      int backoff = BackoffDelayMs(retry, attempt);
      if (retry.deadline_ms > 0) {
        // Never sleep past the deadline; give up when no budget remains.
        const double remaining = retry.deadline_ms - elapsed_ms();
        if (remaining <= 0) {
          deadline_hit = true;
          break;
        }
        backoff = std::min(backoff, static_cast<int>(remaining));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    if (retry.deadline_ms > 0 && elapsed_ms() >= retry.deadline_ms &&
        attempt > 0) {
      deadline_hit = true;
      break;
    }
    ++attempts_made;
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      last_error = ErrnoString("socket");
      continue;
    }
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    last_error = ErrnoString("connect");
    close(fd);
  }
  if (error != nullptr) {
    if (deadline_hit) {
      *error = "connect to " + host + ":" + std::to_string(port) +
               " failed: deadline (" + std::to_string(retry.deadline_ms) +
               " ms) exceeded after " + std::to_string(attempts_made) +
               " attempts (" + last_error + ")";
    } else {
      *error = "connect to " + host + ":" + std::to_string(port) +
               " failed after " + std::to_string(retry.max_attempts) +
               " attempts (" + last_error + ")";
    }
  }
  return -1;
}

// --- Connection -----------------------------------------------------------

Connection::Connection(int fd, const TransportMetrics* metrics,
                       std::size_t max_queued_bytes)
    : fd_(fd), metrics_(metrics), max_queued_bytes_(max_queued_bytes) {
  if (fd_ >= 0) {
    SetNonBlocking(fd_);
    SetNoDelay(fd_);
  }
}

Connection::~Connection() { Close(); }

void Connection::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

bool Connection::QueueAndFlush(const std::uint8_t* data, std::size_t size,
                               std::size_t frame_count) {
  if (queued_bytes() + size > max_queued_bytes_) {
    if (metrics_ != nullptr && metrics_->backpressure_rejects != nullptr) {
      metrics_->backpressure_rejects->Add(1.0);
    }
    last_error_ = "write queue full (" + std::to_string(queued_bytes()) +
                  " + " + std::to_string(size) + " > " +
                  std::to_string(max_queued_bytes_) + " bytes)";
    return false;
  }
  outbuf_.insert(outbuf_.end(), data, data + size);
  if (metrics_ != nullptr && metrics_->frames_tx != nullptr &&
      frame_count > 0) {
    metrics_->frames_tx->Add(static_cast<double>(frame_count));
  }
  return FlushSome() != IoResult::kError;
}

bool Connection::SendEncoded(util::ByteSpan frame_bytes,
                             std::size_t frame_count) {
  if (!open()) {
    last_error_ = "send on closed connection";
    return false;
  }
  if (fault_ != nullptr && frame_count == 1 &&
      frame_bytes.size() >= kFrameHeaderBytes) {
    const MsgType type = static_cast<MsgType>(frame_bytes.data()[5]);
    std::uint64_t step = 0;
    std::memcpy(&step, frame_bytes.data() + 8, sizeof(step));
    const FaultDecision fault = fault_->OnSend(type, step, frame_bytes.size());
    if (fault.action != FaultAction::kNone && metrics_ != nullptr &&
        metrics_->faults_injected != nullptr) {
      metrics_->faults_injected->Add(1.0);
    }
    switch (fault.action) {
      case FaultAction::kNone:
        break;
      case FaultAction::kDrop:
        return true;  // swallowed: the peer never sees this frame
      case FaultAction::kDelay:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(fault.delay_ms));
        break;
      case FaultAction::kCorrupt: {
        std::vector<std::uint8_t> mangled(
            frame_bytes.data(), frame_bytes.data() + frame_bytes.size());
        mangled[fault.byte_offset % mangled.size()] ^= 0x01;
        return QueueAndFlush(mangled.data(), mangled.size(), frame_count);
      }
      case FaultAction::kTruncate: {
        const std::size_t keep =
            std::min(fault.byte_offset, frame_bytes.size() - 1);
        QueueAndFlush(frame_bytes.data(), keep, 0);
        FlushOutput(100);
        Close();
        last_error_ = "injected fault: truncated frame";
        return false;
      }
      case FaultAction::kClose:
        FlushOutput(100);
        Close();
        last_error_ = "injected fault: connection closed";
        return false;
      case FaultAction::kKillServer:
        // The endpoint-level crash is the owner's job (the injector has
        // latched kill_requested()); here the frame just dies with the
        // connection, unflushed — a crash does not say goodbye.
        Close();
        last_error_ = "injected fault: endpoint killed";
        return false;
      case FaultAction::kStall:
        // Freeze the endpoint: it stops reading and flushing but the
        // socket stays open. The triggering frame (and everything after)
        // queues without reaching the wire, so the bounded write queue
        // eventually backpressures.
        rx_blocked_ = true;
        tx_stalled_ = true;
        break;
      case FaultAction::kPartition:
        if (fault.direction != PartitionDirection::kTx) rx_blocked_ = true;
        if (fault.direction != PartitionDirection::kRx) {
          tx_dropped_ = true;
          return true;  // the triggering frame is lost in the network
        }
        break;  // rx-only cut: this frame still goes out
    }
  }
  return QueueAndFlush(frame_bytes.data(), frame_bytes.size(), frame_count);
}

bool Connection::SendFrame(MsgType type, std::uint64_t step,
                           std::uint32_t tensor, util::ByteSpan payload) {
  util::ByteBuffer encoded(kFrameHeaderBytes + payload.size());
  EncodeFrame(type, step, tensor, payload, encoded);
  return SendEncoded(encoded.span(), 1);
}

Connection::IoResult Connection::FlushSome() {
  if (tx_stalled_) return IoResult::kOk;  // frozen endpoint: queue holds
  if (tx_dropped_) {
    // Partitioned tx: the app's sends "succeed" but the bytes are lost in
    // the network, so the queue drains without touching the socket.
    outbuf_.clear();
    out_head_ = 0;
    if (metrics_ != nullptr && metrics_->write_queue_bytes != nullptr) {
      metrics_->write_queue_bytes->Set(0.0);
    }
    return IoResult::kOk;
  }
  obs::ScopedStage stage(&obs::StageProfiler::Global(), "write_flush");
  while (wants_write()) {
    const ssize_t n = send(fd_, outbuf_.data() + out_head_,
                           outbuf_.size() - out_head_, MSG_NOSIGNAL);
    if (n > 0) {
      out_head_ += static_cast<std::size_t>(n);
      if (metrics_ != nullptr) metrics_->CountTx(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    last_error_ = ErrnoString("send");
    return IoResult::kError;
  }
  if (out_head_ == outbuf_.size()) {
    outbuf_.clear();
    out_head_ = 0;
  } else if (out_head_ > (outbuf_.size() / 2)) {
    outbuf_.erase(outbuf_.begin(),
                  outbuf_.begin() + static_cast<std::ptrdiff_t>(out_head_));
    out_head_ = 0;
  }
  if (metrics_ != nullptr && metrics_->write_queue_bytes != nullptr) {
    metrics_->write_queue_bytes->Set(static_cast<double>(queued_bytes()));
  }
  return IoResult::kOk;
}

Connection::IoResult Connection::HandleWritable() { return FlushSome(); }

Connection::IoResult Connection::HandleReadable() {
  // Severed inbound (stall / rx partition): leave whatever arrives in the
  // kernel buffer, exactly as a frozen process would.
  if (rx_blocked_) return IoResult::kOk;
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      if (metrics_ != nullptr) metrics_->CountRx(static_cast<std::size_t>(n));
      obs::ScopedStage stage(&obs::StageProfiler::Global(), "frame_parse");
      std::vector<Frame> frames;
      if (!parser_.Feed(util::ByteSpan(chunk, static_cast<std::size_t>(n)),
                        &frames)) {
        if (metrics_ != nullptr && metrics_->frame_errors != nullptr) {
          metrics_->frame_errors->Add(1.0);
        }
        last_error_ = std::string("malformed frame (") +
                      ParseErrorName(parser_.error()) + ")";
        return IoResult::kError;
      }
      if (metrics_ != nullptr && metrics_->frames_rx != nullptr &&
          !frames.empty()) {
        metrics_->frames_rx->Add(static_cast<double>(frames.size()));
      }
      for (auto& frame : frames) inbox_.push_back(std::move(frame));
      if (static_cast<std::size_t>(n) < sizeof(chunk)) return IoResult::kOk;
      continue;
    }
    if (n == 0) return IoResult::kClosed;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kOk;
    if (errno == EINTR) continue;
    last_error_ = ErrnoString("recv");
    return IoResult::kError;
  }
}

bool Connection::PopFrame(Frame* out) {
  if (inbox_.empty()) return false;
  *out = std::move(inbox_.front());
  inbox_.pop_front();
  return true;
}

Connection::IoResult Connection::FlushOutput(int timeout_ms) {
  Deadline deadline(timeout_ms);
  while (wants_write()) {
    const int remaining = deadline.RemainingMs();
    if (remaining == 0) {
      if (metrics_ != nullptr && metrics_->timeouts != nullptr) {
        metrics_->timeouts->Add(1.0);
      }
      last_error_ = "flush timed out";
      return IoResult::kError;
    }
    pollfd pfd{fd_, POLLOUT, 0};
    const int ready = poll(&pfd, 1, remaining);
    if (ready < 0 && errno != EINTR) {
      last_error_ = ErrnoString("poll");
      return IoResult::kError;
    }
    if (ready > 0 && FlushSome() == IoResult::kError) return IoResult::kError;
  }
  return IoResult::kOk;
}

Connection::IoResult Connection::WaitFrame(Frame* out, int timeout_ms) {
  Deadline deadline(timeout_ms);
  for (;;) {
    if (PopFrame(out)) return IoResult::kOk;
    const int remaining = deadline.RemainingMs();
    if (remaining == 0) {
      if (metrics_ != nullptr && metrics_->timeouts != nullptr) {
        metrics_->timeouts->Add(1.0);
      }
      last_error_ = "timed out waiting for a frame";
      return IoResult::kError;
    }
    if (rx_blocked_) {
      // Inbound is severed: polling POLLIN (or riding out POLLHUP) would
      // spin hot on the never-drained fd. Flush opportunistically, then
      // sleep a bounded slice so the deadline still fires.
      if (wants_write() && FlushSome() == IoResult::kError) {
        return IoResult::kError;
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::min(remaining, 20)));
      continue;
    }
    pollfd pfd{fd_, static_cast<short>(POLLIN | (wants_write() ? POLLOUT : 0)),
               0};
    const int ready = poll(&pfd, 1, remaining);
    if (ready < 0) {
      if (errno == EINTR) continue;
      last_error_ = ErrnoString("poll");
      return IoResult::kError;
    }
    if (ready == 0) continue;  // re-check the deadline
    if ((pfd.revents & POLLOUT) != 0 && FlushSome() == IoResult::kError) {
      return IoResult::kError;
    }
    if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      const IoResult r = HandleReadable();
      if (r == IoResult::kError) return r;
      if (r == IoResult::kClosed && inbox_.empty()) return IoResult::kClosed;
    }
  }
}

// --- TcpServer ------------------------------------------------------------

TcpServer::TcpServer(const TransportMetrics* metrics) : metrics_(metrics) {}

TcpServer::~TcpServer() { Close(); }

bool TcpServer::Listen(const std::string& host, int port, std::string* error) {
  THREELC_CHECK_MSG(listen_fd_ < 0, "TcpServer already listening");
  int bound_port = -1;
  const int fd = ListenOn(host, port, error, &bound_port);
  if (fd < 0) return false;
  AdoptListener(fd, bound_port);
  return true;
}

void TcpServer::AdoptListener(int listen_fd, int port) {
  THREELC_CHECK_MSG(listen_fd_ < 0, "TcpServer already listening");
  listen_fd_ = listen_fd;
  port_ = port;
  SetNonBlocking(listen_fd_);
}

void TcpServer::Close() {
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  conns_.clear();
}

void TcpServer::Reap() {
  for (std::size_t i = 0; i < conns_.size();) {
    if (!conns_[i]->open()) {
      conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

bool TcpServer::Poll(int timeout_ms) {
  if (listen_fd_ < 0) return false;

  std::vector<pollfd> pfds;
  pfds.reserve(conns_.size() + 1);
  pfds.push_back({listen_fd_, POLLIN, 0});
  for (const auto& conn : conns_) {
    // An rx-blocked (stalled/partitioned) connection must not be polled
    // for POLLIN: the unread kernel bytes would make every poll return
    // instantly. When no event is of interest a negative fd keeps the
    // pfds[i+1] <-> conns_[i] mapping while poll(2) skips the entry.
    const short events =
        static_cast<short>((conn->rx_blocked() ? 0 : POLLIN) |
                           (conn->wants_write() ? POLLOUT : 0));
    pfds.push_back({events != 0 ? conn->fd() : -1, events, 0});
  }

  const int ready = poll(pfds.data(), pfds.size(), timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return true;
    THREELC_LOG(Error) << "rpc: poll failed: " << std::strerror(errno);
    return true;
  }
  if (ready == 0) return true;

  // Accept everything pending.
  if ((pfds[0].revents & POLLIN) != 0) {
    for (;;) {
      const int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) break;  // EAGAIN or transient error; retry next Poll
      conns_.push_back(std::make_unique<Connection>(fd, metrics_));
      if (on_accept) on_accept(*conns_.back());
    }
  }

  // Service connections. pfds[i + 1] corresponds to conns_[i]; Reap only
  // runs afterwards, and accepts append, so the mapping stays valid.
  const std::size_t polled = pfds.size() - 1;
  for (std::size_t i = 0; i < polled && i < conns_.size(); ++i) {
    Connection& conn = *conns_[i];
    const short revents = pfds[i + 1].revents;
    if (!conn.open() || revents == 0) continue;

    std::string disconnect_reason;
    bool disconnected = false;
    if ((revents & POLLOUT) != 0) {
      if (conn.HandleWritable() == Connection::IoResult::kError) {
        disconnected = true;
        disconnect_reason = conn.last_error();
      }
    }
    if (!disconnected && !conn.rx_blocked() &&
        (revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      const Connection::IoResult r = conn.HandleReadable();
      if (r == Connection::IoResult::kError) {
        disconnected = true;
        disconnect_reason = conn.last_error();
      } else if (r == Connection::IoResult::kClosed) {
        disconnected = true;
        disconnect_reason = "peer closed connection";
      }
    }
    // Deliver frames parsed before any error/close, then the disconnect.
    Frame frame;
    while (conn.open() && conn.PopFrame(&frame)) {
      if (on_frame) on_frame(conn, std::move(frame));
    }
    if (disconnected && conn.open()) {
      if (metrics_ != nullptr && metrics_->disconnects != nullptr) {
        metrics_->disconnects->Add(1.0);
      }
      if (on_disconnect) on_disconnect(conn, disconnect_reason);
      conn.Close();
    }
  }
  Reap();
  return true;
}

}  // namespace threelc::rpc
