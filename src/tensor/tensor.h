// Dense, contiguous float32 tensor — the single value type that flows
// through the NN substrate, the parameter server, and every codec.
//
// Design notes:
//  - float32 only: the paper's state changes are 32-bit floats; keeping a
//    single dtype keeps the codec kernels simple and auto-vectorizable.
//  - Value semantics with cheap moves; data lives in a std::vector<float>.
//  - Raw data access (data()/span()) is the fast path used by kernels.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "tensor/shape.h"

namespace threelc::tensor {

class Tensor {
 public:
  Tensor() = default;
  // Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);
  // Tensor with explicit contents; values.size() must equal shape size.
  Tensor(Shape shape, std::vector<float> values);

  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor Full(Shape shape, float value);
  // 1-D tensor from a list of values.
  static Tensor FromVector(std::vector<float> values);

  const Shape& shape() const { return shape_; }
  std::int64_t num_elements() const { return shape_.num_elements(); }
  std::size_t size() const { return data_.size(); }
  std::size_t byte_size() const { return data_.size() * sizeof(float); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return std::span<float>(data_); }
  std::span<const float> span() const { return std::span<const float>(data_); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  // Checked multi-index access (slow path; for tests and layer setup).
  float& at(const std::vector<std::int64_t>& index);
  float at(const std::vector<std::int64_t>& index) const;

  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  // Returns a tensor sharing no storage but viewing the same data with a
  // different shape; element count must match.
  Tensor Reshaped(Shape new_shape) const;

  bool SameShape(const Tensor& o) const { return shape_ == o.shape_; }

  std::string DebugString(std::size_t max_elems = 16) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace threelc::tensor
