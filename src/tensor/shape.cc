#include "tensor/shape.h"

#include "util/logging.h"

namespace threelc::tensor {

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
  for (auto d : dims_) THREELC_CHECK_MSG(d >= 0, "negative dimension");
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  for (auto d : dims_) THREELC_CHECK_MSG(d >= 0, "negative dimension");
}

std::int64_t Shape::dim(std::size_t i) const {
  THREELC_CHECK_MSG(i < dims_.size(), "dim index out of range");
  return dims_[i];
}

std::int64_t Shape::num_elements() const {
  std::int64_t n = 1;
  for (auto d : dims_) n *= d;
  return n;
}

std::int64_t Shape::Offset(const std::vector<std::int64_t>& index) const {
  THREELC_CHECK_MSG(index.size() == dims_.size(), "index rank mismatch");
  std::int64_t off = 0;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    THREELC_CHECK_MSG(index[i] >= 0 && index[i] < dims_[i],
                      "index out of bounds at axis " << i);
    off = off * dims_[i] + index[i];
  }
  return off;
}

std::string Shape::ToString() const {
  std::string s = "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(dims_[i]);
  }
  s += "]";
  return s;
}

}  // namespace threelc::tensor
