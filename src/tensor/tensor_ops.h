// Vectorizable kernels over Tensors.
//
// Every loop here is a plain contiguous-array loop so the compiler can
// auto-vectorize it — mirroring the paper's argument that 3LC only needs
// stock vectorized operations (§3.1). Shape agreement is checked once at
// entry; inner loops are branch-free.
#pragma once

#include <cstddef>
#include <cstdint>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace threelc::tensor {

// dst += src (elementwise). Shapes must match.
void Add(Tensor& dst, const Tensor& src);
// dst -= src.
void Sub(Tensor& dst, const Tensor& src);
// dst += alpha * src.
void Axpy(Tensor& dst, float alpha, const Tensor& src);
// dst *= alpha.
void Scale(Tensor& dst, float alpha);
// Elementwise product: dst *= src.
void Mul(Tensor& dst, const Tensor& src);
// out = a - b (allocates).
Tensor Difference(const Tensor& a, const Tensor& b);

// max(|t|); 0 for empty tensors.
float MaxAbs(const Tensor& t);
// Sum of elements.
double Sum(const Tensor& t);
// Sum of squared elements.
double SumSquares(const Tensor& t);
// sqrt(mean((a-b)^2)); shapes must match.
double Rmse(const Tensor& a, const Tensor& b);
// max |a - b|.
float MaxAbsDiff(const Tensor& a, const Tensor& b);
// Number of exact zeros.
std::int64_t CountZeros(const Tensor& t);

// C = A(mxk) * B(kxn); all rank-2, row-major. C is overwritten.
void Matmul(const Tensor& a, const Tensor& b, Tensor& c);
// C = A^T(mxk as kxm input) * B — i.e. C(kxn) = A(mxk)^T * B(mxn).
void MatmulTransA(const Tensor& a, const Tensor& b, Tensor& c);
// C(mxk) = A(mxn) * B(kxn)^T.
void MatmulTransB(const Tensor& a, const Tensor& b, Tensor& c);

// Fill with N(mean, stddev) samples.
void FillNormal(Tensor& t, util::Rng& rng, float mean, float stddev);
// Fill with U[lo, hi) samples.
void FillUniform(Tensor& t, util::Rng& rng, float lo, float hi);

// Index of the maximum element of a 1-D slice [begin, begin+len).
std::size_t ArgMax(const float* begin, std::size_t len);

}  // namespace threelc::tensor
