#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace threelc::tensor {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.num_elements()), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  THREELC_CHECK_MSG(
      static_cast<std::int64_t>(data_.size()) == shape_.num_elements(),
      "value count " << data_.size() << " != shape size "
                     << shape_.num_elements());
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(std::vector<float> values) {
  Shape s{static_cast<std::int64_t>(values.size())};
  return Tensor(std::move(s), std::move(values));
}

float& Tensor::at(const std::vector<std::int64_t>& index) {
  return data_[static_cast<std::size_t>(shape_.Offset(index))];
}

float Tensor::at(const std::vector<std::int64_t>& index) const {
  return data_[static_cast<std::size_t>(shape_.Offset(index))];
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor Tensor::Reshaped(Shape new_shape) const {
  THREELC_CHECK_MSG(new_shape.num_elements() == shape_.num_elements(),
                    "reshape element count mismatch: " << shape_.ToString()
                                                       << " -> "
                                                       << new_shape.ToString());
  return Tensor(std::move(new_shape), data_);
}

std::string Tensor::DebugString(std::size_t max_elems) const {
  std::ostringstream oss;
  oss << "Tensor" << shape_.ToString() << " {";
  const std::size_t n = std::min(max_elems, data_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (i) oss << ", ";
    oss << data_[i];
  }
  if (data_.size() > n) oss << ", ...";
  oss << "}";
  return oss.str();
}

}  // namespace threelc::tensor
