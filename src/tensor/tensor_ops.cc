#include "tensor/tensor_ops.h"

#include <cmath>

#include "util/logging.h"

namespace threelc::tensor {

namespace {
void CheckSameShape(const Tensor& a, const Tensor& b) {
  THREELC_CHECK_MSG(a.SameShape(b), "shape mismatch: " << a.shape().ToString()
                                                       << " vs "
                                                       << b.shape().ToString());
}
}  // namespace

void Add(Tensor& dst, const Tensor& src) {
  CheckSameShape(dst, src);
  float* d = dst.data();
  const float* s = src.data();
  const std::size_t n = dst.size();
  for (std::size_t i = 0; i < n; ++i) d[i] += s[i];
}

void Sub(Tensor& dst, const Tensor& src) {
  CheckSameShape(dst, src);
  float* d = dst.data();
  const float* s = src.data();
  const std::size_t n = dst.size();
  for (std::size_t i = 0; i < n; ++i) d[i] -= s[i];
}

void Axpy(Tensor& dst, float alpha, const Tensor& src) {
  CheckSameShape(dst, src);
  float* d = dst.data();
  const float* s = src.data();
  const std::size_t n = dst.size();
  for (std::size_t i = 0; i < n; ++i) d[i] += alpha * s[i];
}

void Scale(Tensor& dst, float alpha) {
  float* d = dst.data();
  const std::size_t n = dst.size();
  for (std::size_t i = 0; i < n; ++i) d[i] *= alpha;
}

void Mul(Tensor& dst, const Tensor& src) {
  CheckSameShape(dst, src);
  float* d = dst.data();
  const float* s = src.data();
  const std::size_t n = dst.size();
  for (std::size_t i = 0; i < n; ++i) d[i] *= s[i];
}

Tensor Difference(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out(a.shape());
  float* o = out.data();
  const float* pa = a.data();
  const float* pb = b.data();
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) o[i] = pa[i] - pb[i];
  return out;
}

float MaxAbs(const Tensor& t) {
  const float* p = t.data();
  const std::size_t n = t.size();
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float a = std::fabs(p[i]);
    m = a > m ? a : m;
  }
  return m;
}

double Sum(const Tensor& t) {
  const float* p = t.data();
  const std::size_t n = t.size();
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += p[i];
  return s;
}

double SumSquares(const Tensor& t) {
  const float* p = t.data();
  const std::size_t n = t.size();
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += static_cast<double>(p[i]) * p[i];
  return s;
}

double Rmse(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  const float* pa = a.data();
  const float* pb = b.data();
  const std::size_t n = a.size();
  if (n == 0) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(pa[i]) - pb[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(n));
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  const float* pa = a.data();
  const float* pb = b.data();
  const std::size_t n = a.size();
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float d = std::fabs(pa[i] - pb[i]);
    m = d > m ? d : m;
  }
  return m;
}

std::int64_t CountZeros(const Tensor& t) {
  const float* p = t.data();
  const std::size_t n = t.size();
  std::int64_t z = 0;
  for (std::size_t i = 0; i < n; ++i) z += (p[i] == 0.0f);
  return z;
}

void Matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  THREELC_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2 &&
                c.shape().rank() == 2);
  const std::int64_t m = a.shape().dim(0), k = a.shape().dim(1),
                     n = b.shape().dim(1);
  THREELC_CHECK_MSG(b.shape().dim(0) == k && c.shape().dim(0) == m &&
                        c.shape().dim(1) == n,
                    "matmul shape mismatch");
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // ikj loop order: unit-stride inner loop over B and C rows.
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    for (std::int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      const float* brow = pb + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void MatmulTransA(const Tensor& a, const Tensor& b, Tensor& c) {
  THREELC_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2 &&
                c.shape().rank() == 2);
  const std::int64_t m = a.shape().dim(0), k = a.shape().dim(1),
                     n = b.shape().dim(1);
  THREELC_CHECK_MSG(b.shape().dim(0) == m && c.shape().dim(0) == k &&
                        c.shape().dim(1) == n,
                    "matmul(T,·) shape mismatch");
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::int64_t i = 0; i < k * n; ++i) pc[i] = 0.0f;
  for (std::int64_t row = 0; row < m; ++row) {
    const float* arow = pa + row * k;
    const float* brow = pb + row * n;
    for (std::int64_t i = 0; i < k; ++i) {
      const float aval = arow[i];
      float* crow = pc + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

void MatmulTransB(const Tensor& a, const Tensor& b, Tensor& c) {
  THREELC_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2 &&
                c.shape().rank() == 2);
  const std::int64_t m = a.shape().dim(0), n = a.shape().dim(1),
                     k = b.shape().dim(0);
  THREELC_CHECK_MSG(b.shape().dim(1) == n && c.shape().dim(0) == m &&
                        c.shape().dim(1) == k,
                    "matmul(·,T) shape mismatch");
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * n;
    for (std::int64_t j = 0; j < k; ++j) {
      const float* brow = pb + j * n;
      float acc = 0.0f;
      for (std::int64_t t = 0; t < n; ++t) acc += arow[t] * brow[t];
      pc[i * k + j] = acc;
    }
  }
}

void FillNormal(Tensor& t, util::Rng& rng, float mean, float stddev) {
  float* p = t.data();
  const std::size_t n = t.size();
  for (std::size_t i = 0; i < n; ++i) p[i] = rng.NormalFloat(mean, stddev);
}

void FillUniform(Tensor& t, util::Rng& rng, float lo, float hi) {
  float* p = t.data();
  const std::size_t n = t.size();
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = lo + (hi - lo) * rng.UniformFloat();
  }
}

std::size_t ArgMax(const float* begin, std::size_t len) {
  THREELC_CHECK(len > 0);
  std::size_t best = 0;
  for (std::size_t i = 1; i < len; ++i) {
    if (begin[i] > begin[best]) best = i;
  }
  return best;
}

}  // namespace threelc::tensor
