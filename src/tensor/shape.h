// Tensor shape: an ordered list of dimensions.
//
// State-change tensors in the paper are arbitrary-rank (conv kernels are
// 4-D, fully-connected weights 2-D, biases 1-D); all compression treats
// them as flat arrays, so Shape mainly provides element counting, equality,
// and row-major indexing for the NN substrate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace threelc::tensor {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(std::vector<std::int64_t> dims);

  std::size_t rank() const { return dims_.size(); }
  std::int64_t dim(std::size_t i) const;
  const std::vector<std::int64_t>& dims() const { return dims_; }

  // Total element count (1 for rank-0 scalars).
  std::int64_t num_elements() const;

  // Row-major flat offset of the given multi-index.
  std::int64_t Offset(const std::vector<std::int64_t>& index) const;

  bool operator==(const Shape& o) const { return dims_ == o.dims_; }
  bool operator!=(const Shape& o) const { return !(*this == o); }

  std::string ToString() const;  // e.g. "[3, 16, 16]"

 private:
  std::vector<std::int64_t> dims_;
};

}  // namespace threelc::tensor
