// Flight recorder: ring wraparound, JSONL dumps (on demand and to an fd),
// /flightz JSON array shape, oversized-record fallback, and the
// SIGABRT crash-dump path exercised end to end in a forked child.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "json_validator.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/telemetry.h"

namespace threelc::obs {
namespace {

using testutil::JsonValidator;

StepTelemetry MakeStep(std::int64_t step) {
  StepTelemetry s;
  s.step = step;
  s.loss = 1.0 / static_cast<double>(step + 1);
  s.lr = 0.1;
  s.push_bytes = 100 * static_cast<std::size_t>(step + 1);
  s.contributors = 4;
  return s;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(FlightRecorderTest, KeepsOnlyTheLastCapacityRecordsOldestFirst) {
  FlightRecorder recorder("/dev/null", /*capacity=*/4);
  for (std::int64_t i = 0; i < 10; ++i) recorder.RecordStep(MakeStep(i));
  EXPECT_EQ(recorder.size(), 4u);

  std::ostringstream out;
  recorder.DumpTo(out);
  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> dumped;
  while (std::getline(lines, line)) dumped.push_back(line);
  ASSERT_EQ(dumped.size(), 4u);
  // Steps 6..9, oldest first, every line valid JSON.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(JsonValidator(dumped[i]).Valid()) << dumped[i];
    const std::string key = "\"step\":" + std::to_string(6 + i);
    EXPECT_NE(dumped[i].find(key), std::string::npos) << dumped[i];
  }
}

TEST(FlightRecorderTest, SizeBelowCapacityBeforeWraparound) {
  FlightRecorder recorder("/dev/null", /*capacity=*/8);
  EXPECT_EQ(recorder.size(), 0u);
  recorder.RecordStep(MakeStep(0));
  recorder.RecordStep(MakeStep(1));
  EXPECT_EQ(recorder.size(), 2u);
  std::ostringstream out;
  recorder.DumpTo(out);
  std::istringstream lines(out.str());
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) ++n;
  EXPECT_EQ(n, 2);
}

TEST(FlightRecorderTest, MixesStepsAndHealthEventsInArrivalOrder) {
  FlightRecorder recorder("/dev/null", /*capacity=*/8);
  recorder.RecordStep(MakeStep(0));
  HealthEvent event;
  event.severity = HealthSeverity::kError;
  event.detector = "nonfinite_loss";
  event.step = 1;
  event.message = "loss went NaN";
  recorder.RecordEvent(event);
  recorder.RecordStep(MakeStep(2));

  const std::string array = recorder.ToJsonArray();
  EXPECT_TRUE(JsonValidator(array).Valid()) << array;
  const std::size_t step0 = array.find("\"step\":0");
  const std::size_t health = array.find("\"type\":\"health_event\"");
  const std::size_t step2 = array.find("\"step\":2");
  ASSERT_NE(step0, std::string::npos);
  ASSERT_NE(health, std::string::npos);
  ASSERT_NE(step2, std::string::npos);
  EXPECT_LT(step0, health);
  EXPECT_LT(health, step2);
}

TEST(FlightRecorderTest, EmptyRingDumpsNothingAndArrayIsEmpty) {
  FlightRecorder recorder("/dev/null", /*capacity=*/4);
  EXPECT_EQ(recorder.ToJsonArray(), "[]");
  std::ostringstream out;
  recorder.DumpTo(out);
  EXPECT_TRUE(out.str().empty());
}

TEST(FlightRecorderTest, OversizedStepFallsBackToCompactRecord) {
  FlightRecorder recorder("/dev/null", /*capacity=*/4);
  StepTelemetry big = MakeStep(5);
  for (int t = 0; t < 200; ++t) {
    TensorStepTelemetry ts;
    ts.name = "layer_with_a_rather_long_name_" + std::to_string(t) + "/W";
    ts.elements = 1 << 20;
    ts.push_bytes = 123456;
    ts.pull_bytes = 123456;
    ts.zero_frac = 0.5;
    ts.plus_frac = 0.25;
    ts.minus_frac = 0.25;
    ts.zre_hit_rate = 0.5;
    ts.push_residual_l2 = 0.123456;
    ts.pull_residual_l2 = 0.654321;
    big.tensors.push_back(ts);
  }
  ASSERT_GT(Telemetry::StepToJson(big).size(), FlightRecorder::kSlotBytes);
  recorder.RecordStep(big);
  std::ostringstream out;
  recorder.DumpTo(out);
  std::string line = out.str();
  ASSERT_FALSE(line.empty());
  line.pop_back();  // trailing newline
  EXPECT_LE(line.size(), FlightRecorder::kSlotBytes);
  EXPECT_TRUE(JsonValidator(line).Valid()) << line;
  EXPECT_NE(line.find("\"step\":5"), std::string::npos);
  // The compact fallback drops the per-tensor array entirely.
  EXPECT_EQ(line.find("\"tensors\""), std::string::npos);
}

TEST(FlightRecorderTest, DumpWritesJsonlToDumpPath) {
  const std::string path = ::testing::TempDir() + "flight_dump_test.jsonl";
  FlightRecorder recorder(path, /*capacity=*/8);
  for (std::int64_t i = 0; i < 3; ++i) recorder.RecordStep(MakeStep(i));
  ASSERT_TRUE(recorder.Dump());
  const std::vector<std::string> lines = ReadLines(path);
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& l : lines) {
    EXPECT_TRUE(JsonValidator(l).Valid()) << l;
  }
}

// End-to-end crash path: a forked child records steps plus the triggering
// health event, installs the handlers, and aborts. The parent checks the
// child died by SIGABRT and that the dump holds the trailing steps and
// the event.
TEST(FlightRecorderTest, SigabrtProducesDumpWithTrailingStepsAndEvent) {
  const std::string path = ::testing::TempDir() + "flight_sigabrt_test.jsonl";
  std::remove(path.c_str());

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child. No gtest assertions here — just set up and crash.
    FlightRecorder recorder(path, /*capacity=*/16);
    FlightRecorder::InstallSignalHandlers(&recorder);
    for (std::int64_t i = 0; i < 20; ++i) recorder.RecordStep(MakeStep(i));
    HealthEvent event;
    event.severity = HealthSeverity::kError;
    event.detector = "loss_explosion";
    event.step = 19;
    event.message = "loss exploded right before the crash";
    recorder.RecordEvent(event);
    std::abort();
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  const std::vector<std::string> lines = ReadLines(path);
  std::remove(path.c_str());
  // 16 slots: the 15 most recent steps (5..19) plus the health event.
  ASSERT_EQ(lines.size(), 16u);
  for (const std::string& l : lines) {
    EXPECT_TRUE(JsonValidator(l).Valid()) << l;
  }
  EXPECT_NE(lines.front().find("\"step\":5"), std::string::npos)
      << lines.front();
  EXPECT_NE(lines.back().find("\"type\":\"health_event\""), std::string::npos)
      << lines.back();
  EXPECT_NE(lines.back().find("loss exploded"), std::string::npos);
}

}  // namespace
}  // namespace threelc::obs
