// Tests for backup workers and straggler simulation (paper §2.1).
#include <gtest/gtest.h>

#include "compress/factory.h"
#include "train/experiment.h"
#include "train/time_model.h"
#include "train/trainer.h"

namespace threelc::train {
namespace {

using compress::CodecConfig;

class StragglerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new ExperimentConfig(SmallExperiment());
    data_ = new data::SyntheticData(data::MakeTeacherDataset(config_->data));
  }
  static void TearDownTestSuite() {
    delete config_;
    delete data_;
  }
  static ExperimentConfig* config_;
  static data::SyntheticData* data_;
};

ExperimentConfig* StragglerTest::config_ = nullptr;
data::SyntheticData* StragglerTest::data_ = nullptr;

TEST_F(StragglerTest, NoStragglersMeansUnitMultiplier) {
  auto r = RunDesign(*config_, CodecConfig::Float32(), 20, *data_);
  for (const auto& s : r.steps) {
    EXPECT_EQ(s.compute_multiplier, 1.0);
    EXPECT_EQ(s.contributors, config_->trainer.num_workers);
  }
}

TEST_F(StragglerTest, BackupWorkersReduceContributors) {
  ExperimentConfig cfg = *config_;
  cfg.trainer.backup_workers = 1;
  auto r = RunDesign(cfg, CodecConfig::Float32(), 20, *data_);
  for (const auto& s : r.steps) {
    EXPECT_EQ(s.contributors, cfg.trainer.num_workers - 1);
  }
}

TEST_F(StragglerTest, StragglersRaiseWaitedComputeUnderBsp) {
  ExperimentConfig cfg = *config_;
  cfg.trainer.straggler_prob = 0.5;  // half the workers lag badly
  cfg.trainer.straggler_slowdown = 5.0;
  auto r = RunDesign(cfg, CodecConfig::Float32(), 30, *data_);
  double mean_mult = 0.0;
  for (const auto& s : r.steps) mean_mult += s.compute_multiplier;
  mean_mult /= static_cast<double>(r.steps.size());
  // With 4 workers at p=0.5, almost every step waits for a straggler.
  EXPECT_GT(mean_mult, 3.0);
}

TEST_F(StragglerTest, BackupWorkersCutTheWait) {
  ExperimentConfig cfg = *config_;
  cfg.trainer.straggler_prob = 0.2;
  cfg.trainer.straggler_slowdown = 10.0;
  auto bsp = RunDesign(cfg, CodecConfig::Float32(), 40, *data_);
  cfg.trainer.backup_workers = 1;
  auto backup = RunDesign(cfg, CodecConfig::Float32(), 40, *data_);
  double bsp_mult = 0.0, backup_mult = 0.0;
  for (const auto& s : bsp.steps) bsp_mult += s.compute_multiplier;
  for (const auto& s : backup.steps) backup_mult += s.compute_multiplier;
  EXPECT_LT(backup_mult, bsp_mult);
}

TEST_F(StragglerTest, TimeModelReflectsStragglerWait) {
  ExperimentConfig cfg = *config_;
  cfg.trainer.straggler_prob = 0.3;
  cfg.trainer.straggler_slowdown = 8.0;
  auto slow = RunDesign(cfg, CodecConfig::Float32(), 25, *data_);
  auto fast = RunDesign(*config_, CodecConfig::Float32(), 25, *data_);
  TimeModelConfig tm;
  tm.link = net::LinkConfig::OneGbps();
  EXPECT_GT(EstimateTrainingSeconds(slow, tm),
            EstimateTrainingSeconds(fast, tm));
}

TEST_F(StragglerTest, TrainingStillConvergesWithBackupWorkers) {
  ExperimentConfig cfg = *config_;
  cfg.trainer.backup_workers = 1;
  cfg.trainer.straggler_prob = 0.2;
  auto r = RunDesign(cfg, CodecConfig::ThreeLC(1.0f), 120, *data_);
  EXPECT_GT(r.final_test_accuracy, 0.3);
}

TEST_F(StragglerTest, AdamServerOptimizerConverges) {
  ExperimentConfig cfg = *config_;
  cfg.trainer.optimizer_kind = TrainerConfig::OptimizerKind::kAdam;
  cfg.trainer.lr_max = 0.005f;
  cfg.trainer.lr_min = 0.0005f;
  auto r = RunDesign(cfg, CodecConfig::ThreeLC(1.0f), 120, *data_);
  EXPECT_GT(r.final_test_accuracy, 0.3);
}

TEST_F(StragglerTest, JitterProducesMultipliersAboveOne) {
  ExperimentConfig cfg = *config_;
  cfg.trainer.straggler_jitter = 0.2;
  auto r = RunDesign(cfg, CodecConfig::Float32(), 15, *data_);
  for (const auto& s : r.steps) {
    EXPECT_GE(s.compute_multiplier, 1.0);
  }
}

}  // namespace
}  // namespace threelc::train
