// Integration tests: end-to-end distributed training with each codec.
#include <gtest/gtest.h>

#include <cmath>

#include "compress/factory.h"
#include "train/experiment.h"
#include "train/trainer.h"

namespace threelc::train {
namespace {

using compress::CodecConfig;

class TrainerIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new ExperimentConfig(SmallExperiment());
    data_ = new data::SyntheticData(data::MakeTeacherDataset(config_->data));
  }
  static void TearDownTestSuite() {
    delete config_;
    delete data_;
    config_ = nullptr;
    data_ = nullptr;
  }

  static ExperimentConfig* config_;
  static data::SyntheticData* data_;
};

ExperimentConfig* TrainerIntegration::config_ = nullptr;
data::SyntheticData* TrainerIntegration::data_ = nullptr;

TEST_F(TrainerIntegration, BaselineLearnsAboveChance) {
  auto r = RunDesign(*config_, CodecConfig::Float32(), 150, *data_);
  EXPECT_GT(r.final_test_accuracy, 0.3);  // chance is 0.1
  EXPECT_LT(r.final_train_loss, 2.0);
  EXPECT_EQ(r.steps.size(), 150u);
}

TEST_F(TrainerIntegration, ThreeLCMatchesBaselineAccuracyBand) {
  auto base = RunDesign(*config_, CodecConfig::Float32(), 150, *data_);
  auto lc = RunDesign(*config_, CodecConfig::ThreeLC(1.0f), 150, *data_);
  EXPECT_GT(lc.final_test_accuracy, base.final_test_accuracy - 0.08);
}

TEST_F(TrainerIntegration, ThreeLCTrafficMatchesBitsPerValueBand) {
  auto r = RunDesign(*config_, CodecConfig::ThreeLC(1.0f), 100, *data_);
  // Paper Table 2: 0.3–1.6 bits per state change for 3LC variants; early
  // training is denser, so accept up to quartic's fixed 1.6 + slack.
  EXPECT_GT(r.CodecBitsPerValue(), 0.1);
  EXPECT_LT(r.CodecBitsPerValue(), 1.7);
  EXPECT_GT(r.CodecCompressionRatio(), 20.0);
}

TEST_F(TrainerIntegration, NoZreIsExactly20xForCodecTraffic) {
  CodecConfig cfg = CodecConfig::ThreeLC(1.0f);
  cfg.zero_run = false;
  auto r = RunDesign(*config_, cfg, 30, *data_);
  // Quartic encoding alone: 1.6 bits/value = 20x, minus small headers.
  EXPECT_NEAR(r.CodecCompressionRatio(), 20.0, 1.0);
  EXPECT_NEAR(r.CodecBitsPerValue(), 1.6, 0.1);
}

TEST_F(TrainerIntegration, BaselineIs32BitsPerValue) {
  auto r = RunDesign(*config_, CodecConfig::Float32(), 20, *data_);
  EXPECT_DOUBLE_EQ(r.CodecBitsPerValue(), 32.0);
  EXPECT_DOUBLE_EQ(r.AverageBitsPerValue(), 32.0);
}

TEST_F(TrainerIntegration, TwoLocalStepsHalvesTraffic) {
  auto base = RunDesign(*config_, CodecConfig::Float32(), 40, *data_);
  auto local = RunDesign(*config_, CodecConfig::TwoLocalSteps(), 40, *data_);
  const double ratio = static_cast<double>(base.TotalBytes()) /
                       static_cast<double>(local.TotalBytes());
  EXPECT_NEAR(ratio, 2.0, 0.15);
}

TEST_F(TrainerIntegration, DeterministicAcrossRuns) {
  auto a = RunDesign(*config_, CodecConfig::ThreeLC(1.5f), 40, *data_);
  auto b = RunDesign(*config_, CodecConfig::ThreeLC(1.5f), 40, *data_);
  EXPECT_EQ(a.final_test_accuracy, b.final_test_accuracy);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].loss, b.steps[i].loss) << "step " << i;
    EXPECT_EQ(a.steps[i].push_bytes, b.steps[i].push_bytes) << "step " << i;
    EXPECT_EQ(a.steps[i].pull_bytes, b.steps[i].pull_bytes) << "step " << i;
  }
}

TEST_F(TrainerIntegration, SerialAndParallelWorkersAgree) {
  ExperimentConfig cfg = *config_;
  cfg.trainer.parallel_workers = false;
  auto serial = RunDesign(cfg, CodecConfig::ThreeLC(1.0f), 25, *data_);
  cfg.trainer.parallel_workers = true;
  auto parallel = RunDesign(cfg, CodecConfig::ThreeLC(1.0f), 25, *data_);
  EXPECT_EQ(serial.final_test_accuracy, parallel.final_test_accuracy);
  for (std::size_t i = 0; i < serial.steps.size(); ++i) {
    EXPECT_EQ(serial.steps[i].loss, parallel.steps[i].loss);
  }
}

TEST_F(TrainerIntegration, TrafficAccountingConsistency) {
  auto r = RunDesign(*config_, CodecConfig::ThreeLC(1.0f), 30, *data_);
  for (const auto& s : r.steps) {
    EXPECT_GE(s.push_bytes, s.push_bytes_codec);
    EXPECT_GE(s.pull_bytes, s.pull_bytes_codec);
    EXPECT_GE(s.push_values, s.push_values_codec);
    // Every step pushes/pulls the full model per worker.
    EXPECT_EQ(s.push_values,
              static_cast<std::size_t>(r.model_parameters) *
                  static_cast<std::size_t>(r.num_workers));
    EXPECT_EQ(s.pull_values, s.push_values);
    EXPECT_GT(s.push_bytes, 0u);
    EXPECT_GT(s.pull_bytes, 0u);
  }
}

TEST_F(TrainerIntegration, EvalsRecordedAtRequestedCadence) {
  ExperimentConfig cfg = *config_;
  cfg.trainer.eval_every = 20;
  auto r = RunDesign(cfg, CodecConfig::Float32(), 60, *data_);
  ASSERT_EQ(r.evals.size(), 3u);
  EXPECT_EQ(r.evals[0].step, 20);
  EXPECT_EQ(r.evals[1].step, 40);
  EXPECT_EQ(r.evals[2].step, 60);
  EXPECT_EQ(r.evals.back().test_accuracy, r.final_test_accuracy);
}

TEST_F(TrainerIntegration, LrFollowsCosineSchedule) {
  auto r = RunDesign(*config_, CodecConfig::Float32(), 50, *data_);
  EXPECT_NEAR(r.steps.front().lr, config_->trainer.lr_max, 1e-5);
  EXPECT_LT(r.steps.back().lr, r.steps.front().lr);
}

TEST_F(TrainerIntegration, SparsificationTrafficBetweenBounds) {
  auto r = RunDesign(*config_, CodecConfig::Sparsification(0.05f), 30, *data_);
  // 5%: ~1 bit bitmap + ~0.05*32 bits values ≈ 2.6 bits/value.
  EXPECT_GT(r.CodecBitsPerValue(), 1.0);
  EXPECT_LT(r.CodecBitsPerValue(), 5.0);
}

TEST_F(TrainerIntegration, HigherSparsityMultiplierNeverMoreTraffic) {
  auto s100 = RunDesign(*config_, CodecConfig::ThreeLC(1.0f), 40, *data_);
  auto s190 = RunDesign(*config_, CodecConfig::ThreeLC(1.9f), 40, *data_);
  EXPECT_LT(s190.CodecBytes(), s100.CodecBytes());
}

TEST_F(TrainerIntegration, AllTable1DesignsRunAndLearn) {
  for (const auto& design : compress::Table1Designs()) {
    auto r = RunDesign(*config_, design, 80, *data_);
    EXPECT_GT(r.final_test_accuracy, 0.2) << r.codec_name;
    EXPECT_TRUE(std::isfinite(r.final_train_loss)) << r.codec_name;
  }
}

}  // namespace
}  // namespace threelc::train
