// End-to-end tests for the TCP distributed runtime: a threaded
// RpcServer + N RpcWorkers over loopback must produce bitwise-identical
// model parameters to the in-process DistributedTrainer for the same
// seed/codec/steps, and every injected fault (rogue disconnect, garbage
// bytes, plan-hash mismatch, absent peers, dead port) must fail cleanly
// with a descriptive error instead of hanging or crashing.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "compress/factory.h"
#include "data/synthetic.h"
#include "ps/plan.h"
#include "ps/server.h"
#include "ps/worker.h"
#include "rpc/runtime.h"
#include "rpc/transport.h"
#include "train/experiment.h"
#include "train/model_zoo.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace threelc::rpc {
namespace {

struct TestSetup {
  train::ExperimentConfig config;
  data::SyntheticData data;
  // Second-stage lossless block codec both sides negotiate at handshake.
  std::string block_codec = "store";
};

TestSetup MakeTestSetup(int num_workers, std::int64_t steps,
                        const compress::CodecConfig& codec) {
  TestSetup setup;
  setup.config = train::SmallExperiment();
  train::TrainerConfig& tc = setup.config.trainer;
  tc.num_workers = num_workers;
  tc.total_steps = steps;
  tc.batch_size = 16;
  tc.eval_every = 0;
  tc.codec = codec;
  setup.data = data::MakeTeacherDataset(setup.config.data);
  return setup;
}

bool ModelsBitwiseEqual(nn::Model& a, nn::Model& b) {
  auto pa = a.Params(), pb = b.Params();
  if (pa.size() != pb.size()) return false;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (pa[i].value->byte_size() != pb[i].value->byte_size() ||
        std::memcmp(pa[i].value->data(), pb[i].value->data(),
                    pa[i].value->byte_size()) != 0) {
      return false;
    }
  }
  auto ba = a.Buffers(), bb = b.Buffers();
  if (ba.size() != bb.size()) return false;
  for (std::size_t i = 0; i < ba.size(); ++i) {
    if (ba[i]->byte_size() != bb[i]->byte_size() ||
        std::memcmp(ba[i]->data(), bb[i]->data(), ba[i]->byte_size()) != 0) {
      return false;
    }
  }
  return true;
}

// One worker's full lifecycle on the calling thread, mirroring
// examples/distributed_training.cpp (including the exact sampler seeding
// that makes the run bitwise-reproducible).
bool RunOneWorker(const TestSetup& setup, int worker_id, int port,
                  std::string* error) {
  const train::TrainerConfig& tc = setup.config.trainer;
  nn::Model model =
      train::BuildMlp(setup.config.model, setup.config.model_seed);
  const ps::TensorPlan plan =
      ps::TensorPlan::FromParams(model.Params(), tc.min_compress_elems);
  auto codec = std::shared_ptr<const compress::Compressor>(
      compress::MakeCompressor(tc.codec));
  ps::Worker ps_worker(worker_id, model, plan, codec);

  util::Rng seeder(tc.seed);
  util::Rng rng = seeder.Fork();
  for (int i = 0; i < worker_id; ++i) rng = seeder.Fork();
  data::Sampler sampler(setup.data.train, rng, tc.augment_noise);

  RpcWorkerConfig wc;
  wc.port = port;
  wc.worker_id = worker_id;
  wc.batch_size = tc.batch_size;
  wc.handshake_timeout_ms = 10000;
  wc.pull_timeout_ms = 20000;
  wc.io_timeout_ms = 10000;
  wc.retry.max_attempts = 5;
  wc.retry.initial_backoff_ms = 10;
  wc.block_codec = setup.block_codec;
  RpcWorker worker(wc, ps_worker, plan, codec->name(), std::move(sampler));
  const bool ok = worker.Run();
  if (!ok && error != nullptr) *error = worker.error();
  return ok;
}

// Run server + N worker threads over loopback; on success returns the
// final global model.
std::unique_ptr<nn::Model> RunTcpTraining(const TestSetup& setup) {
  const train::TrainerConfig& tc = setup.config.trainer;
  auto model = std::make_unique<nn::Model>(
      train::BuildMlp(setup.config.model, setup.config.model_seed));
  const ps::TensorPlan plan =
      ps::TensorPlan::FromParams(model->Params(), tc.min_compress_elems);
  auto codec = std::shared_ptr<const compress::Compressor>(
      compress::MakeCompressor(tc.codec));
  ps::ParameterServer ps(*model, plan, codec, tc.optimizer);

  RpcServerConfig sc;
  sc.num_workers = tc.num_workers;
  sc.total_steps = tc.total_steps;
  sc.lr_max = tc.lr_max;
  sc.lr_min = tc.lr_min;
  sc.handshake_timeout_ms = 10000;
  sc.step_timeout_ms = 20000;
  sc.shutdown_timeout_ms = 10000;
  sc.block_codec = setup.block_codec;
  RpcServer server(sc, ps, codec->name());
  std::string error;
  EXPECT_TRUE(server.Listen(&error)) << error;

  bool server_ok = false;
  std::thread server_thread([&] { server_ok = server.Run(); });

  std::vector<std::thread> workers;
  std::vector<std::string> worker_errors(
      static_cast<std::size_t>(tc.num_workers));
  std::vector<char> worker_ok(static_cast<std::size_t>(tc.num_workers), 0);
  for (int w = 0; w < tc.num_workers; ++w) {
    workers.emplace_back([&, w] {
      worker_ok[static_cast<std::size_t>(w)] =
          RunOneWorker(setup, w, server.port(),
                       &worker_errors[static_cast<std::size_t>(w)])
              ? 1
              : 0;
    });
  }
  for (auto& t : workers) t.join();
  server_thread.join();

  EXPECT_TRUE(server_ok) << server.error();
  for (int w = 0; w < tc.num_workers; ++w) {
    EXPECT_TRUE(worker_ok[static_cast<std::size_t>(w)])
        << "worker " << w << ": "
        << worker_errors[static_cast<std::size_t>(w)];
  }
  EXPECT_EQ(server.steps_completed(), tc.total_steps);
  if (!server_ok) return nullptr;
  return model;
}

void ExpectTcpMatchesInProcess(const compress::CodecConfig& codec,
                               const std::string& block_codec = "store") {
  TestSetup setup = MakeTestSetup(/*num_workers=*/2, /*steps=*/6, codec);
  setup.block_codec = block_codec;
  std::unique_ptr<nn::Model> tcp_model = RunTcpTraining(setup);
  ASSERT_NE(tcp_model, nullptr);

  const train::MlpSpec spec = setup.config.model;
  const std::uint64_t model_seed = setup.config.model_seed;
  train::DistributedTrainer trainer(
      setup.config.trainer,
      [spec, model_seed] { return train::BuildMlp(spec, model_seed); },
      setup.data.train, setup.data.test);
  trainer.Run();

  EXPECT_TRUE(ModelsBitwiseEqual(*tcp_model, trainer.global_model()));
}

TEST(RpcRuntime, BitwiseIdenticalToInProcessWithFloat32Codec) {
  ExpectTcpMatchesInProcess(compress::CodecConfig::Float32());
}

TEST(RpcRuntime, BitwiseIdenticalToInProcessWith3lcCodec) {
  ExpectTcpMatchesInProcess(compress::CodecConfig::ThreeLC(1.0f));
}

// Wire parity for the second-stage block codec: wrapping every payload in
// the lz+rans envelope must not change a single model bit relative to the
// in-process trainer (and hence relative to a --block-codec store run,
// which the two tests above pin to the same trainer). Covers both tensor
// codecs: raw float32 frames and 3LC-compressed frames.
TEST(RpcRuntime, BlockCodecLzRansWireParityWithFloat32Codec) {
  ExpectTcpMatchesInProcess(compress::CodecConfig::Float32(), "lz+rans");
}

TEST(RpcRuntime, BlockCodecLzRansWireParityWith3lcCodec) {
  ExpectTcpMatchesInProcess(compress::CodecConfig::ThreeLC(1.0f), "lz+rans");
}

// Every registered non-store codec must hold wire parity, not just the
// composed one (a bug in either stage alone must not hide behind the
// other).
TEST(RpcRuntime, BlockCodecLzAndRansAloneWireParity) {
  ExpectTcpMatchesInProcess(compress::CodecConfig::ThreeLC(1.0f), "lz");
  ExpectTcpMatchesInProcess(compress::CodecConfig::ThreeLC(1.0f), "rans");
}

// A worker negotiating a different block codec than the server is a
// configuration error the handshake must reject loudly — silently mixing
// framed and bare payloads would corrupt training.
TEST(RpcRuntime, BlockCodecMismatchRejectedAtHandshake) {
  TestSetup setup =
      MakeTestSetup(1, 1, compress::CodecConfig::Float32());
  setup.block_codec = "lz+rans";
  nn::Model model =
      train::BuildMlp(setup.config.model, setup.config.model_seed);
  const ps::TensorPlan plan = ps::TensorPlan::FromParams(
      model.Params(), setup.config.trainer.min_compress_elems);
  auto codec = std::shared_ptr<const compress::Compressor>(
      compress::MakeCompressor(setup.config.trainer.codec));
  ps::ParameterServer ps(model, plan, codec, setup.config.trainer.optimizer);

  RpcServerConfig sc;
  sc.num_workers = 1;
  sc.total_steps = 1;
  sc.handshake_timeout_ms = 5000;
  sc.block_codec = "store";  // disagrees with the worker's lz+rans
  RpcServer server(sc, ps, codec->name());
  std::string error;
  ASSERT_TRUE(server.Listen(&error)) << error;

  bool server_ok = true;
  std::thread server_thread([&] { server_ok = server.Run(); });
  std::string worker_error;
  TestSetup worker_setup = setup;  // worker keeps lz+rans
  const bool worker_ok =
      RunOneWorker(worker_setup, 0, server.port(), &worker_error);
  server_thread.join();

  EXPECT_FALSE(server_ok);
  EXPECT_FALSE(worker_ok);
  EXPECT_NE(server.error().find("block-codec"), std::string::npos)
      << server.error();
}

TEST(RpcRuntime, PlanHashIsOrderStableAndCodecSensitive) {
  TestSetup setup =
      MakeTestSetup(1, 1, compress::CodecConfig::Float32());
  nn::Model model =
      train::BuildMlp(setup.config.model, setup.config.model_seed);
  const ps::TensorPlan plan = ps::TensorPlan::FromParams(
      model.Params(), setup.config.trainer.min_compress_elems);
  EXPECT_EQ(PlanHash(plan, "float32"), PlanHash(plan, "float32"));
  EXPECT_NE(PlanHash(plan, "float32"), PlanHash(plan, "3lc"));
}

// A server whose expected workers never show up must give up at the
// handshake deadline with a descriptive error, not hang.
TEST(RpcRuntime, HandshakeTimeoutFailsCleanly) {
  TestSetup setup = MakeTestSetup(1, 1, compress::CodecConfig::Float32());
  nn::Model model =
      train::BuildMlp(setup.config.model, setup.config.model_seed);
  const ps::TensorPlan plan = ps::TensorPlan::FromParams(
      model.Params(), setup.config.trainer.min_compress_elems);
  auto codec = std::shared_ptr<const compress::Compressor>(
      compress::MakeCompressor(setup.config.trainer.codec));
  ps::ParameterServer ps(model, plan, codec, setup.config.trainer.optimizer);

  RpcServerConfig sc;
  sc.num_workers = 1;
  sc.total_steps = 1;
  sc.handshake_timeout_ms = 200;
  RpcServer server(sc, ps, codec->name());
  std::string error;
  ASSERT_TRUE(server.Listen(&error)) << error;
  EXPECT_FALSE(server.Run());
  EXPECT_FALSE(server.error().empty());
  EXPECT_NE(server.error().find("handshake"), std::string::npos)
      << server.error();
}

// A client that connects and vanishes mid-run is a fatal fault: the BSP
// barrier can never complete, so the server reports it immediately.
TEST(RpcRuntime, RogueDisconnectFailsServerCleanly) {
  TestSetup setup = MakeTestSetup(2, 100, compress::CodecConfig::Float32());
  nn::Model model =
      train::BuildMlp(setup.config.model, setup.config.model_seed);
  const ps::TensorPlan plan = ps::TensorPlan::FromParams(
      model.Params(), setup.config.trainer.min_compress_elems);
  auto codec = std::shared_ptr<const compress::Compressor>(
      compress::MakeCompressor(setup.config.trainer.codec));
  ps::ParameterServer ps(model, plan, codec, setup.config.trainer.optimizer);

  RpcServerConfig sc;
  sc.num_workers = 2;
  sc.total_steps = 100;
  sc.handshake_timeout_ms = 5000;
  RpcServer server(sc, ps, codec->name());
  std::string error;
  ASSERT_TRUE(server.Listen(&error)) << error;

  bool server_ok = true;
  std::thread server_thread([&] { server_ok = server.Run(); });

  {
    RetryOptions retry;
    std::string connect_error;
    const int fd = ConnectWithRetry("127.0.0.1", server.port(), retry,
                                    nullptr, &connect_error);
    ASSERT_GE(fd, 0) << connect_error;
    Connection rogue(fd);
    // Say a valid-looking HELLO so the server counts us, then vanish.
    HandshakePayload payload;
    payload.worker_id = 0;
    payload.plan_hash = PlanHash(plan, codec->name());
    payload.codec = codec->name();
    util::ByteBuffer hello;
    EncodeHandshake(payload, /*rejoin=*/false, hello);
    ASSERT_TRUE(rogue.SendFrame(MsgType::kHello, 0, 0, hello.span()));
    ASSERT_EQ(rogue.FlushOutput(2000), Connection::IoResult::kOk);
    // Destructor closes the socket mid-handshake.
  }

  server_thread.join();
  EXPECT_FALSE(server_ok);
  EXPECT_FALSE(server.error().empty());
  EXPECT_EQ(server.steps_completed(), 0);
}

// Garbage bytes on the wire must surface as a frame error -> clean
// failure, never an OOM, crash, or hang.
TEST(RpcRuntime, CorruptedBytesFailServerCleanly) {
  TestSetup setup = MakeTestSetup(1, 1, compress::CodecConfig::Float32());
  nn::Model model =
      train::BuildMlp(setup.config.model, setup.config.model_seed);
  const ps::TensorPlan plan = ps::TensorPlan::FromParams(
      model.Params(), setup.config.trainer.min_compress_elems);
  auto codec = std::shared_ptr<const compress::Compressor>(
      compress::MakeCompressor(setup.config.trainer.codec));
  ps::ParameterServer ps(model, plan, codec, setup.config.trainer.optimizer);

  RpcServerConfig sc;
  sc.num_workers = 1;
  sc.total_steps = 1;
  sc.handshake_timeout_ms = 5000;
  RpcServer server(sc, ps, codec->name());
  std::string error;
  ASSERT_TRUE(server.Listen(&error)) << error;

  bool server_ok = true;
  std::thread server_thread([&] { server_ok = server.Run(); });

  {
    RetryOptions retry;
    std::string connect_error;
    const int fd = ConnectWithRetry("127.0.0.1", server.port(), retry,
                                    nullptr, &connect_error);
    ASSERT_GE(fd, 0) << connect_error;
    Connection rogue(fd);
    const char garbage[] = "GET /metricsz HTTP/1.1\r\n\r\n";
    ASSERT_GT(::send(rogue.fd(), garbage, sizeof(garbage) - 1, 0), 0);
    // Give the server's poll loop a moment to read + reject the bytes
    // before the socket closes, so the failure path exercised is the
    // parse error rather than the disconnect.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  server_thread.join();
  EXPECT_FALSE(server_ok);
  EXPECT_FALSE(server.error().empty());
}

// A worker built against a different plan/codec must be rejected at the
// handshake with an ERROR frame, before any payload is interpreted.
TEST(RpcRuntime, PlanHashMismatchRejectedAtHandshake) {
  TestSetup setup = MakeTestSetup(1, 1, compress::CodecConfig::Float32());
  nn::Model model =
      train::BuildMlp(setup.config.model, setup.config.model_seed);
  const ps::TensorPlan plan = ps::TensorPlan::FromParams(
      model.Params(), setup.config.trainer.min_compress_elems);
  auto codec = std::shared_ptr<const compress::Compressor>(
      compress::MakeCompressor(setup.config.trainer.codec));
  ps::ParameterServer ps(model, plan, codec, setup.config.trainer.optimizer);

  RpcServerConfig sc;
  sc.num_workers = 1;
  sc.total_steps = 1;
  sc.handshake_timeout_ms = 5000;
  RpcServer server(sc, ps, codec->name());
  std::string error;
  ASSERT_TRUE(server.Listen(&error)) << error;

  bool server_ok = true;
  std::thread server_thread([&] { server_ok = server.Run(); });

  RetryOptions retry;
  std::string connect_error;
  const int fd = ConnectWithRetry("127.0.0.1", server.port(), retry, nullptr,
                                  &connect_error);
  ASSERT_GE(fd, 0) << connect_error;
  Connection impostor(fd);
  HandshakePayload payload;
  payload.worker_id = 0;
  payload.plan_hash = 0xDEADBEEFu;  // not the server's plan hash
  payload.codec = codec->name();
  util::ByteBuffer hello;
  EncodeHandshake(payload, /*rejoin=*/false, hello);
  ASSERT_TRUE(impostor.SendFrame(MsgType::kHello, 0, 0, hello.span()));
  ASSERT_EQ(impostor.FlushOutput(2000), Connection::IoResult::kOk);

  Frame reply;
  const Connection::IoResult got = impostor.WaitFrame(&reply, 5000);
  if (got == Connection::IoResult::kOk) {
    EXPECT_EQ(reply.header.type, MsgType::kError);
  } else {
    // The server may have torn the connection down before the ERROR frame
    // was readable; a close is also an acceptable rejection.
    EXPECT_EQ(got, Connection::IoResult::kClosed);
  }
  impostor.Close();
  server_thread.join();
  EXPECT_FALSE(server_ok);
  EXPECT_NE(server.error().find("plan"), std::string::npos)
      << server.error();
}

// Worker side: a dead port exhausts its bounded retries and reports the
// connect failure; no server required.
TEST(RpcRuntime, WorkerFailsCleanlyAgainstDeadPort) {
  TestSetup setup = MakeTestSetup(1, 1, compress::CodecConfig::Float32());
  const train::TrainerConfig& tc = setup.config.trainer;
  nn::Model model =
      train::BuildMlp(setup.config.model, setup.config.model_seed);
  const ps::TensorPlan plan =
      ps::TensorPlan::FromParams(model.Params(), tc.min_compress_elems);
  auto codec = std::shared_ptr<const compress::Compressor>(
      compress::MakeCompressor(tc.codec));
  ps::Worker ps_worker(0, model, plan, codec);
  util::Rng seeder(tc.seed);
  util::Rng rng = seeder.Fork();
  data::Sampler sampler(setup.data.train, rng, tc.augment_noise);

  RpcWorkerConfig wc;
  wc.port = 1;  // reserved port, nothing listens
  wc.retry.max_attempts = 3;
  wc.retry.initial_backoff_ms = 1;
  wc.retry.max_backoff_ms = 2;
  RpcWorker worker(wc, ps_worker, plan, codec->name(), std::move(sampler));
  EXPECT_FALSE(worker.Run());
  EXPECT_FALSE(worker.error().empty());
  EXPECT_EQ(worker.steps_run(), 0);
}

}  // namespace
}  // namespace threelc::rpc
