// Tests for synthetic dataset generation and batching.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "tensor/tensor_ops.h"

namespace threelc::data {
namespace {

SyntheticConfig SmallConfig() {
  SyntheticConfig cfg;
  cfg.num_train = 512;
  cfg.num_test = 128;
  cfg.input_dim = 16;
  cfg.num_classes = 4;
  cfg.teacher_hidden = 8;
  cfg.seed = 99;
  return cfg;
}

TEST(TeacherDataset, ShapesMatchConfig) {
  auto data = MakeTeacherDataset(SmallConfig());
  EXPECT_EQ(data.train.size(), 512);
  EXPECT_EQ(data.test.size(), 128);
  EXPECT_EQ(data.train.inputs.shape(), tensor::Shape({512, 16}));
  EXPECT_EQ(data.train.labels.size(), 512u);
}

TEST(TeacherDataset, LabelsInRange) {
  auto data = MakeTeacherDataset(SmallConfig());
  for (auto l : data.train.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 4);
  }
}

TEST(TeacherDataset, AllClassesRepresented) {
  auto cfg = SmallConfig();
  cfg.num_train = 2048;
  auto data = MakeTeacherDataset(cfg);
  std::set<std::int32_t> seen(data.train.labels.begin(),
                              data.train.labels.end());
  EXPECT_GE(seen.size(), 3u);  // teacher may starve at most one class
}

TEST(TeacherDataset, DeterministicForSameSeed) {
  auto a = MakeTeacherDataset(SmallConfig());
  auto b = MakeTeacherDataset(SmallConfig());
  EXPECT_EQ(tensor::MaxAbsDiff(a.train.inputs, b.train.inputs), 0.0f);
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(TeacherDataset, DifferentSeedsDiffer) {
  auto cfg = SmallConfig();
  auto a = MakeTeacherDataset(cfg);
  cfg.seed = 100;
  auto b = MakeTeacherDataset(cfg);
  EXPECT_GT(tensor::MaxAbsDiff(a.train.inputs, b.train.inputs), 0.0f);
}

TEST(TeacherDataset, TrainAndTestShareDistributionButNotExamples) {
  auto data = MakeTeacherDataset(SmallConfig());
  // First train and test examples differ (fresh draws).
  float diff = 0.0f;
  for (int j = 0; j < 16; ++j) {
    diff += std::fabs(data.train.inputs[static_cast<std::size_t>(j)] -
                      data.test.inputs[static_cast<std::size_t>(j)]);
  }
  EXPECT_GT(diff, 0.0f);
}

TEST(TeacherDataset, LabelNoiseChangesLabels) {
  auto cfg = SmallConfig();
  cfg.label_noise = 0.0f;
  auto clean = MakeTeacherDataset(cfg);
  cfg.label_noise = 0.5f;
  auto noisy = MakeTeacherDataset(cfg);
  int diffs = 0;
  for (std::size_t i = 0; i < clean.train.labels.size(); ++i) {
    diffs += (clean.train.labels[i] != noisy.train.labels[i]);
  }
  EXPECT_GT(diffs, 50);
}

TEST(AsImages, ReshapesWithoutChangingData) {
  auto cfg = SmallConfig();
  cfg.input_dim = 48;  // 3 x 4 x 4
  auto data = MakeTeacherDataset(cfg);
  Dataset images = AsImages(data.train, 3, 4, 4);
  EXPECT_EQ(images.inputs.shape(), tensor::Shape({512, 3, 4, 4}));
  EXPECT_EQ(images.inputs[7], data.train.inputs[7]);
  EXPECT_EQ(images.labels, data.train.labels);
}

TEST(TwoSpirals, BinaryLabelsAndTwoDims) {
  auto data = MakeTwoSpirals(100, 50, 1);
  EXPECT_EQ(data.train.inputs.shape(), tensor::Shape({100, 2}));
  for (auto l : data.train.labels) EXPECT_TRUE(l == 0 || l == 1);
}

// ---------- Sampler ----------

TEST(Sampler, BatchHasRequestedSize) {
  auto data = MakeTeacherDataset(SmallConfig());
  Sampler sampler(data.train, util::Rng(1), 0.0f);
  Batch b = sampler.Next(32);
  EXPECT_EQ(b.inputs.shape(), tensor::Shape({32, 16}));
  EXPECT_EQ(b.labels.size(), 32u);
}

TEST(Sampler, ExamplesComeFromDataset) {
  auto data = MakeTeacherDataset(SmallConfig());
  Sampler sampler(data.train, util::Rng(2), 0.0f);
  Batch b = sampler.Next(8);
  // Each batch row must exactly match some dataset row (no augmentation).
  for (int i = 0; i < 8; ++i) {
    bool found = false;
    for (std::int64_t r = 0; r < data.train.size() && !found; ++r) {
      bool same = true;
      for (int j = 0; j < 16 && same; ++j) {
        same = b.inputs[static_cast<std::size_t>(i * 16 + j)] ==
               data.train.inputs[static_cast<std::size_t>(r * 16 + j)];
      }
      if (same &&
          b.labels[static_cast<std::size_t>(i)] ==
              data.train.labels[static_cast<std::size_t>(r)]) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "row " << i;
  }
}

TEST(Sampler, AugmentationPerturbsInputs) {
  auto data = MakeTeacherDataset(SmallConfig());
  Sampler a(data.train, util::Rng(3), 0.0f);
  Sampler b(data.train, util::Rng(3), 0.5f);
  Batch ba = a.Next(16);
  Batch bb = b.Next(16);
  // Same RNG seed draws the same examples; augmentation adds noise on top.
  EXPECT_EQ(ba.labels, bb.labels);
  EXPECT_GT(tensor::MaxAbsDiff(ba.inputs, bb.inputs), 0.0f);
}

TEST(Sampler, DeterministicGivenSeed) {
  auto data = MakeTeacherDataset(SmallConfig());
  Sampler a(data.train, util::Rng(4), 0.1f);
  Sampler b(data.train, util::Rng(4), 0.1f);
  Batch ba = a.Next(8);
  Batch bb = b.Next(8);
  EXPECT_EQ(tensor::MaxAbsDiff(ba.inputs, bb.inputs), 0.0f);
  EXPECT_EQ(ba.labels, bb.labels);
}

// ---------- EvalBatches ----------

TEST(EvalBatches, CoversWholeDatasetInOrder) {
  auto data = MakeTeacherDataset(SmallConfig());
  auto batches = EvalBatches(data.test, 50);
  EXPECT_EQ(batches.size(), 3u);  // 50 + 50 + 28
  EXPECT_EQ(batches[0].inputs.shape().dim(0), 50);
  EXPECT_EQ(batches[2].inputs.shape().dim(0), 28);
  std::size_t total = 0;
  for (const auto& b : batches) total += b.labels.size();
  EXPECT_EQ(total, 128u);
  // First element of second batch is dataset row 50.
  EXPECT_EQ(batches[1].labels[0], data.test.labels[50]);
  EXPECT_EQ(batches[1].inputs[0],
            data.test.inputs[static_cast<std::size_t>(50 * 16)]);
}

TEST(EvalBatches, ExactDivision) {
  auto data = MakeTeacherDataset(SmallConfig());
  auto batches = EvalBatches(data.test, 64);
  EXPECT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[1].inputs.shape().dim(0), 64);
}

}  // namespace
}  // namespace threelc::data
