// Embedded HTTP server: request-line parsing, routing and error mapping
// (400/404/405/431), response formatting, partial (byte-by-byte) reads over
// real sockets, and the full Telemetry endpoint integration — /metricsz
// exposition, /healthz flipping to 503 after a NaN loss, /statusz and
// /flightz JSON.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>

#include "json_validator.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/http_server.h"
#include "obs/telemetry.h"

namespace threelc::obs {
namespace {

using testutil::JsonValidator;

// Blocking test client: connect to 127.0.0.1:port, send `request` in
// chunks of `chunk` bytes, read until the server closes.
std::string Fetch(int port, const std::string& request,
                  std::size_t chunk = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect failed";
    return "";
  }
  if (chunk == 0) chunk = request.size();
  for (std::size_t off = 0; off < request.size(); off += chunk) {
    const std::size_t n = std::min(chunk, request.size() - off);
    EXPECT_EQ(::send(fd, request.data() + off, n, 0),
              static_cast<ssize_t>(n));
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(int port, const std::string& path, std::size_t chunk = 0) {
  return Fetch(port,
               "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n", chunk);
}

std::string BodyOf(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

// --- Pure parsing / formatting (no sockets) --------------------------------

TEST(HttpParseTest, AcceptsWellFormedRequestLines) {
  std::string method, path;
  ASSERT_TRUE(
      HttpServer::ParseRequestLine("GET /metricsz HTTP/1.1", &method, &path));
  EXPECT_EQ(method, "GET");
  EXPECT_EQ(path, "/metricsz");
  ASSERT_TRUE(
      HttpServer::ParseRequestLine("HEAD / HTTP/1.0", &method, &path));
  EXPECT_EQ(method, "HEAD");
  EXPECT_EQ(path, "/");
}

TEST(HttpParseTest, StripsQueryString) {
  std::string method, path;
  ASSERT_TRUE(HttpServer::ParseRequestLine(
      "GET /statusz?pretty=1&x=2 HTTP/1.1", &method, &path));
  EXPECT_EQ(path, "/statusz");
}

TEST(HttpParseTest, RejectsMalformedRequestLines) {
  std::string method, path;
  EXPECT_FALSE(HttpServer::ParseRequestLine("", &method, &path));
  EXPECT_FALSE(HttpServer::ParseRequestLine("GET", &method, &path));
  EXPECT_FALSE(HttpServer::ParseRequestLine("GET /x", &method, &path));
  EXPECT_FALSE(
      HttpServer::ParseRequestLine("GET /x HTTP/1.1 extra", &method, &path));
  EXPECT_FALSE(
      HttpServer::ParseRequestLine("GET /x FTP/1.1", &method, &path));
  EXPECT_FALSE(
      HttpServer::ParseRequestLine("GET no-leading-slash HTTP/1.1", &method,
                                   &path));
  EXPECT_FALSE(HttpServer::ParseRequestLine("GET  /x HTTP/1.1",  // 2 spaces
                                            &method, &path));
}

TEST(HttpRoutingTest, MapsErrorsWithoutSockets) {
  HttpServer server;
  server.Handle("/ok", [] {
    return HttpResponse{200, "text/plain", "fine\n"};
  });
  EXPECT_NE(server.ResponseFor("garbage\r\n").find("400 Bad Request"),
            std::string::npos);
  EXPECT_NE(
      server.ResponseFor("POST /ok HTTP/1.1\r\n").find("405 Method Not"),
      std::string::npos);
  EXPECT_NE(server.ResponseFor("GET /nope HTTP/1.1\r\n").find("404 Not"),
            std::string::npos);
  const std::string ok = server.ResponseFor("GET /ok HTTP/1.1\r\n");
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_NE(ok.find("fine\n"), std::string::npos);
  // HEAD: same status and headers, no body.
  const std::string head = server.ResponseFor("HEAD /ok HTTP/1.1\r\n");
  EXPECT_NE(head.find("200 OK"), std::string::npos);
  EXPECT_NE(head.find("Content-Length: 5"), std::string::npos);
  EXPECT_EQ(BodyOf(head), "");
}

TEST(HttpFormatTest, ResponseCarriesHeadersAndLength) {
  HttpResponse response{200, "application/json", "{\"a\":1}"};
  const std::string out = HttpServer::FormatResponse(response, true);
  EXPECT_EQ(out.find("HTTP/1.1 200 OK\r\n"), 0u);
  EXPECT_NE(out.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_NE(out.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(out.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(BodyOf(out), "{\"a\":1}");
}

// --- Real sockets ----------------------------------------------------------

class LiveServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_.Handle("/hello", [] {
      return HttpResponse{200, "text/plain", "hi\n"};
    });
    ASSERT_TRUE(server_.Start(0));  // ephemeral port
    ASSERT_GT(server_.port(), 0);
  }
  HttpServer server_;
};

TEST_F(LiveServerTest, ServesRegisteredPath) {
  const std::string response = Get(server_.port(), "/hello");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_EQ(BodyOf(response), "hi\n");
}

TEST_F(LiveServerTest, HandlesByteByByteRequests) {
  // TCP does not respect message boundaries; the reader must accumulate
  // until the blank line even when every byte is its own segment.
  const std::string response = Get(server_.port(), "/hello", /*chunk=*/1);
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_EQ(BodyOf(response), "hi\n");
}

TEST_F(LiveServerTest, UnknownPathIs404) {
  const std::string response = Get(server_.port(), "/metricz-typo");
  EXPECT_NE(response.find("404 Not Found"), std::string::npos);
}

TEST_F(LiveServerTest, OversizedRequestIs431) {
  const std::string huge =
      "GET /hello HTTP/1.1\r\nX-Pad: " +
      std::string(HttpServer::kMaxRequestBytes, 'a') + "\r\n\r\n";
  const std::string response = Fetch(server_.port(), huge);
  EXPECT_NE(response.find("431 "), std::string::npos) << response;
}

TEST_F(LiveServerTest, StopIsIdempotentAndStopsServing) {
  server_.Stop();
  server_.Stop();
  EXPECT_FALSE(server_.running());
}

// --- Full Telemetry integration --------------------------------------------

TEST(TelemetryMonitoringTest, NoMonitoringMeansNoServerAndNoRecorder) {
  TelemetryOptions options;  // nothing enabled
  Telemetry telemetry(options);
  EXPECT_EQ(telemetry.http_server(), nullptr);
  EXPECT_EQ(telemetry.flight_recorder(), nullptr);
  EXPECT_EQ(telemetry.health(), nullptr);
}

TEST(TelemetryMonitoringTest, EndpointsServeAndHealthzFlipsOnNanLoss) {
  TelemetryOptions options;
  options.metrics_port = 0;  // ephemeral
  options.flight_path = ::testing::TempDir() + "http_test_flight.jsonl";
  Telemetry telemetry(options);
  ASSERT_NE(telemetry.http_server(), nullptr);
  const int port = telemetry.http_server()->port();
  ASSERT_GT(port, 0);

  StepTelemetry step;
  step.step = 1;
  step.loss = 0.5;
  step.push_bits_per_value = 1.2;
  telemetry.metrics().counter("traffic/push_bytes")->Add(512.0);
  telemetry.LogStep(step);

  // /healthz: healthy run.
  EXPECT_NE(Get(port, "/healthz").find("200 OK"), std::string::npos);

  // /metricsz: Prometheus exposition with the sanitized counter.
  const std::string metrics = Get(port, "/metricsz");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("threelc_traffic_push_bytes_total 512"),
            std::string::npos)
      << metrics;

  // /statusz: live JSON with the last step.
  const std::string status = BodyOf(Get(port, "/statusz"));
  EXPECT_TRUE(JsonValidator(status).Valid()) << status;
  EXPECT_NE(status.find("\"step\":1"), std::string::npos);
  EXPECT_NE(status.find("\"healthy\":true"), std::string::npos);

  // /flightz: the ring as JSON.
  const std::string flight = BodyOf(Get(port, "/flightz"));
  EXPECT_TRUE(JsonValidator(flight).Valid()) << flight;
  EXPECT_NE(flight.find("\"entries\":["), std::string::npos);
  EXPECT_NE(flight.find("\"step\":1"), std::string::npos);

  // NaN loss: watchdog fires, /healthz flips to 503, the error dump exists.
  step.step = 2;
  step.loss = std::numeric_limits<double>::quiet_NaN();
  telemetry.LogStep(step);
  const std::string unhealthy = Get(port, "/healthz");
  EXPECT_NE(unhealthy.find("503 "), std::string::npos);
  EXPECT_NE(unhealthy.find("nonfinite_loss"), std::string::npos);
  std::ifstream dump(options.flight_path);
  EXPECT_TRUE(dump.good());
  std::string line, last;
  std::size_t lines = 0;
  while (std::getline(dump, line)) {
    ++lines;
    EXPECT_TRUE(JsonValidator(line).Valid()) << line;
    last = line;
  }
  // Both steps and the health event made it into the black box.
  EXPECT_GE(lines, 3u);
  EXPECT_NE(last.find("\"type\":\"health_event\""), std::string::npos);
  std::remove(options.flight_path.c_str());
}

TEST(TelemetryMonitoringTest, FlightPathAloneEnablesRecorderNotServer) {
  TelemetryOptions options;
  options.flight_path = ::testing::TempDir() + "http_test_flight2.jsonl";
  {
    Telemetry telemetry(options);
    EXPECT_EQ(telemetry.http_server(), nullptr);
    ASSERT_NE(telemetry.flight_recorder(), nullptr);
    ASSERT_NE(telemetry.health(), nullptr);
    StepTelemetry step;
    step.step = 7;
    step.loss = 0.25;
    telemetry.LogStep(step);
  }  // destructor flushes -> on-demand dump
  std::ifstream dump(options.flight_path);
  ASSERT_TRUE(dump.good());
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(dump, line)));
  EXPECT_TRUE(JsonValidator(line).Valid()) << line;
  EXPECT_NE(line.find("\"step\":7"), std::string::npos);
  std::remove(options.flight_path.c_str());
}

}  // namespace
}  // namespace threelc::obs
