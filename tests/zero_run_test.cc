// Unit and property tests for zero-run encoding (paper §3.3).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "compress/quartic.h"
#include "compress/zero_run.h"
#include "util/rng.h"

namespace threelc::compress {
namespace {

util::ByteBuffer Bytes(std::initializer_list<int> vals) {
  util::ByteBuffer buf;
  for (int v : vals) buf.PushByte(static_cast<std::uint8_t>(v));
  return buf;
}

std::vector<std::uint8_t> Decode(util::ByteSpan encoded, std::size_t max_out) {
  util::ByteBuffer out;
  ZeroRunDecode(encoded, out, max_out);
  return std::vector<std::uint8_t>(out.data(), out.data() + out.size());
}

TEST(ZeroRun, EmptyInputYieldsEmptyOutput) {
  util::ByteBuffer out;
  EXPECT_EQ(ZeroRunEncode(util::ByteSpan{}, out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(ZeroRun, NonZeroBytesPassThrough) {
  auto in = Bytes({0, 50, 113, 242});
  util::ByteBuffer out;
  ZeroRunEncode(in.span(), out);
  EXPECT_EQ(out, in);
}

TEST(ZeroRun, SingleZeroBytePassesThrough) {
  auto in = Bytes({113, 121, 50});
  util::ByteBuffer out;
  ZeroRunEncode(in.span(), out);
  EXPECT_EQ(out, in);
}

TEST(ZeroRun, RunOfTwoBecomesByte243) {
  auto in = Bytes({121, 121});
  util::ByteBuffer out;
  ZeroRunEncode(in.span(), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.data()[0], 243);
}

TEST(ZeroRun, RunOfFourteenBecomesByte255) {
  util::ByteBuffer in;
  for (int i = 0; i < 14; ++i) in.PushByte(kQuarticZeroByte);
  util::ByteBuffer out;
  ZeroRunEncode(in.span(), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.data()[0], 255);
}

TEST(ZeroRun, RunLengthEncodingFormula) {
  // k consecutive 121s (2 <= k <= 14) -> single byte 243 + (k-2).
  for (int k = 2; k <= 14; ++k) {
    util::ByteBuffer in;
    for (int i = 0; i < k; ++i) in.PushByte(kQuarticZeroByte);
    util::ByteBuffer out;
    ZeroRunEncode(in.span(), out);
    ASSERT_EQ(out.size(), 1u) << "k=" << k;
    EXPECT_EQ(out.data()[0], 243 + (k - 2)) << "k=" << k;
  }
}

TEST(ZeroRun, FifteenSplitsIntoFourteenPlusLiteral) {
  util::ByteBuffer in;
  for (int i = 0; i < 15; ++i) in.PushByte(kQuarticZeroByte);
  util::ByteBuffer out;
  ZeroRunEncode(in.span(), out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.data()[0], 255);
  EXPECT_EQ(out.data()[1], kQuarticZeroByte);
}

TEST(ZeroRun, SixteenSplitsIntoFourteenPlusTwo) {
  util::ByteBuffer in;
  for (int i = 0; i < 16; ++i) in.PushByte(kQuarticZeroByte);
  util::ByteBuffer out;
  ZeroRunEncode(in.span(), out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.data()[0], 255);
  EXPECT_EQ(out.data()[1], 243);
}

TEST(ZeroRun, PaperFigureExample) {
  // Figure 3 step (4): 113 121 121 121 ... -> 113 244 ... (run of 3 -> 244).
  auto in = Bytes({113, 121, 121, 121});
  util::ByteBuffer out;
  ZeroRunEncode(in.span(), out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.data()[0], 113);
  EXPECT_EQ(out.data()[1], 244);
}

TEST(ZeroRun, MixedRunsAndLiterals) {
  auto in = Bytes({121, 121, 7, 121, 121, 121, 121, 9, 121});
  util::ByteBuffer out;
  ZeroRunEncode(in.span(), out);
  const std::vector<std::uint8_t> expected = {243, 7, 245, 9, 121};
  ASSERT_EQ(out.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(out.data()[i], expected[i]) << "at " << i;
  }
}

TEST(ZeroRun, NeverExpands) {
  util::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    util::ByteBuffer in;
    const std::size_t n = 1 + rng.Below(500);
    for (std::size_t i = 0; i < n; ++i) {
      // Mix of zero-groups and arbitrary quartic bytes.
      in.PushByte(rng.Bernoulli(0.5)
                      ? kQuarticZeroByte
                      : static_cast<std::uint8_t>(rng.Below(243)));
    }
    util::ByteBuffer out;
    ZeroRunEncode(in.span(), out);
    EXPECT_LE(out.size(), in.size());
  }
}

TEST(ZeroRunDecode, ExpandsRunBytes) {
  auto in = Bytes({244});  // run of 3
  auto decoded = Decode(in.span(), 100);
  EXPECT_EQ(decoded, std::vector<std::uint8_t>(3, kQuarticZeroByte));
}

TEST(ZeroRunDecode, OverflowGuardThrows) {
  auto in = Bytes({255});  // expands to 14 bytes
  util::ByteBuffer out;
  EXPECT_THROW(ZeroRunDecode(in.span(), out, 13), std::runtime_error);
}

TEST(ZeroRunDecode, LiteralOverflowGuardThrows) {
  auto in = Bytes({1, 2, 3});
  util::ByteBuffer out;
  EXPECT_THROW(ZeroRunDecode(in.span(), out, 2), std::runtime_error);
}

// ---------- Round-trip properties ----------

class ZeroRunDensitySweep : public ::testing::TestWithParam<double> {};

TEST_P(ZeroRunDensitySweep, RoundTripIdentity) {
  const double zero_prob = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(zero_prob * 1000) + 1);
  for (int trial = 0; trial < 20; ++trial) {
    util::ByteBuffer in;
    const std::size_t n = rng.Below(2000);
    for (std::size_t i = 0; i < n; ++i) {
      in.PushByte(rng.Bernoulli(zero_prob)
                      ? kQuarticZeroByte
                      : static_cast<std::uint8_t>(rng.Below(243)));
    }
    util::ByteBuffer encoded;
    ZeroRunEncode(in.span(), encoded);
    auto decoded = Decode(encoded.span(), n);
    ASSERT_EQ(decoded.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(decoded[i], in.data()[i]) << "at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ZeroDensities, ZeroRunDensitySweep,
                         ::testing::Values(0.0, 0.1, 0.5, 0.9, 0.99, 1.0));

TEST(ZeroRun, AllZeroGroupsCompressFourteenFold) {
  // 14 * k zero-bytes compress to k bytes — the source of the 280x
  // hypothetical in §3.3 (32 bits -> 1.6 bits quartic -> /14 ZRE).
  util::ByteBuffer in;
  for (int i = 0; i < 14 * 100; ++i) in.PushByte(kQuarticZeroByte);
  util::ByteBuffer out;
  ZeroRunEncode(in.span(), out);
  EXPECT_EQ(out.size(), 100u);
}

TEST(ZeroRun, EncodedValuesStayInByteRange) {
  // Run bytes are 243..255; literals 0..242 — everything fits one byte and
  // run bytes never collide with quartic output.
  util::Rng rng(77);
  util::ByteBuffer in;
  for (int i = 0; i < 5000; ++i) {
    in.PushByte(rng.Bernoulli(0.8) ? kQuarticZeroByte
                                   : static_cast<std::uint8_t>(rng.Below(243)));
  }
  util::ByteBuffer out;
  ZeroRunEncode(in.span(), out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint8_t b = out.data()[i];
    EXPECT_TRUE(b <= kQuarticMaxByte || (b >= 243));
  }
}

}  // namespace
}  // namespace threelc::compress
