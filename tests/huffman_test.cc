// Tests for the canonical Huffman coder (the entropy-coding comparator of
// paper §3.3).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "compress/huffman.h"
#include "compress/quantize3.h"
#include "compress/quartic.h"
#include "util/rng.h"

namespace threelc::compress {
namespace {

util::ByteBuffer FromString(const std::string& s) {
  util::ByteBuffer buf;
  buf.Append(s.data(), s.size());
  return buf;
}

std::vector<std::uint8_t> RoundTripBytes(util::ByteSpan in) {
  util::ByteBuffer encoded;
  HuffmanEncode(in, encoded);
  util::ByteReader reader(encoded);
  util::ByteBuffer decoded;
  HuffmanDecode(reader, decoded, in.size());
  EXPECT_TRUE(reader.AtEnd());
  return std::vector<std::uint8_t>(decoded.data(),
                                   decoded.data() + decoded.size());
}

TEST(Huffman, EmptyInput) {
  util::ByteBuffer in;
  auto out = RoundTripBytes(in.span());
  EXPECT_TRUE(out.empty());
}

TEST(Huffman, SingleByte) {
  auto in = FromString("A");
  auto out = RoundTripBytes(in.span());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 'A');
}

TEST(Huffman, SingleSymbolRun) {
  auto in = FromString(std::string(1000, 'z'));
  auto out = RoundTripBytes(in.span());
  ASSERT_EQ(out.size(), 1000u);
  for (auto b : out) EXPECT_EQ(b, 'z');
}

TEST(Huffman, TextRoundTrip) {
  const std::string text =
      "the quick brown fox jumps over the lazy dog, repeatedly: "
      "the quick brown fox jumps over the lazy dog.";
  auto in = FromString(text);
  auto out = RoundTripBytes(in.span());
  ASSERT_EQ(out.size(), text.size());
  EXPECT_EQ(std::string(out.begin(), out.end()), text);
}

TEST(Huffman, RandomBytesRoundTrip) {
  util::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    util::ByteBuffer in;
    const std::size_t n = rng.Below(5000);
    for (std::size_t i = 0; i < n; ++i) {
      in.PushByte(static_cast<std::uint8_t>(rng.Below(256)));
    }
    auto out = RoundTripBytes(in.span());
    ASSERT_EQ(out.size(), n);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], in.data()[i]);
  }
}

TEST(Huffman, SkewedDistributionCompresses) {
  // 95% zeros: entropy well under 1 bit/byte -> large compression.
  util::Rng rng(4);
  util::ByteBuffer in;
  for (int i = 0; i < 20000; ++i) {
    in.PushByte(rng.Bernoulli(0.95) ? 0 : static_cast<std::uint8_t>(rng.Below(8)));
  }
  util::ByteBuffer encoded;
  HuffmanEncode(in.span(), encoded);
  EXPECT_LT(encoded.size(), in.size() / 4);
  auto out = RoundTripBytes(in.span());
  EXPECT_EQ(out.size(), in.size());
}

TEST(Huffman, ApproachesEntropyOnLargeSkewedInput) {
  util::Rng rng(5);
  util::ByteBuffer in;
  const std::size_t n = 100000;
  for (std::size_t i = 0; i < n; ++i) {
    in.PushByte(rng.Bernoulli(0.8) ? 121
                                   : static_cast<std::uint8_t>(rng.Below(243)));
  }
  const double entropy_bits = ByteEntropyBits(in.span());
  util::ByteBuffer encoded;
  HuffmanEncode(in.span(), encoded);
  const double actual_bits =
      8.0 * static_cast<double>(encoded.size()) / static_cast<double>(n);
  // Huffman is within 1 bit/symbol of entropy; header adds ~265 bytes.
  EXPECT_LT(actual_bits, entropy_bits + 0.6 + 8.0 * 300.0 / n);
  EXPECT_GE(actual_bits, entropy_bits * 0.99);
}

TEST(Huffman, QuarticStreamRoundTrip) {
  // The real use: compressing quartic bytes from quantized gradients.
  util::Rng rng(6);
  std::vector<float> values(50000);
  for (auto& v : values) v = rng.NormalFloat(0.0f, 0.01f);
  std::vector<std::int8_t> ternary(values.size());
  Quantize3(values.data(), values.size(), 1.75f, ternary.data());
  util::ByteBuffer quartic;
  QuarticEncode(ternary.data(), ternary.size(), quartic);
  auto out = RoundTripBytes(quartic.span());
  ASSERT_EQ(out.size(), quartic.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], quartic.data()[i]);
  }
}

TEST(Huffman, DecodeRejectsOversizedOutput) {
  auto in = FromString("hello world");
  util::ByteBuffer encoded;
  HuffmanEncode(in.span(), encoded);
  util::ByteReader reader(encoded);
  util::ByteBuffer decoded;
  EXPECT_THROW(HuffmanDecode(reader, decoded, 3), std::runtime_error);
}

TEST(Huffman, DecodeRejectsTruncatedPayload) {
  auto in = FromString("some reasonably long test payload for truncation");
  util::ByteBuffer encoded;
  HuffmanEncode(in.span(), encoded);
  util::ByteBuffer truncated;
  truncated.Append(encoded.data(), encoded.size() - 3);
  util::ByteReader reader(truncated);
  util::ByteBuffer decoded;
  EXPECT_THROW(HuffmanDecode(reader, decoded, in.size()),
               std::exception);
}

TEST(Huffman, ConsumesExactlyOnePayload) {
  auto a = FromString("first payload");
  auto b = FromString("and the second");
  util::ByteBuffer encoded;
  HuffmanEncode(a.span(), encoded);
  HuffmanEncode(b.span(), encoded);
  util::ByteReader reader(encoded);
  util::ByteBuffer out;
  HuffmanDecode(reader, out, 100);
  EXPECT_EQ(out.size(), a.size());
  HuffmanDecode(reader, out, 100);
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(out.size(), a.size() + b.size());
}

TEST(ByteEntropy, KnownValues) {
  // Uniform over 256 symbols -> 8 bits.
  util::ByteBuffer uniform;
  for (int i = 0; i < 256; ++i) {
    uniform.PushByte(static_cast<std::uint8_t>(i));
  }
  EXPECT_NEAR(ByteEntropyBits(uniform.span()), 8.0, 1e-9);
  // Single symbol -> 0 bits.
  auto constant = FromString(std::string(100, 'x'));
  EXPECT_NEAR(ByteEntropyBits(constant.span()), 0.0, 1e-9);
  // Two equiprobable symbols -> 1 bit.
  util::ByteBuffer two;
  for (int i = 0; i < 100; ++i) two.PushByte(i % 2 ? 7 : 9);
  EXPECT_NEAR(ByteEntropyBits(two.span()), 1.0, 1e-9);
}

class HuffmanDensitySweep : public ::testing::TestWithParam<double> {};

TEST_P(HuffmanDensitySweep, RoundTripAtDensity) {
  const double zero_prob = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(zero_prob * 997) + 11);
  util::ByteBuffer in;
  for (int i = 0; i < 10000; ++i) {
    in.PushByte(rng.Bernoulli(zero_prob)
                    ? 121
                    : static_cast<std::uint8_t>(rng.Below(243)));
  }
  auto out = RoundTripBytes(in.span());
  ASSERT_EQ(out.size(), 10000u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], in.data()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, HuffmanDensitySweep,
                         ::testing::Values(0.0, 0.3, 0.7, 0.95, 1.0));

}  // namespace
}  // namespace threelc::compress
