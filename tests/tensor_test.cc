// Unit tests for Shape, Tensor, and the vectorizable kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/shape.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace threelc::tensor {
namespace {

// ---------- Shape ----------

TEST(Shape, DefaultIsScalar) {
  Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.num_elements(), 1);
}

TEST(Shape, NumElementsIsProduct) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.num_elements(), 24);
}

TEST(Shape, ZeroDimensionMeansEmpty) {
  Shape s{4, 0, 2};
  EXPECT_EQ(s.num_elements(), 0);
}

TEST(Shape, EqualityComparesDims) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(Shape, RowMajorOffset) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.Offset({0, 0, 0}), 0);
  EXPECT_EQ(s.Offset({0, 0, 3}), 3);
  EXPECT_EQ(s.Offset({0, 1, 0}), 4);
  EXPECT_EQ(s.Offset({1, 0, 0}), 12);
  EXPECT_EQ(s.Offset({1, 2, 3}), 23);
}

TEST(Shape, ToStringFormat) {
  EXPECT_EQ(Shape({3, 16}).ToString(), "[3, 16]");
  EXPECT_EQ(Shape().ToString(), "[]");
}

// ---------- Tensor ----------

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{3, 3});
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FullFillsValue) {
  Tensor t = Tensor::Full(Shape{5}, 2.5f);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, FromVectorIsOneD) {
  Tensor t = Tensor::FromVector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.shape(), Shape({3}));
  EXPECT_EQ(t[1], 2.0f);
}

TEST(Tensor, MultiIndexAccess) {
  Tensor t(Shape{2, 3});
  t.at({1, 2}) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  EXPECT_EQ(t.at({1, 2}), 7.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshaped(Shape{2, 3});
  EXPECT_EQ(r.at({1, 0}), 4.0f);
  EXPECT_EQ(r.num_elements(), 6);
}

TEST(Tensor, ByteSizeIsFourPerElement) {
  Tensor t(Shape{10});
  EXPECT_EQ(t.byte_size(), 40u);
}

TEST(Tensor, CopyIsDeep) {
  Tensor a = Tensor::FromVector({1, 2});
  Tensor b = a;
  b[0] = 9;
  EXPECT_EQ(a[0], 1.0f);
}

// ---------- Elementwise kernels ----------

TEST(TensorOps, AddElementwise) {
  Tensor a = Tensor::FromVector({1, 2, 3});
  Tensor b = Tensor::FromVector({10, 20, 30});
  Add(a, b);
  EXPECT_EQ(a[0], 11.0f);
  EXPECT_EQ(a[2], 33.0f);
}

TEST(TensorOps, SubElementwise) {
  Tensor a = Tensor::FromVector({5, 5});
  Tensor b = Tensor::FromVector({2, 7});
  Sub(a, b);
  EXPECT_EQ(a[0], 3.0f);
  EXPECT_EQ(a[1], -2.0f);
}

TEST(TensorOps, AxpyAccumulatesScaled) {
  Tensor a = Tensor::FromVector({1, 1});
  Tensor b = Tensor::FromVector({2, 4});
  Axpy(a, 0.5f, b);
  EXPECT_EQ(a[0], 2.0f);
  EXPECT_EQ(a[1], 3.0f);
}

TEST(TensorOps, ScaleMultiplies) {
  Tensor a = Tensor::FromVector({2, -4});
  Scale(a, -1.5f);
  EXPECT_EQ(a[0], -3.0f);
  EXPECT_EQ(a[1], 6.0f);
}

TEST(TensorOps, MulElementwise) {
  Tensor a = Tensor::FromVector({2, 3});
  Tensor b = Tensor::FromVector({-1, 4});
  Mul(a, b);
  EXPECT_EQ(a[0], -2.0f);
  EXPECT_EQ(a[1], 12.0f);
}

TEST(TensorOps, DifferenceAllocates) {
  Tensor a = Tensor::FromVector({3, 1});
  Tensor b = Tensor::FromVector({1, 1});
  Tensor d = Difference(a, b);
  EXPECT_EQ(d[0], 2.0f);
  EXPECT_EQ(d[1], 0.0f);
  EXPECT_EQ(a[0], 3.0f);  // inputs untouched
}

// ---------- Reductions ----------

TEST(TensorOps, MaxAbsFindsMagnitude) {
  Tensor t = Tensor::FromVector({0.5f, -3.0f, 2.0f});
  EXPECT_EQ(MaxAbs(t), 3.0f);
}

TEST(TensorOps, MaxAbsOfZerosIsZero) {
  Tensor t(Shape{16});
  EXPECT_EQ(MaxAbs(t), 0.0f);
}

TEST(TensorOps, MaxAbsOfEmptyIsZero) {
  Tensor t(Shape{0});
  EXPECT_EQ(MaxAbs(t), 0.0f);
}

TEST(TensorOps, SumAndSumSquares) {
  Tensor t = Tensor::FromVector({1, 2, 3});
  EXPECT_DOUBLE_EQ(Sum(t), 6.0);
  EXPECT_DOUBLE_EQ(SumSquares(t), 14.0);
}

TEST(TensorOps, RmseOfIdenticalIsZero) {
  Tensor t = Tensor::FromVector({1, 2, 3});
  EXPECT_EQ(Rmse(t, t), 0.0);
}

TEST(TensorOps, RmseKnownValue) {
  Tensor a = Tensor::FromVector({0, 0});
  Tensor b = Tensor::FromVector({3, 4});
  EXPECT_NEAR(Rmse(a, b), std::sqrt(12.5), 1e-6);
}

TEST(TensorOps, MaxAbsDiffKnownValue) {
  Tensor a = Tensor::FromVector({1, 5});
  Tensor b = Tensor::FromVector({2, 1});
  EXPECT_EQ(MaxAbsDiff(a, b), 4.0f);
}

TEST(TensorOps, CountZerosCountsExactZeros) {
  Tensor t = Tensor::FromVector({0.0f, 1e-30f, 0.0f, -0.0f});
  EXPECT_EQ(CountZeros(t), 3);  // -0.0f == 0.0f
}

TEST(TensorOps, ArgMaxFindsFirstMaximum) {
  const float v[] = {1.0f, 5.0f, 5.0f, 2.0f};
  EXPECT_EQ(ArgMax(v, 4), 1u);
}

// ---------- Matmul family ----------

TEST(Matmul, KnownSmallProduct) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c(Shape{2, 2});
  Matmul(a, b, c);
  EXPECT_EQ(c[0], 58.0f);
  EXPECT_EQ(c[1], 64.0f);
  EXPECT_EQ(c[2], 139.0f);
  EXPECT_EQ(c[3], 154.0f);
}

TEST(Matmul, IdentityIsNoOp) {
  Tensor a(Shape{2, 2}, {1, 2, 3, 4});
  Tensor eye(Shape{2, 2}, {1, 0, 0, 1});
  Tensor c(Shape{2, 2});
  Matmul(a, eye, c);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(c[i], a[i]);
}

// Reference (naive, ijk) multiply used to cross-check the optimized
// loop orders on random matrices.
void NaiveMatmul(const Tensor& a, const Tensor& b, Tensor& c) {
  const std::int64_t m = a.shape().dim(0), k = a.shape().dim(1),
                     n = b.shape().dim(1);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t t = 0; t < k; ++t) {
        acc += a[static_cast<std::size_t>(i * k + t)] *
               b[static_cast<std::size_t>(t * n + j)];
      }
      c[static_cast<std::size_t>(i * n + j)] = acc;
    }
  }
}

TEST(Matmul, MatchesNaiveOnRandomMatrices) {
  util::Rng rng(5);
  Tensor a(Shape{7, 11}), b(Shape{11, 5});
  FillNormal(a, rng, 0.0f, 1.0f);
  FillNormal(b, rng, 0.0f, 1.0f);
  Tensor c(Shape{7, 5}), ref(Shape{7, 5});
  Matmul(a, b, c);
  NaiveMatmul(a, b, ref);
  EXPECT_LT(MaxAbsDiff(c, ref), 1e-4f);
}

TEST(MatmulTransA, MatchesExplicitTranspose) {
  util::Rng rng(6);
  Tensor a(Shape{9, 4}), b(Shape{9, 6});
  FillNormal(a, rng, 0.0f, 1.0f);
  FillNormal(b, rng, 0.0f, 1.0f);
  // Explicit A^T.
  Tensor at(Shape{4, 9});
  for (int i = 0; i < 9; ++i) {
    for (int j = 0; j < 4; ++j) {
      at[static_cast<std::size_t>(j * 9 + i)] =
          a[static_cast<std::size_t>(i * 4 + j)];
    }
  }
  Tensor c(Shape{4, 6}), ref(Shape{4, 6});
  MatmulTransA(a, b, c);
  NaiveMatmul(at, b, ref);
  EXPECT_LT(MaxAbsDiff(c, ref), 1e-4f);
}

TEST(MatmulTransB, MatchesExplicitTranspose) {
  util::Rng rng(7);
  Tensor a(Shape{5, 8}), b(Shape{3, 8});
  FillNormal(a, rng, 0.0f, 1.0f);
  FillNormal(b, rng, 0.0f, 1.0f);
  Tensor bt(Shape{8, 3});
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 8; ++j) {
      bt[static_cast<std::size_t>(j * 3 + i)] =
          b[static_cast<std::size_t>(i * 8 + j)];
    }
  }
  Tensor c(Shape{5, 3}), ref(Shape{5, 3});
  MatmulTransB(a, b, c);
  NaiveMatmul(a, bt, ref);
  EXPECT_LT(MaxAbsDiff(c, ref), 1e-4f);
}

// ---------- Random fills ----------

TEST(Fill, NormalHasRequestedMoments) {
  util::Rng rng(8);
  Tensor t(Shape{100000});
  FillNormal(t, rng, 2.0f, 3.0f);
  const double mean = Sum(t) / static_cast<double>(t.size());
  EXPECT_NEAR(mean, 2.0, 0.05);
  double var = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    var += (t[i] - mean) * (t[i] - mean);
  }
  var /= static_cast<double>(t.size());
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Fill, UniformRespectsBounds) {
  util::Rng rng(9);
  Tensor t(Shape{10000});
  FillUniform(t, rng, -1.0f, 2.0f);
  EXPECT_GE(MaxAbs(t), 0.0f);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t[i], -1.0f);
    EXPECT_LT(t[i], 2.0f);
  }
}

// ---------- Parameterized shape sweep ----------

class TensorSizeSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(TensorSizeSweep, AddThenSubIsIdentity) {
  const std::int64_t n = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n) + 1);
  Tensor a(Shape{n}), b(Shape{n});
  FillNormal(a, rng, 0.0f, 1.0f);
  FillNormal(b, rng, 0.0f, 1.0f);
  Tensor orig = a;
  Add(a, b);
  Sub(a, b);
  EXPECT_LT(MaxAbsDiff(a, orig), 1e-5f);
}

TEST_P(TensorSizeSweep, ScaleByOneIsIdentity) {
  const std::int64_t n = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n) + 2);
  Tensor a(Shape{n});
  FillNormal(a, rng, 0.0f, 1.0f);
  Tensor orig = a;
  Scale(a, 1.0f);
  EXPECT_EQ(MaxAbsDiff(a, orig), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TensorSizeSweep,
                         ::testing::Values<std::int64_t>(0, 1, 2, 5, 31, 64,
                                                         1000, 4097));

}  // namespace
}  // namespace threelc::tensor
