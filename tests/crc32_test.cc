// CRC32C (Castagnoli) tests: published known-answer vectors, the
// incremental-extend convention, and alignment-independence of the
// slice-by-4 fast path.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "util/crc32.h"
#include "util/rng.h"

namespace threelc::util {
namespace {

std::uint32_t CrcOfString(const std::string& s) {
  return Crc32c(s.data(), s.size());
}

// RFC 3720 / leveldb / snappy known-answer vectors.
TEST(Crc32c, KnownVectors) {
  EXPECT_EQ(CrcOfString("123456789"), 0xE3069283u);
  EXPECT_EQ(CrcOfString("a"), 0xC1D04330u);
  EXPECT_EQ(CrcOfString(""), 0x00000000u);

  std::vector<std::uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);

  std::vector<std::uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);

  std::vector<std::uint8_t> ascending(32);
  std::iota(ascending.begin(), ascending.end(), std::uint8_t{0});
  EXPECT_EQ(Crc32c(ascending.data(), ascending.size()), 0x46DD794Eu);
}

TEST(Crc32c, ExtendMatchesOneShotAtEverySplitPoint) {
  std::vector<std::uint8_t> data(257);
  Rng rng(11);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());
  const std::uint32_t whole = Crc32c(data.data(), data.size());
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t crc = Crc32c(data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

// The slice-by-4 word loop must agree with the byte loop regardless of the
// buffer's alignment relative to a 4-byte boundary.
TEST(Crc32c, AlignmentIndependent) {
  std::vector<std::uint8_t> backing(128 + 8);
  Rng rng(12);
  for (auto& b : backing) b = static_cast<std::uint8_t>(rng.Next());
  for (std::size_t offset = 0; offset < 8; ++offset) {
    // Same logical bytes placed at different alignments.
    std::vector<std::uint8_t> copy(backing.begin(),
                                   backing.begin() + 128);
    std::memcpy(backing.data() + offset, copy.data(), copy.size());
    EXPECT_EQ(Crc32c(backing.data() + offset, copy.size()),
              Crc32c(copy.data(), copy.size()))
        << "offset " << offset;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::vector<std::uint8_t> data(64);
  Rng rng(13);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());
  const std::uint32_t baseline = Crc32c(data.data(), data.size());
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(Crc32c(data.data(), data.size()), baseline)
          << "flip byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

TEST(Crc32c, ByteSpanOverloadMatches) {
  const std::string s = "3LC traffic compression";
  ByteSpan span(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  EXPECT_EQ(Crc32c(span), CrcOfString(s));
}

}  // namespace
}  // namespace threelc::util
