// Tests for the CLI flag parser, plus the Dropout layer and Adam
// optimizer added alongside it.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "nn/adam.h"
#include "nn/dropout.h"
#include "nn/loss.h"
#include "tensor/tensor_ops.h"
#include "util/flags.h"
#include "util/rng.h"

namespace threelc {
namespace {

util::Flags Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return util::Flags(static_cast<int>(args.size()),
                     const_cast<char**>(args.data()));
}

// ---------- Flags ----------

TEST(Flags, EqualsForm) {
  auto f = Parse({"--steps=100", "--name=run1"});
  EXPECT_EQ(f.GetInt("steps", 0), 100);
  EXPECT_EQ(f.GetString("name", ""), "run1");
}

TEST(Flags, SpaceForm) {
  auto f = Parse({"--steps", "42"});
  EXPECT_EQ(f.GetInt("steps", 0), 42);
}

TEST(Flags, BareBoolean) {
  auto f = Parse({"--verbose"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_FALSE(f.GetBool("quiet", false));
}

TEST(Flags, BooleanSpellings) {
  EXPECT_TRUE(Parse({"--x=yes"}).GetBool("x", false));
  EXPECT_TRUE(Parse({"--x=1"}).GetBool("x", false));
  EXPECT_FALSE(Parse({"--x=off"}).GetBool("x", true));
  EXPECT_FALSE(Parse({"--x=false"}).GetBool("x", true));
}

TEST(Flags, DefaultsWhenAbsent) {
  auto f = Parse({});
  EXPECT_EQ(f.GetInt("n", 7), 7);
  EXPECT_EQ(f.GetDouble("d", 2.5), 2.5);
  EXPECT_EQ(f.GetString("s", "dflt"), "dflt");
}

TEST(Flags, PositionalArgsPreserved) {
  auto f = Parse({"input.bin", "--k=1", "output.bin"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.bin");
  EXPECT_EQ(f.positional()[1], "output.bin");
}

TEST(Flags, DoubleParsing) {
  auto f = Parse({"--lr=0.05"});
  EXPECT_DOUBLE_EQ(f.GetDouble("lr", 0.0), 0.05);
}

TEST(Flags, NegativeIntValue) {
  auto f = Parse({"--offset=-3"});
  EXPECT_EQ(f.GetInt("offset", 0), -3);
}

TEST(Flags, BadIntThrows) {
  auto f = Parse({"--steps=abc"});
  EXPECT_THROW(f.GetInt("steps", 0), std::runtime_error);
}

TEST(Flags, BadBoolThrows) {
  auto f = Parse({"--x=maybe"});
  EXPECT_THROW(f.GetBool("x", false), std::runtime_error);
}

TEST(Flags, HasDetectsPresence) {
  auto f = Parse({"--a=1"});
  EXPECT_TRUE(f.Has("a"));
  EXPECT_FALSE(f.Has("b"));
}

// ---------- Dropout ----------

TEST(Dropout, EvalModeIsIdentity) {
  nn::Dropout drop("d", 0.5f, 1);
  util::Rng rng(2);
  tensor::Tensor in(tensor::Shape{8, 8});
  tensor::FillNormal(in, rng, 0.0f, 1.0f);
  tensor::Tensor out = drop.Forward(in, false);
  EXPECT_EQ(tensor::MaxAbsDiff(in, out), 0.0f);
}

TEST(Dropout, ZeroRateIsIdentityInTraining) {
  nn::Dropout drop("d", 0.0f, 1);
  util::Rng rng(3);
  tensor::Tensor in(tensor::Shape{16});
  tensor::FillNormal(in, rng, 0.0f, 1.0f);
  tensor::Tensor out = drop.Forward(in, true);
  EXPECT_EQ(tensor::MaxAbsDiff(in, out), 0.0f);
}

TEST(Dropout, DropsApproximatelyRequestedFraction) {
  nn::Dropout drop("d", 0.3f, 4);
  tensor::Tensor in = tensor::Tensor::Full(tensor::Shape{20000}, 1.0f);
  tensor::Tensor out = drop.Forward(in, true);
  const double zeros = static_cast<double>(tensor::CountZeros(out));
  EXPECT_NEAR(zeros / 20000.0, 0.3, 0.02);
}

TEST(Dropout, SurvivorsScaledToPreserveExpectation) {
  nn::Dropout drop("d", 0.5f, 5);
  tensor::Tensor in = tensor::Tensor::Full(tensor::Shape{50000}, 1.0f);
  tensor::Tensor out = drop.Forward(in, true);
  // Mean stays ~1 under inverted dropout.
  EXPECT_NEAR(tensor::Sum(out) / 50000.0, 1.0, 0.03);
  // Survivors are exactly 1/(1-p) = 2.
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(out[i] == 0.0f || out[i] == 2.0f);
  }
}

TEST(Dropout, BackwardUsesSameMask) {
  nn::Dropout drop("d", 0.4f, 6);
  util::Rng rng(7);
  tensor::Tensor in(tensor::Shape{1000});
  tensor::FillNormal(in, rng, 0.0f, 1.0f);
  tensor::Tensor out = drop.Forward(in, true);
  tensor::Tensor ones = tensor::Tensor::Full(in.shape(), 1.0f);
  tensor::Tensor grad = drop.Backward(ones);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] == 0.0f && in[i] != 0.0f) {
      EXPECT_EQ(grad[i], 0.0f);
    } else if (in[i] != 0.0f) {
      EXPECT_FLOAT_EQ(grad[i], 1.0f / 0.6f);
    }
  }
}

// ---------- Adam ----------

TEST(Adam, FirstStepIsSignedUnitStep) {
  // With bias correction, the first Adam step is ~lr * sign(g).
  nn::Adam adam({0.9f, 0.999f, 1e-8f, 0.0f});
  tensor::Tensor w(tensor::Shape{2}, {1.0f, -1.0f});
  tensor::Tensor g(tensor::Shape{2}, {0.5f, -0.25f});
  std::vector<nn::ParamRef> params = {{"w", &w, &g, true, false}};
  adam.ApplyGradients(params, 0.01f);
  EXPECT_NEAR(w[0], 1.0f - 0.01f, 1e-5);
  EXPECT_NEAR(w[1], -1.0f + 0.01f, 1e-5);
  EXPECT_EQ(adam.step_count(), 1);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize f(w) = 0.5 * (w - 3)^2 with gradient (w - 3).
  nn::Adam adam;
  tensor::Tensor w(tensor::Shape{1}, {0.0f});
  tensor::Tensor g(tensor::Shape{1});
  std::vector<nn::ParamRef> params = {{"w", &w, &g, true, false}};
  for (int i = 0; i < 2000; ++i) {
    g[0] = w[0] - 3.0f;
    adam.ApplyGradients(params, 0.05f);
  }
  EXPECT_NEAR(w[0], 3.0f, 0.05f);
}

TEST(Adam, DecoupledWeightDecayShrinksFlaggedParams) {
  nn::Adam adam({0.9f, 0.999f, 1e-8f, 0.1f});
  tensor::Tensor w1(tensor::Shape{1}, {1.0f}), w2(tensor::Shape{1}, {1.0f});
  tensor::Tensor g(tensor::Shape{1}, {0.0f});
  std::vector<nn::ParamRef> params = {{"decayed", &w1, &g, true, true},
                                      {"plain", &w2, &g, true, false}};
  adam.ApplyGradients(params, 0.1f);
  EXPECT_LT(w1[0], 1.0f);
  EXPECT_FLOAT_EQ(w2[0], 1.0f);
}

TEST(Adam, StatePerParameterName) {
  nn::Adam adam;
  tensor::Tensor w1(tensor::Shape{1}, {0.0f}), w2(tensor::Shape{1}, {0.0f});
  tensor::Tensor g1(tensor::Shape{1}, {1.0f}), g2(tensor::Shape{1}, {-1.0f});
  std::vector<nn::ParamRef> params = {{"a", &w1, &g1, true, false},
                                      {"b", &w2, &g2, true, false}};
  for (int i = 0; i < 10; ++i) adam.ApplyGradients(params, 0.01f);
  EXPECT_LT(w1[0], 0.0f);
  EXPECT_GT(w2[0], 0.0f);
}

}  // namespace
}  // namespace threelc
