// Observability layer: metrics registry semantics (enable/disable, merge,
// seqlock consistency), JSONL/CSV export, Prometheus exposition, tracer
// span recording under concurrency, Chrome trace well-formedness, and the
// telemetry step-record schema (including non-finite values).
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_validator.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace threelc::obs {
namespace {

using testutil::JsonValidator;

TEST(JsonValidatorTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonValidator(R"({"a":[1,2.5,-3e2],"b":"x\ny","c":null})")
                  .Valid());
  EXPECT_FALSE(JsonValidator("{\"a\":}").Valid());
  EXPECT_FALSE(JsonValidator("{\"a\":1").Valid());
  EXPECT_FALSE(JsonValidator("[1,]").Valid());
}

TEST(JsonTest, EscapesControlAndQuotes) {
  std::string out;
  AppendJsonEscaped(out, "a\"b\\c\nd\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
  std::string num;
  AppendJsonNumber(num, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(num, "null");  // JSON has no NaN
}

// --- Metrics registry ------------------------------------------------------

TEST(MetricsTest, DisabledMetricsAreNoOps) {
  MetricsRegistry registry;
  ASSERT_FALSE(registry.enabled());
  Counter* c = registry.counter("c");
  Gauge* g = registry.gauge("g");
  HistogramStat* h = registry.histogram("h", 0.0, 10.0, 10);
  c->Add(5.0);
  g->Set(3.0);
  h->Add(1.0);
  EXPECT_EQ(c->value(), 0.0);
  EXPECT_EQ(c->events(), 0u);
  EXPECT_FALSE(g->set());
  EXPECT_EQ(h->stat().count(), 0u);
}

TEST(MetricsTest, HandlesAreStableAndSharedByName) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Counter* a = registry.counter("same");
  Counter* b = registry.counter("same");
  EXPECT_EQ(a, b);
  a->Add(1.0);
  b->Add(2.0);
  EXPECT_EQ(a->value(), 3.0);
  EXPECT_EQ(a->events(), 2u);
}

TEST(MetricsTest, ConcurrentCounterAddsAreLossless) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Counter* c = registry.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<double>(kThreads * kPerThread));
  EXPECT_EQ(c->events(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(MetricsTest, MergeAddsCountersTakesGaugesAndFoldsHistograms) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.set_enabled(true);
  b.set_enabled(true);
  a.counter("shared")->Add(1.0);
  b.counter("shared")->Add(2.0);
  b.counter("only_b")->Add(7.0);
  a.gauge("g")->Set(1.0);
  b.gauge("g")->Set(9.0);
  b.gauge("never_set");
  for (double v : {1.0, 2.0, 3.0}) a.histogram("h", 0.0, 10.0, 10)->Add(v);
  for (double v : {7.0, 8.0}) b.histogram("h", 0.0, 10.0, 10)->Add(v);

  a.Merge(b);
  EXPECT_EQ(a.counter("shared")->value(), 3.0);
  EXPECT_EQ(a.counter("only_b")->value(), 7.0);
  EXPECT_EQ(a.gauge("g")->value(), 9.0);  // merge takes other's set value
  const util::RunningStat merged = a.histogram("h", 0.0, 10.0, 10)->stat();
  EXPECT_EQ(merged.count(), 5u);
  EXPECT_DOUBLE_EQ(merged.mean(), (1.0 + 2.0 + 3.0 + 7.0 + 8.0) / 5.0);
  EXPECT_EQ(merged.max(), 8.0);
}

TEST(MetricsTest, MergeLandsIntoDisabledRegistry) {
  // Export-time merges fold per-thread registries into a possibly-disabled
  // aggregate; the data must not be dropped.
  MetricsRegistry worker;
  worker.set_enabled(true);
  worker.counter("n")->Add(4.0);
  worker.gauge("g")->Set(2.0);
  MetricsRegistry aggregate;  // disabled
  aggregate.Merge(worker);
  EXPECT_EQ(aggregate.counter("n")->value(), 4.0);
  EXPECT_EQ(aggregate.gauge("g")->value(), 2.0);
}

TEST(MetricsTest, JsonlAndCsvExport) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.counter("traffic/push_bytes")->Add(128.0);
  registry.gauge("train/loss")->Set(0.25);
  HistogramStat* h = registry.histogram("step_ms", 0.0, 100.0, 50);
  for (int i = 1; i <= 10; ++i) h->Add(static_cast<double>(i));

  std::ostringstream jsonl;
  registry.WriteJsonl(jsonl);
  std::istringstream lines(jsonl.str());
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_TRUE(JsonValidator(line).Valid()) << line;
  }
  EXPECT_EQ(n, 3);
  EXPECT_NE(jsonl.str().find("\"traffic/push_bytes\""), std::string::npos);

  std::ostringstream csv;
  registry.WriteCsv(csv);
  std::istringstream csv_lines(csv.str());
  std::getline(csv_lines, line);
  EXPECT_EQ(line, "metric,type,value,events,mean,stddev,min,max,p50,p99");
  int rows = 0;
  while (std::getline(csv_lines, line)) ++rows;
  EXPECT_EQ(rows, 3);

  const std::string obj = registry.ToJsonObject();
  EXPECT_TRUE(JsonValidator(obj).Valid()) << obj;
}

TEST(MetricsTest, SnapshotPairsAreConsistentUnderConcurrentAdds) {
  // Every Add is (value += 2.0, events += 1); a torn read would break the
  // value == 2 * events invariant. Readers hammer Read() while writers add.
  MetricsRegistry registry;
  registry.set_enabled(true);
  Counter* c = registry.counter("pair");
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([c, &stop, &violations] {
      while (!stop.load(std::memory_order_relaxed)) {
        const Counter::Snapshot snap = c->Read();
        if (snap.value != 2.0 * static_cast<double>(snap.events)) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Add(2.0);
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
  const Counter::Snapshot final_snap = c->Read();
  EXPECT_EQ(final_snap.events,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(final_snap.value, 2.0 * static_cast<double>(kThreads * kPerThread));
}

// --- Prometheus exposition -------------------------------------------------

TEST(PrometheusTest, SanitizeProducesValidNamesAndIsIdempotent) {
  const std::vector<std::string> raw = {
      "traffic/push_bytes", "codec.encode-ms", "9starts_with_digit",
      "already_legal_name", "weird +*)( chars", "", "a:b"};
  for (const std::string& name : raw) {
    const std::string once = SanitizeMetricName(name);
    EXPECT_TRUE(IsValidMetricName(once)) << name << " -> " << once;
    // Round trip: sanitizing a sanitized name must be a no-op, so scrape
    // pipelines that re-normalize names cannot drift.
    EXPECT_EQ(SanitizeMetricName(once), once) << name;
  }
  EXPECT_EQ(SanitizeMetricName("traffic/push_bytes"), "traffic_push_bytes");
  EXPECT_EQ(SanitizeMetricName("9x"), "_9x");
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("has space"));
  EXPECT_FALSE(IsValidMetricName("9leading"));
  EXPECT_TRUE(IsValidMetricName("a:b_c123"));
}

TEST(PrometheusTest, EscapeLabelValue) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(PrometheusTest, WritePrometheusExposesAllMetricKinds) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.counter("traffic/push_bytes")->Add(128.0);
  registry.gauge("train/loss")->Set(0.25);
  HistogramStat* h = registry.histogram("step_ms", 0.0, 100.0, 50);
  for (int i = 1; i <= 10; ++i) h->Add(static_cast<double>(i));

  std::ostringstream out;
  WritePrometheus(registry, out);
  const std::string text = out.str();

  EXPECT_NE(text.find("# TYPE threelc_traffic_push_bytes_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("threelc_traffic_push_bytes_total 128"),
            std::string::npos);
  EXPECT_NE(text.find("threelc_traffic_push_bytes_events_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE threelc_train_loss gauge"), std::string::npos);
  EXPECT_NE(text.find("threelc_train_loss 0.25"), std::string::npos);
  EXPECT_NE(text.find("# TYPE threelc_step_ms summary"), std::string::npos);
  EXPECT_NE(text.find("threelc_step_ms{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("threelc_step_ms_sum 55"), std::string::npos);
  EXPECT_NE(text.find("threelc_step_ms_count 10"), std::string::npos);

  // Every exposed series name obeys the grammar (round-trip property over
  // the real registry contents, not just hand-picked strings).
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t name_end = line.find_first_of(" {");
    ASSERT_NE(name_end, std::string::npos) << line;
    EXPECT_TRUE(IsValidMetricName(line.substr(0, name_end))) << line;
  }
}

TEST(PrometheusTest, NonFiniteValuesUseExpositionLiterals) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.gauge("bad/nan")->Set(std::numeric_limits<double>::quiet_NaN());
  registry.gauge("bad/inf")->Set(std::numeric_limits<double>::infinity());
  std::ostringstream out;
  WritePrometheus(registry, out);
  EXPECT_NE(out.str().find("threelc_bad_nan NaN"), std::string::npos);
  EXPECT_NE(out.str().find("threelc_bad_inf +Inf"), std::string::npos);
}

// --- Tracer ----------------------------------------------------------------

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  { ScopedSpan span(&tracer, "ignored", 0); }
  { ScopedSpan span(nullptr, "null tracer is fine too", 1); }
  tracer.RecordSpan("direct", 0, 0.0, 1.0);
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(TracerTest, ConcurrentSpansAllRecorded) {
  Tracer tracer;
  tracer.set_enabled(true);
  constexpr int kThreads = 6;
  constexpr int kSpans = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpans; ++i) {
        ScopedSpan span(&tracer, "work", 1 + t);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tracer.event_count(),
            static_cast<std::size_t>(kThreads * kSpans));
  for (const TraceEvent& e : tracer.snapshot()) {
    EXPECT_GE(e.dur_us, 0.0);
    EXPECT_GE(e.ts_us, 0.0);
  }
}

TEST(TracerTest, ChromeTraceIsValidJsonWithTrackNames) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.SetTrackName(0, "server");
  tracer.SetTrackName(1, "worker 0");
  tracer.RecordSpan("encode \"quoted\"", 1, 10.0, 5.0);
  tracer.RecordSpan("optimize", 0, 20.0, 2.5);
  tracer.RecordCounter("loss", 0, 22.5, 0.75);

  std::ostringstream out;
  tracer.WriteChromeTrace(out);
  const std::string trace = out.str();
  EXPECT_TRUE(JsonValidator(trace).Valid()) << trace;
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(trace.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"worker 0\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);
}

// --- Telemetry step records ------------------------------------------------

StepTelemetry MakeStep() {
  StepTelemetry s;
  s.step = 3;
  s.loss = 1.5;
  s.lr = 0.1;
  s.push_bytes = 1000;
  s.pull_bytes = 2000;
  s.push_values = 4000;
  s.pull_values = 4000;
  s.push_bits_per_value = 2.0;
  s.pull_bits_per_value = 4.0;
  s.codec_seconds = 0.001;
  s.contributors = 4;
  s.phases_ms = {{"forward_backward", 2.0}, {"encode_push", 0.5}};
  TensorStepTelemetry t;
  t.name = "dense0/W";
  t.elements = 2048;
  t.push_bytes = 600;
  t.pull_bytes = 150;
  t.zero_frac = 0.5;
  t.plus_frac = 0.25;
  t.minus_frac = 0.25;
  t.zre_hit_rate = 0.4;
  t.push_residual_l2 = 0.01;
  t.pull_residual_l2 = 0.02;
  s.tensors.push_back(t);
  return s;
}

TEST(TelemetryTest, StepToJsonHasRequiredKeysAndParses) {
  const std::string json = Telemetry::StepToJson(MakeStep());
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  for (const char* key :
       {"\"type\":\"step\"", "\"step\":3", "\"loss\":", "\"lr\":",
        "\"push_bytes\":", "\"pull_bytes\":", "\"push_bits_per_value\":",
        "\"codec_seconds\":", "\"contributors\":", "\"phases_ms\":",
        "\"forward_backward\":", "\"tensors\":", "\"zre_hit_rate\":",
        "\"push_residual_l2\":", "\"zero_frac\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing";
  }
}

TEST(TelemetryTest, OptionalTensorFieldsOmittedWhenAbsent) {
  StepTelemetry s = MakeStep();
  s.tensors[0].zero_frac = -1.0;
  s.tensors[0].plus_frac = -1.0;
  s.tensors[0].minus_frac = -1.0;
  s.tensors[0].zre_hit_rate = -1.0;
  s.tensors[0].push_residual_l2 = -1.0;
  s.tensors[0].pull_residual_l2 = -1.0;
  const std::string json = Telemetry::StepToJson(s);
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_EQ(json.find("zero_frac"), std::string::npos);
  EXPECT_EQ(json.find("zre_hit_rate"), std::string::npos);
  EXPECT_EQ(json.find("residual_l2"), std::string::npos);
}

TEST(TelemetryTest, StepLogRoundTrip) {
  const std::string path = ::testing::TempDir() + "obs_test_metrics.jsonl";
  {
    TelemetryOptions options;
    options.metrics_path = path;
    Telemetry telemetry(options);
    EXPECT_TRUE(telemetry.metrics_enabled());
    EXPECT_FALSE(telemetry.trace_enabled());
    telemetry.metrics().counter("traffic/push_bytes")->Add(1000.0);
    telemetry.LogStep(MakeStep());
    telemetry.Flush();
    telemetry.Flush();  // idempotent
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 2u);  // one step + one summary
  for (const std::string& l : lines) {
    EXPECT_TRUE(JsonValidator(l).Valid()) << l;
  }
  EXPECT_NE(lines[0].find("\"type\":\"step\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\":\"summary\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"traffic/push_bytes\""), std::string::npos);
}

TEST(TelemetryTest, StepToJsonWithNonFiniteValuesStaysParseable) {
  // A diverging run is exactly when the step log matters most, so NaN/Inf
  // must not corrupt the JSONL (they serialize as null).
  StepTelemetry s = MakeStep();
  s.loss = std::numeric_limits<double>::quiet_NaN();
  s.push_bits_per_value = std::numeric_limits<double>::infinity();
  s.tensors[0].push_residual_l2 = std::numeric_limits<double>::quiet_NaN();
  s.tensors[0].pull_residual_l2 = -std::numeric_limits<double>::infinity();
  const std::string json = Telemetry::StepToJson(s);
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"loss\":null"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);

  // And the watchdog classifies the same record as an error.
  HealthMonitor monitor{HealthMonitorOptions{}};
  monitor.ObserveStep(s);
  EXPECT_FALSE(monitor.healthy());
  ASSERT_GE(monitor.event_count(), 1u);
  bool saw_nonfinite_loss = false;
  for (const HealthEvent& e : monitor.events()) {
    EXPECT_EQ(HealthSeverityName(e.severity), std::string("error"));
    if (e.detector == "nonfinite_loss") saw_nonfinite_loss = true;
  }
  EXPECT_TRUE(saw_nonfinite_loss);
}

TEST(TelemetryTest, BadPathThrows) {
  TelemetryOptions options;
  options.metrics_path = "/nonexistent-dir-xyz/metrics.jsonl";
  EXPECT_THROW(Telemetry telemetry(options), std::runtime_error);
}

}  // namespace
}  // namespace threelc::obs
