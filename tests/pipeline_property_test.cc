// Property-based tests across the full 3LC pipeline
// (quantize -> quartic -> zero-run and back), swept over tensor sizes and
// value distributions with parameterized gtest.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "compress/quantize3.h"
#include "compress/quartic.h"
#include "compress/three_lc.h"
#include "compress/zero_run.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace threelc::compress {
namespace {

using tensor::Shape;
using tensor::Tensor;

enum class Dist { kNormal, kUniform, kSparse, kHeavyTail, kConstant, kZero };

const char* DistName(Dist d) {
  switch (d) {
    case Dist::kNormal: return "Normal";
    case Dist::kUniform: return "Uniform";
    case Dist::kSparse: return "Sparse";
    case Dist::kHeavyTail: return "HeavyTail";
    case Dist::kConstant: return "Constant";
    case Dist::kZero: return "Zero";
  }
  return "?";
}

Tensor MakeTensor(Dist dist, std::int64_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(Shape{n});
  float* p = t.data();
  for (std::int64_t i = 0; i < n; ++i) {
    switch (dist) {
      case Dist::kNormal:
        p[i] = rng.NormalFloat(0.0f, 1.0f);
        break;
      case Dist::kUniform:
        p[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
        break;
      case Dist::kSparse:
        p[i] = rng.Bernoulli(0.05) ? rng.NormalFloat(0.0f, 1.0f) : 0.0f;
        break;
      case Dist::kHeavyTail: {
        const float base = rng.NormalFloat(0.0f, 0.05f);
        p[i] = rng.Bernoulli(0.01) ? base * 100.0f : base;
        break;
      }
      case Dist::kConstant:
        p[i] = 0.7f;
        break;
      case Dist::kZero:
        p[i] = 0.0f;
        break;
    }
  }
  return t;
}

using Param = std::tuple<Dist, std::int64_t, float>;

class PipelineSweep : public ::testing::TestWithParam<Param> {};

// The two lossless stages must be exactly invertible for any quantizer
// output, regardless of distribution, size, or sparsity multiplier.
TEST_P(PipelineSweep, LosslessStagesRoundTripExactly) {
  const auto [dist, n, s] = GetParam();
  Tensor in = MakeTensor(dist, n, 1000 + static_cast<std::uint64_t>(n));
  std::vector<std::int8_t> ternary(static_cast<std::size_t>(n));
  Quantize3(in.data(), static_cast<std::size_t>(n), s, ternary.data());

  util::ByteBuffer quartic;
  QuarticEncode(ternary.data(), static_cast<std::size_t>(n), quartic);
  util::ByteBuffer zre;
  ZeroRunEncode(quartic.span(), zre);
  util::ByteBuffer quartic_back;
  ZeroRunDecode(zre.span(), quartic_back, quartic.size());
  ASSERT_EQ(quartic_back.size(), quartic.size());
  for (std::size_t i = 0; i < quartic.size(); ++i) {
    ASSERT_EQ(quartic_back.data()[i], quartic.data()[i]);
  }
  std::vector<std::int8_t> ternary_back(static_cast<std::size_t>(n));
  QuarticDecode(quartic_back.span(), static_cast<std::size_t>(n),
                ternary_back.data());
  EXPECT_EQ(ternary, ternary_back);
}

// End-to-end codec error bound holds for every distribution.
TEST_P(PipelineSweep, FullCodecErrorBound) {
  const auto [dist, n, s] = GetParam();
  if (n == 0) GTEST_SKIP();
  ThreeLC codec({s, true, true});
  Tensor in = MakeTensor(dist, n, 2000 + static_cast<std::uint64_t>(n));
  auto ctx = codec.MakeContext(in.shape());
  Tensor out = RoundTrip(codec, in, *ctx);
  const float m = tensor::MaxAbs(in) * s;
  EXPECT_LE(tensor::MaxAbsDiff(in, out), m / 2.0f + 1e-5f);
}

// Compressed size never exceeds the no-ZRE fixed size, and the all-zero
// distribution achieves the maximal 14x ZRE gain.
TEST_P(PipelineSweep, CompressedSizeBounds) {
  const auto [dist, n, s] = GetParam();
  ThreeLC codec({s, true, true});
  Tensor in = MakeTensor(dist, n, 3000 + static_cast<std::uint64_t>(n));
  auto ctx = codec.MakeContext(in.shape());
  util::ByteBuffer buf;
  codec.Encode(in, *ctx, buf);
  const std::size_t header = 8;
  const std::size_t quartic_size =
      QuarticEncodedSize(static_cast<std::size_t>(n));
  EXPECT_LE(buf.size(), header + quartic_size);
  EXPECT_GE(buf.size(), header + (quartic_size + 13) / 14);
}

// Error accumulation: over repeated encodes of the same input, the codec
// transmits the full mass (within one step's bounded residual).
TEST_P(PipelineSweep, ErrorAccumulationConverges) {
  const auto [dist, n, s] = GetParam();
  if (n == 0 || dist == Dist::kZero) GTEST_SKIP();
  ThreeLC codec({s, true, true});
  Tensor in = MakeTensor(dist, n, 4000 + static_cast<std::uint64_t>(n));
  auto ctx = codec.MakeContext(in.shape());
  Tensor total(in.shape());
  const int steps = 30;
  for (int i = 0; i < steps; ++i) {
    Tensor out = RoundTrip(codec, in, *ctx);
    tensor::Add(total, out);
  }
  // total ≈ steps * in, with residual bounded by M/2 of the running sum.
  // Normalize by the accumulated max magnitude.
  Tensor expected = in;
  tensor::Scale(expected, static_cast<float>(steps));
  const float bound =
      tensor::MaxAbs(expected) * s / 2.0f / static_cast<float>(steps) + 1e-4f;
  float max_err = 0.0f;
  for (std::size_t i = 0; i < total.size(); ++i) {
    max_err = std::max(max_err,
                       std::fabs(total[i] - expected[i]) /
                           static_cast<float>(steps));
  }
  EXPECT_LE(max_err, bound * static_cast<float>(steps));
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, PipelineSweep,
    ::testing::Combine(
        ::testing::Values(Dist::kNormal, Dist::kUniform, Dist::kSparse,
                          Dist::kHeavyTail, Dist::kConstant, Dist::kZero),
        ::testing::Values<std::int64_t>(0, 1, 4, 5, 6, 100, 1001, 8192),
        ::testing::Values(1.0f, 1.5f, 1.9f)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = DistName(std::get<0>(info.param));
      name += "_n" + std::to_string(std::get<1>(info.param)) + "_s" +
              std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
      return name;
    });

// ---------- Cross-codec compression ordering on sparse data ----------

TEST(PipelineOrdering, SparserInputsCompressSmaller) {
  ThreeLC codec({1.0f, true, true});
  std::size_t prev = 0;
  bool first = true;
  for (double density : {1.0, 0.5, 0.1, 0.01, 0.0}) {
    util::Rng rng(static_cast<std::uint64_t>(density * 1000) + 7);
    Tensor t(Shape{50000});
    for (std::size_t i = 0; i < t.size(); ++i) {
      t[i] = rng.Bernoulli(density) ? rng.NormalFloat(0.0f, 1.0f) : 0.0f;
    }
    auto ctx = codec.MakeContext(t.shape());
    util::ByteBuffer buf;
    codec.Encode(t, *ctx, buf);
    if (!first) EXPECT_LE(buf.size(), prev) << "density " << density;
    prev = buf.size();
    first = false;
  }
}

}  // namespace
}  // namespace threelc::compress
