// Unit and property tests for 3-value quantization with sparsity
// multiplication (paper §3.1, Eq. 1–3).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "compress/quantize3.h"
#include "util/rng.h"

namespace threelc::compress {
namespace {

std::vector<float> RandomValues(std::size_t n, std::uint64_t seed,
                                float stddev = 1.0f) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.NormalFloat(0.0f, stddev);
  return v;
}

TEST(Quantize3, OutputsOnlyTernaryValues) {
  auto in = RandomValues(1000, 1);
  std::vector<std::int8_t> q(in.size());
  Quantize3(in.data(), in.size(), 1.0f, q.data());
  for (auto v : q) EXPECT_TRUE(v == -1 || v == 0 || v == 1);
}

TEST(Quantize3, MEqualsMaxAbsTimesS) {
  std::vector<float> in = {0.1f, -0.4f, 0.2f};
  std::vector<std::int8_t> q(3);
  EXPECT_FLOAT_EQ(Quantize3(in.data(), 3, 1.0f, q.data()), 0.4f);
  EXPECT_FLOAT_EQ(Quantize3(in.data(), 3, 1.5f, q.data()), 0.6f);
  EXPECT_FLOAT_EQ(Quantize3(in.data(), 3, 1.9f, q.data()), 0.4f * 1.9f);
}

TEST(Quantize3, RoundingMatchesPaperExample) {
  // Figure 3: accumulated tensor quantized with s = 1 and M = 0.4... the
  // paper's M is 0.3 pre-accumulation; here check the round() semantics:
  // |v| >= M/2 maps to sign, else 0.
  std::vector<float> in = {-0.3f, 0.1f, -0.4f, 0.0f, 0.2f, -0.19f};
  std::vector<std::int8_t> q(in.size());
  const float m = Quantize3(in.data(), in.size(), 1.0f, q.data());
  EXPECT_FLOAT_EQ(m, 0.4f);
  // M/2 = 0.2: -0.3 -> -1; 0.1 -> 0; -0.4 -> -1; 0 -> 0; 0.2 -> 1 (>=);
  // -0.19 -> 0.
  EXPECT_EQ(q[0], -1);
  EXPECT_EQ(q[1], 0);
  EXPECT_EQ(q[2], -1);
  EXPECT_EQ(q[3], 0);
  EXPECT_EQ(q[4], 1);
  EXPECT_EQ(q[5], 0);
}

TEST(Quantize3, ZeroTensorQuantizesToZeros) {
  std::vector<float> in(64, 0.0f);
  std::vector<std::int8_t> q(64, 5);
  const float m = Quantize3(in.data(), 64, 1.5f, q.data());
  EXPECT_EQ(m, 0.0f);
  for (auto v : q) EXPECT_EQ(v, 0);
}

TEST(Quantize3, MaxMagnitudeValueSurvivesAtSEqualsOne) {
  std::vector<float> in = {1.0f, -1.0f, 0.1f};
  std::vector<std::int8_t> q(3);
  const float m = Quantize3(in.data(), 3, 1.0f, q.data());
  std::vector<float> out(3);
  Dequantize3(q.data(), 3, m, out.data());
  // s = 1 preserves the maximum magnitude exactly (paper §3.1).
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out[1], -1.0f);
}

TEST(Quantize3, LargerSProducesMoreZeros) {
  auto in = RandomValues(10000, 2);
  std::vector<std::int8_t> q(in.size());
  std::size_t prev_zeros = 0;
  for (float s : {1.0f, 1.25f, 1.5f, 1.75f, 1.9f}) {
    Quantize3(in.data(), in.size(), s, q.data());
    std::size_t zeros = 0;
    for (auto v : q) zeros += (v == 0);
    EXPECT_GE(zeros, prev_zeros) << "s=" << s;
    prev_zeros = zeros;
  }
}

TEST(Dequantize3, ScalesByM) {
  std::vector<std::int8_t> q = {-1, 0, 1};
  std::vector<float> out(3);
  Dequantize3(q.data(), 3, 0.25f, out.data());
  EXPECT_FLOAT_EQ(out[0], -0.25f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 0.25f);
}

TEST(Quantize3WithResidual, ResidualEqualsInputMinusDequantized) {
  auto in = RandomValues(500, 3);
  std::vector<std::int8_t> q(in.size());
  std::vector<float> residual(in.size());
  const float m = Quantize3WithResidual(in.data(), in.size(), 1.5f, q.data(),
                                        residual.data());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_FLOAT_EQ(residual[i], in[i] - m * static_cast<float>(q[i]));
  }
}

TEST(Quantize3WithResidual, MatchesSeparateQuantize) {
  auto in = RandomValues(777, 4);
  std::vector<std::int8_t> q1(in.size()), q2(in.size());
  std::vector<float> residual(in.size());
  const float m1 = Quantize3(in.data(), in.size(), 1.75f, q1.data());
  const float m2 = Quantize3WithResidual(in.data(), in.size(), 1.75f,
                                         q2.data(), residual.data());
  EXPECT_FLOAT_EQ(m1, m2);
  EXPECT_EQ(q1, q2);
}

TEST(Quantize3WithResidual, ZeroInputKeepsZeroResidual) {
  std::vector<float> in(32, 0.0f);
  std::vector<std::int8_t> q(32);
  std::vector<float> residual(32, 1.0f);
  Quantize3WithResidual(in.data(), 32, 1.0f, q.data(), residual.data());
  for (auto r : residual) EXPECT_EQ(r, 0.0f);
}

// ---------- Property sweep over the sparsity multiplier ----------

class SparsitySweep : public ::testing::TestWithParam<float> {};

// Paper §3.1 "Convergence": max|T_in - T_out| <= M/2 < max|T_in|.
TEST_P(SparsitySweep, ErrorBoundedByHalfM) {
  const float s = GetParam();
  auto in = RandomValues(4096, 17, 0.3f);
  std::vector<std::int8_t> q(in.size());
  const float m = Quantize3(in.data(), in.size(), s, q.data());
  float max_in = 0.0f;
  float max_err = 0.0f;
  for (std::size_t i = 0; i < in.size(); ++i) {
    max_in = std::max(max_in, std::fabs(in[i]));
    const float out = m * static_cast<float>(q[i]);
    max_err = std::max(max_err, std::fabs(in[i] - out));
  }
  EXPECT_LE(max_err, m / 2.0f + 1e-6f);
  EXPECT_LT(m / 2.0f, max_in);  // requires s < 2
}

TEST_P(SparsitySweep, DequantizationPreservesSign) {
  const float s = GetParam();
  auto in = RandomValues(2048, 23);
  std::vector<std::int8_t> q(in.size());
  Quantize3(in.data(), in.size(), s, q.data());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (q[i] != 0) {
      EXPECT_EQ(q[i] > 0, in[i] > 0.0f) << "sign flip at " << i;
    }
  }
}

// Sparsity multiplication preserves average magnitude better than
// thresholding would: the dequantized mean |value| stays within a factor
// of the input mean |value| for moderately heavy inputs.
TEST_P(SparsitySweep, NonzeroOutputsAreLargestInputs) {
  const float s = GetParam();
  auto in = RandomValues(1024, 29);
  std::vector<std::int8_t> q(in.size());
  const float m = Quantize3(in.data(), in.size(), s, q.data());
  const float threshold = m / 2.0f;
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (std::fabs(in[i]) > threshold + 1e-6f) {
      EXPECT_NE(q[i], 0) << "large value dropped at " << i;
    }
    if (std::fabs(in[i]) < threshold - 1e-6f) {
      EXPECT_EQ(q[i], 0) << "small value kept at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SparsityMultipliers, SparsitySweep,
                         ::testing::Values(1.0f, 1.25f, 1.5f, 1.75f, 1.9f,
                                           1.99f));

// ---------- Death tests for contract violations ----------

TEST(Quantize3Death, RejectsSparsityBelowOne) {
  std::vector<float> in = {1.0f};
  std::vector<std::int8_t> q(1);
  EXPECT_DEATH(Quantize3(in.data(), 1, 0.9f, q.data()), "sparsity");
}

TEST(Quantize3Death, RejectsSparsityOfTwo) {
  std::vector<float> in = {1.0f};
  std::vector<std::int8_t> q(1);
  EXPECT_DEATH(Quantize3(in.data(), 1, 2.0f, q.data()), "sparsity");
}

}  // namespace
}  // namespace threelc::compress
