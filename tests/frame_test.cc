// Wire-framing tests: encode/parse round trips, incremental parsing at
// arbitrary (fuzzed) split points, and corruption handling — every
// malformed input must produce a typed ParseError, never a crash or a
// silently wrong frame.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "rpc/frame.h"
#include "util/rng.h"

namespace threelc::rpc {
namespace {

util::ByteBuffer MakePayload(std::size_t n, std::uint8_t seed) {
  util::ByteBuffer payload;
  for (std::size_t i = 0; i < n; ++i) {
    payload.PushByte(static_cast<std::uint8_t>(seed + i));
  }
  return payload;
}

std::vector<Frame> ParseAll(util::ByteSpan bytes) {
  FrameParser parser;
  std::vector<Frame> frames;
  EXPECT_TRUE(parser.Feed(bytes, &frames));
  return frames;
}

TEST(Frame, EncodeParseRoundTrip) {
  util::ByteBuffer payload = MakePayload(100, 7);
  util::ByteBuffer wire;
  EncodeFrame(MsgType::kPush, /*step=*/42, /*tensor=*/3, payload.span(),
              wire);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + payload.size());

  std::vector<Frame> frames = ParseAll(wire.span());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.type, MsgType::kPush);
  EXPECT_EQ(frames[0].header.step, 42u);
  EXPECT_EQ(frames[0].header.tensor, 3u);
  EXPECT_EQ(frames[0].header.payload_len, payload.size());
  EXPECT_EQ(frames[0].payload, payload);
}

TEST(Frame, EmptyPayloadRoundTrip) {
  util::ByteBuffer wire;
  EncodeFrame(MsgType::kByeAck, 0, 0, util::ByteSpan(), wire);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes);
  std::vector<Frame> frames = ParseAll(wire.span());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.type, MsgType::kByeAck);
  EXPECT_TRUE(frames[0].payload.empty());
}

TEST(Frame, MultipleFramesInOneFeed) {
  util::ByteBuffer wire;
  for (std::uint32_t t = 0; t < 5; ++t) {
    util::ByteBuffer payload = MakePayload(10 + t, static_cast<uint8_t>(t));
    EncodeFrame(MsgType::kPull, 9, t, payload.span(), wire);
  }
  std::vector<Frame> frames = ParseAll(wire.span());
  ASSERT_EQ(frames.size(), 5u);
  for (std::uint32_t t = 0; t < 5; ++t) {
    EXPECT_EQ(frames[t].header.tensor, t);
    EXPECT_EQ(frames[t].payload.size(), 10 + t);
  }
}

// Fuzz: a stream of frames fed one random chunk at a time must parse to
// the identical sequence no matter where the chunk boundaries land —
// including boundaries inside the magic, the length field, and the CRC.
TEST(Frame, FuzzedSplitPointsReassembleExactly) {
  util::Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    util::ByteBuffer wire;
    const int num_frames = 1 + static_cast<int>(rng.Next() % 6);
    std::vector<std::size_t> payload_sizes;
    for (int f = 0; f < num_frames; ++f) {
      const std::size_t n = rng.Next() % 300;
      payload_sizes.push_back(n);
      util::ByteBuffer payload =
          MakePayload(n, static_cast<std::uint8_t>(rng.Next()));
      EncodeFrame(MsgType::kPush, static_cast<std::uint64_t>(round),
                  static_cast<std::uint32_t>(f), payload.span(), wire);
    }

    FrameParser parser;
    std::vector<Frame> frames;
    std::size_t pos = 0;
    while (pos < wire.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.Next() % 64, wire.size() - pos);
      ASSERT_TRUE(parser.Feed(
          util::ByteSpan(wire.data() + pos, chunk), &frames));
      pos += chunk;
    }
    ASSERT_EQ(frames.size(), static_cast<std::size_t>(num_frames))
        << "round " << round;
    for (int f = 0; f < num_frames; ++f) {
      EXPECT_EQ(frames[static_cast<std::size_t>(f)].payload.size(),
                payload_sizes[static_cast<std::size_t>(f)]);
    }
    EXPECT_EQ(parser.buffered_bytes(), 0u);
  }
}

TEST(Frame, BadMagicPoisonsParser) {
  util::ByteBuffer wire;
  EncodeFrame(MsgType::kHello, 0, 0, util::ByteSpan(), wire);
  wire.data()[0] ^= 0xFF;
  FrameParser parser;
  std::vector<Frame> frames;
  EXPECT_FALSE(parser.Feed(wire.span(), &frames));
  EXPECT_EQ(parser.error(), ParseError::kBadMagic);
  EXPECT_TRUE(parser.poisoned());
  EXPECT_TRUE(frames.empty());
  // A poisoned parser ignores any further (even valid) input.
  util::ByteBuffer valid;
  EncodeFrame(MsgType::kHello, 0, 0, util::ByteSpan(), valid);
  EXPECT_FALSE(parser.Feed(valid.span(), &frames));
  EXPECT_TRUE(frames.empty());
}

TEST(Frame, BadVersionDetected) {
  util::ByteBuffer wire;
  EncodeFrame(MsgType::kHello, 0, 0, util::ByteSpan(), wire);
  wire.data()[4] = kProtocolVersion + 1;
  FrameParser parser;
  std::vector<Frame> frames;
  EXPECT_FALSE(parser.Feed(wire.span(), &frames));
  EXPECT_EQ(parser.error(), ParseError::kBadVersion);
}

TEST(Frame, BadTypeDetected) {
  util::ByteBuffer wire;
  EncodeFrame(MsgType::kHello, 0, 0, util::ByteSpan(), wire);
  wire.data()[5] = 0;  // below the valid MsgType range
  FrameParser parser;
  std::vector<Frame> frames;
  EXPECT_FALSE(parser.Feed(wire.span(), &frames));
  EXPECT_EQ(parser.error(), ParseError::kBadType);
}

TEST(Frame, OversizedLengthRejectedBeforeBuffering) {
  util::ByteBuffer wire;
  EncodeFrame(MsgType::kPush, 1, 0, MakePayload(8, 1).span(), wire);
  const std::uint32_t huge = kMaxPayloadBytes + 1;
  std::memcpy(wire.data() + 20, &huge, sizeof(huge));
  FrameParser parser;
  std::vector<Frame> frames;
  // Rejected from the header alone — the parser must not wait for (or try
  // to allocate) a 64 MiB payload that will never arrive.
  EXPECT_FALSE(parser.Feed(
      util::ByteSpan(wire.data(), kFrameHeaderBytes), &frames));
  EXPECT_EQ(parser.error(), ParseError::kOversized);
}

TEST(Frame, CorruptedCrcDetected) {
  util::ByteBuffer wire;
  EncodeFrame(MsgType::kPush, 1, 0, MakePayload(50, 2).span(), wire);
  wire.data()[kFrameHeaderBytes - 1] ^= 0x01;  // flip a CRC bit
  FrameParser parser;
  std::vector<Frame> frames;
  EXPECT_FALSE(parser.Feed(wire.span(), &frames));
  EXPECT_EQ(parser.error(), ParseError::kBadCrc);
}

TEST(Frame, CorruptedPayloadByteDetected) {
  util::ByteBuffer wire;
  EncodeFrame(MsgType::kPush, 1, 0, MakePayload(50, 3).span(), wire);
  wire.data()[kFrameHeaderBytes + 25] ^= 0x40;
  FrameParser parser;
  std::vector<Frame> frames;
  EXPECT_FALSE(parser.Feed(wire.span(), &frames));
  EXPECT_EQ(parser.error(), ParseError::kBadCrc);
}

// Fuzz: flipping any single byte anywhere in a frame must either poison
// the parser with a typed error or (never) produce a different frame.
TEST(Frame, FuzzedSingleByteCorruptionNeverYieldsWrongFrame) {
  util::ByteBuffer payload = MakePayload(40, 5);
  util::ByteBuffer wire;
  EncodeFrame(MsgType::kStepStats, 17, 2, payload.span(), wire);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    util::ByteBuffer corrupted = wire;
    corrupted.data()[i] ^= 0x5A;
    FrameParser parser;
    std::vector<Frame> frames;
    const bool ok = parser.Feed(corrupted.span(), &frames);
    if (ok) {
      // Only acceptable when the frame is incomplete (a length-field
      // corruption that made the parser wait for more bytes).
      EXPECT_TRUE(frames.empty()) << "byte " << i;
      EXPECT_GT(parser.buffered_bytes(), 0u) << "byte " << i;
    } else {
      EXPECT_NE(parser.error(), ParseError::kNone) << "byte " << i;
    }
  }
}

TEST(Frame, PartialHeaderThenRestParses) {
  util::ByteBuffer wire;
  EncodeFrame(MsgType::kBye, 0, 0, MakePayload(10, 9).span(), wire);
  FrameParser parser;
  std::vector<Frame> frames;
  // One byte at a time — the ultimate short-read torture.
  for (std::size_t i = 0; i < wire.size(); ++i) {
    ASSERT_TRUE(parser.Feed(util::ByteSpan(wire.data() + i, 1), &frames));
    if (i + 1 < wire.size()) {
      EXPECT_TRUE(frames.empty());
    }
  }
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.type, MsgType::kBye);
}

TEST(Frame, EncodeRejectsOversizedPayloadByCheck) {
  // EncodeFrame CHECKs payloads over kMaxPayloadBytes; regular payloads
  // below the limit must pass. (Death tests are not used in this suite;
  // this documents the boundary from the accepting side.)
  util::ByteBuffer wire;
  util::ByteBuffer payload = MakePayload(1024, 1);
  EncodeFrame(MsgType::kPush, 0, 0, payload.span(), wire);
  EXPECT_EQ(wire.size(), kFrameHeaderBytes + 1024);
}

TEST(Frame, MsgTypeNamesAreStable) {
  EXPECT_STREQ(MsgTypeName(MsgType::kHello), "HELLO");
  EXPECT_STREQ(MsgTypeName(MsgType::kPull), "PULL");
  EXPECT_STREQ(MsgTypeName(MsgType::kError), "ERROR");
  EXPECT_STREQ(MsgTypeName(MsgType::kRejoin), "REJOIN");
  EXPECT_STREQ(MsgTypeName(MsgType::kRejoinAck), "REJOIN_ACK");
  EXPECT_STREQ(MsgTypeName(MsgType::kEvict), "EVICT");
  EXPECT_STREQ(MsgTypeName(MsgType::kTelemetry), "TELEMETRY");
  EXPECT_STREQ(MsgTypeName(MsgType::kHeartbeat), "HEARTBEAT");
  EXPECT_STREQ(ParseErrorName(ParseError::kBadCrc), "bad_crc");
  EXPECT_FALSE(IsValidMsgType(0));
  EXPECT_FALSE(IsValidMsgType(14));
  EXPECT_TRUE(IsValidMsgType(1));
  EXPECT_TRUE(IsValidMsgType(8));
  EXPECT_TRUE(IsValidMsgType(11));
  EXPECT_TRUE(IsValidMsgType(12));
  EXPECT_TRUE(IsValidMsgType(13));
}

// Frames from every older protocol version (v1 pre-fault-tolerance, v2
// pre-epoch, v3 pre-telemetry, v4 pre-block-codec, v5 pre-liveness) must
// be rejected at the parser with a typed kBadVersion, not misinterpreted —
// a v5 peer cannot speak to a v6 endpoint at all, so a version-skewed
// HELLO dies as a clean "protocol" reject before any payload decode.
TEST(Frame, OldProtocolVersionsRejected) {
  static_assert(kProtocolVersion == 6,
                "update this test alongside the protocol version");
  for (std::uint8_t old_version :
       {std::uint8_t{1}, std::uint8_t{2}, std::uint8_t{3}, std::uint8_t{4},
        std::uint8_t{5}}) {
    util::ByteBuffer wire;
    EncodeFrame(MsgType::kHello, 0, 0, MakePayload(8, 4).span(), wire);
    wire.data()[4] = old_version;
    FrameParser parser;
    std::vector<Frame> frames;
    EXPECT_FALSE(parser.Feed(wire.span(), &frames));
    EXPECT_EQ(parser.error(), ParseError::kBadVersion)
        << "version " << static_cast<int>(old_version);
    EXPECT_TRUE(frames.empty());
  }
}

// The fault-tolerance frame types added in protocol v2 round-trip through
// encode/parse like any other frame, including the fuzzed split-point path.
TEST(Frame, RejoinAndEvictFramesRoundTrip) {
  const MsgType kNewTypes[] = {MsgType::kRejoin, MsgType::kRejoinAck,
                               MsgType::kEvict};
  util::Rng rng(0xFA117);
  for (const MsgType type : kNewTypes) {
    util::ByteBuffer payload = MakePayload(24, static_cast<int>(type));
    util::ByteBuffer wire;
    EncodeFrame(type, /*step=*/7, /*tensor=*/0, payload.span(), wire);
    FrameParser parser;
    std::vector<Frame> frames;
    // Feed in random chunks, as recv(2) would deliver them.
    std::size_t off = 0;
    while (off < wire.size()) {
      const std::size_t n = 1 + static_cast<std::size_t>(
                                    rng.Below(wire.size() - off));
      ASSERT_TRUE(parser.Feed(util::ByteSpan(wire.data() + off, n), &frames));
      off += n;
    }
    ASSERT_EQ(frames.size(), 1u) << MsgTypeName(type);
    EXPECT_EQ(frames[0].header.type, type);
    EXPECT_EQ(frames[0].header.step, 7u);
    EXPECT_EQ(frames[0].payload.size(), payload.size());
  }
}

// --- protocol v3 handshake payload codecs ---------------------------------

TEST(Handshake, HelloRoundTrip) {
  HandshakePayload in;
  in.worker_id = 3;
  in.plan_hash = 0xDEADBEEFCAFEF00Dull;
  in.codec = "3lc";
  in.block_codec = 3;  // lz+rans
  in.epoch = 0;        // fresh worker
  util::ByteBuffer wire;
  EncodeHandshake(in, /*rejoin=*/false, wire);
  const HandshakePayload out = DecodeHandshake(wire.span(), /*rejoin=*/false);
  EXPECT_EQ(out.worker_id, in.worker_id);
  EXPECT_EQ(out.plan_hash, in.plan_hash);
  EXPECT_EQ(out.codec, in.codec);
  EXPECT_EQ(out.block_codec, in.block_codec);
  EXPECT_EQ(out.epoch, in.epoch);
}

TEST(Handshake, RejoinRoundTripCarriesEpochAndNextStep) {
  HandshakePayload in;
  in.worker_id = 1;
  in.plan_hash = 42;
  in.codec = "none";
  in.block_codec = 1;  // lz
  in.epoch = 7;        // the incarnation this worker last spoke to
  in.next_step = 19;   // first step it has not applied
  util::ByteBuffer wire;
  EncodeHandshake(in, /*rejoin=*/true, wire);
  const HandshakePayload out = DecodeHandshake(wire.span(), /*rejoin=*/true);
  EXPECT_EQ(out.worker_id, in.worker_id);
  EXPECT_EQ(out.block_codec, 1);
  EXPECT_EQ(out.epoch, 7u);
  EXPECT_EQ(out.next_step, 19u);
}

TEST(Handshake, AckRoundTrips) {
  HandshakeAckPayload in;
  in.num_workers = 4;
  in.total_steps = 100;
  in.plan_hash = 0x1234;
  in.block_codec = 2;  // rans
  in.epoch = 2;
  util::ByteBuffer hello_ack;
  EncodeHandshakeAck(in, /*rejoin=*/false, hello_ack);
  HandshakeAckPayload out =
      DecodeHandshakeAck(hello_ack.span(), /*rejoin=*/false);
  EXPECT_EQ(out.num_workers, 4u);
  EXPECT_EQ(out.total_steps, 100u);
  EXPECT_EQ(out.block_codec, 2);
  EXPECT_EQ(out.epoch, 2u);

  in.collect_step = 57;
  util::ByteBuffer rejoin_ack;
  EncodeHandshakeAck(in, /*rejoin=*/true, rejoin_ack);
  out = DecodeHandshakeAck(rejoin_ack.span(), /*rejoin=*/true);
  EXPECT_EQ(out.epoch, 2u);
  EXPECT_EQ(out.collect_step, 57u);
}

// A HELLO and a REJOIN from the same worker differ on the wire (REJOIN
// carries next_step); decoding one as the other must throw or mismatch,
// never silently succeed with garbage fields.
TEST(Handshake, WrongModeDecodeThrows) {
  HandshakePayload in;
  in.worker_id = 0;
  in.plan_hash = 1;
  in.codec = "3lc";
  in.epoch = 3;
  in.next_step = 12;
  util::ByteBuffer rejoin_wire;
  EncodeHandshake(in, /*rejoin=*/true, rejoin_wire);
  EXPECT_THROW(DecodeHandshake(rejoin_wire.span(), /*rejoin=*/false),
               std::exception);
  util::ByteBuffer hello_wire;
  EncodeHandshake(in, /*rejoin=*/false, hello_wire);
  EXPECT_THROW(DecodeHandshake(hello_wire.span(), /*rejoin=*/true),
               std::exception);
}

// Fuzz: every truncation of a handshake payload must throw — the decoders
// sit behind the server's OnFrame try/catch, so "throw" is the contract
// that turns a malformed handshake into a clean Fail instead of UB.
TEST(Handshake, EveryTruncationThrows) {
  for (const bool rejoin : {false, true}) {
    HandshakePayload in;
    in.worker_id = 2;
    in.plan_hash = 0xABCDEF;
    in.codec = "3lc";
    in.epoch = rejoin ? 4 : 0;
    in.next_step = 9;
    util::ByteBuffer wire;
    EncodeHandshake(in, rejoin, wire);
    for (std::size_t n = 0; n < wire.size(); ++n) {
      EXPECT_THROW(DecodeHandshake(util::ByteSpan(wire.data(), n), rejoin),
                   std::exception)
          << (rejoin ? "REJOIN" : "HELLO") << " truncated to " << n;
    }
    // Trailing garbage is rejected too (a frame is exactly one payload).
    util::ByteBuffer padded = wire;
    padded.PushByte(0);
    EXPECT_THROW(DecodeHandshake(padded.span(), rejoin), std::exception);
  }
}

TEST(Handshake, EveryAckTruncationThrows) {
  for (const bool rejoin : {false, true}) {
    HandshakeAckPayload in;
    in.num_workers = 2;
    in.total_steps = 8;
    in.plan_hash = 77;
    in.epoch = 5;
    in.collect_step = 6;
    util::ByteBuffer wire;
    EncodeHandshakeAck(in, rejoin, wire);
    for (std::size_t n = 0; n < wire.size(); ++n) {
      EXPECT_THROW(
          DecodeHandshakeAck(util::ByteSpan(wire.data(), n), rejoin),
          std::exception)
          << (rejoin ? "REJOIN_ACK" : "HELLO_ACK") << " truncated to " << n;
    }
    util::ByteBuffer padded = wire;
    padded.PushByte(0);
    EXPECT_THROW(DecodeHandshakeAck(padded.span(), rejoin), std::exception);
  }
}

// Fuzz: randomly corrupted handshake bytes either decode (possibly to
// different field values — CRC catches corruption a layer below) or throw;
// they never crash. The codec-length field is the dangerous byte: a huge
// length must throw, not allocate or read out of bounds.
TEST(Handshake, FuzzedCorruptionNeverCrashes) {
  util::Rng rng(0xEB0C);
  HandshakePayload in;
  in.worker_id = 1;
  in.plan_hash = 0x5555AAAA5555AAAAull;
  in.codec = "3lc";
  in.epoch = 6;
  in.next_step = 33;
  for (const bool rejoin : {false, true}) {
    util::ByteBuffer wire;
    EncodeHandshake(in, rejoin, wire);
    for (int round = 0; round < 200; ++round) {
      util::ByteBuffer corrupted = wire;
      const std::size_t at = static_cast<std::size_t>(
          rng.Below(corrupted.size()));
      corrupted.data()[at] ^= static_cast<std::uint8_t>(1 + rng.Next() % 255);
      try {
        const HandshakePayload out = DecodeHandshake(corrupted.span(), rejoin);
        (void)out;
      } catch (const std::exception&) {
        // acceptable: typed rejection
      }
    }
  }
}

// The epoch field lands where the server's stale-incarnation check reads
// it: a REJOIN re-encoded with a bumped epoch must decode to exactly that
// bumped epoch (the server then Fails it as "ahead of this server").
TEST(Handshake, EpochMismatchIsVisibleToTheServerCheck) {
  HandshakePayload stale;
  stale.worker_id = 0;
  stale.plan_hash = 9;
  stale.codec = "none";
  stale.epoch = 3;
  stale.next_step = 5;
  util::ByteBuffer wire;
  EncodeHandshake(stale, /*rejoin=*/true, wire);
  HandshakePayload seen = DecodeHandshake(wire.span(), /*rejoin=*/true);
  const std::uint64_t server_epoch = 2;  // server restored an older epoch
  EXPECT_GT(seen.epoch, server_epoch)
      << "the stale-server guard must fire on this payload";
}

// --- protocol v4 telemetry payload codec ----------------------------------

TelemetryPayload MakeTelemetry() {
  TelemetryPayload p;
  p.forward_backward_ns = 1'200'000;
  p.encode_ns = 340'000;
  p.push_ns = 95'000;
  p.pull_wait_ns = 2'750'000;
  p.decode_ns = 180'000;
  p.bytes_out = 48'123;
  p.bytes_in = 47'991;
  p.ea_l2 = 0.03125;
  p.rejoins = 2;
  p.stage1_bytes_out = 52'000;
  p.stage1_bytes_in = 51'500;
  return p;
}

TEST(TelemetryCodec, RoundTrip) {
  const TelemetryPayload in = MakeTelemetry();
  util::ByteBuffer wire;
  EncodeTelemetry(in, wire);
  const TelemetryPayload out = DecodeTelemetry(wire.span());
  EXPECT_EQ(out.forward_backward_ns, in.forward_backward_ns);
  EXPECT_EQ(out.encode_ns, in.encode_ns);
  EXPECT_EQ(out.push_ns, in.push_ns);
  EXPECT_EQ(out.pull_wait_ns, in.pull_wait_ns);
  EXPECT_EQ(out.decode_ns, in.decode_ns);
  EXPECT_EQ(out.bytes_out, in.bytes_out);
  EXPECT_EQ(out.bytes_in, in.bytes_in);
  EXPECT_DOUBLE_EQ(out.ea_l2, in.ea_l2);
  EXPECT_EQ(out.rejoins, in.rejoins);
  EXPECT_EQ(out.stage1_bytes_out, in.stage1_bytes_out);
  EXPECT_EQ(out.stage1_bytes_in, in.stage1_bytes_in);
}

// Every truncation must throw: the decoder sits behind the server's
// OnFrame try/catch, so "throw" is the contract that turns a malformed
// telemetry record into a clean worker Fail instead of UB.
TEST(TelemetryCodec, EveryTruncationThrows) {
  util::ByteBuffer wire;
  EncodeTelemetry(MakeTelemetry(), wire);
  for (std::size_t n = 0; n < wire.size(); ++n) {
    EXPECT_THROW(DecodeTelemetry(util::ByteSpan(wire.data(), n)),
                 std::exception)
        << "TELEMETRY truncated to " << n;
  }
}

// Bytes after the length-prefixed envelope are a framing bug, not a
// future field — a frame is exactly one payload.
TEST(TelemetryCodec, TrailingBytesAfterEnvelopeThrow) {
  util::ByteBuffer wire;
  EncodeTelemetry(MakeTelemetry(), wire);
  util::ByteBuffer padded = wire;
  padded.PushByte(0);
  EXPECT_THROW(DecodeTelemetry(padded.span()), std::exception);
}

// Bytes INSIDE the envelope beyond the known fields are fields from a
// newer writer: a v4 reader must decode the fields it knows and skip the
// rest, so the record format can grow without another version bump.
TEST(TelemetryCodec, UnknownFutureFieldsInsideEnvelopeAreSkipped) {
  const TelemetryPayload in = MakeTelemetry();
  util::ByteBuffer wire;
  EncodeTelemetry(in, wire);
  // Grow the envelope by 12 bytes of hypothetical future fields: bump the
  // u32 length prefix and append the bytes.
  std::uint32_t record_len;
  std::memcpy(&record_len, wire.data(), sizeof(record_len));
  record_len += 12;
  util::ByteBuffer extended;
  extended.AppendU32(record_len);
  for (std::size_t i = 4; i < wire.size(); ++i) {
    extended.PushByte(wire.data()[i]);
  }
  extended.AppendU64(0xFEEDFACECAFEBEEFull);  // future u64 field
  extended.AppendU32(7);                      // future u32 field
  const TelemetryPayload out = DecodeTelemetry(extended.span());
  EXPECT_EQ(out.forward_backward_ns, in.forward_backward_ns);
  EXPECT_EQ(out.pull_wait_ns, in.pull_wait_ns);
  EXPECT_EQ(out.rejoins, in.rejoins);
  EXPECT_DOUBLE_EQ(out.ea_l2, in.ea_l2);
}

// Fuzz: randomly corrupted telemetry bytes either decode (possibly to
// different values — CRC catches corruption a layer below) or throw; they
// never crash. The length prefix is the dangerous field: a huge value
// must throw, not allocate or read out of bounds.
TEST(TelemetryCodec, FuzzedCorruptionNeverCrashes) {
  util::Rng rng(0x7E1E);
  util::ByteBuffer wire;
  EncodeTelemetry(MakeTelemetry(), wire);
  for (int round = 0; round < 200; ++round) {
    util::ByteBuffer corrupted = wire;
    const std::size_t at =
        static_cast<std::size_t>(rng.Below(corrupted.size()));
    corrupted.data()[at] ^= static_cast<std::uint8_t>(1 + rng.Next() % 255);
    try {
      const TelemetryPayload out = DecodeTelemetry(corrupted.span());
      (void)out;
    } catch (const std::exception&) {
      // acceptable: typed rejection
    }
  }
}

// A TELEMETRY frame rides the same wire as PUSH/PULL: it must round-trip
// through the FrameParser under random chunking like any other type.
TEST(TelemetryCodec, TelemetryFrameRoundTripsThroughParser) {
  util::ByteBuffer payload;
  EncodeTelemetry(MakeTelemetry(), payload);
  util::ByteBuffer wire;
  EncodeFrame(MsgType::kTelemetry, /*step=*/23, /*tensor=*/0, payload.span(),
              wire);
  util::Rng rng(0x3E1E);
  FrameParser parser;
  std::vector<Frame> frames;
  std::size_t off = 0;
  while (off < wire.size()) {
    const std::size_t n =
        1 + static_cast<std::size_t>(rng.Below(wire.size() - off));
    ASSERT_TRUE(parser.Feed(util::ByteSpan(wire.data() + off, n), &frames));
    off += n;
  }
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.type, MsgType::kTelemetry);
  EXPECT_EQ(frames[0].header.step, 23u);
  const TelemetryPayload out = DecodeTelemetry(frames[0].payload.span());
  EXPECT_EQ(out.bytes_out, 48'123u);
}

// --- protocol v6 heartbeat payload codec -----------------------------------

HeartbeatPayload MakeHeartbeat() {
  HeartbeatPayload p;
  p.role = 1;  // server
  p.seq = 0x0123456789ABCDEFull;
  p.progress = 417;
  return p;
}

TEST(HeartbeatCodec, RoundTrip) {
  const HeartbeatPayload in = MakeHeartbeat();
  util::ByteBuffer wire;
  EncodeHeartbeat(in, wire);
  const HeartbeatPayload out = DecodeHeartbeat(wire.span());
  EXPECT_EQ(out.role, in.role);
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.progress, in.progress);
}

// Every truncation must throw: the decoder sits behind OnFrame try/catch
// on the server and a catch in the worker's wait loop, so "throw" is the
// contract that turns a malformed heartbeat into a clean typed failure.
TEST(HeartbeatCodec, EveryTruncationThrows) {
  util::ByteBuffer wire;
  EncodeHeartbeat(MakeHeartbeat(), wire);
  for (std::size_t n = 0; n < wire.size(); ++n) {
    EXPECT_THROW(DecodeHeartbeat(util::ByteSpan(wire.data(), n)),
                 std::exception)
        << "HEARTBEAT truncated to " << n;
  }
}

// Bytes after the length-prefixed envelope are a framing bug, not a
// future field — a frame is exactly one payload.
TEST(HeartbeatCodec, TrailingBytesAfterEnvelopeThrow) {
  util::ByteBuffer wire;
  EncodeHeartbeat(MakeHeartbeat(), wire);
  util::ByteBuffer padded = wire;
  padded.PushByte(0);
  EXPECT_THROW(DecodeHeartbeat(padded.span()), std::exception);
}

// Bytes INSIDE the envelope beyond the known fields are fields from a
// newer writer: a v6 reader must decode the fields it knows and skip the
// rest, so the beacon format can grow without another version bump.
TEST(HeartbeatCodec, UnknownFutureFieldsInsideEnvelopeAreSkipped) {
  const HeartbeatPayload in = MakeHeartbeat();
  util::ByteBuffer wire;
  EncodeHeartbeat(in, wire);
  std::uint32_t record_len;
  std::memcpy(&record_len, wire.data(), sizeof(record_len));
  record_len += 12;
  util::ByteBuffer extended;
  extended.AppendU32(record_len);
  for (std::size_t i = 4; i < wire.size(); ++i) {
    extended.PushByte(wire.data()[i]);
  }
  extended.AppendU64(0xFEEDFACECAFEBEEFull);  // future u64 field
  extended.AppendU32(7);                      // future u32 field
  const HeartbeatPayload out = DecodeHeartbeat(extended.span());
  EXPECT_EQ(out.role, in.role);
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.progress, in.progress);
}

// Fuzz: randomly corrupted heartbeat bytes either decode (possibly to
// different values — CRC catches corruption a layer below) or throw; they
// never crash. The length prefix is the dangerous field: a huge value
// must throw, not allocate or read out of bounds.
TEST(HeartbeatCodec, FuzzedCorruptionNeverCrashes) {
  util::Rng rng(0xBEA7);
  util::ByteBuffer wire;
  EncodeHeartbeat(MakeHeartbeat(), wire);
  for (int round = 0; round < 200; ++round) {
    util::ByteBuffer corrupted = wire;
    const std::size_t at =
        static_cast<std::size_t>(rng.Below(corrupted.size()));
    corrupted.data()[at] ^= static_cast<std::uint8_t>(1 + rng.Next() % 255);
    try {
      const HeartbeatPayload out = DecodeHeartbeat(corrupted.span());
      (void)out;
    } catch (const std::exception&) {
      // acceptable: typed rejection
    }
  }
}

// A HEARTBEAT frame rides the same wire as PUSH/PULL: it must round-trip
// through the FrameParser under random chunking like any other type.
TEST(HeartbeatCodec, HeartbeatFrameRoundTripsThroughParser) {
  util::ByteBuffer payload;
  EncodeHeartbeat(MakeHeartbeat(), payload);
  util::ByteBuffer wire;
  EncodeFrame(MsgType::kHeartbeat, /*step=*/0, /*tensor=*/0, payload.span(),
              wire);
  util::Rng rng(0x6EA7);
  FrameParser parser;
  std::vector<Frame> frames;
  std::size_t off = 0;
  while (off < wire.size()) {
    const std::size_t n =
        1 + static_cast<std::size_t>(rng.Below(wire.size() - off));
    ASSERT_TRUE(parser.Feed(util::ByteSpan(wire.data() + off, n), &frames));
    off += n;
  }
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.type, MsgType::kHeartbeat);
  const HeartbeatPayload out = DecodeHeartbeat(frames[0].payload.span());
  EXPECT_EQ(out.seq, 0x0123456789ABCDEFull);
  EXPECT_EQ(out.progress, 417u);
}

}  // namespace
}  // namespace threelc::rpc
