// ClusterView tests: per-worker histogram merge exactness against the
// shared StageProfiler bucket math, straggler attribution on a synthetic
// skewed fleet, duplicate-step dedup, eviction pruning, and the
// pending-barrier bound.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "obs/cluster_view.h"
#include "obs/stage_profiler.h"
#include "util/rng.h"

namespace threelc::obs {
namespace {

// Matches obs::AppendJsonNumber's double formatting, so quantile needles
// compare against the exact JSON text.
std::string G9(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

WorkerStepRecord MakeRecord(std::uint64_t step) {
  WorkerStepRecord r;
  r.step = step;
  r.forward_backward_ns = 1'000'000;
  r.encode_ns = 200'000;
  r.push_ns = 80'000;
  r.pull_wait_ns = 500'000;
  r.decode_ns = 120'000;
  r.bytes_out = 1000;
  r.bytes_in = 900;
  r.ea_l2 = 0.5;
  r.rejoins = 0;
  return r;
}

// The server-side merged histogram must be bit-identical to one built
// locally from the same samples with the shared bucket math: quantiles
// computed via StageQuantileNs over a reference histogram must match the
// p50/p95/p99 the view reports in its JSON.
TEST(ClusterView, HistogramMergeMatchesReferenceBucketMath) {
  ClusterView view;
  util::Rng rng(0xC1);
  std::uint64_t ref_hist[ClusterView::kHistogramBuckets] = {};
  std::uint64_t ref_total = 0;
  for (std::uint64_t step = 0; step < 500; ++step) {
    WorkerStepRecord r = MakeRecord(step);
    // Spread forward_backward over ~5 decades so many buckets fill.
    r.forward_backward_ns = 1'000 + rng.Next() % 100'000'000;
    ref_hist[StageLog2Bucket(r.forward_backward_ns)]++;
    ref_total++;
    view.Ingest(0, r);
  }
  const double want_p50 = StageQuantileNs(
      ref_hist, ClusterView::kHistogramBuckets, ref_total, 0.50);
  const double want_p99 = StageQuantileNs(
      ref_hist, ClusterView::kHistogramBuckets, ref_total, 0.99);
  const std::string json = view.ToJson();
  // The worker's forward_backward phase carries exactly those quantiles.
  const std::string p50_needle = "\"p50_ns\":" + G9(want_p50);
  const std::string p99_needle = "\"p99_ns\":" + G9(want_p99);
  EXPECT_NE(json.find(p50_needle), std::string::npos) << json;
  EXPECT_NE(json.find(p99_needle), std::string::npos) << json;
}

// Two workers' histograms merged into the fleet view must equal a single
// histogram built from the concatenated samples.
TEST(ClusterView, FleetMergeIsExact) {
  ClusterView view;
  util::Rng rng(0xC2);
  std::uint64_t ref_hist[ClusterView::kHistogramBuckets] = {};
  std::uint64_t ref_total = 0;
  for (int w = 0; w < 2; ++w) {
    for (std::uint64_t step = 0; step < 300; ++step) {
      WorkerStepRecord r = MakeRecord(step);
      r.encode_ns = 500 + rng.Next() % 10'000'000;
      ref_hist[StageLog2Bucket(r.encode_ns)]++;
      ref_total++;
      view.Ingest(w, r);
    }
  }
  const double want_p95 = StageQuantileNs(
      ref_hist, ClusterView::kHistogramBuckets, ref_total, 0.95);
  const std::string json = view.ToJson();
  // The fleet block is the last "encode" occurrence in the JSON.
  const std::size_t fleet = json.rfind("\"encode\"");
  ASSERT_NE(fleet, std::string::npos);
  const std::string tail = json.substr(fleet);
  EXPECT_NE(tail.find("\"p95_ns\":" + G9(want_p95)), std::string::npos)
      << tail;
}

TEST(ClusterView, DuplicateAndOutOfOrderStepsAreDropped) {
  ClusterView view;
  view.Ingest(1, MakeRecord(5));
  view.Ingest(1, MakeRecord(5));  // duplicate (rejoin replay)
  view.Ingest(1, MakeRecord(3));  // out of order
  view.Ingest(1, MakeRecord(6));
  const std::string json = view.ToJson();
  EXPECT_NE(json.find("\"records\":2"), std::string::npos) << json;
}

// Synthetic skewed fleet: worker 2 is consistently last to the barrier
// with a dominant pull_wait (network) phase. The view must name it as the
// current straggler and attribute its waits to "network".
TEST(ClusterView, StragglerAttributionOnSkewedFleet) {
  ClusterView view;
  for (std::uint64_t step = 0; step < 20; ++step) {
    view.RecordBarrier(step, /*last_worker=*/2, /*wait_ms=*/40.0,
                       /*contributors=*/3);
    for (int w = 0; w < 3; ++w) {
      WorkerStepRecord r = MakeRecord(step);
      if (w == 2) {
        // Network-bound: push + pull_wait dwarf compute and codec time.
        r.pull_wait_ns = 60'000'000;
        r.push_ns = 5'000'000;
      }
      view.Ingest(w, r);
    }
  }
  EXPECT_EQ(view.current_straggler(), 2);
  // First RecordBarrier set the straggler from "none"; no flips after.
  EXPECT_EQ(view.straggler_flips(), 0u);
  const std::string json = view.ToJson();
  EXPECT_NE(json.find("\"straggler_steps\":20"), std::string::npos) << json;
  EXPECT_NE(json.find("\"network\":20"), std::string::npos) << json;
  EXPECT_NE(json.find("\"current\":2"), std::string::npos) << json;

  std::ostringstream prom;
  view.WritePrometheus(prom);
  const std::string text = prom.str();
  EXPECT_NE(text.find("threelc_cluster_straggler_cause_total{worker=\"2\","
                      "cause=\"network\"} 20"),
            std::string::npos)
      << text;
}

// A compute-bound straggler must be attributed to "compute", and a flip
// from one straggler to another must be counted.
TEST(ClusterView, StragglerFlipAndComputeAttribution) {
  ClusterView view;
  view.RecordBarrier(0, /*last_worker=*/0, 10.0, 2);
  WorkerStepRecord slow = MakeRecord(0);
  slow.forward_backward_ns = 90'000'000;  // compute dominates
  view.Ingest(0, slow);
  EXPECT_EQ(view.current_straggler(), 0);

  view.RecordBarrier(1, /*last_worker=*/1, 12.0, 2);
  EXPECT_EQ(view.current_straggler(), 1);
  EXPECT_EQ(view.straggler_flips(), 1u);

  const std::string json = view.ToJson();
  EXPECT_NE(json.find("\"compute\":1"), std::string::npos) << json;
}

TEST(ClusterView, RemoveWorkerPrunesAllState) {
  ClusterView view;
  for (std::uint64_t step = 0; step < 4; ++step) {
    view.RecordBarrier(step, /*last_worker=*/1, 5.0, 2);
    view.Ingest(0, MakeRecord(step));
    view.Ingest(1, MakeRecord(step));
  }
  EXPECT_EQ(view.worker_count(), 2u);
  EXPECT_EQ(view.current_straggler(), 1);
  view.RemoveWorker(1);
  EXPECT_EQ(view.worker_count(), 1u);
  EXPECT_EQ(view.current_straggler(), -1);
  const std::string json = view.ToJson();
  EXPECT_EQ(json.find("\"1\":{"), std::string::npos) << json;
  std::ostringstream prom;
  view.WritePrometheus(prom);
  EXPECT_EQ(prom.str().find("worker=\"1\""), std::string::npos);
}

// Barriers whose straggler never ships a telemetry record (crashed, old
// protocol) must not accumulate without bound.
TEST(ClusterView, PendingBarriersAreBounded) {
  ClusterView view;
  for (std::uint64_t step = 0; step < 1000; ++step) {
    view.RecordBarrier(step, /*last_worker=*/0, 1.0, 2);
  }
  // The worker's record for an old, pruned step attributes nothing; a
  // record for a recent step still works.
  view.Ingest(0, MakeRecord(999));
  const std::string json = view.ToJson();
  EXPECT_NE(json.find("\"straggler_steps\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"barriers_observed\":1000"), std::string::npos)
      << json;
}

// Compression ratio: raw bytes per step over the fleet mean encoded bytes.
TEST(ClusterView, CompressionRatioUsesRawDenominator) {
  ClusterView view;
  view.SetRawBytesPerStep(/*push_raw=*/4000, /*pull_raw=*/4000);
  WorkerStepRecord r = MakeRecord(0);
  r.bytes_out = 1000;  // 4x push compression
  r.bytes_in = 2000;   // 2x pull compression
  view.Ingest(0, r);
  const std::string json = view.ToJson();
  EXPECT_NE(json.find("\"compression_ratio_push\":4"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"compression_ratio_pull\":2"), std::string::npos)
      << json;
}

// The Prometheus exposition must be empty with no workers (quickstart
// /metricsz unchanged) and well-formed with workers: HELP/TYPE exactly
// once per family.
TEST(ClusterView, PrometheusFamiliesDeclaredOnce) {
  ClusterView view;
  std::ostringstream empty;
  view.WritePrometheus(empty);
  EXPECT_TRUE(empty.str().empty());

  for (int w = 0; w < 3; ++w) view.Ingest(w, MakeRecord(1));
  view.RecordBarrier(2, 1, 3.0, 3);
  std::ostringstream out;
  view.WritePrometheus(out);
  const std::string text = out.str();
  const std::vector<std::string> families = {
      "threelc_cluster_workers",
      "threelc_cluster_worker_records_total",
      "threelc_cluster_worker_bytes_total",
      "threelc_cluster_phase_ns",
  };
  for (const std::string& family : families) {
    const std::string help = "# HELP " + family + " ";
    std::size_t count = 0;
    for (std::size_t pos = text.find(help); pos != std::string::npos;
         pos = text.find(help, pos + 1)) {
      ++count;
    }
    EXPECT_EQ(count, 1u) << family << "\n" << text;
  }
}

}  // namespace
}  // namespace threelc::obs
