// StageProfiler: hierarchy paths, cross-thread merge, snapshot semantics,
// log2-histogram quantiles, registry export, and the disabled no-op path.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/stage_profiler.h"

namespace threelc::obs {
namespace {

const StageSample* Find(const std::vector<StageSample>& samples,
                        const std::string& path) {
  for (const StageSample& s : samples) {
    if (s.path == path) return &s;
  }
  return nullptr;
}

TEST(StageProfilerTest, DisabledRecordsNothing) {
  StageProfiler profiler;
  {
    ScopedStage outer(&profiler, "outer");
    ScopedStage inner(&profiler, "inner");
  }
  EXPECT_TRUE(profiler.Snapshot().empty());
  EXPECT_EQ(profiler.stage_count(), 0u);
}

TEST(StageProfilerTest, NullProfilerIsSafe) {
  ScopedStage stage(nullptr, "whatever");  // must not crash
}

TEST(StageProfilerTest, NestingBuildsFullPaths) {
  StageProfiler profiler;
  profiler.set_enabled(true);
  {
    ScopedStage step(&profiler, "step");
    { ScopedStage decode(&profiler, "decode"); }
    { ScopedStage encode(&profiler, "encode"); }
  }
  auto samples = profiler.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_NE(Find(samples, "step"), nullptr);
  EXPECT_NE(Find(samples, "step/decode"), nullptr);
  EXPECT_NE(Find(samples, "step/encode"), nullptr);
  // Sorted by path.
  EXPECT_EQ(samples[0].path, "step");
  EXPECT_EQ(samples[1].path, "step/decode");
  EXPECT_EQ(samples[2].path, "step/encode");
}

TEST(StageProfilerTest, SameLeafUnderDifferentParentsIsDistinct) {
  StageProfiler profiler;
  profiler.set_enabled(true);
  {
    ScopedStage push(&profiler, "push");
    ScopedStage codec(&profiler, "3lc");
  }
  {
    ScopedStage pull(&profiler, "pull");
    ScopedStage codec(&profiler, "3lc");
  }
  auto samples = profiler.Snapshot();
  const StageSample* a = Find(samples, "push/3lc");
  const StageSample* b = Find(samples, "pull/3lc");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->count, 1u);
  EXPECT_EQ(b->count, 1u);
}

TEST(StageProfilerTest, CountsAreExactAndBoundsOrdered) {
  StageProfiler profiler;
  profiler.set_enabled(true);
  constexpr int kIters = 1000;
  for (int i = 0; i < kIters; ++i) {
    ScopedStage stage(&profiler, "work");
  }
  auto samples = profiler.Snapshot();
  const StageSample* s = Find(samples, "work");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, static_cast<std::uint64_t>(kIters));
  EXPECT_LE(s->min_ns, s->max_ns);
  EXPECT_GE(s->total_ns, s->min_ns * kIters);
  EXPECT_LE(s->total_ns, s->max_ns * kIters);
}

TEST(StageProfilerTest, MergesAcrossThreads) {
  StageProfiler profiler;
  profiler.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&profiler] {
      for (int i = 0; i < kIters; ++i) {
        ScopedStage outer(&profiler, "outer");
        ScopedStage inner(&profiler, "inner");
      }
    });
  }
  for (auto& t : threads) t.join();
  auto samples = profiler.Snapshot();
  const StageSample* outer = Find(samples, "outer");
  const StageSample* inner = Find(samples, "outer/inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Exact: every thread's accumulator is merged, no sampling.
  EXPECT_EQ(outer->count, static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_EQ(inner->count, static_cast<std::uint64_t>(kThreads * kIters));
  // One shared path table: the same (parent, name) resolves to one stage
  // id across threads.
  EXPECT_EQ(profiler.stage_count(), 2u);
  // Histogram counts survive the merge: quantiles come from the merged
  // buckets, so they must be populated and ordered.
  EXPECT_GT(inner->p50_ns, 0.0);
  EXPECT_LE(inner->p50_ns, inner->p90_ns);
  EXPECT_LE(inner->p90_ns, inner->p99_ns);
}

TEST(StageProfilerTest, SingleSampleQuantilesCollapse) {
  StageProfiler profiler;
  profiler.set_enabled(true);
  { ScopedStage stage(&profiler, "once"); }
  auto samples = profiler.Snapshot();
  const StageSample* s = Find(samples, "once");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->count, 1u);
  // All quantiles land in the single occupied log2 bucket.
  EXPECT_DOUBLE_EQ(s->p50_ns, s->p90_ns);
  EXPECT_DOUBLE_EQ(s->p90_ns, s->p99_ns);
  // And the bucket brackets the exact recorded duration within the log2
  // histogram's <=50% relative error envelope (bucket [2^b, 2^(b+1))
  // reported as its geometric mid).
  EXPECT_GE(s->p50_ns * 2.0, static_cast<double>(s->min_ns));
  EXPECT_LE(s->p50_ns / 2.0, static_cast<double>(s->max_ns));
}

TEST(StageProfilerTest, ResetZeroesButKeepsStages) {
  StageProfiler profiler;
  profiler.set_enabled(true);
  { ScopedStage stage(&profiler, "work"); }
  EXPECT_EQ(profiler.Snapshot().size(), 1u);
  profiler.Reset();
  // Zero-count stages are omitted from snapshots; the path stays known.
  EXPECT_TRUE(profiler.Snapshot().empty());
  EXPECT_EQ(profiler.stage_count(), 1u);
  { ScopedStage stage(&profiler, "work"); }
  auto samples = profiler.Snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].count, 1u);
}

TEST(StageProfilerTest, ExportToRegistryAsBatchCounters) {
  StageProfiler profiler;
  profiler.set_enabled(true);
  constexpr int kIters = 10;
  for (int i = 0; i < kIters; ++i) {
    ScopedStage stage(&profiler, "work");
  }
  MetricsRegistry registry;
  registry.set_enabled(true);
  profiler.ExportTo(registry);
  auto snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "profile/work");
  EXPECT_EQ(snap.counters[0].events, static_cast<std::uint64_t>(kIters));
  const StageSample* s = Find(profiler.Snapshot(), "work");
  ASSERT_NE(s, nullptr);
  EXPECT_NEAR(snap.counters[0].value,
              static_cast<double>(s->total_ns) * 1e-9, 1e-12);
}

TEST(StageProfilerTest, WritePrometheusEmitsStageFamilies) {
  StageProfiler profiler;
  profiler.set_enabled(true);
  {
    ScopedStage outer(&profiler, "step");
    ScopedStage inner(&profiler, "decode");
  }
  std::ostringstream out;
  profiler.WritePrometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("threelc_stage_step_seconds_total"), std::string::npos);
  EXPECT_NE(text.find("threelc_stage_step_decode_seconds_total"),
            std::string::npos);
  EXPECT_NE(text.find("threelc_stage_step_decode_count_total"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  // Families are declared exactly once each (tools/check_prometheus.py
  // fails the CI scrape otherwise).
  EXPECT_EQ(text.find("# TYPE threelc_stage_step_seconds_total"),
            text.rfind("# TYPE threelc_stage_step_seconds_total"));
}

}  // namespace
}  // namespace threelc::obs
