// Tests for the full 3LC codec: pipeline composition, error accumulation,
// wire format, and the compression-ratio claims of §3.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "compress/quantize3.h"
#include "compress/quartic.h"
#include "compress/three_lc.h"
#include "compress/zero_run.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace threelc::compress {
namespace {

using tensor::Shape;
using tensor::Tensor;

Tensor RandomTensor(Shape shape, std::uint64_t seed, float stddev = 1.0f) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  tensor::FillNormal(t, rng, 0.0f, stddev);
  return t;
}

TEST(ThreeLC, NameReflectsOptions) {
  EXPECT_EQ(ThreeLC({1.0f, true, true}).name(), "3LC (s=1)");
  EXPECT_EQ(ThreeLC({1.75f, true, true}).name(), "3LC (s=1.75)");
  EXPECT_EQ(ThreeLC({1.0f, false, true}).name(), "3LC (s=1, no ZRE)");
  EXPECT_EQ(ThreeLC({1.0f, true, false}).name(), "3LC (s=1, no EA)");
}

TEST(ThreeLC, RoundTripErrorBoundedByHalfM) {
  ThreeLC codec({1.0f, true, true});
  Tensor in = RandomTensor(Shape{1000}, 1);
  auto ctx = codec.MakeContext(in.shape());
  Tensor out = RoundTrip(codec, in, *ctx);
  const float m = tensor::MaxAbs(in);  // s = 1
  EXPECT_LE(tensor::MaxAbsDiff(in, out), m / 2.0f + 1e-6f);
}

TEST(ThreeLC, ZeroTensorCompressesAtLeast280x) {
  // Paper §3.3: an all-zero float32 tensor reaches 280x compression.
  ThreeLC codec({1.0f, true, true});
  Tensor zero(Shape{70000});
  auto ctx = codec.MakeContext(zero.shape());
  util::ByteBuffer buf;
  codec.Encode(zero, *ctx, buf);
  const double ratio = CompressionRatio(70000, buf.size());
  EXPECT_GE(ratio, 270.0);  // header bytes shave a little off 280
  Tensor out(zero.shape());
  util::ByteReader reader(buf);
  codec.Decode(reader, out);
  EXPECT_EQ(tensor::MaxAbs(out), 0.0f);
}

TEST(ThreeLC, WithoutZreIsExactlyQuarticSize) {
  ThreeLC codec({1.0f, false, true});
  Tensor in = RandomTensor(Shape{1000}, 2);
  auto ctx = codec.MakeContext(in.shape());
  util::ByteBuffer buf;
  codec.Encode(in, *ctx, buf);
  // 4 (M) + 4 (len) + ceil(1000/5).
  EXPECT_EQ(buf.size(), 8u + 200u);
}

TEST(ThreeLC, ZreNeverLargerThanQuartic) {
  for (float s : {1.0f, 1.5f, 1.9f}) {
    ThreeLC with({s, true, true});
    ThreeLC without({s, false, true});
    Tensor in = RandomTensor(Shape{5000}, 3);
    auto ctx1 = with.MakeContext(in.shape());
    auto ctx2 = without.MakeContext(in.shape());
    util::ByteBuffer b1, b2;
    with.Encode(in, *ctx1, b1);
    without.Encode(in, *ctx2, b2);
    EXPECT_LE(b1.size(), b2.size()) << "s=" << s;
  }
}

TEST(ThreeLC, HigherSparsityCompressesMore) {
  Tensor in = RandomTensor(Shape{20000}, 4);
  std::size_t prev = SIZE_MAX;
  for (float s : {1.0f, 1.5f, 1.75f, 1.9f}) {
    ThreeLC codec({s, true, true});
    auto ctx = codec.MakeContext(in.shape());
    util::ByteBuffer buf;
    codec.Encode(in, *ctx, buf);
    EXPECT_LT(buf.size(), prev) << "s=" << s;
    prev = buf.size();
  }
}

TEST(ThreeLC, ErrorAccumulationRecoversDroppedMass) {
  // Feeding the same tensor repeatedly, the sum of decoded outputs must
  // converge to step * input (error feedback sends withheld state changes
  // at later steps).
  ThreeLC codec({1.9f, true, true});
  Tensor in = RandomTensor(Shape{500}, 5, 0.1f);
  auto ctx = codec.MakeContext(in.shape());
  Tensor accumulated(in.shape());
  const int steps = 120;
  for (int i = 0; i < steps; ++i) {
    Tensor out = RoundTrip(codec, in, *ctx);
    tensor::Add(accumulated, out);
  }
  Tensor expected = in;
  tensor::Scale(expected, static_cast<float>(steps));
  // Residual is bounded per step, so the relative error shrinks as 1/steps.
  const double rel =
      tensor::Rmse(accumulated, expected) /
      (tensor::MaxAbs(expected) + 1e-12);
  EXPECT_LT(rel, 0.05);
}

TEST(ThreeLC, NoErrorAccumulationForgetsDroppedMass) {
  // Without error accumulation the same experiment keeps a persistent bias
  // for values below the quantization threshold.
  ThreeLCOptions opt{1.9f, true, false};
  ThreeLC codec(opt);
  // A tensor whose small entries always quantize to zero.
  Tensor in(Shape{10}, {1.0f, 0.1f, 0.1f, 0.1f, 0.1f,
                        0.1f, 0.1f, 0.1f, 0.1f, 0.1f});
  auto ctx = codec.MakeContext(in.shape());
  Tensor accumulated(in.shape());
  for (int i = 0; i < 20; ++i) {
    Tensor out = RoundTrip(codec, in, *ctx);
    tensor::Add(accumulated, out);
  }
  // The 0.1 entries never transmit: accumulated stays 0 there.
  EXPECT_EQ(accumulated[1], 0.0f);
  // With EA they would have been about 20 * 0.1 = 2.
}

TEST(ThreeLC, ResidualStateBytesReported) {
  ThreeLC codec({1.0f, true, true});
  auto ctx = codec.MakeContext(Shape{100});
  EXPECT_EQ(ctx->StateBytes(), 400u);
  ThreeLC no_ea({1.0f, true, false});
  auto ctx2 = no_ea.MakeContext(Shape{100});
  EXPECT_EQ(ctx2->StateBytes(), 0u);
}

TEST(ThreeLC, DecodeConsumesExactlyOnePayload) {
  ThreeLC codec({1.5f, true, true});
  Tensor a = RandomTensor(Shape{333}, 6);
  Tensor b = RandomTensor(Shape{333}, 7);
  auto ctx = codec.MakeContext(a.shape());
  util::ByteBuffer buf;
  codec.Encode(a, *ctx, buf);
  codec.Encode(b, *ctx, buf);
  util::ByteReader reader(buf);
  Tensor out(a.shape());
  codec.Decode(reader, out);
  codec.Decode(reader, out);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ThreeLC, CorruptPayloadThrows) {
  ThreeLC codec({1.0f, true, true});
  Tensor in = RandomTensor(Shape{100}, 8);
  auto ctx = codec.MakeContext(in.shape());
  util::ByteBuffer buf;
  codec.Encode(in, *ctx, buf);
  // Truncate the payload.
  util::ByteBuffer truncated;
  truncated.Append(buf.data(), buf.size() / 2);
  util::ByteReader reader(truncated);
  Tensor out(in.shape());
  EXPECT_THROW(codec.Decode(reader, out), std::exception);
}

TEST(ThreeLC, WrongShapeDecodeThrows) {
  ThreeLC codec({1.0f, true, true});
  Tensor in = RandomTensor(Shape{100}, 9);
  auto ctx = codec.MakeContext(in.shape());
  util::ByteBuffer buf;
  codec.Encode(in, *ctx, buf);
  util::ByteReader reader(buf);
  Tensor wrong(Shape{400});
  EXPECT_THROW(codec.Decode(reader, wrong), std::exception);
}

TEST(ThreeLC, MultiDimensionalTensorsSupported) {
  ThreeLC codec({1.0f, true, true});
  Tensor in = RandomTensor(Shape{4, 5, 3, 3}, 10);  // conv-kernel shaped
  auto ctx = codec.MakeContext(in.shape());
  Tensor out = RoundTrip(codec, in, *ctx);
  EXPECT_EQ(out.shape(), in.shape());
  EXPECT_LE(tensor::MaxAbsDiff(in, out), tensor::MaxAbs(in) / 2.0f + 1e-6f);
}

TEST(ThreeLC, DeterministicAcrossRuns) {
  for (int trial = 0; trial < 2; ++trial) {
    ThreeLC codec({1.5f, true, true});
    Tensor in = RandomTensor(Shape{777}, 11);
    auto ctx = codec.MakeContext(in.shape());
    util::ByteBuffer buf;
    codec.Encode(in, *ctx, buf);
    static std::vector<std::uint8_t> first;
    if (trial == 0) {
      first.assign(buf.data(), buf.data() + buf.size());
    } else {
      ASSERT_EQ(first.size(), buf.size());
      for (std::size_t i = 0; i < first.size(); ++i) {
        ASSERT_EQ(first[i], buf.data()[i]);
      }
    }
  }
}

TEST(ThreeLC, GoldenWireFormat) {
  // Freezes the on-wire byte format: [f32 M][u32 len][ZRE(quartic bytes)].
  // A 4x4 tensor built to quantize (s=1, M=0.4, threshold 0.2) to the
  // paper's Figure 3 ternary pattern [0,0,-1,0,1, 0...0], whose quartic
  // encoding is 113 121 121 121 and whose ZRE output is 113 244.
  Tensor in(Shape{4, 4}, {0.0f, 0.1f, -0.4f, 0.0f,
                          0.25f, -0.1f, -0.1f, -0.1f,
                          0.0f, 0.0f, 0.0f, 0.1f,
                          0.0f, 0.1f, -0.1f, 0.0f});
  ThreeLC codec({1.0f, true, true});
  auto ctx = codec.MakeContext(in.shape());
  util::ByteBuffer buf;
  codec.Encode(in, *ctx, buf);
  ASSERT_EQ(buf.size(), 4u + 4u + 2u);
  util::ByteReader reader(buf);
  EXPECT_FLOAT_EQ(reader.ReadF32(), 0.4f);    // M = max|T| * s
  EXPECT_EQ(reader.ReadU32(), 2u);            // ZRE payload length
  EXPECT_EQ(reader.ReadU8(), 113);            // group {-0.3,.1,-.4,0,.2}/M
  EXPECT_EQ(reader.ReadU8(), 244);            // run of three 121s
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ThreeLC, MatchesManuallyComposedStages) {
  // The codec must be exactly quantize3 -> quartic -> ZRE with framing.
  Tensor in = RandomTensor(Shape{1234}, 77);
  ThreeLC codec({1.5f, true, false});  // no EA: single-shot comparison
  auto ctx = codec.MakeContext(in.shape());
  util::ByteBuffer actual;
  codec.Encode(in, *ctx, actual);

  std::vector<std::int8_t> ternary(in.size());
  const float m = Quantize3(in.data(), in.size(), 1.5f, ternary.data());
  util::ByteBuffer quartic;
  QuarticEncode(ternary.data(), in.size(), quartic);
  util::ByteBuffer expected;
  expected.AppendF32(m);
  util::ByteBuffer zre;
  ZeroRunEncode(quartic.span(), zre);
  expected.AppendU32(static_cast<std::uint32_t>(zre.size()));
  expected.Append(zre.span());
  EXPECT_EQ(actual, expected);
}

// ---------- Sparsity sweep: compression ratio behaviour ----------

class ThreeLCSparsitySweep : public ::testing::TestWithParam<float> {};

TEST_P(ThreeLCSparsitySweep, RoundTripErrorWithinConvergenceBound) {
  const float s = GetParam();
  ThreeLC codec({s, true, true});
  Tensor in = RandomTensor(Shape{2048}, 12, 0.2f);
  auto ctx = codec.MakeContext(in.shape());
  Tensor out = RoundTrip(codec, in, *ctx);
  const float m = tensor::MaxAbs(in) * s;
  EXPECT_LE(tensor::MaxAbsDiff(in, out), m / 2.0f + 1e-5f);
  // M/2 < max|in| (paper's convergence argument requires s < 2).
  EXPECT_LT(m / 2.0f, tensor::MaxAbs(in));
}

TEST_P(ThreeLCSparsitySweep, BeatsThresholdingOnTransmittedMagnitude) {
  // Paper §3.1: thresholding transmits the surviving values at their own
  // (small-ish) magnitudes, while sparsity multiplication dequantizes every
  // survivor to M >= its magnitude — so at the same survivor set, 3LC's
  // transmitted mass is at least the thresholded tensor's.
  const float s = GetParam();
  ThreeLC codec({s, true, false});
  Tensor in = RandomTensor(Shape{8192}, 13);
  auto ctx = codec.MakeContext(in.shape());
  Tensor out = RoundTrip(codec, in, *ctx);
  double mass_threshold = 0.0, mass_3lc = 0.0;
  std::size_t survivors = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (out[i] != 0.0f) {
      mass_3lc += std::fabs(out[i]);
      mass_threshold += std::fabs(in[i]);  // what thresholding would send
      ++survivors;
      // Individual survivors are never shrunk.
      EXPECT_GE(std::fabs(out[i]), std::fabs(in[i]) - 1e-5f);
    }
  }
  ASSERT_GT(survivors, 0u);
  EXPECT_GE(mass_3lc, mass_threshold - 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Sparsities, ThreeLCSparsitySweep,
                         ::testing::Values(1.0f, 1.25f, 1.5f, 1.75f, 1.9f));

}  // namespace
}  // namespace threelc::compress
