// Tests for the baseline codecs (paper §5.1) and the generic codec
// contract every design must satisfy.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "compress/compressor.h"
#include "compress/eight_bit.h"
#include "compress/factory.h"
#include "compress/local_steps.h"
#include "compress/mqe_one_bit.h"
#include "compress/none.h"
#include "compress/sparsify.h"
#include "compress/stoch_three.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace threelc::compress {
namespace {

using tensor::Shape;
using tensor::Tensor;

Tensor RandomTensor(Shape shape, std::uint64_t seed, float stddev = 1.0f) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  tensor::FillNormal(t, rng, 0.0f, stddev);
  return t;
}

// ---------- Float32 (baseline) ----------

TEST(Float32Codec, ExactRoundTrip) {
  Float32 codec;
  Tensor in = RandomTensor(Shape{257}, 1);
  auto ctx = codec.MakeContext(in.shape());
  Tensor out = RoundTrip(codec, in, *ctx);
  EXPECT_EQ(tensor::MaxAbsDiff(in, out), 0.0f);
  EXPECT_FALSE(codec.lossy());
}

TEST(Float32Codec, PayloadIsFourBytesPerValue) {
  Float32 codec;
  Tensor in(Shape{100});
  auto ctx = codec.MakeContext(in.shape());
  util::ByteBuffer buf;
  codec.Encode(in, *ctx, buf);
  EXPECT_EQ(buf.size(), 400u);
}

// ---------- 8-bit int ----------

TEST(EightBit, PayloadIsOneBytePerValuePlusScale) {
  EightBitInt codec;
  Tensor in = RandomTensor(Shape{100}, 2);
  auto ctx = codec.MakeContext(in.shape());
  util::ByteBuffer buf;
  codec.Encode(in, *ctx, buf);
  EXPECT_EQ(buf.size(), 104u);
}

TEST(EightBit, QuantizationErrorBounded) {
  EightBitInt codec;
  Tensor in = RandomTensor(Shape{1000}, 3);
  auto ctx = codec.MakeContext(in.shape());
  Tensor out = RoundTrip(codec, in, *ctx);
  const float m = tensor::MaxAbs(in);
  // Max error is half a quantization bucket: M / 127 / 2.
  EXPECT_LE(tensor::MaxAbsDiff(in, out), m / 127.0f / 2.0f + 1e-6f);
}

TEST(EightBit, MaxMagnitudePreserved) {
  EightBitInt codec;
  Tensor in(Shape{3}, {-2.0f, 1.0f, 0.5f});
  auto ctx = codec.MakeContext(in.shape());
  Tensor out = RoundTrip(codec, in, *ctx);
  EXPECT_FLOAT_EQ(out[0], -2.0f);
}

TEST(EightBit, ZeroTensorStaysZero) {
  EightBitInt codec;
  Tensor in(Shape{64});
  auto ctx = codec.MakeContext(in.shape());
  Tensor out = RoundTrip(codec, in, *ctx);
  EXPECT_EQ(tensor::MaxAbs(out), 0.0f);
}

TEST(EightBit, Uses255Levels) {
  // Values -m and +m map to -127 and +127; -128 never appears.
  EightBitInt codec;
  Tensor in(Shape{2}, {-1.0f, 1.0f});
  auto ctx = codec.MakeContext(in.shape());
  util::ByteBuffer buf;
  codec.Encode(in, *ctx, buf);
  util::ByteReader r(buf);
  r.ReadF32();
  EXPECT_EQ(static_cast<std::int8_t>(r.ReadU8()), -127);
  EXPECT_EQ(static_cast<std::int8_t>(r.ReadU8()), 127);
}

// ---------- Stochastic 3-value + QE ----------

TEST(StochThree, PayloadMatchesQuarticSize) {
  StochThreeValueQE codec(1);
  Tensor in = RandomTensor(Shape{1000}, 4);
  auto ctx = codec.MakeContext(in.shape());
  util::ByteBuffer buf;
  codec.Encode(in, *ctx, buf);
  EXPECT_EQ(buf.size(), 8u + 200u);  // M + len + ceil(1000/5)
}

TEST(StochThree, IsUnbiasedEstimator) {
  // Mean of repeated quantizations approaches the input value.
  StochThreeValueQE codec(2);
  Tensor in(Shape{4}, {0.5f, -0.25f, 1.0f, 0.0f});
  auto ctx = codec.MakeContext(in.shape());
  Tensor mean(in.shape());
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    Tensor out = RoundTrip(codec, in, *ctx);
    tensor::Add(mean, out);
  }
  tensor::Scale(mean, 1.0f / static_cast<float>(trials));
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_NEAR(mean[i], in[i], 0.05) << "at " << i;
  }
}

TEST(StochThree, MaxValueAlwaysTransmitted) {
  // |v| == M has selection probability 1.
  StochThreeValueQE codec(3);
  Tensor in(Shape{2}, {1.0f, -0.1f});
  auto ctx = codec.MakeContext(in.shape());
  for (int t = 0; t < 20; ++t) {
    Tensor out = RoundTrip(codec, in, *ctx);
    EXPECT_FLOAT_EQ(out[0], 1.0f);
  }
}

TEST(StochThree, DifferentContextsUseDifferentStreams) {
  StochThreeValueQE codec(4);
  // Varied magnitudes so selection probabilities are strictly in (0, 1).
  Tensor in = RandomTensor(Shape{100}, 42, 0.3f);
  auto ctx1 = codec.MakeContext(in.shape());
  auto ctx2 = codec.MakeContext(in.shape());
  util::ByteBuffer b1, b2;
  codec.Encode(in, *ctx1, b1);
  codec.Encode(in, *ctx2, b2);
  EXPECT_FALSE(b1 == b2);  // same input, independent randomness
}

// ---------- MQE 1-bit ----------

TEST(MqeOneBit, PayloadIsOneBitPerValuePlusTwoScales) {
  MqeOneBit codec;
  Tensor in = RandomTensor(Shape{80}, 5);
  auto ctx = codec.MakeContext(in.shape());
  util::ByteBuffer buf;
  codec.Encode(in, *ctx, buf);
  EXPECT_EQ(buf.size(), 8u + 10u);
}

TEST(MqeOneBit, DequantizesToPartitionMeans) {
  MqeOneBit codec;
  Tensor in(Shape{4}, {1.0f, 3.0f, -2.0f, -4.0f});
  auto ctx = codec.MakeContext(in.shape());
  Tensor out = RoundTrip(codec, in, *ctx);
  EXPECT_FLOAT_EQ(out[0], 2.0f);   // mean of {1, 3}
  EXPECT_FLOAT_EQ(out[1], 2.0f);
  EXPECT_FLOAT_EQ(out[2], -3.0f);  // mean of {-2, -4}
  EXPECT_FLOAT_EQ(out[3], -3.0f);
}

TEST(MqeOneBit, MeanIsPreservedExactly) {
  // Partition-mean dequantization preserves the tensor sum (first encode,
  // zero residual): sum(out) == sum(in).
  MqeOneBit codec;
  Tensor in = RandomTensor(Shape{1001}, 6);
  auto ctx = codec.MakeContext(in.shape());
  Tensor out = RoundTrip(codec, in, *ctx);
  EXPECT_NEAR(tensor::Sum(out), tensor::Sum(in), 1e-2);
}

TEST(MqeOneBit, ErrorFeedbackRecoversMass) {
  MqeOneBit codec;
  Tensor in = RandomTensor(Shape{300}, 7, 0.1f);
  auto ctx = codec.MakeContext(in.shape());
  Tensor accumulated(in.shape());
  const int steps = 60;
  for (int i = 0; i < steps; ++i) {
    Tensor out = RoundTrip(codec, in, *ctx);
    tensor::Add(accumulated, out);
  }
  Tensor expected = in;
  tensor::Scale(expected, static_cast<float>(steps));
  const double rel = tensor::Rmse(accumulated, expected) /
                     (tensor::MaxAbs(expected) + 1e-12);
  EXPECT_LT(rel, 0.1);
}

TEST(MqeOneBit, AllPositiveTensor) {
  MqeOneBit codec;
  Tensor in(Shape{3}, {1.0f, 2.0f, 3.0f});
  auto ctx = codec.MakeContext(in.shape());
  Tensor out = RoundTrip(codec, in, *ctx);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(out[i], 2.0f);
}

// ---------- Sparsification ----------

TEST(Sparsify, NameMatchesPaperLabels) {
  EXPECT_EQ(Sparsify({0.25f, 1024, 1}).name(), "25% sparsification");
  EXPECT_EQ(Sparsify({0.05f, 1024, 1}).name(), "5% sparsification");
}

TEST(Sparsify, SelectsApproximatelyRequestedFraction) {
  SparsifyOptions opt;
  opt.fraction = 0.25f;
  Sparsify codec(opt);
  Tensor in = RandomTensor(Shape{20000}, 8);
  auto ctx = codec.MakeContext(in.shape());
  util::ByteBuffer buf;
  codec.Encode(in, *ctx, buf);
  util::ByteReader r(buf);
  const std::uint32_t count = r.ReadU32();
  EXPECT_NEAR(static_cast<double>(count) / 20000.0, 0.25, 0.05);
}

TEST(Sparsify, TransmittedValuesAreTheLargest) {
  SparsifyOptions opt;
  opt.fraction = 0.05f;
  Sparsify codec(opt);
  Tensor in = RandomTensor(Shape{10000}, 9);
  auto ctx = codec.MakeContext(in.shape());
  Tensor out = RoundTrip(codec, in, *ctx);
  // Every transmitted (nonzero) output must be at least as large as the
  // largest dropped value, up to sampling-threshold slack.
  float min_sent = 1e30f, max_dropped = 0.0f;
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (out[i] != 0.0f) {
      min_sent = std::min(min_sent, std::fabs(out[i]));
    } else {
      max_dropped = std::max(max_dropped, std::fabs(in[i]));
    }
  }
  EXPECT_GT(min_sent * 1.5f, max_dropped);  // sampled threshold slack
}

TEST(Sparsify, SentValuesAreExact) {
  Sparsify codec({0.25f, 1024, 2});
  Tensor in = RandomTensor(Shape{1000}, 10);
  auto ctx = codec.MakeContext(in.shape());
  Tensor out = RoundTrip(codec, in, *ctx);
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (out[i] != 0.0f) EXPECT_FLOAT_EQ(out[i], in[i]);
  }
}

TEST(Sparsify, UnsentValuesAccumulateAndSendLater) {
  Sparsify codec({0.25f, 1024, 3});
  // One dominant value, others small: small ones accumulate until large.
  Tensor in(Shape{8}, {10.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f});
  auto ctx = codec.MakeContext(in.shape());
  Tensor total(in.shape());
  for (int step = 0; step < 40; ++step) {
    Tensor out = RoundTrip(codec, in, *ctx);
    tensor::Add(total, out);
  }
  // After 40 steps each small coordinate must have transmitted most of its
  // accumulated 40.0 mass.
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_GT(total[i], 25.0f) << "at " << i;
  }
}

TEST(Sparsify, BitmapOverheadIsOneBitPerValue) {
  Sparsify codec({0.05f, 1024, 4});
  Tensor in = RandomTensor(Shape{8000}, 11);
  auto ctx = codec.MakeContext(in.shape());
  util::ByteBuffer buf;
  codec.Encode(in, *ctx, buf);
  util::ByteReader r(buf);
  const std::uint32_t count = r.ReadU32();
  EXPECT_EQ(buf.size(), 4u + 1000u + count * 4u);
}

// ---------- Local steps ----------

TEST(LocalSteps, SkipStepsSendOneByte) {
  LocalSteps codec(2);
  Tensor in = RandomTensor(Shape{100}, 12);
  auto ctx = codec.MakeContext(in.shape());
  util::ByteBuffer buf;
  codec.Encode(in, *ctx, buf);  // step 1: skip
  EXPECT_EQ(buf.size(), 1u);
  buf.Clear();
  codec.Encode(in, *ctx, buf);  // step 2: send
  EXPECT_EQ(buf.size(), 1u + 400u);
}

TEST(LocalSteps, AccumulatedSumTransmitted) {
  LocalSteps codec(2);
  Tensor a = RandomTensor(Shape{50}, 13);
  Tensor b = RandomTensor(Shape{50}, 14);
  auto ctx = codec.MakeContext(a.shape());
  Tensor skip = RoundTrip(codec, a, *ctx);
  EXPECT_EQ(tensor::MaxAbs(skip), 0.0f);
  Tensor sent = RoundTrip(codec, b, *ctx);
  Tensor expected = a;
  tensor::Add(expected, b);
  EXPECT_LT(tensor::MaxAbsDiff(sent, expected), 1e-6f);
}

TEST(LocalSteps, NoMassLostOverManySteps) {
  LocalSteps codec(3);
  util::Rng rng(15);
  auto ctx = codec.MakeContext(Shape{20});
  Tensor total_in(Shape{20}), total_out(Shape{20});
  for (int step = 0; step < 30; ++step) {  // multiple of period: all flushed
    Tensor in = RandomTensor(Shape{20}, 100 + step);
    tensor::Add(total_in, in);
    Tensor out = RoundTrip(codec, in, *ctx);
    tensor::Add(total_out, out);
  }
  EXPECT_LT(tensor::MaxAbsDiff(total_in, total_out), 1e-4f);
}

// ---------- Factory & generic contract ----------

TEST(Factory, Table1DesignsHaveElevenRows) {
  EXPECT_EQ(Table1Designs().size(), 11u);
}

TEST(Factory, NamesMatchPaperTable1) {
  const std::vector<std::string> expected = {
      "32-bit float",       "8-bit int",          "Stoch 3-value + QE",
      "MQE 1-bit int",      "25% sparsification", "5% sparsification",
      "2 local steps",      "3LC (s=1)",          "3LC (s=1.5)",
      "3LC (s=1.75)",       "3LC (s=1.9)"};
  auto designs = Table1Designs();
  ASSERT_EQ(designs.size(), expected.size());
  for (std::size_t i = 0; i < designs.size(); ++i) {
    EXPECT_EQ(MakeCompressor(designs[i])->name(), expected[i]);
  }
}

struct CodecCase {
  const char* label;
  CodecConfig config;
};

class CodecContract : public ::testing::TestWithParam<CodecCase> {};

TEST_P(CodecContract, DecodeConsumesExactlyOnePayload) {
  auto codec = MakeCompressor(GetParam().config);
  Tensor in = RandomTensor(Shape{123}, 20);
  auto ctx = codec->MakeContext(in.shape());
  util::ByteBuffer buf;
  codec->Encode(in, *ctx, buf);
  buf.AppendU32(0xFEEDFACE);  // trailing data must not be consumed
  util::ByteReader reader(buf);
  Tensor out(in.shape());
  codec->Decode(reader, out);
  EXPECT_EQ(reader.remaining(), 4u);
}

TEST_P(CodecContract, OutputShapeMatchesInput) {
  auto codec = MakeCompressor(GetParam().config);
  Tensor in = RandomTensor(Shape{7, 13}, 21);
  auto ctx = codec->MakeContext(in.shape());
  Tensor out = RoundTrip(*codec, in, *ctx);
  EXPECT_EQ(out.shape(), in.shape());
}

TEST_P(CodecContract, HandlesSingleElementTensor) {
  auto codec = MakeCompressor(GetParam().config);
  Tensor in(Shape{1}, {0.5f});
  auto ctx = codec->MakeContext(in.shape());
  Tensor out = RoundTrip(*codec, in, *ctx);
  EXPECT_EQ(out.num_elements(), 1);
}

TEST_P(CodecContract, HandlesZeroTensor) {
  auto codec = MakeCompressor(GetParam().config);
  Tensor in(Shape{64});
  auto ctx = codec->MakeContext(in.shape());
  Tensor out = RoundTrip(*codec, in, *ctx);
  EXPECT_EQ(tensor::MaxAbs(out), 0.0f);
}

TEST_P(CodecContract, RepeatedEncodingNeverCorrupts) {
  auto codec = MakeCompressor(GetParam().config);
  auto ctx = codec->MakeContext(Shape{200});
  for (int step = 0; step < 10; ++step) {
    Tensor in = RandomTensor(Shape{200}, 300 + step, 0.1f);
    Tensor out = RoundTrip(*codec, in, *ctx);
    EXPECT_TRUE(std::isfinite(tensor::Sum(out)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, CodecContract,
    ::testing::Values(
        CodecCase{"float32", CodecConfig::Float32()},
        CodecCase{"int8", CodecConfig::EightBit()},
        CodecCase{"stoch3", CodecConfig::StochThreeQE()},
        CodecCase{"mqe1bit", CodecConfig::MqeOneBit()},
        CodecCase{"sparse25", CodecConfig::Sparsification(0.25f)},
        CodecCase{"sparse5", CodecConfig::Sparsification(0.05f)},
        CodecCase{"local2", CodecConfig::TwoLocalSteps()},
        CodecCase{"threelc100", CodecConfig::ThreeLC(1.0f)},
        CodecCase{"threelc175", CodecConfig::ThreeLC(1.75f)},
        CodecCase{"threelc190", CodecConfig::ThreeLC(1.9f)}),
    [](const ::testing::TestParamInfo<CodecCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace threelc::compress
