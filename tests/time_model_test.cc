// Tests for the network cost model and training-time estimation.
#include <gtest/gtest.h>

#include "net/bandwidth.h"
#include "net/traffic_meter.h"
#include "train/time_model.h"

namespace threelc {
namespace {

// ---------- NetworkModel ----------

TEST(NetworkModel, TransferTimeIsBytesOverBandwidth) {
  net::NetworkModel model({10e6, 0.0});
  // 10 Mbps = 1.25 MB/s: 1.25 MB takes 1 second.
  EXPECT_NEAR(model.TransferSeconds(1'250'000), 1.0, 1e-9);
}

TEST(NetworkModel, StepTimeSumsComponents) {
  net::NetworkModel model({100e6, 0.5});
  // 100 Mbps: 12.5 MB/s.
  const double t = model.StepSeconds(1.0, 0.25, 12'500'000, 12'500'000);
  EXPECT_NEAR(t, 1.0 + 0.25 + 0.5 + 1.0 + 1.0, 1e-9);
}

TEST(NetworkModel, OverlapHidesBoundedTransfer) {
  net::NetworkModel full_overlap({1e6, 0.0}, 1.0);
  // transfer = 8s, compute = 2s: overlap hides min(8, 2) = 2s.
  const double t = full_overlap.StepSeconds(2.0, 0.0, 1'000'000, 0);
  EXPECT_NEAR(t, 2.0 + 8.0 - 2.0, 1e-9);
}

TEST(NetworkModel, PresetsAreOrdered) {
  EXPECT_LT(net::LinkConfig::TenMbps().bandwidth_bps,
            net::LinkConfig::HundredMbps().bandwidth_bps);
  EXPECT_LT(net::LinkConfig::HundredMbps().bandwidth_bps,
            net::LinkConfig::OneGbps().bandwidth_bps);
  // Slower links have larger per-step synchronization overhead.
  EXPECT_GT(net::LinkConfig::TenMbps().overhead_seconds,
            net::LinkConfig::OneGbps().overhead_seconds);
}

TEST(LinkConfig, ToStringFormats) {
  EXPECT_EQ(net::LinkConfig::TenMbps().ToString(), "10 Mbps");
  EXPECT_EQ(net::LinkConfig::OneGbps().ToString(), "1 Gbps");
}

// ---------- TrafficMeter ----------

TEST(TrafficMeter, AccumulatesPerStep) {
  net::TrafficMeter meter;
  meter.BeginStep();
  meter.RecordPush(100, 50);
  meter.RecordPull(200, 50);
  meter.BeginStep();
  meter.RecordPush(300, 50);
  EXPECT_EQ(meter.steps().size(), 2u);
  EXPECT_EQ(meter.TotalPushBytes(), 400u);
  EXPECT_EQ(meter.TotalPullBytes(), 200u);
  EXPECT_EQ(meter.TotalValues(), 150u);
}

TEST(TrafficMeter, BitsPerValue) {
  net::TrafficMeter meter;
  meter.BeginStep();
  meter.RecordPush(100, 100);  // 8 bits per value
  EXPECT_DOUBLE_EQ(meter.AverageBitsPerValue(), 8.0);
  EXPECT_DOUBLE_EQ(meter.AverageCompressionRatio(), 4.0);
}

// ---------- Time model over TrainResult ----------

train::TrainResult FakeResult(std::size_t steps, std::size_t push_bytes,
                              std::size_t pull_bytes, double codec_s,
                              int workers) {
  train::TrainResult r;
  r.num_workers = workers;
  r.model_parameters = 1000;
  for (std::size_t i = 0; i < steps; ++i) {
    train::StepRecord s;
    s.step = static_cast<std::int64_t>(i);
    s.push_bytes = push_bytes;
    s.pull_bytes = pull_bytes;
    s.codec_seconds = codec_s;
    r.steps.push_back(s);
  }
  return r;
}

TEST(TimeModel, ComputeOnlyWhenNoTraffic) {
  auto r = FakeResult(10, 0, 0, 0.0, 10);
  train::TimeModelConfig cfg;
  cfg.link = {1e9, 0.0};
  cfg.compute_seconds_per_step = 0.5;
  cfg.element_scale = 1.0;
  EXPECT_NEAR(train::EstimateTrainingSeconds(r, cfg), 5.0, 1e-9);
}

TEST(TimeModel, MachineShareScalesTraffic) {
  // 10 workers, 2 per machine: the bottleneck carries 1/5 of total bytes.
  auto r = FakeResult(1, 10'000'000, 0, 0.0, 10);
  train::TimeModelConfig cfg;
  cfg.link = {8e6, 0.0};  // 1 MB/s
  cfg.compute_seconds_per_step = 0.0;
  cfg.workers_per_machine = 2;
  // 10 MB total -> 2 MB through the bottleneck -> 2 s.
  EXPECT_NEAR(train::EstimateTrainingSeconds(r, cfg), 2.0, 1e-6);
}

TEST(TimeModel, ElementScaleMultipliesBytesAndCodec) {
  auto r = FakeResult(1, 1'000'000, 0, 0.1, 1);
  train::TimeModelConfig cfg;
  cfg.link = {8e6, 0.0};
  cfg.compute_seconds_per_step = 0.0;
  cfg.workers_per_machine = 1;
  cfg.element_scale = 3.0;
  // 3 MB at 1 MB/s + 0.3 s codec.
  EXPECT_NEAR(train::EstimateTrainingSeconds(r, cfg), 3.3, 1e-6);
}

TEST(TimeModel, PerStepIsTotalOverSteps) {
  auto r = FakeResult(4, 1000, 1000, 0.0, 2);
  train::TimeModelConfig cfg;
  EXPECT_NEAR(train::EstimatePerStepSeconds(r, cfg) * 4.0,
              train::EstimateTrainingSeconds(r, cfg), 1e-12);
}

TEST(TimeModel, PaperElementScaleForResNet110) {
  EXPECT_NEAR(train::TimeModelConfig::PaperElementScale(1'730'000), 1.0,
              1e-6);
  EXPECT_NEAR(train::TimeModelConfig::PaperElementScale(173'000), 10.0, 1e-6);
}

TEST(TimeModel, SlowerLinkNeverFaster) {
  auto r = FakeResult(5, 500'000, 500'000, 0.001, 10);
  train::TimeModelConfig fast, slow;
  fast.link = net::LinkConfig::OneGbps();
  slow.link = net::LinkConfig::TenMbps();
  EXPECT_GT(train::EstimateTrainingSeconds(r, slow),
            train::EstimateTrainingSeconds(r, fast));
}

TEST(TimeModel, CompressionReducesEstimatedTime) {
  auto heavy = FakeResult(5, 4'000'000, 4'000'000, 0.0, 10);
  auto light = FakeResult(5, 100'000, 100'000, 0.002, 10);
  train::TimeModelConfig cfg;
  cfg.link = net::LinkConfig::TenMbps();
  EXPECT_GT(train::EstimateTrainingSeconds(heavy, cfg),
            train::EstimateTrainingSeconds(light, cfg));
}

}  // namespace
}  // namespace threelc
