#!/usr/bin/env python3
"""Tests for the perf/trace/exposition tools (no third-party deps).

Run directly or via ctest: python3 tests/tools_test.py

Covers:
  - merge_traces.py round-trip: synthetic server + worker traces with a
    known clock skew come back on one timeline with the skew recovered,
  - check_perf.py: passes on identical runs, fails (exit 1) when any
    metric regresses >10% in its harmful direction — latency up or
    throughput down — and ignores improvements; --update-baseline copies,
  - check_prometheus.py: accepts a well-formed exposition, rejects empty
    input, duplicate family declarations, and duplicate series.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                     "tools")


def run_tool(name, args, stdin_text=None):
    return subprocess.run(
        [sys.executable, os.path.join(TOOLS, name)] + args,
        input=stdin_text, capture_output=True, text=True)


def span(name, tid, ts, dur, step=None):
    e = {"name": name, "cat": "train", "ph": "X", "pid": 0, "tid": tid,
         "ts": ts, "dur": dur}
    if step is not None:
        e["args"] = {"step": step}
    return e


class MergeTracesTest(unittest.TestCase):
    # Worker clock starts 5000us behind the server's: a worker push that
    # lands at server time T has worker-local end T - 5000.
    OFFSET_US = 5000.0

    def make_traces(self):
        server, worker = [], []
        server.append({"name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
                       "args": {"name": "server"}})
        worker.append({"name": "thread_name", "ph": "M", "pid": 0, "tid": 1,
                       "args": {"name": "worker-0"}})
        for s in range(5):
            barrier_end = 10000.0 + 2000.0 * s
            server.append(span("rpc/step_barrier", 0, barrier_end - 500.0,
                               500.0, step=s))
            push_end = barrier_end - self.OFFSET_US
            worker.append(span("rpc/push", 1, push_end - 300.0, 300.0,
                               step=s))
            worker.append(span("forward_backward", 1, push_end - 1500.0,
                               1000.0, step=s))
        return ({"displayTimeUnit": "ms", "traceEvents": server},
                {"displayTimeUnit": "ms", "traceEvents": worker})

    def test_round_trip_recovers_skew(self):
        server, worker = self.make_traces()
        with tempfile.TemporaryDirectory() as tmp:
            spath = os.path.join(tmp, "server.json")
            wpath = os.path.join(tmp, "worker0.json")
            mpath = os.path.join(tmp, "merged.json")
            with open(spath, "w") as f:
                json.dump(server, f)
            with open(wpath, "w") as f:
                json.dump(worker, f)
            r = run_tool("merge_traces.py",
                         [spath, wpath, "-o", mpath, "--report"])
            self.assertEqual(r.returncode, 0, r.stderr)
            with open(mpath) as f:
                merged = json.load(f)
        events = merged["traceEvents"]
        # Every input event survives, plus 2 process_name metadata records.
        in_count = (len(server["traceEvents"]) + len(worker["traceEvents"]))
        self.assertEqual(len(events), in_count + 2)
        roles = {e["args"]["name"] for e in events
                 if e.get("name") == "process_name"}
        self.assertEqual(roles, {"server", "worker-0"})
        # Worker events moved to pid 1 and shifted onto the server clock.
        server_barriers = {e["args"]["step"]: e["ts"] + e["dur"]
                           for e in events
                           if e.get("name") == "rpc/step_barrier"}
        worker_pushes = {e["args"]["step"]: e["ts"] + e["dur"]
                         for e in events if e.get("name") == "rpc/push"}
        for s in range(5):
            self.assertAlmostEqual(server_barriers[s], worker_pushes[s],
                                   delta=1.0)
        for e in events:
            if e.get("name") in ("rpc/push", "forward_backward"):
                self.assertEqual(e["pid"], 1)

    def test_no_common_steps_warns_but_merges(self):
        server, _ = self.make_traces()
        orphan = {"traceEvents": [span("forward_backward", 1, 0.0, 100.0)]}
        with tempfile.TemporaryDirectory() as tmp:
            spath = os.path.join(tmp, "server.json")
            wpath = os.path.join(tmp, "worker0.json")
            mpath = os.path.join(tmp, "merged.json")
            with open(spath, "w") as f:
                json.dump(server, f)
            with open(wpath, "w") as f:
                json.dump(orphan, f)
            r = run_tool("merge_traces.py", [spath, wpath, "-o", mpath])
            self.assertEqual(r.returncode, 0, r.stderr)
            self.assertIn("no step-stamped spans", r.stderr)


def bench_file(values):
    return {"schema": "threelc-bench-v1", "bench": "codec", "commit": "test",
            "metrics": {
                "encode_gbps/3lc": {"value": values[0], "unit": "GB/s",
                                    "higher_is_better": True},
                "step_latency_ms/p50": {"value": values[1], "unit": "ms",
                                        "higher_is_better": False},
            }}


class CheckPerfTest(unittest.TestCase):
    def run_pair(self, base_values, cur_values, extra=None):
        with tempfile.TemporaryDirectory() as tmp:
            bpath = os.path.join(tmp, "base.json")
            cpath = os.path.join(tmp, "cur.json")
            with open(bpath, "w") as f:
                json.dump(bench_file(base_values), f)
            with open(cpath, "w") as f:
                json.dump(bench_file(cur_values), f)
            return run_tool("check_perf.py",
                            ["--baseline", bpath, "--current", cpath]
                            + (extra or []))

    def test_identical_passes(self):
        r = self.run_pair([2.0, 5.0], [2.0, 5.0])
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_small_regression_within_budget_passes(self):
        r = self.run_pair([2.0, 5.0], [1.9, 5.3])  # -5% / +6%
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_throughput_drop_fails(self):
        r = self.run_pair([2.0, 5.0], [1.6, 5.0])  # -20% GB/s
        self.assertEqual(r.returncode, 1)
        self.assertIn("encode_gbps/3lc", r.stderr)

    def test_latency_rise_fails(self):
        r = self.run_pair([2.0, 5.0], [2.0, 6.0])  # +20% ms
        self.assertEqual(r.returncode, 1)
        self.assertIn("step_latency_ms/p50", r.stderr)

    def test_improvement_passes(self):
        r = self.run_pair([2.0, 5.0], [3.0, 2.0])
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_missing_metric_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            bpath = os.path.join(tmp, "base.json")
            cpath = os.path.join(tmp, "cur.json")
            with open(bpath, "w") as f:
                json.dump(bench_file([2.0, 5.0]), f)
            cur = bench_file([2.0, 5.0])
            del cur["metrics"]["step_latency_ms/p50"]
            with open(cpath, "w") as f:
                json.dump(cur, f)
            r = run_tool("check_perf.py",
                         ["--baseline", bpath, "--current", cpath])
        self.assertEqual(r.returncode, 1)
        self.assertIn("missing", r.stderr)

    def test_custom_threshold(self):
        r = self.run_pair([2.0, 5.0], [1.6, 5.0], ["--threshold", "0.30"])
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_update_baseline_copies(self):
        with tempfile.TemporaryDirectory() as tmp:
            bpath = os.path.join(tmp, "base.json")
            cpath = os.path.join(tmp, "cur.json")
            with open(bpath, "w") as f:
                json.dump(bench_file([2.0, 5.0]), f)
            with open(cpath, "w") as f:
                json.dump(bench_file([4.0, 3.0]), f)
            r = run_tool("check_perf.py",
                         ["--baseline", bpath, "--current", cpath,
                          "--update-baseline"])
            self.assertEqual(r.returncode, 0, r.stderr)
            with open(bpath) as f:
                self.assertEqual(
                    json.load(f)["metrics"]["encode_gbps/3lc"]["value"], 4.0)


GOOD_EXPOSITION = """\
# HELP threelc_rpc_wire_bytes_total total
# TYPE threelc_rpc_wire_bytes_total counter
threelc_rpc_wire_bytes_total 123
# HELP threelc_step_ms step
# TYPE threelc_step_ms summary
threelc_step_ms{quantile="0.5"} 2.5
threelc_step_ms{quantile="0.99"} 4.0
threelc_step_ms_sum 100
threelc_step_ms_count 40
"""


class CheckPrometheusTest(unittest.TestCase):
    def check(self, text):
        return run_tool("check_prometheus.py", [], stdin_text=text)

    def test_good_exposition_passes(self):
        r = self.check(GOOD_EXPOSITION)
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_empty_exposition_fails(self):
        r = self.check("")
        self.assertEqual(r.returncode, 1)
        self.assertIn("no samples", r.stderr)

    def test_duplicate_family_fails(self):
        dup = GOOD_EXPOSITION + (
            "# HELP threelc_rpc_wire_bytes_total again\n"
            "# TYPE threelc_rpc_wire_bytes_total counter\n"
            "threelc_rpc_wire_bytes_total 456\n")
        r = self.check(dup)
        self.assertEqual(r.returncode, 1)
        self.assertIn("duplicate", r.stderr)

    def test_duplicate_series_fails(self):
        dup = GOOD_EXPOSITION + "threelc_rpc_wire_bytes_total 456\n"
        r = self.check(dup)
        self.assertEqual(r.returncode, 1)
        self.assertIn("duplicate series", r.stderr)

    def test_distinct_labels_are_not_duplicates(self):
        extra = GOOD_EXPOSITION + 'threelc_step_ms{quantile="0.9"} 3.0\n'
        r = self.check(extra)
        self.assertEqual(r.returncode, 0, r.stderr)


if __name__ == "__main__":
    unittest.main()
