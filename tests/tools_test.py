#!/usr/bin/env python3
"""Tests for the perf/trace/exposition tools (no third-party deps).

Run directly or via ctest: python3 tests/tools_test.py

Covers:
  - merge_traces.py round-trip: synthetic server + worker traces with a
    known clock skew come back on one timeline with the skew recovered;
    a rejoined rank (two traces, unrelated clocks) gets an independent
    offset per incarnation with distinct track names,
  - check_perf.py: passes on identical runs, fails (exit 1) when any
    metric regresses >10% in its harmful direction — latency up or
    throughput down — and ignores improvements; --update-baseline copies,
  - check_prometheus.py: accepts a well-formed exposition, rejects empty
    input, duplicate family declarations, duplicate series, and (with
    --max-workers) unbounded worker-label cardinality in cluster families,
  - run_report.py: joins a /clusterz snapshot with a server step log and
    names the straggler with its dominant cause.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                     "tools")


def run_tool(name, args, stdin_text=None):
    return subprocess.run(
        [sys.executable, os.path.join(TOOLS, name)] + args,
        input=stdin_text, capture_output=True, text=True)


def span(name, tid, ts, dur, step=None):
    e = {"name": name, "cat": "train", "ph": "X", "pid": 0, "tid": tid,
         "ts": ts, "dur": dur}
    if step is not None:
        e["args"] = {"step": step}
    return e


class MergeTracesTest(unittest.TestCase):
    # Worker clock starts 5000us behind the server's: a worker push that
    # lands at server time T has worker-local end T - 5000.
    OFFSET_US = 5000.0

    def make_traces(self):
        server, worker = [], []
        server.append({"name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
                       "args": {"name": "server"}})
        worker.append({"name": "thread_name", "ph": "M", "pid": 0, "tid": 1,
                       "args": {"name": "worker-0"}})
        for s in range(5):
            barrier_end = 10000.0 + 2000.0 * s
            server.append(span("rpc/step_barrier", 0, barrier_end - 500.0,
                               500.0, step=s))
            push_end = barrier_end - self.OFFSET_US
            worker.append(span("rpc/push", 1, push_end - 300.0, 300.0,
                               step=s))
            worker.append(span("forward_backward", 1, push_end - 1500.0,
                               1000.0, step=s))
        return ({"displayTimeUnit": "ms", "traceEvents": server},
                {"displayTimeUnit": "ms", "traceEvents": worker})

    def test_round_trip_recovers_skew(self):
        server, worker = self.make_traces()
        with tempfile.TemporaryDirectory() as tmp:
            spath = os.path.join(tmp, "server.json")
            wpath = os.path.join(tmp, "worker0.json")
            mpath = os.path.join(tmp, "merged.json")
            with open(spath, "w") as f:
                json.dump(server, f)
            with open(wpath, "w") as f:
                json.dump(worker, f)
            r = run_tool("merge_traces.py",
                         [spath, wpath, "-o", mpath, "--report"])
            self.assertEqual(r.returncode, 0, r.stderr)
            with open(mpath) as f:
                merged = json.load(f)
        events = merged["traceEvents"]
        # Every input event survives, plus 2 process_name metadata records.
        in_count = (len(server["traceEvents"]) + len(worker["traceEvents"]))
        self.assertEqual(len(events), in_count + 2)
        roles = {e["args"]["name"] for e in events
                 if e.get("name") == "process_name"}
        self.assertEqual(roles, {"server", "worker-0"})
        # Worker events moved to pid 1 and shifted onto the server clock.
        server_barriers = {e["args"]["step"]: e["ts"] + e["dur"]
                           for e in events
                           if e.get("name") == "rpc/step_barrier"}
        worker_pushes = {e["args"]["step"]: e["ts"] + e["dur"]
                         for e in events if e.get("name") == "rpc/push"}
        for s in range(5):
            self.assertAlmostEqual(server_barriers[s], worker_pushes[s],
                                   delta=1.0)
        for e in events:
            if e.get("name") in ("rpc/push", "forward_backward"):
                self.assertEqual(e["pid"], 1)

    def test_rejoined_rank_gets_independent_offsets(self):
        # Worker rank 0 runs steps 0-1, dies, rejoins with a NEW process
        # whose clock is wildly different, and runs steps 3-4. Each
        # incarnation must be aligned with its own offset; the rejoin must
        # not clobber (or inherit) the first connection's offset.
        first_skew, second_skew = 5000.0, 250000.0
        server, first, second = [], [], []
        for s in range(5):
            barrier_end = 10000.0 + 2000.0 * s
            server.append(span("rpc/step_barrier", 0, barrier_end - 500.0,
                               500.0, step=s))
            if s < 2:
                first.append(span("rpc/push", 1,
                                  barrier_end - first_skew - 300.0, 300.0,
                                  step=s))
            elif s >= 3:
                second.append(span("rpc/push", 1,
                                   barrier_end - second_skew - 300.0, 300.0,
                                   step=s))
        with tempfile.TemporaryDirectory() as tmp:
            spath = os.path.join(tmp, "server.json")
            p1 = os.path.join(tmp, "w0_run1.json")
            p2 = os.path.join(tmp, "w0_rejoin.json")
            mpath = os.path.join(tmp, "merged.json")
            for path, events in ((spath, server), (p1, first), (p2, second)):
                with open(path, "w") as f:
                    json.dump({"traceEvents": events}, f)
            r = run_tool("merge_traces.py",
                         [spath, f"0={p1}", f"0={p2}", "-o", mpath,
                          "--report"])
            self.assertEqual(r.returncode, 0, r.stderr)
            self.assertIn("worker-0 (", r.stdout)      # first incarnation
            self.assertIn("(rejoin 1)", r.stdout)      # second incarnation
            with open(mpath) as f:
                merged = json.load(f)
        events = merged["traceEvents"]
        roles = {e["args"]["name"]: e["pid"] for e in events
                 if e.get("name") == "process_name"}
        self.assertEqual(set(roles),
                         {"server", "worker-0", "worker-0 (rejoin 1)"})
        self.assertNotEqual(roles["worker-0"], roles["worker-0 (rejoin 1)"])
        # Both incarnations landed on the server clock: every push end
        # matches its barrier end despite the two unrelated skews.
        barriers = {e["args"]["step"]: e["ts"] + e["dur"] for e in events
                    if e.get("name") == "rpc/step_barrier"}
        pushes = {e["args"]["step"]: e["ts"] + e["dur"] for e in events
                  if e.get("name") == "rpc/push"}
        for s in (0, 1, 3, 4):
            self.assertAlmostEqual(barriers[s], pushes[s], delta=1.0,
                                   msg=f"step {s}")

    def test_no_common_steps_warns_but_merges(self):
        server, _ = self.make_traces()
        orphan = {"traceEvents": [span("forward_backward", 1, 0.0, 100.0)]}
        with tempfile.TemporaryDirectory() as tmp:
            spath = os.path.join(tmp, "server.json")
            wpath = os.path.join(tmp, "worker0.json")
            mpath = os.path.join(tmp, "merged.json")
            with open(spath, "w") as f:
                json.dump(server, f)
            with open(wpath, "w") as f:
                json.dump(orphan, f)
            r = run_tool("merge_traces.py", [spath, wpath, "-o", mpath])
            self.assertEqual(r.returncode, 0, r.stderr)
            self.assertIn("no step-stamped spans", r.stderr)


def bench_file(values):
    return {"schema": "threelc-bench-v1", "bench": "codec", "commit": "test",
            "metrics": {
                "encode_gbps/3lc": {"value": values[0], "unit": "GB/s",
                                    "higher_is_better": True},
                "step_latency_ms/p50": {"value": values[1], "unit": "ms",
                                        "higher_is_better": False},
            }}


class CheckPerfTest(unittest.TestCase):
    def run_pair(self, base_values, cur_values, extra=None):
        with tempfile.TemporaryDirectory() as tmp:
            bpath = os.path.join(tmp, "base.json")
            cpath = os.path.join(tmp, "cur.json")
            with open(bpath, "w") as f:
                json.dump(bench_file(base_values), f)
            with open(cpath, "w") as f:
                json.dump(bench_file(cur_values), f)
            return run_tool("check_perf.py",
                            ["--baseline", bpath, "--current", cpath]
                            + (extra or []))

    def test_identical_passes(self):
        r = self.run_pair([2.0, 5.0], [2.0, 5.0])
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_small_regression_within_budget_passes(self):
        r = self.run_pair([2.0, 5.0], [1.9, 5.3])  # -5% / +6%
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_throughput_drop_fails(self):
        r = self.run_pair([2.0, 5.0], [1.6, 5.0])  # -20% GB/s
        self.assertEqual(r.returncode, 1)
        self.assertIn("encode_gbps/3lc", r.stderr)

    def test_latency_rise_fails(self):
        r = self.run_pair([2.0, 5.0], [2.0, 6.0])  # +20% ms
        self.assertEqual(r.returncode, 1)
        self.assertIn("step_latency_ms/p50", r.stderr)

    def test_improvement_passes(self):
        r = self.run_pair([2.0, 5.0], [3.0, 2.0])
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_missing_metric_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            bpath = os.path.join(tmp, "base.json")
            cpath = os.path.join(tmp, "cur.json")
            with open(bpath, "w") as f:
                json.dump(bench_file([2.0, 5.0]), f)
            cur = bench_file([2.0, 5.0])
            del cur["metrics"]["step_latency_ms/p50"]
            with open(cpath, "w") as f:
                json.dump(cur, f)
            r = run_tool("check_perf.py",
                         ["--baseline", bpath, "--current", cpath])
        self.assertEqual(r.returncode, 1)
        self.assertIn("missing", r.stderr)

    def test_custom_threshold(self):
        r = self.run_pair([2.0, 5.0], [1.6, 5.0], ["--threshold", "0.30"])
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_update_baseline_copies(self):
        with tempfile.TemporaryDirectory() as tmp:
            bpath = os.path.join(tmp, "base.json")
            cpath = os.path.join(tmp, "cur.json")
            with open(bpath, "w") as f:
                json.dump(bench_file([2.0, 5.0]), f)
            with open(cpath, "w") as f:
                json.dump(bench_file([4.0, 3.0]), f)
            r = run_tool("check_perf.py",
                         ["--baseline", bpath, "--current", cpath,
                          "--update-baseline"])
            self.assertEqual(r.returncode, 0, r.stderr)
            with open(bpath) as f:
                self.assertEqual(
                    json.load(f)["metrics"]["encode_gbps/3lc"]["value"], 4.0)


GOOD_EXPOSITION = """\
# HELP threelc_rpc_wire_bytes_total total
# TYPE threelc_rpc_wire_bytes_total counter
threelc_rpc_wire_bytes_total 123
# HELP threelc_step_ms step
# TYPE threelc_step_ms summary
threelc_step_ms{quantile="0.5"} 2.5
threelc_step_ms{quantile="0.99"} 4.0
threelc_step_ms_sum 100
threelc_step_ms_count 40
"""


class CheckPrometheusTest(unittest.TestCase):
    def check(self, text):
        return run_tool("check_prometheus.py", [], stdin_text=text)

    def test_good_exposition_passes(self):
        r = self.check(GOOD_EXPOSITION)
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_empty_exposition_fails(self):
        r = self.check("")
        self.assertEqual(r.returncode, 1)
        self.assertIn("no samples", r.stderr)

    def test_duplicate_family_fails(self):
        dup = GOOD_EXPOSITION + (
            "# HELP threelc_rpc_wire_bytes_total again\n"
            "# TYPE threelc_rpc_wire_bytes_total counter\n"
            "threelc_rpc_wire_bytes_total 456\n")
        r = self.check(dup)
        self.assertEqual(r.returncode, 1)
        self.assertIn("duplicate", r.stderr)

    def test_duplicate_series_fails(self):
        dup = GOOD_EXPOSITION + "threelc_rpc_wire_bytes_total 456\n"
        r = self.check(dup)
        self.assertEqual(r.returncode, 1)
        self.assertIn("duplicate series", r.stderr)

    def test_distinct_labels_are_not_duplicates(self):
        extra = GOOD_EXPOSITION + 'threelc_step_ms{quantile="0.9"} 3.0\n'
        r = self.check(extra)
        self.assertEqual(r.returncode, 0, r.stderr)

    CLUSTER = GOOD_EXPOSITION + (
        "# HELP threelc_cluster_worker_records_total records\n"
        "# TYPE threelc_cluster_worker_records_total counter\n"
        'threelc_cluster_worker_records_total{worker="0"} 10\n'
        'threelc_cluster_worker_records_total{worker="1"} 10\n'
        'threelc_cluster_worker_records_total{worker="2"} 10\n')

    def test_cluster_cardinality_within_bound_passes(self):
        r = run_tool("check_prometheus.py", ["--max-workers", "3"],
                     stdin_text=self.CLUSTER)
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_cluster_cardinality_over_bound_fails(self):
        r = run_tool("check_prometheus.py", ["--max-workers", "2"],
                     stdin_text=self.CLUSTER)
        self.assertEqual(r.returncode, 1)
        self.assertIn("worker labels", r.stderr)
        self.assertIn("threelc_cluster_worker_records_total", r.stderr)

    def test_non_cluster_families_ignore_worker_bound(self):
        labeled = GOOD_EXPOSITION + (
            "# HELP threelc_other labeled\n"
            "# TYPE threelc_other gauge\n"
            'threelc_other{worker="0"} 1\n'
            'threelc_other{worker="1"} 1\n')
        r = run_tool("check_prometheus.py", ["--max-workers", "1"],
                     stdin_text=labeled)
        self.assertEqual(r.returncode, 0, r.stderr)


def clusterz_snapshot():
    def phases(scale):
        return {name: {"p50_ns": 1e6 * scale, "p95_ns": 2e6 * scale,
                       "p99_ns": 3e6 * scale, "mean_ns": 1e6 * scale,
                       "total_ns": 2e7 * scale}
                for name in ("forward_backward", "encode", "push",
                             "pull_wait", "decode")}

    def worker(slow, causes, scale=1.0):
        return {"last_step": 19, "records": 20, "bytes_out": 20000,
                "bytes_in": 18000, "ea_l2": 0.5, "rejoins": 0,
                "phases": phases(scale), "straggler_steps": slow,
                "straggler_causes": causes,
                "barrier_wait_ms_sum": 40.0 * slow}

    return {
        "workers": {
            "0": worker(0, {"compute": 0, "encode": 0, "network": 0}),
            "1": worker(18, {"compute": 1, "encode": 0, "network": 17},
                        scale=4.0),
            "2": worker(1, {"compute": 1, "encode": 0, "network": 0}),
        },
        "fleet": {"workers": 3, "records": 60, "bytes_out": 60000,
                  "bytes_in": 54000, "raw_push_bytes_per_step": 4000,
                  "raw_pull_bytes_per_step": 4000,
                  "compression_ratio_push": 4.0,
                  "compression_ratio_pull": 4.4, "phases": phases(1.0)},
        "straggler": {"current": 1, "flips": 3, "barriers_observed": 20},
    }


class RunReportTest(unittest.TestCase):
    def test_report_names_straggler_and_cause(self):
        steps = [{"type": "step", "step": s, "loss": 1.0 / (s + 1),
                  "step_wall_ms": 5.0 + s, "contributors": 3}
                 for s in range(20)]
        with tempfile.TemporaryDirectory() as tmp:
            cpath = os.path.join(tmp, "clusterz.json")
            lpath = os.path.join(tmp, "metrics.jsonl")
            with open(cpath, "w") as f:
                json.dump(clusterz_snapshot(), f)
            with open(lpath, "w") as f:
                for s in steps:
                    f.write(json.dumps(s) + "\n")
                f.write('{"type":"summary","metrics":{}}\n')
            r = run_tool("run_report.py",
                         ["--clusterz", cpath, "--server-log", lpath])
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("steps logged: 20", r.stdout)
        self.assertIn("straggler: worker 1", r.stdout)
        self.assertIn("dominant cause: network", r.stdout)
        self.assertIn("compression ratio: push 4.00x", r.stdout)
        # Every worker appears in the phase table.
        for wid in ("0", "1", "2"):
            self.assertIn(f"\n{wid:>6}  forward_backward", r.stdout)

    def test_report_without_server_log(self):
        with tempfile.TemporaryDirectory() as tmp:
            cpath = os.path.join(tmp, "clusterz.json")
            opath = os.path.join(tmp, "report.txt")
            with open(cpath, "w") as f:
                json.dump(clusterz_snapshot(), f)
            r = run_tool("run_report.py",
                         ["--clusterz", cpath, "-o", opath])
            self.assertEqual(r.returncode, 0, r.stderr)
            with open(opath) as f:
                report = f.read()
        self.assertIn("straggler: worker 1", report)
        self.assertNotIn("steps logged", report)

    def test_hung_straggler_is_tagged(self):
        # The named straggler's lease expired mid-run: the straggler line
        # must carry the "hung" tag and the liveness table must show the
        # per-worker heartbeat age and expiry counts.
        snap = clusterz_snapshot()
        for wid, w in snap["workers"].items():
            w["last_heartbeat_age_ms"] = 40 if wid != "1" else 900
        snap["liveness"] = {"lease_expiries": {"1": 2}}
        with tempfile.TemporaryDirectory() as tmp:
            cpath = os.path.join(tmp, "clusterz.json")
            with open(cpath, "w") as f:
                json.dump(snap, f)
            r = run_tool("run_report.py", ["--clusterz", cpath])
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("straggler: worker 1 (hung; ", r.stdout)
        self.assertIn("-- liveness --", r.stdout)
        self.assertIn("900", r.stdout)

    def test_lease_evicted_worker_is_named_after_removal(self):
        # Worker 1 was lease-evicted: gone from the workers map, but its
        # expiry count survives in the liveness section — the report must
        # still name it and mark it evicted.
        snap = clusterz_snapshot()
        del snap["workers"]["1"]
        for w in snap["workers"].values():
            w["straggler_steps"] = 0
            w["straggler_causes"] = {"compute": 0, "encode": 0,
                                     "network": 0}
            w["last_heartbeat_age_ms"] = 40
        snap["straggler"] = {"current": -1, "flips": 0,
                             "barriers_observed": 20}
        snap["liveness"] = {"lease_expiries": {"1": 1}}
        with tempfile.TemporaryDirectory() as tmp:
            cpath = os.path.join(tmp, "clusterz.json")
            with open(cpath, "w") as f:
                json.dump(snap, f)
            r = run_tool("run_report.py", ["--clusterz", cpath])
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("straggler: worker 1 (hung; 1 lease expiries, "
                      "evicted)", r.stdout)
        self.assertIn("(hung; evicted)", r.stdout)

    def test_rejects_non_clusterz_json(self):
        with tempfile.TemporaryDirectory() as tmp:
            cpath = os.path.join(tmp, "bogus.json")
            with open(cpath, "w") as f:
                json.dump({"hello": 1}, f)
            r = run_tool("run_report.py", ["--clusterz", cpath])
        self.assertEqual(r.returncode, 1)
        self.assertIn("not a /clusterz snapshot", r.stderr)

    def test_storage_section_joins_health_and_stage_latency(self):
        # A snapshot with a "storage" section plus a step log whose
        # phases_ms carries the checkpoint stage: the report must join
        # both into one storage section (counters from /clusterz, p50/p95
        # from the log).
        snap = clusterz_snapshot()
        snap["storage"] = {"checkpoints": 9, "write_failures": 2,
                           "fallbacks": 1, "generations": 2,
                           "last_write_ms": 3.25, "degraded": False}
        steps = [{"type": "step", "step": s, "loss": 1.0, "contributors": 3,
                  "step_wall_ms": 5.0,
                  "phases_ms": {"step_barrier": 1.0,
                                "checkpoint": 4.0 if s % 2 == 0 else 0.0}}
                 for s in range(10)]
        with tempfile.TemporaryDirectory() as tmp:
            cpath = os.path.join(tmp, "clusterz.json")
            lpath = os.path.join(tmp, "metrics.jsonl")
            with open(cpath, "w") as f:
                json.dump(snap, f)
            with open(lpath, "w") as f:
                for s in steps:
                    f.write(json.dumps(s) + "\n")
            r = run_tool("run_report.py",
                         ["--clusterz", cpath, "--server-log", lpath])
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("-- storage (server checkpoints) --", r.stdout)
        self.assertIn("state: healthy", r.stdout)
        self.assertIn("checkpoints written: 9  write failures: 2  "
                      "fallbacks: 1", r.stdout)
        self.assertIn("generations on disk: 2", r.stdout)
        self.assertIn("last write: 3.25 ms", r.stdout)
        self.assertIn("checkpoint stage ms over 10 steps (5 with a write)",
                      r.stdout)
        self.assertIn("p95 4.00", r.stdout)

    def test_degraded_storage_is_flagged(self):
        # degraded=true (writes currently failing) must be unmissable in
        # the report, even without a step log.
        snap = clusterz_snapshot()
        snap["storage"] = {"checkpoints": 3, "write_failures": 12,
                           "fallbacks": 0, "generations": 1,
                           "last_write_ms": 2.0, "degraded": True}
        with tempfile.TemporaryDirectory() as tmp:
            cpath = os.path.join(tmp, "clusterz.json")
            with open(cpath, "w") as f:
                json.dump(snap, f)
            r = run_tool("run_report.py", ["--clusterz", cpath])
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("state: DEGRADED (writes failing; recovery at risk)",
                      r.stdout)
        self.assertIn("write failures: 12", r.stdout)

    def test_no_storage_section_without_storage_data(self):
        # Old snapshots (no "storage") and logs without a checkpoint phase
        # must not grow an empty storage section.
        steps = [{"type": "step", "step": s, "loss": 1.0, "contributors": 3,
                  "step_wall_ms": 5.0, "phases_ms": {"step_barrier": 1.0}}
                 for s in range(5)]
        with tempfile.TemporaryDirectory() as tmp:
            cpath = os.path.join(tmp, "clusterz.json")
            lpath = os.path.join(tmp, "metrics.jsonl")
            with open(cpath, "w") as f:
                json.dump(clusterz_snapshot(), f)
            with open(lpath, "w") as f:
                for s in steps:
                    f.write(json.dumps(s) + "\n")
            r = run_tool("run_report.py",
                         ["--clusterz", cpath, "--server-log", lpath])
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertNotIn("-- storage", r.stdout)


if __name__ == "__main__":
    unittest.main()
