// Minimal recursive-descent JSON validator shared by the observability
// tests. Enough of RFC 8259 to prove that trace/metrics/flight output
// parses: objects, arrays, strings with escapes, numbers, true/false/null.
#pragma once

#include <cctype>
#include <string>

namespace threelc::testutil {

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }
  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start &&
           std::isdigit(static_cast<unsigned char>(s_[pos_ - 1]));
  }
  bool Literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace threelc::testutil
