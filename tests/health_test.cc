// Health watchdog: detector thresholds (non-finite loss, loss explosion,
// residual growth + latching, plateau, stall with an injected clock),
// event ring capping, registry wiring, and /statusz JSON shape.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "json_validator.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace threelc::obs {
namespace {

using testutil::JsonValidator;

StepTelemetry MakeStep(std::int64_t step, double loss) {
  StepTelemetry s;
  s.step = step;
  s.loss = loss;
  s.lr = 0.1;
  s.push_bits_per_value = 1.2;
  s.pull_bits_per_value = 0.9;
  s.contributors = 4;
  return s;
}

StepTelemetry MakeStepWithResidual(std::int64_t step, double loss,
                                   double push_l2) {
  StepTelemetry s = MakeStep(step, loss);
  TensorStepTelemetry t;
  t.name = "dense0/W";
  t.elements = 1024;
  t.push_residual_l2 = push_l2;
  s.tensors.push_back(t);
  return s;
}

TEST(HealthMonitorTest, StartsHealthyAndStaysHealthyOnNormalSteps) {
  HealthMonitor monitor{HealthMonitorOptions{}};
  for (int i = 0; i < 50; ++i) {
    monitor.ObserveStep(MakeStep(i, 1.0 / (i + 1)));
  }
  EXPECT_TRUE(monitor.healthy());
  EXPECT_EQ(monitor.event_count(), 0u);
}

TEST(HealthMonitorTest, NonFiniteLossIsAnError) {
  HealthMonitor monitor{HealthMonitorOptions{}};
  std::vector<HealthEvent> delivered;
  monitor.SetEventCallback(
      [&delivered](const HealthEvent& e) { delivered.push_back(e); });
  monitor.ObserveStep(MakeStep(0, 0.5));
  EXPECT_TRUE(monitor.healthy());
  monitor.ObserveStep(
      MakeStep(1, std::numeric_limits<double>::quiet_NaN()));
  EXPECT_FALSE(monitor.healthy());
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].detector, "nonfinite_loss");
  EXPECT_EQ(delivered[0].severity, HealthSeverity::kError);
  EXPECT_EQ(delivered[0].step, 1);
  // Health does not recover: error events are sticky.
  monitor.ObserveStep(MakeStep(2, 0.4));
  EXPECT_FALSE(monitor.healthy());
}

TEST(HealthMonitorTest, LossExplosionFiresPastFactorTimesMedian) {
  HealthMonitorOptions options;
  options.loss_explosion_factor = 10.0;
  options.warmup_steps = 4;
  HealthMonitor monitor{options};
  for (int i = 0; i < 8; ++i) monitor.ObserveStep(MakeStep(i, 1.0));
  // 9x the median: still fine.
  monitor.ObserveStep(MakeStep(8, 9.0));
  EXPECT_TRUE(monitor.healthy());
  // 11x the median: error.
  monitor.ObserveStep(MakeStep(9, 11.0));
  EXPECT_FALSE(monitor.healthy());
  bool saw = false;
  for (const HealthEvent& e : monitor.events()) {
    if (e.detector == "loss_explosion") {
      saw = true;
      EXPECT_EQ(e.severity, HealthSeverity::kError);
    }
  }
  EXPECT_TRUE(saw);
}

TEST(HealthMonitorTest, ExplosionNotCheckedDuringWarmup) {
  HealthMonitorOptions options;
  options.loss_explosion_factor = 2.0;
  options.warmup_steps = 8;
  HealthMonitor monitor{options};
  // Wild early losses are normal; nothing may fire in the warmup window.
  for (int i = 0; i < 8; ++i) {
    monitor.ObserveStep(MakeStep(i, i % 2 ? 100.0 : 0.01));
  }
  EXPECT_TRUE(monitor.healthy());
}

TEST(HealthMonitorTest, ResidualGrowthWarnsOnceAndRearms) {
  HealthMonitorOptions options;
  options.residual_growth_factor = 10.0;
  options.residual_baseline_steps = 4;
  HealthMonitor monitor{options};
  std::int64_t step = 0;
  // Establish a baseline around 1.0.
  for (int i = 0; i < 4; ++i) {
    monitor.ObserveStep(MakeStepWithResidual(step++, 0.5, 1.0));
  }
  // 20x baseline: warn (but still healthy — warn severity).
  monitor.ObserveStep(MakeStepWithResidual(step++, 0.5, 20.0));
  EXPECT_TRUE(monitor.healthy());
  ASSERT_EQ(monitor.event_count(), 1u);
  EXPECT_EQ(monitor.events()[0].detector, "residual_growth");
  EXPECT_EQ(monitor.events()[0].severity, HealthSeverity::kWarn);
  // Latched: staying high does not spam.
  monitor.ObserveStep(MakeStepWithResidual(step++, 0.5, 25.0));
  EXPECT_EQ(monitor.event_count(), 1u);
  // Fall clearly below threshold (under half of it), then grow again:
  // the detector re-arms and fires a second event.
  monitor.ObserveStep(MakeStepWithResidual(step++, 0.5, 1.0));
  monitor.ObserveStep(MakeStepWithResidual(step++, 0.5, 30.0));
  EXPECT_EQ(monitor.event_count(), 2u);
}

TEST(HealthMonitorTest, PlateauWarnsAfterWindowWithoutImprovement) {
  HealthMonitorOptions options;
  options.plateau_window = 10;
  options.plateau_min_delta = 1e-3;
  HealthMonitor monitor{options};
  monitor.ObserveStep(MakeStep(0, 1.0));
  for (int i = 1; i <= 9; ++i) monitor.ObserveStep(MakeStep(i, 1.0));
  EXPECT_EQ(monitor.event_count(), 0u);
  monitor.ObserveStep(MakeStep(10, 1.0));
  ASSERT_EQ(monitor.event_count(), 1u);
  EXPECT_EQ(monitor.events()[0].detector, "loss_plateau");
  EXPECT_TRUE(monitor.healthy());  // warn only
  // Improvement resets the latch; a later plateau can fire again.
  monitor.ObserveStep(MakeStep(11, 0.5));
  for (int i = 12; i <= 22; ++i) monitor.ObserveStep(MakeStep(i, 0.5));
  EXPECT_EQ(monitor.event_count(), 2u);
}

TEST(HealthMonitorTest, StallDetectedViaInjectedClockAndRecovers) {
  HealthMonitorOptions options;
  options.stall_factor = 5.0;
  options.min_stall_seconds = 1.0;
  HealthMonitor monitor{options};
  double now = 0.0;
  monitor.SetClockForTest([&now] { return now; });
  // Steps every 0.5s: median interval 0.5, stall limit max(2.5, 1.0).
  for (int i = 0; i < 10; ++i) {
    monitor.ObserveStep(MakeStep(i, 1.0));
    now += 0.5;
  }
  EXPECT_FALSE(monitor.CheckStall());
  // Silence for 10s: stalled, unhealthy, exactly one event.
  now += 10.0;
  EXPECT_TRUE(monitor.CheckStall());
  EXPECT_FALSE(monitor.healthy());
  EXPECT_TRUE(monitor.CheckStall());  // still stalled; no second event
  std::size_t stall_events = 0;
  for (const HealthEvent& e : monitor.events()) {
    if (e.detector == "step_stall") ++stall_events;
  }
  EXPECT_EQ(stall_events, 1u);
  // A new step clears the stall.
  monitor.ObserveStep(MakeStep(10, 1.0));
  EXPECT_FALSE(monitor.CheckStall());
  EXPECT_TRUE(monitor.healthy());
}

TEST(HealthMonitorTest, EventRingIsCapped) {
  HealthMonitorOptions options;
  options.max_events = 4;
  options.residual_growth_factor = 2.0;
  options.residual_baseline_steps = 1;
  HealthMonitor monitor{options};
  monitor.ObserveStep(MakeStepWithResidual(0, 0.5, 1.0));  // baseline
  // Alternate low/high so the latch re-arms and every high step fires.
  for (int i = 1; i <= 20; ++i) {
    const double l2 = i % 2 ? 10.0 : 0.5;
    monitor.ObserveStep(MakeStepWithResidual(i, 0.5, l2));
  }
  EXPECT_EQ(monitor.event_count(), 4u);
}

TEST(HealthMonitorTest, FiringsIncrementRegistryMetrics) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  HealthMonitor monitor{HealthMonitorOptions{}, &registry};
  monitor.ObserveStep(
      MakeStep(0, std::numeric_limits<double>::infinity()));
  EXPECT_EQ(registry.counter("health/nonfinite_loss")->value(), 1.0);
  EXPECT_EQ(registry.gauge("health/healthy")->value(), 0.0);
}

TEST(HealthMonitorTest, StatusJsonIsValidAndCarriesLiveState) {
  HealthMonitor monitor{HealthMonitorOptions{}};
  monitor.ObserveStep(MakeStepWithResidual(42, 0.25, 0.01));
  const std::string json = monitor.StatusJson(12.5);
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"step\":42"), std::string::npos);
  EXPECT_NE(json.find("\"healthy\":true"), std::string::npos);
  EXPECT_NE(json.find("\"uptime_seconds\":12.5"), std::string::npos);
  EXPECT_NE(json.find("\"dense0/W\""), std::string::npos);
  EXPECT_NE(json.find("\"push_residual_l2\""), std::string::npos);
}

// ---------- runtime (membership) state ----------

TEST(HealthMonitorTest, RuntimeStateStartsHealthy) {
  HealthMonitor monitor{HealthMonitorOptions{}};
  EXPECT_EQ(monitor.runtime_state(), RuntimeState::kHealthy);
  EXPECT_TRUE(monitor.healthy());
}

TEST(HealthMonitorTest, DegradedStateWarnsButStaysHealthy) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  HealthMonitor monitor{HealthMonitorOptions{}, &registry};
  std::vector<HealthEvent> delivered;
  monitor.SetEventCallback(
      [&delivered](const HealthEvent& e) { delivered.push_back(e); });

  monitor.SetRuntimeState(RuntimeState::kDegraded, "worker 1 evicted");
  EXPECT_EQ(monitor.runtime_state(), RuntimeState::kDegraded);
  // Degraded means the run continues on survivors: /healthz must stay 200,
  // so healthy() is still true — only the body changes.
  EXPECT_TRUE(monitor.healthy());
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].detector, "runtime_state");
  EXPECT_EQ(delivered[0].severity, HealthSeverity::kWarn);
  EXPECT_EQ(registry.gauge("health/runtime_state")->value(), 1.0);

  // Re-asserting the same state is a no-op, not event spam.
  monitor.SetRuntimeState(RuntimeState::kDegraded, "worker 1 evicted");
  EXPECT_EQ(delivered.size(), 1u);
}

TEST(HealthMonitorTest, FailedStateIsAnErrorAndUnhealthy) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  HealthMonitor monitor{HealthMonitorOptions{}, &registry};
  monitor.SetRuntimeState(RuntimeState::kFailed, "all workers evicted");
  EXPECT_EQ(monitor.runtime_state(), RuntimeState::kFailed);
  EXPECT_FALSE(monitor.healthy());
  EXPECT_EQ(registry.gauge("health/runtime_state")->value(), 2.0);
  const std::vector<HealthEvent> events = monitor.events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().severity, HealthSeverity::kError);
  EXPECT_EQ(events.back().detector, "runtime_state");
}

TEST(HealthMonitorTest, StatusJsonCarriesRuntimeState) {
  HealthMonitor monitor{HealthMonitorOptions{}};
  monitor.SetRuntimeState(RuntimeState::kDegraded, "worker 0 evicted");
  const std::string json = monitor.StatusJson(1.0);
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"state\":\"degraded\""), std::string::npos) << json;
}

TEST(HealthEventTest, ToJsonIsValid) {
  HealthEvent event;
  event.severity = HealthSeverity::kError;
  event.detector = "nonfinite_loss";
  event.step = 7;
  event.seconds = 1.25;
  event.message = "loss is \"NaN\"\n";
  const std::string json = event.ToJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"detector\":\"nonfinite_loss\""), std::string::npos);
}

}  // namespace
}  // namespace threelc::obs
