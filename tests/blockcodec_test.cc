// Tests for the pluggable lossless block-codec subsystem (blockcodec/):
// registry lookups, roundtrips over adversarial and realistic inputs
// (including real 3LC quartic/ZRE wire streams), strict decode behavior
// under fuzzed truncation and corruption, and the wire envelope with its
// skip-if-incompressible escape.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "blockcodec/block_codec.h"
#include "blockcodec/lz77.h"
#include "blockcodec/rans.h"
#include "compress/factory.h"
#include "tensor/tensor_ops.h"
#include "util/byte_buffer.h"
#include "util/rng.h"

namespace threelc::blockcodec {
namespace {

using util::ByteBuffer;
using util::ByteSpan;

std::vector<std::uint8_t> ToVector(const ByteBuffer& buf) {
  return std::vector<std::uint8_t>(buf.data(), buf.data() + buf.size());
}

std::vector<std::uint8_t> RandomBytes(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.Below(256));
  return v;
}

std::vector<std::uint8_t> RepetitiveBytes(std::size_t n) {
  // "abcabcabc..." with a periodic run of zeros — long matches at several
  // offsets plus a skewed byte histogram.
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = (i % 7 < 4) ? static_cast<std::uint8_t>('a' + i % 3) : 0;
  }
  return v;
}

// A real second-stage input: the 3LC (quartic + ZRE) wire payload of a
// gradient-like tensor, the byte stream the RPC path would hand to the
// block codec.
std::vector<std::uint8_t> QuarticStream(std::size_t elements,
                                        std::uint64_t seed) {
  auto codec =
      compress::MakeCompressor(compress::CodecConfig::ThreeLC(1.0f));
  util::Rng rng(seed);
  tensor::Tensor t(tensor::Shape{static_cast<std::int64_t>(elements)});
  tensor::FillNormal(t, rng, 0.0f, 0.02f);
  auto ctx = codec->MakeContext(t.shape());
  ByteBuffer out;
  codec->Encode(t, *ctx, out);
  return ToVector(out);
}

void ExpectRoundTrip(const BlockCodec& codec,
                     const std::vector<std::uint8_t>& raw) {
  ByteBuffer encoded;
  codec.Encode(ByteSpan(raw.data(), raw.size()), encoded);
  ByteBuffer decoded;
  codec.Decode(encoded.span(), raw.size(), decoded);
  ASSERT_EQ(decoded.size(), raw.size()) << codec.name();
  EXPECT_EQ(ToVector(decoded), raw) << codec.name();
}

TEST(BlockCodecRegistry, FindByNameAndId) {
  for (const BlockCodec* codec : All()) {
    EXPECT_EQ(Find(codec->name()), codec);
    EXPECT_EQ(FindById(codec->id()), codec);
  }
  EXPECT_EQ(Find("store")->id(), kStoreId);
  EXPECT_EQ(Find("lz")->id(), kLzId);
  EXPECT_EQ(Find("rans")->id(), kRansId);
  EXPECT_EQ(Find("lz+rans")->id(), kLzRansId);
}

TEST(BlockCodecRegistry, RejectsUnknownNamesAndIds) {
  EXPECT_EQ(Find("zstd"), nullptr);
  EXPECT_EQ(Find(""), nullptr);
  EXPECT_EQ(Find("LZ"), nullptr);  // names are case-sensitive
  EXPECT_EQ(FindById(4), nullptr);
  EXPECT_EQ(FindById(255), nullptr);
}

TEST(BlockCodecRegistry, KnownNamesListsAll) {
  EXPECT_EQ(KnownNames(), "store|lz|rans|lz+rans");
}

TEST(BlockCodecRoundTrip, EmptyInput) {
  for (const BlockCodec* codec : All()) {
    ExpectRoundTrip(*codec, {});
  }
}

TEST(BlockCodecRoundTrip, OneByte) {
  for (const BlockCodec* codec : All()) {
    ExpectRoundTrip(*codec, {0x5a});
    ExpectRoundTrip(*codec, {0x00});
  }
}

TEST(BlockCodecRoundTrip, IncompressibleRandom) {
  const auto raw = RandomBytes(64 * 1024 + 3, 17);
  for (const BlockCodec* codec : All()) {
    ExpectRoundTrip(*codec, raw);
  }
}

TEST(BlockCodecRoundTrip, HighlyRepetitive) {
  const auto raw = RepetitiveBytes(100000);
  for (const BlockCodec* codec : All()) {
    ExpectRoundTrip(*codec, raw);
  }
  // Repetitive input must actually compress under both stages.
  ByteBuffer lz_out, rans_out;
  Find("lz")->Encode(ByteSpan(raw.data(), raw.size()), lz_out);
  Find("rans")->Encode(ByteSpan(raw.data(), raw.size()), rans_out);
  EXPECT_LT(lz_out.size(), raw.size() / 10);
  EXPECT_LT(rans_out.size(), raw.size());
}

TEST(BlockCodecRoundTrip, AllZeros) {
  const std::vector<std::uint8_t> raw(50000, 0);
  for (const BlockCodec* codec : All()) {
    ExpectRoundTrip(*codec, raw);
  }
}

TEST(BlockCodecRoundTrip, RealQuarticStream) {
  const auto raw = QuarticStream(40000, 23);
  ASSERT_GT(raw.size(), 1000u);
  for (const BlockCodec* codec : All()) {
    ExpectRoundTrip(*codec, raw);
  }
  // §3.3 sanity: an entropy stage finds residual redundancy in the
  // quartic/ZRE stream (skewed byte histogram).
  ByteBuffer rans_out;
  Find("rans")->Encode(ByteSpan(raw.data(), raw.size()), rans_out);
  EXPECT_LT(rans_out.size(), raw.size());
}

TEST(BlockCodecRoundTrip, ManySizesAndSeeds) {
  for (const std::size_t n : {2u, 3u, 7u, 15u, 16u, 255u, 256u, 4097u}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto raw = RandomBytes(n, seed);
      for (const BlockCodec* codec : All()) {
        ExpectRoundTrip(*codec, raw);
      }
    }
  }
}

TEST(BlockCodecStrictDecode, WrongDeclaredSizeThrows) {
  const auto raw = RepetitiveBytes(5000);
  for (const BlockCodec* codec : All()) {
    ByteBuffer encoded;
    codec->Encode(ByteSpan(raw.data(), raw.size()), encoded);
    ByteBuffer decoded;
    EXPECT_THROW(codec->Decode(encoded.span(), raw.size() - 1, decoded),
                 std::exception)
        << codec->name();
    ByteBuffer decoded2;
    EXPECT_THROW(codec->Decode(encoded.span(), raw.size() + 1, decoded2),
                 std::exception)
        << codec->name();
  }
}

TEST(BlockCodecStrictDecode, FuzzedTruncationAlwaysThrows) {
  const auto raw = QuarticStream(20000, 5);
  util::Rng rng(99);
  for (const BlockCodec* codec : All()) {
    ByteBuffer encoded;
    codec->Encode(ByteSpan(raw.data(), raw.size()), encoded);
    for (int trial = 0; trial < 50; ++trial) {
      const std::size_t cut = rng.Below(encoded.size());
      ByteBuffer decoded;
      EXPECT_THROW(
          codec->Decode(ByteSpan(encoded.data(), cut), raw.size(), decoded),
          std::exception)
          << codec->name() << " truncated to " << cut;
    }
  }
}

TEST(BlockCodecStrictDecode, TrailingBytesAlwaysThrow) {
  const auto raw = RepetitiveBytes(3000);
  for (const BlockCodec* codec : All()) {
    ByteBuffer encoded;
    codec->Encode(ByteSpan(raw.data(), raw.size()), encoded);
    encoded.PushByte(0x00);
    ByteBuffer decoded;
    EXPECT_THROW(codec->Decode(encoded.span(), raw.size(), decoded),
                 std::exception)
        << codec->name();
  }
}

TEST(BlockCodecStrictDecode, FuzzedCorruptionNeverProducesSilentGarbage) {
  // Flip random bytes in valid streams: decode must either throw or —
  // for codecs without redundancy, like store — produce output whose
  // length still matches. No crash, no overrun (ASan-checked in CI).
  const auto raw = QuarticStream(10000, 7);
  util::Rng rng(1234);
  for (const BlockCodec* codec : All()) {
    ByteBuffer encoded;
    codec->Encode(ByteSpan(raw.data(), raw.size()), encoded);
    for (int trial = 0; trial < 100; ++trial) {
      std::vector<std::uint8_t> mut = ToVector(encoded);
      const std::size_t pos = rng.Below(mut.size());
      mut[pos] ^= static_cast<std::uint8_t>(1 + rng.Below(255));
      ByteBuffer decoded;
      try {
        codec->Decode(ByteSpan(mut.data(), mut.size()), raw.size(), decoded);
        EXPECT_EQ(decoded.size(), raw.size()) << codec->name();
      } catch (const std::exception&) {
        // Expected for most corruptions.
      }
    }
  }
}

TEST(BlockCodecLz, CompressesLongRunsWithExtendedLengths) {
  // > 15 literals and > 19 match bytes force both extension paths.
  std::vector<std::uint8_t> raw = RandomBytes(40, 3);
  raw.insert(raw.end(), 3000, 0xAB);
  raw.insert(raw.end(), raw.begin(), raw.begin() + 100);
  ExpectRoundTrip(*Find("lz"), raw);
  ByteBuffer out;
  lz::Compress(ByteSpan(raw.data(), raw.size()), out);
  EXPECT_LT(out.size(), raw.size() / 2);
}

TEST(BlockCodecLz, RejectsBadOffsets) {
  // token: 1 literal + match; offset 2 with only 1 decoded byte.
  const std::vector<std::uint8_t> bad = {0x10, 0x41, 0x02, 0x00};
  ByteBuffer decoded;
  EXPECT_THROW(lz::Decompress(ByteSpan(bad.data(), bad.size()), 10, decoded),
               std::runtime_error);
  // Offset 0 is never valid.
  const std::vector<std::uint8_t> zero_off = {0x10, 0x41, 0x00, 0x00};
  ByteBuffer decoded2;
  EXPECT_THROW(
      lz::Decompress(ByteSpan(zero_off.data(), zero_off.size()), 10,
                     decoded2),
      std::runtime_error);
}

TEST(BlockCodecRans, RejectsBadFrequencyTable) {
  const auto raw = RepetitiveBytes(1000);
  ByteBuffer encoded;
  rans::Encode(ByteSpan(raw.data(), raw.size()), encoded);
  // Bump one frequency: table no longer sums to the scale.
  std::vector<std::uint8_t> mut = ToVector(encoded);
  mut[0] ^= 0x01;
  ByteBuffer decoded;
  EXPECT_THROW(
      rans::Decode(ByteSpan(mut.data(), mut.size()), raw.size(), decoded),
      std::runtime_error);
}

TEST(BlockEnvelope, RoundTripsAndRecordsCodecId) {
  const auto raw = RepetitiveBytes(10000);
  for (const BlockCodec* codec : All()) {
    ByteBuffer envelope;
    const std::uint8_t used =
        EncodeBlock(*codec, ByteSpan(raw.data(), raw.size()), envelope);
    EXPECT_EQ(used, codec->id());  // repetitive input always compresses
    ByteBuffer decoded;
    DecodeBlock(envelope.span(), raw.size(), decoded);
    EXPECT_EQ(ToVector(decoded), raw) << codec->name();
  }
}

TEST(BlockEnvelope, IncompressibleInputFallsBackToStore) {
  const auto raw = RandomBytes(512, 11);
  ByteBuffer envelope;
  const std::uint8_t used =
      EncodeBlock(*Find("lz+rans"), ByteSpan(raw.data(), raw.size()),
                  envelope);
  EXPECT_EQ(used, kStoreId);
  EXPECT_EQ(envelope.size(), kEnvelopeHeaderBytes + raw.size());
  ByteBuffer decoded;
  DecodeBlock(envelope.span(), raw.size(), decoded);
  EXPECT_EQ(ToVector(decoded), raw);
}

TEST(BlockEnvelope, RejectsUnknownCodecId) {
  ByteBuffer envelope;
  envelope.AppendU8(200);
  envelope.AppendU32(4);
  envelope.AppendU32(0);
  ByteBuffer decoded;
  EXPECT_THROW(DecodeBlock(envelope.span(), 1 << 20, decoded),
               std::runtime_error);
}

TEST(BlockEnvelope, RejectsOversizedDeclaredRawSize) {
  const auto raw = RepetitiveBytes(4096);
  ByteBuffer envelope;
  EncodeBlock(*Find("lz"), ByteSpan(raw.data(), raw.size()), envelope);
  ByteBuffer decoded;
  EXPECT_THROW(DecodeBlock(envelope.span(), raw.size() - 1, decoded),
               std::runtime_error);
}

TEST(BlockEnvelope, RejectsTruncatedHeader) {
  ByteBuffer envelope;
  envelope.AppendU8(kLzId);
  envelope.AppendU16(7);  // half a raw-size field
  ByteBuffer decoded;
  EXPECT_THROW(DecodeBlock(envelope.span(), 1 << 20, decoded),
               std::exception);
}

}  // namespace
}  // namespace threelc::blockcodec
