// Unit and property tests for quartic encoding (paper §3.2).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "compress/quartic.h"
#include "util/rng.h"

namespace threelc::compress {
namespace {

std::vector<std::int8_t> RandomTernary(std::size_t n, std::uint64_t seed,
                                       double zero_prob = 0.4) {
  util::Rng rng(seed);
  std::vector<std::int8_t> v(n);
  for (auto& x : v) {
    if (rng.Bernoulli(zero_prob)) {
      x = 0;
    } else {
      x = rng.Bernoulli(0.5) ? 1 : -1;
    }
  }
  return v;
}

TEST(Quartic, EncodedSizeIsCeilNOver5) {
  EXPECT_EQ(QuarticEncodedSize(0), 0u);
  EXPECT_EQ(QuarticEncodedSize(1), 1u);
  EXPECT_EQ(QuarticEncodedSize(5), 1u);
  EXPECT_EQ(QuarticEncodedSize(6), 2u);
  EXPECT_EQ(QuarticEncodedSize(10), 2u);
  EXPECT_EQ(QuarticEncodedSize(11), 3u);
}

TEST(Quartic, FiveZerosEncodeToByte121) {
  std::int8_t q[5] = {0, 0, 0, 0, 0};
  util::ByteBuffer out;
  QuarticEncode(q, 5, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.data()[0], kQuarticZeroByte);
}

TEST(Quartic, AllOnesEncodeToMaxByte) {
  std::int8_t q[5] = {1, 1, 1, 1, 1};
  util::ByteBuffer out;
  QuarticEncode(q, 5, out);
  EXPECT_EQ(out.data()[0], kQuarticMaxByte);  // 2*(81+27+9+3+1) = 242
}

TEST(Quartic, AllMinusOnesEncodeToZeroByte) {
  std::int8_t q[5] = {-1, -1, -1, -1, -1};
  util::ByteBuffer out;
  QuarticEncode(q, 5, out);
  EXPECT_EQ(out.data()[0], 0);
}

TEST(Quartic, DigitPlacesAreBase3BigEndian) {
  // (q+1) digits d0..d4 pack as d0*81 + d1*27 + d2*9 + d3*3 + d4.
  std::int8_t q[5] = {1, -1, 0, -1, 1};  // digits 2,0,1,0,2
  util::ByteBuffer out;
  QuarticEncode(q, 5, out);
  EXPECT_EQ(out.data()[0], 2 * 81 + 0 * 27 + 1 * 9 + 0 * 3 + 2);
}

TEST(Quartic, PaperFigureExampleBytes) {
  // Figure 3 step (3): the 4x4 quantized tensor
  // [0,0,-1,0, 1,0,0,0, 0,0,0,0, 0,0,0,0] encodes to 113 121 121 121; the
  // first group {0,0,-1,0,1} = digits {1,1,0,1,2} = 81+27+0+3+2 = 113, and
  // the padded tail group is still the zero byte 121.
  std::int8_t q[16] = {0, 0, -1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  util::ByteBuffer out;
  QuarticEncode(q, 16, out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.data()[0], 113);
  EXPECT_EQ(out.data()[1], 121);
  EXPECT_EQ(out.data()[2], 121);
  EXPECT_EQ(out.data()[3], 121);
}

TEST(Quartic, OutputBytesNeverExceed242) {
  auto q = RandomTernary(5000, 11);
  util::ByteBuffer out;
  QuarticEncode(q.data(), q.size(), out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_LE(out.data()[i], kQuarticMaxByte);
  }
}

TEST(Quartic, AppendsToExistingBuffer) {
  util::ByteBuffer out;
  out.PushByte(0xAA);
  std::int8_t q[5] = {0, 0, 0, 0, 0};
  QuarticEncode(q, 5, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.data()[0], 0xAA);
  EXPECT_EQ(out.data()[1], kQuarticZeroByte);
}

TEST(QuarticDecode, RejectsWrongPayloadSize) {
  util::ByteBuffer out;
  std::int8_t q[5];
  QuarticEncode(q, 5, out);  // 1 byte
  std::vector<std::int8_t> decoded(10);
  EXPECT_THROW(QuarticDecode(out.span(), 10, decoded.data()),
               std::runtime_error);
}

TEST(QuarticDecode, RejectsByteAbove242) {
  util::ByteBuffer bad;
  bad.PushByte(243);
  std::vector<std::int8_t> decoded(5);
  EXPECT_THROW(QuarticDecode(bad.span(), 5, decoded.data()),
               std::runtime_error);
}

TEST(QuarticDecode, RejectsBadTailByte) {
  util::ByteBuffer bad;
  bad.PushByte(255);
  std::vector<std::int8_t> decoded(2);  // tail group
  EXPECT_THROW(QuarticDecode(bad.span(), 2, decoded.data()),
               std::runtime_error);
}

// ---------- Round-trip property across lengths ----------

class QuarticLengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuarticLengthSweep, RoundTripIdentity) {
  const std::size_t n = GetParam();
  auto q = RandomTernary(n, 100 + n);
  util::ByteBuffer encoded;
  QuarticEncode(q.data(), n, encoded);
  EXPECT_EQ(encoded.size(), QuarticEncodedSize(n));
  std::vector<std::int8_t> decoded(n);
  QuarticDecode(encoded.span(), n, decoded.data());
  EXPECT_EQ(q, decoded);
}

TEST_P(QuarticLengthSweep, TwoBitRoundTripIdentity) {
  const std::size_t n = GetParam();
  auto q = RandomTernary(n, 200 + n);
  util::ByteBuffer encoded;
  TwoBitEncode(q.data(), n, encoded);
  EXPECT_EQ(encoded.size(), TwoBitEncodedSize(n));
  std::vector<std::int8_t> decoded(n);
  TwoBitDecode(encoded.span(), n, decoded.data());
  EXPECT_EQ(q, decoded);
}

INSTANTIATE_TEST_SUITE_P(Lengths, QuarticLengthSweep,
                         ::testing::Values<std::size_t>(0, 1, 2, 3, 4, 5, 6,
                                                        9, 10, 11, 24, 25,
                                                        1000, 4099));

TEST(Quartic, TwentyPercentSmallerThanTwoBit) {
  // Paper §3.2: quartic takes 20% less space than 2-bit packing.
  const std::size_t n = 10000;
  EXPECT_NEAR(static_cast<double>(QuarticEncodedSize(n)) /
                  static_cast<double>(TwoBitEncodedSize(n)),
              0.8, 0.001);
}

TEST(Quartic, BitsPerValueCloseToTheoreticBound) {
  const std::size_t n = 100000;
  const double bits =
      static_cast<double>(QuarticEncodedSize(n)) * 8.0 / static_cast<double>(n);
  EXPECT_NEAR(bits, 1.6, 1e-3);
  // 0.95% above log2(3) = 1.58496 (paper §3.2).
  EXPECT_LT(bits / 1.58496, 1.0096);
}

TEST(Quartic, ExhaustiveSingleGroupRoundTrip) {
  // All 243 possible 5-digit groups round trip.
  for (int a = -1; a <= 1; ++a) {
    for (int b = -1; b <= 1; ++b) {
      for (int c = -1; c <= 1; ++c) {
        for (int d = -1; d <= 1; ++d) {
          for (int e = -1; e <= 1; ++e) {
            std::int8_t q[5] = {static_cast<std::int8_t>(a),
                                static_cast<std::int8_t>(b),
                                static_cast<std::int8_t>(c),
                                static_cast<std::int8_t>(d),
                                static_cast<std::int8_t>(e)};
            util::ByteBuffer out;
            QuarticEncode(q, 5, out);
            std::int8_t back[5];
            QuarticDecode(out.span(), 5, back);
            EXPECT_EQ(back[0], a);
            EXPECT_EQ(back[1], b);
            EXPECT_EQ(back[2], c);
            EXPECT_EQ(back[3], d);
            EXPECT_EQ(back[4], e);
          }
        }
      }
    }
  }
}

TEST(Quartic, EncodingIsInjectiveOverGroups) {
  // Distinct groups produce distinct bytes (needed for losslessness).
  std::vector<bool> seen(256, false);
  for (int v = 0; v < 243; ++v) {
    std::int8_t q[5] = {
        static_cast<std::int8_t>(v / 81 % 3 - 1),
        static_cast<std::int8_t>(v / 27 % 3 - 1),
        static_cast<std::int8_t>(v / 9 % 3 - 1),
        static_cast<std::int8_t>(v / 3 % 3 - 1),
        static_cast<std::int8_t>(v % 3 - 1),
    };
    util::ByteBuffer out;
    QuarticEncode(q, 5, out);
    EXPECT_FALSE(seen[out.data()[0]]) << "collision at " << v;
    seen[out.data()[0]] = true;
  }
}

}  // namespace
}  // namespace threelc::compress
