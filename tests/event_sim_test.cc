// Tests for the discrete-event step simulator (fine-grained vs coarse
// barriers, paper §2.1).
#include <gtest/gtest.h>

#include "net/event_sim.h"

namespace threelc::net {
namespace {

std::vector<LayerCost> UniformLayers(std::size_t n, std::size_t bytes,
                                     double compute) {
  std::vector<LayerCost> layers(n);
  for (auto& l : layers) {
    l.push_bytes = bytes;
    l.pull_bytes = bytes;
    l.compute_seconds = compute;
  }
  return layers;
}

TEST(EventSim, EmptyModelHasZeroMakespan) {
  EXPECT_EQ(SimulateFineGrainedStep({}, 1e9).makespan_seconds, 0.0);
  EXPECT_EQ(SimulateCoarseStep({}, 1e9).makespan_seconds, 0.0);
}

TEST(EventSim, CoarseIsComputePlusTransfer) {
  auto layers = UniformLayers(4, 125'000, 0.1);  // 1 Mbit per direction
  auto t = SimulateCoarseStep(layers, 1e6);      // 1 Mbps
  // compute: 4 layers * 0.1 * 2 passes = 0.8 s.
  EXPECT_NEAR(t.compute_seconds, 0.8, 1e-9);
  // transfer: 8 transfers * 1 Mbit / 1 Mbps = 8 s.
  EXPECT_NEAR(t.transfer_seconds, 8.0, 1e-9);
  EXPECT_NEAR(t.makespan_seconds, 8.8, 1e-9);
  EXPECT_NEAR(t.overlap_fraction, 0.0, 1e-9);
}

TEST(EventSim, FineNeverSlowerThanCoarse) {
  for (double bw : {1e6, 1e7, 1e8, 1e9}) {
    auto layers = UniformLayers(8, 50'000, 0.02);
    const double fine = SimulateFineGrainedStep(layers, bw).makespan_seconds;
    const double coarse = SimulateCoarseStep(layers, bw).makespan_seconds;
    EXPECT_LE(fine, coarse + 1e-9) << "bw=" << bw;
  }
}

TEST(EventSim, FineLowerBoundedByComputeAndTransfer) {
  auto layers = UniformLayers(8, 50'000, 0.02);
  auto t = SimulateFineGrainedStep(layers, 1e7);
  EXPECT_GE(t.makespan_seconds, t.compute_seconds - 1e-9);
  EXPECT_GE(t.makespan_seconds + 1e-9,
            t.transfer_seconds / 2.0);  // each direction fits its own link
}

TEST(EventSim, ComputeBoundRegimeFullyOverlaps) {
  // Fast network, slow compute: transfers hide entirely behind compute.
  auto layers = UniformLayers(16, 1'000, 0.05);
  auto t = SimulateFineGrainedStep(layers, 1e9);
  EXPECT_NEAR(t.makespan_seconds, t.compute_seconds, 0.01);
  EXPECT_GT(t.overlap_fraction, 0.9);
}

TEST(EventSim, BandwidthBoundRegimeHasLittleHiding) {
  // Slow network, fast compute: the link is busy the whole step.
  auto layers = UniformLayers(16, 1'000'000, 0.0001);
  auto t = SimulateFineGrainedStep(layers, 1e6);
  // Makespan approaches the one-direction serialization time.
  EXPECT_GT(t.makespan_seconds, t.transfer_seconds * 0.45);
}

TEST(EventSim, ManyLayersOverlapBetterThanOne) {
  // Same totals, split across many layers vs one: finer tensors pipeline
  // better (the paper's argument for why very deep nets hide latency).
  const std::size_t total_bytes = 800'000;
  const double total_compute = 0.4;
  auto one = UniformLayers(1, total_bytes, total_compute / 2.0);
  auto many = UniformLayers(16, total_bytes / 16, total_compute / 32.0);
  const double bw = 2e7;
  const double t_one = SimulateFineGrainedStep(one, bw).makespan_seconds;
  const double t_many = SimulateFineGrainedStep(many, bw).makespan_seconds;
  EXPECT_LT(t_many, t_one + 1e-9);
}

TEST(EventSim, CompressionShrinksMakespanInBandwidthBoundRegime) {
  auto raw = UniformLayers(8, 400'000, 0.01);
  auto compressed = UniformLayers(8, 10'000, 0.01);  // 40x smaller
  const double bw = 1e7;
  const double t_raw = SimulateFineGrainedStep(raw, bw).makespan_seconds;
  const double t_comp =
      SimulateFineGrainedStep(compressed, bw).makespan_seconds;
  EXPECT_GT(t_raw / t_comp, 3.0);
}

TEST(EventSim, OverlapFractionInUnitRange) {
  for (std::size_t n : {1u, 3u, 32u}) {
    auto layers = UniformLayers(n, 10'000, 0.001);
    auto t = SimulateFineGrainedStep(layers, 5e7);
    EXPECT_GE(t.overlap_fraction, 0.0);
    EXPECT_LE(t.overlap_fraction, 1.0);
  }
}

TEST(EventSim, ZeroBytesIsPureCompute) {
  auto layers = UniformLayers(4, 0, 0.05);
  auto t = SimulateFineGrainedStep(layers, 1e6);
  EXPECT_NEAR(t.makespan_seconds, 0.4, 1e-9);
  EXPECT_EQ(t.transfer_seconds, 0.0);
}

}  // namespace
}  // namespace threelc::net
